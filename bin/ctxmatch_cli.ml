(* ctxmatch — contextual schema matching from the command line.

   match:  load source/target tables from CSV files (first row = header,
           types inferred), run ContextMatch, print the matches.
   map:    additionally generate the Clio-style mapping plan and execute
           it, writing one CSV per target table.
   demo:   run the built-in retail or grades scenario. *)

open Cmdliner

(* CSV by default; .xml files are shredded (repeated record elements
   become rows; see Xmlbridge.Shred). *)
let load_tables files =
  List.map
    (fun path ->
      let name = Filename.remove_extension (Filename.basename path) in
      if Filename.check_suffix path ".xml" then begin
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Relational.Table.rename (Xmlbridge.Shred.table_of_string text) name
      end
      else Relational.Csv_io.table_of_file ~name path)
    files

let make_config tau omega late select seed jobs =
  let select =
    match select with
    | "qual" -> Ctxmatch.Config.Qual_table
    | "multi" -> Ctxmatch.Config.Multi_table
    | "clio" -> Ctxmatch.Config.Clio_qual_table
    | other -> invalid_arg (Printf.sprintf "unknown selection policy %s" other)
  in
  let jobs = if jobs <= 0 then Ctxmatch.Config.default.Ctxmatch.Config.jobs else jobs in
  {
    Ctxmatch.Config.default with
    tau;
    omega;
    early_disjuncts = not late;
    select;
    seed;
    jobs;
  }

let algorithm_of_string = function
  | "naive" -> `Naive
  | "src" -> `Src_class
  | "tgt" -> `Tgt_class
  | "cluster" -> `Cluster
  | other -> invalid_arg (Printf.sprintf "unknown inference algorithm %s" other)

(* --where PRE-FILTERS the source tables (any table owning all the
   mentioned attributes) before matching; useful to focus a sample. *)
let apply_where where db =
  match where with
  | None -> db
  | Some text ->
    let condition = Relational.Condition_parser.parse text in
    let attrs = Relational.Condition.attributes condition in
    Relational.Database.map_tables
      (fun table ->
        let schema = Relational.Table.schema table in
        if List.for_all (Relational.Schema.mem schema) attrs then
          Relational.Table.filter table (Relational.Condition.eval condition schema)
        else table)
      db

let run_match source_files target_files tau omega late select algorithm seed where jobs =
  let source =
    apply_where where (Relational.Database.make "source" (load_tables source_files))
  in
  let target = Relational.Database.make "target" (load_tables target_files) in
  let config = make_config tau omega late select seed jobs in
  let infer = Ctxmatch.Context_match.infer_of (algorithm_of_string algorithm) ~target in
  let result = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
  Printf.printf "# standard matches: %d, candidate views scored: %d, %.2fs\n"
    (List.length result.Ctxmatch.Context_match.standard)
    result.Ctxmatch.Context_match.candidate_view_count
    result.Ctxmatch.Context_match.elapsed_seconds;
  List.iter
    (fun m -> print_endline (Matching.Schema_match.to_string m))
    result.Ctxmatch.Context_match.matches;
  result

let match_cmd_run source_files target_files tau omega late select algorithm seed where jobs =
  ignore (run_match source_files target_files tau omega late select algorithm seed where jobs)

let map_cmd_run source_files target_files tau omega late select algorithm seed where jobs
    out_dir =
  let result =
    run_match source_files target_files tau omega late select algorithm seed where jobs
  in
  let source =
    apply_where where (Relational.Database.make "source" (load_tables source_files))
  in
  let target = Relational.Database.make "target" (load_tables target_files) in
  let plan =
    Mapping.Mapping_gen.plan ~source ~target ~matches:result.Ctxmatch.Context_match.matches ()
  in
  Printf.printf "# derived constraints: %d, joins: %d\n"
    (List.length plan.Mapping.Mapping_gen.derived)
    (List.length plan.Mapping.Mapping_gen.joins);
  List.iter
    (fun (j : Mapping.Association.join) ->
      Printf.printf "# join [%s] %s -- %s\n" j.rule j.left j.right)
    plan.Mapping.Mapping_gen.joins;
  let mapped = Mapping.Mapping_gen.execute_all plan in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  (* the equivalent SQL transformation script, for review/porting *)
  let sql_path = Filename.concat out_dir "mapping.sql" in
  let oc = open_out sql_path in
  output_string oc (Mapping.Sql_render.script plan);
  close_out oc;
  Printf.printf "# wrote %s\n" sql_path;
  List.iter
    (fun table ->
      let path = Filename.concat out_dir (Relational.Table.name table ^ ".csv") in
      let oc = open_out path in
      output_string oc (Relational.Csv_io.table_to_csv table);
      close_out oc;
      Printf.printf "# wrote %s (%d rows)\n" path (Relational.Table.row_count table))
    (Relational.Database.tables mapped)

let demo_cmd_run scenario =
  match scenario with
  | "retail" ->
    let params = Workload.Retail.default_params in
    let source = Workload.Retail.source params in
    let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let result =
      Ctxmatch.Context_match.run ~config:Ctxmatch.Config.default ~infer ~source ~target ()
    in
    List.iter
      (fun m -> print_endline (Matching.Schema_match.to_string m))
      result.Ctxmatch.Context_match.matches;
    let truth = Evalharness.Ground_truth.retail params Workload.Retail.Ryan_eyers in
    Printf.printf "FMeasure %.3f\n"
      (Evalharness.Ground_truth.fmeasure truth result.Ctxmatch.Context_match.matches)
  | "grades" ->
    let params = Workload.Grades.default_params in
    let source = Workload.Grades.narrow params in
    let target = Workload.Grades.wide params in
    (* grades matches are tenuous (paper S5.8): run inside the tau/omega
       plateau of this scale *)
    let config =
      {
        Ctxmatch.Config.default with
        tau = 0.4;
        omega = 0.1;
        early_disjuncts = false;
        select = Ctxmatch.Config.Clio_qual_table;
      }
    in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let result = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
    List.iter
      (fun m -> print_endline (Matching.Schema_match.to_string m))
      result.Ctxmatch.Context_match.matches;
    let truth = Evalharness.Ground_truth.grades params in
    Printf.printf "Accuracy %.3f\n"
      (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches)
  | other -> invalid_arg (Printf.sprintf "unknown scenario %s (retail|grades)" other)

(* -- cmdliner wiring ---------------------------------------------------- *)

let source_arg =
  Arg.(
    non_empty
    & opt_all file []
    & info [ "s"; "source" ] ~docv:"CSV" ~doc:"Source table CSV file (repeatable).")

let target_arg =
  Arg.(
    non_empty
    & opt_all file []
    & info [ "t"; "target" ] ~docv:"CSV" ~doc:"Target table CSV file (repeatable).")

let tau_arg =
  Arg.(value & opt float 0.5 & info [ "tau" ] ~doc:"StandardMatch confidence threshold.")

let omega_arg =
  Arg.(value & opt float 0.2 & info [ "omega" ] ~doc:"View improvement threshold.")

let late_arg =
  Arg.(value & flag & info [ "late" ] ~doc:"Use LateDisjuncts instead of EarlyDisjuncts.")

let select_arg =
  Arg.(
    value
    & opt string "qual"
    & info [ "select" ] ~docv:"qual|multi|clio"
        ~doc:"SelectContextualMatches policy (clio enables the join rules).")

let algorithm_arg =
  Arg.(
    value
    & opt string "src"
    & info [ "algorithm" ] ~docv:"naive|src|tgt|cluster" ~doc:"InferCandidateViews implementation.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime; 0 (the default) means \
           auto-detect, 1 forces the sequential path.  Results are identical \
           for every value.")

let where_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "where" ] ~docv:"COND"
        ~doc:"Pre-filter source tables with a condition, e.g. \"type = 'book'\".")

let out_dir_arg =
  Arg.(value & opt string "mapped" & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")

let match_cmd =
  let doc = "find (contextual) schema matches between CSV samples" in
  Cmd.v (Cmd.info "match" ~doc)
    Term.(
      const match_cmd_run $ source_arg $ target_arg $ tau_arg $ omega_arg $ late_arg
      $ select_arg $ algorithm_arg $ seed_arg $ where_arg $ jobs_arg)

let map_cmd =
  let doc = "match, generate the Clio-style mapping, execute it to CSV" in
  Cmd.v (Cmd.info "map" ~doc)
    Term.(
      const map_cmd_run $ source_arg $ target_arg $ tau_arg $ omega_arg $ late_arg
      $ select_arg $ algorithm_arg $ seed_arg $ where_arg $ jobs_arg $ out_dir_arg)

let demo_cmd =
  let doc = "run a built-in scenario (retail or grades)" in
  let scenario =
    Arg.(value & pos 0 string "retail" & info [] ~docv:"SCENARIO" ~doc:"retail|grades")
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo_cmd_run $ scenario)

let () =
  let doc = "contextual schema matching (VLDB 2006 reproduction)" in
  let info = Cmd.info "ctxmatch" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ match_cmd; map_cmd; demo_cmd ]))
