(* ctxmatch — contextual schema matching from the command line.

   match:  load source/target tables from CSV files (first row = header,
           types inferred), run ContextMatch, print the matches.
   map:    additionally generate the Clio-style mapping plan and execute
           it, writing one CSV per target table.
   demo:   run the built-in retail or grades scenario.
   serve:  long-lived match daemon on a Unix/TCP socket (line-delimited
           JSON protocol; see DESIGN.md, "Serving").
   client: talk to a running daemon (one-off ping/stats/shutdown, or
           pipe request lines through stdin).

   store-verify: audit a store directory's shards (crash-recovery
           check) without touching them.

   Exit codes: 0 success, 2 usage error, 3 ingestion error, 4 matching /
   mapping error, 5 serve error (bind failure, lost daemon), 6 store
   verification found a truncated/corrupt shard.
   Degraded-but-successful runs (quarantined rows, skipped views — see
   DESIGN.md, "Failure semantics") exit 0 with the diagnostics on stderr
   and a "# degraded" summary on stdout. *)

open Cmdliner

(* Every failure funnels through this so the user always gets ONE
   diagnostic line and a meaningful exit code instead of a backtrace. *)
exception Cli_error of { code : int; message : string }

let usage_code = 2
let ingest_code = 3
let match_code = 4
let serve_code = 5
let store_code = 6

let cli_error code fmt =
  Printf.ksprintf (fun message -> raise (Cli_error { code; message })) fmt

(* Phase wrappers: whatever escapes a phase is tagged with that phase's
   exit code.  Parse errors keep their line numbers in the message. *)
let ingest_phase f =
  try f () with
  | Cli_error _ as e -> raise e
  | Relational.Csv_io.Parse_error { line; message } ->
    cli_error ingest_code "ingestion failed (line %d): %s" line message
  | Xmlbridge.Xml_doc.Parse_error { position; message } ->
    cli_error ingest_code "ingestion failed (byte %d): %s" position message
  | Sys_error message -> cli_error ingest_code "ingestion failed: %s" message
  | e -> cli_error ingest_code "ingestion failed: %s" (Printexc.to_string e)

let match_phase f =
  try f () with
  | Cli_error _ as e -> raise e
  | e -> cli_error match_code "matching failed: %s" (Printexc.to_string e)

let report_issues issues =
  List.iter
    (fun issue -> Printf.eprintf "ctxmatch: %s\n%!" (Robust.Error.to_string issue))
    issues

(* CSV by default; .xml files are shredded (repeated record elements
   become rows; see Xmlbridge.Shred).  Under --lenient, malformed CSV
   rows are quarantined (reported on stderr) instead of fatal. *)
let load_tables ~mode files =
  ingest_phase @@ fun () ->
  List.map
    (fun path ->
      let name = Filename.remove_extension (Filename.basename path) in
      if Filename.check_suffix path ".xml" then begin
        let text = Relational.Csv_io.read_file path in
        Relational.Table.rename (Xmlbridge.Shred.table_of_string text) name
      end
      else begin
        let table, issues = Relational.Csv_io.table_of_file_report ~mode ~name path in
        report_issues issues;
        (match mode with
        | Relational.Csv_io.Lenient
          when List.exists
                 (fun (i : Robust.Error.t) -> i.severity = Robust.Error.Fatal)
                 issues ->
          cli_error ingest_code "%s: unreadable even leniently" path
        | _ -> ());
        table
      end)
    files

let plan_spec_of_string plan =
  match Plan.spec_of_string plan with
  | Ok spec -> spec
  | Error message -> cli_error usage_code "%s" message

let make_config tau omega late select seed jobs timeout_ms plan =
  let select =
    match select with
    | "qual" -> Ctxmatch.Config.Qual_table
    | "multi" -> Ctxmatch.Config.Multi_table
    | "clio" -> Ctxmatch.Config.Clio_qual_table
    | other -> cli_error usage_code "unknown selection policy %s (qual|multi|clio)" other
  in
  let jobs = if jobs <= 0 then Ctxmatch.Config.default.Ctxmatch.Config.jobs else jobs in
  {
    Ctxmatch.Config.default with
    tau;
    omega;
    early_disjuncts = not late;
    select;
    seed;
    jobs;
    timeout_ms;
    plan = plan_spec_of_string plan;
  }

let algorithm_of_string = function
  | "naive" -> `Naive
  | "src" -> `Src_class
  | "tgt" -> `Tgt_class
  | "cluster" -> `Cluster
  | other -> cli_error usage_code "unknown inference algorithm %s (naive|src|tgt|cluster)" other

(* --where PRE-FILTERS the source tables (any table owning all the
   mentioned attributes) before matching; useful to focus a sample. *)
let apply_where where db =
  match where with
  | None -> db
  | Some text ->
    let condition =
      try Relational.Condition_parser.parse text
      with e -> cli_error usage_code "bad --where condition: %s" (Printexc.to_string e)
    in
    let attrs = Relational.Condition.attributes condition in
    Relational.Database.map_tables
      (fun table ->
        let schema = Relational.Table.schema table in
        if List.for_all (Relational.Schema.mem schema) attrs then
          Relational.Table.filter table (Relational.Condition.eval condition schema)
        else table)
      db

(* Degraded-run summary.  With cache stats available (a matching run)
   the line also reports the profile-cache economics, so a degraded
   run's quarantine cost and cache behaviour land in the same place. *)
let print_degraded ?cache issues =
  report_issues issues;
  if issues <> [] then
    match cache with
    | Some (hits, misses) ->
      Printf.printf "# degraded: %d issues (profile cache: %d hits / %d misses)\n"
        (List.length issues) hits misses
    | None -> Printf.printf "# degraded: %d issues\n" (List.length issues)

(* Observability: any of --trace/--metrics/--profile switches the
   recorder on for the whole command (ingestion included); with all
   three absent the recorder stays off and every instrumentation site
   costs one branch, keeping output byte-identical to an uninstrumented
   binary.  [obs_finish] runs after the last pipeline stage so map-mode
   spans are in the export too. *)
let obs_enabled trace metrics profile = trace <> None || metrics <> None || profile

let obs_start trace metrics profile =
  if obs_enabled trace metrics profile then Obs.Recorder.enable ()

let obs_finish trace metrics profile =
  if obs_enabled trace metrics profile then begin
    (match trace with Some path -> Obs.Export.write_trace path | None -> ());
    (match metrics with Some path -> Obs.Export.write_metrics path | None -> ());
    if profile then prerr_string (Obs.Export.span_tree ())
  end

let run_match source_files target_files tau omega late select algorithm seed where jobs mode
    timeout_ms store_dir store_readonly plan =
  let config = make_config tau omega late select seed jobs timeout_ms plan in
  let algorithm = algorithm_of_string algorithm in
  let source =
    apply_where where (Relational.Database.make "source" (load_tables ~mode source_files))
  in
  let target = Relational.Database.make "target" (load_tables ~mode target_files) in
  match_phase @@ fun () ->
  let store =
    Option.map (fun dir -> Store.open_dir ~readonly:store_readonly dir) store_dir
  in
  let infer = Ctxmatch.Context_match.infer_of algorithm ~target in
  let result = Ctxmatch.Context_match.run ~config ?store ~infer ~source ~target () in
  Printf.printf "# standard matches: %d, candidate views scored: %d, %.2fs\n"
    (List.length result.Ctxmatch.Context_match.standard)
    result.Ctxmatch.Context_match.candidate_view_count
    result.Ctxmatch.Context_match.elapsed_seconds;
  (* only a non-default plan earns a summary line, so default-plan
     output stays byte-identical to every earlier release *)
  if config.Ctxmatch.Config.plan <> Plan.Default then
    Printf.printf "# plan %s: %d pairs scored, %d pruned\n"
      result.Ctxmatch.Context_match.plan.Plan.plan_name
      result.Ctxmatch.Context_match.pairs_scored result.Ctxmatch.Context_match.pairs_pruned;
  (match store with
  | None -> ()
  | Some s ->
    Store.flush s;
    let st = Store.stats s in
    Printf.printf
      "# store: %d hits / %d misses, %d added, %d shards loaded, %d flushed, %d quarantined, \
       %d profile builds\n"
      st.Store.st_hits st.Store.st_misses st.Store.st_adds st.Store.st_shard_loads
      st.Store.st_flushed st.Store.st_quarantined
      result.Ctxmatch.Context_match.profile_builds);
  print_degraded
    ~cache:
      ( result.Ctxmatch.Context_match.cache_hits,
        result.Ctxmatch.Context_match.cache_misses )
    result.Ctxmatch.Context_match.issues;
  List.iter
    (fun m -> print_endline (Matching.Schema_match.to_string m))
    result.Ctxmatch.Context_match.matches;
  result

let match_cmd_run source_files target_files tau omega late select algorithm seed where jobs
    mode timeout_ms store_dir store_readonly plan trace metrics profile =
  obs_start trace metrics profile;
  ignore
    (run_match source_files target_files tau omega late select algorithm seed where jobs mode
       timeout_ms store_dir store_readonly plan);
  obs_finish trace metrics profile

let map_cmd_run source_files target_files tau omega late select algorithm seed where jobs mode
    timeout_ms store_dir store_readonly plan trace metrics profile out_dir =
  obs_start trace metrics profile;
  let result =
    run_match source_files target_files tau omega late select algorithm seed where jobs mode
      timeout_ms store_dir store_readonly plan
  in
  let source =
    apply_where where (Relational.Database.make "source" (load_tables ~mode source_files))
  in
  let target = Relational.Database.make "target" (load_tables ~mode target_files) in
  match_phase @@ fun () ->
  let plan =
    Mapping.Mapping_gen.plan ~source ~target ~matches:result.Ctxmatch.Context_match.matches ()
  in
  Printf.printf "# derived constraints: %d, joins: %d\n"
    (List.length plan.Mapping.Mapping_gen.derived)
    (List.length plan.Mapping.Mapping_gen.joins);
  List.iter
    (fun (j : Mapping.Association.join) ->
      Printf.printf "# join [%s] %s -- %s\n" j.rule j.left j.right)
    plan.Mapping.Mapping_gen.joins;
  let mapped, map_issues = Mapping.Mapping_gen.execute_all_report plan in
  print_degraded map_issues;
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  (* the equivalent SQL transformation script, for review/porting *)
  let sql_path = Filename.concat out_dir "mapping.sql" in
  let oc = open_out sql_path in
  output_string oc (Mapping.Sql_render.script plan);
  close_out oc;
  Printf.printf "# wrote %s\n" sql_path;
  List.iter
    (fun table ->
      let path = Filename.concat out_dir (Relational.Table.name table ^ ".csv") in
      let oc = open_out path in
      output_string oc (Relational.Csv_io.table_to_csv table);
      close_out oc;
      Printf.printf "# wrote %s (%d rows)\n" path (Relational.Table.row_count table))
    (Relational.Database.tables mapped);
  obs_finish trace metrics profile

(* -- explain-plan ------------------------------------------------------- *)

(* Resolve the plan the given workload would run and print its operator
   graph with per-operator pair counts and cost estimates.  Nothing is
   matched unless --calibrate asks for a probe run to measure the
   per-class scoring rates on this very workload. *)
let explain_plan_cmd_run source_files target_files tau plan jobs mode calibrate =
  let spec = plan_spec_of_string plan in
  let source = Relational.Database.make "source" (load_tables ~mode source_files) in
  let target = Relational.Database.make "target" (load_tables ~mode target_files) in
  match_phase @@ fun () ->
  let config =
    let base = Ctxmatch.Config.default in
    {
      base with
      Ctxmatch.Config.tau;
      jobs = (if jobs <= 0 then base.Ctxmatch.Config.jobs else jobs);
      plan = spec;
    }
  in
  let shape = Ctxmatch.Context_match.shape_of ~source ~target in
  let model =
    if not calibrate then Plan.Cost.default
    else begin
      Obs.Recorder.enable ();
      let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
      ignore (Ctxmatch.Context_match.run ~config ~infer ~source ~target ());
      let snap = Obs.Metrics.snapshot () in
      (* kernel arena footprint and pruning effectiveness of the probe
         run, next to the rates it calibrated *)
      let c name = Obs.Metrics.counter_value snap name in
      if c "kernel.arena.bytes" > 0 then
        Printf.printf "# kernel arena: %d bytes, %d blocks\n" (c "kernel.arena.bytes")
          (c "kernel.arena.blocks");
      let bskips = c "kernel.topk.block_skips" and pskips = c "kernel.topk.posting_skips" in
      if bskips > 0 || pskips > 0 then
        Printf.printf "# kernel pruning: %d block skips, %d posting skips\n" bskips pskips;
      let model = Plan.Cost.of_snapshot snap in
      if c "plan.filter_probes" > 0 then
        Printf.printf "# calibrated filter rate: %.0f ns/probe over %d probes\n"
          model.Plan.Cost.ns_filter (c "plan.filter_probes");
      model
    end
  in
  let resolved =
    Plan.resolve ~model ~shape ~gated:config.Ctxmatch.Config.gated_confidence
      ~tau:config.Ctxmatch.Config.tau ~kernel:config.Ctxmatch.Config.kernel
      ~matchers:(Matching.Matchers.plan_specs config.Ctxmatch.Config.matchers)
      spec
  in
  print_string (Plan.explain ~model ~shape resolved)

let demo_cmd_run scenario =
  match scenario with
  | "retail" ->
    match_phase @@ fun () ->
    let params = Workload.Retail.default_params in
    let source = Workload.Retail.source params in
    let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let result =
      Ctxmatch.Context_match.run ~config:Ctxmatch.Config.default ~infer ~source ~target ()
    in
    print_degraded result.Ctxmatch.Context_match.issues;
    List.iter
      (fun m -> print_endline (Matching.Schema_match.to_string m))
      result.Ctxmatch.Context_match.matches;
    let truth = Evalharness.Ground_truth.retail params Workload.Retail.Ryan_eyers in
    Printf.printf "FMeasure %.3f\n"
      (Evalharness.Ground_truth.fmeasure truth result.Ctxmatch.Context_match.matches)
  | "grades" ->
    match_phase @@ fun () ->
    let params = Workload.Grades.default_params in
    let source = Workload.Grades.narrow params in
    let target = Workload.Grades.wide params in
    (* grades matches are tenuous (paper S5.8): run inside the tau/omega
       plateau of this scale *)
    let config =
      {
        Ctxmatch.Config.default with
        tau = 0.4;
        omega = 0.1;
        early_disjuncts = false;
        select = Ctxmatch.Config.Clio_qual_table;
      }
    in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let result = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
    print_degraded result.Ctxmatch.Context_match.issues;
    List.iter
      (fun m -> print_endline (Matching.Schema_match.to_string m))
      result.Ctxmatch.Context_match.matches;
    let truth = Evalharness.Ground_truth.grades params in
    Printf.printf "Accuracy %.3f\n"
      (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches)
  | other -> cli_error usage_code "unknown scenario %s (retail|grades)" other

(* -- store-verify ------------------------------------------------------- *)

(* Crash-recovery audit: classify every file of a store directory and
   exit non-zero (code 6) if anything is outside {clean, quarantined}.
   Never mutates the store — quarantining stays the job of the read
   path that owns the data. *)
let store_verify_cmd_run dir json =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    cli_error usage_code "%s: not a directory" dir;
  let r = Store.verify dir in
  if json then
    (* machine-readable audit, e.g. for CI gates and supervisors *)
    print_endline
      (Serve.Json.to_string
         (Serve.Json.Obj
            [
              ("dir", Serve.Json.String dir);
              ( "entries",
                Serve.Json.List
                  (List.map
                     (fun (e : Store.verify_entry) ->
                       Serve.Json.Obj
                         [
                           ("file", Serve.Json.String e.Store.ve_file);
                           ("status", Serve.Json.String (Store.shard_status_name e.Store.ve_status));
                           ("detail", Serve.Json.String e.Store.ve_detail);
                         ])
                     r.Store.vr_entries) );
              ("clean", Serve.Json.Int r.Store.vr_clean);
              ("truncated", Serve.Json.Int r.Store.vr_truncated);
              ("corrupt", Serve.Json.Int r.Store.vr_corrupt);
              ("quarantined", Serve.Json.Int r.Store.vr_quarantined);
              ("tmp", Serve.Json.Int r.Store.vr_tmp);
              ("deltas", Serve.Json.Int r.Store.vr_deltas);
              ("index_ok", Serve.Json.Bool r.Store.vr_index_ok);
              ("healthy", Serve.Json.Bool (Store.verify_healthy r));
            ]))
  else begin
    List.iter
      (fun (e : Store.verify_entry) ->
        Printf.printf "%-12s %s%s\n"
          (Store.shard_status_name e.Store.ve_status)
          e.Store.ve_file
          (if e.Store.ve_detail = "" then "" else Printf.sprintf " (%s)" e.Store.ve_detail))
      r.Store.vr_entries;
    Printf.printf
      "# store-verify: %d clean, %d truncated, %d corrupt, %d quarantined, %d tmp, %d deltas, index %s\n"
      r.Store.vr_clean r.Store.vr_truncated r.Store.vr_corrupt r.Store.vr_quarantined
      r.Store.vr_tmp r.Store.vr_deltas
      (if r.Store.vr_index_ok then "ok" else "corrupt")
  end;
  if not (Store.verify_healthy r) then
    cli_error store_code "store %s has %d truncated / %d corrupt shards%s" dir
      r.Store.vr_truncated r.Store.vr_corrupt
      (if r.Store.vr_index_ok then "" else " and a corrupt index")

(* -- serve / client ----------------------------------------------------- *)

let serve_address socket port host =
  match (socket, port) with
  | Some _, Some _ -> cli_error usage_code "--socket and --port are mutually exclusive"
  | Some path, None -> Serve.Server.Unix_sock path
  | None, Some port -> Serve.Server.Tcp (host, port)
  | None, None -> cli_error usage_code "one of --socket PATH or --port PORT is required"

let serve_phase f =
  try f () with
  | Cli_error _ as e -> raise e
  | Serve.Server.Bind_error { address; reason } ->
    cli_error serve_code "cannot serve on %s: %s" address reason
  | e -> cli_error serve_code "serve failed: %s" (Printexc.to_string e)

let serve_cmd_run socket port host jobs queue timeout_ms max_request_bytes store_dir
    store_readonly flush_every breaker_threshold breaker_cooldown_ms faults trace metrics
    profile =
  obs_start trace metrics profile;
  serve_phase @@ fun () ->
  (* chaos arming: deterministic I/O faults for the whole daemon
     lifetime, e.g. --fault store-shard-write:0.5:7:torn=0.6 *)
  List.iter
    (fun spec ->
      match Robust.Fault.arm_spec spec with
      | Ok () -> ()
      | Error message -> cli_error usage_code "--fault %s: %s" spec message)
    faults;
  let address = serve_address socket port host in
  let default_jobs =
    if jobs <= 0 then Ctxmatch.Config.default.Ctxmatch.Config.jobs else jobs
  in
  let config =
    {
      (Serve.Server.default_config address) with
      Serve.Server.default_jobs;
      queue_capacity = queue;
      default_timeout_ms = timeout_ms;
      max_request_bytes;
      store_dir;
      store_readonly;
      flush_every;
      breaker_threshold;
      breaker_cooldown_ms;
    }
  in
  let server = Serve.Server.create config in
  (* Graceful shutdown on SIGTERM/SIGINT: the handler only flips an
     atomic flag (async-signal-safe); run's accept loop notices it,
     drains admitted work, answers every waiting client and flushes the
     store before returning. *)
  let request_stop _ = Serve.Server.stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  (* SIGPIPE would kill the daemon when a client disconnects mid-reply *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let bound =
    match (address, Serve.Server.port server) with
    | Serve.Server.Tcp (host, _), Some p -> Printf.sprintf "tcp:%s:%d" host p
    | _ -> Serve.Server.address_to_string address
  in
  Printf.printf "# serving on %s (jobs %d, queue %d)\n%!" bound default_jobs queue;
  Serve.Server.run server;
  let c = Serve.Server.counters server in
  Printf.printf "# drained: %d requests, %d executed, %d rejected, %d protocol errors\n%!"
    c.Serve.Server.c_requests c.Serve.Server.c_completed c.Serve.Server.c_rejected
    c.Serve.Server.c_protocol_errors;
  obs_finish trace metrics profile

let client_cmd_run socket port host command =
  serve_phase @@ fun () ->
  let address = serve_address socket port host in
  let client = Serve.Client.connect address in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close client)
    (fun () ->
      match command with
      | Some "ping" -> print_endline (Serve.Client.request_line client (Serve.Json.to_string Serve.Protocol.ping_json))
      | Some "stats" -> print_endline (Serve.Client.request_line client (Serve.Json.to_string Serve.Protocol.stats_json))
      | Some "health" ->
        print_endline (Serve.Client.request_line client (Serve.Json.to_string Serve.Protocol.health_json))
      | Some "list-targets" ->
        print_endline
          (Serve.Client.request_line client (Serve.Json.to_string Serve.Protocol.list_targets_json))
      | Some "shutdown" ->
        print_endline (Serve.Client.request_line client (Serve.Json.to_string Serve.Protocol.shutdown_json))
      | Some other ->
        cli_error usage_code "unknown client command %s (ping|stats|health|list-targets|shutdown)"
          other
      | None -> (
        (* pipe mode: one JSON request per stdin line, one reply per line *)
        try
          while true do
            let line = String.trim (input_line stdin) in
            if line <> "" then print_endline (Serve.Client.request_line client line)
          done
        with End_of_file -> ()))

(* -- cmdliner wiring ---------------------------------------------------- *)

let source_arg =
  Arg.(
    non_empty
    & opt_all file []
    & info [ "s"; "source" ] ~docv:"CSV" ~doc:"Source table CSV file (repeatable).")

let target_arg =
  Arg.(
    non_empty
    & opt_all file []
    & info [ "t"; "target" ] ~docv:"CSV" ~doc:"Target table CSV file (repeatable).")

let tau_arg =
  Arg.(value & opt float 0.5 & info [ "tau" ] ~doc:"StandardMatch confidence threshold.")

let omega_arg =
  Arg.(value & opt float 0.2 & info [ "omega" ] ~doc:"View improvement threshold.")

let late_arg =
  Arg.(value & flag & info [ "late" ] ~doc:"Use LateDisjuncts instead of EarlyDisjuncts.")

let select_arg =
  Arg.(
    value
    & opt string "qual"
    & info [ "select" ] ~docv:"qual|multi|clio"
        ~doc:"SelectContextualMatches policy (clio enables the join rules).")

let algorithm_arg =
  Arg.(
    value
    & opt string "src"
    & info [ "algorithm" ] ~docv:"naive|src|tgt|cluster" ~doc:"InferCandidateViews implementation.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime; 0 (the default) means \
           auto-detect, 1 forces the sequential path.  Results are identical \
           for every value.")

let where_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "where" ] ~docv:"COND"
        ~doc:"Pre-filter source tables with a condition, e.g. \"type = 'book'\".")

let mode_arg =
  Arg.(
    value
    & vflag Relational.Csv_io.Strict
        [
          ( Relational.Csv_io.Strict,
            info [ "strict" ]
              ~doc:"Abort ingestion on any malformed CSV row (the default)." );
          ( Relational.Csv_io.Lenient,
            info [ "lenient" ]
              ~doc:
                "Quarantine malformed CSV rows (reported on stderr) instead of \
                 aborting; the run degrades rather than fails." );
        ])

let timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Cooperative matching deadline in milliseconds: scoring units not \
           started when it expires are skipped and reported, and the partial \
           result is returned.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent profile store directory (created if missing): column \
           artefacts computed by this run are saved there, and a later run \
           over unchanged inputs starts warm, skipping profile recomputation \
           while producing byte-identical matches.  Corrupt or stale shard \
           files are quarantined and rebuilt, never fatal.")

let store_readonly_arg =
  Arg.(
    value
    & flag
    & info [ "store-readonly" ]
        ~doc:
          "Open --store without writing anything back: no flush, and \
           quarantined files are left in place.")

let plan_arg =
  Arg.(
    value
    & opt string "default"
    & info [ "plan" ] ~docv:"SPEC"
        ~doc:
          "Match plan: $(b,default) scores every (matcher, source, target) \
           pair (the legacy pipeline, byte-identical output); \
           $(b,filter[:K[,TAU]]) retrieves the top-$(b,K) q-gram candidate \
           columns per textual source attribute (cosine >= TAU) and only \
           scores those with the instance matchers; $(b,auto) picks \
           whichever the cost model estimates cheaper.  See \
           $(b,explain-plan).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON-lines span trace of the run to $(docv): one object \
           per completed span (id, parent, path, ordinal, start_us, dur_us).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write aggregated observability metrics to $(docv) as JSON: \
           per-stage span durations, counters (rows read, views scored, \
           cache hits/misses), histograms, and pool utilization.")

let profile_arg =
  Arg.(
    value
    & flag
    & info [ "profile" ]
        ~doc:
          "Print a per-stage span tree (count x total time) on stderr after \
           the run.")

let out_dir_arg =
  Arg.(value & opt string "mapped" & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")

let match_cmd =
  let doc = "find (contextual) schema matches between CSV samples" in
  Cmd.v (Cmd.info "match" ~doc)
    Term.(
      const match_cmd_run $ source_arg $ target_arg $ tau_arg $ omega_arg $ late_arg
      $ select_arg $ algorithm_arg $ seed_arg $ where_arg $ jobs_arg $ mode_arg $ timeout_arg
      $ store_arg $ store_readonly_arg $ plan_arg $ trace_arg $ metrics_arg $ profile_arg)

let map_cmd =
  let doc = "match, generate the Clio-style mapping, execute it to CSV" in
  Cmd.v (Cmd.info "map" ~doc)
    Term.(
      const map_cmd_run $ source_arg $ target_arg $ tau_arg $ omega_arg $ late_arg
      $ select_arg $ algorithm_arg $ seed_arg $ where_arg $ jobs_arg $ mode_arg $ timeout_arg
      $ store_arg $ store_readonly_arg $ plan_arg $ trace_arg $ metrics_arg $ profile_arg
      $ out_dir_arg)

let explain_plan_cmd =
  let doc = "print the operator graph a match plan would execute" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Resolves $(b,--plan) against the given source/target workload and \
         prints the operator pipeline — profile, candidate filter, scoring \
         stages, combine, prune, select — one numbered line per operator \
         with estimated pair counts and cost, plus the rewrite rules that \
         normalised the plan (e.g. hoisting the q-gram filter before the \
         expensive instance matchers).  Estimates come from the shipped \
         cost model; $(b,--calibrate) replaces the per-class scoring rates \
         with ones measured by a probe matching run over this very \
         workload.  Nothing else is executed and no matches are printed.";
    ]
  in
  let calibrate =
    Arg.(
      value & flag
      & info [ "calibrate" ]
          ~doc:
            "Run one probe matching pass under the observability recorder \
             and feed the measured per-matcher-class scoring rates into the \
             cost model instead of the shipped defaults.")
  in
  Cmd.v (Cmd.info "explain-plan" ~doc ~man)
    Term.(
      const explain_plan_cmd_run $ source_arg $ target_arg $ tau_arg $ plan_arg $ jobs_arg
      $ mode_arg $ calibrate)

let demo_cmd =
  let doc = "run a built-in scenario (retail or grades)" in
  let scenario =
    Arg.(value & pos 0 string "retail" & info [] ~docv:"SCENARIO" ~doc:"retail|grades")
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo_cmd_run $ scenario)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to serve on / connect to.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port to serve on / connect to (0 binds an ephemeral port).")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host to bind / connect to.")

let queue_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Bounded executor queue (admission control): a match arriving while \
           $(docv) requests are already pending is rejected immediately with a \
           structured \"busy\" reply instead of queueing without bound.")

let max_request_bytes_arg =
  Arg.(
    value
    & opt int (64 * 1024 * 1024)
    & info [ "max-request-bytes" ] ~docv:"BYTES"
        ~doc:
          "Request lines larger than this are answered with a structured \
           \"oversized\" reply and skipped; the connection (and the daemon) \
           live on.")

let flush_every_arg =
  Arg.(
    value
    & opt int 0
    & info [ "flush-every" ] ~docv:"N"
        ~doc:
          "Flush the profile store every $(docv) completed match requests \
           instead of only at shutdown, bounding what a crash can lose.  0 \
           (the default) keeps the shutdown-only behaviour.")

let breaker_threshold_arg =
  Arg.(
    value
    & opt int 3
    & info [ "breaker-threshold" ] ~docv:"N"
        ~doc:
          "Consecutive scoring failures that trip a registered target's \
           circuit breaker open.")

let breaker_cooldown_arg =
  Arg.(
    value
    & opt int 1000
    & info [ "breaker-cooldown-ms" ] ~docv:"MS"
        ~doc:
          "How long a tripped breaker rejects matches (structured \
           \"degraded\" replies) before letting one half-open trial request \
           through.")

let fault_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Arm a deterministic fault site for the daemon's lifetime \
           (repeatable; chaos testing).  $(docv) is \
           site[:rate[:seed[:behaviour]]] with behaviour raise (default), \
           torn=FRACTION or latency=MS — e.g. \
           store-shard-write:0.5:7:torn=0.6.")

let serve_cmd =
  let doc = "serve schema matching over a Unix/TCP socket" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Long-lived daemon speaking a line-delimited JSON protocol: \
         $(b,register-target) prepares a target schema once (warmed profiles, \
         frozen scoring kernel); $(b,match) runs ContextMatch of the posted \
         source sample against a registered target, with the same knobs and \
         defaults as the one-shot $(b,match) command and byte-identical \
         results; $(b,stats) reports counters; $(b,shutdown) drains and \
         exits.  SIGTERM/SIGINT also drain gracefully: admitted requests \
         finish, replies are written, the store is flushed.";
      `P
        "With $(b,--timeout-ms), each request gets a deadline starting at \
         admission — time spent queued counts against it.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const serve_cmd_run $ socket_arg $ port_arg $ host_arg $ jobs_arg $ queue_arg
      $ timeout_arg $ max_request_bytes_arg $ store_arg $ store_readonly_arg
      $ flush_every_arg $ breaker_threshold_arg $ breaker_cooldown_arg $ fault_arg
      $ trace_arg $ metrics_arg $ profile_arg)

let client_cmd =
  let doc = "talk to a running ctxmatch daemon" in
  let command =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"CMD"
          ~doc:
            "One-off command: ping|stats|health|list-targets|shutdown.  Omit to \
             pipe raw JSON request lines from stdin (one reply line each) — \
             including update-target deltas.")
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const client_cmd_run $ socket_arg $ port_arg $ host_arg $ command)

let store_verify_cmd =
  let doc = "audit a profile store directory for crash damage" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Walks every file of a store directory and classifies it: \
         $(b,clean) shards parse end to end, $(b,truncated) shards lost \
         their END footer to a torn write, $(b,corrupt) shards fail to \
         parse some other way, $(b,quarantined) files were already set \
         aside by the recovery path.  Leftover temp files from an \
         interrupted atomic write are counted and harmless.  Nothing is \
         modified.  Exits 0 when every file is clean or quarantined, 6 \
         otherwise.";
    ]
  in
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the audit as one JSON object (per-file entries plus \
             classification counts, delta-record count and index state) \
             instead of the human listing.  The exit code is unchanged.")
  in
  Cmd.v (Cmd.info "store-verify" ~doc ~man) Term.(const store_verify_cmd_run $ dir $ json)

let () =
  let doc = "contextual schema matching (VLDB 2006 reproduction)" in
  let info = Cmd.info "ctxmatch" ~version:"1.0.0" ~doc in
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             match_cmd;
             map_cmd;
             explain_plan_cmd;
             demo_cmd;
             serve_cmd;
             client_cmd;
             store_verify_cmd;
           ])
    with
    | Cli_error { code; message } ->
      Printf.eprintf "ctxmatch: %s\n%!" message;
      code
    | e ->
      Printf.eprintf "ctxmatch: %s\n%!" (Printexc.to_string e);
      match_code
  in
  (* cmdliner reports its own CLI parse errors as 124; fold them into
     the documented usage exit code *)
  exit (if code = Cmd.Exit.cli_error then usage_code else code)
