(** Mutex-protected memo table with hit/miss accounting.

    Keys are in-memory structural values only — they are hashed with
    [Hashtbl.hash] for the table (and for the fault-injection site's
    per-key arming) but are never serialised or written to disk, so
    their byte layout does not need cross-version stability.  Anything
    that persists across processes must derive its key through a
    canonical textual encoding instead (see
    {!Matching.Profile_cache.subset_digest} and [Store.address]).

    Safe to share across domains.  [find_or_add] runs the compute
    function {e outside} the lock, so concurrent misses on distinct
    keys do not serialise; two domains racing on the {e same} key may
    both compute, in which case the first insertion wins and both
    callers return it — with a deterministic compute function every
    caller observes the same value either way. *)

type ('k, 'v) t

val create : ?initial_size:int -> unit -> ('k, 'v) t

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val length : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int
(** Lookups answered from the table. *)

val misses : ('k, 'v) t -> int
(** Lookups that had to compute. *)

type stats = { stat_hits : int; stat_misses : int; stat_entries : int }

val stats : ('k, 'v) t -> stats
(** One consistent view of the counters and the entry count, read
    under the table's lock. *)

val hit_rate : ('k, 'v) t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val clear : ('k, 'v) t -> unit
(** Drop entries and reset the counters.  With observability enabled,
    the dropped entries are counted on the [memo.evicted] metric.

    When the recorder ({!Obs.Recorder.enabled}) is on, every lookup
    also feeds the global [memo.lookups] / [memo.hits] / [memo.misses]
    metrics; [memo.lookups] is jobs-invariant, while the hit/miss
    split can shift by the (rare) same-key compute races described
    above. *)
