type ('k, 'v) t = {
  mutex : Mutex.t;
  table : ('k, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(initial_size = 64) () =
  { mutex = Mutex.create (); table = Hashtbl.create initial_size; hits = 0; misses = 0 }

let find_or_add t key compute =
  (* Injection site for the fault harness: the key's structural hash is
     stable across domains and runs, so an armed fault dooms the same
     lookups whatever the scheduling. *)
  Robust.Fault.check Robust.Fault.Memo_lookup
    ~key:(string_of_int (Hashtbl.hash key));
  if !Obs.Recorder.enabled then Obs.Metrics.incr "memo.lookups";
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some v ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    Obs.Metrics.incr "memo.hits";
    v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    Obs.Metrics.incr "memo.misses";
    let v = compute () in
    Mutex.lock t.mutex;
    let v =
      match Hashtbl.find_opt t.table key with
      | Some winner -> winner (* a racing domain inserted first; converge on its copy *)
      | None ->
        Hashtbl.add t.table key v;
        v
    in
    Mutex.unlock t.mutex;
    v

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let hits t = t.hits
let misses t = t.misses

type stats = { stat_hits : int; stat_misses : int; stat_entries : int }

let stats t =
  Mutex.lock t.mutex;
  let s = { stat_hits = t.hits; stat_misses = t.misses; stat_entries = Hashtbl.length t.table } in
  Mutex.unlock t.mutex;
  s

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let clear t =
  Mutex.lock t.mutex;
  let evicted = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.mutex;
  if evicted > 0 then Obs.Metrics.add "memo.evicted" evicted
