type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable outstanding : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

(* Workers sleep on [work_available]; every finished task decrements
   [outstanding] under the mutex, and the task that empties a batch
   wakes the submitter through [work_done]. *)
let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match Queue.take_opt t.tasks with
      | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        t.outstanding <- t.outstanding - 1;
        if t.outstanding = 0 then Condition.broadcast t.work_done;
        loop ()
      | None ->
        Condition.wait t.work_available t.mutex;
        loop ()
  in
  loop ()

let create ~jobs =
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      tasks = Queue.create ();
      outstanding = 0;
      stop = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Observability wrapper around a chunk body: queue-wait and run-time
   histograms, busy-time accounting, and a span that nests under the
   span open on the SUBMITTING domain (captured here, passed explicitly,
   since the worker's own span stack is empty).  Only built when the
   recorder is on; the disabled cost of instrumentation is the single
   [!Obs.Recorder.enabled] branch at each site. *)
let instrument_chunk run_range =
  let parent = Obs.Trace.current () in
  let submitted = Robust.Deadline.now_ns () in
  fun lo hi ->
    let started = Robust.Deadline.now_ns () in
    Obs.Metrics.observe_ns "pool.task_wait_ns" (Int64.sub started submitted);
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (Robust.Deadline.now_ns ()) started in
        Obs.Metrics.incr "pool.tasks";
        Obs.Metrics.observe_ns "pool.task_run_ns" dur;
        Obs.Metrics.add "pool.busy_ns" (Int64.to_int dur))
      (fun () -> Obs.Trace.with_span ?parent "pool.chunk" (fun () -> run_range lo hi))

(* Split [0, n) into contiguous chunks, queue [run_range lo hi] for
   each, and drain the batch — the submitting domain works through its
   own share instead of going idle.  [run_range] must not raise. *)
let run_chunked t n run_range =
  let observed = !Obs.Recorder.enabled in
  let batch_start = if observed then Robust.Deadline.now_ns () else 0L in
  let run_range = if observed then instrument_chunk run_range else run_range in
  (* More chunks than domains, so an uneven chunk cannot serialise the
     batch; which domain runs which chunk never shows in the output. *)
  let chunks = min n (t.jobs * 4) in
  let base = n / chunks and extra = n mod chunks in
  Mutex.lock t.mutex;
  let lo = ref 0 in
  for c = 0 to chunks - 1 do
    let size = base + if c < extra then 1 else 0 in
    let l = !lo in
    let h = l + size in
    lo := h;
    Queue.add (fun () -> run_range l h) t.tasks
  done;
  t.outstanding <- t.outstanding + chunks;
  Condition.broadcast t.work_available;
  let rec help () =
    match Queue.take_opt t.tasks with
    | Some task ->
      Mutex.unlock t.mutex;
      task ();
      Mutex.lock t.mutex;
      t.outstanding <- t.outstanding - 1;
      if t.outstanding = 0 then Condition.broadcast t.work_done;
      help ()
    | None -> ()
  in
  help ();
  while t.outstanding > 0 do
    Condition.wait t.work_done t.mutex
  done;
  Mutex.unlock t.mutex;
  if observed then begin
    let wall = Int64.sub (Robust.Deadline.now_ns ()) batch_start in
    Obs.Metrics.incr "pool.batches";
    (* capacity = batch wall time x worker count; utilization (exported
       as busy/capacity) says how much of it ran tasks *)
    Obs.Metrics.add "pool.capacity_ns" (Int64.to_int wall * t.jobs)
  end

(* The sequential fallback of a map is the whole batch run as one task
   on the submitting domain: same span/counter taxonomy as the chunked
   path, so jobs=1 runs still report utilization (trivially ~1). *)
let seq_init n eval =
  if not !Obs.Recorder.enabled then Array.init n eval
  else begin
    let started = Robust.Deadline.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (Robust.Deadline.now_ns ()) started in
        Obs.Metrics.incr "pool.batches";
        Obs.Metrics.incr "pool.tasks";
        Obs.Metrics.observe_ns "pool.task_wait_ns" 0L;
        Obs.Metrics.observe_ns "pool.task_run_ns" dur;
        Obs.Metrics.add "pool.busy_ns" (Int64.to_int dur);
        Obs.Metrics.add "pool.capacity_ns" (Int64.to_int dur))
      (fun () -> Obs.Trace.with_span "pool.chunk" (fun () -> Array.init n eval))
  end

let parallel_init t n f =
  if n = 0 then [||]
  else if t.jobs <= 1 || t.stop || n = 1 then seq_init n f
  else begin
    let results = Array.make n None in
    let error = ref None in
    let run_range lo hi =
      try
        for i = lo to hi - 1 do
          results.(i) <- Some (f i)
        done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.mutex;
        if !error = None then error := Some (e, bt);
        Mutex.unlock t.mutex
    in
    run_chunked t n run_range;
    match !error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

(* Fault-contained variant: each index is computed under its own
   try/catch (plus the Pool_task injection site and a cooperative
   deadline check), so one failing element quarantines only itself.
   The per-index outcome depends only on the index and [f], never on
   scheduling, so the Ok/Error pattern — and every Ok payload — is
   identical at every [jobs] value (deadline expiry aside, which is
   inherently timing-dependent). *)
let eval_result deadline f i =
  if Robust.Deadline.expired deadline then
    Error (Robust.Deadline.Expired { stage = "pool" })
  else
    match
      Robust.Fault.check Robust.Fault.Pool_task ~key:(string_of_int i);
      f i
    with
    | v -> Ok v
    | exception e -> Error e

let parallel_init_results t ?(deadline = Robust.Deadline.none) n f =
  let eval = eval_result deadline f in
  if n = 0 then [||]
  else if t.jobs <= 1 || t.stop || n = 1 then seq_init n eval
  else begin
    let results = Array.make n None in
    let run_range lo hi =
      for i = lo to hi - 1 do
        results.(i) <- Some (eval i)
      done
    in
    run_chunked t n run_range;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array t f arr = parallel_init t (Array.length arr) (fun i -> f arr.(i))

let map_array_results t ?deadline f arr =
  parallel_init_results t ?deadline (Array.length arr) (fun i -> f arr.(i))

let mapi_list t f l =
  let arr = Array.of_list l in
  Array.to_list (parallel_init t (Array.length arr) (fun i -> f i arr.(i)))

let map_list t f l = mapi_list t (fun _ x -> f x) l

let map_list_results t ?deadline f l =
  let arr = Array.of_list l in
  Array.to_list (parallel_init_results t ?deadline (Array.length arr) (fun i -> f arr.(i)))

let concat_map_list t f l = List.concat (map_list t f l)

(* One process-wide pool, re-sized on demand.  Spawned domains would
   otherwise sleep in [Condition.wait] at process exit, so the hook
   joins them before the runtime shuts down.  The cache is
   mutex-protected so the serve daemon's executor thread — a systhread,
   not the thread that ran module initialisation — can resize it
   between requests without racing a concurrent caller; batches are
   still submitted from one thread at a time (the executor serialises
   them). *)
let cached : t option ref = ref None
let cached_mutex = Mutex.create ()
let exit_hook = ref false

let get ~jobs =
  Mutex.lock cached_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cached_mutex) @@ fun () ->
  match !cached with
  | Some p when p.jobs = jobs && not p.stop -> p
  | prev ->
    (match prev with Some p -> shutdown p | None -> ());
    let p = create ~jobs in
    cached := Some p;
    if not !exit_hook then begin
      exit_hook := true;
      at_exit (fun () -> match !cached with Some p -> shutdown p | None -> ())
    end;
    p
