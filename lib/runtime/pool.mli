(** Fixed-size [Domain] worker pool with deterministic, index-ordered
    fan-out.

    Work is split into contiguous index chunks and the results are
    written into per-index slots, so every map below returns exactly
    what its sequential counterpart ([Array.init], [List.map], ...)
    would return, regardless of how the chunks are scheduled across
    domains.  The element function must itself be deterministic and
    must not mutate state shared with other elements; shared state it
    only {e reads} must be fully initialised before the call (the task
    hand-off through the pool's mutex establishes the happens-before
    edge that publishes it to the workers).

    A pool of [jobs <= 1] never spawns a domain: every map degrades to
    the plain sequential implementation, byte for byte.

    Batches are submitted from one domain at a time (the pool is not
    re-entrant: do not call a map from inside a task of the same
    pool). *)

type t

val create : jobs:int -> t
(** Spawn [max 0 (jobs - 1)] worker domains; the submitting domain
    works through its own share of the chunks, so [jobs] bounds the
    total number of domains working on a batch. *)

val jobs : t -> int

val shutdown : t -> unit
(** Signal and join all workers.  Idempotent.  Maps on a shut-down
    pool run sequentially. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init t n f] = [Array.init n f] (same order, same
    exceptions — the first raising index re-raises after the batch
    drains). *)

val parallel_init_results :
  t -> ?deadline:Robust.Deadline.t -> int -> (int -> 'a) -> ('a, exn) result array
(** Fault-contained [parallel_init]: every index is computed under its
    own try/catch, so a raising element yields [Error exn] in its slot
    while the rest of the batch completes — no exception escapes.  The
    per-index outcome depends only on the index, so the result array
    (pattern and [Ok] payloads alike) is identical at every [jobs]
    value.  Each index also passes through the
    {!Robust.Fault.Pool_task} injection site (key = the index), and
    once [deadline] expires the remaining indices are quarantined as
    [Error (Robust.Deadline.Expired _)] without being computed —
    deadline placement is the one timing-dependent part. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
val mapi_list : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
val concat_map_list : t -> ('a -> 'b list) -> 'a list -> 'b list

val map_array_results :
  t -> ?deadline:Robust.Deadline.t -> ('a -> 'b) -> 'a array -> ('b, exn) result array

val map_list_results :
  t -> ?deadline:Robust.Deadline.t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Fault-contained counterparts of [map_array] / [map_list]; see
    {!parallel_init_results}. *)

val get : jobs:int -> t
(** Process-wide cached pool.  Re-sizing (asking for a different
    [jobs]) shuts the previous pool down and spawns a fresh one; the
    cached pool is shut down automatically [at_exit].  The cache itself
    is mutex-protected (the serve daemon resizes it from its executor
    thread), but batches must still be submitted from one thread at a
    time. *)
