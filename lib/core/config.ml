type select_policy =
  | Qual_table
  | Multi_table
  | Clio_qual_table

type t = {
  tau : float;
  omega : float;
  early_disjuncts : bool;
  select : select_policy;
  significance : float;
  train_fraction : float;
  seed : int;
  max_naive_partitions : int;
  categorical_params : Relational.Categorical.params;
  matchers : Matching.Matcher.t list;
  gated_confidence : bool;
  jobs : int;
  timeout_ms : int option;
  faults : Robust.Fault.arming list;
  kernel : bool;
  plan : Plan.spec;
}

let default =
  {
    tau = 0.5;
    omega = 0.2;
    early_disjuncts = true;
    select = Qual_table;
    significance = 0.95;
    train_fraction = 2.0 /. 3.0;
    seed = 42;
    max_naive_partitions = 2048;
    categorical_params = Relational.Categorical.default_params;
    matchers = Matching.Matchers.default_suite;
    gated_confidence = true;
    jobs = Domain.recommended_domain_count ();
    timeout_ms = None;
    faults = [];
    kernel = true;
    plan = Plan.Default;
  }

let with_seed t seed = { t with seed }
let with_timeout_ms t timeout_ms = { t with timeout_ms }
let with_jobs t jobs = { t with jobs }
let with_tau t tau = { t with tau }
let with_omega t omega = { t with omega }
let early t = { t with early_disjuncts = true }
let late t = { t with early_disjuncts = false }
let with_kernel t kernel = { t with kernel }
let with_plan t plan = { t with plan }
