open Relational

type scored_view = {
  view : View.t;
  family_attr : string;
  view_matches : Matching.Schema_match.t list;
}

(* All confidence comparisons below go through [Float.compare]: a total
   order (nan below everything, nan equal to itself), so a nan produced
   by a degenerate score can never displace a real match and never
   poisons a fold with the asymmetric false-everywhere answers of the
   IEEE predicates.  Exact ties break on match identity, keeping every
   selection independent of hash-table fold order and of [--jobs]. *)
let better_match (m : Matching.Schema_match.t) (current : Matching.Schema_match.t) =
  let c = Float.compare m.confidence current.confidence in
  c > 0
  || c = 0
     && compare
          (m.src_owner, m.src_attr, m.tgt_table, m.tgt_attr)
          (current.src_owner, current.src_attr, current.tgt_table, current.tgt_attr)
        < 0

let multi_table ~standard ~scored =
  let all = standard @ List.concat_map (fun sv -> sv.view_matches) scored in
  let best = Hashtbl.create 32 in
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      let key = (m.tgt_table, m.tgt_attr) in
      match Hashtbl.find_opt best key with
      | Some current when not (better_match m current) -> ()
      | Some _ | None -> Hashtbl.replace best key m)
    all;
  Hashtbl.fold (fun _ m acc -> m :: acc) best []
  |> List.sort (fun (a : Matching.Schema_match.t) b ->
         compare (a.tgt_table, a.tgt_attr) (b.tgt_table, b.tgt_attr))

let total_confidence matches =
  List.fold_left (fun acc (m : Matching.Schema_match.t) -> acc +. m.confidence) 0.0 matches

(* A candidate replacement for the base table w.r.t. one target table:
   either a single view or a join-rule-1 group of views. *)
type candidate = {
  cand_matches : Matching.Schema_match.t list;
  improvement : float;
}

let sort_matches matches =
  List.sort
    (fun (a : Matching.Schema_match.t) b ->
      compare
        (a.tgt_table, a.tgt_attr, a.src_owner, a.src_attr)
        (b.tgt_table, b.tgt_attr, b.src_owner, b.src_attr))
    matches

let dedup_matches matches =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun (m : Matching.Schema_match.t) ->
      let key =
        ( m.src_owner, m.src_attr, m.tgt_table, m.tgt_attr,
          Relational.Condition.to_string (Relational.Condition.normalize m.condition) )
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    matches

(* Shared skeleton of QualTable and ClioQualTable: pick the strongest
   source table per target, generate candidates, select by omega.  Each
   target table is independent of the others, so with [jobs > 1] they
   are selected on the worker pool; the per-target results are merged
   in target order, exactly as List.concat_map would.  The scored
   views' row-index caches are forced up front: inside the parallel
   section the views (shared across targets) are then only read. *)
let select_per_target ?(jobs = 1) ~omega ~early_disjuncts ~standard ~scored ~target_tables
    ~candidates_of () =
  if jobs > 1 then List.iter (fun sv -> ignore (View.row_count sv.view)) scored;
  Runtime.Pool.concat_map_list
    (Runtime.Pool.get ~jobs)
    (fun tgt_table ->
      let to_target (m : Matching.Schema_match.t) = String.equal m.tgt_table tgt_table in
      let by_source = Hashtbl.create 8 in
      List.iter
        (fun (m : Matching.Schema_match.t) ->
          if to_target m then begin
            let existing = try Hashtbl.find by_source m.src_base with Not_found -> [] in
            Hashtbl.replace by_source m.src_base (m :: existing)
          end)
        standard;
      let best_source =
        Hashtbl.fold
          (fun src ms best ->
            let t = total_confidence ms in
            match best with
            | Some (bsrc, _, bt) ->
              (* Float.compare, not the IEEE predicates: a nan total
                 must lose to every real one (and to another nan the
                 name decides), whatever order the fold visits *)
              let c = Float.compare t bt in
              if c > 0 || (c = 0 && String.compare src bsrc < 0) then Some (src, ms, t)
              else best
            | None -> Some (src, ms, t))
          by_source None
      in
      match best_source with
      | None -> []
      | Some (src, base_matches, base_total) ->
        let candidates = candidates_of ~tgt_table ~src ~base_total in
        let improving = List.filter (fun c -> c.improvement >= omega) candidates in
        let chosen =
          if early_disjuncts then
            (* secondary key on the candidate's match identities, so an
               exact improvement tie picks the same winner whatever
               order [candidates_of] emitted them in *)
            let cand_key c =
              List.map
                (fun (m : Matching.Schema_match.t) ->
                  ( m.src_owner,
                    m.src_attr,
                    m.tgt_table,
                    m.tgt_attr,
                    Condition.to_string (Condition.normalize m.condition) ))
                c.cand_matches
            in
            match
              List.sort
                (fun c1 c2 ->
                  let c = Float.compare c2.improvement c1.improvement in
                  if c <> 0 then c else compare (cand_key c1) (cand_key c2))
                improving
            with
            | [] -> []
            | best :: _ -> [ best ]
          else improving
        in
        if chosen = [] then base_matches
        else dedup_matches (List.concat_map (fun c -> c.cand_matches) chosen))
    target_tables
  |> sort_matches

(* The improvement of a candidate is the strawman's sum of per-match
   deltas (§3): for every base match the view re-scored, the change in
   confidence — not a comparison of unrelated totals, since a view does
   not re-score matches on its own conditioning attribute. *)
let base_confidence standard =
  let table = Hashtbl.create 32 in
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      Hashtbl.replace table (m.src_base, m.src_attr, m.tgt_table, m.tgt_attr) m.confidence)
    standard;
  fun (m : Matching.Schema_match.t) ->
    match Hashtbl.find_opt table (m.src_base, m.src_attr, m.tgt_table, m.tgt_attr) with
    | Some c -> c
    | None -> 0.0

let delta_improvement ~base_conf matches =
  List.fold_left
    (fun acc (m : Matching.Schema_match.t) -> acc +. (m.confidence -. base_conf m))
    0.0 matches

let single_view_candidates scored ~base_conf ~tgt_table ~src =
  let to_target (m : Matching.Schema_match.t) = String.equal m.tgt_table tgt_table in
  List.filter_map
    (fun sv ->
      if not (String.equal (Table.name (View.base sv.view)) src) then None
      else begin
        let ms = List.filter to_target sv.view_matches in
        if ms = [] then None
        else Some { cand_matches = ms; improvement = delta_improvement ~base_conf ms }
      end)
    scored

let qual_table ?jobs ~omega ~early_disjuncts ~standard ~scored ~target_tables () =
  let base_conf = base_confidence standard in
  select_per_target ?jobs ~omega ~early_disjuncts ~standard ~scored ~target_tables
    ~candidates_of:(fun ~tgt_table ~src ~base_total:_ ->
      single_view_candidates scored ~base_conf ~tgt_table ~src)
    ()

(* ---- ClioQualTable ---------------------------------------------------- *)

let joinable_family_key views =
  match views with
  | [] | [ _ ] -> None
  | first :: _ ->
    let base = View.base first in
    let family_attr =
      match Condition.attributes (View.condition first) with
      | [ a ] -> Some a
      | [] | _ :: _ :: _ -> None
    in
    (match family_attr with
    | None -> None
    | Some l ->
      let attrs =
        Schema.attribute_names (Table.schema base) |> List.filter (fun a -> a <> l)
      in
      let materialized = List.map View.materialize views in
      let unique_everywhere x = List.for_all (fun tbl -> Table.is_unique tbl [ x ]) materialized in
      let base_key x = Table.is_unique base [ x; l ] in
      let overlapping x =
        (* the same X values must recur across views: attribute
           normalization, not horizontal partitioning *)
        let value_sets =
          List.map
            (fun tbl ->
              Table.distinct_values tbl x |> List.map Value.to_string
              |> List.fold_left (fun acc v -> acc |> fun s -> v :: s) []
              |> List.sort_uniq String.compare)
            materialized
        in
        match value_sets with
        | [] -> false
        | first_set :: rest ->
          let inter =
            List.fold_left
              (fun acc set -> List.filter (fun v -> List.mem v set) acc)
              first_set rest
          in
          let smallest =
            List.fold_left (fun acc set -> min acc (List.length set)) (List.length first_set) rest
          in
          smallest > 0 && 2 * List.length inter >= smallest
      in
      List.find_opt (fun x -> unique_everywhere x && base_key x && overlapping x) attrs)

let group_candidate group ~base_conf ~tgt_table =
  let to_target (m : Matching.Schema_match.t) = String.equal m.tgt_table tgt_table in
  let views = List.map (fun sv -> sv.view) group in
  match joinable_family_key views with
  | None -> None
  | Some _x ->
    (* Improvement is judged per *edge* — for every accepted base match,
       the best conditional version any family view offers — which is
       symmetric with the base total (a sum over the same edges).  The
       emitted matches are the coherent subset: the best match per
       target attribute. *)
    let best_per_edge = Hashtbl.create 16 in
    let best_per_attr = Hashtbl.create 16 in
    let keep table key (m : Matching.Schema_match.t) =
      match Hashtbl.find_opt table key with
      | Some current when not (better_match m current) -> ()
      | Some _ | None -> Hashtbl.replace table key m
    in
    List.iter
      (fun sv ->
        List.iter
          (fun (m : Matching.Schema_match.t) ->
            if to_target m then begin
              keep best_per_edge (m.src_attr, m.tgt_attr) m;
              keep best_per_attr m.tgt_attr m
            end)
          sv.view_matches)
      group;
    let improvement =
      Hashtbl.fold
        (fun _ (m : Matching.Schema_match.t) acc -> acc +. (m.confidence -. base_conf m))
        best_per_edge 0.0
    in
    let ms = Hashtbl.fold (fun _ m acc -> m :: acc) best_per_attr [] in
    if ms = [] then None else Some { cand_matches = sort_matches ms; improvement }

let clio_qual_table ?jobs ~omega ~early_disjuncts ~standard ~scored ~target_tables () =
  let base_conf = base_confidence standard in
  let candidates_of ~tgt_table ~src ~base_total:_ =
    let singles = single_view_candidates scored ~base_conf ~tgt_table ~src in
    (* group the source's simple (one-value-condition) views by their
       family attribute; each such family is a join-rule-1 candidate *)
    let groups = Hashtbl.create 8 in
    List.iter
      (fun sv ->
        if
          String.equal (Table.name (View.base sv.view)) src
          && Condition.is_simple (View.condition sv.view)
        then begin
          let existing = try Hashtbl.find groups sv.family_attr with Not_found -> [] in
          Hashtbl.replace groups sv.family_attr (sv :: existing)
        end)
      scored;
    let grouped =
      Hashtbl.fold
        (fun _l group acc ->
          if List.length group >= 2 then
            match group_candidate (List.rev group) ~base_conf ~tgt_table with
            | Some c -> c :: acc
            | None -> acc
          else acc)
        groups []
    in
    singles @ grouped
  in
  select_per_target ?jobs ~omega ~early_disjuncts ~standard ~scored ~target_tables
    ~candidates_of ()
