(** Algorithm ContextMatch (paper Fig. 5), end to end:

    for each source table
      M  := StandardMatch(R_S, R_T, tau)
      C  := InferCandidateViews(R_S, M, EarlyDisjuncts)
      RL := ScoreMatch of every M-match re-evaluated under every view
    return SelectContextualMatches(M, RL, omega, EarlyDisjuncts) *)

open Relational

type result = {
  matches : Matching.Schema_match.t list;  (** selected contextual + standard matches *)
  standard : Matching.Schema_match.t list;  (** accepted standard matches (all tables) *)
  families : View.family list;  (** candidate view families generated *)
  scored : Select_matches.scored_view list;  (** RL grouped per view *)
  candidate_view_count : int;
  elapsed_seconds : float;
  cache_hits : int;  (** profile-cache lookups answered from the cache *)
  cache_misses : int;  (** profile-cache lookups that had to compute *)
  profile_builds : int;
      (** column artefacts computed from raw values: lookups that
          missed both the in-memory caches and the persistent store.
          0 on a fully warm [store] run over unchanged inputs *)
  issues : Robust.Error.t list;
      (** units of work quarantined during this run (skipped source
          attributes, candidate views, inference failures, deadline
          expiries); empty on a clean run.  The surviving [matches] are
          exactly what a run without the quarantined units would have
          produced — see DESIGN.md, "Failure semantics" *)
  plan : Plan.t;
      (** the operator graph the StandardMatch phase executed
          (resolved from [config.plan]) *)
  pairs_scored : int;
      (** (matcher, source attr, target col) scoring events performed;
          jobs-invariant *)
  pairs_pruned : int;
      (** scoring events skipped by the plan's filter stage (0 under
          the default plan); jobs-invariant *)
}

val shape_of : source:Database.t -> target:Database.t -> Plan.Cost.shape
(** Workload shape for the plan cost model, computed from the two
    schemas alone (used by [explain-plan] and [Plan.Auto]
    resolution). *)

val run :
  ?config:Config.t ->
  ?store:Store.t ->
  ?prepared:Matching.Standard_match.prepared_target ->
  ?deadline:Robust.Deadline.t ->
  infer:Infer.t ->
  source:Database.t ->
  target:Database.t ->
  unit ->
  result
(** Runs with [config.faults] armed (restored on exit) and, when
    [config.timeout_ms] is set, under a cooperative deadline checked
    between scoring units.  Recoverable per-unit failures degrade the
    result and are listed in [issues] instead of raising.

    With a [store], column artefacts are served from / written through
    to the persistent store (see {!Matching.Standard_match.build});
    store quarantine issues are appended to [issues].  The caller still
    owns {!Store.flush}.

    With [prepared] (a registered target in the serve daemon), the
    target-side preparation is skipped and the shared artefact is
    consumed; the result is bit-identical to an inline run over the
    same target.  An explicit [deadline] overrides the one derived from
    [config.timeout_ms] — the daemon threads its per-request admission
    deadline through here so queue wait counts against the request
    budget. *)

val contextual_matches : result -> Matching.Schema_match.t list
(** Only the selected matches that originate from views (the edges the
    evaluation of §5 scores). *)

val infer_of :
  [ `Naive | `Src_class | `Tgt_class | `Cluster ] -> target:Database.t -> Infer.t
(** Convenience constructor for the paper's view-inference algorithms
    (including the clustering-based variant the paper evaluated but
    omitted for brevity, §3.2.2). *)
