open Relational

type stage = {
  stage_index : int;
  result : Context_match.result;
}

let restrict_infer (infer : Infer.t) forbidden =
  {
    infer with
    Infer.infer =
      (fun rng config ~source_table ~matches ->
        let families = infer.Infer.infer rng config ~source_table ~matches in
        let bad =
          try Hashtbl.find forbidden (Table.name source_table) with Not_found -> []
        in
        List.filter (fun f -> not (List.mem f.View.attribute bad)) families);
  }

(* Materialise the distinct views used by the selected contextual
   matches of a stage; returns the new source database plus the mapping
   materialised-table-name -> (original base, accumulated condition). *)
let materialize_stage (matches : Matching.Schema_match.t list) origin_of =
  let seen = Hashtbl.create 8 in
  let lineage = Hashtbl.create 8 in
  let tables = ref [] in
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      if Matching.Schema_match.is_contextual m && not (Hashtbl.mem seen m.src_owner) then begin
        Hashtbl.add seen m.src_owner ();
        match origin_of m with
        | None -> ()
        | Some (base_table, base_name, prior_condition) ->
          let condition = Condition.conjoin prior_condition m.condition in
          let view = View.make ~name:m.src_owner base_table m.condition in
          if View.row_count view > 0 then begin
            Hashtbl.add lineage m.src_owner (base_name, condition);
            tables := View.materialize view :: !tables
          end
      end)
    matches;
  (List.rev !tables, lineage)

let run ?(config = Config.default) ?(stages = 2) ~algorithm ~source ~target () =
  let infer = Context_match.infer_of algorithm ~target in
  let stage1 = Context_match.run ~config ~infer ~source ~target () in
  let best = Hashtbl.create 32 in
  let edge_key (m : Matching.Schema_match.t) = (m.src_base, m.src_attr, m.tgt_table, m.tgt_attr) in
  List.iter (fun m -> Hashtbl.replace best (edge_key m) m) stage1.Context_match.matches;
  let all_stages = ref [ { stage_index = 1; result = stage1 } ] in
  let rec iterate stage_index prev_matches prev_db lineage =
    if stage_index > stages then ()
    else begin
      let origin_of (m : Matching.Schema_match.t) =
        match Database.table_opt prev_db m.src_base with
        | None -> None
        | Some tbl ->
          let base_name, prior =
            match Hashtbl.find_opt lineage m.src_base with
            | Some (base, cond) -> (base, cond)
            | None -> (m.src_base, Condition.True)
          in
          Some (tbl, base_name, prior)
      in
      let tables, next_lineage = materialize_stage prev_matches origin_of in
      if tables = [] then ()
      else begin
        let next_db = Database.make (Database.name prev_db ^ "+views") tables in
        (* Forbid re-partitioning on attributes already fixed by the
           accumulated condition of each materialised view. *)
        let forbidden = Hashtbl.create 8 in
        Hashtbl.iter
          (fun view_name (_, condition) ->
            Hashtbl.replace forbidden view_name (Condition.attributes condition))
          next_lineage;
        let restricted = restrict_infer infer forbidden in
        (* Later stages refine an already-specialised view, so the
           remaining per-match improvements are intrinsically smaller —
           typically a single attribute's confidence delta; quarter the
           improvement threshold per stage. *)
        let stage_config =
          Config.with_omega config
            (config.Config.omega /. Float.pow 4.0 (float_of_int (stage_index - 1)))
        in
        (* Each stage's run builds its own StandardMatch model — and
           with it a fresh interner dictionary and condition-attribute
           partitions over the materialised stage tables, so the scoring
           kernel applies to every conjunctive stage, not just the
           first. *)
        let result =
          Context_match.run ~config:stage_config ~infer:restricted ~source:next_db ~target ()
        in
        all_stages := { stage_index; result } :: !all_stages;
        (* Compose conditions and fold improvements into [best]. *)
        let composed =
          List.filter_map
            (fun (m : Matching.Schema_match.t) ->
              if not (Matching.Schema_match.is_contextual m) then None
              else
                match Hashtbl.find_opt next_lineage m.src_base with
                | None -> None
                | Some (base_name, accumulated) ->
                  Some
                    {
                      m with
                      Matching.Schema_match.src_base = base_name;
                      condition = Condition.normalize (Condition.conjoin accumulated m.condition);
                    })
            result.Context_match.matches
        in
        List.iter
          (fun (m : Matching.Schema_match.t) ->
            match Hashtbl.find_opt best (edge_key m) with
            | Some (existing : Matching.Schema_match.t)
              when existing.confidence >= m.confidence -> ()
            | Some _ | None -> Hashtbl.replace best (edge_key m) m)
          composed;
        iterate (stage_index + 1) result.Context_match.matches next_db next_lineage
      end
    end
  in
  iterate 2 stage1.Context_match.matches source (Hashtbl.create 1);
  let final =
    Hashtbl.fold (fun _ m acc -> m :: acc) best []
    |> List.sort (fun (a : Matching.Schema_match.t) b ->
           compare
             (a.tgt_table, a.tgt_attr, a.src_base, a.src_attr)
             (b.tgt_table, b.tgt_attr, b.src_base, b.src_attr))
  in
  (List.rev !all_stages, final)
