(** SelectContextualMatches (paper §3.4): prune the scored view matches
    to a small, coherent set for the user. *)

open Relational

type scored_view = {
  view : View.t;
  family_attr : string;  (** categorical attribute the view conditions on *)
  view_matches : Matching.Schema_match.t list;  (** ScoreMatch output for this view *)
}

val multi_table :
  standard:Matching.Schema_match.t list ->
  scored:scored_view list ->
  Matching.Schema_match.t list
(** MultiTable: the single highest-confidence match per target
    attribute, across base tables and all views.  A target table may end
    up fed by many unrelated sources — the paper shows this performs
    poorly. *)

val qual_table :
  ?jobs:int ->
  omega:float ->
  early_disjuncts:bool ->
  standard:Matching.Schema_match.t list ->
  scored:scored_view list ->
  target_tables:string list ->
  unit ->
  Matching.Schema_match.t list
(** QualTable: per target table, pick the source table maximising the
    total confidence of its standard matches, then the candidate view(s)
    of that table whose total match confidence improves on the base
    table by at least [omega].  EarlyDisjuncts selects the single best
    improving view (conditions may be disjunctive); LateDisjuncts keeps
    every improving view.  When no view improves enough, the base
    table's standard matches are returned for that target.

    [jobs] (default 1) selects target tables in parallel on the worker
    pool; the result is identical to the sequential selection. *)

val joinable_family_key : View.t list -> string option
(** The join-rule-1 check of ClioQualTable: a single attribute X such
    that (a) X is unique within every view of the family (a propagated
    view key), (b) X together with the family's conditioning attribute
    is a key of the base table (so the contextual-constraint rule yields
    the required contextual foreign keys), and (c) the views genuinely
    overlap on X values — the same objects appear in different views, as
    in attribute normalization, rather than being partitioned. *)

val clio_qual_table :
  ?jobs:int ->
  omega:float ->
  early_disjuncts:bool ->
  standard:Matching.Schema_match.t list ->
  scored:scored_view list ->
  target_tables:string list ->
  unit ->
  Matching.Schema_match.t list
(** ClioQualTable (paper §5.7): QualTable extended with the §4.3 join
    rules.  In addition to individual candidate views, each view family
    that passes {!joinable_family_key} forms a *joined* candidate whose
    matches are, per target attribute, the best match offered by any
    view in the family; the group's total confidence competes against
    the base table under the same [omega] threshold.  This is what lets
    attribute normalization (grades) be discovered: each examNum view
    explains one target column, and only their join beats the base. *)
