(** Tuning knobs of the ContextMatch algorithm (paper Fig. 5 and §5).

    Defaults: tau = 0.5 and significance T = 0.95 as in §5; omega = 0.2,
    the centre of this matcher's plateau (the paper's 0.5 lives on its
    own confidence scale — see EXPERIMENTS.md, "Calibration"). *)

type select_policy =
  | Qual_table  (** best consistent source table / view set per target table (§3.4) *)
  | Multi_table  (** best single match per target attribute (§3.4) *)
  | Clio_qual_table
      (** QualTable extended with the §4.3 join rules (§5.7); required
          for attribute normalization *)

type t = {
  tau : float;  (** StandardMatch acceptance threshold *)
  omega : float;  (** view improvement threshold of SelectContextualMatches *)
  early_disjuncts : bool;
      (** true = EarlyDisjuncts (disjunctive conditions in candidate
          views, single best view selected); false = LateDisjuncts *)
  select : select_policy;
  significance : float;  (** T of the ClusteredViewGen significance test *)
  train_fraction : float;  (** held-out split for classifier evaluation *)
  seed : int;  (** root of all randomness *)
  max_naive_partitions : int;
      (** cap on the number of disjunctive families NaiveInfer
          enumerates under EarlyDisjuncts (Bell-number explosion guard) *)
  categorical_params : Relational.Categorical.params;
  matchers : Matching.Matcher.t list;
  gated_confidence : bool;
      (** score-gated confidence (phi(z) * sqrt raw) instead of the pure
          z-score confidence; see DESIGN.md and the ablation bench *)
  jobs : int;
      (** worker domains for the parallel runtime (default
          [Domain.recommended_domain_count ()]); [jobs <= 1] runs the
          exact sequential path.  Results are identical either way —
          see DESIGN.md, "Deterministic multicore runtime" *)
  timeout_ms : int option;
      (** cooperative deadline for one {!Context_match.run}: once it
          expires, not-yet-started scoring units are quarantined and
          reported instead of computed, and the run returns the partial
          result (default [None] = unlimited; see DESIGN.md, "Failure
          semantics") *)
  faults : Robust.Fault.arming list;
      (** fault-injection sites armed for the duration of a run
          (default [[]]); used by the deterministic fault harness —
          see [test/faults] *)
  kernel : bool;
      (** interned q-gram scoring kernel + partitioned view profiles
          (default true).  Scores are bit-identical either way — the
          switch trades nothing but time, and exists for the kernel
          bench's baseline and for differential tests; see DESIGN.md,
          "Scoring kernel" *)
  plan : Plan.spec;
      (** operator graph for the StandardMatch phase (default
          [Plan.Default], the legacy pipeline bit for bit).
          [Plan.Filtered] inserts top-k q-gram candidate retrieval
          before the filterable matchers; [Plan.Auto] picks by cost
          model.  See DESIGN.md, "Match plans" *)
}

val default : t

val with_seed : t -> int -> t
val with_timeout_ms : t -> int option -> t
val with_jobs : t -> int -> t
val with_tau : t -> float -> t
val with_omega : t -> float -> t
val early : t -> t
val late : t -> t
val with_kernel : t -> bool -> t
val with_plan : t -> Plan.spec -> t
