open Relational

type result = {
  matches : Matching.Schema_match.t list;
  standard : Matching.Schema_match.t list;
  families : View.family list;
  scored : Select_matches.scored_view list;
  candidate_view_count : int;
  elapsed_seconds : float;
  cache_hits : int;
  cache_misses : int;
  profile_builds : int;
  issues : Robust.Error.t list;
  plan : Plan.t;
  pairs_scored : int;
  pairs_pruned : int;
}

(* Workload shape for the plan cost model, from the schemas alone. *)
let shape_of ~source ~target =
  let count db =
    List.fold_left
      (fun (total, textual, numeric) tbl ->
        Array.fold_left
          (fun (total, textual, numeric) (attr : Attribute.t) ->
            ( total + 1,
              (textual + if Attribute.is_textual attr then 1 else 0),
              (numeric + if Attribute.is_numeric attr then 1 else 0) ))
          (total, textual, numeric)
          (Schema.attributes (Table.schema tbl)))
      (0, 0, 0) (Database.tables db)
  in
  let src_attrs, textual_src, numeric_src = count source in
  let tgt_cols, textual_tgt, numeric_tgt = count target in
  { Plan.Cost.src_attrs; tgt_cols; textual_src; textual_tgt; numeric_src; numeric_tgt }

(* Resolve the config's plan spec against this run's workload.
   [Default] maps to [None] so [Standard_match.build] constructs its
   own default plan — the two are the same plan; this just keeps one
   construction site. *)
let resolve_plan config ~source ~target =
  match config.Config.plan with
  | Plan.Default -> None
  | spec ->
    Some
      (Plan.resolve
         ~shape:(shape_of ~source ~target)
         ~gated:config.Config.gated_confidence ~tau:config.Config.tau
         ~kernel:config.Config.kernel
         ~matchers:(Matching.Matchers.plan_specs config.Config.matchers)
         spec)

(* Fault containment: every fan-out stage (StandardMatch build,
   candidate-view scoring) runs through the result-aware pool, so one
   failing unit quarantines only its source attribute / candidate view;
   the issue lands in the run's report and the rest of the pipeline sees
   a correspondingly smaller — but otherwise identical — input.  Issues
   are recorded from deterministic merge loops in index order, so both
   the partial result and the report are jobs-invariant (cooperative
   deadline expiry excepted, which is inherently timing-dependent). *)
let run ?(config = Config.default) ?store ?prepared ?deadline ~infer ~source ~target () =
  Robust.Fault.with_armed config.Config.faults @@ fun () ->
  Obs.Trace.with_span "context_match" @@ fun () ->
  if !Obs.Recorder.enabled then
    Obs.Metrics.set_gauge "pool.jobs" (float_of_int config.Config.jobs);
  let started = Robust.Deadline.now_ns () in
  (* An explicit [deadline] (the serve daemon's per-request admission
     deadline, which must keep counting queue wait) overrides the
     config-derived one. *)
  let deadline =
    match deadline with
    | Some d -> d
    | None -> (
      match config.Config.timeout_ms with
      | None -> Robust.Deadline.none
      | Some ms -> Robust.Deadline.after_ms ms)
  in
  let report = Robust.Report.create () in
  let jobs = config.Config.jobs in
  let pool = Runtime.Pool.get ~jobs in
  let rng = Stats.Rng.create config.Config.seed in
  let plan = resolve_plan config ~source ~target in
  let model =
    Matching.Standard_match.build ~gated:config.Config.gated_confidence
      ~matchers:config.Config.matchers ~jobs ~report ~deadline ?store
      ~kernel:config.Config.kernel ?prepared ?plan ~source ~target ()
  in
  (* Per-table chunks are prepended and concatenated once at the end:
     appending with [@] inside the loop would re-copy the accumulated
     prefix per table (quadratic in the table count). *)
  let rev_standard = ref [] in
  let rev_families = ref [] in
  let all_scored = ref [] in
  List.iter
    (fun source_table ->
      let src_name = Table.name source_table in
      (* Fig. 5 line 4: M := StandardMatch(R_S, R_T, tau) *)
      let m =
        Obs.Trace.with_span "standard_matches" (fun () ->
            Matching.Standard_match.matches_from model ~src_table:src_name ~tau:config.tau)
      in
      rev_standard := m :: !rev_standard;
      if !Obs.Recorder.enabled then Obs.Metrics.add "match.standard_matches" (List.length m);
      (* line 5: C := InferCandidateViews(R_S, M, EarlyDisjuncts) — a
         raising inference quarantines this source table's views only.
         The span is the paper's "view generation + condition
         inference" phase. *)
      let families =
        Obs.Trace.with_span "infer_views" @@ fun () ->
        match infer.Infer.infer (Stats.Rng.split rng) config ~source_table ~matches:m with
        | families -> families
        | exception e ->
          Robust.Report.record report ~table:src_name Robust.Error.Infer
            (Printf.sprintf "candidate-view inference skipped: %s" (Printexc.to_string e));
          []
      in
      rev_families := families :: !rev_families;
      if !Obs.Recorder.enabled then Obs.Metrics.add "match.families" (List.length families);
      (* lines 6-11: score every match of R_S under every candidate view *)
      let family_attr_of view =
        match
          List.find_opt (fun f -> List.memq view f.View.views) families
        with
        | Some f -> f.View.attribute
        | None -> ""
      in
      let views = Infer.views_of_families families in
      (* Each view is scored by exactly one task, and the merge below
         walks the results in view order: the scored list is identical
         to the sequential loop's whatever the scheduling.  A failing
         view is quarantined with an issue instead of killing the run. *)
      if !Obs.Recorder.enabled then Obs.Metrics.add "match.candidate_views" (List.length views);
      let scored_matches =
        Obs.Trace.with_span "score_views" (fun () ->
            Runtime.Pool.map_list_results pool ~deadline
              (fun view -> Matching.Standard_match.view_matches model view ~base_matches:m)
              views)
      in
      List.iter2
        (fun view outcome ->
          match outcome with
          | Error e ->
            Robust.Report.record report ~table:src_name ~attribute:(family_attr_of view)
              Robust.Error.Score
              (Printf.sprintf "candidate view %s skipped: %s" (View.name view)
                 (Printexc.to_string e))
          | Ok view_matches ->
            if view_matches <> [] then
              all_scored :=
                {
                  Select_matches.view;
                  family_attr = family_attr_of view;
                  view_matches;
                }
                :: !all_scored)
        views scored_matches)
    (Database.tables source);
  let standard = List.concat (List.rev !rev_standard) in
  let scored = List.rev !all_scored in
  (* line 12: SelectContextualMatches *)
  let matches =
    Obs.Trace.with_span "select_matches" @@ fun () ->
    match config.Config.select with
    | Config.Multi_table -> Select_matches.multi_table ~standard ~scored
    | Config.Qual_table ->
      Select_matches.qual_table ~jobs ~omega:config.Config.omega
        ~early_disjuncts:config.Config.early_disjuncts ~standard ~scored
        ~target_tables:(Database.table_names target) ()
    | Config.Clio_qual_table ->
      Select_matches.clio_qual_table ~jobs ~omega:config.Config.omega
        ~early_disjuncts:config.Config.early_disjuncts ~standard ~scored
        ~target_tables:(Database.table_names target) ()
  in
  let cache_hits, cache_misses = Matching.Standard_match.cache_stats model in
  (* One-shot export of the run's cache economics and containment
     outcome.  The lookup total is jobs-invariant; the hit/miss split
     can shift by same-key compute races (see Runtime.Memo). *)
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.add "cache.profile.hits" cache_hits;
    Obs.Metrics.add "cache.profile.misses" cache_misses;
    Obs.Metrics.add "cache.profile.lookups" (cache_hits + cache_misses);
    Obs.Metrics.add "match.selected" (List.length matches);
    Obs.Metrics.add "robust.issues" (Robust.Report.count report)
  end;
  {
    matches;
    standard;
    families = List.concat (List.rev !rev_families);
    scored;
    candidate_view_count = List.length scored;
    elapsed_seconds =
      Int64.to_float (Int64.sub (Robust.Deadline.now_ns ()) started) /. 1e9;
    cache_hits;
    cache_misses;
    profile_builds = Matching.Standard_match.profile_builds model;
    (* store quarantines (if any) ride along with the run's own issues,
       so callers see every degradation in one place *)
    issues =
      (Robust.Report.issues report
      @ match store with Some s -> Store.issues s | None -> []);
    plan = Matching.Standard_match.plan model;
    pairs_scored = Matching.Standard_match.pairs_scored model;
    pairs_pruned = Matching.Standard_match.pairs_pruned model;
  }

let contextual_matches result =
  List.filter Matching.Schema_match.is_contextual result.matches

let infer_of algorithm ~target =
  match algorithm with
  | `Naive -> Naive_infer.infer
  | `Src_class -> Src_class_infer.infer
  | `Tgt_class -> Tgt_class_infer.infer target
  | `Cluster -> Cluster_infer.infer
