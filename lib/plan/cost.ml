type model = {
  ns_trivial : float;
  ns_cheap : float;
  ns_instance : float;
  ns_qgram : float;
  ns_profile : float;
  ns_filter : float;
  ns_combine : float;
  ns_prune : float;
  ns_select : float;
}

(* Conservative defaults in the right relative order (trivial <<
   cheap << instance < qgram); absolute values only matter once
   calibrated. *)
let default =
  {
    ns_trivial = 30.0;
    ns_cheap = 120.0;
    ns_instance = 2_500.0;
    ns_qgram = 6_000.0;
    ns_profile = 40_000.0;
    ns_filter = 15_000.0;
    ns_combine = 150.0;
    ns_prune = 20.0;
    ns_select = 200.0;
  }

let class_cost m = function
  | Op.Trivial -> m.ns_trivial
  | Op.Cheap -> m.ns_cheap
  | Op.Instance -> m.ns_instance
  | Op.Qgram -> m.ns_qgram

let of_snapshot ?(base = default) snap =
  let rate cls fallback =
    let name = Op.class_name cls in
    let pairs = Obs.Metrics.counter_value snap ("plan.score_pairs." ^ name) in
    if pairs <= 0 then fallback
    else
      match Obs.Metrics.histogram snap ("plan.score_ns." ^ name) with
      | Some h when h.Obs.Metrics.sum > 0.0 -> h.Obs.Metrics.sum /. float_of_int pairs
      | Some _ | None -> fallback
  in
  (* The filter rate calibrates the same way as the class rates, from
     the per-probe wall times the retrieval wrapper records — one
     [plan.filter_probes] event per candidate retrieval, whatever path
     (kernel block-max top-k or exact pairwise fallback) served it. *)
  let ns_filter =
    let probes = Obs.Metrics.counter_value snap "plan.filter_probes" in
    if probes <= 0 then base.ns_filter
    else
      match Obs.Metrics.histogram snap "plan.filter_ns" with
      | Some h when h.Obs.Metrics.sum > 0.0 -> h.Obs.Metrics.sum /. float_of_int probes
      | Some _ | None -> base.ns_filter
  in
  {
    base with
    ns_trivial = rate Op.Trivial base.ns_trivial;
    ns_cheap = rate Op.Cheap base.ns_cheap;
    ns_instance = rate Op.Instance base.ns_instance;
    ns_qgram = rate Op.Qgram base.ns_qgram;
    ns_filter;
  }

type shape = {
  src_attrs : int;
  tgt_cols : int;
  textual_src : int;
  textual_tgt : int;
  numeric_src : int;
  numeric_tgt : int;
}

let shape_to_string s =
  Printf.sprintf "%d src attrs (%d textual, %d numeric) x %d tgt cols (%d textual, %d numeric)"
    s.src_attrs s.textual_src s.numeric_src s.tgt_cols s.textual_tgt s.numeric_tgt

type line = { op : Op.t; est_pairs : int; est_ns : float }

let matcher_pairs shape ~filter_k (m : Op.matcher_spec) =
  match m.m_applies with
  | Op.All -> shape.src_attrs * shape.tgt_cols
  | Op.Numeric -> shape.numeric_src * shape.numeric_tgt
  | Op.Textual ->
    let per_src =
      match filter_k with
      | Some k when m.m_filterable -> min k shape.textual_tgt
      | Some _ | None -> shape.textual_tgt
    in
    shape.textual_src * per_src

let plan_cost model shape ops =
  let cross = shape.src_attrs * shape.tgt_cols in
  let filter_k = ref None in
  List.map
    (fun op ->
      match op with
      | Op.Profile { side } ->
        let cols = match side with `Source -> shape.src_attrs | `Target -> shape.tgt_cols in
        { op; est_pairs = cols; est_ns = float_of_int cols *. model.ns_profile }
      | Op.Filter { k; _ } ->
        filter_k := Some k;
        let probes = shape.textual_src in
        { op; est_pairs = probes; est_ns = float_of_int probes *. model.ns_filter }
      | Op.Score { matchers } ->
        let pairs, ns =
          List.fold_left
            (fun (p, ns) m ->
              let mp = matcher_pairs shape ~filter_k:!filter_k m in
              (p + mp, ns +. (float_of_int mp *. class_cost model m.Op.m_class)))
            (0, 0.0) matchers
        in
        { op; est_pairs = pairs; est_ns = ns }
      | Op.Prune _ -> { op; est_pairs = cross; est_ns = float_of_int cross *. model.ns_prune }
      | Op.Combine _ -> { op; est_pairs = cross; est_ns = float_of_int cross *. model.ns_combine }
      | Op.Select _ -> { op; est_pairs = cross; est_ns = float_of_int cross *. model.ns_select })
    ops

let total_ns lines = List.fold_left (fun acc l -> acc +. l.est_ns) 0.0 lines
