type cost_class = Trivial | Cheap | Instance | Qgram

let class_rank = function Trivial -> 0 | Cheap -> 1 | Instance -> 2 | Qgram -> 3

let class_name = function
  | Trivial -> "trivial"
  | Cheap -> "cheap"
  | Instance -> "instance"
  | Qgram -> "qgram"

type applies = All | Textual | Numeric

type matcher_spec = {
  m_name : string;
  m_weight : float;
  m_kernel : bool;
  m_filterable : bool;
  m_class : cost_class;
  m_applies : applies;
}

type t =
  | Profile of { side : [ `Source | `Target ] }
  | Filter of { k : int; tau : float }
  | Score of { matchers : matcher_spec list }
  | Prune of { tau : float }
  | Combine of { gated : bool }
  | Select of { policy : string }

let matcher_to_string m =
  let tags = [ class_name m.m_class ] in
  let tags = if m.m_kernel then tags @ [ "kernel" ] else tags in
  Printf.sprintf "%s(%.2f,%s)" m.m_name m.m_weight (String.concat "," tags)

let to_string = function
  | Profile { side } ->
    Printf.sprintf "profile[%s]" (match side with `Source -> "source" | `Target -> "target")
  | Filter { k; tau } -> Printf.sprintf "filter[k=%d,tau=%.2f]" k tau
  | Score { matchers } ->
    Printf.sprintf "score[%s]" (String.concat " " (List.map matcher_to_string matchers))
  | Prune { tau } -> Printf.sprintf "prune[tau=%.2f]" tau
  | Combine { gated } -> Printf.sprintf "combine[%s]" (if gated then "gated" else "ungated")
  | Select { policy } -> Printf.sprintf "select[%s]" policy
