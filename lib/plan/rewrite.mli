(** Rewrite rules over operator lists.

    Each rule either rewrites the plan ([Some ops']) or declines
    ([None]); {!apply_fixpoint} runs a rule list to a fixpoint
    (bounded) and reports which rules fired, in order.  Rules are
    {e result-preserving by construction}: they reorder or regroup
    work (filters before scoring, matcher order within a score stage)
    but never change which pairs are ultimately scored by which
    matcher semantics — the differential suite in [test/plan] holds
    them to that. *)

type rule = { rule_name : string; apply : Op.t list -> Op.t list option }

val filter_before_score : rule
(** Move a [Filter] that appears after a [Score] to just before the
    first [Score], so candidate retrieval precedes expensive
    matchers. *)

val fuse_scores : rule
(** Merge adjacent [Score] stages into one (concatenating matcher
    lists), removing a pipeline barrier. *)

val order_matchers : rule
(** Within each [Score], stable-sort matchers by ascending
    {!Op.class_rank} so cheap matchers run first. *)

val default_rules : rule list
(** [filter_before_score; fuse_scores; order_matchers]. *)

val apply_fixpoint : ?max_steps:int -> rule list -> Op.t list -> Op.t list * string list
(** Apply rules round-robin until none fires (or [max_steps], default
    32, rewrites happened); returns the rewritten plan and the names
    of rules that fired, in firing order. *)
