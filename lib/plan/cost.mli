(** Cost model for match plans.

    Estimates are nanoseconds, computed as [pairs x ns-per-pair] for
    scoring operators plus small structural terms for the rest.  The
    per-class rates ship with conservative defaults and can be
    {e calibrated} from a real run: [Standard_match] records
    [plan.score_ns.<class>] histograms and [plan.score_pairs.<class>]
    counters (behind [Obs.Recorder.enabled]), and {!of_snapshot}
    divides one by the other.  Estimates only steer plan choice and
    explain output — they never change match results. *)

type model = {
  ns_trivial : float;  (** per pair, [Op.Trivial] matchers *)
  ns_cheap : float;
  ns_instance : float;
  ns_qgram : float;
  ns_profile : float;  (** per column profiled *)
  ns_filter : float;  (** per textual source attribute (index probe) *)
  ns_combine : float;  (** per pair combined *)
  ns_prune : float;  (** per pair thresholded *)
  ns_select : float;  (** per pair considered by selection *)
}

val default : model

val class_cost : model -> Op.cost_class -> float

val of_snapshot : ?base:model -> Obs.Metrics.snapshot -> model
(** Override each per-class rate with
    [plan.score_ns.<class>.sum / plan.score_pairs.<class>], and
    [ns_filter] with [plan.filter_ns.sum / plan.filter_probes], when
    the corresponding counter is positive; keep [base] (default
    {!default}) otherwise. *)

type shape = {
  src_attrs : int;  (** total source attributes (all tables) *)
  tgt_cols : int;  (** total target columns *)
  textual_src : int;
  textual_tgt : int;
  numeric_src : int;
  numeric_tgt : int;
}
(** Workload shape a plan is costed against. *)

val shape_to_string : shape -> string

type line = { op : Op.t; est_pairs : int; est_ns : float }

val plan_cost : model -> shape -> Op.t list -> line list
(** Walk the plan left to right tracking the active filter (a
    [Filter] caps each textual source attribute at [k] textual
    candidates for downstream {e filterable} matchers), and estimate
    per-operator pair counts and cost. *)

val total_ns : line list -> float
(** Sum of estimated cost, in plan order. *)
