module Op = Op
module Cost = Cost
module Rewrite = Rewrite

type t = { plan_name : string; ops : Op.t list; rewrites : string list }

type spec = Default | Filtered of { k : int; tau : float } | Auto

let default_k = 16

let spec_to_string = function
  | Default -> "default"
  | Filtered { k; tau } ->
    if tau = 0.0 then Printf.sprintf "filter:%d" k else Printf.sprintf "filter:%d,%g" k tau
  | Auto -> "auto"

let spec_of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  match s with
  | "default" | "legacy" -> Ok Default
  | "auto" -> Ok Auto
  | "filter" -> Ok (Filtered { k = default_k; tau = 0.0 })
  | _ when String.length s > 7 && String.sub s 0 7 = "filter:" -> (
    let body = String.sub s 7 (String.length s - 7) in
    let parts = String.split_on_char ',' body in
    let parse_k k =
      match int_of_string_opt (String.trim k) with
      | Some k when k > 0 -> Ok k
      | Some _ | None -> Error (Printf.sprintf "plan spec %S: k must be a positive integer" s)
    in
    match parts with
    | [ k ] -> Result.map (fun k -> Filtered { k; tau = 0.0 }) (parse_k k)
    | [ k; tau ] -> (
      match (parse_k k, float_of_string_opt (String.trim tau)) with
      | Ok k, Some tau when tau >= 0.0 && tau <= 1.0 -> Ok (Filtered { k; tau })
      | Ok _, _ -> Error (Printf.sprintf "plan spec %S: tau must be a float in [0,1]" s)
      | (Error _ as e), _ -> e)
    | _ -> Error (Printf.sprintf "plan spec %S: expected filter:K or filter:K,TAU" s))
  | _ -> Error (Printf.sprintf "unknown plan spec %S (expected default, auto, filter[:K[,TAU]])" s)

let tail_ops ~gated ~tau = [ Op.Combine { gated }; Op.Prune { tau }; Op.Select { policy = "greedy" } ]

let default ?(gated = true) ?(tau = 0.0) ~matchers () =
  {
    plan_name = "default";
    ops =
      [ Op.Profile { side = `Source }; Op.Profile { side = `Target }; Op.Score { matchers } ]
      @ tail_ops ~gated ~tau;
    rewrites = [];
  }

let filtered ?(gated = true) ?(tau = 0.0) ?(k = default_k) ?(ftau = 0.0) ~matchers () =
  (* Deliberately naive construction — filter after scoring — so the
     rewrite engine's normalisation is observable in the plan log. *)
  let raw =
    [
      Op.Profile { side = `Source };
      Op.Profile { side = `Target };
      Op.Score { matchers };
      Op.Filter { k; tau = ftau };
    ]
    @ tail_ops ~gated ~tau
  in
  let ops, fired = Rewrite.apply_fixpoint Rewrite.default_rules raw in
  { plan_name = Printf.sprintf "filter:%d" k; ops; rewrites = fired }

let resolve ?model ?shape ?(gated = true) ?(tau = 0.0) ~kernel ~matchers spec =
  match spec with
  | Default -> default ~gated ~tau ~matchers ()
  | Filtered { k; tau = ftau } -> filtered ~gated ~tau ~k ~ftau ~matchers ()
  | Auto -> (
    match shape with
    | None -> default ~gated ~tau ~matchers ()
    | Some shape ->
      let model = Option.value model ~default:Cost.default in
      let d = default ~gated ~tau ~matchers () in
      if not kernel then d
      else
        let f = filtered ~gated ~tau ~k:default_k ~matchers () in
        let cost p = Cost.total_ns (Cost.plan_cost model shape p.ops) in
        if cost f < cost d then { f with plan_name = "auto:" ^ f.plan_name } else d)

let filter_params t =
  List.find_map (function Op.Filter { k; tau } -> Some (k, tau) | _ -> None) t.ops

let score_order t =
  List.concat_map
    (function Op.Score { matchers } -> List.map (fun m -> m.Op.m_name) matchers | _ -> [])
    t.ops

let validate ~matchers t =
  let expected = List.sort String.compare (List.map (fun m -> m.Op.m_name) matchers) in
  let got = List.sort String.compare (score_order t) in
  if expected = got then Ok ()
  else
    Error
      (Printf.sprintf "plan %s scores [%s] but the model provides [%s]" t.plan_name
         (String.concat "; " got)
         (String.concat "; " expected))

let explain ?model ?shape t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "plan %s\n" t.plan_name);
  (match shape with
  | Some s -> Buffer.add_string buf (Printf.sprintf "shape: %s\n" (Cost.shape_to_string s))
  | None -> ());
  (match shape with
  | Some s ->
    let model = Option.value model ~default:Cost.default in
    let lines = Cost.plan_cost model s t.ops in
    List.iteri
      (fun i l ->
        Buffer.add_string buf
          (Printf.sprintf "  %d. %-50s ~%d pairs  ~%.3f ms\n" (i + 1) (Op.to_string l.Cost.op)
             l.Cost.est_pairs
             (l.Cost.est_ns /. 1e6)))
      lines;
    Buffer.add_string buf
      (Printf.sprintf "estimated total: ~%.3f ms\n" (Cost.total_ns lines /. 1e6))
  | None ->
    List.iteri
      (fun i op -> Buffer.add_string buf (Printf.sprintf "  %d. %s\n" (i + 1) (Op.to_string op)))
      t.ops);
  (match t.rewrites with
  | [] -> Buffer.add_string buf "rewrites: (none)\n"
  | fired -> Buffer.add_string buf (Printf.sprintf "rewrites: %s\n" (String.concat ", " fired)));
  Buffer.contents buf
