(** Match plans: named operator graphs plus the rewrite log that
    produced them.

    [lib/matching] interprets a plan's [Profile]/[Filter]/[Score]/
    [Combine] prefix; [Prune]/[Select] describe the downstream
    selection stages so [explain] shows the whole pipeline.  The
    {e default} plan reproduces today's hard-wired pipeline
    bit-identically; the {e filtered} plan inserts a q-gram top-k
    candidate retrieval stage that the rewrite engine hoists before
    scoring. *)

module Op = Op
module Cost = Cost
module Rewrite = Rewrite

type t = {
  plan_name : string;
  ops : Op.t list;
  rewrites : string list;  (** rewrite rules that fired, in order *)
}

type spec =
  | Default  (** legacy pipeline: score every pair, no filter *)
  | Filtered of { k : int; tau : float }
      (** top-k q-gram candidate retrieval before filterable matchers *)
  | Auto  (** pick by cost model (needs kernel for the filter) *)

val default_k : int
(** Candidate budget used by [Filtered] when unspecified and by
    [Auto] (16). *)

val spec_to_string : spec -> string

val spec_of_string : string -> (spec, string) result
(** Accepts [default], [auto], [filter], [filter:K], [filter:K,TAU]. *)

val default : ?gated:bool -> ?tau:float -> matchers:Op.matcher_spec list -> unit -> t
(** The legacy pipeline as a plan (already in normal form; no rewrite
    fires).  [tau] only labels the [Prune] stage in explain output. *)

val filtered :
  ?gated:bool -> ?tau:float -> ?k:int -> ?ftau:float -> matchers:Op.matcher_spec list -> unit -> t
(** Built with the filter {e after} scoring, then normalised by
    {!Rewrite.apply_fixpoint} — the rewrite log shows
    [filter-before-score] and [order-matchers] firing. *)

val resolve :
  ?model:Cost.model ->
  ?shape:Cost.shape ->
  ?gated:bool ->
  ?tau:float ->
  kernel:bool ->
  matchers:Op.matcher_spec list ->
  spec ->
  t
(** Turn a spec into a concrete plan.  [Auto] compares
    {!Cost.plan_cost} of default vs filtered under [shape] (required
    for a meaningful choice; without it [Auto] falls back to default)
    and picks filtered only when the kernel is available and the
    estimate is strictly cheaper. *)

val filter_params : t -> (int * float) option
(** [(k, tau)] of the plan's [Filter] stage, if any. *)

val score_order : t -> string list
(** Matcher names in plan scoring order (concatenated [Score]
    stages). *)

val validate : matchers:Op.matcher_spec list -> t -> (unit, string) result
(** Check the plan's matcher set equals [matchers] (by name) — a plan
    must neither drop nor invent matchers. *)

val explain : ?model:Cost.model -> ?shape:Cost.shape -> t -> string
(** Multi-line rendering: one numbered line per operator with
    estimated pairs and cost when [shape] is given, then the rewrite
    log and total. *)
