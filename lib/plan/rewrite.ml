type rule = { rule_name : string; apply : Op.t list -> Op.t list option }

let is_score = function Op.Score _ -> true | _ -> false
let is_filter = function Op.Filter _ -> true | _ -> false

(* Move the first Filter that appears *after* a Score to just before
   the first Score.  One displacement per application; fixpoint
   iteration handles multiples. *)
let filter_before_score =
  {
    rule_name = "filter-before-score";
    apply =
      (fun ops ->
        let rec split_at_score acc = function
          | [] -> None
          | op :: rest when is_score op -> Some (List.rev acc, op :: rest)
          | op :: rest -> split_at_score (op :: acc) rest
        in
        match split_at_score [] ops with
        | None -> None
        | Some (before, from_score) ->
          if not (List.exists is_filter from_score) then None
          else
            let filter = List.find is_filter from_score in
            let rest = List.filter (fun op -> op != filter) from_score in
            Some (before @ (filter :: rest)));
  }

let fuse_scores =
  {
    rule_name = "fuse-scores";
    apply =
      (fun ops ->
        let rec fuse = function
          | Op.Score { matchers = a } :: Op.Score { matchers = b } :: rest ->
            Some (Op.Score { matchers = a @ b } :: List.map Fun.id rest)
          | op :: rest -> (
            match fuse rest with None -> None | Some rest' -> Some (op :: rest'))
          | [] -> None
        in
        fuse ops);
  }

let order_matchers =
  {
    rule_name = "order-matchers";
    apply =
      (fun ops ->
        let changed = ref false in
        let ops' =
          List.map
            (function
              | Op.Score { matchers } ->
                let sorted =
                  List.stable_sort
                    (fun a b ->
                      Int.compare (Op.class_rank a.Op.m_class) (Op.class_rank b.Op.m_class))
                    matchers
                in
                if sorted <> matchers then changed := true;
                Op.Score { matchers = sorted }
              | op -> op)
            ops
        in
        if !changed then Some ops' else None);
  }

let default_rules = [ filter_before_score; fuse_scores; order_matchers ]

let apply_fixpoint ?(max_steps = 32) rules ops =
  let fired = ref [] in
  let rec go steps ops =
    if steps >= max_steps then ops
    else
      let rec try_rules = function
        | [] -> None
        | r :: rest -> (
          match r.apply ops with
          | Some ops' ->
            fired := r.rule_name :: !fired;
            Some ops'
          | None -> try_rules rest)
      in
      match try_rules rules with None -> ops | Some ops' -> go (steps + 1) ops'
  in
  let final = go 0 ops in
  (final, List.rev !fired)
