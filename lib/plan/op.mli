(** Typed operators for match plans.

    A plan is a list of operators executed left to right over a
    (source schema, target schema) pair.  Operators carry only
    {e descriptors} — matcher names, weights and cost classes — never
    closures, so plans can be printed, costed, rewritten and shipped
    over the serve protocol.  [lib/matching] owns the translation from
    descriptors back to executable [Matcher.t] values. *)

type cost_class =
  | Trivial  (** name/type heuristics: O(1) per pair *)
  | Cheap  (** small per-pair work over cached column stats *)
  | Instance  (** walks value distributions (word sets, overlap) *)
  | Qgram  (** q-gram profile cosine; kernel-acceleratable *)

val class_rank : cost_class -> int
(** Ascending by expected per-pair cost; used by rewrite rules to
    order matchers cheap-first. *)

val class_name : cost_class -> string
(** Stable lowercase label ([trivial], [cheap], [instance], [qgram])
    — also the suffix of the Obs metrics the cost model reads. *)

type applies =
  | All  (** every (source, target) column pair *)
  | Textual  (** both columns textual *)
  | Numeric  (** both columns numeric *)

type matcher_spec = {
  m_name : string;  (** matcher identity; must match [Matcher.name] *)
  m_weight : float;
  m_kernel : bool;  (** scored by the interned q-gram kernel when on *)
  m_filterable : bool;
      (** textual-pair scoring may be restricted to top-k filter
          survivors without changing non-textual behaviour *)
  m_class : cost_class;
  m_applies : applies;
}

type t =
  | Profile of { side : [ `Source | `Target ] }
      (** build column profiles (q-gram bags, stats, word sets) *)
  | Filter of { k : int; tau : float }
      (** q-gram top-k candidate retrieval: each textual source
          attribute keeps at most [k] textual target candidates with
          cosine >= [tau]; filterable matchers then score only
          survivors *)
  | Score of { matchers : matcher_spec list }
      (** run matchers over (remaining) candidate pairs *)
  | Prune of { tau : float }
      (** drop matches below confidence [tau] (selection-stage
          threshold; descriptive in Standard_match plans) *)
  | Combine of { gated : bool }
      (** z-normalise per-matcher scores and combine weighted
          confidences (gated = applicability-gated combination) *)
  | Select of { policy : string }
      (** final match selection policy (e.g. [greedy]) *)

val to_string : t -> string
(** One-line rendering, e.g.
    [score\[qgram(1.50,qgram,kernel) word(1.00,instance)\]]. *)

val matcher_to_string : matcher_spec -> string
