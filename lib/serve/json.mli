(** Minimal JSON codec for the serve protocol.

    The repo deliberately has no third-party JSON dependency (the obs
    exporters print JSON by hand); the daemon needs to {e parse} as
    well, so this module implements the small subset of RFC 8259 the
    line protocol uses: objects, arrays, strings (with escapes,
    including [\uXXXX] decoded to UTF-8), numbers, booleans and null.

    Values are printed on one line — the protocol is line-delimited, so
    a rendered value must never contain a raw newline; [to_string]
    escapes them inside strings. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Parse one JSON value; trailing non-whitespace raises
    {!Parse_error}, as does any malformed input. *)

val to_string : t -> string
(** Compact single-line rendering.  Non-finite floats render as
    [null] (JSON has no representation for them). *)

(** {2 Accessors} — total, returning [option] instead of raising. *)

val member : string -> t -> t option
(** Field of an object; [None] for absent fields and non-objects. *)

val to_int : t -> int option
(** [Int] directly, or a [Float] with zero fractional part. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
