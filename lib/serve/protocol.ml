type table_payload = { tp_name : string; tp_csv : string }

type match_request = {
  mr_target : string;
  mr_tables : table_payload list;
  mr_tau : float;
  mr_omega : float;
  mr_late : bool;
  mr_select : Ctxmatch.Config.select_policy;
  mr_algorithm : [ `Naive | `Src_class | `Tgt_class | `Cluster ];
  mr_seed : int;
  mr_jobs : int option;
  mr_timeout_ms : int option;
  mr_kernel : bool;
  mr_lenient : bool;
  mr_faults : Robust.Fault.arming list;
  mr_plan : Plan.spec option;
}

(* Appended rows stay raw JSON here: typing a cell needs the target
   table's schema, which only the server's registry knows. *)
type update_request = {
  ur_target : string;
  ur_table : string;
  ur_appends : Json.t list list;
  ur_deletes : int list;
}

type request =
  | Ping
  | Register_target of {
      rt_name : string;
      rt_tables : table_payload list;
      rt_kernel : bool;
      rt_plan : Plan.spec;
    }
  | Match of match_request
  | Update_target of update_request
  | List_targets
  | Stats
  | Health
  | Shutdown

type reject = { rj_code : string; rj_error : Robust.Error.t }

let reject ?(severity = Robust.Error.Degraded) ~code message =
  { rj_code = code; rj_error = Robust.Error.v ~severity Robust.Error.Serve message }

exception Bad of reject

let bad code fmt = Printf.ksprintf (fun m -> raise (Bad (reject ~code:code m))) fmt

(* --- field extraction -------------------------------------------------- *)

let field_opt json name = Json.member name json

let get conv kind json name ~default =
  match field_opt json name with
  | None | Some Json.Null -> default
  | Some v -> (
    match conv v with
    | Some x -> x
    | None -> bad "bad-request" "field %S must be %s" name kind)

let get_required conv kind json name =
  match field_opt json name with
  | None | Some Json.Null -> bad "bad-request" "missing required field %S" name
  | Some v -> (
    match conv v with
    | Some x -> x
    | None -> bad "bad-request" "field %S must be %s" name kind)

let get_float = get Json.to_float "a number"
let get_int_opt json name = get (fun v -> Option.map Option.some (Json.to_int v)) "an integer" json name ~default:None
let get_bool = get Json.to_bool "a boolean"
let get_string = get Json.to_string_opt "a string"

let tables_of json name =
  match field_opt json name with
  | None | Some Json.Null -> bad "bad-request" "missing required field %S" name
  | Some (Json.List l) ->
    if l = [] then bad "bad-request" "field %S must not be empty" name;
    List.map
      (fun entry ->
        let tp_name = get_required Json.to_string_opt "a string" entry "name" in
        let tp_csv = get_required Json.to_string_opt "a string" entry "csv" in
        if tp_name = "" then bad "bad-request" "table name must not be empty";
        { tp_name; tp_csv })
      l
  | Some _ -> bad "bad-request" "field %S must be a list of {name, csv} objects" name

let select_of_string = function
  | "qual" -> Ctxmatch.Config.Qual_table
  | "multi" -> Ctxmatch.Config.Multi_table
  | "clio" -> Ctxmatch.Config.Clio_qual_table
  | other -> bad "bad-request" "unknown selection policy %S (qual|multi|clio)" other

let algorithm_of_string = function
  | "naive" -> `Naive
  | "src" -> `Src_class
  | "tgt" -> `Tgt_class
  | "cluster" -> `Cluster
  | other -> bad "bad-request" "unknown inference algorithm %S (naive|src|tgt|cluster)" other

let faults_of json =
  match field_opt json "faults" with
  | None | Some Json.Null -> []
  | Some (Json.List l) ->
    List.map
      (fun entry ->
        let site_name = get_required Json.to_string_opt "a string" entry "site" in
        let site =
          match Robust.Fault.site_of_string site_name with
          | Some s -> s
          | None -> bad "bad-request" "unknown fault site %S" site_name
        in
        let rate = get_float entry "rate" ~default:1.0 in
        let seed = get Json.to_int "an integer" entry "seed" ~default:0 in
        { Robust.Fault.site; rate; seed })
      l
  | Some _ -> bad "bad-request" "field \"faults\" must be a list of {site, rate, seed} objects"

(* "plan" is a spec string ("default" | "auto" | "filter[:K[,TAU]]");
   absent means "no opinion" for a match request (use the target's
   registered plan) and [Plan.Default] for a registration. *)
let plan_of_opt json =
  match field_opt json "plan" with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_string_opt v with
    | None -> bad "bad-request" "field \"plan\" must be a string"
    | Some s -> (
      match Plan.spec_of_string s with
      | Ok spec -> Some spec
      | Error msg -> bad "bad-request" "%s" msg))

let rows_of json name =
  match field_opt json name with
  | None | Some Json.Null -> []
  | Some (Json.List l) ->
    List.map
      (function
        | Json.List cells -> cells
        | _ -> bad "bad-request" "field %S must be a list of row arrays" name)
      l
  | Some _ -> bad "bad-request" "field %S must be a list of row arrays" name

let deletes_of json name =
  match field_opt json name with
  | None | Some Json.Null -> []
  | Some (Json.List l) ->
    List.map
      (fun v ->
        match Json.to_int v with
        | Some i -> i
        | None -> bad "bad-request" "field %S must be a list of integer row indices" name)
      l
  | Some _ -> bad "bad-request" "field %S must be a list of integer row indices" name

let update_of_json json =
  let r =
    {
      ur_target = get_required Json.to_string_opt "a string" json "target";
      ur_table = get_required Json.to_string_opt "a string" json "table";
      ur_appends = rows_of json "append_rows";
      ur_deletes = deletes_of json "delete_rows";
    }
  in
  if r.ur_appends = [] && r.ur_deletes = [] then
    bad "bad-request"
      "update-target requires at least one entry in \"append_rows\" or \"delete_rows\"";
  r

(* Defaults mirror the one-shot CLI flag defaults, so an empty match
   request scores exactly like `ctxmatch match` with no flags. *)
let match_of_json json =
  {
    mr_target = get_required Json.to_string_opt "a string" json "target";
    mr_tables = tables_of json "tables";
    mr_tau = get_float json "tau" ~default:0.5;
    mr_omega = get_float json "omega" ~default:0.2;
    mr_late = get_bool json "late" ~default:false;
    mr_select = select_of_string (get_string json "select" ~default:"qual");
    mr_algorithm = algorithm_of_string (get_string json "algorithm" ~default:"src");
    mr_seed = get Json.to_int "an integer" json "seed" ~default:42;
    mr_jobs = get_int_opt json "jobs";
    mr_timeout_ms = get_int_opt json "timeout_ms";
    mr_kernel = get_bool json "kernel" ~default:true;
    mr_lenient = get_bool json "lenient" ~default:false;
    mr_faults = faults_of json;
    mr_plan = plan_of_opt json;
  }

let request_of_line line =
  match Json.parse line with
  | exception Json.Parse_error m -> Error (reject ~code:"invalid-json" ("invalid JSON: " ^ m))
  | json -> (
    try
      match json with
      | Json.Obj _ -> (
        match Json.member "cmd" json with
        | None -> Error (reject ~code:"bad-request" "missing required field \"cmd\"")
        | Some cmd -> (
          match Json.to_string_opt cmd with
          | None -> Error (reject ~code:"bad-request" "field \"cmd\" must be a string")
          | Some "ping" -> Ok Ping
          | Some "stats" -> Ok Stats
          | Some "health" -> Ok Health
          | Some "shutdown" -> Ok Shutdown
          | Some "register-target" ->
            Ok
              (Register_target
                 {
                   rt_name = get_required Json.to_string_opt "a string" json "name";
                   rt_tables = tables_of json "tables";
                   rt_kernel = get_bool json "kernel" ~default:true;
                   rt_plan = Option.value (plan_of_opt json) ~default:Plan.Default;
                 })
          | Some "match" -> Ok (Match (match_of_json json))
          | Some "update-target" -> Ok (Update_target (update_of_json json))
          | Some "list-targets" -> Ok List_targets
          | Some other ->
            Error
              (reject ~code:"unknown-command"
                 (Printf.sprintf
                    "unknown command %S \
                     (ping|register-target|update-target|list-targets|match|stats|health|shutdown)"
                    other))))
      | _ -> Error (reject ~code:"bad-request" "request must be a JSON object")
    with Bad r -> Error r)

(* --- responses --------------------------------------------------------- *)

let reject_to_json r =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("code", Json.String r.rj_code);
      ( "error",
        Json.Obj
          [
            ("stage", Json.String (Robust.Error.stage_name r.rj_error.Robust.Error.stage));
            ( "severity",
              Json.String (Robust.Error.severity_name r.rj_error.Robust.Error.severity) );
            ("message", Json.String r.rj_error.Robust.Error.message);
          ] );
    ]

let error_strings issues =
  Json.List (List.map (fun i -> Json.String (Robust.Error.to_string i)) issues)

(* --- request builders -------------------------------------------------- *)

let ping_json = Json.Obj [ ("cmd", Json.String "ping") ]
let list_targets_json = Json.Obj [ ("cmd", Json.String "list-targets") ]
let stats_json = Json.Obj [ ("cmd", Json.String "stats") ]
let health_json = Json.Obj [ ("cmd", Json.String "health") ]
let shutdown_json = Json.Obj [ ("cmd", Json.String "shutdown") ]

let tables_json tables =
  Json.List
    (List.map
       (fun (name, csv) ->
         Json.Obj [ ("name", Json.String name); ("csv", Json.String csv) ])
       tables)

let register_json ?(kernel = true) ?plan ~name tables =
  Json.Obj
    ([
       ("cmd", Json.String "register-target");
       ("name", Json.String name);
       ("tables", tables_json tables);
       ("kernel", Json.Bool kernel);
     ]
    @ match plan with None -> [] | Some s -> [ ("plan", Json.String s) ])

let update_json ?(appends = []) ?(deletes = []) ~target ~table () =
  Json.Obj
    [
      ("cmd", Json.String "update-target");
      ("target", Json.String target);
      ("table", Json.String table);
      ("append_rows", Json.List (List.map (fun row -> Json.List row) appends));
      ("delete_rows", Json.List (List.map (fun i -> Json.Int i) deletes));
    ]

let fault_json (a : Robust.Fault.arming) =
  Json.Obj
    [
      ("site", Json.String (Robust.Fault.site_name a.Robust.Fault.site));
      ("rate", Json.Float a.Robust.Fault.rate);
      ("seed", Json.Int a.Robust.Fault.seed);
    ]

let match_json ?tau ?omega ?late ?select ?algorithm ?seed ?jobs ?timeout_ms ?kernel ?lenient
    ?faults ?plan ~target tables =
  let optional name conv v = Option.map (fun v -> (name, conv v)) v in
  Json.Obj
    (List.filter_map Fun.id
       [
         Some ("cmd", Json.String "match");
         Some ("target", Json.String target);
         Some ("tables", tables_json tables);
         optional "tau" (fun v -> Json.Float v) tau;
         optional "omega" (fun v -> Json.Float v) omega;
         optional "late" (fun v -> Json.Bool v) late;
         optional "select" (fun v -> Json.String v) select;
         optional "algorithm" (fun v -> Json.String v) algorithm;
         optional "seed" (fun v -> Json.Int v) seed;
         optional "jobs" (fun v -> Json.Int v) jobs;
         optional "timeout_ms" (fun v -> Json.Int v) timeout_ms;
         optional "kernel" (fun v -> Json.Bool v) kernel;
         optional "lenient" (fun v -> Json.Bool v) lenient;
         optional "faults" (fun l -> Json.List (List.map fault_json l)) faults;
         optional "plan" (fun v -> Json.String v) plan;
       ])
