type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type config = {
  address : address;
  default_jobs : int;
  queue_capacity : int;
  default_timeout_ms : int option;
  max_request_bytes : int;
  store_dir : string option;
  store_readonly : bool;
  breaker_threshold : int;
  breaker_cooldown_ms : int;
  flush_every : int;
}

let default_config address =
  {
    address;
    default_jobs = 1;
    queue_capacity = 64;
    default_timeout_ms = None;
    max_request_bytes = 64 * 1024 * 1024;
    store_dir = None;
    store_readonly = false;
    breaker_threshold = 3;
    breaker_cooldown_ms = 1000;
    flush_every = 0;
  }

exception Bind_error of { address : string; reason : string }

(* Per-target circuit breaker: Closed admits, Open rejects until the
   cooldown passes, then one trial request runs Half_open — success
   closes the breaker, failure re-opens it.  Guarded by [t.tm]. *)
type breaker_state = Br_closed | Br_open of int64 (* tripped-at, ns *) | Br_half_open

type breaker = {
  mutable b_state : breaker_state;
  mutable b_failures : int;  (* consecutive scoring failures *)
  mutable b_trips : int;
}

let breaker_state_name = function
  | Br_closed -> "closed"
  | Br_open _ -> "open"
  | Br_half_open -> "half-open"

(* A registered target: the prepared artefact plus the database it was
   prepared from (needed again at match time for view inference), and
   the delta-maintenance handle that advances both.  Each prepared
   artefact value is itself immutable — an update installs a *new* one
   (under [t.tm]), so a match reading the previous generation stays
   valid.  All mutation happens on the executor thread. *)
type target_entry = {
  mutable te_db : Relational.Database.t;
  mutable te_prepared : Matching.Standard_match.prepared_target;
  te_issues : Robust.Error.t list;  (* ingest quarantine at registration *)
  te_breaker : breaker;
  te_maintain : Delta.Maintain.t;
  te_plan : Plan.spec;  (* default operator graph for matches against this target *)
}

type work =
  | W_register of {
      w_name : string;
      w_db : Relational.Database.t;
      w_kernel : bool;
      w_plan : Plan.spec;
      w_ingest : Robust.Error.t list;
    }
  | W_match of {
      w_mr : Protocol.match_request;
      w_source : Relational.Database.t;
      w_ingest : Robust.Error.t list;
    }
  | W_update of { w_ur : Protocol.update_request }

type job = {
  work : work;
  deadline : Robust.Deadline.t;  (* starts at admission: queue wait counts *)
  enqueued_ns : int64;
  jm : Mutex.t;
  jc : Condition.t;
  mutable reply : Json.t option;
}

type counters = {
  c_requests : int;
  c_accepted : int;
  c_completed : int;
  c_rejected : int;
  c_protocol_errors : int;
  c_queue_depth : int;
  c_inflight : int;
  c_connections : int;
  c_targets : int;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int option;
  store : Store.t option;
  stopping : bool Atomic.t;
  (* executor queue; qm also guards [inflight] *)
  qm : Mutex.t;
  qc : Condition.t;
  queue : job Queue.t;
  mutable inflight : bool;
  (* registry of prepared targets *)
  tm : Mutex.t;
  targets : (string, target_entry) Hashtbl.t;
  (* live connections, so shutdown can unblock their readers *)
  cm : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  mutable next_conn : int;
  (* counters *)
  sm : Mutex.t;
  mutable n_requests : int;
  mutable n_accepted : int;
  mutable n_completed : int;
  mutable n_rejected : int;
  mutable n_protocol_errors : int;
  mutable n_internal : int;
  mutable n_socket_faults : int;
  mutable n_flush_failures : int;
  mutable flush_failed : bool;  (* last flush attempt failed *)
  (* executor-thread-local: completed match requests since last flush *)
  mutable matches_since_flush : int;
}

let obs_incr name = if !Obs.Recorder.enabled then Obs.Metrics.incr name
let obs_observe_ns name ns = if !Obs.Recorder.enabled then Obs.Metrics.observe_ns name ns

let count t f =
  Mutex.lock t.sm;
  f t;
  Mutex.unlock t.sm

(* --- socket setup ------------------------------------------------------ *)

let bind_error address e =
  raise (Bind_error { address; reason = Unix.error_message e })

(* A Unix-socket file survives an unclean daemon death.  Probe it: if a
   connect succeeds someone is serving — genuine address-in-use; if it
   is refused the file is stale and may be reclaimed. *)
let reclaim_stale_socket path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_SOCK ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> false
          | exception Unix.Unix_error _ -> true)
    in
    if live then bind_error ("unix:" ^ path) Unix.EADDRINUSE else Unix.unlink path
  | _ | (exception Unix.Unix_error (Unix.ENOENT, _, _)) -> ()

let listen_on address =
  let addr_string = address_to_string address in
  match address with
  | Unix_sock path ->
    reclaim_stale_socket path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       bind_error addr_string e);
    (fd, None)
  | Tcp (host, port) ->
    let inet =
      if host = "" || host = "*" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
            raise (Bind_error { address = addr_string; reason = "unknown host " ^ host })
          | { Unix.h_addr_list; _ } -> h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64
     with Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       bind_error addr_string e);
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Some p
      | _ -> None
    in
    (fd, bound)

let create cfg =
  let store =
    Option.map (fun dir -> Store.open_dir ~readonly:cfg.store_readonly dir) cfg.store_dir
  in
  let listen_fd, bound_port = listen_on cfg.address in
  {
    cfg;
    listen_fd;
    bound_port;
    store;
    stopping = Atomic.make false;
    qm = Mutex.create ();
    qc = Condition.create ();
    queue = Queue.create ();
    inflight = false;
    tm = Mutex.create ();
    targets = Hashtbl.create 8;
    cm = Mutex.create ();
    conns = Hashtbl.create 16;
    conn_threads = [];
    next_conn = 0;
    sm = Mutex.create ();
    n_requests = 0;
    n_accepted = 0;
    n_completed = 0;
    n_rejected = 0;
    n_protocol_errors = 0;
    n_internal = 0;
    n_socket_faults = 0;
    n_flush_failures = 0;
    flush_failed = false;
    matches_since_flush = 0;
  }

let port t = t.bound_port
let stop t = Atomic.set t.stopping true

(* --- replies ------------------------------------------------------------ *)

let reject_reply t r =
  count t (fun t -> t.n_protocol_errors <- t.n_protocol_errors + 1);
  obs_incr "serve.protocol_errors";
  Protocol.reject_to_json r

(* Admission rejections (busy / shutting-down / timeout) are service
   answers, not protocol errors — counted separately. *)
let admission_reply t r =
  count t (fun t -> t.n_rejected <- t.n_rejected + 1);
  obs_incr "serve.rejected";
  Protocol.reject_to_json r

let internal_reject e =
  Protocol.reject ~severity:Robust.Error.Fatal ~code:"internal"
    (Printf.sprintf "request failed: %s" (Printexc.to_string e))

(* --- the executor ------------------------------------------------------- *)

(* A failed flush must never take the daemon down: the dirty shards
   stay dirty (Store.flush only clears the flag after a successful
   write), so a later flush retries with the full payload.  The
   failure is remembered for [health]. *)
let store_flush t =
  match t.store with
  | Some store when not (Store.readonly store) -> (
    match Store.flush store with
    | () -> count t (fun t -> t.flush_failed <- false)
    | exception e ->
      count t (fun t ->
          t.n_flush_failures <- t.n_flush_failures + 1;
          t.flush_failed <- true);
      obs_incr "serve.flush_failures";
      ignore (Printexc.to_string e))
  | _ -> ()

let register_reply t ~name ~db ~kernel ~plan ~ingest =
  let prepared = Matching.Standard_match.prepare_target ?store:t.store ~kernel ~target:db () in
  let maintain = Delta.Maintain.create ?store:t.store ~kernel ~target:db ~prepared () in
  let entry =
    {
      te_db = db;
      te_prepared = prepared;
      te_issues = ingest;
      te_breaker = { b_state = Br_closed; b_failures = 0; b_trips = 0 };
      te_maintain = maintain;
      te_plan = plan;
    }
  in
  Mutex.lock t.tm;
  Hashtbl.replace t.targets name entry;
  Mutex.unlock t.tm;
  store_flush t;
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("target", Json.String name);
      ("tables", Json.Int (List.length (Relational.Database.tables db)));
      ("columns", Json.Int (Matching.Standard_match.prepared_columns prepared));
      ("kernel", Json.Bool (Matching.Standard_match.prepared_kernel prepared));
      ("plan", Json.String (Plan.spec_to_string plan));
      ( "issues",
        Protocol.error_strings (ingest @ Matching.Standard_match.prepared_issues prepared) );
    ]

(* Breaker admission, under [t.tm].  [Ok ()] admits (transitioning an
   expired-open breaker to half-open for its trial request); [Error]
   carries the structured degraded reject. *)
let breaker_admit t entry ~target =
  Mutex.lock t.tm;
  let b = entry.te_breaker in
  let verdict =
    match b.b_state with
    | Br_closed | Br_half_open -> Ok ()
    | Br_open tripped_ns ->
      let elapsed_ms =
        Int64.to_int (Int64.div (Int64.sub (Robust.Deadline.now_ns ()) tripped_ns) 1_000_000L)
      in
      if elapsed_ms >= t.cfg.breaker_cooldown_ms then begin
        b.b_state <- Br_half_open;
        Ok ()
      end
      else
        Error
          (Protocol.reject ~code:"degraded"
             (Printf.sprintf
                "circuit breaker open for target %S (%d consecutive failures; retry in %d ms)"
                target b.b_failures
                (t.cfg.breaker_cooldown_ms - elapsed_ms)))
  in
  Mutex.unlock t.tm;
  verdict

let breaker_success t entry =
  Mutex.lock t.tm;
  let b = entry.te_breaker in
  b.b_failures <- 0;
  b.b_state <- Br_closed;
  Mutex.unlock t.tm

let breaker_failure t entry =
  Mutex.lock t.tm;
  let b = entry.te_breaker in
  b.b_failures <- b.b_failures + 1;
  (match b.b_state with
  | Br_half_open ->
    (* the trial failed: straight back to open, fresh cooldown *)
    b.b_state <- Br_open (Robust.Deadline.now_ns ());
    b.b_trips <- b.b_trips + 1;
    obs_incr "serve.breaker_trips"
  | Br_closed when b.b_failures >= t.cfg.breaker_threshold ->
    b.b_state <- Br_open (Robust.Deadline.now_ns ());
    b.b_trips <- b.b_trips + 1;
    obs_incr "serve.breaker_trips"
  | Br_closed | Br_open _ -> ());
  Mutex.unlock t.tm

let match_reply t ~(mr : Protocol.match_request) ~source ~ingest ~deadline =
  Mutex.lock t.tm;
  let entry = Hashtbl.find_opt t.targets mr.Protocol.mr_target in
  Mutex.unlock t.tm;
  match entry with
  | None ->
    admission_reply t
      (Protocol.reject ~code:"unknown-target"
         (Printf.sprintf "unknown target %S (register-target first)" mr.Protocol.mr_target))
  | Some entry -> (
    match breaker_admit t entry ~target:mr.Protocol.mr_target with
    | Error r -> admission_reply t r
    | Ok () ->
    if Robust.Deadline.expired deadline then
      admission_reply t
        (Protocol.reject ~code:"timeout" "request deadline expired while queued")
    else begin
      let jobs =
        match mr.Protocol.mr_jobs with
        | Some j when j > 0 -> j
        | Some _ | None -> t.cfg.default_jobs
      in
      let config =
        {
          Ctxmatch.Config.default with
          tau = mr.Protocol.mr_tau;
          omega = mr.Protocol.mr_omega;
          early_disjuncts = not mr.Protocol.mr_late;
          select = mr.Protocol.mr_select;
          seed = mr.Protocol.mr_seed;
          jobs;
          timeout_ms = mr.Protocol.mr_timeout_ms;
          kernel = mr.Protocol.mr_kernel;
          faults = mr.Protocol.mr_faults;
          (* per-request override wins; otherwise the target's
             registered default plan *)
          plan = Option.value mr.Protocol.mr_plan ~default:entry.te_plan;
        }
      in
      let infer = Ctxmatch.Context_match.infer_of mr.Protocol.mr_algorithm ~target:entry.te_db in
      (* A deadline expiry is the client's timeout, not the target's
         fault.  Anything else that escapes the contained pipeline is a
         scoring failure the breaker counts — and so is a run the
         containment quarantined into producing nothing at all (no
         matches, no standard matches, only issues): the caller got an
         empty answer either way, and a target doing that repeatedly
         should brown out instead of burning a full scoring pass per
         request. *)
      let result =
        match
          Ctxmatch.Context_match.run ~config ?store:t.store ~prepared:entry.te_prepared ~deadline
            ~infer ~source ~target:entry.te_db ()
        with
        | result ->
          let total_failure =
            result.Ctxmatch.Context_match.matches = []
            && result.Ctxmatch.Context_match.standard = []
            && result.Ctxmatch.Context_match.issues <> []
            && not (Robust.Deadline.expired deadline)
          in
          if total_failure then breaker_failure t entry else breaker_success t entry;
          result
        | exception (Robust.Deadline.Expired _ as e) -> raise e
        | exception e ->
          breaker_failure t entry;
          raise e
      in
      let open Ctxmatch.Context_match in
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("target", Json.String mr.Protocol.mr_target);
          ( "matches",
            Json.List
              (List.map
                 (fun m -> Json.String (Matching.Schema_match.to_string m))
                 result.matches) );
          ("standard", Json.Int (List.length result.standard));
          ("views_scored", Json.Int result.candidate_view_count);
          ("elapsed_ms", Json.Float (result.elapsed_seconds *. 1e3));
          ("cache_hits", Json.Int result.cache_hits);
          ("cache_misses", Json.Int result.cache_misses);
          ("profile_builds", Json.Int result.profile_builds);
          ("plan", Json.String result.plan.Plan.plan_name);
          ("pairs_scored", Json.Int result.pairs_scored);
          ("pairs_pruned", Json.Int result.pairs_pruned);
          ("issues", Protocol.error_strings result.issues);
          ("ingest_issues", Protocol.error_strings ingest);
        ]
    end)

(* Type one raw JSON row against the target table's schema.  The cell
   typing is strict — an int attribute takes a JSON int, a float
   attribute an int or a float, string/bool attributes their JSON
   counterparts, [null] fits anywhere — so an update can never smuggle
   a differently-typed value past the profile algebra. *)
let typed_row schema ~table row_index cells =
  let attrs = Relational.Schema.attributes schema in
  let n = Array.length attrs in
  if List.length cells <> n then
    Error
      (Printf.sprintf "append row %d has %d cells; table %S has %d attributes" row_index
         (List.length cells) table n)
  else
    let out = Array.make n Relational.Value.Null in
    let rec fill i = function
      | [] -> Ok out
      | cell :: rest -> (
        let attr = attrs.(i) in
        let mismatch got =
          Error
            (Printf.sprintf "append row %d, attribute %S: expected %s, got %s" row_index
               attr.Relational.Attribute.name
               (Relational.Value.ty_to_string attr.Relational.Attribute.ty)
               got)
        in
        match (cell, attr.Relational.Attribute.ty) with
        | Json.Null, _ ->
          out.(i) <- Relational.Value.Null;
          fill (i + 1) rest
        | Json.Int v, Relational.Value.Tint ->
          out.(i) <- Relational.Value.Int v;
          fill (i + 1) rest
        | Json.Int v, Relational.Value.Tfloat ->
          out.(i) <- Relational.Value.Float (float_of_int v);
          fill (i + 1) rest
        | Json.Float v, Relational.Value.Tfloat ->
          out.(i) <- Relational.Value.Float v;
          fill (i + 1) rest
        | Json.Bool v, Relational.Value.Tbool ->
          out.(i) <- Relational.Value.Bool v;
          fill (i + 1) rest
        | Json.String v, Relational.Value.Tstring ->
          out.(i) <- Relational.Value.String v;
          fill (i + 1) rest
        | (Json.Int _ | Json.Float _), _ -> mismatch "a number"
        | Json.Bool _, _ -> mismatch "a boolean"
        | Json.String _, _ -> mismatch "a string"
        | (Json.List _ | Json.Obj _), _ -> mismatch "a nested value")
    in
    fill 0 cells

let typed_rows schema ~table rows =
  let rec go i acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | cells :: rest -> (
      match typed_row schema ~table i cells with
      | Ok row -> go (i + 1) (row :: acc) rest
      | Error _ as e -> e)
  in
  go 0 [] rows

(* Runs on the executor thread, like register/match: Maintain mutates
   the entry's artefacts, and the executor is the only thread allowed
   to do that.  A delta rejected by validation costs a [bad-request];
   an escaping exception (e.g. an injected [Delta_apply] fault) is
   caught by [execute]'s generic handler and leaves the previous
   generation fully intact.  Update failures never touch the circuit
   breaker — it measures scoring health, not client-supplied deltas. *)
let update_reply t ~(ur : Protocol.update_request) =
  Mutex.lock t.tm;
  let entry = Hashtbl.find_opt t.targets ur.Protocol.ur_target in
  Mutex.unlock t.tm;
  match entry with
  | None ->
    admission_reply t
      (Protocol.reject ~code:"unknown-target"
         (Printf.sprintf "unknown target %S (register-target first)" ur.Protocol.ur_target))
  | Some entry -> (
    let bad m = admission_reply t (Protocol.reject ~code:"bad-request" m) in
    let db = Delta.Maintain.target entry.te_maintain in
    match Relational.Database.table_opt db ur.Protocol.ur_table with
    | None ->
      bad
        (Printf.sprintf "target %S has no table %S" ur.Protocol.ur_target ur.Protocol.ur_table)
    | Some tbl -> (
      match
        typed_rows (Relational.Table.schema tbl) ~table:ur.Protocol.ur_table
          ur.Protocol.ur_appends
      with
      | Error m -> bad m
      | Ok appends -> (
        let delta =
          Delta.make ~table:ur.Protocol.ur_table ~appends
            ~deletes:(Array.of_list ur.Protocol.ur_deletes)
        in
        match Delta.Maintain.update entry.te_maintain delta with
        | Error m -> bad m
        | Ok outcome ->
          let target = Delta.Maintain.target entry.te_maintain in
          let prepared = Delta.Maintain.prepared entry.te_maintain in
          Mutex.lock t.tm;
          entry.te_db <- target;
          entry.te_prepared <- prepared;
          Mutex.unlock t.tm;
          store_flush t;
          obs_incr "serve.updates";
          let mode, reason =
            match outcome with
            | Delta.Maintain.Patched -> ("patched", None)
            | Delta.Maintain.Rebuilt reason -> ("rebuilt", Some reason)
          in
          Json.Obj
            (List.filter_map Fun.id
               [
                 Some ("ok", Json.Bool true);
                 Some ("target", Json.String ur.Protocol.ur_target);
                 Some ("table", Json.String ur.Protocol.ur_table);
                 Some ("generation", Json.Int (Delta.Maintain.generation entry.te_maintain));
                 Some ("mode", Json.String mode);
                 Option.map (fun r -> ("reason", Json.String r)) reason;
                 Some
                   ( "rows",
                     Json.Int
                       (Relational.Table.row_count
                          (Relational.Database.table target ur.Protocol.ur_table)) );
                 Some ("appended", Json.Int (List.length ur.Protocol.ur_appends));
                 Some ("deleted", Json.Int (List.length ur.Protocol.ur_deletes));
               ]))))

let execute t job =
  obs_observe_ns "serve.queue_wait_ns" (Int64.sub (Robust.Deadline.now_ns ()) job.enqueued_ns);
  let started = Robust.Deadline.now_ns () in
  let reply =
    try
      match job.work with
      | W_register { w_name; w_db; w_kernel; w_plan; w_ingest } ->
        register_reply t ~name:w_name ~db:w_db ~kernel:w_kernel ~plan:w_plan ~ingest:w_ingest
      | W_match { w_mr; w_source; w_ingest } ->
        match_reply t ~mr:w_mr ~source:w_source ~ingest:w_ingest ~deadline:job.deadline
      | W_update { w_ur } -> update_reply t ~ur:w_ur
    with
    | Robust.Deadline.Expired { stage } ->
      admission_reply t
        (Protocol.reject ~code:"timeout" ("request deadline expired during " ^ stage))
    | e ->
      count t (fun t -> t.n_internal <- t.n_internal + 1);
      obs_incr "serve.internal_errors";
      admission_reply t (internal_reject e)
  in
  obs_observe_ns "serve.request_ns" (Int64.sub (Robust.Deadline.now_ns ()) started);
  count t (fun t -> t.n_completed <- t.n_completed + 1);
  obs_incr "serve.completed";
  (* Periodic durability: with [flush_every] > 0 the executor flushes
     the store every N completed match requests, so a SIGKILL loses at
     most the last N requests' worth of profile work — this is the
     knob the chaos harness turns to put torn-write faults and the
     kill window on the flush path mid-soak. *)
  (match job.work with
  | W_match _ when t.cfg.flush_every > 0 ->
    t.matches_since_flush <- t.matches_since_flush + 1;
    if t.matches_since_flush >= t.cfg.flush_every then begin
      t.matches_since_flush <- 0;
      store_flush t
    end
  | W_match _ | W_register _ | W_update _ -> ());
  Mutex.lock job.jm;
  job.reply <- Some reply;
  Condition.broadcast job.jc;
  Mutex.unlock job.jm

(* All match execution happens here, on one thread: Runtime.Pool takes
   batches from one submitter at a time, and Fault arming is global
   state scoped per run — one executor keeps both safe under any number
   of client connections while the pool parallelises within a request. *)
let executor_loop t =
  let rec loop () =
    Mutex.lock t.qm;
    while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
      Condition.wait t.qc t.qm
    done;
    if Queue.is_empty t.queue then (* stopping && drained *)
      Mutex.unlock t.qm
    else begin
      let job = Queue.pop t.queue in
      t.inflight <- true;
      Mutex.unlock t.qm;
      execute t job;
      Mutex.lock t.qm;
      t.inflight <- false;
      Condition.broadcast t.qc;
      Mutex.unlock t.qm;
      loop ()
    end
  in
  loop ()

(* --- admission ---------------------------------------------------------- *)

let admit t work ~timeout_ms =
  let deadline =
    match timeout_ms with
    | Some ms -> Robust.Deadline.after_ms ms
    | None -> (
      match t.cfg.default_timeout_ms with
      | Some ms -> Robust.Deadline.after_ms ms
      | None -> Robust.Deadline.none)
  in
  let job =
    {
      work;
      deadline;
      enqueued_ns = Robust.Deadline.now_ns ();
      jm = Mutex.create ();
      jc = Condition.create ();
      reply = None;
    }
  in
  Mutex.lock t.qm;
  let verdict =
    if Atomic.get t.stopping then
      Error (Protocol.reject ~code:"shutting-down" "server is shutting down")
    else if Queue.length t.queue >= t.cfg.queue_capacity then
      Error
        (Protocol.reject ~code:"busy"
           (Printf.sprintf "queue full (%d requests pending)" t.cfg.queue_capacity))
    else begin
      Queue.add job t.queue;
      Condition.broadcast t.qc;
      Ok job
    end
  in
  Mutex.unlock t.qm;
  match verdict with
  | Error r -> admission_reply t r
  | Ok job ->
    count t (fun t -> t.n_accepted <- t.n_accepted + 1);
    obs_incr "serve.accepted";
    Mutex.lock job.jm;
    while job.reply = None do
      Condition.wait job.jc job.jm
    done;
    let reply = Option.get job.reply in
    Mutex.unlock job.jm;
    reply

(* --- per-request handling (connection threads) -------------------------- *)

let counters t =
  Mutex.lock t.sm;
  let c_requests = t.n_requests
  and c_accepted = t.n_accepted
  and c_completed = t.n_completed
  and c_rejected = t.n_rejected
  and c_protocol_errors = t.n_protocol_errors in
  Mutex.unlock t.sm;
  Mutex.lock t.qm;
  let c_queue_depth = Queue.length t.queue
  and c_inflight = if t.inflight then 1 else 0 in
  Mutex.unlock t.qm;
  Mutex.lock t.cm;
  let c_connections = Hashtbl.length t.conns in
  Mutex.unlock t.cm;
  Mutex.lock t.tm;
  let c_targets = Hashtbl.length t.targets in
  Mutex.unlock t.tm;
  {
    c_requests;
    c_accepted;
    c_completed;
    c_rejected;
    c_protocol_errors;
    c_queue_depth;
    c_inflight;
    c_connections;
    c_targets;
  }

let stats_reply t =
  let c = counters t in
  Mutex.lock t.tm;
  let targets = Hashtbl.fold (fun name _ acc -> name :: acc) t.targets [] in
  Mutex.unlock t.tm;
  Json.Obj
    [
      ("ok", Json.Bool true);
      ( "stats",
        Json.Obj
          [
            ("requests", Json.Int c.c_requests);
            ("accepted", Json.Int c.c_accepted);
            ("completed", Json.Int c.c_completed);
            ("rejected", Json.Int c.c_rejected);
            ("protocol_errors", Json.Int c.c_protocol_errors);
            ("queue_depth", Json.Int c.c_queue_depth);
            ("queue_capacity", Json.Int t.cfg.queue_capacity);
            ("inflight", Json.Int c.c_inflight);
            ("connections", Json.Int c.c_connections);
            ("targets", Json.Int c.c_targets);
          ] );
      ("targets", Json.List (List.map (fun n -> Json.String n) (List.sort compare targets)));
    ]

(* Registry listing, answered on the connection thread like stats:
   it only reads the table under [t.tm], never blocks on the
   executor.  Generations written by the executor are plain ints —
   a read racing an update sees either the old or the new value. *)
let list_targets_reply t =
  Mutex.lock t.tm;
  let entries = Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.targets [] in
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
    |> List.map (fun (name, e) ->
           let b = e.te_breaker in
           Json.Obj
             [
               ("name", Json.String name);
               ("generation", Json.Int (Delta.Maintain.generation e.te_maintain));
               ("tables", Json.Int (List.length (Relational.Database.tables e.te_db)));
               ("columns", Json.Int (Matching.Standard_match.prepared_columns e.te_prepared));
               ("kernel", Json.Bool (Matching.Standard_match.prepared_kernel e.te_prepared));
               ("plan", Json.String (Plan.spec_to_string e.te_plan));
               ("breaker", Json.String (breaker_state_name b.b_state));
               ("failures", Json.Int b.b_failures);
               ("trips", Json.Int b.b_trips);
             ])
  in
  Mutex.unlock t.tm;
  Json.Obj [ ("ok", Json.Bool true); ("targets", Json.List rows) ]

(* Supervision probe.  Degraded means the daemon is serving but
   something needs attention: a quarantined store shard, a tripped (or
   still-probing) circuit breaker, or a failed last flush. *)
let health_reply t =
  let store_quarantined, store_issues =
    match t.store with
    | Some store ->
      let s = Store.stats store in
      (s.Store.st_quarantined, List.length (Store.issues store))
    | None -> (0, 0)
  in
  Mutex.lock t.tm;
  let breakers =
    Hashtbl.fold
      (fun name entry acc ->
        let b = entry.te_breaker in
        (name, breaker_state_name b.b_state, b.b_failures, b.b_trips) :: acc)
      t.targets []
    |> List.sort compare
  in
  Mutex.unlock t.tm;
  Mutex.lock t.sm;
  let internal = t.n_internal
  and socket_faults = t.n_socket_faults
  and flush_failures = t.n_flush_failures
  and flush_failed = t.flush_failed
  and completed = t.n_completed in
  Mutex.unlock t.sm;
  let breaker_degraded = List.exists (fun (_, s, _, _) -> s <> "closed") breakers in
  let degraded = breaker_degraded || store_quarantined > 0 || flush_failed in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("status", Json.String (if degraded then "degraded" else "healthy"));
      ( "store",
        Json.Obj
          [
            ("quarantined", Json.Int store_quarantined);
            ("issues", Json.Int store_issues);
            ("flush_failures", Json.Int flush_failures);
            ("flush_failed_last", Json.Bool flush_failed);
          ] );
      ( "breakers",
        Json.List
          (List.map
             (fun (name, state, failures, trips) ->
               Json.Obj
                 [
                   ("target", Json.String name);
                   ("state", Json.String state);
                   ("failures", Json.Int failures);
                   ("trips", Json.Int trips);
                 ])
             breakers) );
      ("internal_errors", Json.Int internal);
      ("socket_faults", Json.Int socket_faults);
      ("completed", Json.Int completed);
    ]

(* CSV payloads parse on the connection thread (cheap relative to
   matching, and it keeps malformed-payload replies off the executor's
   critical path).  Mirrors the CLI's ingestion semantics: Strict
   raises on the first malformed row; Lenient quarantines rows but a
   Fatal issue (unreadable input) still fails the request. *)
exception Ingest_failed of Protocol.reject

let parse_tables ~lenient tables =
  let mode = if lenient then Relational.Csv_io.Lenient else Relational.Csv_io.Strict in
  let parsed =
    List.map
      (fun { Protocol.tp_name; tp_csv } ->
        match Relational.Csv_io.table_of_csv_report ~mode ~name:tp_name tp_csv with
        | table, issues ->
          if
            List.exists
              (fun (i : Robust.Error.t) -> i.Robust.Error.severity = Robust.Error.Fatal)
              issues
          then
            raise
              (Ingest_failed
                 {
                   Protocol.rj_code = "ingest";
                   rj_error =
                     Robust.Error.v ~severity:Robust.Error.Fatal ~table:tp_name
                       Robust.Error.Ingest
                       (Printf.sprintf "table %S unreadable even leniently" tp_name);
                 });
          (table, issues)
        | exception Relational.Csv_io.Parse_error { line; message } ->
          raise
            (Ingest_failed
               {
                 Protocol.rj_code = "ingest";
                 rj_error =
                   Robust.Error.v ~severity:Robust.Error.Fatal ~table:tp_name
                     Robust.Error.Ingest
                     (Printf.sprintf "table %S line %d: %s" tp_name line message);
               }))
      tables
  in
  (List.map fst parsed, List.concat_map snd parsed)

let handle_line t line =
  count t (fun t -> t.n_requests <- t.n_requests + 1);
  obs_incr "serve.requests";
  match Protocol.request_of_line line with
  | Error r -> reject_reply t r
  | Ok Protocol.Ping -> Json.Obj [ ("ok", Json.Bool true); ("pong", Json.Bool true) ]
  | Ok Protocol.Stats -> stats_reply t
  | Ok Protocol.List_targets -> list_targets_reply t
  | Ok Protocol.Health -> health_reply t
  | Ok Protocol.Shutdown ->
    stop t;
    (* wake the executor so an idle daemon drains immediately; the
       accept loop notices the flag on its next select tick *)
    Mutex.lock t.qm;
    Condition.broadcast t.qc;
    Mutex.unlock t.qm;
    Json.Obj [ ("ok", Json.Bool true); ("stopping", Json.Bool true) ]
  | Ok (Protocol.Register_target { rt_name; rt_tables; rt_kernel; rt_plan }) -> (
    match parse_tables ~lenient:false rt_tables with
    | tables, ingest ->
      let db = Relational.Database.make "target" tables in
      admit t
        (W_register
           { w_name = rt_name; w_db = db; w_kernel = rt_kernel; w_plan = rt_plan; w_ingest = ingest })
        ~timeout_ms:None
    | exception Ingest_failed r -> reject_reply t r)
  | Ok (Protocol.Update_target ur) -> admit t (W_update { w_ur = ur }) ~timeout_ms:None
  | Ok (Protocol.Match mr) -> (
    match parse_tables ~lenient:mr.Protocol.mr_lenient mr.Protocol.mr_tables with
    | tables, ingest ->
      let source = Relational.Database.make "source" tables in
      admit t
        (W_match { w_mr = mr; w_source = source; w_ingest = ingest })
        ~timeout_ms:mr.Protocol.mr_timeout_ms
    | exception Ingest_failed r -> reject_reply t r)

(* --- connection I/O ----------------------------------------------------- *)

let write_raw fd s =
  let data = Bytes.of_string s in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

(* Reply writes pass through the [Socket_write] fault site, keyed
   ["conn:<id>:<reply-seq>"].  A raising fault drops the connection; a
   torn fault sends a prefix of the reply line first, so the client
   sees a truncated line then EOF — either way the blast radius is one
   connection, never the daemon. *)
let faulted_write ~key fd line =
  let data = line ^ "\n" in
  match Robust.Fault.fire Robust.Fault.Socket_write ~key with
  | Some (Robust.Fault.Torn_write frac) ->
    let n = int_of_float (frac *. float_of_int (String.length data)) in
    (try write_raw fd (String.sub data 0 n) with Unix.Unix_error _ -> ());
    raise (Robust.Fault.Injected { site = Robust.Fault.Socket_write; key })
  | Some Robust.Fault.Raise ->
    raise (Robust.Fault.Injected { site = Robust.Fault.Socket_write; key })
  | Some (Robust.Fault.Latency_ms _) ->
    Robust.Fault.check Robust.Fault.Socket_write ~key;
    write_raw fd data
  | None -> write_raw fd data

let oversized_reject max_bytes =
  Protocol.reject ~code:"oversized"
    (Printf.sprintf "request exceeds %d bytes" max_bytes)

(* Buffered line reader with an explicit oversize mode: once a line
   outgrows [max_request_bytes] we reply immediately, drop bytes until
   the next newline, and keep serving — a client bug costs one request,
   not the connection (and certainly not the daemon). *)
let connection_loop t ~id fd =
  let chunk = Bytes.create 65536 in
  let buf = Buffer.create 4096 in
  let discarding = ref false in
  let reply_seq = ref 0 in
  let read_seq = ref 0 in
  let send line =
    let key = Printf.sprintf "conn:%d:%d" id !reply_seq in
    incr reply_seq;
    faulted_write ~key fd line
  in
  let process_line line =
    let line =
      (* tolerate CRLF clients *)
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    if line <> "" then send (Json.to_string (handle_line t line))
  in
  let rec drain_buffer () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
      let all = Buffer.contents buf in
      let line = String.sub all 0 i in
      let rest = String.sub all (i + 1) (String.length all - i - 1) in
      Buffer.clear buf;
      Buffer.add_string buf rest;
      if !discarding then discarding := false
      else if String.length line > t.cfg.max_request_bytes then
        send (Json.to_string (reject_reply t (oversized_reject t.cfg.max_request_bytes)))
      else process_line line;
      drain_buffer ()
    | None ->
      if (not !discarding) && Buffer.length buf > t.cfg.max_request_bytes then begin
        send (Json.to_string (reject_reply t (oversized_reject t.cfg.max_request_bytes)));
        Buffer.clear buf;
        discarding := true
      end
      else if !discarding then Buffer.clear buf
  in
  let rec read_loop () =
    Robust.Fault.check Robust.Fault.Socket_read ~key:(Printf.sprintf "conn:%d:%d" id !read_seq);
    incr read_seq;
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain_buffer ();
      read_loop ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) -> ()
  in
  try read_loop () with
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  | Robust.Fault.Injected { site = Robust.Fault.Socket_read | Robust.Fault.Socket_write; _ } ->
    (* an injected socket fault costs this connection, nothing else *)
    count t (fun t -> t.n_socket_faults <- t.n_socket_faults + 1);
    obs_incr "serve.socket_faults"

let spawn_connection t fd =
  Mutex.lock t.cm;
  let id = t.next_conn in
  t.next_conn <- id + 1;
  Hashtbl.replace t.conns id fd;
  Mutex.unlock t.cm;
  let thread =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.cm;
            Hashtbl.remove t.conns id;
            Mutex.unlock t.cm;
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> connection_loop t ~id fd))
      ()
  in
  Mutex.lock t.cm;
  t.conn_threads <- thread :: t.conn_threads;
  Mutex.unlock t.cm

(* --- lifecycle ---------------------------------------------------------- *)

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [ _ ], _, _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ -> spawn_connection t fd
      | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run t =
  let executor = Thread.create executor_loop t in
  accept_loop t;
  (* Drain, in dependency order: no new connections, no new work (the
     stopping flag rejects admissions), finish every admitted job so
     all waiting connection threads get their reply... *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Mutex.lock t.qm;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm;
  Thread.join executor;
  (* ... then unblock the readers (write side stays open — replies are
     already written by now) and wait for them to finish. *)
  Mutex.lock t.cm;
  Hashtbl.iter
    (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  let threads = t.conn_threads in
  t.conn_threads <- [];
  Mutex.unlock t.cm;
  List.iter Thread.join threads;
  store_flush t

let start t = Thread.create run t
