(** The `ctxmatch serve` daemon.

    A long-lived process serving ContextMatch over a Unix-domain or TCP
    socket, speaking the line-delimited JSON protocol of {!Protocol}.

    {2 Architecture}

    - One {e accept} loop (the thread that calls {!run}) polls the
      listening socket with a short select timeout, so a stop request —
      from a [shutdown] command or a signal-handler calling {!stop},
      which only flips an atomic flag and is async-signal-safe — is
      noticed within a fraction of a second without interrupting
      anything.
    - One {e connection thread} per client reads request lines,
      answers [ping]/[stats]/[list-targets]/[health]/[shutdown]
      inline, and submits [register-target]/[update-target]/[match]
      work to the executor queue, waiting for the reply before reading
      the next line (per-connection requests are strictly ordered).
    - One {e executor thread} owns all match execution: it pops jobs in
      admission order and runs them over the shared {!Runtime.Pool}
      (resized per request via the [jobs] knob).  Serialising heavy
      work through one thread is what makes the pool's
      one-submitter-at-a-time contract and the fault-injection
      machinery safe under concurrent clients; within a request the
      pool still fans out across domains.
    - Registered targets are
      {!Matching.Standard_match.prepared_target} artefacts: warmed
      columns, frozen kernel, store-backed profiles — prepared once,
      shared by every later request, with per-request results
      bit-identical to a one-shot run over the same inputs.  An
      [update-target] request advances a target to a new generation
      through {!Delta.Maintain}: each artefact value stays immutable
      (readers of the previous generation remain valid), the registry
      entry is swapped on the executor thread, and matches after the
      swap score the post-delta target bit-identically to
      re-registering it from scratch.

    {2 Admission control}

    The executor queue is bounded ([queue_capacity]).  A job arriving
    while the queue is full is rejected immediately with a structured
    [busy] error — backpressure costs the client one round-trip, never
    an unbounded queue.  Per-request deadlines start at admission, so
    queue wait counts against the request budget; a request whose
    deadline expires while still queued is answered with a [timeout]
    error without being executed.

    {2 Supervision}

    A [health] request reports ["healthy"] or ["degraded"] plus the
    evidence: store quarantine counts, flush failures and the state of
    every per-target circuit breaker.  Each registered target carries
    a breaker: [breaker_threshold] consecutive scoring failures trip
    it open, and while open every match against that target is
    rejected immediately with a structured [degraded] error.  A
    scoring failure is an unexpected exception escaping the contained
    pipeline, or a run the containment quarantined into producing
    nothing at all (no matches, no standard matches, only issues) —
    the caller got an empty answer either way.  Deadline expiry never
    counts: a timeout is the client's budget, not the target's fault.  After [breaker_cooldown_ms] the next request
    runs as a half-open trial: success closes the breaker, failure
    re-opens it for another cooldown.

    With [flush_every] > 0 the executor flushes the store every N
    completed match requests (instead of only at shutdown), bounding
    how much profile work a crash can lose; a failed flush is recorded
    for [health] and retried on the next flush, never fatal.  Injected
    socket faults ({!Robust.Fault.Socket_read} / [Socket_write]) cost
    the one connection they fire on.

    {2 Shutdown}

    {!stop} (or a [shutdown] request) stops accepting connections,
    drains every admitted job (in-flight requests complete and their
    replies are written), then shuts client sockets down, joins all
    threads, and flushes the store.  {!run} returns only after that. *)

type address =
  | Unix_sock of string  (** path of a Unix-domain socket *)
  | Tcp of string * int  (** host, port *)

val address_to_string : address -> string

type config = {
  address : address;
  default_jobs : int;  (** pool size for requests that omit [jobs] *)
  queue_capacity : int;  (** bounded executor queue (admission control) *)
  default_timeout_ms : int option;  (** deadline for requests that omit [timeout_ms] *)
  max_request_bytes : int;  (** request lines beyond this are rejected as oversized *)
  store_dir : string option;  (** persistent profile store shared by all requests *)
  store_readonly : bool;
  breaker_threshold : int;  (** consecutive failures that trip a target's breaker *)
  breaker_cooldown_ms : int;  (** open-state duration before a half-open trial *)
  flush_every : int;  (** flush the store every N match requests (0: only at shutdown) *)
}

val default_config : address -> config
(** jobs 1, queue 64, no default deadline, 64 MiB request cap, no
    store, breaker threshold 3 / cooldown 1000 ms, shutdown-only
    flush. *)

exception Bind_error of { address : string; reason : string }
(** The listening socket could not be created/bound/listened — most
    commonly the address is already in use.  Raised by {!create}; the
    CLI maps it onto its serve exit code instead of dying on an
    uncaught exception. *)

type t

val create : config -> t
(** Open the store (if any), bind and listen.  A stale Unix-socket file
    left by a crashed daemon (nothing accepts on it) is removed and
    rebound; a {e live} one raises {!Bind_error}. *)

val run : t -> unit
(** Serve until stopped, then drain and clean up.  Blocking: call from
    the thread that owns the daemon's lifetime ({!start} wraps it in a
    thread for in-process use). *)

val start : t -> Thread.t
(** [Thread.create run t] — the in-process form used by tests and the
    bench load generator. *)

val stop : t -> unit
(** Request graceful shutdown.  Only flips an atomic flag:
    async-signal-safe, callable from a [Sys.Signal_handle]. *)

val port : t -> int option
(** Actual bound port ([Tcp] with port 0 binds an ephemeral one). *)

type counters = {
  c_requests : int;  (** request lines parsed (any command) *)
  c_accepted : int;  (** match/register jobs admitted to the queue *)
  c_completed : int;  (** admitted jobs executed to a reply *)
  c_rejected : int;  (** admission rejections: busy or shutting-down *)
  c_protocol_errors : int;  (** invalid/oversized/unknown request lines *)
  c_queue_depth : int;
  c_inflight : int;  (** 0 or 1: the executor's current job *)
  c_connections : int;  (** currently open client connections *)
  c_targets : int;  (** registered prepared targets *)
}

val counters : t -> counters
(** Consistent snapshot of the serving counters (also exposed to
    clients through the [stats] command). *)
