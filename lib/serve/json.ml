type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* --- parsing ----------------------------------------------------------- *)

type state = { text : string; mutable pos : int }

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail "expected %c at byte %d, found %c" c st.pos d
  | None -> fail "expected %c at byte %d, found end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.text && String.sub st.text st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "bad literal at byte %d" st.pos

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail "bad \\u escape digit %c" c

(* UTF-8 encoding of one code point (surrogate pairs are combined by
   the caller before reaching here) *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.text then fail "truncated \\u escape";
  let v =
    (hex_digit st.text.[st.pos] lsl 12)
    lor (hex_digit st.text.[st.pos + 1] lsl 8)
    lor (hex_digit st.text.[st.pos + 2] lsl 4)
    lor hex_digit st.text.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = parse_hex4 st in
          let cp =
            (* high surrogate: fold the following \uXXXX low half in *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              if
                st.pos + 2 <= String.length st.text
                && st.text.[st.pos] = '\\'
                && st.text.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let low = parse_hex4 st in
                if low >= 0xDC00 && low <= 0xDFFF then
                  0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
                else fail "bad low surrogate"
              end
              else fail "lone high surrogate"
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then fail "lone low surrogate"
            else cp
          in
          add_utf8 buf cp
        | c -> fail "bad escape \\%c" c));
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

(* RFC 8259 number grammar: optional minus, "0" or a non-zero-led
   digit run, optional ".digits", optional exponent.  OCaml's own
   numeric parsers are laxer (leading zeros, "1.", "0x10"), so the
   token shape is validated before conversion. *)
let rfc_number_shape text =
  let n = String.length text in
  let i = ref (if n > 0 && text.[0] = '-' then 1 else 0) in
  let digits () =
    let start = !i in
    while !i < n && match text.[!i] with '0' .. '9' -> true | _ -> false do incr i done;
    !i > start
  in
  let int_ok =
    if !i < n && text.[!i] = '0' then begin
      incr i;
      (* a leading zero must stand alone *)
      not (!i < n && match text.[!i] with '0' .. '9' -> true | _ -> false)
    end
    else digits ()
  in
  let frac_ok =
    if !i < n && text.[!i] = '.' then begin
      incr i;
      digits ()
    end
    else true
  in
  let exp_ok =
    if !i < n && (text.[!i] = 'e' || text.[!i] = 'E') then begin
      incr i;
      if !i < n && (text.[!i] = '+' || text.[!i] = '-') then incr i;
      digits ()
    end
    else true
  in
  int_ok && frac_ok && exp_ok && !i = n

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st
    | _ -> continue := false
  done;
  let text = String.sub st.text start (st.pos - start) in
  if not (rfc_number_shape text) then fail "bad number %S" text;
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail "bad number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* out of int range: fall back to float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let name = parse_string st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((name, value) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((name, value) :: acc)
        | _ -> fail "expected , or } at byte %d" st.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (value :: acc)
        | Some ']' ->
          advance st;
          List.rev (value :: acc)
        | _ -> fail "expected , or ] at byte %d" st.pos
      in
      List (elements [])
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected %c at byte %d" c st.pos

let parse text =
  let st = { text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length text then fail "trailing bytes after value at byte %d" st.pos;
  v

(* --- printing ---------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else begin
    (* shortest representation that round-trips; ensure it still looks
       like a JSON number (contains . or e) *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    let s = if float_of_string shorter = f then shorter else s in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  end

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_into buf s
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf name;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors --------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
