type t = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let sockaddr_of = function
  | Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Server.Tcp (host, port) ->
    let inet =
      if host = "" || host = "*" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list; _ } when Array.length h_addr_list > 0 -> h_addr_list.(0)
          | _ | (exception Not_found) -> failwith ("unknown host " ^ host))
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))

(* Exponential backoff capped at [max_delay_s], with deterministic
   jitter (±25%, drawn from splitmix64 over [(jitter_seed, attempt)])
   so concurrent clients retrying against the same recovering daemon
   de-synchronise — reproducibly: the same seed sleeps the same
   schedule in every run. *)
let backoff_delay ~base ~jitter_seed attempt =
  let max_delay_s = 0.5 in
  let delay = ref base in
  for _ = 1 to min attempt 16 do
    delay := min max_delay_s (!delay *. 1.5)
  done;
  let u = Robust.Fault.hash01 ~seed:jitter_seed ~key:(string_of_int attempt) in
  min max_delay_s (!delay *. (0.75 +. (0.5 *. u)))

let connect ?(retries = 50) ?(retry_delay_s = 0.1) ?(jitter_seed = 0)
    ?(deadline = Robust.Deadline.none) address =
  let domain, sockaddr = sockaddr_of address in
  let rec attempt n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when n < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Robust.Deadline.check ~stage:"connect" deadline;
      let delay = backoff_delay ~base:retry_delay_s ~jitter_seed n in
      let delay =
        (* never sleep past the deadline: wake in time to fail it *)
        match Robust.Deadline.remaining_ms deadline with
        | Some ms -> min delay (float_of_int ms /. 1000.0)
        | None -> delay
      in
      Thread.delay delay;
      Robust.Deadline.check ~stage:"connect" deadline;
      attempt (n + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  { fd = attempt 0; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

let send_raw t data =
  let data = Bytes.of_string data in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write t.fd data !off (len - !off)
  done

let read_reply t =
  let rec take_line () =
    match String.index_opt (Buffer.contents t.buf) '\n' with
    | Some i ->
      let all = Buffer.contents t.buf in
      let line = String.sub all 0 i in
      Buffer.clear t.buf;
      Buffer.add_string t.buf (String.sub all (i + 1) (String.length all - i - 1));
      line
    | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> raise End_of_file
      | n ->
        Buffer.add_subbytes t.buf t.chunk 0 n;
        take_line ())
  in
  take_line ()

let request_line t line =
  send_raw t (line ^ "\n");
  read_reply t

let request t value = Json.parse (request_line t (Json.to_string value))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
