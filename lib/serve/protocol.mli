(** The serve daemon's line-delimited JSON protocol.

    One request per line, one response line per request, in order.
    Requests are objects with a ["cmd"] field:

    - [{"cmd":"ping"}] — liveness probe.
    - [{"cmd":"register-target","name":N,"tables":[{"name":..,"csv":..}],
       "kernel":B}] — prepare a target schema once; later matches
      reference it by name.  Re-registering a name replaces it.
    - [{"cmd":"match","target":N,"tables":[...],"tau":..,"omega":..,
       "late":B,"select":S,"algorithm":A,"seed":I,"jobs":I,
       "timeout_ms":I,"kernel":B,"lenient":B,"faults":[...]}] — run
      ContextMatch of the payload tables (the source sample) against a
      registered target.  Every knob mirrors the one-shot CLI flag of
      the same name and defaults identically.
    - [{"cmd":"update-target","target":N,"table":T,
       "append_rows":[[..]],"delete_rows":[I,..]}] — apply one delta to
      a registered target's table: append the given rows (cells typed
      against the table schema: JSON ints for int attributes, ints or
      floats for float attributes, strings for string attributes,
      booleans for bool attributes, [null] anywhere) and delete the
      given row indices (relative to the table {e before} the update).
      The target's prepared artefact is patched in O(delta) — or
      rebuilt when the delta is too churny or holds unseen grams — and
      subsequent matches see the new generation.
    - [{"cmd":"list-targets"}] — the registry: every target's name,
      update generation and circuit-breaker state.
    - [{"cmd":"stats"}] — server counters and queue state.
    - [{"cmd":"health"}] — supervision probe: overall
      ["healthy"]/["degraded"] status, store quarantine counts, flush
      failures and per-target circuit-breaker states.
    - [{"cmd":"shutdown"}] — begin graceful shutdown (drain, flush).

    Every parse or validation failure is a structured {!reject} carrying
    a {!Robust.Error.t} (stage [Serve]) plus a machine-readable code;
    the daemon replies and lives on. *)

type table_payload = { tp_name : string; tp_csv : string }

type match_request = {
  mr_target : string;  (** registered target name *)
  mr_tables : table_payload list;  (** source sample *)
  mr_tau : float;
  mr_omega : float;
  mr_late : bool;
  mr_select : Ctxmatch.Config.select_policy;
  mr_algorithm : [ `Naive | `Src_class | `Tgt_class | `Cluster ];
  mr_seed : int;
  mr_jobs : int option;  (** [None]: the server's default *)
  mr_timeout_ms : int option;  (** [None]: the server's default *)
  mr_kernel : bool;
  mr_lenient : bool;
  mr_faults : Robust.Fault.arming list;
      (** fault sites to arm for this request only (the deterministic
          fault harness drives the daemon through this) *)
  mr_plan : Plan.spec option;
      (** operator-graph override for this request ("plan" spec string:
          default | auto | filter[:K[,TAU]]); [None] uses the target's
          registered plan *)
}

type update_request = {
  ur_target : string;  (** registered target name *)
  ur_table : string;  (** table within the target *)
  ur_appends : Json.t list list;
      (** appended rows, still raw JSON — typing a cell needs the
          target table's schema, which only the server registry knows *)
  ur_deletes : int list;  (** row indices, relative to the old table *)
}

type request =
  | Ping
  | Register_target of {
      rt_name : string;
      rt_tables : table_payload list;
      rt_kernel : bool;
      rt_plan : Plan.spec;
          (** default plan for matches against this target (optional
              "plan" field; [Plan.Default] when absent) *)
    }
  | Match of match_request
  | Update_target of update_request
  | List_targets
  | Stats
  | Health
  | Shutdown

type reject = {
  rj_code : string;
      (** machine-readable: [invalid-json], [bad-request],
          [unknown-command], [oversized], [busy], [unknown-target],
          [shutting-down], [timeout], [degraded] (circuit breaker
          open), [internal] *)
  rj_error : Robust.Error.t;
}

val reject : ?severity:Robust.Error.severity -> code:string -> string -> reject

val request_of_line : string -> (request, reject) result
(** Parse and validate one request line. *)

val reject_to_json : reject -> Json.t
(** [{"ok":false,"code":..,"error":{"stage","severity","message"}}]. *)

val error_strings : Robust.Error.t list -> Json.t
(** Issues as a list of {!Robust.Error.to_string} lines — the very
    strings the one-shot CLI prints, so differential tests compare
    byte-for-byte. *)

(** {2 Request builders} (clients, tests, the bench loadgen) *)

val ping_json : Json.t
val list_targets_json : Json.t
val stats_json : Json.t
val health_json : Json.t
val shutdown_json : Json.t

val register_json : ?kernel:bool -> ?plan:string -> name:string -> (string * string) list -> Json.t
(** Tables as [(name, csv)] pairs; [plan] is a spec string
    ([default | auto | filter[:K[,TAU]]]) setting the target's default
    operator graph. *)

val update_json :
  ?appends:Json.t list list -> ?deletes:int list -> target:string -> table:string -> unit -> Json.t
(** Build an [update-target] request; appended rows as JSON cell
    lists. *)

val match_json :
  ?tau:float ->
  ?omega:float ->
  ?late:bool ->
  ?select:string ->
  ?algorithm:string ->
  ?seed:int ->
  ?jobs:int ->
  ?timeout_ms:int ->
  ?kernel:bool ->
  ?lenient:bool ->
  ?faults:Robust.Fault.arming list ->
  ?plan:string ->
  target:string ->
  (string * string) list ->
  Json.t
