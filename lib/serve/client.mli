(** Blocking client for the serve protocol.

    One connection, one request in flight: [request] writes a line and
    reads the reply line.  Used by the `ctxmatch client` subcommand,
    the differential/soak tests and the bench load generator — each
    concurrent bench client owns its own [t]. *)

type t

val connect :
  ?retries:int ->
  ?retry_delay_s:float ->
  ?jitter_seed:int ->
  ?deadline:Robust.Deadline.t ->
  Server.address ->
  t
(** Connect, retrying up to [retries] times (default 50) on
    connection-refused — enough to cover a daemon that is still
    binding (or restarting) when the client starts.  Attempt [n]
    sleeps [retry_delay_s] (default 0.1) grown exponentially, capped
    at 0.5 s, with deterministic ±25% jitter drawn from
    [(jitter_seed, n)] — the same seed reproduces the same schedule,
    different seeds de-synchronise concurrent retriers.  With
    [deadline], retrying stops when it passes
    ({!Robust.Deadline.Expired}, stage ["connect"]); sleeps are
    clamped to the remaining budget.  Raises [Unix.Unix_error] once
    the retries are exhausted. *)

val request : t -> Json.t -> Json.t
(** Send one request value as a line and block for the reply line.
    Raises [End_of_file] if the server closes the connection first, and
    {!Json.Parse_error} on an unparseable reply. *)

val request_line : t -> string -> string
(** Raw form of {!request} — the robustness tests use it to send
    deliberately malformed bytes. *)

val send_raw : t -> string -> unit
(** Write bytes verbatim (no newline added, no reply awaited) — for
    truncated-request tests. *)

val read_reply : t -> string
(** Read the next reply line (raises [End_of_file] at EOF). *)

val close : t -> unit
