(** Deterministic, seed-driven fault injection.

    Each named {!site} marks a place in the pipeline that is allowed to
    fail (CSV row parsing, a file read, one matcher fan-out unit, one
    pool task, one memo lookup).  When a site is armed, {!check}
    decides per *key* — a stable identifier of the unit of work, such
    as ["Inventory.Title"] or a row's ["table:line"] — whether to raise
    {!Injected}, by hashing [(seed, site, key)] into \[0, 1) and
    comparing against the armed rate.

    Because the decision depends only on the key, never on scheduling,
    the same faults fire for the same inputs at every [jobs] value:
    differential tests can compare the surviving partial results of a
    sequential and a parallel run bit for bit.

    The armed set is global (read through one [Atomic.t], so checks on
    hot paths cost a single load when nothing is armed) and is intended
    to be mutated from the main domain only, before the fan-out
    starts — use {!with_armed} to scope arming to a run. *)

type site =
  | Csv_parse  (** per ingested CSV row; key ["table:line"] *)
  | File_read  (** per file-read attempt; key = path *)
  | Matcher_score  (** per StandardMatch fan-out unit; key ["table.attr"] *)
  | Pool_task  (** per index of a result-aware pool fan-out; key = index *)
  | Memo_lookup  (** per memo probe; key = hash of the memo key *)

val all_sites : site list
val site_name : site -> string
val site_of_string : string -> site option

exception Injected of { site : site; key : string }

type arming = { site : site; rate : float; seed : int }
(** [rate] is the per-key fault probability in \[0, 1]. *)

val arm : ?rate:float -> ?seed:int -> site -> unit
(** Arm one site ([rate] defaults to [1.0], [seed] to [0]); re-arming
    replaces the previous rate/seed. *)

val disarm : site -> unit
val disarm_all : unit -> unit
val armed : site -> bool

val check : site -> key:string -> unit
(** Raise {!Injected} iff [site] is armed and [(seed, site, key)]
    hashes below the armed rate.  No-op (one atomic load) otherwise. *)

val with_armed : arming list -> (unit -> 'a) -> 'a
(** Run the thunk with the given sites armed *in addition to* whatever
    is already armed, restoring the previous armed set afterwards (also
    on exceptions). *)
