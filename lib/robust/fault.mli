(** Deterministic, seed-driven fault injection.

    Each named {!site} marks a place in the pipeline or the I/O layer
    that is allowed to fail (CSV row parsing, a file read, one matcher
    fan-out unit, one pool task, one memo lookup, a store shard
    read/write/rename, a serve-socket read/write).  When a site is
    armed, {!check} decides per *key* — a stable identifier of the unit
    of work, such as ["Inventory.Title"] or a shard path — whether to
    fire, by hashing [(seed, site, key)] into \[0, 1) and comparing
    against the armed rate.

    Because the decision depends only on the key, never on scheduling,
    the same faults fire for the same inputs at every [jobs] value:
    differential tests can compare the surviving partial results of a
    sequential and a parallel run bit for bit.

    The armed set is global, read through one [Atomic.t] (checks on hot
    paths cost a single load when nothing is armed) and mutated through
    a compare-and-set retry loop, so [arm]/[disarm]/{!with_armed} are
    safe to call concurrently from any thread or domain — the serve
    executor can scope per-request faults with {!with_armed} while
    connection threads arm or disarm chaos sites. *)

type site =
  | Csv_parse  (** per ingested CSV row; key ["table:line"] *)
  | File_read  (** per file-read attempt; key = path *)
  | Matcher_score  (** per StandardMatch fan-out unit; key ["table.attr"] *)
  | Pool_task  (** per index of a result-aware pool fan-out; key = index *)
  | Memo_lookup  (** per memo probe; key = hash of the memo key *)
  | Store_shard_read  (** per shard-file read; key = shard path *)
  | Store_shard_write  (** per shard-file write; key = shard path *)
  | Store_flush_rename  (** per atomic rename at flush; key = target path *)
  | Socket_read  (** per serve-socket read; key ["conn:<id>"] *)
  | Socket_write  (** per serve-socket reply write; key ["conn:<id>:<n>"] *)
  | Delta_apply  (** per incremental target update; key ["table:generation"] *)

val all_sites : site list
val site_name : site -> string
val site_of_string : string -> site option

exception Injected of { site : site; key : string }

type behaviour =
  | Raise  (** raise {!Injected} at the site (the default) *)
  | Torn_write of float
      (** write sites persist only this fraction of the payload before
          failing — the no-fsync crash model where a rename survives a
          power loss but the data behind it does not; non-write sites
          treat it as {!Raise} *)
  | Latency_ms of int
      (** inject a delay of this many milliseconds, then proceed *)

val behaviour_name : behaviour -> string

type arming = { site : site; rate : float; seed : int }
(** [rate] is the per-key fault probability in \[0, 1].  The wire /
    config shape: armings carried in a request or {!with_armed} always
    fire with behaviour {!Raise}. *)

val arm : ?rate:float -> ?seed:int -> ?behaviour:behaviour -> site -> unit
(** Arm one site ([rate] defaults to [1.0], [seed] to [0], [behaviour]
    to {!Raise}); re-arming replaces the previous arming. *)

val disarm : site -> unit
val disarm_all : unit -> unit
val armed : site -> bool

val check : site -> key:string -> unit
(** Raise {!Injected} iff [site] is armed with a raising behaviour and
    [(seed, site, key)] hashes below the armed rate; burn the injected
    delay for [Latency_ms].  No-op (one atomic load) otherwise. *)

val fire : site -> key:string -> behaviour option
(** The decision without the action: [Some behaviour] iff the armed
    site fires for this key.  Write sites use this to implement
    {!Torn_write} themselves. *)

val with_armed : arming list -> (unit -> 'a) -> 'a
(** Run the thunk with the given sites armed *in addition to* whatever
    is already armed, restoring those sites' previous armings
    afterwards (also on exceptions).  Concurrent changes to other
    sites during the thunk are preserved. *)

val hash01 : seed:int -> key:string -> float
(** Deterministic uniform draw in \[0, 1) from [(seed, key)] —
    the jitter source for client retry backoff, exposed here so every
    deterministic-randomness consumer shares one splitmix64. *)

val spec_of_string : string -> (site * float * int * behaviour, string) result
(** Parse ["site\[:rate\[:seed\[:behaviour\]\]\]"] where behaviour is
    ["raise"], ["torn=F"] or ["latency=N"] — the serve daemon's
    [--fault] flag syntax. *)

val arm_spec : string -> (unit, string) result
(** Parse a spec and arm it. *)
