type site = Csv_parse | File_read | Matcher_score | Pool_task | Memo_lookup

let all_sites = [ Csv_parse; File_read; Matcher_score; Pool_task; Memo_lookup ]

let site_name = function
  | Csv_parse -> "csv-parse"
  | File_read -> "file-read"
  | Matcher_score -> "matcher-score"
  | Pool_task -> "pool-task"
  | Memo_lookup -> "memo-lookup"

let site_of_string s =
  List.find_opt (fun site -> String.equal (site_name site) s) all_sites

let site_rank = function
  | Csv_parse -> 0
  | File_read -> 1
  | Matcher_score -> 2
  | Pool_task -> 3
  | Memo_lookup -> 4

let n_sites = 5

exception Injected of { site : site; key : string }

let () =
  Printexc.register_printer (function
    | Injected { site; key } ->
      Some (Printf.sprintf "Robust.Fault.Injected(%s, %s)" (site_name site) key)
    | _ -> None)

type arming = { site : site; rate : float; seed : int }

(* The armed set: per-site (rate, seed), immutable snapshot behind one
   Atomic so [check] on a hot path is a single load + physical-equality
   test when nothing is armed. *)
let nothing : (float * int) option array = Array.make n_sites None
let state : (float * int) option array Atomic.t = Atomic.make nothing

let snapshot () = Array.copy (Atomic.get state)

let publish a =
  Atomic.set state (if Array.for_all (( = ) None) a then nothing else a)

let arm ?(rate = 1.0) ?(seed = 0) site =
  let a = snapshot () in
  a.(site_rank site) <- Some (rate, seed);
  publish a

let disarm site =
  let a = snapshot () in
  a.(site_rank site) <- None;
  publish a

let disarm_all () = Atomic.set state nothing
let armed site = (Atomic.get state).(site_rank site) <> None

(* splitmix64: the decision must depend only on (seed, site, key), so
   faults fire identically whatever the scheduling or jobs value. *)
let splitmix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let decide ~seed ~site ~key rate =
  let h = ref (splitmix64 (Int64.of_int ((seed * 31) + site_rank site + 1))) in
  String.iter
    (fun c -> h := splitmix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
    key;
  (* top 53 bits -> uniform float in [0, 1) *)
  let u = Int64.to_float (Int64.shift_right_logical !h 11) /. 9007199254740992.0 in
  u < rate

let check site ~key =
  let a = Atomic.get state in
  if a != nothing then
    match a.(site_rank site) with
    | Some (rate, seed) when decide ~seed ~site ~key rate -> raise (Injected { site; key })
    | Some _ | None -> ()

let with_armed armings f =
  let saved = Atomic.get state in
  let a = snapshot () in
  List.iter (fun { site; rate; seed } -> a.(site_rank site) <- Some (rate, seed)) armings;
  publish a;
  Fun.protect ~finally:(fun () -> Atomic.set state saved) f
