type site =
  | Csv_parse
  | File_read
  | Matcher_score
  | Pool_task
  | Memo_lookup
  | Store_shard_read
  | Store_shard_write
  | Store_flush_rename
  | Socket_read
  | Socket_write
  | Delta_apply

let all_sites =
  [
    Csv_parse;
    File_read;
    Matcher_score;
    Pool_task;
    Memo_lookup;
    Store_shard_read;
    Store_shard_write;
    Store_flush_rename;
    Socket_read;
    Socket_write;
    Delta_apply;
  ]

let site_name = function
  | Csv_parse -> "csv-parse"
  | File_read -> "file-read"
  | Matcher_score -> "matcher-score"
  | Pool_task -> "pool-task"
  | Memo_lookup -> "memo-lookup"
  | Store_shard_read -> "store-shard-read"
  | Store_shard_write -> "store-shard-write"
  | Store_flush_rename -> "store-flush-rename"
  | Socket_read -> "socket-read"
  | Socket_write -> "socket-write"
  | Delta_apply -> "delta-apply"

let site_of_string s =
  List.find_opt (fun site -> String.equal (site_name site) s) all_sites

let site_rank = function
  | Csv_parse -> 0
  | File_read -> 1
  | Matcher_score -> 2
  | Pool_task -> 3
  | Memo_lookup -> 4
  | Store_shard_read -> 5
  | Store_shard_write -> 6
  | Store_flush_rename -> 7
  | Socket_read -> 8
  | Socket_write -> 9
  | Delta_apply -> 10

let n_sites = 11

exception Injected of { site : site; key : string }

let () =
  Printexc.register_printer (function
    | Injected { site; key } ->
      Some (Printf.sprintf "Robust.Fault.Injected(%s, %s)" (site_name site) key)
    | _ -> None)

type behaviour =
  | Raise
  | Torn_write of float
  | Latency_ms of int

let behaviour_name = function
  | Raise -> "raise"
  | Torn_write f -> Printf.sprintf "torn=%g" f
  | Latency_ms n -> Printf.sprintf "latency=%d" n

type arming = { site : site; rate : float; seed : int }

type armed_site = { a_rate : float; a_seed : int; a_behaviour : behaviour }

(* The armed set: per-site (rate, seed, behaviour), immutable snapshot
   behind one Atomic so [check] on a hot path is a single load + physical-
   equality test when nothing is armed.  All mutation goes through a
   compare-and-set retry loop, so concurrent arm/disarm from any thread
   or domain (the serve executor arming per-request faults while a
   connection thread disarms chaos sites, say) never loses an update. *)
let nothing : armed_site option array = Array.make n_sites None
let state : armed_site option array Atomic.t = Atomic.make nothing

let normalise a = if Array.for_all (( = ) None) a then nothing else a

(* Apply [f] to a private copy of the current armed set and publish it,
   retrying on contention.  [f] must be pure on everything but its
   argument: it can run more than once. *)
let rec update f =
  let old = Atomic.get state in
  let a = Array.copy old in
  f a;
  if not (Atomic.compare_and_set state old (normalise a)) then update f

let arm ?(rate = 1.0) ?(seed = 0) ?(behaviour = Raise) site =
  update (fun a -> a.(site_rank site) <- Some { a_rate = rate; a_seed = seed; a_behaviour = behaviour })

let disarm site = update (fun a -> a.(site_rank site) <- None)
let disarm_all () = Atomic.set state nothing
let armed site = (Atomic.get state).(site_rank site) <> None

(* splitmix64: the decision must depend only on (seed, site, key), so
   faults fire identically whatever the scheduling or jobs value. *)
let splitmix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash01 ~seed ~key =
  let h = ref (splitmix64 (Int64.of_int ((seed * 2654435761) + 17))) in
  String.iter
    (fun c -> h := splitmix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
    key;
  Int64.to_float (Int64.shift_right_logical !h 11) /. 9007199254740992.0

let decide ~seed ~site ~key rate =
  let h = ref (splitmix64 (Int64.of_int ((seed * 31) + site_rank site + 1))) in
  String.iter
    (fun c -> h := splitmix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
    key;
  (* top 53 bits -> uniform float in [0, 1) *)
  let u = Int64.to_float (Int64.shift_right_logical !h 11) /. 9007199254740992.0 in
  u < rate

let fire site ~key =
  let a = Atomic.get state in
  if a == nothing then None
  else
    match a.(site_rank site) with
    | Some { a_rate; a_seed; a_behaviour }
      when decide ~seed:a_seed ~site ~key a_rate ->
      Some a_behaviour
    | Some _ | None -> None

(* Injected latency burns the clock on the monotonic stub rather than
   sleeping: lib/robust has no Unix/threads dependency, and the delays
   chaos runs inject are a handful of milliseconds. *)
let burn_ms ms =
  if ms > 0 then begin
    let target = Int64.add (Deadline.now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L) in
    while Int64.compare (Deadline.now_ns ()) target < 0 do
      ignore (Sys.opaque_identity ())
    done
  end

let check site ~key =
  match fire site ~key with
  | None -> ()
  | Some Latency_ms ms -> burn_ms ms
  | Some (Raise | Torn_write _) -> raise (Injected { site; key })

let with_armed armings f =
  (* Overlay the sites named by [armings], remembering what each one
     held before; the restore puts exactly those sites back, so
     concurrent arm/disarm of *other* sites during [f] is preserved
     rather than clobbered by an old whole-array snapshot. *)
  let saved = Atomic.get state in
  let restore =
    List.map (fun { site; _ } -> (site, saved.(site_rank site))) armings
  in
  update (fun a ->
      List.iter
        (fun { site; rate; seed } ->
          a.(site_rank site) <- Some { a_rate = rate; a_seed = seed; a_behaviour = Raise })
        armings);
  Fun.protect
    ~finally:(fun () ->
      update (fun a -> List.iter (fun (site, prev) -> a.(site_rank site) <- prev) restore))
    f

(* ---- arming specs ------------------------------------------------------ *)

(* "site[:rate[:seed[:behaviour]]]" with behaviour one of "raise",
   "torn=F" (fraction of the payload written before the failure) or
   "latency=N" (injected delay in milliseconds).  Used by the serve
   daemon's --fault flag so chaos runs arm I/O sites from the command
   line. *)
let spec_of_string spec =
  let ( let* ) = Result.bind in
  let parts = String.split_on_char ':' spec in
  let* site, rest =
    match parts with
    | name :: rest -> (
      match site_of_string name with
      | Some site -> Ok (site, rest)
      | None -> Error (Printf.sprintf "unknown fault site %S" name))
    | [] -> Error "empty fault spec"
  in
  let* rate, rest =
    match rest with
    | [] -> Ok (1.0, [])
    | r :: rest -> (
      match float_of_string_opt r with
      | Some f when f >= 0.0 && f <= 1.0 -> Ok (f, rest)
      | Some _ -> Error (Printf.sprintf "fault rate %S outside [0, 1]" r)
      | None -> Error (Printf.sprintf "bad fault rate %S" r))
  in
  let* seed, rest =
    match rest with
    | [] -> Ok (0, [])
    | s :: rest -> (
      match int_of_string_opt s with
      | Some i -> Ok (i, rest)
      | None -> Error (Printf.sprintf "bad fault seed %S" s))
  in
  let* behaviour =
    match rest with
    | [] | [ "raise" ] -> Ok Raise
    | [ b ] -> (
      match String.index_opt b '=' with
      | Some i -> (
        let kind = String.sub b 0 i in
        let arg = String.sub b (i + 1) (String.length b - i - 1) in
        match kind with
        | "torn" -> (
          match float_of_string_opt arg with
          | Some f when f >= 0.0 && f <= 1.0 -> Ok (Torn_write f)
          | _ -> Error (Printf.sprintf "bad torn fraction %S" arg))
        | "latency" -> (
          match int_of_string_opt arg with
          | Some n when n >= 0 -> Ok (Latency_ms n)
          | _ -> Error (Printf.sprintf "bad latency %S" arg))
        | _ -> Error (Printf.sprintf "unknown fault behaviour %S" b))
      | None -> Error (Printf.sprintf "unknown fault behaviour %S" b))
    | _ -> Error (Printf.sprintf "trailing junk in fault spec %S" spec)
  in
  Ok (site, rate, seed, behaviour)

let arm_spec spec =
  match spec_of_string spec with
  | Ok (site, rate, seed, behaviour) ->
    arm ~rate ~seed ~behaviour site;
    Ok ()
  | Error _ as e -> e
