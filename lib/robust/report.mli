(** Mutable, mutex-protected accumulator of {!Error.t} issues.

    A pipeline run owns one report; every stage records the units of
    work it quarantined.  Recording order is preserved, so callers that
    record from a deterministic merge loop (index order after a pool
    fan-out) produce reports that are identical whatever the number of
    worker domains. *)

type t

val create : unit -> t
val add : t -> Error.t -> unit

val record :
  t ->
  ?severity:Error.severity ->
  ?table:string ->
  ?attribute:string ->
  ?line:int ->
  Error.stage ->
  string ->
  unit
(** [record t stage message] = [add t (Error.v stage message)]. *)

val issues : t -> Error.t list
(** In recording order. *)

val count : t -> int
val is_empty : t -> bool

val to_string : t -> string
(** One {!Error.to_string} line per issue. *)
