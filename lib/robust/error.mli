(** Structured error taxonomy of the matching pipeline.

    Every recoverable failure is described by the stage it occurred in,
    the table/attribute it concerns (when known), an optional input line
    number (ingestion), a severity, and a human-readable message.
    Stages accumulate these in a {!Report} instead of raising, so one
    bad input degrades the run instead of aborting it. *)

type stage =
  | Ingest  (** CSV/XML parsing and file reads *)
  | Build  (** StandardMatch model construction (per source attribute) *)
  | Score  (** candidate-view (re-)scoring *)
  | Infer  (** InferCandidateViews *)
  | Select  (** SelectContextualMatches *)
  | Map  (** mapping generation / execution *)
  | Runtime  (** pool / memo / deadline machinery *)
  | Store  (** persistent profile store: shard load/flush/quarantine *)
  | Serve  (** match-serving daemon: protocol, admission, lifecycle *)
  | Other of string

type severity =
  | Warning  (** input anomaly tolerated without losing pipeline output *)
  | Degraded  (** a unit of work was quarantined; output is partial *)
  | Fatal  (** a whole stage produced nothing *)

type t = {
  stage : stage;
  severity : severity;
  table : string option;
  attribute : string option;
  line : int option;  (** 1-based input line, ingestion issues only *)
  message : string;
}

val v :
  ?severity:severity ->
  ?table:string ->
  ?attribute:string ->
  ?line:int ->
  stage ->
  string ->
  t
(** [v stage message] with [severity] defaulting to [Degraded]. *)

val stage_name : stage -> string
val severity_name : severity -> string

val to_string : t -> string
(** One line: ["stage/severity table.attr line N: message"] (context
    parts omitted when absent). *)
