(** Cooperative deadlines on the monotonic clock.

    A deadline is an absolute instant; work units poll {!expired}
    between natural quanta (pool chunks, rows, views) and quarantine the
    remainder once it passes.  Nothing is interrupted pre-emptively:
    a unit that has already started runs to completion, so results that
    were produced are never half-written.

    [none] never expires and its checks never touch the clock, so
    threading a deadline through a hot path costs nothing when no
    timeout is configured. *)

type t

exception Expired of { stage : string }

val none : t

val after_ms : int -> t
(** Deadline [ms] milliseconds from now; [after_ms 0] is already
    expired.  Raises [Invalid_argument] on negative [ms]. *)

val expired : t -> bool

val remaining_ms : t -> int option
(** [None] for {!none}; [Some 0] once expired. *)

val check : ?stage:string -> t -> unit
(** Raise {!Expired} if the deadline has passed. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds (arbitrary origin); exposed for elapsed-time
    measurement that must not be skewed by wall-clock jumps. *)
