type t = { mutex : Mutex.t; mutable rev_issues : Error.t list; mutable n : int }

let create () = { mutex = Mutex.create (); rev_issues = []; n = 0 }

let add t issue =
  Mutex.lock t.mutex;
  t.rev_issues <- issue :: t.rev_issues;
  t.n <- t.n + 1;
  Mutex.unlock t.mutex

let record t ?severity ?table ?attribute ?line stage message =
  add t (Error.v ?severity ?table ?attribute ?line stage message)

let issues t =
  Mutex.lock t.mutex;
  let l = List.rev t.rev_issues in
  Mutex.unlock t.mutex;
  l

let count t = t.n
let is_empty t = t.n = 0
let to_string t = String.concat "\n" (List.map Error.to_string (issues t))
