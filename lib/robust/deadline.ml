external now_ns : unit -> int64 = "robust_monotonic_ns"

type t = Unlimited | At of int64

exception Expired of { stage : string }

let none = Unlimited

let after_ms ms =
  if ms < 0 then invalid_arg "Robust.Deadline.after_ms: negative timeout";
  At (Int64.add (now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L))

let expired = function Unlimited -> false | At t -> Int64.compare (now_ns ()) t >= 0

let remaining_ms = function
  | Unlimited -> None
  | At t ->
    let left = Int64.div (Int64.sub t (now_ns ())) 1_000_000L in
    Some (max 0 (Int64.to_int left))

let check ?(stage = "") t = if expired t then raise (Expired { stage })
