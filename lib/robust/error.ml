type stage =
  | Ingest
  | Build
  | Score
  | Infer
  | Select
  | Map
  | Runtime
  | Store
  | Serve
  | Other of string

type severity = Warning | Degraded | Fatal

type t = {
  stage : stage;
  severity : severity;
  table : string option;
  attribute : string option;
  line : int option;
  message : string;
}

let v ?(severity = Degraded) ?table ?attribute ?line stage message =
  { stage; severity; table; attribute; line; message }

let stage_name = function
  | Ingest -> "ingest"
  | Build -> "build"
  | Score -> "score"
  | Infer -> "infer"
  | Select -> "select"
  | Map -> "map"
  | Runtime -> "runtime"
  | Store -> "store"
  | Serve -> "serve"
  | Other s -> s

let severity_name = function
  | Warning -> "warning"
  | Degraded -> "degraded"
  | Fatal -> "fatal"

let to_string e =
  let context =
    match (e.table, e.attribute) with
    | Some t, Some a -> Printf.sprintf " %s.%s" t a
    | Some t, None -> " " ^ t
    | None, Some a -> " ." ^ a
    | None, None -> ""
  in
  let line = match e.line with Some l -> Printf.sprintf " line %d" l | None -> "" in
  Printf.sprintf "%s/%s%s%s: %s" (stage_name e.stage) (severity_name e.severity) context
    line e.message
