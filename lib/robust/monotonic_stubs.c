/* Monotonic clock for Robust.Deadline: wall clocks jump (NTP, manual
   resets) and CPU clocks stall across blocking IO, so cooperative
   deadlines need CLOCK_MONOTONIC.  Falls back to gettimeofday on
   platforms without it (deadlines then degrade to wall time). */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <sys/time.h>
#include <time.h>

CAMLprim value robust_monotonic_ns(value unit)
{
  (void)unit;
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000 +
                           (int64_t)tv.tv_usec * 1000);
  }
}
