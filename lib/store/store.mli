(** Persistent, sharded on-disk profile store.

    Extends the in-memory {!Matching.Profile_cache} across process
    runs: the per-attribute artefacts the matchers derive (q-gram
    profile, numeric summary, distinct set) are serialised under
    content-addressed keys into [N] shard files plus a small index,
    loaded lazily (a shard is read the first time a key hashes into
    it) and written back atomically — temp file + rename — by
    {!flush}.

    {2 Key derivation}

    An entry's address is the digest of a canonical textual encoding
    of [(format version, artefact kind, table, attr, row-subset
    digest, data digest)].  The row-subset digest is
    {!Matching.Profile_cache.subset_digest} (canonical index
    encoding, stable across OCaml versions and architectures); the
    data digest ({!table_digest}) covers the backing table's schema
    and every cell, so editing one value of the input invalidates
    exactly that table's entries.  No [Marshal] anywhere: both the
    keys and the shard payloads are version-stable text.

    {2 Failure semantics}

    A corrupted, truncated or version-mismatched shard is never
    fatal: it is quarantined (renamed to [<shard>.quarantined] unless
    the store is read-only), reported through the {!Robust.Error}
    taxonomy (stage [Store], severity [Warning]), and the shard
    restarts empty — the run recomputes and the next {!flush} writes
    a clean replacement.  The same applies to an index written by a
    different format version, which quarantines every shard.

    Three {!Robust.Fault} sites cover the store's I/O:
    [Store_shard_read] (fires before a shard file is read; a raising
    fault propagates and leaves the shard unloaded for retry — a
    transient I/O error must not quarantine healthy data),
    [Store_shard_write] (fires in {!flush}; [Raise] fails before the
    rename so old contents survive, [Torn_write] persists a prefix
    and still renames — the no-fsync crash model the END footer
    canary exists for) and [Store_flush_rename] (fails the rename
    itself; the complete new payload is discarded with the temp
    file and old contents survive).  {!flush} propagates injected
    write faults with the affected shard still marked dirty, so a
    later flush retries with the full payload.

    {2 Interner independence}

    Profiles are serialised by gram {e string}
    ({!Textsim.Profile.counts}), never by the dense ids a scoring
    kernel's {!Textsim.Gram_dict} assigns in-process: dictionaries are
    per-model and per-run, while stored artefacts outlive both.  A
    store written by a kernel run therefore warms a legacy run
    byte-identically and vice versa, and re-reading an entry under a
    differently-built dictionary is impossible by construction.

    {2 Concurrency}

    All operations are mutex-protected and may be called from worker
    domains; artefact values are immutable once stored.  Duplicate
    adds of the same address are idempotent. *)

type t

val format_version : int

val open_dir : ?shards:int -> ?readonly:bool -> ?report:Robust.Report.t -> string -> t
(** [open_dir dir] opens (creating the directory if needed) a store
    rooted at [dir].  [shards] (default 8) only applies to a fresh
    store; an existing index fixes the count.  With [readonly] the
    store never touches disk beyond reads: {!flush} is a no-op and
    quarantine leaves corrupt files in place.  [report] additionally
    receives every quarantine issue as it happens.  Raises [Sys_error]
    only when the directory itself cannot be created or listed. *)

val dir : t -> string
val readonly : t -> bool

type key = {
  table : string;  (** base table name *)
  attr : string;  (** attribute name *)
  subset : string;  (** {!Matching.Profile_cache.subset_digest} of the row subset *)
  data : string;  (** {!table_digest} of the backing table *)
}

val table_digest : Relational.Table.t -> string
(** Canonical digest of a table's name, schema and every cell value
    (floats by their IEEE bits, strings length-prefixed), so equal
    digests imply the very same sample the profiles were computed
    from. *)

val find_profile : t -> key -> Textsim.Profile.t option
val find_summary : t -> key -> Stats.Descriptive.summary option
val find_distinct : t -> key -> string list option
(** Lookups load the owning shard on first touch; a corrupt shard is
    quarantined and the lookup misses. *)

val add_profile : t -> key -> Textsim.Profile.t -> unit
val add_summary : t -> key -> Stats.Descriptive.summary -> unit
val add_distinct : t -> key -> string list -> unit
(** No-ops on a read-only store. *)

(** {2 Delta records}

    A delta record chains one table mutation off the content-addressed
    base: it names the digest it consumed ([dr_from]) and the digest it
    produced ([dr_to], which addresses the record), the appended rows,
    the deleted row indices and a snapshot of the deleted rows (so the
    mutation is invertible without the old table at hand).  Records ride
    the same shards, atomic flushes and END-canary crash discipline as
    every other artefact; {!verify} counts them per directory.
    {!compact_deltas} folds a chain back into a base snapshot — the
    per-artefact entries of the head state were written through when it
    was built, so dropping the intermediate records loses nothing. *)

type delta_record = {
  dr_table : string;  (** table name *)
  dr_from : string;  (** {!table_digest} the delta applies to *)
  dr_to : string;  (** {!table_digest} the delta produces (the record's address) *)
  dr_from_rows : int;  (** row count of the [dr_from] table *)
  dr_appends : Relational.Value.t array array;
  dr_deletes : int array;  (** deleted row indices, ascending *)
  dr_deleted_rows : Relational.Value.t array array;  (** the rows removed *)
}

val add_delta : t -> delta_record -> unit
(** Record a delta under [(dr_table, dr_to)].  No-op on a read-only
    store; idempotent per address. *)

val find_delta : t -> table:string -> data:string -> delta_record option
(** The delta that produced [data] for [table], if recorded. *)

val delta_chain : t -> table:string -> data:string -> delta_record list
(** The chain ending at [data], oldest first, following [dr_from]
    pointers backward; bounded against cycles and pathological depth.
    Empty when [data] is a base snapshot (no delta produced it). *)

val remove_delta : t -> table:string -> data:string -> unit

val compact_deltas : t -> table:string -> data:string -> int
(** Drop every record of the chain ending at [data], returning how many
    were removed.  Call after the head state's artefacts have been
    written through — the head then stands as a plain base snapshot. *)

val flush : t -> unit
(** Write every dirty shard back (temp file + atomic rename) and
    refresh the index.  No-op on a read-only store; untouched shards
    are not rewritten. *)

type stats = {
  st_hits : int;  (** lookups answered from a shard *)
  st_misses : int;  (** lookups that found nothing *)
  st_adds : int;  (** new entries recorded since open *)
  st_shard_loads : int;  (** shard files read *)
  st_quarantined : int;  (** shards quarantined as corrupt/stale *)
  st_flushed : int;  (** shards written back *)
  st_entries : int;  (** entries across currently loaded shards *)
}

val stats : t -> stats

val issues : t -> Robust.Error.t list
(** Quarantine events since open, oldest first (also mirrored to the
    [report] passed at {!open_dir}, and to the [store.*] observability
    counters). *)

(** {2 Recovery audit}

    {!verify} walks a store directory without opening (or mutating)
    it and classifies every file: shards that parse end to end are
    [Shard_clean]; shards missing the ["END <n>"] footer lost their
    tail to a torn write and are [Shard_truncated]; shards that carry
    the footer but fail to parse are [Shard_corrupt]; files the
    recovery path already renamed to [.quarantined] stay
    [Shard_quarantined].  Leftover [.tmp] files from an interrupted
    atomic write are counted separately — the rename never happened,
    so they are harmless.  The chaos gate accepts a store iff
    {!verify_healthy}: nothing truncated, nothing corrupt, index
    readable. *)

type shard_status = Shard_clean | Shard_truncated | Shard_corrupt | Shard_quarantined

val shard_status_name : shard_status -> string

type verify_entry = { ve_file : string; ve_status : shard_status; ve_detail : string }

type verify_report = {
  vr_entries : verify_entry list;  (** one per store file, sorted by name *)
  vr_clean : int;
  vr_truncated : int;
  vr_corrupt : int;
  vr_quarantined : int;
  vr_tmp : int;  (** leftover temp files (harmless) *)
  vr_deltas : int;  (** delta records across clean shards *)
  vr_index_ok : bool;  (** index absent-or-parseable *)
}

val verify : string -> verify_report
(** [verify dir] audits the store rooted at [dir].  Never raises: an
    unlistable directory yields an empty report. *)

val verify_healthy : verify_report -> bool
(** No truncated or corrupt shard and a readable index — every file
    is clean, quarantined or a harmless temp leftover. *)
