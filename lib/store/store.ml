(* v2 added delta records (kind 'x'); a v1 store quarantines on open
   and rebuilds, like any foreign-version layout. *)
let format_version = 2

type key = { table : string; attr : string; subset : string; data : string }

(* One table mutation, chained off the content-addressed base: applying
   [dr_appends]/[dr_deletes] to the table whose {!table_digest} is
   [dr_from] (over [dr_from_rows] rows) yields the table digesting to
   [dr_to].  [dr_deleted_rows] snapshots the removed rows so the delta
   is invertible without the old table at hand. *)
type delta_record = {
  dr_table : string;
  dr_from : string;
  dr_to : string;
  dr_from_rows : int;
  dr_appends : Relational.Value.t array array;
  dr_deletes : int array;
  dr_deleted_rows : Relational.Value.t array array;
}

type artefact =
  | Profile of Textsim.Profile.t
  | Summary of Stats.Descriptive.summary
  | Distinct of string list
  | Delta_rec of delta_record

type shard = {
  mutable state : [ `Unloaded | `Loaded of (string, artefact) Hashtbl.t ];
  mutable dirty : bool;
}

type t = {
  dir : string;
  nshards : int;
  ro : bool;
  report : Robust.Report.t option;
  mutex : Mutex.t;
  shards : shard array;
  mutable rev_issues : Robust.Error.t list;
  mutable hits : int;
  mutable misses : int;
  mutable adds : int;
  mutable loads : int;
  mutable quarantined : int;
  mutable flushed : int;
}

let dir t = t.dir
let readonly t = t.ro

(* Local parse failure; every raiser is caught by the shard loader and
   turned into a quarantine, never a user-visible exception. *)
exception Corrupt of string

(* ---- canonical encodings ---------------------------------------------- *)

let hex_digit = "0123456789abcdef"

let to_hex s =
  let b = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let x = Char.code c in
      Bytes.set b (2 * i) hex_digit.[x lsr 4];
      Bytes.set b ((2 * i) + 1) hex_digit.[x land 15])
    s;
  Bytes.to_string b

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Corrupt "odd hex length");
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> raise (Corrupt "bad hex digit")
  in
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

(* The address binds every component of the identity — kind, table,
   attribute, row subset, data digest and the format version — through
   length-prefixed fields, so no concatenation of differing components
   can collide textually. *)
let address ~kind k =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "ctxstore|%d|%c|%d:%s|%d:%s|%s|%s" format_version kind
          (String.length k.table) k.table (String.length k.attr) k.attr k.subset k.data))

let table_digest table =
  let open Relational in
  let buf = Buffer.create 4096 in
  let add_str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  add_str (Table.name table);
  let schema = Table.schema table in
  List.iter
    (fun name ->
      add_str name;
      Buffer.add_string buf (Value.ty_to_string (Schema.attribute schema name).Attribute.ty);
      Buffer.add_char buf ';')
    (Schema.attribute_names schema);
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          (match v with
          | Value.Null -> Buffer.add_string buf "n"
          | Value.Int i ->
            Buffer.add_char buf 'i';
            Buffer.add_string buf (string_of_int i)
          | Value.Float f ->
            (* IEEE bits, not a decimal rendering: two floats that print
               the same must not collide *)
            Buffer.add_char buf 'f';
            Buffer.add_string buf (Int64.to_string (Int64.bits_of_float f))
          | Value.Bool b -> Buffer.add_string buf (if b then "b1" else "b0")
          | Value.String s ->
            Buffer.add_char buf 's';
            add_str s);
          Buffer.add_char buf ',')
        row;
      Buffer.add_char buf '|')
    (Table.rows table);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Single space-free token per cell, mirroring [table_digest]'s
   canonical encoding (floats by IEEE bits, strings hex-escaped), so a
   delta row round-trips to the exact values — and hence the exact
   digest — it was recorded from. *)
let cell_to_string v =
  let open Relational in
  match v with
  | Value.Null -> "n"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> "f" ^ Int64.to_string (Int64.bits_of_float f)
  | Value.Bool b -> if b then "b1" else "b0"
  | Value.String s -> "s" ^ to_hex s

let cell_of_string s =
  let open Relational in
  if String.length s = 0 then raise (Corrupt "empty cell");
  let rest () = String.sub s 1 (String.length s - 1) in
  match s.[0] with
  | 'n' when String.length s = 1 -> Value.Null
  | 'i' -> (
    match int_of_string_opt (rest ()) with
    | Some i -> Value.Int i
    | None -> raise (Corrupt "bad int cell"))
  | 'f' -> (
    match Int64.of_string_opt (rest ()) with
    | Some bits -> Value.Float (Int64.float_of_bits bits)
    | None -> raise (Corrupt "bad float cell"))
  | 'b' -> (
    match rest () with
    | "1" -> Value.Bool true
    | "0" -> Value.Bool false
    | _ -> raise (Corrupt "bad bool cell"))
  | 's' -> Value.String (of_hex (rest ()))
  | _ -> raise (Corrupt "bad cell tag")

(* ---- shard serialisation ---------------------------------------------- *)

let shard_path t i = Filename.concat t.dir (Printf.sprintf "shard-%04d.dat" i)
let index_path dir = Filename.concat dir "store.index"

let emit_entry buf addr art =
  match art with
  | Profile p ->
    let counts = Textsim.Profile.counts p in
    Buffer.add_string buf
      (Printf.sprintf "P %s %d %d %d\n" addr (Textsim.Profile.q p) (Textsim.Profile.total p)
         (Array.length counts));
    Array.iter
      (fun (gram, n) -> Buffer.add_string buf (Printf.sprintf "G %s %d\n" (to_hex gram) n))
      counts
  | Summary s ->
    Buffer.add_string buf
      (Printf.sprintf "S %s %d %h %h %h %h %h\n" addr s.Stats.Descriptive.n
         s.Stats.Descriptive.mean s.Stats.Descriptive.variance s.Stats.Descriptive.stddev
         s.Stats.Descriptive.min s.Stats.Descriptive.max)
  | Distinct l ->
    Buffer.add_string buf (Printf.sprintf "D %s %d\n" addr (List.length l));
    List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "V %s\n" (to_hex v))) l
  | Delta_rec d ->
    let row_line tag row =
      Buffer.add_char buf tag;
      Array.iter
        (fun v ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (cell_to_string v))
        row;
      Buffer.add_char buf '\n'
    in
    Buffer.add_string buf
      (Printf.sprintf "X %s %s %s %s %d %d %d\n" addr (to_hex d.dr_table) (to_hex d.dr_from)
         (to_hex d.dr_to) d.dr_from_rows (Array.length d.dr_appends)
         (Array.length d.dr_deletes));
    Array.iter (row_line 'R') d.dr_appends;
    Buffer.add_char buf 'I';
    Array.iter
      (fun i ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int i))
      d.dr_deletes;
    Buffer.add_char buf '\n';
    Array.iter (row_line 'Q') d.dr_deleted_rows

let render_shard t i table =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "ctxstore %d shard %d/%d\n" format_version i t.nshards);
  let entries =
    Hashtbl.fold (fun addr art acc -> (addr, art) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (addr, art) -> emit_entry buf addr art) entries;
  Buffer.add_string buf (Printf.sprintf "END %d\n" (List.length entries));
  Buffer.contents buf

let int_field what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Corrupt (Printf.sprintf "bad %s %S" what s))

let float_field what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Corrupt (Printf.sprintf "bad %s %S" what s))

(* Parse one serialised shard.  Every anomaly — wrong magic, foreign
   format version, wrong shard coordinates, malformed line, a count
   that does not match, missing END terminator (truncation) — raises
   [Corrupt]. *)
let parse_shard ~index ~nshards text =
  let lines = String.split_on_char '\n' text in
  let lines = ref lines in
  let next what =
    match !lines with
    | [] -> raise (Corrupt (Printf.sprintf "truncated: missing %s" what))
    | l :: rest ->
      lines := rest;
      l
  in
  let header = String.split_on_char ' ' (next "header") in
  (match header with
  | [ "ctxstore"; v; "shard"; coords ] ->
    let v = int_field "version" v in
    if v <> format_version then
      raise (Corrupt (Printf.sprintf "format version %d, expected %d" v format_version));
    if coords <> Printf.sprintf "%d/%d" index nshards then
      raise (Corrupt (Printf.sprintf "shard coordinates %s, expected %d/%d" coords index nshards))
  | _ -> raise (Corrupt "bad magic"));
  let table = Hashtbl.create 64 in
  let entries = ref 0 in
  let rec entry () =
    match String.split_on_char ' ' (next "entry") with
    | [ "END"; n ] ->
      if int_field "END count" n <> !entries then raise (Corrupt "entry count mismatch");
      (match !lines with
      | [] | [ "" ] -> ()
      | _ -> raise (Corrupt "trailing garbage after END"))
    | [ "P"; addr; q; total; n ] ->
      let n = int_field "gram count" n in
      let counts =
        Array.init n (fun _ ->
            match String.split_on_char ' ' (next "gram") with
            | [ "G"; gram; c ] -> (of_hex gram, int_field "gram occurrences" c)
            | _ -> raise (Corrupt "bad gram line"))
      in
      let p = Textsim.Profile.of_counts ~q:(int_field "q" q) counts in
      if Textsim.Profile.total p <> int_field "total" total then
        raise (Corrupt "profile total mismatch");
      Hashtbl.replace table addr (Profile p);
      incr entries;
      entry ()
    | [ "S"; addr; n; mean; variance; stddev; min; max ] ->
      Hashtbl.replace table addr
        (Summary
           {
             Stats.Descriptive.n = int_field "summary n" n;
             mean = float_field "mean" mean;
             variance = float_field "variance" variance;
             stddev = float_field "stddev" stddev;
             min = float_field "min" min;
             max = float_field "max" max;
           });
      incr entries;
      entry ()
    | [ "D"; addr; n ] ->
      let n = int_field "distinct count" n in
      let values =
        List.init n (fun _ ->
            match String.split_on_char ' ' (next "distinct value") with
            | [ "V"; v ] -> of_hex v
            | _ -> raise (Corrupt "bad distinct line"))
      in
      Hashtbl.replace table addr (Distinct values);
      incr entries;
      entry ()
    | [ "X"; addr; tbl; from_; to_; from_rows; n_app; n_del ] ->
      let n_app = int_field "append count" n_app in
      let n_del = int_field "delete count" n_del in
      let row what tag =
        match String.split_on_char ' ' (next what) with
        | t :: cells when t = tag -> Array.of_list (List.map cell_of_string cells)
        | _ -> raise (Corrupt (Printf.sprintf "bad %s line" what))
      in
      let appends = Array.init n_app (fun _ -> row "append row" "R") in
      let deletes =
        match String.split_on_char ' ' (next "delete indices") with
        | "I" :: idxs -> Array.of_list (List.map (int_field "delete index") idxs)
        | _ -> raise (Corrupt "bad delete-indices line")
      in
      if Array.length deletes <> n_del then raise (Corrupt "delete count mismatch");
      let deleted_rows = Array.init n_del (fun _ -> row "deleted row" "Q") in
      Hashtbl.replace table addr
        (Delta_rec
           {
             dr_table = of_hex tbl;
             dr_from = of_hex from_;
             dr_to = of_hex to_;
             dr_from_rows = int_field "from rows" from_rows;
             dr_appends = appends;
             dr_deletes = deletes;
             dr_deleted_rows = deleted_rows;
           });
      incr entries;
      entry ()
    | _ -> raise (Corrupt "unrecognised entry line")
  in
  entry ();
  table

(* ---- quarantine -------------------------------------------------------- *)

let record_issue t message =
  let issue = Robust.Error.v ~severity:Robust.Error.Warning Robust.Error.Store message in
  t.rev_issues <- issue :: t.rev_issues;
  (match t.report with Some r -> Robust.Report.add r issue | None -> ());
  t.quarantined <- t.quarantined + 1;
  Obs.Metrics.incr "store.quarantined"

(* Move a bad file aside so the rebuild never rereads it.  Read-only
   stores leave the file in place (they must not touch disk); failures
   to rename fall back to removal, and a file we can neither rename nor
   remove is simply overwritten by the next flush. *)
let set_aside t path =
  if not t.ro then begin
    let target = path ^ ".quarantined" in
    try
      if Sys.file_exists target then Sys.remove target;
      Sys.rename path target
    with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ())
  end

let quarantine t path reason =
  record_issue t (Printf.sprintf "%s quarantined (%s); rebuilding" (Filename.basename path) reason);
  set_aside t path

(* ---- open -------------------------------------------------------------- *)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_index text =
  match String.split_on_char ' ' (String.trim text) with
  | [ "ctxstore-index"; v; "shards"; n ] ->
    let v = int_field "index version" v in
    if v <> format_version then
      raise (Corrupt (Printf.sprintf "index format version %d, expected %d" v format_version));
    let n = int_field "shard count" n in
    if n < 1 || n > 4096 then raise (Corrupt "implausible shard count");
    n
  | _ -> raise (Corrupt "bad index magic")

(* ---- recovery audit ---------------------------------------------------- *)

type shard_status = Shard_clean | Shard_truncated | Shard_corrupt | Shard_quarantined

let shard_status_name = function
  | Shard_clean -> "clean"
  | Shard_truncated -> "truncated"
  | Shard_corrupt -> "corrupt"
  | Shard_quarantined -> "quarantined"

type verify_entry = { ve_file : string; ve_status : shard_status; ve_detail : string }

type verify_report = {
  vr_entries : verify_entry list;
  vr_clean : int;
  vr_truncated : int;
  vr_corrupt : int;
  vr_quarantined : int;
  vr_tmp : int;
  vr_deltas : int;
  vr_index_ok : bool;
}

let verify_healthy r =
  r.vr_truncated = 0 && r.vr_corrupt = 0 && r.vr_index_ok

(* The END footer is the truncation canary: a file whose last line is
   not "END <n>" lost its tail (torn write, power cut before the data
   hit disk), whereas a file that still carries END but fails to parse
   was damaged some other way. *)
let has_end_footer text =
  let n = String.length text in
  let stop = if n > 0 && text.[n - 1] = '\n' then n - 1 else n in
  let start = match String.rindex_from_opt text (max 0 (stop - 1)) '\n' with
    | Some i -> i + 1
    | None -> 0
  in
  stop > start + 4 && String.sub text start 4 = "END "

let shard_index_of_file f =
  if String.length f = 14 && String.sub f 0 6 = "shard-" && Filename.check_suffix f ".dat"
  then int_of_string_opt (String.sub f 6 4)
  else None

(* Walk [dir] and classify every store file without mutating anything:
   clean shards parse end to end, truncated ones lost their END
   footer, corrupt ones fail to parse some other way, and files the
   recovery path already set aside stay quarantined.  Leftover
   temp files from an interrupted atomic write are counted but
   harmless — the rename never happened, so the shard they were
   replacing is intact. *)
let verify dir =
  let files =
    match Sys.readdir dir with
    | files -> Array.to_list files |> List.sort String.compare
    | exception Sys_error _ -> []
  in
  let index_ok, nshards =
    let path = index_path dir in
    if not (Sys.file_exists path) then
      (* an index-less directory is an empty (or never-flushed) store *)
      (true, None)
    else
      match parse_index (read_file path) with
      | n -> (true, Some n)
      | exception (Corrupt _ | Sys_error _) -> (false, None)
  in
  let deltas = ref 0 in
  let entries =
    List.filter_map
      (fun f ->
        if Filename.check_suffix f ".quarantined" then
          Some { ve_file = f; ve_status = Shard_quarantined; ve_detail = "set aside by recovery" }
        else
          match shard_index_of_file f with
          | None -> None
          | Some i -> (
            let path = Filename.concat dir f in
            match read_file path with
            | exception Sys_error reason ->
              Some { ve_file = f; ve_status = Shard_corrupt; ve_detail = reason }
            | text -> (
              let nshards =
                match nshards with
                | Some n -> n
                | None -> (
                  (* no readable index: trust the shard's own header *)
                  match String.index_opt text '\n' with
                  | Some eol -> (
                    match String.split_on_char ' ' (String.sub text 0 eol) with
                    | [ "ctxstore"; _; "shard"; coords ] -> (
                      match String.split_on_char '/' coords with
                      | [ _; n ] -> ( match int_of_string_opt n with Some n -> n | None -> 0)
                      | _ -> 0)
                    | _ -> 0)
                  | None -> 0)
              in
              match parse_shard ~index:i ~nshards text with
              | parsed ->
                deltas :=
                  !deltas
                  + Hashtbl.fold
                      (fun _ a acc -> match a with Delta_rec _ -> acc + 1 | _ -> acc)
                      parsed 0;
                Some { ve_file = f; ve_status = Shard_clean; ve_detail = "" }
              | exception Corrupt reason ->
                let status = if has_end_footer text then Shard_corrupt else Shard_truncated in
                Some { ve_file = f; ve_status = status; ve_detail = reason })))
      files
  in
  let count st = List.length (List.filter (fun e -> e.ve_status = st) entries) in
  let tmp =
    List.length
      (List.filter (fun f -> Filename.check_suffix f ".tmp" && String.length f >= 5) files)
  in
  {
    vr_entries = entries;
    vr_clean = count Shard_clean;
    vr_truncated = count Shard_truncated;
    vr_corrupt = count Shard_corrupt;
    vr_quarantined = count Shard_quarantined;
    vr_tmp = tmp;
    vr_deltas = !deltas;
    vr_index_ok = index_ok;
  }

let open_dir ?(shards = 8) ?(readonly = false) ?report dir =
  if shards < 1 then invalid_arg "Store.open_dir: shards must be >= 1";
  if not readonly then mkdir_p dir;
  let t =
    {
      dir;
      nshards = shards;
      ro = readonly;
      report;
      mutex = Mutex.create ();
      shards = [||];
      rev_issues = [];
      hits = 0;
      misses = 0;
      adds = 0;
      loads = 0;
      quarantined = 0;
      flushed = 0;
    }
  in
  let nshards =
    let path = index_path dir in
    if not (Sys.file_exists path) then shards
    else begin
      match parse_index (read_file path) with
      | n -> n
      | exception (Corrupt reason | Sys_error reason) ->
        (* a foreign or corrupt index invalidates the whole layout:
           quarantine it and every shard file, then start fresh *)
        quarantine t path reason;
        Array.iter
          (fun f ->
            if
              String.length f >= 6
              && String.sub f 0 6 = "shard-"
              && Filename.check_suffix f ".dat"
            then set_aside t (Filename.concat dir f))
          (Sys.readdir dir);
        shards
    end
  in
  {
    t with
    nshards;
    shards = Array.init nshards (fun _ -> { state = `Unloaded; dirty = false });
  }

(* ---- lookups / adds ---------------------------------------------------- *)

let shard_of t addr = int_of_string ("0x" ^ String.sub addr 0 4) mod t.nshards

(* Under [t.mutex]. *)
let loaded_shard t i =
  let shard = t.shards.(i) in
  match shard.state with
  | `Loaded table -> table
  | `Unloaded ->
    let path = shard_path t i in
    (* A read fault is a transient I/O error, not data damage: it
       propagates to the caller and leaves the shard [`Unloaded] so a
       later access retries — quarantining the (healthy) file here
       would destroy data over a passing failure. *)
    Robust.Fault.check Robust.Fault.Store_shard_read ~key:path;
    let table =
      if not (Sys.file_exists path) then Hashtbl.create 64
      else begin
        Obs.Trace.with_span "store.load" @@ fun () ->
        match parse_shard ~index:i ~nshards:t.nshards (read_file path) with
        | table ->
          t.loads <- t.loads + 1;
          Obs.Metrics.incr "store.shard_loads";
          table
        | exception (Corrupt reason | Sys_error reason) ->
          quarantine t path reason;
          shard.dirty <- not t.ro;
          Hashtbl.create 64
      end
    in
    shard.state <- `Loaded table;
    table

let find t ~kind key =
  Mutex.lock t.mutex;
  let result =
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
    match Hashtbl.find_opt (loaded_shard t (shard_of t (address ~kind key))) (address ~kind key) with
    | Some art ->
      t.hits <- t.hits + 1;
      Some art
    | None ->
      t.misses <- t.misses + 1;
      None
  in
  (if !Obs.Recorder.enabled then
     match result with
     | Some _ -> Obs.Metrics.incr "store.hits"
     | None -> Obs.Metrics.incr "store.misses");
  result

let add t ~kind key art =
  if not t.ro then begin
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
    let addr = address ~kind key in
    let i = shard_of t addr in
    let table = loaded_shard t i in
    if not (Hashtbl.mem table addr) then begin
      Hashtbl.replace table addr art;
      t.shards.(i).dirty <- true;
      t.adds <- t.adds + 1;
      if !Obs.Recorder.enabled then Obs.Metrics.incr "store.adds"
    end
  end

let find_profile t key =
  match find t ~kind:'p' key with Some (Profile p) -> Some p | Some _ | None -> None

let find_summary t key =
  match find t ~kind:'s' key with Some (Summary s) -> Some s | Some _ | None -> None

let find_distinct t key =
  match find t ~kind:'d' key with Some (Distinct d) -> Some d | Some _ | None -> None

let add_profile t key p = add t ~kind:'p' key (Profile p)
let add_summary t key s = add t ~kind:'s' key (Summary s)
let add_distinct t key d = add t ~kind:'d' key (Distinct d)

(* ---- delta chains ------------------------------------------------------ *)

(* A delta record is addressed by the digest of the table it produces
   ([dr_to]); the digest it consumed ([dr_from]) is the chain's back
   pointer.  Attr and subset are empty — a delta belongs to the whole
   table, not one artefact. *)
let delta_addr_key ~table ~data = { table; attr = ""; subset = ""; data }

let add_delta t d = add t ~kind:'x' (delta_addr_key ~table:d.dr_table ~data:d.dr_to) (Delta_rec d)

let find_delta t ~table ~data =
  match find t ~kind:'x' (delta_addr_key ~table ~data) with
  | Some (Delta_rec d) -> Some d
  | Some _ | None -> None

(* Oldest-first walk along [dr_from] pointers, bounded against cycles
   (a record claiming to produce a digest already on the walk) and
   pathological depth. *)
let delta_chain t ~table ~data =
  let rec walk acc seen data depth =
    if depth > 4096 || List.mem data seen then acc
    else
      match find_delta t ~table ~data with
      | None -> acc
      | Some d -> walk (d :: acc) (data :: seen) d.dr_from (depth + 1)
  in
  walk [] [] data 0

let remove_delta t ~table ~data =
  if not t.ro then begin
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
    let addr = address ~kind:'x' (delta_addr_key ~table ~data) in
    let i = shard_of t addr in
    let shard_table = loaded_shard t i in
    if Hashtbl.mem shard_table addr then begin
      Hashtbl.remove shard_table addr;
      t.shards.(i).dirty <- true
    end
  end

(* Fold a chain back into its base snapshot: the per-artefact entries
   under the head digest were already written through when the head
   state was built, so dropping the intermediate delta records leaves
   exactly a base snapshot at the head — shorter chains to walk, fewer
   entries to parse. *)
let compact_deltas t ~table ~data =
  let chain = delta_chain t ~table ~data in
  List.iter (fun d -> remove_delta t ~table ~data:d.dr_to) chain;
  let n = List.length chain in
  if n > 0 && !Obs.Recorder.enabled then Obs.Metrics.add "store.deltas_compacted" n;
  n

(* ---- flush ------------------------------------------------------------- *)

(* Atomic temp-file-plus-rename write, with two injection points
   matching the two real crash models:

   - [Store_shard_write] with [Raise] fails before anything reaches
     [path]: the old contents survive untouched (a leftover .tmp at
     worst).  With [Torn_write frac] it persists only a prefix of the
     payload *and still renames* — the no-fsync model where the rename
     is durable but the data behind it is not; the END footer canary
     catches the truncation on the next read.
   - [Store_flush_rename] fails at the rename itself: old contents
     survive, the complete new contents sit in a removed .tmp.

   Either way every observable shard state is old, new, or
   quarantinable-torn — never silent garbage. *)
let write_atomic ~dir ~path content =
  let torn =
    match Robust.Fault.fire Robust.Fault.Store_shard_write ~key:path with
    | Some (Torn_write frac) ->
      Some (String.sub content 0 (int_of_float (frac *. float_of_int (String.length content))))
    | Some Robust.Fault.Raise -> raise (Robust.Fault.Injected { site = Store_shard_write; key = path })
    | Some (Latency_ms _) | None ->
      ignore (Robust.Fault.check Robust.Fault.Store_shard_write ~key:path);
      None
  in
  let tmp = Filename.temp_file ~temp_dir:dir "store" ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc (match torn with Some prefix -> prefix | None -> content)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  (match Robust.Fault.fire Robust.Fault.Store_flush_rename ~key:path with
  | Some (Robust.Fault.Raise | Torn_write _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Robust.Fault.Injected { site = Store_flush_rename; key = path })
  | Some (Latency_ms _) ->
    ignore (Robust.Fault.check Robust.Fault.Store_flush_rename ~key:path);
    Sys.rename tmp path
  | None -> Sys.rename tmp path);
  match torn with
  | Some _ -> raise (Robust.Fault.Injected { site = Store_shard_write; key = path })
  | None -> ()

let flush t =
  if not t.ro then begin
    Obs.Trace.with_span "store.flush" @@ fun () ->
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
    Array.iteri
      (fun i shard ->
        match shard.state with
        | `Loaded table when shard.dirty ->
          write_atomic ~dir:t.dir ~path:(shard_path t i) (render_shard t i table);
          shard.dirty <- false;
          t.flushed <- t.flushed + 1;
          if !Obs.Recorder.enabled then Obs.Metrics.incr "store.flushed_shards"
        | `Loaded _ | `Unloaded -> ())
      t.shards;
    write_atomic ~dir:t.dir ~path:(index_path t.dir)
      (Printf.sprintf "ctxstore-index %d shards %d\n" format_version t.nshards)
  end

(* ---- stats ------------------------------------------------------------- *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_adds : int;
  st_shard_loads : int;
  st_quarantined : int;
  st_flushed : int;
  st_entries : int;
}

let stats t =
  Mutex.lock t.mutex;
  let entries =
    Array.fold_left
      (fun acc shard ->
        match shard.state with `Loaded table -> acc + Hashtbl.length table | `Unloaded -> acc)
      0 t.shards
  in
  let s =
    {
      st_hits = t.hits;
      st_misses = t.misses;
      st_adds = t.adds;
      st_shard_loads = t.loads;
      st_quarantined = t.quarantined;
      st_flushed = t.flushed;
      st_entries = entries;
    }
  in
  Mutex.unlock t.mutex;
  s

let issues t =
  Mutex.lock t.mutex;
  let l = List.rev t.rev_issues in
  Mutex.unlock t.mutex;
  l
