open Relational

let both_textual (a : Attribute.t) (b : Attribute.t) =
  Attribute.is_textual a && Attribute.is_textual b

let both_numeric (a : Attribute.t) (b : Attribute.t) =
  Attribute.is_numeric a && Attribute.is_numeric b

let always (_ : Attribute.t) (_ : Attribute.t) = true

let name_matcher =
  Matcher.make ~name:"name" ~weight:0.75 ~applicable:always (fun src tgt ->
      Textsim.Simmetrics.name_similarity (Column.name src) (Column.name tgt))

let qgram_matcher =
  Matcher.make ~name:"qgram" ~weight:1.5 ~kernel:Matcher.Qgram_cosine ~applicable:both_textual
    (fun src tgt -> Textsim.Profile.cosine (Column.profile src) (Column.profile tgt))

let word_matcher =
  Matcher.make ~name:"word" ~weight:1.0 ~applicable:both_textual (fun src tgt ->
      Textsim.Simmetrics.jaccard (Column.words src) (Column.words tgt))

(* Bhattacharyya coefficient of the two fitted normals: 1 when the
   distributions coincide, decaying with both mean separation and
   variance mismatch. *)
let numeric_matcher =
  Matcher.make ~name:"numeric" ~weight:1.5 ~applicable:both_numeric (fun src tgt ->
      let s1 = Column.summary src and s2 = Column.summary tgt in
      if s1.Stats.Descriptive.n = 0 || s2.Stats.Descriptive.n = 0 then 0.0
      else begin
        let spread =
          Float.max
            (Float.abs (s1.Stats.Descriptive.max -. s1.Stats.Descriptive.min))
            (Float.abs (s2.Stats.Descriptive.max -. s2.Stats.Descriptive.min))
        in
        let floor = Float.max 1e-9 (1e-3 *. Float.max spread 1.0) in
        let sig1 = Float.max s1.Stats.Descriptive.stddev floor in
        let sig2 = Float.max s2.Stats.Descriptive.stddev floor in
        let v1 = sig1 *. sig1 and v2 = sig2 *. sig2 in
        let dmu = s1.Stats.Descriptive.mean -. s2.Stats.Descriptive.mean in
        sqrt (2.0 *. sig1 *. sig2 /. (v1 +. v2))
        *. exp (-.(dmu *. dmu) /. (4.0 *. (v1 +. v2)))
      end)

(* Mutual range containment: the fraction of each column's values lying
   within the other's observed range, averaged.  Unlike the Bhattacharyya
   matcher it does not punish variance mismatch, which matters when a
   source column is a *mixture* whose per-context slices match narrow
   target columns (attribute normalization, §5.7). *)
let range_matcher =
  Matcher.make ~name:"range" ~weight:0.75 ~applicable:both_numeric (fun src tgt ->
      let s1 = Column.summary src and s2 = Column.summary tgt in
      if s1.Stats.Descriptive.n = 0 || s2.Stats.Descriptive.n = 0 then 0.0
      else begin
        let contained (s : Stats.Descriptive.summary) values =
          let slack = 0.02 *. Float.max 1.0 (s.Stats.Descriptive.max -. s.Stats.Descriptive.min) in
          let lo = s.Stats.Descriptive.min -. slack
          and hi = s.Stats.Descriptive.max +. slack in
          let inside = Array.fold_left (fun acc x -> if x >= lo && x <= hi then acc + 1 else acc) 0 values in
          float_of_int inside /. float_of_int (Array.length values)
        in
        0.5 *. (contained s2 (Column.floats src) +. contained s1 (Column.floats tgt))
      end)

let value_overlap_matcher =
  (* Exact-value overlap is meaningful for strings and integers;
     independently drawn floats almost never collide, so a float column
     would only drag the combination toward zero. *)
  let applicable (a : Attribute.t) (b : Attribute.t) =
    both_textual a b || (a.ty = Value.Tint && b.ty = Value.Tint)
  in
  Matcher.make ~name:"value-overlap" ~weight:1.0 ~applicable (fun src tgt ->
      Textsim.Simmetrics.jaccard (Column.distinct_strings src) (Column.distinct_strings tgt))

let type_matcher =
  Matcher.make ~name:"type" ~weight:0.25 ~applicable:always (fun src tgt ->
      let ta = (Column.attribute src).Attribute.ty and tb = (Column.attribute tgt).Attribute.ty in
      if ta = tb then 1.0
      else begin
        let numeric = function
          | Value.Tint | Value.Tfloat -> true
          | Value.Tstring | Value.Tbool -> false
        in
        if numeric ta && numeric tb then 0.5 else 0.0
      end)

let default_suite =
  [
    name_matcher;
    qgram_matcher;
    word_matcher;
    numeric_matcher;
    range_matcher;
    value_overlap_matcher;
    type_matcher;
  ]

let instance_only_suite =
  [ qgram_matcher; word_matcher; numeric_matcher; range_matcher; value_overlap_matcher; type_matcher ]

(* Plan-level descriptor of a matcher: cost class, applicability shape
   and whether top-k candidate filtering may restrict its
   textual-textual pairs.  Known matchers get measured classes; an
   unknown (user-defined) matcher is assumed instance-priced,
   unfilterable and universally applicable — the conservative choice
   for both the cost model and result preservation. *)
let plan_spec (m : Matcher.t) =
  let kernel = m.Matcher.kernel = Matcher.Qgram_cosine in
  let cls, applies, filterable =
    match m.Matcher.name with
    | "name" -> (Plan.Op.Cheap, Plan.Op.All, false)
    | "qgram" -> (Plan.Op.Qgram, Plan.Op.Textual, true)
    | "word" -> (Plan.Op.Instance, Plan.Op.Textual, true)
    | "numeric" -> (Plan.Op.Cheap, Plan.Op.Numeric, false)
    | "range" -> (Plan.Op.Instance, Plan.Op.Numeric, false)
    | "value-overlap" -> (Plan.Op.Instance, Plan.Op.All, true)
    | "type" -> (Plan.Op.Trivial, Plan.Op.All, false)
    | _ -> ((if kernel then Plan.Op.Qgram else Plan.Op.Instance), Plan.Op.All, false)
  in
  {
    Plan.Op.m_name = m.Matcher.name;
    m_weight = m.Matcher.weight;
    m_kernel = kernel;
    m_filterable = filterable;
    m_class = cls;
    m_applies = applies;
  }

let plan_specs ms = List.map plan_spec ms
