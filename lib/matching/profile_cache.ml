type key = string * string * string

type t = {
  profiles : (key, Textsim.Profile.t) Runtime.Memo.t;
  summaries : (key, Stats.Descriptive.summary) Runtime.Memo.t;
  distincts : (key, string list) Runtime.Memo.t;
}

let create () =
  {
    profiles = Runtime.Memo.create ();
    summaries = Runtime.Memo.create ();
    distincts = Runtime.Memo.create ();
  }

let subset_digest indices = Digest.to_hex (Digest.string (Marshal.to_string indices []))

let key ~table ~attr ~indices = (table, attr, subset_digest indices)

let hits t =
  Runtime.Memo.hits t.profiles + Runtime.Memo.hits t.summaries + Runtime.Memo.hits t.distincts

let misses t =
  Runtime.Memo.misses t.profiles + Runtime.Memo.misses t.summaries
  + Runtime.Memo.misses t.distincts

let hit_rate t =
  let total = hits t + misses t in
  if total = 0 then 0.0 else float_of_int (hits t) /. float_of_int total

type stats = { stat_hits : int; stat_misses : int; stat_entries : int }

let stats t =
  let entry (m : (_, _) Runtime.Memo.t) = Runtime.Memo.length m in
  {
    stat_hits = hits t;
    stat_misses = misses t;
    stat_entries = entry t.profiles + entry t.summaries + entry t.distincts;
  }
