type key = string * string * string

type partition = {
  part_values : Relational.Value.t array;
  part_indices : int array array;
}

type family = {
  fam_dict : Textsim.Gram_dict.t;
  fam_rows : Textsim.Csr.ints;
  fam_profiles : Textsim.Profile.t array;
  fam_q : int;
}

type t = {
  profiles : (key, Textsim.Profile.t) Runtime.Memo.t;
  summaries : (key, Stats.Descriptive.summary) Runtime.Memo.t;
  distincts : (key, string list) Runtime.Memo.t;
  partitions : (string * string, partition) Runtime.Memo.t;
  families : (string * string * string, family) Runtime.Memo.t;
  mutable partitioning : bool;
  mutable store : Store.t option;
  digests : (string, string) Hashtbl.t;
  digests_lock : Mutex.t;
  builds : int Atomic.t;
}

let create () =
  {
    profiles = Runtime.Memo.create ();
    summaries = Runtime.Memo.create ();
    distincts = Runtime.Memo.create ();
    partitions = Runtime.Memo.create ();
    families = Runtime.Memo.create ();
    partitioning = false;
    store = None;
    digests = Hashtbl.create 8;
    digests_lock = Mutex.create ();
    builds = Atomic.make 0;
  }

let set_partitioning t on = t.partitioning <- on
let partitioning t = t.partitioning

let attach_store t store = t.store <- Some store

let register_table t table =
  let name = Relational.Table.name table in
  Mutex.lock t.digests_lock;
  if not (Hashtbl.mem t.digests name) then
    Hashtbl.replace t.digests name (Store.table_digest table);
  Mutex.unlock t.digests_lock

let register_digest t ~table ~digest =
  Mutex.lock t.digests_lock;
  Hashtbl.replace t.digests table digest;
  Mutex.unlock t.digests_lock

let table_digest t name =
  Mutex.lock t.digests_lock;
  let d = Hashtbl.find_opt t.digests name in
  Mutex.unlock t.digests_lock;
  d

let store_key t ((tbl, attr, subset) : key) =
  match t.store with
  | None -> None
  | Some store ->
    Mutex.lock t.digests_lock;
    let digest = Hashtbl.find_opt t.digests tbl in
    Mutex.unlock t.digests_lock;
    (match digest with
    | None -> None
    | Some data -> Some (store, { Store.table = tbl; attr; subset; data }))

(* The build counter is bumped only when [compute] actually runs —
   neither a memo hit nor a store hit counts — so a fully warm run
   reports zero builds. *)
let built t v =
  Atomic.incr t.builds;
  if !Obs.Recorder.enabled then Obs.Metrics.incr "cache.profile.builds";
  v

let builds t = Atomic.get t.builds

let through t memo k ~find ~add compute =
  Runtime.Memo.find_or_add memo k (fun () ->
      match store_key t k with
      | None -> built t (compute ())
      | Some (store, skey) -> (
        match find store skey with
        | Some v -> v
        | None ->
          let v = built t (compute ()) in
          add store skey v;
          v))

let profile t k compute =
  through t t.profiles k ~find:Store.find_profile ~add:Store.add_profile compute

let summary t k compute =
  through t t.summaries k ~find:Store.find_summary ~add:Store.add_summary compute

let distinct t k compute =
  through t t.distincts k ~find:Store.find_distinct ~add:Store.add_distinct compute

(* Seeding inserts a delta-maintained artefact as if it had been
   computed cold: the memo takes it via [find_or_add] (a pre-existing
   entry wins — seeding never clobbers), the store gets it written
   through under the table's registered digest, and the build counter
   stays untouched, so a seeded-then-warm run still reports zero
   builds. *)
let seed t memo add k v =
  ignore
    (Runtime.Memo.find_or_add memo k (fun () ->
         (match store_key t k with Some (store, skey) -> add store skey v | None -> ());
         v))

let seed_profile t k v = seed t t.profiles Store.add_profile k v
let seed_summary t k v = seed t t.summaries Store.add_summary k v
let seed_distinct t k v = seed t t.distincts Store.add_distinct k v

(* Canonical textual encoding, NOT [Marshal]: marshalled byte layout is
   not stable across OCaml versions or architectures, which is
   unacceptable for a digest that doubles as an on-disk store key.  The
   exact index order is preserved — the cache contract is "same value
   sequence", not "same value set". *)
let subset_digest indices =
  let buf = Buffer.create (8 * Array.length indices) in
  Array.iter
    (fun i ->
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ',')
    indices;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let key ~table ~attr ~indices = (table, attr, subset_digest indices)

(* Partition of a table's row indices by the values of one (condition)
   attribute: groups are keyed by distinct non-null values under
   [Value.compare] — which treats [Int n] and [Float n.] as equal, like
   condition evaluation does — and each group's indices stay ascending,
   so a singleton group is index-for-index the row set of the
   corresponding [Eq] view. *)
let partition t ~table ~cond_attr =
  Runtime.Memo.find_or_add t.partitions (Relational.Table.name table, cond_attr)
    (fun () ->
      if !Obs.Recorder.enabled then Obs.Metrics.incr "cache.partition.builds";
      let col = Relational.Table.column table cond_attr in
      let idxs = ref [] in
      for i = Array.length col - 1 downto 0 do
        if not (Relational.Value.is_null col.(i)) then idxs := i :: !idxs
      done;
      (* stable sort by value keeps each group's indices ascending *)
      let sorted =
        List.stable_sort (fun i j -> Relational.Value.compare col.(i) col.(j)) !idxs
      in
      let groups = ref [] in
      let cur = ref [] in
      let curv = ref None in
      let flush () =
        match !curv with
        | None -> ()
        | Some v -> groups := (v, Array.of_list (List.rev !cur)) :: !groups
      in
      List.iter
        (fun i ->
          (match !curv with
          | Some v when Relational.Value.compare v col.(i) = 0 -> ()
          | _ ->
            flush ();
            curv := Some col.(i);
            cur := []);
          cur := i :: !cur)
        sorted;
      flush ();
      let groups = Array.of_list (List.rev !groups) in
      { part_values = Array.map fst groups; part_indices = Array.map snd groups })

let partition_slot p v =
  let lo = ref 0 and hi = ref (Array.length p.part_values - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Relational.Value.compare v p.part_values.(mid) in
    if c = 0 then found := Some mid
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

let partition_indices p v = Option.map (fun i -> p.part_indices.(i)) (partition_slot p v)

(* One columnar "family pack" per (table, condition attribute, scored
   attribute): the per-group profiles of the partition — computed (or
   store-loaded) through {!profile} under the exact per-slice keys the
   boxed composition path uses, so the store sees the same artefacts —
   interned against one family dictionary (the union of the groups'
   grams) and packed into a flat CSR arena, one id-sorted row per
   group.  Composing a view profile over k of the family's values is
   then a k-pointer merge over arena rows straight into a packed
   {!Textsim.Profile.of_ids} — integer count addition in id (= gram)
   order, no hashtable, no string.  The pack is a pure function of the
   per-group profiles, so it is derived, never persisted. *)
let family t ~table ~cond_attr ~attr ~profile_of =
  let tname = Relational.Table.name table in
  Runtime.Memo.find_or_add t.families (tname, cond_attr, attr) (fun () ->
      let part = partition t ~table ~cond_attr in
      let groups = part.part_indices in
      let fam_profiles =
        Array.map
          (fun indices ->
            profile t (key ~table:tname ~attr ~indices) (fun () -> profile_of indices))
          groups
      in
      let grams =
        Array.fold_left
          (fun acc p ->
            Array.fold_left (fun acc (g, _) -> g :: acc) acc (Textsim.Profile.counts p))
          [] fam_profiles
      in
      let fam_dict = Textsim.Gram_dict.of_grams grams in
      (* Rows come from a pure string lookup, NOT from [Profile.intern]:
         the group profiles are shared memo entries that other domains
         are free to score (and hence re-intern against the kernel
         dictionary) at any moment, so attaching-then-reading a family
         view here would race.  Every gram is in [fam_dict] by
         construction, and the gram-sorted counts map to ascending ids
         (the dictionary preserves gram order). *)
      let rows =
        Array.map
          (fun p ->
            let cs = Textsim.Profile.counts p in
            let n = Array.length cs in
            let ids = Array.make n 0 in
            let counts = Array.make n 0 in
            Array.iteri
              (fun k (g, c) ->
                match Textsim.Gram_dict.find fam_dict g with
                | Some id ->
                  ids.(k) <- id;
                  counts.(k) <- c
                | None -> assert false)
              cs;
            (ids, counts))
          fam_profiles
      in
      let fam_q =
        if Array.length fam_profiles > 0 then Textsim.Profile.q fam_profiles.(0) else 3
      in
      if !Obs.Recorder.enabled then begin
        Obs.Metrics.incr "cache.family.builds";
        Obs.Metrics.add "cache.family.groups" (Array.length groups)
      end;
      { fam_dict; fam_rows = Textsim.Csr.pack_ints rows; fam_profiles; fam_q })

(* Merge-sum the family rows of the given group slots into one packed
   profile: integer counts accumulate per gram id over a scratch vector
   of the family vocabulary, then the non-zero ids come back out in
   ascending (= gram-lexicographic) order.  The resulting count bag is
   exactly the bag {!Textsim.Profile.sum} of the group profiles builds,
   and every similarity fold runs over the same gram-sorted counts, so
   scores from the composed profile are bit-identical to the boxed
   path's. *)
let compose_profile fam slots =
  let vocab = Textsim.Gram_dict.size fam.fam_dict in
  let acc = Array.make (max 1 vocab) 0 in
  let distinct = ref 0 in
  List.iter
    (fun slot ->
      let ids, counts = Textsim.Csr.ints_row fam.fam_rows slot in
      Array.iteri
        (fun k id ->
          if acc.(id) = 0 then incr distinct;
          acc.(id) <- acc.(id) + counts.(k))
        ids)
    slots;
  let ids = Array.make (max 1 !distinct) 0 in
  let counts = Array.make (max 1 !distinct) 0 in
  let k = ref 0 in
  for id = 0 to vocab - 1 do
    if acc.(id) > 0 then begin
      ids.(!k) <- id;
      counts.(!k) <- acc.(id);
      incr k
    end
  done;
  let ids = if !k = Array.length ids then ids else Array.sub ids 0 !k in
  let counts = if !k = Array.length counts then counts else Array.sub counts 0 !k in
  Textsim.Profile.of_ids ~q:fam.fam_q fam.fam_dict ids counts

let hits t =
  Runtime.Memo.hits t.profiles + Runtime.Memo.hits t.summaries + Runtime.Memo.hits t.distincts

let misses t =
  Runtime.Memo.misses t.profiles + Runtime.Memo.misses t.summaries
  + Runtime.Memo.misses t.distincts

let hit_rate t =
  let total = hits t + misses t in
  if total = 0 then 0.0 else float_of_int (hits t) /. float_of_int total

type stats = { stat_hits : int; stat_misses : int; stat_entries : int }

let stats t =
  let entry (m : (_, _) Runtime.Memo.t) = Runtime.Memo.length m in
  {
    stat_hits = hits t;
    stat_misses = misses t;
    stat_entries = entry t.profiles + entry t.summaries + entry t.distincts;
  }
