(** The per-model scoring kernel: a frozen {!Textsim.Gram_index} over
    the model's (textual) target columns, addressed by
    [(target table, attribute)].

    Built once on the main domain at the end of
    {!Standard_match.build}'s target warm-up — before the per-attribute
    fan-out — and immutable afterwards, so worker domains read it
    without locks (the interner lifecycle is "freeze after build").
    Batch {!scores} and {!top_k} record [kernel.*] observability
    counters; in particular [kernel.batch.pruned] /
    [kernel.topk.pruned] count the pairs skipped as provable zeros (or
    provably below threshold) — the differential suite checks those
    skips never change a score. *)

type t

val build : ((string * string) * Textsim.Profile.t) array -> t
(** [(table, attr), profile] per target column.  Interns every target
    profile against the freshly frozen dictionary. *)

val patch : t -> ((string * string) * Textsim.Profile.t) list -> t option
(** Replace the named target columns' profiles, touching only the
    postings of their changed grams (see {!Textsim.Gram_index.patch}).
    Returns a new kernel sharing the frozen dictionary and name table;
    the original stays valid.  [None] when a replacement profile holds
    an out-of-vocabulary gram — the dictionary cannot grow, so the
    caller must rebuild.  Names not present in the kernel (e.g. columns
    quarantined at warm time) are ignored. *)

val size : t -> int
val vocabulary : t -> int
val dict : t -> Textsim.Gram_dict.t
val slot : t -> table:string -> attr:string -> int option
val name : t -> int -> string * string

val intern : t -> Textsim.Profile.t -> unit
(** Attach the kernel's interned view to a candidate profile so its
    pairwise cosines against the targets take the int merge join. *)

val shard_threshold : int
(** Minimum target count (256) below which a query is not worth
    sharding across pool domains; also the floor the matching layer
    uses to decide whether to hoist batch scoring out of the
    per-attribute fan-out. *)

val scores :
  ?pool:Runtime.Pool.t -> ?shard_min:int -> t -> Textsim.Profile.t -> float array
(** Exact cosine against every target, indexed by {!slot}; bit-identical
    to the pairwise string path (see {!Textsim.Gram_index.scores}).
    With [pool] (jobs > 1) and at least [shard_min]
    (default {!shard_threshold}) targets, the term-at-a-time
    accumulation is sharded across the pool domains over contiguous
    block-aligned slot ranges; each domain fills its own slice and the
    merge is concatenation, so the sharded array is bit-identical to
    the sequential one.  Must be called from the domain that owns the
    pool (the pool is not re-entrant).  Raises [Invalid_argument] if
    any cosine is NaN — the boundary rejects a poisoned score instead
    of letting it reach normalisation. *)

val top_k :
  ?pool:Runtime.Pool.t ->
  ?shard_min:int ->
  t ->
  Textsim.Profile.t ->
  k:int ->
  tau:float ->
  ((string * string) * float) list
(** Up to [k] targets with cosine >= [tau], best first, ties at the
    rank-k boundary broken by ascending target slot (= interned column
    id), so pruned and exact paths keep the identical survivor; equals
    exhaustive scoring + filter + sort.  The global upper-bound gate
    and the final selection run on the calling domain; the scoring pass
    between them shards like {!scores} (per-shard block-max pruning
    included — skip decisions are per block, hence shard-local).
    Rejects NaN like {!scores}. *)
