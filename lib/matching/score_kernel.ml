type t = {
  index : Textsim.Gram_index.t;
  names : (string * string) array;
  slots : (string * string, int) Hashtbl.t;
}

let build targets =
  let names = Array.map fst targets in
  let index = Textsim.Gram_index.build (Array.map snd targets) in
  let slots = Hashtbl.create (2 * Array.length targets) in
  Array.iteri (fun i name -> Hashtbl.replace slots name i) names;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.add "kernel.targets" (Array.length names);
    Obs.Metrics.add "kernel.vocabulary" (Textsim.Gram_index.gram_count index);
    Obs.Metrics.add "kernel.arena.bytes" (Textsim.Gram_index.arena_bytes index);
    Obs.Metrics.add "kernel.arena.blocks" (Textsim.Gram_index.block_count index)
  end;
  { index; names; slots }

let patch t updates =
  let slot_updates =
    List.filter_map
      (fun (name, p) ->
        match Hashtbl.find_opt t.slots name with
        | Some slot -> Some (slot, p)
        | None -> None)
      updates
  in
  if slot_updates = [] then Some t
  else
    match Textsim.Gram_index.patch t.index slot_updates with
    | None -> None
    | Some index ->
      if !Obs.Recorder.enabled then
        Obs.Metrics.add "kernel.patched" (List.length slot_updates);
      Some { t with index }

let size t = Array.length t.names
let dict t = Textsim.Gram_index.dict t.index
let vocabulary t = Textsim.Gram_index.gram_count t.index
let slot t ~table ~attr = Hashtbl.find_opt t.slots (table, attr)
let name t i = t.names.(i)

let intern t p = Textsim.Profile.intern (Textsim.Gram_index.dict t.index) p

(* The kernel boundary rejects NaN rather than letting it flow into
   z-normalisation: cosine over non-negative counts cannot produce NaN
   (all zero-denominator paths return 0.0 — see Gram_index.scores),
   so one here means a broken profile or index invariant, and a NaN
   would silently poison every downstream confidence while comparing
   unequal to everything. *)
let reject_nan ~ctx s =
  if Float.is_nan s then invalid_arg ("Score_kernel." ^ ctx ^ ": NaN cosine")

(* ---- sharded TAAT ------------------------------------------------------ *)

(* Below this many targets a query is too small for the per-shard
   bookkeeping to pay off; the matching layer also uses it to decide
   whether batch scoring is worth hoisting out of the per-attribute
   fan-out at all. *)
let shard_threshold = 256

(* Contiguous block-aligned slot ranges, one per pool domain: block
   alignment is what {!Textsim.Gram_index.scores_range} requires, and
   contiguity means the per-range slices concatenate — in range order —
   into exactly the array one sequential pass produces, whatever order
   the pool schedules the ranges in. *)
let shard_ranges t jobs =
  let n = Textsim.Gram_index.length t.index in
  let bs = Textsim.Gram_index.block_size t.index in
  let blocks = Textsim.Gram_index.block_count t.index in
  let shards = max 1 (min jobs blocks) in
  let per = (blocks + shards - 1) / shards in
  List.init shards (fun i ->
      let lo = min n (i * per * bs) in
      let hi = min n ((i + 1) * per * bs) in
      (lo, hi))
  |> List.filter (fun (lo, hi) -> hi > lo)

(* Exact scores over every target, sharded across the pool domains when
   one is given and the index is large enough.  The candidate is
   interned on the calling domain first, so the workers share one
   frozen view (published by the task hand-off) instead of racing to
   attach their own; each range accumulates into its own slice (the
   pool contract forbids shared mutation) and the main domain merges by
   concatenation — bit-identical to the sequential pass by
   construction. *)
let sharded_scores ?pool ?(shard_min = shard_threshold) t cand ~tau =
  let n = Textsim.Gram_index.length t.index in
  let seq () = Textsim.Gram_index.scores_range t.index cand ~tau ~lo:0 ~hi:n in
  match pool with
  | Some pool when Runtime.Pool.jobs pool > 1 && n >= shard_min ->
    Textsim.Profile.intern (Textsim.Gram_index.dict t.index) cand;
    let ranges = shard_ranges t (Runtime.Pool.jobs pool) in
    (match ranges with
    | [] | [ _ ] -> seq ()
    | _ ->
      let slices =
        Runtime.Pool.map_list pool
          (fun (lo, hi) -> Textsim.Gram_index.scores_range t.index cand ~tau ~lo ~hi)
          ranges
      in
      let all = Array.make n 0.0 in
      let touched = ref 0 and blocks = ref 0 and bskips = ref 0 and pskips = ref 0 in
      List.iter2
        (fun (lo, _) (slice, st) ->
          Array.blit slice 0 all lo (Array.length slice);
          touched := !touched + st.Textsim.Gram_index.r_touched;
          blocks := !blocks + st.Textsim.Gram_index.r_blocks;
          bskips := !bskips + st.Textsim.Gram_index.r_block_skips;
          pskips := !pskips + st.Textsim.Gram_index.r_posting_skips)
        ranges slices;
      ( all,
        {
          Textsim.Gram_index.r_touched = !touched;
          r_blocks = !blocks;
          r_block_skips = !bskips;
          r_posting_skips = !pskips;
        } ))
  | Some _ | None -> seq ()

let scores ?pool ?shard_min t cand =
  let cosines, st = sharded_scores ?pool ?shard_min t cand ~tau:0.0 in
  Array.iter (reject_nan ~ctx:"scores") cosines;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "kernel.batch.queries";
    Obs.Metrics.add "kernel.batch.scored" st.Textsim.Gram_index.r_touched;
    Obs.Metrics.add "kernel.batch.pruned"
      (Array.length cosines - st.Textsim.Gram_index.r_touched)
  end;
  cosines

let top_k ?pool ?shard_min t cand ~k ~tau =
  let n = Textsim.Gram_index.length t.index in
  let top, stats =
    (* the global bound gate is one fold — always checked on the
       calling domain before any fan-out *)
    if tau > 0.0 && Textsim.Gram_index.cosine_upper_bound t.index cand < tau then
      ( [],
        {
          Textsim.Gram_index.scored = 0;
          pruned = n;
          bound_skip = true;
          blocks = Textsim.Gram_index.block_count t.index;
          block_skips = 0;
          posting_skips = 0;
        } )
    else begin
      let all, st = sharded_scores ?pool ?shard_min t cand ~tau in
      ( Textsim.Gram_index.select all ~k ~tau,
        {
          Textsim.Gram_index.scored = st.Textsim.Gram_index.r_touched;
          pruned = n - st.Textsim.Gram_index.r_touched;
          bound_skip = false;
          blocks = st.Textsim.Gram_index.r_blocks;
          block_skips = st.Textsim.Gram_index.r_block_skips;
          posting_skips = st.Textsim.Gram_index.r_posting_skips;
        } )
    end
  in
  List.iter (fun (_, s) -> reject_nan ~ctx:"top_k" s) top;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "kernel.topk.queries";
    Obs.Metrics.add "kernel.topk.scored" stats.Textsim.Gram_index.scored;
    Obs.Metrics.add "kernel.topk.pruned" stats.Textsim.Gram_index.pruned;
    Obs.Metrics.add "kernel.topk.block_skips" stats.Textsim.Gram_index.block_skips;
    Obs.Metrics.add "kernel.topk.posting_skips" stats.Textsim.Gram_index.posting_skips;
    if stats.Textsim.Gram_index.bound_skip then Obs.Metrics.incr "kernel.topk.bound_skips"
  end;
  List.map (fun (i, s) -> (t.names.(i), s)) top
