type t = {
  index : Textsim.Gram_index.t;
  names : (string * string) array;
  slots : (string * string, int) Hashtbl.t;
}

let build targets =
  let names = Array.map fst targets in
  let index = Textsim.Gram_index.build (Array.map snd targets) in
  let slots = Hashtbl.create (2 * Array.length targets) in
  Array.iteri (fun i name -> Hashtbl.replace slots name i) names;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.add "kernel.targets" (Array.length names);
    Obs.Metrics.add "kernel.vocabulary" (Textsim.Gram_index.gram_count index)
  end;
  { index; names; slots }

let patch t updates =
  let slot_updates =
    List.filter_map
      (fun (name, p) ->
        match Hashtbl.find_opt t.slots name with
        | Some slot -> Some (slot, p)
        | None -> None)
      updates
  in
  if slot_updates = [] then Some t
  else
    match Textsim.Gram_index.patch t.index slot_updates with
    | None -> None
    | Some index ->
      if !Obs.Recorder.enabled then
        Obs.Metrics.add "kernel.patched" (List.length slot_updates);
      Some { t with index }

let size t = Array.length t.names
let dict t = Textsim.Gram_index.dict t.index
let vocabulary t = Textsim.Gram_index.gram_count t.index
let slot t ~table ~attr = Hashtbl.find_opt t.slots (table, attr)
let name t i = t.names.(i)

let intern t p = Textsim.Profile.intern (Textsim.Gram_index.dict t.index) p

(* The kernel boundary rejects NaN rather than letting it flow into
   z-normalisation: cosine over non-negative counts cannot produce NaN
   (all zero-denominator paths return 0.0 — see Gram_index.scores),
   so one here means a broken profile or index invariant, and a NaN
   would silently poison every downstream confidence while comparing
   unequal to everything. *)
let reject_nan ~ctx s =
  if Float.is_nan s then invalid_arg ("Score_kernel." ^ ctx ^ ": NaN cosine")

let scores t cand =
  let cosines, touched = Textsim.Gram_index.scores t.index cand in
  Array.iter (reject_nan ~ctx:"scores") cosines;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "kernel.batch.queries";
    Obs.Metrics.add "kernel.batch.scored" touched;
    Obs.Metrics.add "kernel.batch.pruned" (Array.length cosines - touched)
  end;
  cosines

let top_k t cand ~k ~tau =
  let top, stats = Textsim.Gram_index.top_k t.index cand ~k ~tau in
  List.iter (fun (_, s) -> reject_nan ~ctx:"top_k" s) top;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "kernel.topk.queries";
    Obs.Metrics.add "kernel.topk.scored" stats.Textsim.Gram_index.scored;
    Obs.Metrics.add "kernel.topk.pruned" stats.Textsim.Gram_index.pruned;
    if stats.Textsim.Gram_index.bound_skip then Obs.Metrics.incr "kernel.topk.bound_skips"
  end;
  List.map (fun (i, s) -> (t.names.(i), s)) top
