(** The concrete matcher suite.

    Mirrors the architecture of §2.3 / LSD / COMA-style systems: several
    weak signals (schema names, instance 3-grams, word overlap, numeric
    distributions, value overlap, type compatibility), combined after
    per-matcher confidence normalisation. *)

val name_matcher : Matcher.t
(** Attribute-name similarity (Jaro-Winkler + token overlap).  Applies
    to every pair. *)

val qgram_matcher : Matcher.t
(** Cosine of 3-gram frequency profiles of the instance values.  Textual
    pairs only. *)

val word_matcher : Matcher.t
(** Jaccard of the word sets occurring in the instances.  Textual pairs
    only. *)

val numeric_matcher : Matcher.t
(** Bhattacharyya coefficient of normals fitted to the two columns.
    Numeric pairs only. *)

val range_matcher : Matcher.t
(** Mutual containment of observed value ranges.  Complements the
    Bhattacharyya matcher for mixture-vs-slice situations (attribute
    normalization). Numeric pairs only. *)

val value_overlap_matcher : Matcher.t
(** Jaccard of distinct display values; strong for categorical columns
    and foreign-key-like columns.  Any pair of equal type kind. *)

val type_matcher : Matcher.t
(** 1.0 for identical declared types, 0.5 for both-numeric, else 0.
    Low weight; breaks ties. *)

val default_suite : Matcher.t list
(** All of the above, paper-style weighting (instance signals dominate;
    names help; type is a weak prior). *)

val instance_only_suite : Matcher.t list
(** Instance-based matchers only (no name matcher) — used to check that
    contextual matching does not ride on attribute names. *)

val plan_spec : Matcher.t -> Plan.Op.matcher_spec
(** Plan-level descriptor (cost class, applicability, filterability)
    of a matcher; unknown matchers get a conservative spec
    (instance-priced, unfilterable, applies to all pairs). *)

val plan_specs : Matcher.t list -> Plan.Op.matcher_spec list
