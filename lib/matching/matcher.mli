(** The matcher abstraction (paper §2.3): a named scoring function over
    a (source column, target column) pair, returning a raw similarity in
    [0, 1].  Raw scores are *not* comparable across matchers; the
    normalisation step converts them into confidences. *)

open Relational

type kernel_hint =
  | No_kernel  (** always scored through [score] *)
  | Qgram_cosine
      (** [score] equals q-gram profile cosine of the pair, so a model
          holding a {!Score_kernel} may batch-score the matcher against
          all its indexed targets at once (bit-identical by the kernel's
          contract); [score] remains the semantics of record *)

type t = {
  name : string;
  weight : float;  (** relative weight in the combination step *)
  kernel : kernel_hint;  (** batch-scoring shortcut, when one applies *)
  applicable : Attribute.t -> Attribute.t -> bool;
      (** whether this matcher produces a meaningful score for a pair of
          attributes (e.g. the numeric matcher needs numeric columns) *)
  score : Column.t -> Column.t -> float;  (** raw similarity, [0,1] *)
}

val make :
  name:string ->
  ?weight:float ->
  ?kernel:kernel_hint ->
  applicable:(Attribute.t -> Attribute.t -> bool) ->
  (Column.t -> Column.t -> float) ->
  t

val applicable_pair : t -> Column.t -> Column.t -> bool
val score : t -> Column.t -> Column.t -> float
(** Score clamped to [0, 1]; a NaN raw score maps to 0 (it carries no
    signal, and [Float.min]/[Float.max] would propagate it into the
    normalisation distribution otherwise). *)
