open Relational

type kernel_hint = No_kernel | Qgram_cosine

type t = {
  name : string;
  weight : float;
  kernel : kernel_hint;
  applicable : Attribute.t -> Attribute.t -> bool;
  score : Column.t -> Column.t -> float;
}

let make ~name ?(weight = 1.0) ?(kernel = No_kernel) ~applicable score =
  { name; weight; kernel; applicable; score }

let applicable_pair t src tgt = t.applicable (Column.attribute src) (Column.attribute tgt)

let score t src tgt = Float.min 1.0 (Float.max 0.0 (t.score src tgt))
