open Relational

type kernel_hint = No_kernel | Qgram_cosine

type t = {
  name : string;
  weight : float;
  kernel : kernel_hint;
  applicable : Attribute.t -> Attribute.t -> bool;
  score : Column.t -> Column.t -> float;
}

let make ~name ?(weight = 1.0) ?(kernel = No_kernel) ~applicable score =
  { name; weight; kernel; applicable; score }

let applicable_pair t src tgt = t.applicable (Column.attribute src) (Column.attribute tgt)

(* OCaml's [Float.min]/[Float.max] propagate NaN, so the clamp alone
   would let a degenerate metric (0/0 in a similarity denominator)
   poison the z-normalisation distribution and every confidence
   derived from it.  A NaN raw score carries no signal: map it to the
   scale's floor. *)
let score t src tgt =
  let s = t.score src tgt in
  if Float.is_nan s then 0.0 else Float.min 1.0 (Float.max 0.0 s)
