(** Shared cache of per-column derived artefacts (q-gram profile,
    numeric summary, distinct set) keyed by
    [(base table, attribute, row-subset digest)].

    A {!Column.t} caches its artefacts for its own lifetime; this cache
    extends the reuse across columns — in particular across candidate
    views whose conditions select the same row subset of the same base
    table, which recur when several families cover an attribute (and,
    under correlated attributes, across families).  Entries are keyed by
    a digest of the exact row-index array, so equal subsets hit and any
    differing subset misses; a hit returns an artefact computed from the
    very same value sequence, keeping cached scores bit-identical to
    freshly computed ones.

    Backed by {!Runtime.Memo}: safe to share across the worker domains
    of a parallel run.

    Optionally backed a second level down by a persistent {!Store}
    (see {!attach_store}): an in-memory miss then consults the store
    before computing, and a computed artefact is written through, so a
    later process run on the same inputs starts warm. *)

type key = string * string * string
(** [(base table name, attribute name, row-subset digest)]. *)

type partition = {
  part_values : Relational.Value.t array;
      (** distinct non-null values, ascending under [Value.compare] *)
  part_indices : int array array;  (** per value: matching row indices, ascending *)
}
(** Partition of a base table's rows by one condition attribute's values
    (see {!partition}). *)

type family = {
  fam_dict : Textsim.Gram_dict.t;
      (** frozen over the union of the groups' grams *)
  fam_rows : Textsim.Csr.ints;
      (** one id-sorted (id, count) arena row per partition group *)
  fam_profiles : Textsim.Profile.t array;
      (** the shared per-group memo profiles (never mutated by the pack) *)
  fam_q : int;
}
(** Columnar pack of one partition's per-group profiles (see
    {!family}). *)

type t = {
  profiles : (key, Textsim.Profile.t) Runtime.Memo.t;
  summaries : (key, Stats.Descriptive.summary) Runtime.Memo.t;
  distincts : (key, string list) Runtime.Memo.t;
  partitions : (string * string, partition) Runtime.Memo.t;
      (** keyed by (table name, condition attribute) *)
  families : (string * string * string, family) Runtime.Memo.t;
      (** keyed by (table name, condition attribute, scored attribute) *)
  mutable partitioning : bool;
      (** when set, {!Column} composes categorical-view artefacts from
          per-partition artefacts instead of re-scanning rows *)
  mutable store : Store.t option;  (** second-level persistent backing *)
  digests : (string, string) Hashtbl.t;  (** table name -> {!Store.table_digest} *)
  digests_lock : Mutex.t;
  builds : int Atomic.t;  (** artefacts actually computed (no cache/store hit) *)
}

val create : unit -> t

val attach_store : t -> Store.t -> unit
(** Back in-memory misses by a persistent store.  Only tables passed to
    {!register_table} participate (the on-disk key needs their data
    digest); lookups for unregistered tables skip the store. *)

val register_table : t -> Relational.Table.t -> unit
(** Compute and remember the table's {!Store.table_digest}.  Call
    before the parallel fan-out touches the table's columns. *)

val register_digest : t -> table:string -> digest:string -> unit
(** Force-register a table's data digest (unlike {!register_table},
    replaces any existing entry).  Used by delta maintenance, which
    knows the patched table's digest without re-encoding the rows. *)

val table_digest : t -> string -> string option
(** The digest registered for a table name, if any. *)

val profile : t -> key -> (unit -> Textsim.Profile.t) -> Textsim.Profile.t
val summary : t -> key -> (unit -> Stats.Descriptive.summary) -> Stats.Descriptive.summary

val distinct : t -> key -> (unit -> string list) -> string list
(** Memo lookup, then (when a store is attached and the table
    registered) store lookup, then [compute] — which bumps the build
    counter and writes the artefact through to the store. *)

val seed_profile : t -> key -> Textsim.Profile.t -> unit
val seed_summary : t -> key -> Stats.Descriptive.summary -> unit

val seed_distinct : t -> key -> string list -> unit
(** Insert a delta-maintained artefact as if it had been computed
    cold: memo insert (a pre-existing entry wins), write-through to an
    attached store under the table's registered digest, and {e no}
    build-counter bump — a seeded-then-warm run still reports zero
    builds. *)

val builds : t -> int
(** Artefacts computed from raw values so far: lookups that missed both
    the memo and the store.  Zero on a fully warm run.  Mirrored on the
    [cache.profile.builds] metric (which, like the hit/miss split, can
    shift by same-key compute races under parallel runs). *)

val subset_digest : int array -> string
(** Collision-resistant digest of a row-index array, computed over a
    canonical textual encoding of the indices (never [Marshal], whose
    byte layout is OCaml-version- and architecture-dependent), so the
    digest is stable enough to double as an on-disk store key. *)

val key : table:string -> attr:string -> indices:int array -> key

val set_partitioning : t -> bool -> unit
(** Enable composing categorical-view artefacts from per-partition
    artefacts (off by default; {!Standard_match.build} switches it on
    together with the scoring kernel). *)

val partitioning : t -> bool

val partition : t -> table:Relational.Table.t -> cond_attr:string -> partition
(** Partition of [table]'s rows by the values of [cond_attr], computed
    once per (table, attribute) pair and memoised.  Grouping uses
    [Value.compare] — the same equality condition evaluation applies
    (so [Int 1] and [Float 1.] land in one group) — null rows belong to
    no group, and each group's indices are ascending: the group of [v]
    is exactly [View.row_indices] of the [Eq (cond_attr, v)] view. *)

val partition_slot : partition -> Relational.Value.t -> int option
(** Index into [part_values]/[part_indices] of one value's group
    ([None] when the value never occurs non-null in the sample). *)

val partition_indices : partition -> Relational.Value.t -> int array option
(** Row indices of one value's group ([None] when the value never
    occurs non-null in the sample). *)

val family :
  t ->
  table:Relational.Table.t ->
  cond_attr:string ->
  attr:string ->
  profile_of:(int array -> Textsim.Profile.t) ->
  family
(** Columnar family pack for scoring [attr] over views conditioned on
    [cond_attr]: the partition's per-group profiles — each obtained
    through {!profile} under the {e same} per-slice key the boxed path
    uses, so memo and store artefacts are shared — interned against one
    dictionary frozen over their gram union and packed into a flat CSR
    arena, one id-sorted row per group.  Memoised per
    (table, cond_attr, attr); derived, never persisted. *)

val compose_profile : family -> int list -> Textsim.Profile.t
(** Merge-sum the rows of the given group slots into one packed
    profile.  The count bag equals [Textsim.Profile.sum] of the slots'
    group profiles, and every similarity fold runs over the same
    gram-sorted count sequence, so scores are bit-identical to the
    boxed composition path's. *)

val hits : t -> int
val misses : t -> int
(** Counters summed over the three tables. *)

type stats = { stat_hits : int; stat_misses : int; stat_entries : int }

val stats : t -> stats
(** Hit/miss counters and total entry count summed over the three
    tables, for run summaries and the observability exporters. *)

val hit_rate : t -> float
