(** Shared cache of per-column derived artefacts (q-gram profile,
    numeric summary, distinct set) keyed by
    [(base table, attribute, row-subset digest)].

    A {!Column.t} caches its artefacts for its own lifetime; this cache
    extends the reuse across columns — in particular across candidate
    views whose conditions select the same row subset of the same base
    table, which recur when several families cover an attribute (and,
    under correlated attributes, across families).  Entries are keyed by
    a digest of the exact row-index array, so equal subsets hit and any
    differing subset misses; a hit returns an artefact computed from the
    very same value sequence, keeping cached scores bit-identical to
    freshly computed ones.

    Backed by {!Runtime.Memo}: safe to share across the worker domains
    of a parallel run. *)

type key = string * string * string
(** [(base table name, attribute name, row-subset digest)]. *)

type t = {
  profiles : (key, Textsim.Profile.t) Runtime.Memo.t;
  summaries : (key, Stats.Descriptive.summary) Runtime.Memo.t;
  distincts : (key, string list) Runtime.Memo.t;
}

val create : unit -> t

val subset_digest : int array -> string
(** Collision-resistant digest of a row-index array. *)

val key : table:string -> attr:string -> indices:int array -> key

val hits : t -> int
val misses : t -> int
(** Counters summed over the three tables. *)

type stats = { stat_hits : int; stat_misses : int; stat_entries : int }

val stats : t -> stats
(** Hit/miss counters and total entry count summed over the three
    tables, for run summaries and the observability exporters. *)

val hit_rate : t -> float
