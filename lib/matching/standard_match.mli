(** StandardMatch (paper §2.3 / Fig. 5 line 4) and ScoreMatch (line 10).

    [build] scores every (source attribute, target attribute) pair with
    every applicable matcher, records per-(source attribute, matcher)
    raw-score distributions, and combines normalised confidences.

    [score_view] re-evaluates one accepted match with the source column
    restricted to a view's rows, converting the new raw scores with the
    *base table's* score distributions so that view confidences are
    comparable with base confidences (§3, strawman discussion). *)

open Relational

type model

type prepared_target
(** Immutable target-side artefact of {!build}: warmed target columns,
    their (table, attr) index, the target profile cache and the frozen
    scoring kernel.  Prepared once (registration in the serve daemon,
    or inline by {!build} itself), then shared read-only across any
    number of builds — a build consuming a prepared target is
    bit-identical to one preparing the same target inline. *)

val prepare_target :
  ?store:Store.t ->
  ?kernel:bool ->
  ?fail_fast:bool ->
  target:Database.t ->
  unit ->
  prepared_target
(** Warm every target column, freeze the scoring kernel over the
    textual ones ([kernel] defaults to true), and capture the result as
    a shareable artefact.  With a [store], target artefacts are served
    from / written through to it.  A target column whose warm-up raises
    is quarantined into {!prepared_issues} — unless [fail_fast] (default
    false), which re-raises instead (the legacy no-report contract of
    {!build}). *)

type column_patch = {
  cp_attr : string;
  cp_profile : Textsim.Profile.t option;
  cp_distinct : string list option;
  cp_words : string list option;
}
(** Delta-maintained replacement artefacts for one attribute of a
    patched table; [None] fields are recomputed on warm (numeric
    summaries — the recompute runs the cold path's exact fold). *)

val patch_prepared :
  ?store:Store.t ->
  prepared_target ->
  table:Table.t ->
  ?digest:string ->
  patches:column_patch list ->
  unit ->
  prepared_target option
(** Rebuild a prepared target around one replaced [table] in O(delta):
    the scoring kernel's touched postings are patched in place
    ({!Score_kernel.patch}), the maintained artefacts in [patches] are
    seeded into a fresh target cache under the keys the new columns
    read (and written through to the store, registered under [digest]
    — computed from the rows when omitted), and columns of unchanged
    tables are reused verbatim.  Column order and the original warm
    quarantine ({!prepared_issues}) are preserved, so a build over the
    patched artefact is bit-identical to one over a cold
    {!prepare_target} of the same database.  [None] when the new rows
    hold grams outside the frozen kernel dictionary — the caller must
    prepare cold.  The input artefact is never mutated. *)

val prepared_target_db : prepared_target -> Database.t
val prepared_columns : prepared_target -> int
(** Surviving (warmed) target columns. *)

val prepared_kernel : prepared_target -> bool
(** Whether a scoring kernel was frozen (kernel enabled and at least
    one textual target column). *)

val prepared_issues : prepared_target -> Robust.Error.t list
(** Target columns quarantined while warming, in column order; replayed
    into the report of every build that consumes this artefact. *)

val build :
  ?gated:bool ->
  ?matchers:Matcher.t list ->
  ?jobs:int ->
  ?report:Robust.Report.t ->
  ?deadline:Robust.Deadline.t ->
  ?store:Store.t ->
  ?kernel:bool ->
  ?prepared:prepared_target ->
  ?plan:Plan.t ->
  source:Database.t ->
  target:Database.t ->
  unit ->
  model
(** Default matchers: {!Matchers.default_suite}.  [gated] (default true)
    selects {!Normalize.gated_confidence} over plain z-score confidence;
    the ablation bench measures the difference.

    [jobs] (default 1) fans the per-(source attribute) scoring out over
    a {!Runtime.Pool} of that many domains.  The fan-out is
    deterministic: results are merged in attribute order and the model
    is bit-identical to the sequential build's.

    Failure containment: with a [report], a fan-out unit that raises (a
    matcher choking on a pathological column, an injected fault, the
    [deadline] expiring) quarantines only its source attribute — the
    attribute contributes no scores, a [build]-stage issue is recorded,
    and the rest of the model is unaffected.  Without a [report] the
    first failure re-raises (legacy fail-fast).  Each unit also passes
    the {!Robust.Fault.Matcher_score} site keyed ["table.attr"].

    With a [store], every column artefact lookup (source, target and
    view columns alike) falls back from the in-memory caches to the
    persistent store before computing, and computed artefacts are
    written through — a later [build] over unchanged inputs starts
    warm ({!profile_builds} stays 0).  The caller owns the store's
    lifecycle ({!Store.flush}).

    [kernel] (default true) freezes a {!Score_kernel} over the textual
    target columns after the warm-up — the q-gram matcher is then
    batch-scored through its inverted index during the fan-out and view
    profiles are composed from per-partition profiles
    ({!Profile_cache.set_partitioning}) instead of re-scanning rows.
    Every score either way is bit-identical: the kernel accumulates the
    same dot terms in the same order as the string merge join, and
    partition counts add exactly.  [kernel:false] selects the legacy
    string path (the kernel bench's baseline).

    With [prepared], the target-side work (warming, kernel freeze,
    store registration of target tables) is skipped entirely and the
    shared artefact is consumed instead — [target] should be
    {!prepared_target_db}.  The resulting model, report and matches are
    bit-identical to an inline build over the same target; only the
    cost moves (to registration time, once).  [kernel:false] ignores a
    prepared kernel for this build without affecting any score.

    [plan] is the operator graph to execute (see {!Plan}).  Omitted, it
    defaults to {!Plan.default} over the given matchers — the legacy
    hard-wired pipeline, bit for bit.  A plan with a [Filter] stage
    retrieves top-k q-gram candidates per textual source attribute and
    restricts {e filterable} matchers' textual pairs to the survivors
    (filtered-out pairs keep a 0 in the normalisation distribution but
    contribute no confidence, exactly like inapplicable pairs); its
    results are invariant under the [kernel] switch, and with a
    full-width [k] and a zero filter threshold it degenerates to the
    default plan exactly.  Raises [Invalid_argument] if the plan's
    matcher set differs from [matchers]. *)

val source : model -> Database.t
val target : model -> Database.t

val profile_cache : model -> Profile_cache.t
(** The cache threaded through every view column this model scores. *)

val kernel_enabled : model -> bool
(** Whether the model holds a frozen {!Score_kernel} (built with
    [kernel:true] and at least one textual target column). *)

val plan : model -> Plan.t
(** The operator graph this model was built under. *)

val pairs_scored : model -> int
(** (matcher, source attribute, target column) scoring events actually
    performed; jobs-invariant. *)

val pairs_pruned : model -> int
(** Scoring events skipped by the plan's [Filter] stage (0 under the
    default plan); jobs-invariant. *)

val top_qgram_matches :
  model -> src_table:string -> src_attr:string -> k:int -> tau:float ->
  ((string * string) * float) list
(** Up to [k] target columns by raw q-gram cosine against the source
    column, best first, cosine >= [tau] only.  With a kernel the
    candidates are pruned through the inverted index (targets sharing no
    gram are skipped as provable zeros); without one every textual
    target is scored pairwise.  Both paths return identical results —
    pruning decides what {e not} to score, never a score's value.  [[]]
    for unknown or non-textual source attributes. *)

val cache_stats : model -> int * int
(** [(hits, misses)] of {!profile_cache} so far. *)

val profile_builds : model -> int
(** Column artefacts computed from raw values so far, summed over the
    source/view cache and the target-column cache: lookups that missed
    both the in-memory caches and the persistent store (if any).  Zero
    when a warm store answered everything. *)

val confidence : model -> src_table:string -> src_attr:string -> tgt_table:string ->
  tgt_attr:string -> float
(** Combined confidence of a base-table pair; 0.0 when no matcher was
    applicable. *)

val matches : model -> tau:float -> Schema_match.t list
(** All standard matches with confidence >= tau, sorted by decreasing
    confidence.  This is StandardMatch(R_S, R_T, tau) for every source
    table at once. *)

val matches_from : model -> src_table:string -> tau:float -> Schema_match.t list
(** Standard matches originating from one source table. *)

val score_view :
  model -> View.t -> src_attr:string -> tgt_table:string -> tgt_attr:string -> float
(** Confidence of (view.src_attr -> tgt) under the view's restriction.
    Returns 0.0 for an empty view (no evidence). *)

val view_matches :
  model -> View.t -> base_matches:Schema_match.t list -> Schema_match.t list
(** ScoreMatch for every base match whose source is the view's base
    table (Fig. 5 lines 8–11): each match is re-scored under the view
    and annotated with the view's condition. *)
