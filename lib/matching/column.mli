(** A column handed to matchers: owning table/view name, attribute, and
    the bag of sample values.  Expensive derived artefacts (q-gram
    profile, numeric summary, distinct set) are computed lazily and
    cached, so re-scoring the same column across many matchers or view
    evaluations costs one pass. *)

open Relational

type t

val make :
  ?cache:Profile_cache.t * Profile_cache.key ->
  ?view:View.t ->
  owner:string ->
  Attribute.t ->
  Value.t array ->
  t

(** With [cache], artefacts are shared under the full row-index range
    of the table, so a view selecting every row hits them. *)
val of_table : ?cache:Profile_cache.t -> Table.t -> string -> t

(** With [cache], the lazy artefacts are looked up under
    [(base table, attr, digest of the view's row indices)] before being
    computed, so views selecting the same rows share one computation.
    When the cache has {!Profile_cache.partitioning} on and the view's
    condition selects values of one other attribute, the profile,
    distinct set and word set are {e composed} from that attribute's
    per-partition artefacts (shared across all views and families over
    it) instead of re-scanning the view's rows; composition is exact —
    integer counts add and sets union — so every downstream score is
    bit-identical to the re-scan path. *)
val of_view : ?cache:Profile_cache.t -> View.t -> string -> t
val owner : t -> string
val attribute : t -> Attribute.t
val name : t -> string
(** Attribute name. *)

val values : t -> Value.t array
val size : t -> int
(** Number of values including nulls. *)

val non_null_count : t -> int

val strings : t -> string array
(** Display strings of non-null values (cached after the first call). *)

val floats : t -> float array
(** Numeric images of the values that have one (cached). *)

val profile : t -> Textsim.Profile.t
(** 3-gram profile over {!strings} (cached). *)

val summary : t -> Stats.Descriptive.summary
(** Numeric summary over {!floats} (cached). *)

val distinct_strings : t -> string list
(** Distinct display strings, sorted (cached). *)

val words : t -> string list
(** Distinct word tokens over {!strings}, sorted (cached, and shared
    through the profile cache like {!distinct_strings}, so the word
    matcher stops re-tokenising the same row subset per pair). *)

val words_attr : string -> string
(** The attribute-name marker under which {!words} shares word sets
    through the distinct-set memo/store ([attr ^ "\twords"]; a tab
    never occurs in a schema or CSV attribute name).  Delta maintenance
    seeds word sets under exactly this key. *)

val warm_families : ?pool:Runtime.Pool.t -> Profile_cache.t -> Table.t -> unit
(** Build-time warm of the partition-composition artefacts: for every
    categorical condition attribute of the table (default
    {!Relational.Categorical} parameters — the predicate view inference
    enumerates families over), force the columnar family pack and the
    per-group distinct/word sets of every other textual attribute, and
    the per-group distinct sets of every int attribute (whose view
    distincts compose too), through the shared cache.  View scoring
    then composes from warm artefacts instead of first-touch tokenising
    per group inside the scoring phase.  Purely a warming pass — every
    artefact goes through the exact keys the lazy paths use, so
    skipping it (or inferring with non-default categorical parameters)
    only moves the identical computation later.  Each pair warms
    best-effort: a failure (e.g. an injected fault) is swallowed and
    re-raises on the owning unit's own lookup instead.  With [pool],
    the (condition, attribute) pairs warm pool-parallel; must then be
    called from the pool's own domain ({!Runtime.Pool} is not
    re-entrant). *)

val warm : t -> unit
(** Force the artefacts a matcher of this column's type could ask for
    (profile/distinct/words for textual, summary for numeric, distinct
    for int).  Used to pre-populate shared columns before they are read
    concurrently from worker domains. *)
