open Relational

type t = {
  owner : string;
  attribute : Attribute.t;
  values : Value.t array;
  (* when present, lazy artefacts are shared through the cache under
     this key instead of being recomputed per column *)
  cache : (Profile_cache.t * Profile_cache.key) option;
  (* the view this column was cut from, when it was; lets the profile
     of a categorical view be composed from partition profiles *)
  view : View.t option;
  mutable strings_memo : string array option;
  mutable floats_memo : float array option;
  mutable profile : Textsim.Profile.t option;
  mutable summary : Stats.Descriptive.summary option;
  mutable distinct : string list option;
  mutable words_memo : string list option;
}

let make ?cache ?view ~owner attribute values =
  {
    owner;
    attribute;
    values;
    cache;
    view;
    strings_memo = None;
    floats_memo = None;
    profile = None;
    summary = None;
    distinct = None;
    words_memo = None;
  }

let of_table ?cache table attr_name =
  let cache =
    (* registered under the full row range, so views selecting every
       row share the base column's artefacts *)
    Option.map
      (fun c ->
        ( c,
          Profile_cache.key ~table:(Table.name table) ~attr:attr_name
            ~indices:(Array.init (Table.row_count table) Fun.id) ))
      cache
  in
  make ?cache
    ~owner:(Table.name table)
    (Schema.attribute (Table.schema table) attr_name)
    (Table.column table attr_name)

let of_view ?cache view attr_name =
  let cache =
    Option.map
      (fun c ->
        ( c,
          Profile_cache.key
            ~table:(Table.name (View.base view))
            ~attr:attr_name ~indices:(View.row_indices view) ))
      cache
  in
  make ?cache ~view
    ~owner:(View.name view)
    (Schema.attribute (Relational.Table.schema (View.base view)) attr_name)
    (View.column view attr_name)

let owner t = t.owner
let attribute t = t.attribute
let name t = t.attribute.Attribute.name
let values t = t.values
let size t = Array.length t.values

let non_null_count t =
  Array.fold_left (fun acc v -> if Value.is_null v then acc else acc + 1) 0 t.values

let strings t =
  match t.strings_memo with
  | Some s -> s
  | None ->
    let s =
      Array.to_list t.values
      |> List.filter_map (fun v -> if Value.is_null v then None else Some (Value.to_string v))
      |> Array.of_list
    in
    t.strings_memo <- Some s;
    s

let floats t =
  match t.floats_memo with
  | Some f -> f
  | None ->
    let f = Array.to_list t.values |> List.filter_map Value.to_float |> Array.of_list in
    t.floats_memo <- Some f;
    f

(* The marker keeps word sets in the distinct-set memo (and store)
   without colliding with an attribute name: attribute names come from
   schema/CSV headers, which never contain a tab.  Exposed so delta
   maintenance can seed word sets under the exact key [words] below
   reads. *)
let words_attr attr = attr ^ "\twords"

(* ---- partition composition -------------------------------------------- *)

(* When the column belongs to a view whose condition selects values of
   one *other* categorical attribute, its rows are the disjoint union of
   that attribute's per-value partitions, so any artefact that adds up —
   integer gram counts, distinct-string sets — can be composed from the
   per-partition artefacts instead of re-scanning the rows.  Composition
   is exact: summed counts equal rescanned counts bag-for-bag, and the
   scoring folds only ever see the (gram-sorted) counts, so scores are
   bit-identical either way.  The per-partition artefacts are shared
   through the cache across every view and family that selects the same
   attribute, which is where the asymptotic win comes from. *)
let compose_plan t =
  match (t.cache, t.view) with
  | Some (c, _), Some view when Profile_cache.partitioning c -> (
    match Condition.selected_values (View.condition view) with
    | Some (cond_attr, vs) when cond_attr <> name t && vs <> [] ->
      (* [Value.compare]-dedup: [In] lists may repeat a row group (e.g.
         [Int 1] next to [Float 1.]), which would double-count *)
      Some (c, View.base view, cond_attr, List.sort_uniq Value.compare vs)
    | _ -> None)
  | _ -> None

let partition_slices c base cond_attr vs =
  let part = Profile_cache.partition c ~table:base ~cond_attr in
  List.map
    (fun v ->
      match Profile_cache.partition_indices part v with
      | Some indices -> indices
      | None -> [||])
    vs

let sub_strings base attr indices =
  let rows = Table.rows base in
  let col = Schema.index_of (Table.schema base) attr in
  Array.to_list indices
  |> List.filter_map (fun i ->
         let v = rows.(i).(col) in
         if Value.is_null v then None else Some (Value.to_string v))

let composed_profile t c base cond_attr vs =
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "column.partition.composed";
    Obs.Metrics.add "column.partition.parts" (List.length vs)
  end;
  let attr = name t in
  let tname = Table.name base in
  let subs =
    List.map
      (fun indices ->
        Profile_cache.profile c
          (Profile_cache.key ~table:tname ~attr ~indices)
          (fun () -> Textsim.Profile.of_strings (sub_strings base attr indices)))
      (partition_slices c base cond_attr vs)
  in
  match subs with [ p ] -> p | ps -> Textsim.Profile.sum ps

let composed_distinct c base cond_attr vs ~attr_key ~of_slice =
  let tname = Table.name base in
  let subs =
    List.map
      (fun indices ->
        Profile_cache.distinct c
          (Profile_cache.key ~table:tname ~attr:attr_key ~indices)
          (fun () -> of_slice indices))
      (partition_slices c base cond_attr vs)
  in
  match subs with
  | [ d ] -> d
  | ds -> List.concat ds |> List.sort_uniq String.compare

let profile t =
  match t.profile with
  | Some p -> p
  | None ->
    let compute () =
      match compose_plan t with
      | Some (c, base, cond_attr, vs) -> composed_profile t c base cond_attr vs
      | None -> Textsim.Profile.of_strings_array (strings t)
    in
    let p =
      match t.cache with
      | Some (c, key) -> Profile_cache.profile c key compute
      | None -> compute ()
    in
    t.profile <- Some p;
    p

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
    let compute () = Stats.Descriptive.summarize (floats t) in
    let s =
      match t.cache with
      | Some (c, key) -> Profile_cache.summary c key compute
      | None -> compute ()
    in
    t.summary <- Some s;
    s

let distinct_strings t =
  match t.distinct with
  | Some d -> d
  | None ->
    let compute () =
      match compose_plan t with
      | Some (c, base, cond_attr, vs) ->
        composed_distinct c base cond_attr vs ~attr_key:(name t) ~of_slice:(fun indices ->
            sub_strings base (name t) indices |> List.sort_uniq String.compare)
      | None -> strings t |> Array.to_list |> List.sort_uniq String.compare
    in
    let d =
      match t.cache with
      | Some (c, key) -> Profile_cache.distinct c key compute
      | None -> compute ()
    in
    t.distinct <- Some d;
    d

let words t =
  match t.words_memo with
  | Some w -> w
  | None ->
    let word_list strs = List.concat_map Textsim.Tokenize.words strs |> List.sort_uniq String.compare in
    let compute () =
      match compose_plan t with
      | Some (c, base, cond_attr, vs) ->
        composed_distinct c base cond_attr vs ~attr_key:(words_attr (name t))
          ~of_slice:(fun indices -> word_list (sub_strings base (name t) indices))
      | None -> word_list (strings t |> Array.to_list)
    in
    let w =
      match t.cache with
      | Some (c, (tbl, attr, subset)) ->
        Profile_cache.distinct c (tbl, words_attr attr, subset) compute
      | None -> compute ()
    in
    t.words_memo <- Some w;
    w

let warm t =
  let a = t.attribute in
  if Attribute.is_textual a then begin
    ignore (profile t);
    ignore (distinct_strings t);
    ignore (words t)
  end;
  if Attribute.is_numeric a then begin
    ignore (summary t);
    ignore (floats t)
  end;
  if a.Attribute.ty = Value.Tint then ignore (distinct_strings t)
