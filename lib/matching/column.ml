open Relational

type t = {
  owner : string;
  attribute : Attribute.t;
  values : Value.t array;
  (* when present, lazy artefacts are shared through the cache under
     this key instead of being recomputed per column *)
  cache : (Profile_cache.t * Profile_cache.key) option;
  mutable profile : Textsim.Profile.t option;
  mutable summary : Stats.Descriptive.summary option;
  mutable distinct : string list option;
}

let make ?cache ~owner attribute values =
  { owner; attribute; values; cache; profile = None; summary = None; distinct = None }

let of_table ?cache table attr_name =
  let cache =
    (* registered under the full row range, so views selecting every
       row share the base column's artefacts *)
    Option.map
      (fun c ->
        ( c,
          Profile_cache.key ~table:(Table.name table) ~attr:attr_name
            ~indices:(Array.init (Table.row_count table) Fun.id) ))
      cache
  in
  make ?cache
    ~owner:(Table.name table)
    (Schema.attribute (Table.schema table) attr_name)
    (Table.column table attr_name)

let of_view ?cache view attr_name =
  let cache =
    Option.map
      (fun c ->
        ( c,
          Profile_cache.key
            ~table:(Table.name (View.base view))
            ~attr:attr_name ~indices:(View.row_indices view) ))
      cache
  in
  make ?cache
    ~owner:(View.name view)
    (Schema.attribute (Relational.Table.schema (View.base view)) attr_name)
    (View.column view attr_name)

let owner t = t.owner
let attribute t = t.attribute
let name t = t.attribute.Attribute.name
let values t = t.values
let size t = Array.length t.values

let non_null_count t =
  Array.fold_left (fun acc v -> if Value.is_null v then acc else acc + 1) 0 t.values

let strings t =
  Array.to_list t.values
  |> List.filter_map (fun v -> if Value.is_null v then None else Some (Value.to_string v))
  |> Array.of_list

let floats t =
  Array.to_list t.values |> List.filter_map Value.to_float |> Array.of_list

let profile t =
  match t.profile with
  | Some p -> p
  | None ->
    let compute () = Textsim.Profile.of_strings_array (strings t) in
    let p =
      match t.cache with
      | Some (c, key) -> Profile_cache.profile c key compute
      | None -> compute ()
    in
    t.profile <- Some p;
    p

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
    let compute () = Stats.Descriptive.summarize (floats t) in
    let s =
      match t.cache with
      | Some (c, key) -> Profile_cache.summary c key compute
      | None -> compute ()
    in
    t.summary <- Some s;
    s

let distinct_strings t =
  match t.distinct with
  | Some d -> d
  | None ->
    let compute () = strings t |> Array.to_list |> List.sort_uniq String.compare in
    let d =
      match t.cache with
      | Some (c, key) -> Profile_cache.distinct c key compute
      | None -> compute ()
    in
    t.distinct <- Some d;
    d

let warm t =
  let a = t.attribute in
  if Attribute.is_textual a then begin
    ignore (profile t);
    ignore (distinct_strings t)
  end;
  if Attribute.is_numeric a then ignore (summary t);
  if a.Attribute.ty = Value.Tint then ignore (distinct_strings t)
