open Relational

type t = {
  owner : string;
  attribute : Attribute.t;
  values : Value.t array;
  (* when present, lazy artefacts are shared through the cache under
     this key instead of being recomputed per column *)
  cache : (Profile_cache.t * Profile_cache.key) option;
  (* the view this column was cut from, when it was; lets the profile
     of a categorical view be composed from partition profiles *)
  view : View.t option;
  mutable strings_memo : string array option;
  mutable floats_memo : float array option;
  mutable profile : Textsim.Profile.t option;
  mutable summary : Stats.Descriptive.summary option;
  mutable distinct : string list option;
  mutable words_memo : string list option;
}

let make ?cache ?view ~owner attribute values =
  {
    owner;
    attribute;
    values;
    cache;
    view;
    strings_memo = None;
    floats_memo = None;
    profile = None;
    summary = None;
    distinct = None;
    words_memo = None;
  }

let of_table ?cache table attr_name =
  let cache =
    (* registered under the full row range, so views selecting every
       row share the base column's artefacts *)
    Option.map
      (fun c ->
        ( c,
          Profile_cache.key ~table:(Table.name table) ~attr:attr_name
            ~indices:(Array.init (Table.row_count table) Fun.id) ))
      cache
  in
  make ?cache
    ~owner:(Table.name table)
    (Schema.attribute (Table.schema table) attr_name)
    (Table.column table attr_name)

let of_view ?cache view attr_name =
  let cache =
    Option.map
      (fun c ->
        ( c,
          Profile_cache.key
            ~table:(Table.name (View.base view))
            ~attr:attr_name ~indices:(View.row_indices view) ))
      cache
  in
  make ?cache ~view
    ~owner:(View.name view)
    (Schema.attribute (Relational.Table.schema (View.base view)) attr_name)
    (View.column view attr_name)

let owner t = t.owner
let attribute t = t.attribute
let name t = t.attribute.Attribute.name
let values t = t.values
let size t = Array.length t.values

let non_null_count t =
  Array.fold_left (fun acc v -> if Value.is_null v then acc else acc + 1) 0 t.values

let strings t =
  match t.strings_memo with
  | Some s -> s
  | None ->
    let s =
      Array.to_list t.values
      |> List.filter_map (fun v -> if Value.is_null v then None else Some (Value.to_string v))
      |> Array.of_list
    in
    t.strings_memo <- Some s;
    s

let floats t =
  match t.floats_memo with
  | Some f -> f
  | None ->
    let f = Array.to_list t.values |> List.filter_map Value.to_float |> Array.of_list in
    t.floats_memo <- Some f;
    f

(* The marker keeps word sets in the distinct-set memo (and store)
   without colliding with an attribute name: attribute names come from
   schema/CSV headers, which never contain a tab.  Exposed so delta
   maintenance can seed word sets under the exact key [words] below
   reads. *)
let words_attr attr = attr ^ "\twords"

(* ---- partition composition -------------------------------------------- *)

(* When the column belongs to a view whose condition selects values of
   one *other* categorical attribute, its rows are the disjoint union of
   that attribute's per-value partitions, so any artefact that adds up —
   integer gram counts, distinct-string sets — can be composed from the
   per-partition artefacts instead of re-scanning the rows.  Composition
   is exact: summed counts equal rescanned counts bag-for-bag, and the
   scoring folds only ever see the (gram-sorted) counts, so scores are
   bit-identical either way.  The per-partition artefacts are shared
   through the cache across every view and family that selects the same
   attribute, which is where the asymptotic win comes from. *)
let compose_plan t =
  match (t.cache, t.view) with
  | Some (c, _), Some view when Profile_cache.partitioning c -> (
    match Condition.selected_values (View.condition view) with
    | Some (cond_attr, vs) when cond_attr <> name t && vs <> [] ->
      (* [Value.compare]-dedup: [In] lists may repeat a row group (e.g.
         [Int 1] next to [Float 1.]), which would double-count *)
      Some (c, View.base view, cond_attr, List.sort_uniq Value.compare vs)
    | _ -> None)
  | _ -> None

let partition_slices c base cond_attr vs =
  let part = Profile_cache.partition c ~table:base ~cond_attr in
  List.map
    (fun v ->
      match Profile_cache.partition_indices part v with
      | Some indices -> indices
      | None -> [||])
    vs

let sub_strings base attr indices =
  let rows = Table.rows base in
  let col = Schema.index_of (Table.schema base) attr in
  Array.to_list indices
  |> List.filter_map (fun i ->
         let v = rows.(i).(col) in
         if Value.is_null v then None else Some (Value.to_string v))

(* View-profile composition through the columnar family pack: the
   selected values map to partition-group slots, and the composed
   profile is one integer merge-sum over the family's arena rows —
   no hashtable, no string, no re-fold of the per-group counts.  The
   resulting count bag equals [Profile.sum] of the boxed per-group
   profiles (which itself equals a row re-scan), so scores stay
   bit-identical to both earlier paths.  Values absent from the sample
   still register their empty row slice through the cache, exactly as
   the boxed path did — the memo/store artefact set is unchanged. *)
let composed_profile t c base cond_attr vs =
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "column.partition.composed";
    Obs.Metrics.add "column.partition.parts" (List.length vs)
  end;
  let attr = name t in
  let tname = Table.name base in
  let fam =
    Profile_cache.family c ~table:base ~cond_attr ~attr ~profile_of:(fun indices ->
        Textsim.Profile.of_strings (sub_strings base attr indices))
  in
  let part = Profile_cache.partition c ~table:base ~cond_attr in
  let slots, missing =
    List.fold_left
      (fun (slots, missing) v ->
        match Profile_cache.partition_slot part v with
        | Some slot -> (slot :: slots, missing)
        | None -> (slots, missing + 1))
      ([], 0) vs
  in
  let slots = List.rev slots in
  if missing > 0 then
    for _ = 1 to missing do
      ignore
        (Profile_cache.profile c
           (Profile_cache.key ~table:tname ~attr ~indices:[||])
           (fun () -> Textsim.Profile.of_strings []))
    done;
  match slots with
  | [ slot ] when missing = 0 -> fam.Profile_cache.fam_profiles.(slot)
  | slots -> Profile_cache.compose_profile fam slots

(* Sorted-unique union by pairwise merge: [of_slice] always produces
   [sort_uniq]'d lists, for which the fold of merges returns exactly
   what sort-uniq-of-concat would, in O(total) comparisons.  A slice
   that is not strictly sorted (only a foreign seeded artefact could
   be) falls back to the original path. *)
let rec strictly_sorted = function
  | a :: (b :: _ as tl) -> String.compare a b < 0 && strictly_sorted tl
  | [] | [ _ ] -> true

let merge_dedup xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xt, y :: yt ->
      let c = String.compare x y in
      if c = 0 then go (x :: acc) xt yt
      else if c < 0 then go (x :: acc) xt ys
      else go (y :: acc) xs yt
  in
  go [] xs ys

let composed_distinct c base cond_attr vs ~attr_key ~of_slice =
  let tname = Table.name base in
  let subs =
    List.map
      (fun indices ->
        Profile_cache.distinct c
          (Profile_cache.key ~table:tname ~attr:attr_key ~indices)
          (fun () -> of_slice indices))
      (partition_slices c base cond_attr vs)
  in
  match subs with
  | [ d ] -> d
  | ds ->
    if List.for_all strictly_sorted ds then List.fold_left merge_dedup [] ds
    else List.concat ds |> List.sort_uniq String.compare

let profile t =
  match t.profile with
  | Some p -> p
  | None ->
    let compute () =
      match compose_plan t with
      | Some (c, base, cond_attr, vs) -> composed_profile t c base cond_attr vs
      | None -> Textsim.Profile.of_strings_array (strings t)
    in
    let p =
      match t.cache with
      | Some (c, key) -> Profile_cache.profile c key compute
      | None -> compute ()
    in
    t.profile <- Some p;
    p

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
    let compute () = Stats.Descriptive.summarize (floats t) in
    let s =
      match t.cache with
      | Some (c, key) -> Profile_cache.summary c key compute
      | None -> compute ()
    in
    t.summary <- Some s;
    s

let distinct_strings t =
  match t.distinct with
  | Some d -> d
  | None ->
    let compute () =
      match compose_plan t with
      | Some (c, base, cond_attr, vs) ->
        composed_distinct c base cond_attr vs ~attr_key:(name t) ~of_slice:(fun indices ->
            sub_strings base (name t) indices |> List.sort_uniq String.compare)
      | None -> strings t |> Array.to_list |> List.sort_uniq String.compare
    in
    let d =
      match t.cache with
      | Some (c, key) -> Profile_cache.distinct c key compute
      | None -> compute ()
    in
    t.distinct <- Some d;
    d

let words t =
  match t.words_memo with
  | Some w -> w
  | None ->
    let word_list strs = List.concat_map Textsim.Tokenize.words strs |> List.sort_uniq String.compare in
    let compute () =
      match compose_plan t with
      | Some (c, base, cond_attr, vs) ->
        composed_distinct c base cond_attr vs ~attr_key:(words_attr (name t))
          ~of_slice:(fun indices -> word_list (sub_strings base (name t) indices))
      | None -> word_list (strings t |> Array.to_list)
    in
    let w =
      match t.cache with
      | Some (c, (tbl, attr, subset)) ->
        Profile_cache.distinct c (tbl, words_attr attr, subset) compute
      | None -> compute ()
    in
    t.words_memo <- Some w;
    w

(* Build-time warm of the partition-composition artefacts: for every
   categorical condition attribute (under the default detection
   parameters — the same predicate NaiveInfer enumerates view families
   over) and every other textual attribute, force the columnar family
   pack plus the per-group distinct and word sets.  View scoring then
   composes from warm artefacts instead of first-touch tokenising
   inside the scoring phase — the same "freeze after build" treatment
   {!warm} gives base columns.  Purely a warming pass: every artefact
   is built through the exact cache keys the lazy paths use, so a
   caller that skips it (or infers with non-default categorical
   parameters) computes the identical values lazily instead. *)
let warm_families ?pool cache table =
  let schema = Table.schema table in
  let tname = Table.name table in
  let pairs =
    List.concat_map
      (fun cond_attr ->
        List.filter_map
          (fun attr ->
            if attr = cond_attr then None
            else
              let a = Schema.attribute schema attr in
              if Attribute.is_textual a then Some (cond_attr, attr, `Textual)
              else if a.Attribute.ty = Value.Tint then Some (cond_attr, attr, `Int)
              else None)
          (Schema.attribute_names schema))
      (Categorical.categorical_attributes table)
  in
  (* Every composable per-group artefact is warmed — textual attrs get
     the family pack plus distinct/word slices, int attrs (whose view
     distincts also compose, for the value-overlap matcher) get distinct
     slices.  Completeness matters beyond speed: an [Eq] view's row set
     *is* a partition group, so its column shares the slice's cache key,
     and whether its first lookup nests a slice compute would otherwise
     depend on which worker touched the slice first — warming everything
     here keeps the lookup counts jobs-invariant. *)
  let warm_pair (cond_attr, attr, kind) =
    (* Best-effort: a failure (e.g. an injected fault) is dropped.
       Nothing is memoised on exception and fault decisions are keyed to
       the looked-up artefact, not the call site, so the owning unit's
       own lookup later re-raises the identical error and quarantines
       exactly as if the warm had never run. *)
    try
      let part = Profile_cache.partition cache ~table ~cond_attr in
      (match kind with
      | `Int -> ()
      | `Textual ->
        ignore
          (Profile_cache.family cache ~table ~cond_attr ~attr ~profile_of:(fun indices ->
               Textsim.Profile.of_strings (sub_strings table attr indices))));
      Array.iter
        (fun indices ->
          ignore
            (Profile_cache.distinct cache
               (Profile_cache.key ~table:tname ~attr ~indices)
               (fun () -> sub_strings table attr indices |> List.sort_uniq String.compare));
          match kind with
          | `Int -> ()
          | `Textual ->
            ignore
              (Profile_cache.distinct cache
                 (Profile_cache.key ~table:tname ~attr:(words_attr attr) ~indices)
                 (fun () ->
                   List.concat_map Textsim.Tokenize.words (sub_strings table attr indices)
                   |> List.sort_uniq String.compare)))
        part.Profile_cache.part_indices
    with _ -> ()
  in
  match pool with
  | Some pool -> ignore (Runtime.Pool.map_list pool warm_pair pairs)
  | None -> List.iter warm_pair pairs

let warm t =
  let a = t.attribute in
  if Attribute.is_textual a then begin
    ignore (profile t);
    ignore (distinct_strings t);
    ignore (words t)
  end;
  if Attribute.is_numeric a then begin
    ignore (summary t);
    ignore (floats t)
  end;
  if a.Attribute.ty = Value.Tint then ignore (distinct_strings t)
