open Relational

type target_col = { table : string; column : Column.t }

type model = {
  gated : bool;
  matchers : Matcher.t list;
  (* the operator graph this model was built under; the default plan
     reproduces the legacy hard-wired pipeline bit-identically *)
  plan : Plan.t;
  (* (matcher, source attr, target col) scoring events performed /
     skipped by the plan's filter — merged deterministically on the
     main domain, so both are jobs-invariant *)
  pairs_scored : int;
  pairs_pruned : int;
  source_db : Database.t;
  target_db : Database.t;
  target_cols : target_col list;
  (* (tgt_table, tgt_attr) -> target_col, for O(1) lookups in ScoreMatch *)
  target_index : (string * string, target_col) Hashtbl.t;
  (* (src_table, src_attr) -> Column *)
  source_cols : (string * string, Column.t) Hashtbl.t;
  (* (src_table, src_attr, matcher) -> raw-score normalisation stats *)
  stats : (string * string * string, Normalize.t) Hashtbl.t;
  (* (src_table, src_attr, tgt_table, tgt_attr, matcher) -> raw score *)
  raw : (string * string * string * string * string, float) Hashtbl.t;
  (* view-column artefacts shared across candidate-view scorings *)
  cache : Profile_cache.t;
  (* target-column artefacts; a separate cache instance so a source
     and a target table with the same name can never collide on the
     in-memory (table, attr, subset) key *)
  tgt_cache : Profile_cache.t;
  (* interned q-gram index over the textual target columns; None when
     the kernel is disabled or no textual target exists *)
  kernel : Score_kernel.t option;
}

let source m = m.source_db
let target m = m.target_db
let profile_cache m = m.cache
let kernel_enabled m = m.kernel <> None
let plan m = m.plan
let pairs_scored m = m.pairs_scored
let pairs_pruned m = m.pairs_pruned
let cache_stats m = (Profile_cache.hits m.cache, Profile_cache.misses m.cache)
let profile_builds m = Profile_cache.builds m.cache + Profile_cache.builds m.tgt_cache

(* Immutable prepared-target artefact: everything [build] derives from
   the target database alone — warmed columns, the (table, attr) index,
   the target-side profile cache and the frozen scoring kernel.  A
   long-lived process (the serve daemon) prepares a target once and
   shares the artefact across requests, which then only score their own
   source against it; [build] over the same target with the same flags
   produces a bit-identical model either way, because the preparation
   below is exactly the code [build] used to run inline. *)
type prepared_target = {
  pt_target_db : Database.t;
  pt_cols : target_col list;
  pt_index : (string * string, target_col) Hashtbl.t;
  pt_cache : Profile_cache.t;
  pt_kernel : Score_kernel.t option;
  pt_issues : Robust.Error.t list;
      (* target columns quarantined while warming, in column order;
         replayed into every consuming build's report so a run over a
         shared prepared target reports the same issues a one-shot run
         over the same target would *)
}

let prepare_target ?store ?(kernel = true) ?(fail_fast = false) ~target () =
  Obs.Trace.with_span "prepare_target" @@ fun () ->
  let tgt_cache = Profile_cache.create () in
  (match store with
  | None -> ()
  | Some s ->
    Profile_cache.attach_store tgt_cache s;
    List.iter (Profile_cache.register_table tgt_cache) (Database.tables target));
  let target_cols =
    List.concat_map
      (fun tbl ->
        List.map
          (fun attr ->
            { table = Table.name tbl; column = Column.of_table ~cache:tgt_cache tbl attr })
          (Schema.attribute_names (Table.schema tbl)))
      (Database.tables target)
  in
  (* Warm the shared target columns up front: consumers read them
     concurrently, so their lazy artefacts must already be in place
     (same computations the sequential path performs on first touch).
     Warming runs through the memo (and its fault-injection site), so a
     failing warm quarantines exactly that target column — sequentially
     on the calling domain, hence jobs-invariant. *)
  let rev_issues = ref [] in
  let target_cols =
    Obs.Trace.with_span "warm_targets" (fun () ->
        List.filter
          (fun tgt ->
            match Column.warm tgt.column with
            | () -> true
            | exception e ->
              if fail_fast then raise e;
              rev_issues :=
                Robust.Error.v ~table:tgt.table ~attribute:(Column.name tgt.column)
                  Robust.Error.Build
                  (Printf.sprintf "target column skipped: %s" (Printexc.to_string e))
                :: !rev_issues;
              false)
          target_cols)
  in
  let target_index = Hashtbl.create 64 in
  List.iter
    (fun tgt -> Hashtbl.replace target_index (tgt.table, Column.name tgt.column) tgt)
    target_cols;
  (* Freeze the scoring kernel after the warm-up: the interner
     dictionary and inverted index are immutable from here on, so
     worker domains (and every later consumer) read them lock-free. *)
  let score_kernel =
    if not kernel then None
    else begin
      let textual =
        List.filter
          (fun tgt -> Relational.Attribute.is_textual (Column.attribute tgt.column))
          target_cols
      in
      match textual with
      | [] -> None
      | _ ->
        Obs.Trace.with_span "build_kernel" (fun () ->
            Some
              (Score_kernel.build
                 (Array.of_list
                    (List.map
                       (fun tgt ->
                         ((tgt.table, Column.name tgt.column), Column.profile tgt.column))
                       textual))))
    end
  in
  {
    pt_target_db = target;
    pt_cols = target_cols;
    pt_index = target_index;
    pt_cache = tgt_cache;
    pt_kernel = score_kernel;
    pt_issues = List.rev !rev_issues;
  }

(* ---- O(delta) prepared-target patching -------------------------------- *)

(* Delta-maintained replacement artefacts for one attribute of a
   patched table.  [None] fields mean "nothing maintained for this
   artefact" — the rebuilt column computes it on warm (numeric
   summaries recompute over the new rows; the fold is the one the cold
   path runs, so the values are bit-identical). *)
type column_patch = {
  cp_attr : string;
  cp_profile : Textsim.Profile.t option;
  cp_distinct : string list option;
  cp_words : string list option;
}

(* Rebuild a prepared target around one replaced table without
   re-tokenizing its text: the scoring kernel is patched in place
   (touched postings only), the maintained artefacts are seeded into a
   fresh target cache under the exact keys the new columns will read,
   and every column of an unchanged table is reused verbatim — its
   artefacts are memoised in-object and immutable.  [None] when the new
   rows hold grams outside the frozen dictionary (the interner cannot
   grow); the caller must [prepare_target] cold.  The original artefact
   is never mutated, so concurrent readers of the old generation stay
   valid and a failed patch leaves no trace. *)
let patch_prepared ?store prepared ~table ?digest ~patches () =
  Obs.Trace.with_span "patch_prepared" @@ fun () ->
  let table_name = Table.name table in
  let kernel_updates =
    List.filter_map
      (fun cp ->
        match cp.cp_profile with
        | Some p -> Some ((table_name, cp.cp_attr), p)
        | None -> None)
      patches
  in
  let patched_kernel =
    match prepared.pt_kernel with
    | None -> Some None
    | Some k -> (
      match Score_kernel.patch k kernel_updates with
      | Some k' -> Some (Some k')
      | None -> None)
  in
  match patched_kernel with
  | None -> None (* out-of-vocabulary gram: the dictionary cannot grow *)
  | Some pt_kernel ->
    let new_db = Database.replace_table prepared.pt_target_db table in
    let new_cache = Profile_cache.create () in
    let store =
      match store with Some _ -> store | None -> prepared.pt_cache.Profile_cache.store
    in
    (match store with
    | None -> ()
    | Some s ->
      Profile_cache.attach_store new_cache s;
      List.iter
        (fun tbl ->
          let name = Table.name tbl in
          if String.equal name table_name then begin
            let d = match digest with Some d -> d | None -> Store.table_digest tbl in
            Profile_cache.register_digest new_cache ~table:name ~digest:d
          end
          else
            match Profile_cache.table_digest prepared.pt_cache name with
            | Some d -> Profile_cache.register_digest new_cache ~table:name ~digest:d
            | None -> Profile_cache.register_table new_cache tbl)
        (Database.tables new_db));
    (* Seed the maintained artefacts under the full-range keys
       [Column.of_table] registers, so warming the rebuilt columns hits
       the memo (and writes through to the store) instead of
       re-scanning rows. *)
    let full_range = Array.init (Table.row_count table) Fun.id in
    List.iter
      (fun cp ->
        let (tbl, attr, subset) =
          Profile_cache.key ~table:table_name ~attr:cp.cp_attr ~indices:full_range
        in
        let k = (tbl, attr, subset) in
        Option.iter (fun p -> Profile_cache.seed_profile new_cache k p) cp.cp_profile;
        Option.iter (fun d -> Profile_cache.seed_distinct new_cache k d) cp.cp_distinct;
        Option.iter
          (fun w -> Profile_cache.seed_distinct new_cache (tbl, Column.words_attr attr, subset) w)
          cp.cp_words)
      patches;
    (* Column order and the warm-quarantine exclusions of the original
       preparation are preserved: unchanged tables reuse their warmed
       columns verbatim, the patched table's surviving columns are
       recreated against the new rows and re-warmed (cheap: the seeded
       cache answers the textual artefacts). *)
    let pt_cols =
      List.map
        (fun tgt ->
          if not (String.equal tgt.table table_name) then tgt
          else begin
            let column = Column.of_table ~cache:new_cache table (Column.name tgt.column) in
            Column.warm column;
            { table = table_name; column }
          end)
        prepared.pt_cols
    in
    let pt_index = Hashtbl.create 64 in
    List.iter (fun tgt -> Hashtbl.replace pt_index (tgt.table, Column.name tgt.column) tgt) pt_cols;
    if !Obs.Recorder.enabled then Obs.Metrics.incr "prepared.patches";
    Some
      {
        pt_target_db = new_db;
        pt_cols;
        pt_index;
        pt_cache = new_cache;
        pt_kernel;
        pt_issues = prepared.pt_issues;
      }

let prepared_target_db p = p.pt_target_db
let prepared_issues p = p.pt_issues
let prepared_columns p = List.length p.pt_cols
let prepared_kernel p = p.pt_kernel <> None

(* One fan-out unit of [build]: every raw score and the per-matcher
   normalisation stats of a single source attribute.  Pure apart from
   reads of the pre-warmed target columns and writes to its own
   freshly created source column, so units can run on any domain. *)
type built_pair = {
  bp_table : string;
  bp_attr : string;
  bp_column : Column.t;
  (* matcher name, (tgt_table, tgt_attr, raw score) list, stats *)
  bp_scores : (string * (string * string * float) list * Normalize.t option) list;
  (* scoring events performed / skipped by the filter, for this unit *)
  bp_scored : int;
  bp_pruned : int;
}

(* Top-k retrieval by raw q-gram cosine — shared by the plan's
   [Filter] stage and [top_qgram_matches].  With a kernel, one pass
   over the inverted index scores only the targets sharing a gram with
   the probe (the rest are provable zeros, costing nothing); without
   one, every textual target is scored pairwise.  Both paths run the
   identical exact accumulation and the identical (score desc, slot
   asc) order, so their results coincide — the differential suite
   asserts it.  Note [tau = 0.0] keeps zero-score textual targets in
   both paths (0 >= 0), so a filter with a full-width k degenerates to
   the unfiltered pipeline exactly. *)
let qgram_candidates_raw ?pool ~kernel ~target_cols profile ~k ~tau =
  match kernel with
  | Some kern -> Score_kernel.top_k ?pool kern profile ~k ~tau
  | None ->
    let textual =
      List.filter
        (fun tgt -> Relational.Attribute.is_textual (Column.attribute tgt.column))
        target_cols
    in
    let scored =
      List.mapi
        (fun i tgt ->
          ( i,
            (tgt.table, Column.name tgt.column),
            Textsim.Profile.cosine profile (Column.profile tgt.column) ))
        textual
    in
    List.filter (fun (_, _, s) -> s >= tau) scored
    |> List.sort (fun (i, _, a) (j, _, b) ->
           let c = Float.compare b a in
           if c <> 0 then c else Int.compare i j)
    |> List.filteri (fun i _ -> i < k)
    |> List.map (fun (_, name, s) -> (name, s))

(* Probe wrapper: every candidate retrieval — from the plan's filter
   stage or [top_qgram_matches] — records one [plan.filter_probes]
   event and its wall time on [plan.filter_ns], which is what the cost
   model's [ns_filter] rate calibrates from. *)
let qgram_candidates ?pool ~kernel ~target_cols profile ~k ~tau =
  let observed = !Obs.Recorder.enabled in
  let t0 = if observed then Robust.Deadline.now_ns () else 0L in
  let result = qgram_candidates_raw ?pool ~kernel ~target_cols profile ~k ~tau in
  if observed then begin
    Obs.Metrics.incr "plan.filter_probes";
    Obs.Metrics.observe_ns "plan.filter_ns" (Int64.sub (Robust.Deadline.now_ns ()) t0)
  end;
  result

let build ?(gated = true) ?(matchers = Matchers.default_suite) ?(jobs = 1) ?report
    ?(deadline = Robust.Deadline.none) ?store ?(kernel = true) ?prepared ?plan ~source ~target () =
  Obs.Trace.with_span "standard_match.build" @@ fun () ->
  let cache = Profile_cache.create () in
  (match store with
  | None -> ()
  | Some s ->
    (* register before the fan-out: worker domains only read digests *)
    Profile_cache.attach_store cache s;
    List.iter (Profile_cache.register_table cache) (Database.tables source));
  (* Target-side artefacts: reuse the shared prepared artefact when the
     caller holds one (the serve daemon prepares a registered target
     once), otherwise prepare inline — fail-fast exactly when there is
     no report to absorb a warm failure, preserving the legacy
     contract.  Prepared warm issues are replayed into this build's
     report (in their original column order, before any fan-out issue),
     so the report is identical whether the target was prepared by this
     very call or minutes earlier by another one. *)
  let prepared =
    match prepared with
    | Some p -> p
    | None -> prepare_target ?store ~kernel ~fail_fast:(report = None) ~target ()
  in
  (match report with
  | Some r -> List.iter (Robust.Report.add r) prepared.pt_issues
  | None -> ());
  let target_cols = prepared.pt_cols in
  let target_index = prepared.pt_index in
  let tgt_cache = prepared.pt_cache in
  (* Partition composition of view profiles rides the kernel switch —
     the bench's kernel-off mode measures the legacy path.  A kernel
     disabled for this build also ignores a prepared index: pruning and
     batching decide cost only, never a score, so results stay
     bit-identical either way. *)
  Profile_cache.set_partitioning cache kernel;
  let score_kernel = if kernel then prepared.pt_kernel else None in
  (* Resolve and validate the operator graph.  The default plan is the
     legacy pipeline verbatim (single fused score stage, no filter), so
     a caller that passes no plan gets bit-identical behaviour to the
     pre-plan code.  The filter's candidate retrieval works with or
     without a kernel (the exact fallback coincides by construction),
     so a plan's result never depends on the kernel switch. *)
  let specs = Matchers.plan_specs matchers in
  let plan =
    match plan with Some p -> p | None -> Plan.default ~gated ~matchers:specs ()
  in
  (match Plan.validate ~matchers:specs plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Standard_match.build: " ^ msg));
  let filter = Plan.filter_params plan in
  (* Executable matchers in plan scoring order.  Scoring order is
     result-invariant — every per-matcher artefact is keyed by matcher
     name and the combination step walks [matchers] in its original
     order — so a rewrite that reorders matchers changes cost only. *)
  let exec_matchers =
    List.map
      (fun name -> List.find (fun (mm : Matcher.t) -> String.equal mm.Matcher.name name) matchers)
      (Plan.score_order plan)
  in
  let spec_of (mm : Matcher.t) =
    List.find (fun s -> String.equal s.Plan.Op.m_name mm.Matcher.name) specs
  in
  let pairs =
    List.concat_map
      (fun src_tbl ->
        List.map
          (fun src_attr -> (src_tbl, src_attr))
          (Schema.attribute_names (Table.schema src_tbl)))
      (Database.tables source)
    |> Array.of_list
  in
  let pool = Runtime.Pool.get ~jobs in
  (* Freeze the source-side partition families at build time, like
     [prepare_target] freezes target artefacts: view scoring later
     composes categorical-view profiles/distincts/words from these warm
     per-group artefacts instead of first-touch tokenising inside the
     scoring phase.  Warming rides the kernel switch with partition
     composition itself; it never changes a value, only when it is
     computed. *)
  if kernel then
    Obs.Trace.with_span "warm_families" (fun () ->
        List.iter (Column.warm_families ~pool cache) (Database.tables source));
  (* Sharded-kernel pre-pass.  [Runtime.Pool] is not re-entrant, so the
     kernel's sharded TAAT can only fan out from this domain — never
     from inside the per-attribute units below.  When the target side
     is big enough for sharding to pay (>= [Score_kernel.shard_threshold]
     slots), the textual source profiles are warmed pool-parallel first
     (through the shared memo the units read), then each filter probe /
     batch scoring runs here with the pool reaching the kernel inner
     loop.  The units consult the precomputed tables — read-only during
     the fan-out — and fall back inline for anything the pre-pass
     skipped; sharded and sequential accumulation concatenate to the
     same array, so results are bit-identical either way.  Below the
     threshold the per-attribute fan-out is the better use of the
     domains and the pre-pass stays off. *)
  let pre_sharded =
    jobs > 1
    && (match score_kernel with
       | Some k -> Score_kernel.size k >= Score_kernel.shard_threshold
       | None -> false)
  in
  let pre_filter = Hashtbl.create 16 in
  let pre_batch = Hashtbl.create 16 in
  if pre_sharded then
    Obs.Trace.with_span "kernel_prepass" (fun () ->
        let textual_pairs =
          Array.to_list pairs
          |> List.filter_map (fun (src_tbl, src_attr) ->
                 let col = Column.of_table ~cache src_tbl src_attr in
                 if Relational.Attribute.is_textual (Column.attribute col) then
                   Some (Table.name src_tbl, src_attr, col)
                 else None)
        in
        (* a failing profile is left for its unit to re-raise, so the
           quarantine report stays identical to the non-sharded run *)
        ignore
          (Runtime.Pool.map_list pool
             (fun (_, _, col) ->
               match Column.profile col with _ -> () | exception _ -> ())
             textual_pairs);
        let qgram_in_suite =
          List.exists
            (fun (mm : Matcher.t) -> mm.Matcher.kernel = Matcher.Qgram_cosine)
            exec_matchers
        in
        List.iter
          (fun (tname, attr, col) ->
            match Column.profile col with
            | exception _ -> ()
            | profile -> (
              match (filter, score_kernel) with
              | Some (k, ftau), _ ->
                Hashtbl.replace pre_filter (tname, attr)
                  (qgram_candidates ~pool ~kernel:score_kernel ~target_cols profile ~k
                     ~tau:ftau)
              | None, Some kern when qgram_in_suite ->
                Hashtbl.replace pre_batch (tname, attr) (Score_kernel.scores ~pool kern profile)
              | None, _ -> ()))
          textual_pairs);
  let score_pair (src_tbl, src_attr) =
    let src_name = Table.name src_tbl in
    Robust.Fault.check Robust.Fault.Matcher_score ~key:(src_name ^ "." ^ src_attr);
    let src_col = Column.of_table ~cache src_tbl src_attr in
    let src_textual = Relational.Attribute.is_textual (Column.attribute src_col) in
    (* Plan [Filter] stage: top-k q-gram candidate retrieval for this
       source attribute.  Filterable matchers then score their
       textual-textual pairs only against survivors; every other
       (matcher, pair) combination is untouched.  The survivor table
       also memoises the filter probe's exact cosines, which the q-gram
       matcher reuses directly — the filter pays for that matcher's
       scoring, it never duplicates it. *)
    let filter_cands =
      match filter with
      | Some (k, ftau) when src_textual ->
        let cands =
          match Hashtbl.find_opt pre_filter (src_name, src_attr) with
          | Some cands -> cands
          | None ->
            qgram_candidates ~kernel:score_kernel ~target_cols (Column.profile src_col) ~k
              ~tau:ftau
        in
        let tbl = Hashtbl.create 32 in
        List.iter (fun (key, s) -> Hashtbl.replace tbl key s) cands;
        Some tbl
      | _ -> None
    in
    let pruned = ref 0 in
    let observed = !Obs.Recorder.enabled in
    let bp_scores =
      List.map
        (fun matcher ->
          let spec = spec_of matcher in
          let t0 = if observed then Robust.Deadline.now_ns () else 0L in
          (* Raw scores of this matcher from this source attribute to
             every applicable target attribute. *)
          (* Inapplicable pairs count as score 0 in the distribution
             (they are real alternatives the matcher cannot rank),
             anchoring the z-normalisation at an absolute floor; but
             they never contribute a confidence to the combination
             step.  Filtered-out pairs are treated the same way: the
             0 stays in the distribution, the pair contributes no
             confidence. *)
          let scores = ref [] in
          let applicable = ref [] in
          let record tgt_table tgt_attr s =
            applicable := (tgt_table, tgt_attr, s) :: !applicable;
            scores := s :: !scores
          in
          let filtering = filter_cands <> None && spec.Plan.Op.m_filterable in
          (* The q-gram matcher is batch-scored through the inverted
             index: one pass over the source profile's postings replaces
             a merge join per target.  A target has a kernel slot iff it
             is textual, exactly the matcher's applicability for a
             textual source, and the batched cosines are bit-identical
             to the pairwise ones (see {!Textsim.Gram_index}), so this
             branch changes cost only.  Under an active filter the
             matcher reads the filter probe's cosines instead. *)
          let batch =
            match (matcher.Matcher.kernel, score_kernel) with
            | Matcher.Qgram_cosine, Some k when src_textual && not filtering ->
              let arr =
                match Hashtbl.find_opt pre_batch (src_name, src_attr) with
                | Some arr -> arr
                | None -> Score_kernel.scores k (Column.profile src_col)
              in
              Some (k, arr)
            | _ -> None
          in
          List.iter
            (fun tgt ->
              let tgt_attr = Column.name tgt.column in
              match filter_cands with
              | Some cands
                when spec.Plan.Op.m_filterable
                     && Relational.Attribute.is_textual (Column.attribute tgt.column) -> (
                match Hashtbl.find_opt cands (tgt.table, tgt_attr) with
                | Some s when matcher.Matcher.kernel = Matcher.Qgram_cosine ->
                  (* exact cosine from the filter probe; same clamp
                     [Matcher.score] applies *)
                  record tgt.table tgt_attr (Float.min 1.0 (Float.max 0.0 s))
                | Some _ -> record tgt.table tgt_attr (Matcher.score matcher src_col tgt.column)
                | None ->
                  incr pruned;
                  scores := 0.0 :: !scores)
              | Some _ | None -> (
                match batch with
                | Some (k, arr) -> (
                  match Score_kernel.slot k ~table:tgt.table ~attr:tgt_attr with
                  | Some slot ->
                    (* same clamp [Matcher.score] applies *)
                    record tgt.table tgt_attr (Float.min 1.0 (Float.max 0.0 arr.(slot)))
                  | None -> scores := 0.0 :: !scores)
                | None ->
                  if Matcher.applicable_pair matcher src_col tgt.column then
                    record tgt.table tgt_attr (Matcher.score matcher src_col tgt.column)
                  else scores := 0.0 :: !scores))
            target_cols;
          if observed then begin
            let cls = Plan.Op.class_name spec.Plan.Op.m_class in
            Obs.Metrics.add ("plan.score_pairs." ^ cls) (List.length !applicable);
            Obs.Metrics.observe_ns ("plan.score_ns." ^ cls)
              (Int64.sub (Robust.Deadline.now_ns ()) t0)
          end;
          let stats =
            if !applicable <> [] then Some (Normalize.of_scores (Array.of_list !scores))
            else None
          in
          (matcher.Matcher.name, !applicable, stats))
        exec_matchers
    in
    let bp_scored =
      List.fold_left (fun acc (_, applicable, _) -> acc + List.length applicable) 0 bp_scores
    in
    { bp_table = src_name; bp_attr = src_attr; bp_column = src_col; bp_scores; bp_scored;
      bp_pruned = !pruned }
  in
  let built =
    Obs.Trace.with_span "score_pairs" (fun () ->
        Runtime.Pool.map_array_results pool ~deadline score_pair pairs)
  in
  (* Deterministic merge: results arrive in pair-index order whatever
     the scheduling; every hash key is unique, so the tables end up
     identical to the sequential build's.  A failed unit quarantines
     exactly its source attribute: with a [report] the issue is
     recorded (in index order, so reports are jobs-invariant too) and
     the attribute simply contributes no raw scores or stats — without
     one, the first failure re-raises, preserving the legacy
     fail-fast contract. *)
  let source_cols = Hashtbl.create 64 in
  let stats = Hashtbl.create 256 in
  let raw = Hashtbl.create 4096 in
  let pairs_scored = ref 0 in
  let pairs_pruned = ref 0 in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Error e ->
        let src_tbl, src_attr = pairs.(i) in
        (match report with
        | None -> raise e
        | Some r ->
          Robust.Report.record r ~table:(Table.name src_tbl) ~attribute:src_attr
            Robust.Error.Build
            (Printf.sprintf "source attribute skipped: %s" (Printexc.to_string e)))
      | Ok bp ->
        pairs_scored := !pairs_scored + bp.bp_scored;
        pairs_pruned := !pairs_pruned + bp.bp_pruned;
        Hashtbl.replace source_cols (bp.bp_table, bp.bp_attr) bp.bp_column;
        List.iter
          (fun (matcher_name, applicable, st) ->
            List.iter
              (fun (tgt_table, tgt_attr, s) ->
                Hashtbl.replace raw
                  (bp.bp_table, bp.bp_attr, tgt_table, tgt_attr, matcher_name) s)
              applicable;
            match st with
            | Some st -> Hashtbl.replace stats (bp.bp_table, bp.bp_attr, matcher_name) st
            | None -> ())
          bp.bp_scores)
    built;
  (* Counters recorded from this deterministic merge (main domain,
     index order), so their values are identical at every jobs count. *)
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.add "match.source_attrs" (Array.length pairs);
    Obs.Metrics.add "match.target_cols" (List.length target_cols);
    Obs.Metrics.add "match.raw_scores" (Hashtbl.length raw);
    Obs.Metrics.add "plan.pairs_scored" !pairs_scored;
    Obs.Metrics.add "plan.pairs_pruned" !pairs_pruned
  end;
  {
    gated;
    matchers;
    plan;
    pairs_scored = !pairs_scored;
    pairs_pruned = !pairs_pruned;
    source_db = source;
    target_db = target;
    target_cols;
    target_index;
    source_cols;
    stats;
    raw;
    cache;
    tgt_cache;
    kernel = score_kernel;
  }

(* Top-k retrieval by raw q-gram cosine over an already-built model;
   see [qgram_candidates] for the kernel/exact equivalence contract. *)
let top_qgram_matches m ~src_table ~src_attr ~k ~tau =
  match Hashtbl.find_opt m.source_cols (src_table, src_attr) with
  | None -> []
  | Some src_col when not (Relational.Attribute.is_textual (Column.attribute src_col)) -> []
  | Some src_col ->
    qgram_candidates ~kernel:m.kernel ~target_cols:m.target_cols (Column.profile src_col) ~k ~tau

let confidence m ~src_table ~src_attr ~tgt_table ~tgt_attr =
  let weighted =
    List.filter_map
      (fun (matcher : Matcher.t) ->
        match
          Hashtbl.find_opt m.raw (src_table, src_attr, tgt_table, tgt_attr, matcher.name)
        with
        | None -> None
        | Some score -> (
          match Hashtbl.find_opt m.stats (src_table, src_attr, matcher.name) with
          | None -> None
          | Some st -> Some (matcher.weight, (if m.gated then Normalize.gated_confidence else Normalize.confidence) st score)))
      m.matchers
  in
  Normalize.combine weighted

let matches_from m ~src_table ~tau =
  let src_tbl = Database.table m.source_db src_table in
  let results = ref [] in
  List.iter
    (fun src_attr ->
      List.iter
        (fun tgt ->
          let tgt_attr = Column.name tgt.column in
          let conf = confidence m ~src_table ~src_attr ~tgt_table:tgt.table ~tgt_attr in
          if conf >= tau then
            results :=
              Schema_match.standard ~src_table ~src_attr ~tgt_table:tgt.table ~tgt_attr conf
              :: !results)
        m.target_cols)
    (Schema.attribute_names (Table.schema src_tbl));
  List.sort
    (fun (a : Schema_match.t) b -> Float.compare b.confidence a.confidence)
    !results

let matches m ~tau =
  Database.table_names m.source_db
  |> List.concat_map (fun src_table -> matches_from m ~src_table ~tau)
  |> List.sort (fun (a : Schema_match.t) b -> Float.compare b.confidence a.confidence)

let score_view m view ~src_attr ~tgt_table ~tgt_attr =
  if View.row_count view = 0 then 0.0
  else begin
    let src_table = Table.name (View.base view) in
    let src_col = Column.of_view ~cache:m.cache view src_attr in
    let weighted =
      List.filter_map
        (fun (matcher : Matcher.t) ->
          match Hashtbl.find_opt m.stats (src_table, src_attr, matcher.name) with
          | None -> None
          | Some st ->
            let tgt = Hashtbl.find_opt m.target_index (tgt_table, tgt_attr) in
            (match tgt with
            | None -> None
            | Some tgt when Matcher.applicable_pair matcher src_col tgt.column ->
              let s = Matcher.score matcher src_col tgt.column in
              Some (matcher.weight, (if m.gated then Normalize.gated_confidence else Normalize.confidence) st s)
            | Some _ -> None))
        m.matchers
    in
    Normalize.combine weighted
  end

let view_matches m view ~base_matches =
  (* Runs inside pool tasks: metrics only (sharded counters sum the
     same whatever the scheduling), no per-view span, to keep traces
     readable.  Each view is scored exactly once, so the counter is
     jobs-invariant. *)
  let observed = !Obs.Recorder.enabled in
  let score_start = if observed then Robust.Deadline.now_ns () else 0L in
  Fun.protect
    ~finally:(fun () ->
      if observed then begin
        Obs.Metrics.incr "match.views_scored";
        Obs.Metrics.observe_ns "match.view_score_ns"
          (Int64.sub (Robust.Deadline.now_ns ()) score_start)
      end)
  @@ fun () ->
  let base_name = Table.name (View.base view) in
  (* Reuse one Column per source attribute of the view across matchers:
     the Column caches its profile/summary internally, and the model's
     profile cache shares them with any other view on the same rows. *)
  let col_cache = Hashtbl.create 8 in
  let view_column attr =
    match Hashtbl.find_opt col_cache attr with
    | Some c -> c
    | None ->
      let c = Column.of_view ~cache:m.cache view attr in
      Hashtbl.add col_cache attr c;
      c
  in
  let score_one (bm : Schema_match.t) =
    if View.row_count view = 0 then None
    else begin
      let src_col = view_column bm.src_attr in
      let weighted =
        List.filter_map
          (fun (matcher : Matcher.t) ->
            match Hashtbl.find_opt m.stats (base_name, bm.src_attr, matcher.name) with
            | None -> None
            | Some st ->
              let tgt = Hashtbl.find_opt m.target_index (bm.tgt_table, bm.tgt_attr) in
              (match tgt with
              | Some tgt when Matcher.applicable_pair matcher src_col tgt.column ->
                let s = Matcher.score matcher src_col tgt.column in
                Some (matcher.weight, (if m.gated then Normalize.gated_confidence else Normalize.confidence) st s)
              | Some _ | None -> None))
          m.matchers
      in
      match weighted with
      | [] -> None
      | _ ->
        Some
          (Schema_match.contextual ~view_name:(View.name view) ~src_base:base_name
             ~src_attr:bm.src_attr ~tgt_table:bm.tgt_table ~tgt_attr:bm.tgt_attr
             ~condition:(View.condition view) (Normalize.combine weighted))
    end
  in
  (* Matches on the view's conditioning attribute(s) are not re-scored:
     the paper's views project the selection attribute away (§4.2,
     Example 4.1), and inside the view the column is constant anyway. *)
  let condition_attrs = Relational.Condition.attributes (View.condition view) in
  base_matches
  |> List.filter (fun (bm : Schema_match.t) ->
         String.equal bm.src_base base_name
         && not (List.mem bm.src_attr condition_attrs))
  |> List.filter_map score_one
