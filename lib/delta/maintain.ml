open Relational

type outcome = Patched | Rebuilt of string

type t = {
  m_store : Store.t option;
  m_kernel : bool;
  m_churn : float;
  m_compact_after : int;
  mutable m_target : Database.t;
  mutable m_prepared : Matching.Standard_match.prepared_target;
  mutable m_states : (string * Profiles.t) list;
  mutable m_generation : int;
  m_chain : (string, int) Hashtbl.t;
}

let create ?store ?(kernel = true) ?(churn = 0.25) ?(compact_after = 32) ?(cond_attrs = [])
    ~target ~prepared () =
  {
    m_store = store;
    m_kernel = kernel;
    m_churn = churn;
    m_compact_after = compact_after;
    m_target = target;
    m_prepared = prepared;
    m_states =
      List.map
        (fun tbl ->
          let name = Table.name tbl in
          let ca = Option.value ~default:[] (List.assoc_opt name cond_attrs) in
          (name, Profiles.create ~cond_attrs:ca tbl))
        (Database.tables target);
    m_generation = 0;
    m_chain = Hashtbl.create 8;
  }

let prepared t = t.m_prepared
let target t = t.m_target
let generation t = t.m_generation
let churn_limit t = t.m_churn
let profiles t name = List.assoc_opt name t.m_states

let update t delta =
  let tname = Core.table delta in
  match List.assoc_opt tname t.m_states with
  | None -> Error (Printf.sprintf "unknown table %S" tname)
  | Some st -> (
    match Core.validate delta (Profiles.table st) with
    | Error m -> Error m
    | Ok () ->
      let old_table = Profiles.table st in
      let old_digest =
        match t.m_store with Some _ -> Some (Profiles.digest st) | None -> None
      in
      let old_rows = Table.row_count old_table in
      let deleted = Core.deleted_rows delta old_table in
      (* The injection point for delta chaos: fires before any state is
         touched, so an injected failure leaves the maintained state,
         the prepared artefact and the store exactly as they were. *)
      Robust.Fault.check Robust.Fault.Delta_apply
        ~key:(Printf.sprintf "%s:%d" tname (t.m_generation + 1));
      let finish_rebuild reason =
        let new_table = Core.apply delta old_table in
        let st' = Profiles.create ~cond_attrs:(Profiles.cond_attrs st) new_table in
        let target = Database.replace_table t.m_target new_table in
        let prepared =
          Matching.Standard_match.prepare_target ?store:t.m_store ~kernel:t.m_kernel ~target ()
        in
        (* A cold rebuild wrote every artefact through under the new
           digest — the head state is a base snapshot again, so the old
           chain folds away. *)
        (match (t.m_store, old_digest) with
        | Some s, Some from_ ->
          ignore (Store.compact_deltas s ~table:tname ~data:from_);
          Hashtbl.replace t.m_chain tname 0
        | _ -> ());
        t.m_states <-
          List.map (fun (n, x) -> if String.equal n tname then (n, st') else (n, x)) t.m_states;
        t.m_target <- target;
        t.m_prepared <- prepared;
        t.m_generation <- t.m_generation + 1;
        if !Obs.Recorder.enabled then Obs.Metrics.incr "delta.rebuilds";
        Ok (Rebuilt reason)
      in
      let churn = Core.churn delta old_table in
      if churn > t.m_churn then
        finish_rebuild (Printf.sprintf "churn %.3f exceeds limit %.3f" churn t.m_churn)
      else begin
        Profiles.apply st delta;
        let patches = Profiles.column_patches st in
        let digest =
          match t.m_store with Some _ -> Some (Profiles.digest st) | None -> None
        in
        match
          Matching.Standard_match.patch_prepared ?store:t.m_store t.m_prepared
            ~table:(Profiles.table st) ?digest ~patches ()
        with
        | None ->
          (* the frozen interner cannot absorb the new grams; the cold
             path can ([finish_rebuild] reapplies the delta to the
             untouched old table) *)
          finish_rebuild "out-of-vocabulary grams"
        | Some prepared ->
          (match (t.m_store, old_digest, digest) with
          | Some s, Some from_, Some to_ ->
            Store.add_delta s
              {
                Store.dr_table = tname;
                dr_from = from_;
                dr_to = to_;
                dr_from_rows = old_rows;
                dr_appends = Core.appends delta;
                dr_deletes = Core.deletes delta;
                dr_deleted_rows = deleted;
              };
            let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.m_chain tname) in
            if n >= t.m_compact_after then begin
              ignore (Store.compact_deltas s ~table:tname ~data:to_);
              Hashtbl.replace t.m_chain tname 0
            end
            else Hashtbl.replace t.m_chain tname n
          | _ -> ());
          t.m_target <- Database.replace_table t.m_target (Profiles.table st);
          t.m_prepared <- prepared;
          t.m_generation <- t.m_generation + 1;
          if !Obs.Recorder.enabled then Obs.Metrics.incr "delta.patched";
          Ok Patched
      end)
