open Relational

type t = {
  d_table : string;
  d_appends : Value.t array array;
  d_deletes : int array;
}

let make ~table ~appends ~deletes =
  let deletes = List.sort_uniq Int.compare (Array.to_list deletes) |> Array.of_list in
  { d_table = table; d_appends = appends; d_deletes = deletes }

let table d = d.d_table
let appends d = d.d_appends
let deletes d = d.d_deletes
let size d = Array.length d.d_appends + Array.length d.d_deletes

let validate d tbl =
  let arity = Table.arity tbl in
  let rows = Table.row_count tbl in
  let bad = ref None in
  Array.iteri
    (fun k row ->
      if !bad = None && Array.length row <> arity then
        bad :=
          Some
            (Printf.sprintf "append row %d has arity %d, table %S has %d" k (Array.length row)
               d.d_table arity))
    d.d_appends;
  Array.iter
    (fun i ->
      if !bad = None && (i < 0 || i >= rows) then
        bad := Some (Printf.sprintf "delete index %d outside [0, %d)" i rows))
    d.d_deletes;
  match !bad with None -> Ok () | Some m -> Error m

let deleted_rows d tbl =
  let rows = Table.rows tbl in
  Array.map (fun i -> rows.(i)) d.d_deletes

(* Surviving rows keep their original order (ascending indices through
   [sub_by_indices]), appended rows follow — the canonical shape every
   consumer (profiles, digests, cold rebuilds) agrees on. *)
let apply d tbl =
  let rows = Table.row_count tbl in
  let deleted = Array.make (max 1 rows) false in
  Array.iter (fun i -> deleted.(i) <- true) d.d_deletes;
  let kept = ref [] in
  for i = rows - 1 downto 0 do
    if not deleted.(i) then kept := i :: !kept
  done;
  let base = Table.sub_by_indices tbl (Array.of_list !kept) in
  if Array.length d.d_appends = 0 then base
  else Table.concat_rows base (Table.of_rows (Table.schema tbl) d.d_appends)

let churn d tbl = float_of_int (size d) /. float_of_int (max 1 (Table.row_count tbl))
