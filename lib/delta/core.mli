(** One batch of row mutations against a named table.

    A delta is a set of appended rows plus a set of deleted row indices
    (interpreted against the {e old} table, before any append).  This is
    the unit the incremental-maintenance layer patches profiles, distinct
    sets, norms and the inverted index by — O(delta) instead of O(table)
    — and the unit [Store.delta_record] persists. *)

type t

val make :
  table:string -> appends:Relational.Value.t array array -> deletes:int array -> t
(** Delete indices are deduplicated and sorted ascending; appended rows
    are taken as given (validated by {!validate}). *)

val table : t -> string
val appends : t -> Relational.Value.t array array

val deletes : t -> int array
(** Ascending, duplicate-free, relative to the old table's rows. *)

val size : t -> int
(** Appends plus deletes. *)

val validate : t -> Relational.Table.t -> (unit, string) result
(** Arity of every appended row and bounds of every delete index against
    the table the delta claims to apply to. *)

val deleted_rows : t -> Relational.Table.t -> Relational.Value.t array array
(** Snapshot of the rows the delta removes (read from the old table),
    for invertible persistence. *)

val apply : t -> Relational.Table.t -> Relational.Table.t
(** Pure application: surviving rows in their original order, appended
    rows after them.  The input table is untouched. *)

val churn : t -> Relational.Table.t -> float
(** [size / max 1 row_count] of the old table — the rebuild-threshold
    metric. *)
