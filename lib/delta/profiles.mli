(** Delta-maintained per-table column artefacts.

    One value of [t] tracks a table and every artefact the matcher
    derives from it — q-gram profiles, distinct sets, word sets,
    per-condition-value partition profiles — and patches them in
    O(delta) as {!Core.t} mutations arrive, instead of re-scanning the
    table.

    {2 Exactness}

    Profiles and distinct/word multisets are integer bags, and a row's
    contribution is folded in and out with exact integer inverses
    ({!Textsim.Profile.patch}, multiset increment/decrement), so after
    any append/delete interleaving the maintained state equals — bag
    for bag, hence score for score, bit for bit — a cold scan of the
    surviving rows.  The one exception is the numeric {!summary}, which
    is not an invertible integer algebra and is recomputed over the
    current rows with the cold path's exact fold. *)

type t

val create : ?cond_attrs:string list -> Relational.Table.t -> t
(** Scan [table] once and take ownership of its maintained state.
    [cond_attrs] names the condition attributes whose per-value
    partition profiles should also be maintained (unknown names are
    ignored). *)

val apply : t -> Core.t -> unit
(** Patch every maintained artefact by the delta and advance the
    current table ({!Core.apply}).  O(delta) for profiles and
    distinct/word sets.  Raises [Invalid_argument] when
    {!Core.validate} rejects the delta; the state is then unchanged. *)

val table : t -> Relational.Table.t
(** The current (post-delta) table. *)

val name : t -> string

val digest : t -> string
(** {!Store.table_digest} of the current table, computed lazily and
    cached until the next {!apply}. *)

val cond_attrs : t -> string list

val profile : t -> string -> Textsim.Profile.t option
(** Maintained q-gram profile of a textual attribute (a fresh copy —
    callers cannot corrupt the maintained state).  [None] for unknown
    or non-textual attributes; same convention below. *)

val distinct : t -> string -> string list option
(** Distinct display strings, sorted — textual and int attributes. *)

val words : t -> string -> string list option
(** Distinct word tokens, sorted — textual attributes. *)

val summary : t -> string -> Stats.Descriptive.summary option
(** Numeric summary over the current rows (recomputed, see above). *)

val partition_profile :
  t -> cond_attr:string -> value:Relational.Value.t -> attr:string ->
  Textsim.Profile.t option
(** Maintained partition profile of [attr] restricted to the rows where
    [cond_attr] holds [value] (grouping under [Value.compare]). *)

val column_patches : t -> Matching.Standard_match.column_patch list
(** The maintained artefacts of every attribute, shaped for
    {!Matching.Standard_match.patch_prepared}. *)

val seed : t -> Matching.Profile_cache.t -> unit
(** Seed [cache] (and its attached store, if any) with the maintained
    artefacts under the exact keys cold computation uses: full-range
    keys per attribute, partition-group keys per condition attribute.
    Registers the current table digest.  A condition value present only
    in deleted rows has no group in the cold partition and is skipped. *)
