(** Orchestration of live target maintenance: a prepared target plus
    per-table {!Profiles} state, advanced delta by delta.

    Each successful {!update} yields a {e new} prepared-target artefact
    — the previous one is never mutated, so readers of an older
    generation stay valid and a failed update leaves no trace.  Small
    deltas take the O(delta) patch path
    ({!Matching.Standard_match.patch_prepared}); a delta whose churn
    exceeds the limit, or whose rows hold grams outside the frozen
    kernel dictionary, falls back to a cold
    {!Matching.Standard_match.prepare_target} — the two paths produce
    bit-identical match results, which is the differential suite's
    central claim.

    With a store, each patch records a {!Store.delta_record} chaining
    the new table digest off the old one; chains are folded back into a
    base snapshot ([Store.compact_deltas]) after [compact_after]
    patches and on every rebuild.  Updates pass the
    [Robust.Fault.Delta_apply] site (key ["table:generation"]) before
    touching any state. *)

type outcome =
  | Patched  (** O(delta) patch of profiles, index and artefact *)
  | Rebuilt of string  (** cold rebuild; the reason (churn, vocabulary) *)

type t

val create :
  ?store:Store.t ->
  ?kernel:bool ->
  ?churn:float ->
  ?compact_after:int ->
  ?cond_attrs:(string * string list) list ->
  target:Relational.Database.t ->
  prepared:Matching.Standard_match.prepared_target ->
  unit ->
  t
(** Take over maintenance of [prepared] (built over [target]).  Scans
    each table once to seed the maintained state.  [kernel] must match
    the flag [prepared] was built with (it governs rebuilds).  [churn]
    (default 0.25) is the patch/rebuild threshold on
    {!Core.churn}; [compact_after] (default 32) bounds store
    delta-chain length; [cond_attrs] maps table names to condition
    attributes whose partition profiles are maintained too. *)

val update : t -> Core.t -> (outcome, string) result
(** Apply one delta: validate, pass the fault site, then patch or
    rebuild (see above).  [Error] on an unknown table or a delta that
    fails {!Core.validate} — the state is unchanged.  An escaping
    exception (e.g. an injected fault) also leaves the previous
    generation fully intact. *)

val prepared : t -> Matching.Standard_match.prepared_target
(** The current generation's artefact. *)

val target : t -> Relational.Database.t
(** The current (post-delta) target database. *)

val generation : t -> int
(** Successful updates so far (0 at creation). *)

val churn_limit : t -> float
val profiles : t -> string -> Profiles.t option
