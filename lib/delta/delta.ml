(* Library root: the delta algebra itself ({!Core}) plus the maintained
   per-table state ({!Profiles}) and the serve-facing orchestration
   ({!Maintain}). *)

include Core
module Profiles = Profiles
module Maintain = Maintain
