open Relational

(* Maintained artefacts of one attribute.  Distinct/word sets are kept
   as occurrence multisets: deletion is exact integer decrement, and the
   distinct *set* a cold scan computes is exactly the multiset's key set
   — a value vanishes when its last occurrence does, never before. *)
type attr_state = {
  a_attr : string;
  a_textual : bool;
  a_numeric : bool;
  a_profile : Textsim.Profile.t option;
  a_distinct : (string, int) Hashtbl.t option;
  a_words : (string, int) Hashtbl.t option;
}

(* Per condition attribute: the per-value partition profiles of every
   textual attribute (PR 5's invertible partition algebra, now patched
   in both directions).  Values are grouped under [Value.compare], like
   [Profile_cache.partition]. *)
type partition_state = {
  ps_cond : string;
  mutable ps_groups : (Value.t * (string, Textsim.Profile.t) Hashtbl.t) list;
}

type t = {
  mutable p_table : Table.t;
  mutable p_digest : string option;
  p_attrs : attr_state list;
  p_parts : partition_state list;
}

let copy_profile p = Textsim.Profile.of_counts ~q:(Textsim.Profile.q p) (Textsim.Profile.counts p)

let multiset_add h s = Hashtbl.replace h s (1 + Option.value ~default:0 (Hashtbl.find_opt h s))

let multiset_remove h s =
  match Hashtbl.find_opt h s with
  | None | Some 0 -> invalid_arg "Delta.Profiles: removing an absent occurrence"
  | Some 1 -> Hashtbl.remove h s
  | Some n -> Hashtbl.replace h s (n - 1)

let multiset_keys h =
  Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort String.compare

let cell_string v = if Value.is_null v then None else Some (Value.to_string v)

let find_group ps v = List.find_opt (fun (gv, _) -> Value.compare gv v = 0) ps.ps_groups

let group_profile groups attr =
  match Hashtbl.find_opt groups attr with
  | Some p -> p
  | None ->
    let p = Textsim.Profile.of_strings [] in
    Hashtbl.replace groups attr p;
    p

let textual_attrs t = List.filter (fun a -> a.a_textual) t.p_attrs

(* Fold one row into (dir = +1) or out of (dir = -1) the maintained
   state.  The two directions are exact integer inverses, so any
   append/delete interleaving lands on the same state as a cold scan of
   the surviving rows. *)
let fold_row t schema dir row =
  List.iter
    (fun a ->
      let v = row.(Schema.index_of schema a.a_attr) in
      match cell_string v with
      | None -> ()
      | Some s ->
        (match a.a_profile with
        | Some p ->
          if dir > 0 then Textsim.Profile.patch p ~add:[ s ] ~remove:[]
          else Textsim.Profile.patch p ~add:[] ~remove:[ s ]
        | None -> ());
        (match a.a_distinct with
        | Some h -> if dir > 0 then multiset_add h s else multiset_remove h s
        | None -> ());
        (match a.a_words with
        | Some h ->
          List.iter
            (fun w -> if dir > 0 then multiset_add h w else multiset_remove h w)
            (Textsim.Tokenize.words s)
        | None -> ()))
    t.p_attrs;
  List.iter
    (fun ps ->
      let cv = row.(Schema.index_of schema ps.ps_cond) in
      if not (Value.is_null cv) then begin
        let groups =
          match find_group ps cv with
          | Some (_, g) -> g
          | None ->
            let g = Hashtbl.create 8 in
            ps.ps_groups <- (cv, g) :: ps.ps_groups;
            g
        in
        List.iter
          (fun a ->
            match cell_string row.(Schema.index_of schema a.a_attr) with
            | None -> ()
            | Some s ->
              let p = group_profile groups a.a_attr in
              if dir > 0 then Textsim.Profile.patch p ~add:[ s ] ~remove:[]
              else Textsim.Profile.patch p ~add:[] ~remove:[ s ])
          (textual_attrs t)
      end)
    t.p_parts

let create ?(cond_attrs = []) table =
  let schema = Table.schema table in
  let attrs =
    List.map
      (fun name ->
        let attr = Schema.attribute schema name in
        let textual = Attribute.is_textual attr in
        let int_distinct = attr.Attribute.ty = Value.Tint in
        {
          a_attr = name;
          a_textual = textual;
          a_numeric = Attribute.is_numeric attr;
          a_profile = (if textual then Some (Textsim.Profile.of_strings []) else None);
          a_distinct =
            (if textual || int_distinct then Some (Hashtbl.create 64) else None);
          a_words = (if textual then Some (Hashtbl.create 64) else None);
        })
      (Schema.attribute_names schema)
  in
  let parts =
    List.filter_map
      (fun cond ->
        match Schema.index_of_opt schema cond with
        | Some _ -> Some { ps_cond = cond; ps_groups = [] }
        | None -> None)
      (List.sort_uniq String.compare cond_attrs)
  in
  let t = { p_table = table; p_digest = None; p_attrs = attrs; p_parts = parts } in
  Array.iter (fold_row t schema 1) (Table.rows table);
  t

let table t = t.p_table
let name t = Table.name t.p_table
let cond_attrs t = List.map (fun ps -> ps.ps_cond) t.p_parts

let digest t =
  match t.p_digest with
  | Some d -> d
  | None ->
    let d = Store.table_digest t.p_table in
    t.p_digest <- Some d;
    d

let apply t delta =
  (match Core.validate delta t.p_table with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "Delta.Profiles.apply: %s" m));
  let schema = Table.schema t.p_table in
  let removed = Core.deleted_rows delta t.p_table in
  let new_table = Core.apply delta t.p_table in
  Array.iter (fold_row t schema (-1)) removed;
  Array.iter (fold_row t schema 1) (Core.appends delta);
  t.p_table <- new_table;
  t.p_digest <- None;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "delta.applied";
    Obs.Metrics.add "delta.rows" (Core.size delta)
  end

let attr_state t attr = List.find_opt (fun a -> String.equal a.a_attr attr) t.p_attrs

let profile t attr =
  Option.bind (attr_state t attr) (fun a -> Option.map copy_profile a.a_profile)

let distinct t attr =
  Option.bind (attr_state t attr) (fun a -> Option.map multiset_keys a.a_distinct)

let words t attr = Option.bind (attr_state t attr) (fun a -> Option.map multiset_keys a.a_words)

(* Recomputed over the current rows with the cold path's exact fold
   ([Column.floats] then [summarize]): float summaries are not an
   invertible integer algebra, and the recompute is cheap relative to
   re-tokenization. *)
let summary t attr =
  match attr_state t attr with
  | Some a when a.a_numeric ->
    Some
      (Stats.Descriptive.summarize
         (Array.to_list (Table.column t.p_table attr)
         |> List.filter_map Value.to_float |> Array.of_list))
  | Some _ | None -> None

let partition_profile t ~cond_attr ~value ~attr =
  match List.find_opt (fun ps -> String.equal ps.ps_cond cond_attr) t.p_parts with
  | None -> None
  | Some ps -> (
    match find_group ps value with
    | None -> None
    | Some (_, groups) -> Option.map copy_profile (Hashtbl.find_opt groups attr))

let column_patches t =
  List.map
    (fun a ->
      {
        Matching.Standard_match.cp_attr = a.a_attr;
        cp_profile = Option.map copy_profile a.a_profile;
        cp_distinct = Option.map multiset_keys a.a_distinct;
        cp_words = Option.map multiset_keys a.a_words;
      })
    t.p_attrs

(* Seed a cache (and through it an attached store) with the maintained
   artefacts under the exact keys cold computation uses: the full-range
   key per attribute, and per condition attribute the partition-group
   keys [Profile_cache.partition] would derive from the current rows.
   A value present only in deleted rows has no group in the cold
   partition and is skipped — its maintained (empty) profile describes
   rows that no longer exist. *)
let seed t cache =
  let tname = name t in
  Matching.Profile_cache.register_digest cache ~table:tname ~digest:(digest t);
  let full = Array.init (Table.row_count t.p_table) Fun.id in
  List.iter
    (fun a ->
      let ((tbl, attr, subset) as k) =
        Matching.Profile_cache.key ~table:tname ~attr:a.a_attr ~indices:full
      in
      (match a.a_profile with
      | Some p -> Matching.Profile_cache.seed_profile cache k (copy_profile p)
      | None -> ());
      (match a.a_distinct with
      | Some h -> Matching.Profile_cache.seed_distinct cache k (multiset_keys h)
      | None -> ());
      match a.a_words with
      | Some h ->
        Matching.Profile_cache.seed_distinct cache
          (tbl, Matching.Column.words_attr attr, subset)
          (multiset_keys h)
      | None -> ())
    t.p_attrs;
  List.iter
    (fun ps ->
      let part = Matching.Profile_cache.partition cache ~table:t.p_table ~cond_attr:ps.ps_cond in
      List.iter
        (fun (v, groups) ->
          match Matching.Profile_cache.partition_indices part v with
          | None -> ()
          | Some indices ->
            Hashtbl.iter
              (fun attr p ->
                Matching.Profile_cache.seed_profile cache
                  (Matching.Profile_cache.key ~table:tname ~attr ~indices)
                  (copy_profile p))
              groups)
        ps.ps_groups)
    t.p_parts
