(* Writes go to a per-domain shard (a domain-local hashtable of cells),
   so the hot path never takes a lock and parallel runs do not contend;
   [snapshot] merges the shards.  Shards are registered in a global list
   at domain initialisation and kept alive there, so counts survive the
   domains that produced them (worker domains die on pool resize). *)

let bucket_count = 64

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* power-of-two buckets: index = frexp exponent *)
}

type cell = Counter of { mutable c : int } | Histogram of hist

type shard = (string, cell) Hashtbl.t

let registry_mutex = Mutex.create ()
let shards : shard list ref = ref []
let gauges : (string, float) Hashtbl.t = Hashtbl.create 16

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = Hashtbl.create 32 in
      Mutex.lock registry_mutex;
      shards := s :: !shards;
      Mutex.unlock registry_mutex;
      s)

let cell name make =
  let s = Domain.DLS.get shard_key in
  match Hashtbl.find_opt s name with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.add s name c;
    c

let kind_error name =
  invalid_arg (Printf.sprintf "Obs.Metrics: %s used with two different kinds" name)

let add name by =
  if !Recorder.enabled then
    match cell name (fun () -> Counter { c = 0 }) with
    | Counter r -> r.c <- r.c + by
    | Histogram _ -> kind_error name

let incr name = add name 1

let fresh_hist () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_buckets = Array.make bucket_count 0;
  }

(* Bucket upper bound is 2^i: frexp maps v in (2^(i-1), 2^i] to
   exponent i.  Non-positive values land in bucket 0. *)
let bucket_of v =
  if not (v > 0.0) then 0
  else
    let _, e = Float.frexp v in
    if e < 0 then 0 else if e >= bucket_count then bucket_count - 1 else e

let observe name v =
  if !Recorder.enabled then
    match cell name (fun () -> Histogram (fresh_hist ())) with
    | Histogram h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = bucket_of v in
      h.h_buckets.(b) <- h.h_buckets.(b) + 1
    | Counter _ -> kind_error name

let observe_ns name ns = observe name (Int64.to_float ns)

let set_gauge name v =
  if !Recorder.enabled then begin
    Mutex.lock registry_mutex;
    Hashtbl.replace gauges name v;
    Mutex.unlock registry_mutex
  end

(* -- read side ---------------------------------------------------------- *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list; (* (upper bound, count), non-zero, ascending *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let snapshot () =
  Mutex.lock registry_mutex;
  let shard_list = !shards in
  let gauge_list =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Mutex.unlock registry_mutex;
  let counters : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let hists : (string, hist) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name c ->
          match c with
          | Counter r ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt counters name) in
            Hashtbl.replace counters name (prev + r.c)
          | Histogram h ->
            let acc =
              match Hashtbl.find_opt hists name with
              | Some a -> a
              | None ->
                let a = fresh_hist () in
                Hashtbl.add hists name a;
                a
            in
            acc.h_count <- acc.h_count + h.h_count;
            acc.h_sum <- acc.h_sum +. h.h_sum;
            if h.h_min < acc.h_min then acc.h_min <- h.h_min;
            if h.h_max > acc.h_max then acc.h_max <- h.h_max;
            Array.iteri (fun i n -> acc.h_buckets.(i) <- acc.h_buckets.(i) + n) h.h_buckets)
        s)
    shard_list;
  let sorted tbl view =
    Hashtbl.fold (fun k v acc -> (k, view v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let summarise h =
    let buckets = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.h_buckets.(i) > 0 then
        buckets := (Float.ldexp 1.0 i, h.h_buckets.(i)) :: !buckets
    done;
    {
      count = h.h_count;
      sum = h.h_sum;
      min = (if h.h_count = 0 then 0.0 else h.h_min);
      max = (if h.h_count = 0 then 0.0 else h.h_max);
      buckets = !buckets;
    }
  in
  {
    counters = sorted counters Fun.id;
    gauges = gauge_list;
    histograms = sorted hists summarise;
  }

let counter_value snap name =
  Option.value ~default:0 (List.assoc_opt name snap.counters)

let gauge_value snap name = List.assoc_opt name snap.gauges

let histogram snap name = List.assoc_opt name snap.histograms

let reset () =
  Mutex.lock registry_mutex;
  List.iter Hashtbl.reset !shards;
  Hashtbl.reset gauges;
  Mutex.unlock registry_mutex
