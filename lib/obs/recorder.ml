type event = {
  id : int;
  parent : int;
  name : string;
  path : string;
  ordinal : int;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
}

(* THE hot-path guard.  Instrumentation helpers read this ref first and
   do nothing else when it is false; flipping it is the whole cost of
   carrying observability through the pipeline. *)
let enabled = ref false

let mutex = Mutex.create ()
let epoch = ref 0L
let rev_events : event list ref = ref []
let next_id = ref 0

(* Span identity is (path, ordinal): the nth span opened with a given
   path.  No clock value ever participates in identity, so traces of the
   same run are comparable across machines and repetitions. *)
let ordinals : (string, int) Hashtbl.t = Hashtbl.create 64

let is_enabled () = !enabled

let enable () =
  Mutex.lock mutex;
  if not !enabled then begin
    if !epoch = 0L then epoch := Robust.Deadline.now_ns ();
    enabled := true
  end;
  Mutex.unlock mutex

let disable () = enabled := false

let reset () =
  Mutex.lock mutex;
  rev_events := [];
  next_id := 0;
  Hashtbl.reset ordinals;
  epoch := Robust.Deadline.now_ns ();
  Mutex.unlock mutex

let epoch_ns () = !epoch

let fresh_span path =
  Mutex.lock mutex;
  let id = !next_id in
  next_id := id + 1;
  let ordinal = match Hashtbl.find_opt ordinals path with Some n -> n | None -> 0 in
  Hashtbl.replace ordinals path (ordinal + 1);
  Mutex.unlock mutex;
  (id, ordinal)

let record event =
  Mutex.lock mutex;
  rev_events := event :: !rev_events;
  Mutex.unlock mutex

let events () =
  Mutex.lock mutex;
  let l = !rev_events in
  Mutex.unlock mutex;
  List.sort (fun a b -> compare a.id b.id) l

let event_count () =
  Mutex.lock mutex;
  let n = List.length !rev_events in
  Mutex.unlock mutex;
  n
