(** Typed counters, gauges and histograms in a thread-safe registry.

    Counter and histogram writes go to a {e per-domain shard} (a
    domain-local table), so the hot path takes no lock and parallel
    [--jobs] runs neither contend nor drop updates; {!snapshot} merges
    the shards at read time.  Shards outlive their domains, so counts
    from worker domains that have since been joined still appear in the
    merge.  Gauges are set rarely and live in one mutex-protected
    table (last write wins).

    Every operation is a no-op (one branch) while the
    {!Recorder.enabled} flag is off.  Metric identity is the name
    string alone — use stable, dot-separated names ([pool.tasks],
    [cache.profile.hits]); never embed timestamps or ids.

    Read-side contract: call {!snapshot} and {!reset} from the main
    domain while no parallel batch is in flight (between
    [Runtime.Pool] calls); writes may come from any domain. *)

val add : string -> int -> unit
(** Add to a counter, creating it at 0 on first use. *)

val incr : string -> unit
(** [incr name] = [add name 1]. *)

val observe : string -> float -> unit
(** Record one histogram sample (power-of-two buckets, plus
    count/sum/min/max). *)

val observe_ns : string -> int64 -> unit
(** {!observe} for nanosecond durations. *)

val set_gauge : string -> float -> unit
(** Set a gauge; last write wins across domains. *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
      (** non-empty power-of-two buckets as [(upper bound, count)],
          ascending *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}
(** All association lists sorted by name. *)

val snapshot : unit -> snapshot
(** Merge every domain's shard into one consistent view. *)

val counter_value : snapshot -> string -> int
(** Counter by name, 0 when absent. *)

val gauge_value : snapshot -> string -> float option
(** Gauge by name. *)

val histogram : snapshot -> string -> hist_summary option
(** Histogram summary by name (the serve daemon's stats endpoint reads
    queue-wait and latency histograms through this). *)

val reset : unit -> unit
(** Zero every shard and drop all gauges. *)
