(** Global observability switch and the span-event sink.

    The recorder is process-wide: one [enabled] flag, one event buffer.
    Every instrumentation helper in {!Trace} and {!Metrics} reads
    [enabled] first and the disabled path does nothing else, so
    instrumented code costs a single branch when observability is off —
    matcher output is byte-identical either way.

    Span identity is deterministic: [(path, ordinal)] where [ordinal]
    counts spans opened with that path, in arrival order.  Clock values
    appear only in the [start_ns]/[dur_ns] payload, never in identity,
    so differential tests that compare structure keep passing.

    Thread-safety: events may be recorded from any domain (the buffer is
    mutex-protected); [enable]/[disable]/[reset]/[events] are meant to
    be called from the main domain between parallel batches. *)

type event = {
  id : int;  (** creation order, process-wide *)
  parent : int;  (** id of the enclosing span, [-1] for roots *)
  name : string;  (** leaf name, e.g. ["pool.chunk"] *)
  path : string;  (** ["/"]-joined ancestor names ending in [name] *)
  ordinal : int;  (** nth span with this [path], from 0 *)
  domain : int;  (** numeric id of the recording domain *)
  start_ns : int64;  (** monotonic start, relative to the recorder epoch *)
  dur_ns : int64;
}

val enabled : bool ref
(** The hot-path guard; read it directly ([!Obs.Recorder.enabled]) in
    instrumentation sites.  Mutate through {!enable}/{!disable}. *)

val is_enabled : unit -> bool

val enable : unit -> unit
(** Switch recording on; fixes the epoch on first use. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded events, restart ids and ordinals, re-anchor the
    epoch.  Metrics live in {!Metrics} and have their own [reset]. *)

val epoch_ns : unit -> int64

val fresh_span : string -> int * int
(** [fresh_span path] allocates [(id, ordinal)] for a span opening at
    [path].  Used by {!Trace}; exposed for custom instrumentation. *)

val record : event -> unit

val events : unit -> event list
(** All recorded events, sorted by id (creation order). *)

val event_count : unit -> int
