(** Exporters over the recorder's events and the metrics registry.

    Three formats, all derivable from one run:

    - {!trace_jsonl}: one JSON object per completed span, in creation
      order — [{"id","parent","name","path","ordinal","domain",
      "start_us","dur_us"}].  Load it with any JSONL tool.
    - {!metrics_json}: a single aggregated JSON document with
      per-path span statistics ([spans]), merged [counters], [gauges]
      and [histograms], and a derived [pool] section
      (tasks/batches/busy/capacity/utilization).
    - {!span_tree}: an indented, per-path aggregate tree for the
      terminal ([--profile]).

    Exporters only read; they can be called repeatedly and in any
    combination.  Call them from the main domain with no batch in
    flight (same contract as {!Metrics.snapshot}). *)

type span_agg = {
  sa_path : string;
  sa_count : int;
  sa_total_ns : int64;
  sa_min_ns : int64;
  sa_max_ns : int64;
  sa_first_id : int;
}

val span_aggregates : unit -> span_agg list
(** Per-path aggregates of all recorded spans, ordered by first
    appearance. *)

val trace_jsonl : unit -> string

val metrics_json : ?extra:(string * string) list -> unit -> string
(** Aggregated metrics document.  [extra] appends top-level fields as
    [(key, raw JSON value)] pairs — e.g.
    [("degraded_issues", "3")]. *)

val span_tree : unit -> string

val write_trace : string -> unit
val write_metrics : ?extra:(string * string) list -> string -> unit
