(** Hierarchical trace spans on the monotonic clock.

    [with_span name f] times [f] and records one {!Recorder.event} when
    the recorder is enabled; when disabled it is exactly [f ()] after
    one branch.  Nesting is tracked per domain (domain-local stack of
    open spans): a span opened while another is open on the same domain
    becomes its child, and its [path] extends the parent's.

    Cross-domain nesting is explicit: capture {!current} on the
    submitting domain and pass it as [?parent] to spans opened on
    worker domains (Runtime.Pool does this for its chunk spans), so a
    batch's work nests under the span that submitted it regardless of
    which domain ran it.

    Spans survive exceptions: the event is recorded (with the duration
    up to the raise) and the stack popped before the exception
    propagates. *)

type span = { id : int; path : string }

val current : unit -> span option
(** Innermost open span of the calling domain, if any. *)

val with_span : ?parent:span -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span called [name].  [?parent]
    overrides the domain-local nesting (cross-domain fan-out); without
    it the parent is {!current}, or the span is a root. *)
