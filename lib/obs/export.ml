(* Exporters are pure readers over Recorder.events () and
   Metrics.snapshot (); they never mutate observability state, so a
   trace file, a metrics file and a terminal tree can all be produced
   from the same run. *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"';
  Buffer.contents b

(* JSON has no inf/nan tokens; clamp the degenerate cases to 0. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0"

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* -- JSON-lines trace --------------------------------------------------- *)

let trace_line (e : Recorder.event) =
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"name\":%s,\"path\":%s,\"ordinal\":%d,\"domain\":%d,\"start_us\":%s,\"dur_us\":%s}"
    e.id e.parent (json_string e.name) (json_string e.path) e.ordinal e.domain
    (json_float (Int64.to_float e.start_ns /. 1e3))
    (json_float (Int64.to_float e.dur_ns /. 1e3))

let trace_jsonl () =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (trace_line e);
      Buffer.add_char b '\n')
    (Recorder.events ());
  Buffer.contents b

(* -- per-path span aggregates ------------------------------------------- *)

type span_agg = {
  sa_path : string;
  sa_count : int;
  sa_total_ns : int64;
  sa_min_ns : int64;
  sa_max_ns : int64;
  sa_first_id : int; (* creation order of the first instance, for display *)
}

let span_aggregates () =
  let tbl : (string, span_agg ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (e : Recorder.event) ->
      match Hashtbl.find_opt tbl e.path with
      | None ->
        Hashtbl.add tbl e.path
          (ref
             {
               sa_path = e.path;
               sa_count = 1;
               sa_total_ns = e.dur_ns;
               sa_min_ns = e.dur_ns;
               sa_max_ns = e.dur_ns;
               sa_first_id = e.id;
             });
        order := e.path :: !order
      | Some a ->
        a :=
          {
            !a with
            sa_count = !a.sa_count + 1;
            sa_total_ns = Int64.add !a.sa_total_ns e.dur_ns;
            sa_min_ns = (if e.dur_ns < !a.sa_min_ns then e.dur_ns else !a.sa_min_ns);
            sa_max_ns = (if e.dur_ns > !a.sa_max_ns then e.dur_ns else !a.sa_max_ns);
          })
    (Recorder.events ());
  List.rev_map (fun p -> !(Hashtbl.find tbl p)) !order
  |> List.sort (fun a b -> compare a.sa_first_id b.sa_first_id)

(* -- aggregated metrics JSON -------------------------------------------- *)

let add_fields b fields =
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (json_string k);
      Buffer.add_char b ':';
      Buffer.add_string b v)
    fields

let obj fields =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  add_fields b fields;
  Buffer.add_char b '}';
  Buffer.contents b

let span_json a =
  obj
    [
      ("count", string_of_int a.sa_count);
      ("total_ms", json_float (ms_of_ns a.sa_total_ns));
      ("mean_ms", json_float (ms_of_ns a.sa_total_ns /. float_of_int (max 1 a.sa_count)));
      ("min_ms", json_float (ms_of_ns a.sa_min_ns));
      ("max_ms", json_float (ms_of_ns a.sa_max_ns));
    ]

let hist_json (h : Metrics.hist_summary) =
  let buckets =
    "["
    ^ String.concat ","
        (List.map
           (fun (ub, n) -> Printf.sprintf "[%s,%d]" (json_float ub) n)
           h.Metrics.buckets)
    ^ "]"
  in
  obj
    [
      ("count", string_of_int h.Metrics.count);
      ("sum", json_float h.Metrics.sum);
      ("mean", json_float (h.Metrics.sum /. float_of_int (max 1 h.Metrics.count)));
      ("min", json_float h.Metrics.min);
      ("max", json_float h.Metrics.max);
      ("buckets", buckets);
    ]

(* Pool utilization: the share of the pool's capacity (batch wall time
   times worker count, summed over batches) actually spent running
   tasks.  1.0 when no batch ran: an idle pool wasted nothing. *)
let pool_json snap =
  let busy = float_of_int (Metrics.counter_value snap "pool.busy_ns") in
  let capacity = float_of_int (Metrics.counter_value snap "pool.capacity_ns") in
  let utilization = if capacity <= 0.0 then 1.0 else busy /. capacity in
  obj
    [
      ("tasks", string_of_int (Metrics.counter_value snap "pool.tasks"));
      ("batches", string_of_int (Metrics.counter_value snap "pool.batches"));
      ("busy_ms", json_float (busy /. 1e6));
      ("capacity_ms", json_float (capacity /. 1e6));
      ("utilization", json_float utilization);
    ]

let metrics_json ?(extra = []) () =
  let snap = Metrics.snapshot () in
  let spans =
    obj (List.map (fun a -> (a.sa_path, span_json a)) (span_aggregates ()))
  in
  let counters =
    obj (List.map (fun (k, v) -> (k, string_of_int v)) snap.Metrics.counters)
  in
  let gauges = obj (List.map (fun (k, v) -> (k, json_float v)) snap.Metrics.gauges) in
  let histograms =
    obj (List.map (fun (k, h) -> (k, hist_json h)) snap.Metrics.histograms)
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  add_fields b
    ([
       ("spans", spans);
       ("counters", counters);
       ("gauges", gauges);
       ("histograms", histograms);
       ("pool", pool_json snap);
     ]
    @ extra);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* -- pretty span tree for the terminal ---------------------------------- *)

let parent_path path =
  match String.rindex_opt path '/' with
  | None -> None
  | Some i -> Some (String.sub path 0 i)

let leaf_name path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let span_tree () =
  let aggs = span_aggregates () in
  let children : (string option, span_agg list ref) Hashtbl.t = Hashtbl.create 32 in
  let have = Hashtbl.create 32 in
  List.iter (fun a -> Hashtbl.replace have a.sa_path ()) aggs;
  List.iter
    (fun a ->
      (* an orphan path (parent pruned or cross-domain root) prints at
         the top level rather than disappearing *)
      let parent =
        match parent_path a.sa_path with
        | Some p when Hashtbl.mem have p -> Some p
        | Some _ | None -> None
      in
      let key = parent in
      match Hashtbl.find_opt children key with
      | Some l -> l := a :: !l
      | None -> Hashtbl.add children key (ref [ a ]))
    aggs;
  let b = Buffer.create 1024 in
  let rec emit depth a =
    Buffer.add_string b
      (Printf.sprintf "%s%-*s %6d x %10.2f ms  (mean %8.3f ms)\n"
         (String.make (2 * depth) ' ')
         (max 1 (42 - (2 * depth)))
         (leaf_name a.sa_path) a.sa_count
         (ms_of_ns a.sa_total_ns)
         (ms_of_ns a.sa_total_ns /. float_of_int (max 1 a.sa_count)));
    match Hashtbl.find_opt children (Some a.sa_path) with
    | None -> ()
    | Some l ->
      List.iter (emit (depth + 1))
        (List.sort (fun x y -> compare x.sa_first_id y.sa_first_id) (List.rev !l))
  in
  Buffer.add_string b "span tree (count x total):\n";
  (match Hashtbl.find_opt children None with
  | None -> Buffer.add_string b "  (no spans recorded)\n"
  | Some roots ->
    List.iter (emit 1)
      (List.sort (fun x y -> compare x.sa_first_id y.sa_first_id) (List.rev !roots)));
  Buffer.contents b

(* -- file writers -------------------------------------------------------- *)

let write_file path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text)

let write_trace path = write_file path (trace_jsonl ())
let write_metrics ?extra path = write_file path (metrics_json ?extra ())
