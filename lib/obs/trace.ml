type span = { id : int; path : string }

(* Each domain keeps its own stack of open spans; nesting within a
   domain is implicit.  Fan-out across domains passes the parent span
   explicitly (see Runtime.Pool), since a worker's stack says nothing
   about the batch it is serving. *)
let stack : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let current () =
  match !(Domain.DLS.get stack) with [] -> None | s :: _ -> Some s

let with_span ?parent name f =
  if not !Recorder.enabled then f ()
  else begin
    let st = Domain.DLS.get stack in
    let parent = match parent with Some _ as p -> p | None -> current () in
    let path = match parent with Some p -> p.path ^ "/" ^ name | None -> name in
    let id, ordinal = Recorder.fresh_span path in
    st := { id; path } :: !st;
    let start = Robust.Deadline.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let stop = Robust.Deadline.now_ns () in
        (match !st with _ :: rest -> st := rest | [] -> ());
        Recorder.record
          {
            Recorder.id;
            parent = (match parent with Some p -> p.id | None -> -1);
            name;
            path;
            ordinal;
            domain = (Domain.self () :> int);
            start_ns = Int64.sub start (Recorder.epoch_ns ());
            dur_ns = Int64.sub stop start;
          })
      f
  end
