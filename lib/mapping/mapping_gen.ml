open Relational

type correspondence = {
  rel : string;
  rel_attr : string;
  tgt_attr : string;
  confidence : float;
}

type component = {
  component_relations : string list;
  component_joins : Association.join list;
  correspondences : correspondence list;
}

type target_mapping = {
  target_table : string;
  components : component list;
}

type plan = {
  relations : Relation.t list;
  base_constraints : Constraints.t list;
  derived : Propagation.derived list;
  joins : Association.join list;
  mappings : target_mapping list;
  target : Database.t;
}

let skolem attr known_values =
  let payload = String.concat "," (List.map Value.to_string known_values) in
  Value.String (Printf.sprintf "sk_%s_%08x" attr (Hashtbl.hash payload land 0xffffffff))

(* Relations named by the matches: every base source table, plus one view
   per distinct contextual source. *)
let relations_of_matches source matches =
  let bases = List.map Relation.base (Database.tables source) in
  let seen = Hashtbl.create 8 in
  let views =
    List.filter_map
      (fun (m : Matching.Schema_match.t) ->
        if (not (Matching.Schema_match.is_contextual m)) || Hashtbl.mem seen m.src_owner then
          None
        else begin
          Hashtbl.add seen m.src_owner ();
          match Database.table_opt source m.src_base with
          | None -> None
          | Some base_table ->
            Some (Relation.of_view (View.make ~name:m.src_owner base_table m.condition))
        end)
      matches
  in
  bases @ views

module Union_find = struct
  let find parent x =
    let rec go x = match Hashtbl.find_opt parent x with
      | Some p when p <> x -> go p
      | _ -> x
    in
    go x

  let union parent x y =
    let rx = find parent x and ry = find parent y in
    if rx <> ry then Hashtbl.replace parent rx ry

  let ensure parent x = if not (Hashtbl.mem parent x) then Hashtbl.replace parent x x
end

let plan ?(declared = []) ~source ~target ~matches () =
  Obs.Trace.with_span "mapping.plan" @@ fun () ->
  let relations = relations_of_matches source matches in
  let base_relations = List.filter (fun r -> not (Relation.is_view r)) relations in
  let base_constraints = declared @ Mining.mine base_relations in
  let derived = Propagation.derive ~relations ~base:base_constraints in
  (* Clio also mines keys directly on view samples; record them with a
     "mined" rule tag, skipping duplicates of the inferred ones. *)
  let mined_view_keys =
    List.concat_map
      (fun rel ->
        if Relation.is_view rel then
          List.map (fun k -> { Propagation.constr = Constraints.Key k; rule = "mined" })
            (Mining.mine_keys rel)
        else [])
      relations
    |> List.filter (fun d ->
           not
             (List.exists
                (fun d' -> Constraints.equal d'.Propagation.constr d.Propagation.constr)
                derived))
  in
  let mined_view_cfks =
    Mining.mine_contextual_fks relations
    |> List.map (fun c -> { Propagation.constr = Constraints.Cfk c; rule = "mined" })
    |> List.filter (fun d ->
           not
             (List.exists
                (fun d' -> Constraints.equal d'.Propagation.constr d.Propagation.constr)
                derived))
  in
  let derived = derived @ mined_view_keys @ mined_view_cfks in
  let joins = Association.joins ~relations ~constraints:base_constraints ~derived in
  let mappings =
    List.map
      (fun tgt_table ->
        let tgt_name = Table.name tgt_table in
        let correspondences =
          List.filter_map
            (fun (m : Matching.Schema_match.t) ->
              if String.equal m.tgt_table tgt_name then
                Some
                  {
                    rel = m.src_owner;
                    rel_attr = m.src_attr;
                    tgt_attr = m.tgt_attr;
                    confidence = m.confidence;
                  }
              else None)
            matches
        in
        let rels =
          List.sort_uniq String.compare (List.map (fun c -> c.rel) correspondences)
        in
        (* connected components of the correspondence relations under the
           association joins *)
        let parent = Hashtbl.create 8 in
        List.iter (Union_find.ensure parent) rels;
        List.iter
          (fun (j : Association.join) ->
            if List.mem j.left rels && List.mem j.right rels then
              Union_find.union parent j.left j.right)
          joins;
        let groups = Hashtbl.create 8 in
        List.iter
          (fun rel ->
            let root = Union_find.find parent rel in
            let existing = try Hashtbl.find groups root with Not_found -> [] in
            Hashtbl.replace groups root (rel :: existing))
          rels;
        let components =
          Hashtbl.fold
            (fun _ members acc ->
              let members = List.sort String.compare members in
              let component_joins =
                List.filter
                  (fun (j : Association.join) ->
                    List.mem j.left members && List.mem j.right members)
                  joins
              in
              {
                component_relations = members;
                component_joins;
                correspondences =
                  List.filter (fun c -> List.mem c.rel members) correspondences;
              }
              :: acc)
            groups []
          |> List.sort (fun a b -> compare a.component_relations b.component_relations)
        in
        { target_table = tgt_name; components })
      (Database.tables target)
  in
  { relations; base_constraints; derived; joins; mappings; target }

let execute plan_t mapping =
  Obs.Trace.with_span "mapping.execute" @@ fun () ->
  let target_table = Database.table plan_t.target mapping.target_table in
  let target_schema = Table.schema target_table in
  let target_attrs = Schema.attributes target_schema in
  let rows = ref [] in
  List.iter
    (fun component ->
      match component.component_relations with
      | [] -> ()
      | members ->
        (* Start from the relation with the most correspondences so its
           rows anchor the outer joins. *)
        let count rel =
          List.length (List.filter (fun c -> String.equal c.rel rel) component.correspondences)
        in
        let start =
          List.fold_left
            (fun best rel ->
              match best with
              | Some b when count b >= count rel -> best
              | Some _ | None -> Some rel)
            None members
        in
        let start = Option.get start in
        let joined, _ =
          Executor.join_component plan_t.relations component.component_joins ~start
        in
        let joined_schema = Table.schema joined in
        Array.iter
          (fun row ->
            let mapped =
              Array.map
                (fun (attr : Attribute.t) ->
                  let corr =
                    (* highest-confidence correspondence feeding this
                       target attribute *)
                    List.fold_left
                      (fun best c ->
                        if not (String.equal c.tgt_attr attr.name) then best
                        else
                          match best with
                          | Some b when b.confidence >= c.confidence -> best
                          | Some _ | None -> Some c)
                      None component.correspondences
                  in
                  match corr with
                  | None -> Value.Null (* skolemised below *)
                  | Some c -> (
                    let qualified = Printf.sprintf "%s.%s" c.rel c.rel_attr in
                    match Schema.index_of_opt joined_schema qualified with
                    | Some i -> row.(i)
                    | None -> Value.Null))
                target_attrs
            in
            let known = Array.to_list mapped |> List.filter (fun v -> not (Value.is_null v)) in
            if known <> [] then begin
              (* Skolemise target attributes that no correspondence
                 feeds (paper §4.1(c)); attributes with a correspondence
                 but a null joined value stay null. *)
              let filled =
                Array.mapi
                  (fun i v ->
                    let attr = target_attrs.(i) in
                    let has_corr =
                      List.exists
                        (fun c -> String.equal c.tgt_attr attr.Attribute.name)
                        component.correspondences
                    in
                    if Value.is_null v && not has_corr then
                      skolem attr.Attribute.name known
                    else v)
                  mapped
              in
              rows := filled :: !rows
            end)
          (Table.rows joined))
    mapping.components;
  if !Obs.Recorder.enabled then begin
    Obs.Metrics.incr "mapping.targets";
    Obs.Metrics.add "mapping.rows_emitted" (List.length !rows)
  end;
  Table.of_rows target_schema (Array.of_list (List.rev !rows))

let execute_all plan_t =
  let tables = List.map (fun m -> execute plan_t m) plan_t.mappings in
  Database.make (Database.name plan_t.target ^ "-mapped") tables

let execute_all_report plan_t =
  let report = Robust.Report.create () in
  let tables =
    List.map
      (fun m ->
        match execute plan_t m with
        | table -> table
        | exception e ->
          Robust.Report.record report ~table:m.target_table Robust.Error.Map
            (Printf.sprintf "mapping query failed, target left empty: %s"
               (Printexc.to_string e));
          let schema = Table.schema (Database.table plan_t.target m.target_table) in
          Table.of_rows schema [||])
      plan_t.mappings
  in
  ( Database.make (Database.name plan_t.target ^ "-mapped") tables,
    Robust.Report.issues report )
