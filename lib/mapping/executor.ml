open Relational

let qualify rel =
  let table = Relation.table rel in
  let prefix = Relation.name rel in
  let attrs =
    Array.to_list (Schema.attributes (Table.schema table))
    |> List.map (fun (a : Attribute.t) ->
           Attribute.make (Printf.sprintf "%s.%s" prefix a.name) a.ty)
  in
  let schema = Schema.make prefix attrs in
  Table.of_rows schema (Table.rows table)

(* Schema.index_of raises a bare Not_found; a mapping query assembled
   from mined constraints can reference an attribute a view projection
   dropped, and the error must say which one. *)
let index_of schema attr =
  match Schema.index_of_opt schema attr with
  | Some i -> i
  | None ->
    failwith
      (Printf.sprintf "executor: schema %s has no attribute %S" (Schema.name schema) attr)

let key_strings schema attrs row =
  let vs = List.map (fun a -> row.(index_of schema a)) attrs in
  if List.exists Value.is_null vs then None else Some (List.map Value.to_string vs)

let join left right ~on ~right_restrict ~kind =
  Obs.Trace.with_span "mapping.join" @@ fun () ->
  if !Obs.Recorder.enabled then Obs.Metrics.incr "mapping.joins";
  let left_schema = Table.schema left and right_schema = Table.schema right in
  let right_rows =
    Array.to_list (Table.rows right)
    |> List.filter (fun row ->
           List.for_all
             (fun (attr, v) ->
               Value.equal row.(index_of right_schema attr) v)
             right_restrict)
  in
  let left_attrs = List.map fst on and right_attrs = List.map snd on in
  (* hash the right side on its join key *)
  let index = Hashtbl.create (List.length right_rows) in
  List.iter
    (fun row ->
      match key_strings right_schema right_attrs row with
      | None -> ()
      | Some key ->
        let existing = try Hashtbl.find index key with Not_found -> [] in
        Hashtbl.replace index key (row :: existing))
    right_rows;
  let right_width = Schema.arity right_schema in
  let left_width = Schema.arity left_schema in
  let null_right = Array.make right_width Value.Null in
  let null_left = Array.make left_width Value.Null in
  let matched_right = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun lrow ->
      let matches =
        match key_strings left_schema left_attrs lrow with
        | None -> []
        | Some key ->
          (match Hashtbl.find_opt index key with
          | Some rows ->
            Hashtbl.replace matched_right key ();
            List.rev rows
          | None -> [])
      in
      match matches with
      | [] -> out := Array.append lrow null_right :: !out
      | rows -> List.iter (fun rrow -> out := Array.append lrow rrow :: !out) rows)
    (Table.rows left);
  (match kind with
  | Association.Left_outer -> ()
  | Association.Full_outer ->
    List.iter
      (fun rrow ->
        let unmatched =
          match key_strings right_schema right_attrs rrow with
          | None -> true
          | Some key -> not (Hashtbl.mem matched_right key)
        in
        if unmatched then out := Array.append null_left rrow :: !out)
      right_rows);
  let attrs =
    Array.append (Schema.attributes left_schema) (Schema.attributes right_schema)
  in
  let name = Printf.sprintf "%s⋈%s" (Schema.name left_schema) (Schema.name right_schema) in
  let schema = Schema.make name (Array.to_list attrs) in
  Table.of_rows schema (Array.of_list (List.rev !out))

let join_component relations joins ~start =
  let rel_of name =
    match List.find_opt (fun r -> String.equal (Relation.name r) name) relations with
    | Some r -> r
    | None -> failwith (Printf.sprintf "executor: unknown relation %S in join plan" name)
  in
  let incorporated = ref [ start ] in
  let current = ref (qualify (rel_of start)) in
  let qualify_on rel_left rel_right on =
    List.map
      (fun (a, b) ->
        (Printf.sprintf "%s.%s" rel_left a, Printf.sprintf "%s.%s" rel_right b))
      on
  in
  let qualify_restrict rel pairs =
    List.map (fun (a, v) -> (Printf.sprintf "%s.%s" rel a, v)) pairs
  in
  (* Repeatedly attach any join touching the assembled set on one side
     and a new relation on the other.  A join whose restricted side is
     already incorporated cannot be replayed (the restriction filters
     the fresh side), so it is only usable in the forward direction. *)
  let rec grow () =
    let usable =
      List.find_opt
        (fun (j : Association.join) ->
          (List.mem j.left !incorporated && not (List.mem j.right !incorporated))
          || List.mem j.right !incorporated
             && (not (List.mem j.left !incorporated))
             && j.right_restrict = [])
        joins
    in
    match usable with
    | None -> ()
    | Some j ->
      let forward = List.mem j.left !incorporated in
      let fresh = if forward then j.right else j.left in
      let on =
        if forward then qualify_on j.left j.right j.on
        else
          List.map
            (fun (a, b) ->
              (Printf.sprintf "%s.%s" j.right b, Printf.sprintf "%s.%s" j.left a))
            j.on
      in
      let restrict = if forward then qualify_restrict j.right j.right_restrict else [] in
      let fresh_table = qualify (rel_of fresh) in
      current := join !current fresh_table ~on ~right_restrict:restrict ~kind:j.kind;
      incorporated := fresh :: !incorporated;
      grow ()
  in
  grow ();
  (!current, List.rev !incorporated)
