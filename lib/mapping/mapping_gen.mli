(** Schema-mapping generation (paper §4.1/§4.3): turn the accepted
    (contextual) matches into executable mapping queries.

    Pipeline: matches → relations (base tables + views named by the
    matches) → base constraints (declared + mined) → propagated view
    constraints (§4.2 rules + sample mining) → association joins (§4.3
    rules) → per-target logical tables → union of mapped tuples with
    Skolem values for unmapped non-null target attributes. *)

open Relational

type correspondence = {
  rel : string;  (** source relation (base table or view) *)
  rel_attr : string;
  tgt_attr : string;
  confidence : float;
}

type component = {
  component_relations : string list;  (** relations joined into this logical table *)
  component_joins : Association.join list;
  correspondences : correspondence list;
}

type target_mapping = {
  target_table : string;
  components : component list;  (** the mapping query is their union *)
}

type plan = {
  relations : Relation.t list;
  base_constraints : Constraints.t list;
  derived : Propagation.derived list;
  joins : Association.join list;
  mappings : target_mapping list;
  target : Database.t;
}

val plan :
  ?declared:Constraints.t list ->
  source:Database.t ->
  target:Database.t ->
  matches:Matching.Schema_match.t list ->
  unit ->
  plan
(** Build the full mapping plan.  [declared] are schema-level
    constraints known upfront; mined constraints are added to them. *)

val execute : plan -> target_mapping -> Table.t
(** Run one target table's mapping query over the plan's source
    instances. *)

val execute_all : plan -> Database.t
(** Every target table (empty instances for targets with no matches).
    Fail-fast: the first mapping query that raises aborts the whole
    translation. *)

val execute_all_report : plan -> Database.t * Robust.Error.t list
(** Fault-contained {!execute_all}: a mapping query that raises leaves
    its target table empty and records a [Map]-stage issue naming the
    table, instead of aborting the other targets. *)

val skolem : string -> Value.t list -> Value.t
(** [skolem attr known_values] — deterministic non-null placeholder
    derived from the known values of the tuple (paper §4.1 (c)). *)
