open Bigarray

type ints = {
  i_offsets : (int, int_elt, c_layout) Array1.t;
  i_ids : (int32, int32_elt, c_layout) Array1.t;
  i_vals : (int32, int32_elt, c_layout) Array1.t;
}

type floats = {
  f_offsets : (int, int_elt, c_layout) Array1.t;
  f_ids : (int32, int32_elt, c_layout) Array1.t;
  f_vals : (float, float64_elt, c_layout) Array1.t;
}

let make_offsets rows = Array1.create Int c_layout (rows + 1)

let offsets_of_lengths lengths =
  let rows = Array.length lengths in
  let offsets = make_offsets rows in
  Array1.unsafe_set offsets 0 0;
  for r = 0 to rows - 1 do
    Array1.unsafe_set offsets (r + 1) (Array1.unsafe_get offsets r + lengths.(r))
  done;
  offsets

let alloc_ints lengths =
  let offsets = offsets_of_lengths lengths in
  let nnz = Array1.get offsets (Array.length lengths) in
  {
    i_offsets = offsets;
    i_ids = Array1.create Int32 c_layout nnz;
    i_vals = Array1.create Int32 c_layout nnz;
  }

let alloc_floats lengths =
  let offsets = offsets_of_lengths lengths in
  let nnz = Array1.get offsets (Array.length lengths) in
  {
    f_offsets = offsets;
    f_ids = Array1.create Int32 c_layout nnz;
    f_vals = Array1.create Float64 c_layout nnz;
  }

let pack_ints rows =
  let offsets = offsets_of_lengths (Array.map (fun (ids, _) -> Array.length ids) rows) in
  let nnz = Array1.get offsets (Array.length rows) in
  let ids = Array1.create Int32 c_layout nnz in
  let vals = Array1.create Int32 c_layout nnz in
  Array.iteri
    (fun r (rids, rvals) ->
      let base = Array1.get offsets r in
      Array.iteri
        (fun k id ->
          Array1.unsafe_set ids (base + k) (Int32.of_int id);
          Array1.unsafe_set vals (base + k) (Int32.of_int rvals.(k)))
        rids)
    rows;
  { i_offsets = offsets; i_ids = ids; i_vals = vals }

let pack_floats rows =
  let offsets = offsets_of_lengths (Array.map (fun (ids, _) -> Array.length ids) rows) in
  let nnz = Array1.get offsets (Array.length rows) in
  let ids = Array1.create Int32 c_layout nnz in
  let vals = Array1.create Float64 c_layout nnz in
  Array.iteri
    (fun r (rids, rvals) ->
      let base = Array1.get offsets r in
      Array.iteri
        (fun k id ->
          Array1.unsafe_set ids (base + k) (Int32.of_int id);
          Array1.unsafe_set vals (base + k) rvals.(k))
        rids)
    rows;
  { f_offsets = offsets; f_ids = ids; f_vals = vals }

let ints_rows a = Array1.dim a.i_offsets - 1
let floats_rows a = Array1.dim a.f_offsets - 1
let ints_nnz a = Array1.dim a.i_ids
let floats_nnz a = Array1.dim a.f_ids

let ints_row a r =
  let lo = Array1.get a.i_offsets r and hi = Array1.get a.i_offsets (r + 1) in
  let n = hi - lo in
  let ids = Array.init n (fun k -> Int32.to_int (Array1.unsafe_get a.i_ids (lo + k))) in
  let vals = Array.init n (fun k -> Int32.to_int (Array1.unsafe_get a.i_vals (lo + k))) in
  (ids, vals)

let floats_row a r =
  let lo = Array1.get a.f_offsets r and hi = Array1.get a.f_offsets (r + 1) in
  let n = hi - lo in
  let ids = Array.init n (fun k -> Int32.to_int (Array1.unsafe_get a.f_ids (lo + k))) in
  let vals = Array.init n (fun k -> Array1.unsafe_get a.f_vals (lo + k)) in
  (ids, vals)

let ints_bytes a =
  Array1.size_in_bytes a.i_offsets + Array1.size_in_bytes a.i_ids
  + Array1.size_in_bytes a.i_vals

let floats_bytes a =
  Array1.size_in_bytes a.f_offsets + Array1.size_in_bytes a.f_ids
  + Array1.size_in_bytes a.f_vals
