(** q-gram frequency profiles of value collections.

    A profile summarises the textual content of a column as a normalised
    q-gram frequency vector; two columns are compared with cosine
    similarity.  This is the core signal of the instance matcher and of
    TgtClassInfer's string classifier. *)

type t

val of_strings : ?q:int -> string list -> t
(** Accumulate all q-grams (default q = 3) of every string. *)

val of_strings_array : ?q:int -> string array -> t

val add : t -> string -> unit
(** Fold one more string into the profile. *)

val gram_count : t -> int
(** Number of distinct grams. *)

val total : t -> int
(** Total gram occurrences. *)

val q : t -> int
(** Gram length the profile accumulates. *)

val counts : t -> (string * int) array
(** Distinct grams with occurrence counts, sorted by gram.  The array
    is the canonical representation the similarity folds run over (and
    the one the persistent store serialises); callers must not mutate
    it. *)

val of_counts : q:int -> (string * int) array -> t
(** Rebuild a profile from [counts] output.  Similarities computed from
    the rebuilt profile are bit-identical to the original's: the folds
    iterate gram-sorted counts, never raw hashtable order. *)

val to_weighted_bag : t -> (string * float) list
(** Relative frequencies (sum to 1 when non-empty). *)

val cosine : t -> t -> float
(** Cosine similarity of the two frequency vectors. *)

val jaccard : t -> t -> float
(** Set Jaccard over distinct grams. *)
