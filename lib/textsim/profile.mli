(** q-gram frequency profiles of value collections.

    A profile summarises the textual content of a column as a normalised
    q-gram frequency vector; two columns are compared with cosine
    similarity.  This is the core signal of the instance matcher and of
    TgtClassInfer's string classifier.

    {2 Scoring kernel}

    A profile can additionally carry an {e interned} view against a
    frozen {!Gram_dict}: its grams as dense int ids, id-sorted (which is
    gram-sorted, by the dictionary's construction), alongside a cached
    L2 norm of the frequency vector.  When two profiles share a
    dictionary and at least one of them is fully in-vocabulary,
    {!cosine} and {!jaccard} switch from the string merge join to an int
    merge join — no [String.compare] per gram, no per-call norm folds —
    and, because both joins add the identical terms in the identical
    (gram-lexicographic) order, the interned scores are bit-identical to
    the string-path scores.  Profiles serialise by gram {e string}
    ({!counts}/{!of_counts}), never by id, so persisted artefacts are
    independent of any particular interner. *)

type t

val of_strings : ?q:int -> string list -> t
(** Accumulate all q-grams (default q = 3) of every string. *)

val of_strings_array : ?q:int -> string array -> t

val add : t -> string -> unit
(** Fold one more string into the profile.  Drops the memoised sorted
    view, cached norm and interned view. *)

val patch : t -> add:string list -> remove:string list -> unit
(** Fold the [add] strings in and the [remove] strings out, in place.
    Removal is the exact integer inverse of {!add}: counts drop by each
    removed string's gram multiplicities and vanish at zero, so the
    patched profile's canonical counts — and therefore every similarity,
    norm and interned view derived from them — are bit-identical to a
    profile rebuilt from scratch over the surviving strings.  Raises
    [Invalid_argument] if a removal would drive a gram count negative
    (the string was never added).  Drops the memoised views. *)

val gram_count : t -> int
(** Number of distinct grams. *)

val total : t -> int
(** Total gram occurrences. *)

val q : t -> int
(** Gram length the profile accumulates. *)

val counts : t -> (string * int) array
(** Distinct grams with occurrence counts, sorted by gram.  The array
    is the canonical representation the similarity folds run over (and
    the one the persistent store serialises); callers must not mutate
    it. *)

val of_counts : q:int -> (string * int) array -> t
(** Rebuild a profile from [counts] output.  Similarities computed from
    the rebuilt profile are bit-identical to the original's: the folds
    iterate gram-sorted counts, never raw hashtable order. *)

val of_ids : q:int -> Gram_dict.t -> int array -> int array -> t
(** [of_ids ~q dict ids counts]: a {e packed} profile whose gram bag is
    [dict]'s gram of [ids.(k)] with count [counts.(k)].  [ids] must be
    strictly ascending and every count positive; the caller asserts
    every gram lives in [dict], so the arrays double as a complete
    interned view against it (attached immediately — no counts pass).
    This is the constructor partition composition uses: a k-pointer
    merge over CSR arena rows yields the id/count columns directly, and
    no gram string is materialised unless the profile is serialised or
    mutated.  The profile scores bit-identically to
    [of_counts ~q [| (gram ids.(k), counts.(k)); ... |]] — every
    similarity fold runs over the same gram-sorted count sequence. *)

val sum : ?q:int -> t list -> t
(** Exact profile addition: the result's count for every gram is the
    integer sum of the inputs' counts ([total] likewise).  Because a
    profile is a pure function of its counts, summing the per-category
    partition profiles of a column reproduces — bit for bit — the
    profile a re-scan of the union of those categories' rows would
    build.  [q] defaults to the first input's gram length (3 when the
    list is empty); raises [Invalid_argument] on mixed gram lengths. *)

val to_weighted_bag : t -> (string * float) list
(** Relative frequencies (sum to 1 when non-empty). *)

val norm : t -> float
(** L2 norm of the relative-frequency vector, cached after the first
    call (and recomputed after {!add}).  Equal — bitwise — to the fold
    {!cosine} historically performed per call. *)

val intern : Gram_dict.t -> t -> unit
(** Attach the interned view against [dict].  Idempotent for the same
    dictionary; re-interning against another dictionary replaces the
    view — via {!Gram_dict.translate} (one int pass) when the current
    view is complete, via one counts pass otherwise; both produce the
    identical arrays.  Safe to call concurrently from worker domains
    for the same frozen dictionary (same-value racy writes are
    benign). *)

val interned_with : t -> Gram_dict.t -> bool

val interned_ids : t -> Gram_dict.t -> (int array * int array) option
(** [(ids, counts)] of the interned view on [dict], id-sorted, covering
    the profile's in-vocabulary grams only. *)

val cosine : t -> t -> float
(** Cosine similarity of the two frequency vectors.  Uses the int
    merge join when an interned fast path applies (see above), the
    string merge join otherwise; the two agree bit for bit. *)

val jaccard : t -> t -> float
(** Set Jaccard over distinct grams; same fast-path contract as
    {!cosine}. *)
