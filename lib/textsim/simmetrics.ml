let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let levenshtein_similarity a b =
  let la = String.length a and lb = String.length b in
  let longest = max la lb in
  if longest = 0 then 1.0
  else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int longest)

let jaro a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else if la = 0 || lb = 0 then 0.0
  else begin
    let window = max 0 ((max la lb / 2) - 1) in
    let a_matched = Array.make la false and b_matched = Array.make lb false in
    let matches = ref 0 in
    for i = 0 to la - 1 do
      let lo = max 0 (i - window) and hi = min (lb - 1) (i + window) in
      let rec find j =
        if j > hi then ()
        else if (not b_matched.(j)) && a.[i] = b.[j] then begin
          a_matched.(i) <- true;
          b_matched.(j) <- true;
          incr matches
        end
        else find (j + 1)
      in
      find lo
    done;
    if !matches = 0 then 0.0
    else begin
      let transpositions = ref 0 in
      let k = ref 0 in
      for i = 0 to la - 1 do
        if a_matched.(i) then begin
          while not b_matched.(!k) do incr k done;
          if a.[i] <> b.[!k] then incr transpositions;
          incr k
        end
      done;
      let m = float_of_int !matches in
      let t = float_of_int (!transpositions / 2) in
      ((m /. float_of_int la) +. (m /. float_of_int lb) +. ((m -. t) /. m)) /. 3.0
    end
  end

let jaro_winkler ?(prefix_scale = 0.1) a b =
  let j = jaro a b in
  let max_prefix = 4 in
  let rec prefix_len i =
    if i >= max_prefix || i >= String.length a || i >= String.length b then i
    else if a.[i] = b.[i] then prefix_len (i + 1)
    else i
  in
  let p = float_of_int (prefix_len 0) in
  j +. (p *. prefix_scale *. (1.0 -. j))

module String_set = Set.Make (String)

let set_of_list tokens = String_set.of_list tokens

(* Strictly ascending = already a set in sorted order: the callers on
   the hot path (word and value-overlap matchers) pass [sort_uniq]'d
   token lists, for which one O(n) check buys an allocation-free merge
   count instead of building two balanced sets per pair. *)
let rec strictly_sorted = function
  | a :: (b :: _ as tl) -> String.compare a b < 0 && strictly_sorted tl
  | [] | [ _ ] -> true

let rec merge_inter xs ys inter =
  match (xs, ys) with
  | [], _ | _, [] -> inter
  | x :: xt, y :: yt ->
    let c = String.compare x y in
    if c = 0 then merge_inter xt yt (inter + 1)
    else if c < 0 then merge_inter xt ys inter
    else merge_inter xs yt inter

let jaccard a b =
  if strictly_sorted a && strictly_sorted b then begin
    (* the lists are their own sets; intersection and union cardinals
       from one merge pass — the same integers the set path computes,
       so the quotient is the identical float *)
    let ca = List.length a and cb = List.length b in
    if ca = 0 && cb = 0 then 1.0
    else begin
      let inter = merge_inter a b 0 in
      let union = ca + cb - inter in
      float_of_int inter /. float_of_int union
    end
  end
  else begin
    let sa = set_of_list a and sb = set_of_list b in
    if String_set.is_empty sa && String_set.is_empty sb then 1.0
    else begin
      let inter = String_set.cardinal (String_set.inter sa sb) in
      let union = String_set.cardinal (String_set.union sa sb) in
      float_of_int inter /. float_of_int union
    end
  end

let dice a b =
  let sa = set_of_list a and sb = set_of_list b in
  let ca = String_set.cardinal sa and cb = String_set.cardinal sb in
  if ca = 0 && cb = 0 then 1.0
  else begin
    let inter = String_set.cardinal (String_set.inter sa sb) in
    2.0 *. float_of_int inter /. float_of_int (ca + cb)
  end

let overlap a b =
  let sa = set_of_list a and sb = set_of_list b in
  let ca = String_set.cardinal sa and cb = String_set.cardinal sb in
  if ca = 0 || cb = 0 then if ca = cb then 1.0 else 0.0
  else begin
    let inter = String_set.cardinal (String_set.inter sa sb) in
    float_of_int inter /. float_of_int (min ca cb)
  end

let cosine_bags a b =
  let module M = Map.Make (String) in
  let to_map bag =
    List.fold_left
      (fun acc (k, w) -> M.update k (function None -> Some w | Some w' -> Some (w +. w')) acc)
      M.empty bag
  in
  let ma = to_map a and mb = to_map b in
  let norm m = sqrt (M.fold (fun _ w acc -> acc +. (w *. w)) m 0.0) in
  let na = norm ma and nb = norm mb in
  if na = 0.0 || nb = 0.0 then 0.0
  else begin
    let dot =
      M.fold
        (fun k w acc -> match M.find_opt k mb with None -> acc | Some w' -> acc +. (w *. w'))
        ma 0.0
    in
    dot /. (na *. nb)
  end

let name_similarity a b =
  let na = Tokenize.normalize a and nb = Tokenize.normalize b in
  if String.equal na nb && String.length na > 0 then 1.0
  else begin
    let jw = jaro_winkler na nb in
    let ta = Tokenize.name_tokens a and tb = Tokenize.name_tokens b in
    let jac = if ta = [] && tb = [] then 0.0 else jaccard ta tb in
    let contain = overlap ta tb in
    max jw (max jac (0.9 *. contain))
  end
