(** Gram-based inverted index over a fixed set of target profiles, with
    batch cosine scoring and threshold/top-k retrieval.

    [build] freezes a {!Gram_dict} over every target gram, interns the
    targets in place (so pairwise {!Profile.cosine} against them takes
    the int fast path too), and lays both the interned target profiles
    and the gram → (target, relative frequency) postings out as flat
    {!Csr} arenas: one cache-linear buffer each for offsets, ids and
    values, walked with no pointer chase.

    {2 Soundness}

    {!scores} is {e exact}: per target it accumulates the identical dot
    terms, in the identical gram-sorted order, as the string merge join
    of {!Profile.cosine}, so its cosines are bit-identical — including
    the implicit 0.0 of targets that share no gram with the candidate,
    which are pruned without being visited.  {!top_k} only decides
    {e which} pairs are worth returning; every score it returns comes
    from the same exact accumulation, and both its pruning levels — the
    global {!cosine_upper_bound} gate and the per-block block-max
    bounds (see {!scores_range}) — are conservative, so pruned
    retrieval equals exhaustive scoring followed by filter/sort/take.

    Immutable after [build]; safe to read from worker domains. *)

type t

val build : ?block_size:int -> Profile.t array -> t
(** [block_size] (default 64) sets the block-max granularity: target
    slots are tiled into blocks of that many slots, and each gram's
    posting row is segmented per block it posts into, recording the
    segment's maximum frequency.  Smaller blocks bound tighter but cost
    more segment bookkeeping; the value changes pruning {e cost} only,
    never a score.  Raises [Invalid_argument] when not positive. *)

val patch : t -> (int * Profile.t) list -> t option
(** [patch t [(slot, p); ...]] returns a new index equal to rebuilding
    over the targets with each [slot] replaced by [p] — rebuilding only
    the posting rows of grams present in the old or new profile of a
    patched slot, and bulk-blitting (bit-preserving) every untouched
    row into the fresh arenas.  The original index is left untouched.
    Cost is O(delta) posting work plus an O(arena) copy — far below a
    cold rebuild's re-tokenisation, but not in-place: the flat layout
    trades update locality for scan locality.

    The frozen dictionary cannot grow, so [None] is returned when any
    replacement profile holds an out-of-vocabulary gram; the caller
    must rebuild from scratch.  Grams whose postings empty out remain
    in the dictionary as zero-length arena rows but are score-neutral
    (an empty row contributes nothing to the accumulation; its zero max
    adds an exact +0.0 to {!cosine_upper_bound}), so {!scores},
    {!cosine_upper_bound} and {!top_k} on the patched index are
    bit-identical to a cold {!build} over the new target set. *)

val dict : t -> Gram_dict.t
val length : t -> int
(** Number of indexed targets. *)

val gram_count : t -> int
(** Vocabulary size. *)

val target : t -> int -> Profile.t

val block_size : t -> int
val block_count : t -> int
(** Number of target-slot blocks ([ceil (length / block_size)]). *)

val arena_bytes : t -> int
(** Flat-buffer footprint of the posting and profile arenas. *)

val scores : t -> Profile.t -> float array * int
(** [(cosines, touched)]: [cosines.(i)] is bit-identical to
    [Profile.cosine cand (target t i)]; [touched] counts targets
    sharing at least one gram — the remaining [length t - touched]
    pairs were pruned as exact zeros. *)

type range_stats = {
  r_touched : int;  (** targets in range sharing a gram (and not block-skipped) *)
  r_blocks : int;  (** blocks covering the range *)
  r_block_skips : int;  (** blocks skipped by the per-block bound *)
  r_posting_skips : int;  (** postings jumped over inside skipped blocks *)
}

val scores_range :
  t -> Profile.t -> tau:float -> lo:int -> hi:int -> float array * range_stats
(** Exact cosines of the targets in [slot range [lo, hi))], as a
    [hi - lo] slice: element [i] is bit-identical to
    [fst (scores t cand)].(lo + i) whenever it is returned at all.
    [lo] (and [hi], unless it is [length t]) must be multiples of
    {!block_size} — a range is a whole number of blocks, which is what
    keeps sharded accumulation's concatenated slices equal to one
    sequential pass.

    With [tau > 0.0], block-max pruning applies: a first pass
    accumulates a per-block upper bound from the segment maxima (same
    gram order as the exact pass), and any block whose bound over
    [candidate norm × block min norm] falls below [tau] is skipped
    whole — its targets come back as 0.0.  The bound is sound under
    IEEE float monotonicity (termwise dominance in aligned accumulation
    order), so a skipped target's true cosine is provably < [tau]:
    callers filtering by [tau] see identical survivors with identical
    scores.  [tau <= 0.0] disables skipping and the slice is exact
    everywhere. *)

val cosine_upper_bound : t -> Profile.t -> float
(** Sound upper bound on the candidate's cosine against {e any} target:
    max-posting-frequency dot bound over the {e globally} smallest
    non-zero target norm.  Deliberately coarse — one fold regardless of
    target count — it only gates a whole query; the per-block norms
    inside {!scores_range} tighten the same bound block by block. *)

type topk_stats = {
  scored : int;  (** targets whose exact cosine was accumulated *)
  pruned : int;  (** targets skipped (no shared gram, bound or block skip) *)
  bound_skip : bool;  (** whole query rejected by {!cosine_upper_bound} *)
  blocks : int;  (** target-slot blocks considered *)
  block_skips : int;  (** blocks skipped by the block-max bound *)
  posting_skips : int;  (** postings jumped over inside skipped blocks *)
}

val select : float array -> k:int -> tau:float -> (int * float) list
(** Threshold-filter, sort (score desc, slot asc) and take [k] over a
    full scores array — the deterministic selection step shared by
    {!top_k} and the sharded top-k path in the matching layer, so both
    break rank-k ties identically. *)

val top_k : t -> Profile.t -> k:int -> tau:float -> (int * float) list * topk_stats
(** Up to [k] targets with cosine >= [tau], sorted by decreasing score
    (ties broken on ascending target slot).  Equal to exhaustively
    scoring every target, filtering by [tau], sorting and truncating —
    the global bound gate and the block-max skips only ever discard
    targets provably below [tau]. *)
