(** Gram-based inverted index over a fixed set of target profiles, with
    batch cosine scoring and threshold/top-k retrieval.

    [build] freezes a {!Gram_dict} over every target gram, interns the
    targets in place (so pairwise {!Profile.cosine} against them takes
    the int fast path too), and indexes gram id → (target, relative
    frequency) postings.

    {2 Soundness}

    {!scores} is {e exact}: per target it accumulates the identical dot
    terms, in the identical gram-sorted order, as the string merge join
    of {!Profile.cosine}, so its cosines are bit-identical — including
    the implicit 0.0 of targets that share no gram with the candidate,
    which are pruned without being visited.  {!top_k} only decides
    {e which} pairs are worth returning; every score it returns comes
    from the same exact accumulation, and its upper-bound skip is
    conservative (a bound below [tau] proves no target qualifies), so
    pruned retrieval equals exhaustive scoring followed by
    filter/sort/take.

    Immutable after [build]; safe to read from worker domains. *)

type t

val build : Profile.t array -> t

val patch : t -> (int * Profile.t) list -> t option
(** [patch t [(slot, p); ...]] returns a new index equal to rebuilding
    over the targets with each [slot] replaced by [p] — touching only
    the postings of grams present in the old or new profile of a
    patched slot.  The original index is left untouched (top-level
    arrays are copied, posting lists rebuilt per touched gram).

    The frozen dictionary cannot grow, so [None] is returned when any
    replacement profile holds an out-of-vocabulary gram; the caller
    must rebuild from scratch.  Grams whose postings empty out remain
    in the dictionary but are score-neutral (empty postings contribute
    nothing to {!scores}; their zero max adds an exact +0.0 to
    {!cosine_upper_bound}), so {!scores}, {!cosine_upper_bound} and
    {!top_k} on the patched index are bit-identical to a cold {!build}
    over the new target set. *)

val dict : t -> Gram_dict.t
val length : t -> int
(** Number of indexed targets. *)

val gram_count : t -> int
(** Vocabulary size. *)

val target : t -> int -> Profile.t

val scores : t -> Profile.t -> float array * int
(** [(cosines, touched)]: [cosines.(i)] is bit-identical to
    [Profile.cosine cand (target t i)]; [touched] counts targets
    sharing at least one gram — the remaining [length t - touched]
    pairs were pruned as exact zeros. *)

val cosine_upper_bound : t -> Profile.t -> float
(** Sound upper bound on the candidate's cosine against {e any} target
    (max-posting-frequency dot bound over the smallest target norm). *)

type topk_stats = {
  scored : int;  (** targets whose exact cosine was accumulated *)
  pruned : int;  (** targets skipped (no shared gram, or bound skip) *)
  bound_skip : bool;  (** whole query rejected by {!cosine_upper_bound} *)
}

val top_k : t -> Profile.t -> k:int -> tau:float -> (int * float) list * topk_stats
(** Up to [k] targets with cosine >= [tau], sorted by decreasing score
    (ties broken on ascending target slot).  Equal to exhaustively
    scoring every target, filtering by [tau], sorting and truncating. *)
