type t = {
  q : int;
  counts : (string, int) Hashtbl.t;
  mutable total : int;
  (* gram-sorted view of [counts], memoised on first use and dropped on
     mutation: similarity folds run over it in one fixed order, so a
     profile rebuilt from serialised counts scores bit-identically to
     the freshly accumulated original whatever the hashtable's internal
     layout *)
  mutable sorted : (string * int) array option;
}

let create q = { q; counts = Hashtbl.create 256; total = 0; sorted = None }

let add t s =
  t.sorted <- None;
  List.iter
    (fun gram ->
      let n = try Hashtbl.find t.counts gram with Not_found -> 0 in
      Hashtbl.replace t.counts gram (n + 1);
      t.total <- t.total + 1)
    (Tokenize.qgrams t.q s)

let of_strings ?(q = 3) strings =
  let t = create q in
  List.iter (add t) strings;
  t

let of_strings_array ?(q = 3) strings =
  let t = create q in
  Array.iter (add t) strings;
  t

let gram_count t = Hashtbl.length t.counts
let total t = t.total
let q t = t.q

let sorted_counts t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a =
      Hashtbl.fold (fun gram n acc -> (gram, n) :: acc) t.counts []
      |> List.sort (fun (g1, _) (g2, _) -> String.compare g1 g2)
      |> Array.of_list
    in
    t.sorted <- Some a;
    a

let counts t = sorted_counts t

let of_counts ~q pairs =
  let t = create q in
  Array.iter
    (fun (gram, n) ->
      Hashtbl.replace t.counts gram n;
      t.total <- t.total + n)
    pairs;
  t

let to_weighted_bag t =
  if t.total = 0 then []
  else begin
    let denom = float_of_int t.total in
    Array.to_list (sorted_counts t)
    |> List.map (fun (gram, n) -> (gram, float_of_int n /. denom))
  end

(* Similarities walk the two sorted-count arrays with a merge join: no
   hashtable iteration, so the float accumulation order is a function of
   the profile's *contents* alone. *)
let cosine a b =
  if a.total = 0 || b.total = 0 then 0.0
  else begin
    let ca = sorted_counts a and cb = sorted_counts b in
    let ta = float_of_int a.total and tb = float_of_int b.total in
    let dot = ref 0.0 in
    let i = ref 0 and j = ref 0 in
    while !i < Array.length ca && !j < Array.length cb do
      let ga, na = ca.(!i) and gb, nb = cb.(!j) in
      let c = String.compare ga gb in
      if c = 0 then begin
        dot := !dot +. (float_of_int na /. ta *. (float_of_int nb /. tb));
        incr i;
        incr j
      end
      else if c < 0 then incr i
      else incr j
    done;
    let norm total cs =
      sqrt
        (Array.fold_left
           (fun acc (_, n) ->
             let f = float_of_int n /. total in
             acc +. (f *. f))
           0.0 cs)
    in
    let na = norm ta ca and nb = norm tb cb in
    if na = 0.0 || nb = 0.0 then 0.0 else !dot /. (na *. nb)
  end

let jaccard a b =
  let ca = sorted_counts a and cb = sorted_counts b in
  let la = Array.length ca and lb = Array.length cb in
  if la = 0 && lb = 0 then 1.0
  else begin
    let inter = ref 0 in
    let i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      let c = String.compare (fst ca.(!i)) (fst cb.(!j)) in
      if c = 0 then begin
        incr inter;
        incr i;
        incr j
      end
      else if c < 0 then incr i
      else incr j
    done;
    let union = la + lb - !inter in
    if union = 0 then 0.0 else float_of_int !inter /. float_of_int union
  end
