(* An interned view of a profile against a frozen {!Gram_dict}: the
   dictionary's ids of the profile's grams, id-sorted (= gram-sorted,
   because dictionary ids follow gram order), with their counts.
   [complete] records whether every gram of the profile made it into
   [ids] — only then can an int merge join against an arbitrary other
   profile be trusted to see every *shared* gram. *)
type interned = {
  dict : Gram_dict.t;
  ids : int array;
  icounts : int array;
  complete : bool;
}

(* Two physical representations of the same abstract gram bag:
   [Hashed] is the mutable accumulator [add]/[remove] work on;
   [Packed] is a frozen columnar pair of id-sorted arrays against a
   dictionary, the form partition composition produces (one k-pointer
   merge over CSR arena rows, no string ever materialised).  Every
   observable value — [sorted_counts], [total], [norm], the interned
   views, hence every similarity — is a pure function of the abstract
   bag, so the two representations score bit-identically; a mutation on
   a [Packed] profile first rehydrates it into a hashtable. *)
type repr =
  | Hashed of (string, int) Hashtbl.t
  | Packed of { pdict : Gram_dict.t; pids : int array; pcounts : int array }

type t = {
  q : int;
  mutable repr : repr;
  mutable total : int;
  (* gram-sorted view of the counts, memoised on first use and dropped
     on mutation: similarity folds run over it in one fixed order, so a
     profile rebuilt from serialised counts scores bit-identically to
     the freshly accumulated original whatever the hashtable's internal
     layout *)
  mutable sorted : (string * int) array option;
  (* L2 norm of the relative-frequency vector, memoised on first use
     and dropped on mutation, so cosine stops refolding both count
     arrays on every call *)
  mutable cached_norm : float option;
  (* interned view, attached lazily; racy same-value writes from
     worker domains are benign (each domain computes the identical
     arrays from the same frozen dictionary, and an option-pointer
     store is atomic) — the same contract [sorted] already relies on *)
  mutable interned : interned option;
}

let create q =
  {
    q;
    repr = Hashed (Hashtbl.create 256);
    total = 0;
    sorted = None;
    cached_norm = None;
    interned = None;
  }

let invalidate t =
  t.sorted <- None;
  t.cached_norm <- None;
  t.interned <- None

(* Rehydrate a packed profile into the mutable hashtable form before a
   mutation.  The table holds the identical (gram, count) bag, so the
   canonical sorted view — and everything derived from it — is
   unchanged. *)
let force_hashed t =
  match t.repr with
  | Hashed h -> h
  | Packed p ->
    let h = Hashtbl.create (max 256 (2 * Array.length p.pids)) in
    Array.iteri (fun k id -> Hashtbl.replace h (Gram_dict.gram p.pdict id) p.pcounts.(k)) p.pids;
    t.repr <- Hashed h;
    h

let add t s =
  let counts = force_hashed t in
  invalidate t;
  List.iter
    (fun gram ->
      let n = try Hashtbl.find counts gram with Not_found -> 0 in
      Hashtbl.replace counts gram (n + 1);
      t.total <- t.total + 1)
    (Tokenize.qgrams t.q s)

(* Removal is exact integer inversion of [add]: a gram's count drops by
   its multiplicity in the removed string, vanishing from the table at
   zero so [sorted_counts] (and hence every similarity fold, norm and
   interned view) of the patched profile equals that of a profile built
   fresh from the surviving strings. *)
let remove t s =
  let counts = force_hashed t in
  invalidate t;
  List.iter
    (fun gram ->
      let n = try Hashtbl.find counts gram with Not_found -> 0 in
      if n <= 0 then invalid_arg "Profile.patch: removing absent gram";
      if n = 1 then Hashtbl.remove counts gram else Hashtbl.replace counts gram (n - 1);
      t.total <- t.total - 1)
    (Tokenize.qgrams t.q s)

let patch t ~add:adds ~remove:removes =
  List.iter (add t) adds;
  List.iter (remove t) removes

let of_strings ?(q = 3) strings =
  let t = create q in
  List.iter (add t) strings;
  t

let of_strings_array ?(q = 3) strings =
  let t = create q in
  Array.iter (add t) strings;
  t

let gram_count t =
  match t.repr with Hashed h -> Hashtbl.length h | Packed p -> Array.length p.pids

let total t = t.total
let q t = t.q

let sorted_counts t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a =
      match t.repr with
      | Hashed h ->
        Hashtbl.fold (fun gram n acc -> (gram, n) :: acc) h []
        |> List.sort (fun (g1, _) (g2, _) -> String.compare g1 g2)
        |> Array.of_list
      | Packed p ->
        (* ascending ids + id order = gram order: already gram-sorted *)
        Array.init (Array.length p.pids) (fun k ->
            (Gram_dict.gram p.pdict p.pids.(k), p.pcounts.(k)))
    in
    t.sorted <- Some a;
    a

let counts t = sorted_counts t

let of_counts ~q pairs =
  let t = create q in
  let counts = force_hashed t in
  Array.iter
    (fun (gram, n) ->
      Hashtbl.replace counts gram n;
      t.total <- t.total + n)
    pairs;
  t

let of_ids ~q dict ids icounts =
  let total = Array.fold_left ( + ) 0 icounts in
  {
    q;
    repr = Packed { pdict = dict; pids = ids; pcounts = icounts };
    total;
    sorted = None;
    cached_norm = None;
    (* every gram of the profile is, by construction, a dictionary
       gram, so the packed arrays double as a complete interned view *)
    interned = Some { dict; ids; icounts; complete = true };
  }

let sum ?q profiles =
  let q =
    match (q, profiles) with
    | Some q, _ -> q
    | None, p :: _ -> p.q
    | None, [] -> 3
  in
  let t = create q in
  let counts = force_hashed t in
  List.iter
    (fun p ->
      if p.q <> q then invalid_arg "Profile.sum: mixed gram lengths";
      Array.iter
        (fun (gram, n) ->
          let cur = try Hashtbl.find counts gram with Not_found -> 0 in
          Hashtbl.replace counts gram (cur + n);
          t.total <- t.total + n)
        (sorted_counts p))
    profiles;
  t

let to_weighted_bag t =
  if t.total = 0 then []
  else begin
    let denom = float_of_int t.total in
    Array.to_list (sorted_counts t)
    |> List.map (fun (gram, n) -> (gram, float_of_int n /. denom))
  end

(* Same fold, in the same gram-sorted order, as the historical per-call
   norm computation inside [cosine] — cached values are bit-identical
   to freshly folded ones.  The packed branch folds the count column
   directly: same count sequence (id order = gram order), same float
   ops, no string materialised. *)
let norm t =
  match t.cached_norm with
  | Some n -> n
  | None ->
    let total = float_of_int t.total in
    let n =
      match t.repr with
      | Packed p ->
        sqrt
          (Array.fold_left
             (fun acc c ->
               let f = float_of_int c /. total in
               acc +. (f *. f))
             0.0 p.pcounts)
      | Hashed _ ->
        sqrt
          (Array.fold_left
             (fun acc (_, c) ->
               let f = float_of_int c /. total in
               acc +. (f *. f))
             0.0 (sorted_counts t))
    in
    t.cached_norm <- Some n;
    n

let intern dict t =
  match t.interned with
  | Some i when i.dict == dict -> ()
  | prev ->
    let translated =
      (* A *complete* interned view on another dictionary holds every
         gram of the profile, so pushing it through the id translation
         map visits exactly the profile∩dict grams — the very set the
         string pass below would keep — in the same (still ascending)
         id order: one int pass, no hashing, identical arrays. *)
      match prev with
      | Some i when i.complete ->
        let map = Gram_dict.translate i.dict ~into:dict in
        let n = Array.length i.ids in
        let ids = Array.make n 0 in
        let icounts = Array.make n 0 in
        let k = ref 0 in
        for j = 0 to n - 1 do
          let m = map.(i.ids.(j)) in
          if m >= 0 then begin
            ids.(!k) <- m;
            icounts.(!k) <- i.icounts.(j);
            incr k
          end
        done;
        let kept = !k in
        let ids = if kept = n then ids else Array.sub ids 0 kept in
        let icounts = if kept = n then icounts else Array.sub icounts 0 kept in
        Some { dict; ids; icounts; complete = kept = n }
      | _ -> None
    in
    (match translated with
    | Some v ->
      ignore (norm t);
      t.interned <- Some v
    | None ->
      let cs = sorted_counts t in
      let n = Array.length cs in
      let ids = Array.make n 0 in
      let icounts = Array.make n 0 in
      let k = ref 0 in
      Array.iter
        (fun (g, c) ->
          match Gram_dict.find dict g with
          | Some id ->
            ids.(!k) <- id;
            icounts.(!k) <- c;
            incr k
          | None -> ())
        cs;
      (* lexicographic traversal + order-preserving ids = already sorted *)
      let ids = if !k = n then ids else Array.sub ids 0 !k in
      let icounts = if !k = Array.length icounts then icounts else Array.sub icounts 0 !k in
      ignore (norm t);
      t.interned <- Some { dict; ids; icounts; complete = Array.length ids = n })

let interned_with t dict =
  match t.interned with Some i -> i.dict == dict | None -> false

let interned_ids t dict =
  match t.interned with
  | Some i when i.dict == dict -> Some (i.ids, i.icounts)
  | Some _ | None -> None

(* The int fast path is sound only when the two interned views share one
   dictionary and at least one side is [complete]: then every shared
   gram of the pair has an id on both sides, so the id merge join visits
   exactly the grams the string merge join would — in the same
   (gram-lexicographic) order.  When the dictionaries differ (or one
   side is missing a view) but a complete side exists, the other side is
   re-interned against it — via the translation map when it has a
   complete view of its own, via one counts pass otherwise — which pays
   for itself across the many pairs a candidate profile is scored
   against. *)
let rec kernel_pair a b =
  match (a.interned, b.interned) with
  | Some ia, Some ib ->
    if ia.dict == ib.dict then if ia.complete || ib.complete then Some (ia, ib) else None
    else if ib.complete then begin
      intern ib.dict a;
      kernel_pair a b
    end
    else if ia.complete then begin
      intern ia.dict b;
      kernel_pair a b
    end
    else None
  | Some ia, None when ia.complete ->
    intern ia.dict b;
    kernel_pair a b
  | None, Some ib when ib.complete ->
    intern ib.dict a;
    kernel_pair a b
  | (Some _ | None), _ -> None

(* Similarities walk the two sorted-count arrays with a merge join: no
   hashtable iteration, so the float accumulation order is a function of
   the profile's *contents* alone.  The interned path replaces the
   per-gram [String.compare] with int comparisons; both paths add the
   identical terms in the identical order, so their results agree bit
   for bit. *)
let cosine a b =
  if a.total = 0 || b.total = 0 then 0.0
  else begin
    let ta = float_of_int a.total and tb = float_of_int b.total in
    let dot = ref 0.0 in
    (match kernel_pair a b with
    | Some (ia, ib) ->
      let la = Array.length ia.ids and lb = Array.length ib.ids in
      let i = ref 0 and j = ref 0 in
      while !i < la && !j < lb do
        let ga = ia.ids.(!i) and gb = ib.ids.(!j) in
        if ga = gb then begin
          dot :=
            !dot
            +. (float_of_int ia.icounts.(!i) /. ta *. (float_of_int ib.icounts.(!j) /. tb));
          incr i;
          incr j
        end
        else if ga < gb then incr i
        else incr j
      done
    | None ->
      let ca = sorted_counts a and cb = sorted_counts b in
      let i = ref 0 and j = ref 0 in
      while !i < Array.length ca && !j < Array.length cb do
        let ga, na = ca.(!i) and gb, nb = cb.(!j) in
        let c = String.compare ga gb in
        if c = 0 then begin
          dot := !dot +. (float_of_int na /. ta *. (float_of_int nb /. tb));
          incr i;
          incr j
        end
        else if c < 0 then incr i
        else incr j
      done);
    let na = norm a and nb = norm b in
    if na = 0.0 || nb = 0.0 then 0.0 else !dot /. (na *. nb)
  end

let jaccard a b =
  let la = gram_count a and lb = gram_count b in
  if la = 0 && lb = 0 then 1.0
  else begin
    let inter = ref 0 in
    (match kernel_pair a b with
    | Some (ia, ib) ->
      let na = Array.length ia.ids and nb = Array.length ib.ids in
      let i = ref 0 and j = ref 0 in
      while !i < na && !j < nb do
        let ga = ia.ids.(!i) and gb = ib.ids.(!j) in
        if ga = gb then begin
          incr inter;
          incr i;
          incr j
        end
        else if ga < gb then incr i
        else incr j
      done
    | None ->
      let ca = sorted_counts a and cb = sorted_counts b in
      let i = ref 0 and j = ref 0 in
      while !i < la && !j < lb do
        let c = String.compare (fst ca.(!i)) (fst cb.(!j)) in
        if c = 0 then begin
          incr inter;
          incr i;
          incr j
        end
        else if c < 0 then incr i
        else incr j
      done);
    let union = la + lb - !inter in
    if union = 0 then 0.0 else float_of_int !inter /. float_of_int union
  end
