type t = {
  grams : string array;
  ids : (string, int) Hashtbl.t;
  (* dictionary-to-dictionary id translations, keyed by the *physical*
     target dictionary and attached lazily; racy same-value writes from
     worker domains are benign (every domain computes the identical map
     from the two frozen gram arrays, and a list-cons store is atomic —
     a lost entry merely recomputes) *)
  mutable xlat : (t * int array) list;
}

let of_grams grams =
  let sorted = List.sort_uniq String.compare grams in
  let grams = Array.of_list sorted in
  let ids = Hashtbl.create (max 16 (2 * Array.length grams)) in
  Array.iteri (fun i g -> Hashtbl.replace ids g i) grams;
  { grams; ids; xlat = [] }

let find t g = Hashtbl.find_opt t.ids g
let mem t g = Hashtbl.mem t.ids g
let gram t i = t.grams.(i)
let size t = Array.length t.grams

(* Both gram arrays are lex-sorted, so one merge pass maps every id:
   no per-gram hashing, and the resulting map is strictly increasing on
   the shared grams — which is what lets a translated id-sorted count
   array stay sorted without re-sorting. *)
let translate t ~into =
  if t == into then Array.init (size t) Fun.id
  else
    match List.assq_opt into t.xlat with
    | Some map -> map
    | None ->
      let n = Array.length t.grams and m = Array.length into.grams in
      let map = Array.make n (-1) in
      let j = ref 0 in
      for i = 0 to n - 1 do
        let g = t.grams.(i) in
        while !j < m && String.compare into.grams.(!j) g < 0 do
          incr j
        done;
        if !j < m && String.equal into.grams.(!j) g then map.(i) <- !j
      done;
      t.xlat <- (into, map) :: t.xlat;
      map
