type t = {
  grams : string array;
  ids : (string, int) Hashtbl.t;
}

let of_grams grams =
  let sorted = List.sort_uniq String.compare grams in
  let grams = Array.of_list sorted in
  let ids = Hashtbl.create (max 16 (2 * Array.length grams)) in
  Array.iteri (fun i g -> Hashtbl.replace ids g i) grams;
  { grams; ids }

let find t g = Hashtbl.find_opt t.ids g
let mem t g = Hashtbl.mem t.ids g
let gram t i = t.grams.(i)
let size t = Array.length t.grams
