(** Immutable q-gram interner: a dense bijection between a fixed gram
    vocabulary and [0 .. size - 1].

    Ids are assigned in [String.compare] order of the grams, so {e id
    order is gram-lexicographic order}: a merge join over two id-sorted
    count arrays visits shared grams in exactly the order the string
    path's gram-sorted merge join does, which is what keeps interned
    similarity scores bit-identical to string-path scores (the float
    accumulation order is the same).

    The dictionary is frozen at construction — there is no [add].  This
    is the "freeze after build" interner lifecycle: {!Gram_index.build}
    collects every target gram, builds the dictionary once on the main
    domain, and worker domains afterwards only call {!find}/{!gram},
    which never mutate, so sharing a dictionary across a
    [Runtime.Pool] fan-out needs no locking.  Grams outside the
    vocabulary simply have no id; callers fall back to the string path
    (or skip them, for dot products against in-vocabulary profiles,
    where out-of-vocabulary grams cannot contribute). *)

type t

val of_grams : string list -> t
(** Build a frozen dictionary of the distinct grams (duplicates are
    fine); ids follow [String.compare] order. *)

val find : t -> string -> int option
val mem : t -> string -> bool

val gram : t -> int -> string
(** Inverse of {!find}; raises [Invalid_argument] out of range. *)

val size : t -> int

val translate : t -> into:t -> int array
(** [translate t ~into] maps each id of [t] to the id of the same gram
    in [into], or [-1] when [into] lacks the gram.  Because both
    dictionaries assign ids in gram-lexicographic order, the map is
    strictly increasing on the shared grams, so pushing an id-sorted
    count array through it preserves sortedness — an interned profile
    can be re-interned against another frozen dictionary with one int
    pass instead of a string pass.  The map is memoised on [t] (keyed
    by the physical [into]); concurrent same-pair calls may recompute
    the identical array, which is benign. *)
