open Bigarray

type t = {
  dict : Gram_dict.t;
  targets : Profile.t array;
  totals : float array;
  norms : float array;
  (* flat CSR posting arena: one row per gram id, row ids = target
     slots (ascending), row vals = the relative frequency
     [count / total] of that target — the exact float the string merge
     join multiplies by *)
  post : Csr.floats;
  (* flat CSR profile arena: one row per target slot, row ids = gram
     ids (ascending), row vals = integer gram counts.  The columnar
     image of the interned target profiles; [patch] reads old rows from
     here, and partition-style slicing is O(1) offset arithmetic. *)
  tprof : Csr.ints;
  (* per gram id: max posting frequency, for the global top-k bound *)
  post_max : float array;
  (* smallest non-zero target norm, for the global top-k bound *)
  min_norm : float;
  (* ---- block-max structures ----
     Target slots are tiled into blocks of [block_size]; each gram's
     posting row is cut into segments, one per block it posts into.
     Per segment: the block index, the absolute posting index where the
     segment starts (its end is the next segment's start — segments
     tile the posting buffer), and the max frequency within the
     segment.  Together with the per-block minimum non-zero norm these
     give a sound per-block cosine upper bound, so [top_k] can skip a
     whole block's postings when the bound falls below tau. *)
  block_size : int;
  n_blocks : int;
  block_min_norm : float array;
  seg_off : int array; (* n_grams + 1: segment span of each gram *)
  seg_block : int array;
  seg_start : int array;
  seg_max : float array;
}

(* Derive every redundant structure (per-gram maxima, block segments,
   per-block norms, global min norm) from the arenas.  Shared by
   [build] and [patch], so a patched index's pruning structures are the
   same pure function of the (bit-identical) arenas a cold build
   computes. *)
let finalize ~dict ~targets ~totals ~norms ~post ~tprof ~block_size =
  let n_grams = Gram_dict.size dict in
  let n = Array.length targets in
  let n_blocks = (n + block_size - 1) / block_size in
  let offs = post.Csr.f_offsets and pids = post.Csr.f_ids and pvals = post.Csr.f_vals in
  let post_max = Array.make n_grams 0.0 in
  let seg_off = Array.make (n_grams + 1) 0 in
  let nsegs = ref 0 in
  for g = 0 to n_grams - 1 do
    seg_off.(g) <- !nsegs;
    let lo = Array1.unsafe_get offs g and hi = Array1.unsafe_get offs (g + 1) in
    let last_block = ref (-1) in
    for k = lo to hi - 1 do
      let b = Int32.to_int (Array1.unsafe_get pids k) / block_size in
      if b <> !last_block then begin
        incr nsegs;
        last_block := b
      end
    done
  done;
  seg_off.(n_grams) <- !nsegs;
  let seg_block = Array.make (max 1 !nsegs) 0 in
  let seg_start = Array.make (max 1 !nsegs) 0 in
  let seg_max = Array.make (max 1 !nsegs) 0.0 in
  let si = ref 0 in
  for g = 0 to n_grams - 1 do
    let lo = Array1.unsafe_get offs g and hi = Array1.unsafe_get offs (g + 1) in
    let m = ref 0.0 in
    let last_block = ref (-1) in
    for k = lo to hi - 1 do
      let f = Array1.unsafe_get pvals k in
      m := Float.max !m f;
      let b = Int32.to_int (Array1.unsafe_get pids k) / block_size in
      if b <> !last_block then begin
        seg_block.(!si) <- b;
        seg_start.(!si) <- k;
        seg_max.(!si) <- f;
        incr si;
        last_block := b
      end
      else seg_max.(!si - 1) <- Float.max seg_max.(!si - 1) f
    done;
    post_max.(g) <- !m
  done;
  let block_min_norm = Array.make (max 1 n_blocks) infinity in
  for s = 0 to n - 1 do
    let nm = norms.(s) in
    let b = s / block_size in
    if nm > 0.0 && nm < block_min_norm.(b) then block_min_norm.(b) <- nm
  done;
  let min_norm =
    Array.fold_left (fun m nm -> if nm > 0.0 && nm < m then nm else m) infinity norms
  in
  {
    dict;
    targets;
    totals;
    norms;
    post;
    tprof;
    post_max;
    min_norm;
    block_size;
    n_blocks;
    block_min_norm;
    seg_off;
    seg_block;
    seg_start;
    seg_max;
  }

let default_block_size = 64

let build ?(block_size = default_block_size) targets =
  if block_size <= 0 then invalid_arg "Gram_index.build: block_size must be positive";
  let grams =
    Array.fold_left
      (fun acc p ->
        Array.fold_left (fun acc (g, _) -> g :: acc) acc (Profile.counts p))
      [] targets
  in
  let dict = Gram_dict.of_grams grams in
  Array.iter (Profile.intern dict) targets;
  let n_grams = Gram_dict.size dict in
  let n = Array.length targets in
  (* counting pass: per-gram posting count + per-slot interned rows *)
  let row_len = Array.make n_grams 0 in
  let tp_rows = Array.make n ([||], [||]) in
  Array.iteri
    (fun slot p ->
      if Profile.total p > 0 then
        match Profile.interned_ids p dict with
        | None -> assert false
        | Some (ids, counts) ->
          tp_rows.(slot) <- (ids, counts);
          Array.iter (fun id -> row_len.(id) <- row_len.(id) + 1) ids)
    targets;
  let tprof = Csr.pack_ints tp_rows in
  (* fill pass in ascending slot order: each gram's postings come out
     slot-sorted with no per-row sort *)
  let post = Csr.alloc_floats row_len in
  let cursor = Array.make n_grams 0 in
  Array.iteri
    (fun slot p ->
      if Profile.total p > 0 then begin
        let total = float_of_int (Profile.total p) in
        let ids, counts = tp_rows.(slot) in
        Array.iteri
          (fun k id ->
            let pos = Array1.unsafe_get post.Csr.f_offsets id + cursor.(id) in
            cursor.(id) <- cursor.(id) + 1;
            Array1.unsafe_set post.Csr.f_ids pos (Int32.of_int slot);
            Array1.unsafe_set post.Csr.f_vals pos (float_of_int counts.(k) /. total))
          ids
      end)
    targets;
  let norms = Array.map Profile.norm targets in
  let totals = Array.map (fun p -> float_of_int (Profile.total p)) targets in
  finalize ~dict ~targets ~totals ~norms ~post ~tprof ~block_size

let dict t = t.dict
let length t = Array.length t.targets
let gram_count t = Gram_dict.size t.dict
let target t i = t.targets.(i)
let block_size t = t.block_size
let block_count t = t.n_blocks
let arena_bytes t = Csr.floats_bytes t.post + Csr.ints_bytes t.tprof

(* Iterate the candidate's in-vocabulary grams in gram-lexicographic
   order with their relative frequencies — through the interned view
   when one against this dictionary is attached (the view's id set is
   exactly the profile∩dict grams, id-sorted), through a string walk
   with per-gram dictionary lookups otherwise.  Both yield the same
   (id, frequency) sequence, so every consumer accumulates the same
   floats in the same order. *)
let iter_cand t cand f =
  let tc = float_of_int (Profile.total cand) in
  match Profile.interned_ids cand t.dict with
  | Some (ids, counts) ->
    Array.iteri (fun k id -> f id (float_of_int counts.(k) /. tc)) ids
  | None ->
    Array.iter
      (fun (g, c) ->
        match Gram_dict.find t.dict g with
        | None -> ()
        | Some id -> f id (float_of_int c /. tc))
      (Profile.counts cand)

(* First segment index in [s0, s1) whose block is >= blo. *)
let seg_lower_bound t s0 s1 blo =
  if blo = 0 then s0
  else begin
    let lo = ref s0 and hi = ref s1 in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.seg_block.(mid) < blo then lo := mid + 1 else hi := mid
    done;
    !lo
  end

(* Segments tile the whole posting buffer in order, so a segment ends
   where the next one starts (the next segment may belong to the next
   gram — its start is still this row's end). *)
let seg_end t k =
  if k + 1 < t.seg_off.(Gram_dict.size t.dict) then t.seg_start.(k + 1)
  else Csr.floats_nnz t.post

type range_stats = {
  r_touched : int;
  r_blocks : int;
  r_block_skips : int;
  r_posting_skips : int;
}

(* Exact TAAT accumulation over the target slots [lo, hi), with
   block-max pruning when [tau > 0].

   Exactness: for each surviving target, the terms that reach its
   accumulator are exactly the candidate∩target grams, visited in the
   candidate's gram-sorted order — the same terms, in the same order,
   as the string merge join of [Profile.cosine], so the final quotients
   agree bit for bit.  Because a range restriction only drops whole
   targets (never a term of a surviving target), the slice equals the
   corresponding slice of a full scoring pass — which is what makes
   sharded accumulation's concatenated slices bit-identical to the
   sequential pass.

   Block-max soundness: per block [b], pass 1 accumulates
   [bound(b) = sum fc * seg_max] over the candidate grams in the same
   gram order as the exact pass.  Termwise [freq <= seg_max] for every
   posting of [b], the bound's term sequence is a superset of any
   target's exact term sequence in aligned order, and IEEE addition /
   multiplication / division of non-negative operands are monotone, so
   [bound(b) / (nc * block_min_norm(b))] computed in floats dominates
   every exact cosine of the block.  A block is skipped only when that
   dominating value is < tau (or the block has no non-zero-norm target,
   whose cosines are exactly 0 < tau), so no qualifying target is ever
   pruned. *)
let scores_range t cand ~tau ~lo ~hi =
  let n = Array.length t.targets in
  if lo < 0 || hi < lo || hi > n then invalid_arg "Gram_index.scores_range: bad range";
  if lo mod t.block_size <> 0 || (hi <> n && hi mod t.block_size <> 0) then
    invalid_arg "Gram_index.scores_range: range must be block-aligned";
  let len = hi - lo in
  let acc = Array.make (max 1 len) 0.0 in
  let touched = Array.make (max 1 len) false in
  let cand_total = Profile.total cand in
  let nc = Profile.norm cand in
  let blo = lo / t.block_size in
  let bhi = (hi + t.block_size - 1) / t.block_size in
  let range_blocks = max 0 (bhi - blo) in
  let block_skips = ref 0 in
  let posting_skips = ref 0 in
  if cand_total > 0 then begin
    let skip =
      if tau > 0.0 && nc > 0.0 && range_blocks > 0 then begin
        (* pass 1: per-block dot-product upper bounds *)
        let bounds = Array.make range_blocks 0.0 in
        iter_cand t cand (fun id fc ->
            let s1 = t.seg_off.(id + 1) in
            let k = ref (seg_lower_bound t t.seg_off.(id) s1 blo) in
            while !k < s1 && t.seg_block.(!k) < bhi do
              let b = t.seg_block.(!k) - blo in
              bounds.(b) <- bounds.(b) +. (fc *. t.seg_max.(!k));
              incr k
            done);
        let sk = Array.make range_blocks false in
        for b = 0 to range_blocks - 1 do
          let mn = t.block_min_norm.(blo + b) in
          if mn = infinity || bounds.(b) /. (nc *. mn) < tau then begin
            sk.(b) <- true;
            incr block_skips
          end
        done;
        Some sk
      end
      else None
    in
    (* pass 2: exact accumulation, segment-walked; a segment of a
       skipped block is jumped over in O(1) *)
    let pids = t.post.Csr.f_ids and pvals = t.post.Csr.f_vals in
    iter_cand t cand (fun id fc ->
        let s1 = t.seg_off.(id + 1) in
        let k = ref (seg_lower_bound t t.seg_off.(id) s1 blo) in
        while !k < s1 && t.seg_block.(!k) < bhi do
          let pstart = t.seg_start.(!k) in
          let pend = seg_end t !k in
          (match skip with
          | Some sk when sk.(t.seg_block.(!k) - blo) ->
            posting_skips := !posting_skips + (pend - pstart)
          | Some _ | None ->
            for p = pstart to pend - 1 do
              let s = Int32.to_int (Array1.unsafe_get pids p) - lo in
              acc.(s) <- acc.(s) +. (fc *. Array1.unsafe_get pvals p);
              touched.(s) <- true
            done);
          incr k
        done)
  end;
  let touched_n = ref 0 in
  for s = 0 to len - 1 do
    if touched.(s) then incr touched_n;
    let slot = lo + s in
    acc.(s) <-
      (if cand_total = 0 || Profile.total t.targets.(slot) = 0 then 0.0
       else if nc = 0.0 || t.norms.(slot) = 0.0 then 0.0
       else acc.(s) /. (nc *. t.norms.(slot)))
  done;
  let acc = if len = Array.length acc then acc else Array.sub acc 0 len in
  ( acc,
    {
      r_touched = !touched_n;
      r_blocks = range_blocks;
      r_block_skips = !block_skips;
      r_posting_skips = !posting_skips;
    } )

let scores t cand =
  let acc, st = scores_range t cand ~tau:0.0 ~lo:0 ~hi:(Array.length t.targets) in
  (acc, st.r_touched)

(* Upper bound on [cosine cand target] for *any* target: every dot term
   is at most the candidate frequency times the gram's largest posting
   frequency, and dividing by the smallest target norm — a deliberately
   *global* minimum, so the bound is one fold however many targets —
   can only overestimate the quotient.  Sound, so a bound below the
   threshold proves no target can qualify; the per-block norms inside
   [scores_range] tighten the same idea block by block once this coarse
   gate passes. *)
let cosine_upper_bound t cand =
  let cand_total = Profile.total cand in
  if cand_total = 0 then 0.0
  else begin
    let dot_ub = ref 0.0 in
    iter_cand t cand (fun id fc -> dot_ub := !dot_ub +. (fc *. t.post_max.(id)));
    let nc = Profile.norm cand in
    if nc = 0.0 || t.min_norm = infinity then 0.0 else !dot_ub /. (nc *. t.min_norm)
  end

type topk_stats = {
  scored : int;
  pruned : int;
  bound_skip : bool;
  blocks : int;
  block_skips : int;
  posting_skips : int;
}

(* Deterministic threshold-filter / sort / truncate over a full scores
   array — the selection step shared by the one-shot and the sharded
   top-k paths, so both break rank-k ties identically (score desc, slot
   asc). *)
let select all ~k ~tau =
  let hits = ref [] in
  for s = Array.length all - 1 downto 0 do
    if all.(s) >= tau then hits := (s, all.(s)) :: !hits
  done;
  let sorted =
    List.sort
      (fun (i, a) (j, b) ->
        let c = Float.compare b a in
        if c <> 0 then c else Int.compare i j)
      !hits
  in
  List.filteri (fun i _ -> i < k) sorted

let top_k t cand ~k ~tau =
  let n = Array.length t.targets in
  if tau > 0.0 && cosine_upper_bound t cand < tau then
    (* no target can reach tau: prove it once, skip all postings *)
    ( [],
      {
        scored = 0;
        pruned = n;
        bound_skip = true;
        blocks = t.n_blocks;
        block_skips = 0;
        posting_skips = 0;
      } )
  else begin
    let all, st = scores_range t cand ~tau ~lo:0 ~hi:n in
    let top = select all ~k ~tau in
    ( top,
      {
        scored = st.r_touched;
        pruned = n - st.r_touched;
        bound_skip = false;
        blocks = st.r_blocks;
        block_skips = st.r_block_skips;
        posting_skips = st.r_posting_skips;
      } )
  end

(* Slot replacement against the frozen dictionary.  The dict never
   grows (id order = gram order is what makes the interned merge join's
   accumulation order match the string path), so an update whose
   profile holds an out-of-vocabulary gram cannot be expressed — we
   return [None] and the caller rebuilds.  Grams whose postings empty
   out stay in the dictionary as zero-length arena rows; they are
   score-neutral: the accumulation walks an empty row (adds nothing)
   and [cosine_upper_bound] adds [fc *. 0.0] — a +0.0 term on a
   non-negative accumulator, bitwise invisible.  Touched posting rows
   are rebuilt with the exact folds [build] uses and untouched rows are
   bulk-blitted (bit-preserving) into the new arena, then [finalize]
   recomputes the pruning structures from the arenas, so every score of
   the patched index is bit-identical to a cold [build] over the new
   targets.

   Cost is honest O(delta) posting work plus an O(arena) copy: the
   splice allocates fresh flat buffers and memcpy-blits the untouched
   rows, which is far cheaper than the re-tokenisation a cold rebuild
   pays but is not free — the arena is contiguous, so there is no
   in-place per-row update without giving up the layout. *)
let patch t updates =
  let in_vocab (_, p) =
    Profile.intern t.dict p;
    match Profile.interned_ids p t.dict with
    | Some (ids, _) -> Array.length ids = Profile.gram_count p
    | None -> false
  in
  if not (List.for_all in_vocab updates) then None
  else begin
    let n = Array.length t.targets in
    let n_grams = Gram_dict.size t.dict in
    let targets = Array.copy t.targets in
    let totals = Array.copy t.totals in
    let norms = Array.copy t.norms in
    (* sequential replacement semantics: a slot listed twice keeps the
       last profile, exactly as iterating the updates in order would *)
    let repl = Hashtbl.create 8 in
    List.iter
      (fun (slot, p) ->
        if slot < 0 || slot >= n then invalid_arg "Gram_index.patch: slot out of range";
        Hashtbl.replace repl slot p)
      updates;
    let patched_slots =
      Hashtbl.fold (fun s _ acc -> s :: acc) repl [] |> List.sort Int.compare
    in
    let is_patched = Array.make n false in
    List.iter (fun s -> is_patched.(s) <- true) patched_slots;
    (* Touched grams: everything in an old or new profile of a patched
       slot.  New postings are collected per gram in ascending slot
       order (the outer walk is slot-ascending). *)
    let touched = Hashtbl.create 64 in
    let new_by_gram = Hashtbl.create 64 in
    List.iter
      (fun slot ->
        let p = Hashtbl.find repl slot in
        let old_ids, _ = Csr.ints_row t.tprof slot in
        Array.iter (fun id -> Hashtbl.replace touched id ()) old_ids;
        let total = Profile.total p in
        if total > 0 then begin
          let tf = float_of_int total in
          match Profile.interned_ids p t.dict with
          | None -> assert false
          | Some (ids, counts) ->
            Array.iteri
              (fun k id ->
                Hashtbl.replace touched id ();
                let cell =
                  match Hashtbl.find_opt new_by_gram id with
                  | Some c -> c
                  | None ->
                    let c = ref [] in
                    Hashtbl.add new_by_gram id c;
                    c
                in
                (* the exact relative frequency [build] computes *)
                cell := (slot, float_of_int counts.(k) /. tf) :: !cell)
              ids
        end)
      patched_slots;
    (* Walk touched gram ids in ascending id (= gram-lexicographic)
       order, not Hashtbl order: each row rebuild is independent, but a
       canonical walk keeps patch traces and any future side effects
       byte-stable whatever the hash seeding. *)
    let touched_ids =
      Hashtbl.fold (fun id () acc -> id :: acc) touched [] |> List.sort Int.compare
    in
    let rebuilt = Hashtbl.create (max 16 (List.length touched_ids)) in
    List.iter
      (fun id ->
        let slots, freqs = Csr.floats_row t.post id in
        let olds = ref [] in
        Array.iteri
          (fun k s -> if not is_patched.(s) then olds := (s, freqs.(k)) :: !olds)
          slots;
        let news =
          match Hashtbl.find_opt new_by_gram id with Some c -> List.rev !c | None -> []
        in
        (* both lists are slot-ascending with disjoint slots (news only
           holds patched slots, olds none), so one merge restores the
           canonical order *)
        let rec merge a b acc =
          match (a, b) with
          | [], rest | rest, [] -> List.rev_append acc rest
          | ((sa, _) as ha) :: ta, ((sb, _) as hb) :: tb ->
            if sa < sb then merge ta b (ha :: acc) else merge a tb (hb :: acc)
        in
        let entries = Array.of_list (merge (List.rev !olds) news []) in
        Hashtbl.replace rebuilt id (Array.map fst entries, Array.map snd entries))
      touched_ids;
    (* splice: untouched posting rows blit over bit-for-bit, touched
       rows are written from the rebuilt entries *)
    let old_offs = t.post.Csr.f_offsets in
    let row_len =
      Array.init n_grams (fun g ->
          match Hashtbl.find_opt rebuilt g with
          | Some (s, _) -> Array.length s
          | None -> Array1.get old_offs (g + 1) - Array1.get old_offs g)
    in
    let post = Csr.alloc_floats row_len in
    for g = 0 to n_grams - 1 do
      let dst = Array1.get post.Csr.f_offsets g in
      match Hashtbl.find_opt rebuilt g with
      | Some (slots, freqs) ->
        Array.iteri
          (fun k s ->
            Array1.unsafe_set post.Csr.f_ids (dst + k) (Int32.of_int s);
            Array1.unsafe_set post.Csr.f_vals (dst + k) freqs.(k))
          slots
      | None ->
        let src = Array1.get old_offs g in
        let len = row_len.(g) in
        if len > 0 then begin
          Array1.blit
            (Array1.sub t.post.Csr.f_ids src len)
            (Array1.sub post.Csr.f_ids dst len);
          Array1.blit
            (Array1.sub t.post.Csr.f_vals src len)
            (Array1.sub post.Csr.f_vals dst len)
        end
    done;
    (* profile arena: patched rows take the new interned columns,
       untouched rows blit over *)
    let old_toffs = t.tprof.Csr.i_offsets in
    let new_rows = Hashtbl.create 8 in
    List.iter
      (fun slot ->
        let p = Hashtbl.find repl slot in
        let row =
          if Profile.total p > 0 then
            match Profile.interned_ids p t.dict with
            | Some (ids, counts) -> (ids, counts)
            | None -> ([||], [||])
          else ([||], [||])
        in
        Hashtbl.replace new_rows slot row)
      patched_slots;
    let trow_len =
      Array.init n (fun s ->
          match Hashtbl.find_opt new_rows s with
          | Some (ids, _) -> Array.length ids
          | None -> Array1.get old_toffs (s + 1) - Array1.get old_toffs s)
    in
    let tprof = Csr.alloc_ints trow_len in
    for s = 0 to n - 1 do
      let dst = Array1.get tprof.Csr.i_offsets s in
      match Hashtbl.find_opt new_rows s with
      | Some (ids, counts) ->
        Array.iteri
          (fun k id ->
            Array1.unsafe_set tprof.Csr.i_ids (dst + k) (Int32.of_int id);
            Array1.unsafe_set tprof.Csr.i_vals (dst + k) (Int32.of_int counts.(k)))
          ids
      | None ->
        let src = Array1.get old_toffs s in
        let len = trow_len.(s) in
        if len > 0 then begin
          Array1.blit
            (Array1.sub t.tprof.Csr.i_ids src len)
            (Array1.sub tprof.Csr.i_ids dst len);
          Array1.blit
            (Array1.sub t.tprof.Csr.i_vals src len)
            (Array1.sub tprof.Csr.i_vals dst len)
        end
    done;
    List.iter
      (fun slot ->
        let p = Hashtbl.find repl slot in
        norms.(slot) <- Profile.norm p;
        totals.(slot) <- float_of_int (Profile.total p);
        targets.(slot) <- p)
      patched_slots;
    Some (finalize ~dict:t.dict ~targets ~totals ~norms ~post ~tprof ~block_size:t.block_size)
  end
