type t = {
  dict : Gram_dict.t;
  targets : Profile.t array;
  totals : float array;
  norms : float array;
  (* per gram id: target slots (ascending) and the matching relative
     frequency [count / total] of that target — the exact float the
     string merge join multiplies by *)
  post_tgt : int array array;
  post_freq : float array array;
  (* per gram id: max posting frequency, for the top-k upper bound *)
  post_max : float array;
  (* smallest non-zero target norm, for the top-k upper bound *)
  min_norm : float;
}

let build targets =
  let grams =
    Array.fold_left
      (fun acc p ->
        Array.fold_left (fun acc (g, _) -> g :: acc) acc (Profile.counts p))
      [] targets
  in
  let dict = Gram_dict.of_grams grams in
  Array.iter (Profile.intern dict) targets;
  let n_grams = Gram_dict.size dict in
  let buckets = Array.make n_grams [] in
  Array.iteri
    (fun slot p ->
      let total = float_of_int (Profile.total p) in
      if Profile.total p > 0 then
        match Profile.interned_ids p dict with
        | None -> assert false
        | Some (ids, counts) ->
          Array.iteri
            (fun k id -> buckets.(id) <- (slot, float_of_int counts.(k) /. total) :: buckets.(id))
            ids)
    targets;
  let post_tgt = Array.make n_grams [||] in
  let post_freq = Array.make n_grams [||] in
  let post_max = Array.make n_grams 0.0 in
  Array.iteri
    (fun id bucket ->
      (* buckets were prepended in ascending slot order *)
      let entries = Array.of_list (List.rev bucket) in
      post_tgt.(id) <- Array.map fst entries;
      post_freq.(id) <- Array.map snd entries;
      post_max.(id) <- Array.fold_left (fun m (_, f) -> Float.max m f) 0.0 entries)
    buckets;
  let norms = Array.map Profile.norm targets in
  let totals = Array.map (fun p -> float_of_int (Profile.total p)) targets in
  let min_norm =
    Array.fold_left (fun m n -> if n > 0.0 && n < m then n else m) infinity norms
  in
  { dict; targets; totals; norms; post_tgt; post_freq; post_max; min_norm }

(* O(delta) slot replacement against the frozen dictionary.  The dict
   never grows (id order = gram order is what makes the interned merge
   join's accumulation order match the string path), so an update whose
   profile holds an out-of-vocabulary gram cannot be expressed — we
   return [None] and the caller rebuilds.  Grams whose postings empty
   out stay in the dictionary; they are score-neutral: [scores] walks
   candidate grams and finds empty postings (adds nothing), and
   [cosine_upper_bound] adds [c/tc *. 0.0] — a +0.0 term on a
   non-negative accumulator, bitwise invisible.  Touched posting lists
   and their maxima are rebuilt with the exact folds [build] uses, and
   untouched postings keep their original floats, so every score of the
   patched index is bit-identical to a cold [build] over the new
   targets. *)
let patch t updates =
  let updates = Array.of_list updates in
  let in_vocab (_, p) =
    Profile.intern t.dict p;
    match Profile.interned_ids p t.dict with
    | Some (ids, _) -> Array.length ids = Profile.gram_count p
    | None -> false
  in
  if not (Array.for_all in_vocab updates) then None
  else begin
    let targets = Array.copy t.targets in
    let totals = Array.copy t.totals in
    let norms = Array.copy t.norms in
    let post_tgt = Array.copy t.post_tgt in
    let post_freq = Array.copy t.post_freq in
    let post_max = Array.copy t.post_max in
    Array.iter
      (fun (slot, new_p) ->
        if slot < 0 || slot >= Array.length targets then
          invalid_arg "Gram_index.patch: slot out of range";
        let old_p = targets.(slot) in
        Profile.intern t.dict old_p;
        let old_ids =
          if Profile.total old_p > 0 then
            match Profile.interned_ids old_p t.dict with
            | Some (ids, _) -> ids
            | None -> [||]
          else [||]
        in
        let new_ids, new_counts =
          match Profile.interned_ids new_p t.dict with
          | Some v -> v
          | None -> ([||], [||])
        in
        let new_total = Profile.total new_p in
        let total_f = float_of_int new_total in
        (* the exact relative frequency [build] computes per posting *)
        let freq_of = Hashtbl.create (Array.length new_ids) in
        if new_total > 0 then
          Array.iteri
            (fun k id -> Hashtbl.replace freq_of id (float_of_int new_counts.(k) /. total_f))
            new_ids;
        let touched = Hashtbl.create 64 in
        Array.iter (fun id -> Hashtbl.replace touched id ()) old_ids;
        if new_total > 0 then Array.iter (fun id -> Hashtbl.replace touched id ()) new_ids;
        (* Walk touched gram ids in ascending id (= gram-lexicographic)
           order, not Hashtbl order: each posting rebuild is
           independent, but a canonical walk keeps patch traces, fault
           injection points and any future side effects byte-stable
           whatever the hash seeding. *)
        let touched_ids =
          Hashtbl.fold (fun id () acc -> id :: acc) touched [] |> List.sort Int.compare
        in
        List.iter
          (fun id ->
            let tgts = post_tgt.(id) and freqs = post_freq.(id) in
            let n = Array.length tgts in
            let entries = ref [] in
            let inserted = ref false in
            let insert_new () =
              (match Hashtbl.find_opt freq_of id with
              | Some f -> entries := (slot, f) :: !entries
              | None -> ());
              inserted := true
            in
            for k = 0 to n - 1 do
              let s = tgts.(k) in
              if s = slot then () (* drop the replaced slot's posting *)
              else begin
                if s > slot && not !inserted then insert_new ();
                entries := (s, freqs.(k)) :: !entries
              end
            done;
            if not !inserted then insert_new ();
            let entries = Array.of_list (List.rev !entries) in
            post_tgt.(id) <- Array.map fst entries;
            post_freq.(id) <- Array.map snd entries;
            post_max.(id) <- Array.fold_left (fun m (_, f) -> Float.max m f) 0.0 entries)
          touched_ids;
        norms.(slot) <- Profile.norm new_p;
        totals.(slot) <- total_f;
        targets.(slot) <- new_p)
      updates;
    let min_norm =
      Array.fold_left (fun m n -> if n > 0.0 && n < m then n else m) infinity norms
    in
    Some { t with targets; totals; norms; post_tgt; post_freq; post_max; min_norm }
  end

let dict t = t.dict
let length t = Array.length t.targets
let gram_count t = Gram_dict.size t.dict
let target t i = t.targets.(i)

(* Term-at-a-time accumulation.  For each target, the terms that reach
   its accumulator are exactly the candidate∩target grams, visited in
   the candidate's gram-sorted order — the same terms, in the same
   order, as the string merge join of [Profile.cosine], so the final
   quotients agree bit for bit.  Targets never touched share no gram
   with the candidate: their cosine is exactly 0, with no computation
   spent proving it. *)
let scores t cand =
  let n = Array.length t.targets in
  let acc = Array.make n 0.0 in
  let touched = Array.make n false in
  let cand_total = Profile.total cand in
  if cand_total > 0 then begin
    let tc = float_of_int cand_total in
    Array.iter
      (fun (g, c) ->
        match Gram_dict.find t.dict g with
        | None -> ()
        | Some id ->
          let fc = float_of_int c /. tc in
          let tgts = t.post_tgt.(id) and freqs = t.post_freq.(id) in
          for k = 0 to Array.length tgts - 1 do
            let s = tgts.(k) in
            acc.(s) <- acc.(s) +. (fc *. freqs.(k));
            touched.(s) <- true
          done)
      (Profile.counts cand)
  end;
  let nc = Profile.norm cand in
  let touched_n = ref 0 in
  for s = 0 to n - 1 do
    if touched.(s) then incr touched_n;
    acc.(s) <-
      (if cand_total = 0 || Profile.total t.targets.(s) = 0 then 0.0
       else if nc = 0.0 || t.norms.(s) = 0.0 then 0.0
       else acc.(s) /. (nc *. t.norms.(s)))
  done;
  (acc, !touched_n)

(* Upper bound on [cosine cand target] for *any* target: every dot term
   is at most the candidate frequency times the gram's largest posting
   frequency, and dividing by the smallest target norm can only
   overestimate the quotient.  Sound, so a bound below the threshold
   proves no target can qualify. *)
let cosine_upper_bound t cand =
  let cand_total = Profile.total cand in
  if cand_total = 0 then 0.0
  else begin
    let tc = float_of_int cand_total in
    let dot_ub =
      Array.fold_left
        (fun acc (g, c) ->
          match Gram_dict.find t.dict g with
          | None -> acc
          | Some id -> acc +. (float_of_int c /. tc *. t.post_max.(id)))
        0.0 (Profile.counts cand)
    in
    let nc = Profile.norm cand in
    if nc = 0.0 || t.min_norm = infinity then 0.0 else dot_ub /. (nc *. t.min_norm)
  end

type topk_stats = { scored : int; pruned : int; bound_skip : bool }

let top_k t cand ~k ~tau =
  let n = Array.length t.targets in
  if tau > 0.0 && cosine_upper_bound t cand < tau then
    (* no target can reach tau: prove it once, skip all postings *)
    ([], { scored = 0; pruned = n; bound_skip = true })
  else begin
    let all, touched = scores t cand in
    let hits = ref [] in
    for s = n - 1 downto 0 do
      if all.(s) >= tau then hits := (s, all.(s)) :: !hits
    done;
    let sorted =
      List.sort
        (fun (i, a) (j, b) ->
          let c = Float.compare b a in
          if c <> 0 then c else Int.compare i j)
        !hits
    in
    let top = List.filteri (fun i _ -> i < k) sorted in
    (top, { scored = touched; pruned = n - touched; bound_skip = false })
  end
