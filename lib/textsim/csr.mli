(** Flat CSR (compressed sparse row) arenas over [Bigarray].

    One arena holds every row of a frozen collection — interned profile
    count vectors, or inverted-index posting lists — in three flat
    buffers: an [int] offsets array ([rows + 1] entries, row [r] spans
    [offsets.(r) .. offsets.(r+1) - 1]), an [int32] id column and a
    value column.  Flat storage makes row iteration cache-linear (no
    pointer chase through boxed [array array]s), slicing a row is O(1)
    arithmetic on the offsets, and the buffers are plain [Bigarray]s —
    the exact shape a memory-mapped store shard would hand back, so the
    arena layout doubles as the future on-disk layout.

    Values are [int32] for integer counts and [float64] for posting
    frequencies: the frequencies are {e the} floats the scoring kernel
    accumulates, so narrowing them (e.g. to [float32]) would break the
    bit-identity contract with the string scoring path.

    The record fields are exposed (not abstracted) on purpose: the
    scoring kernel's inner loops read the buffers directly with
    [Array1.unsafe_get], and an accessor per posting would defeat the
    point of the layout. *)

open Bigarray

type ints = {
  i_offsets : (int, int_elt, c_layout) Array1.t;
  i_ids : (int32, int32_elt, c_layout) Array1.t;
  i_vals : (int32, int32_elt, c_layout) Array1.t;
}
(** Integer-valued rows, e.g. one interned profile (gram id, count) per
    row.  Ids are ascending within a row. *)

type floats = {
  f_offsets : (int, int_elt, c_layout) Array1.t;
  f_ids : (int32, int32_elt, c_layout) Array1.t;
  f_vals : (float, float64_elt, c_layout) Array1.t;
}
(** Float-valued rows, e.g. one posting list (target slot, relative
    frequency) per gram.  Ids are ascending within a row. *)

val pack_ints : (int array * int array) array -> ints
(** Pack per-row [(ids, vals)] pairs (equal lengths per row; ids must
    already be ascending) into one arena. *)

val pack_floats : (int array * float array) array -> floats

val alloc_ints : int array -> ints
(** Allocate an arena with offsets computed from per-row lengths; the
    id/value buffers are uninitialised — the caller fills (or blits)
    every row.  Lets a splice-rebuild copy untouched rows with bulk
    [Array1.blit] (bit-preserving) instead of round-tripping through
    boxed arrays. *)

val alloc_floats : int array -> floats

val ints_rows : ints -> int
val floats_rows : floats -> int
val ints_nnz : ints -> int
val floats_nnz : floats -> int

val ints_row : ints -> int -> int array * int array
(** Copy row [r] back out as boxed arrays (slicing convenience for
    cold paths and tests; hot loops read the buffers directly). *)

val floats_row : floats -> int -> int array * float array

val ints_bytes : ints -> int
(** Total buffer footprint in bytes (offsets + ids + vals). *)

val floats_bytes : floats -> int
