exception Parse_error of { line : int; message : string }

type mode = Strict | Lenient

(* Records with their 1-based starting line, plus the ingestion issues a
   Lenient parse tolerated.  A UTF-8 byte-order mark before the header
   is skipped; a line holding nothing at all (no field text, separator
   or quote) is a blank line, not a phantom [""] record; lone \r line
   separators are accepted alongside \n and \r\n. *)
let parse_records ?(separator = ',') ~mode text =
  let issues = ref [] in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 64 in
  let line = ref 1 in
  let record_line = ref 1 in
  let quote_line = ref 1 in
  let saw_quote = ref false in
  let n = String.length text in
  let start =
    if n >= 3 && String.sub text 0 3 = "\xEF\xBB\xBF" then 3 else 0
  in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let push_record () =
    push_field ();
    records := (!record_line, List.rev !fields) :: !records;
    fields := [];
    saw_quote := false
  in
  let end_record () =
    if Buffer.length buf > 0 || !fields <> [] || !saw_quote then push_record ()
  in
  (* States: 0 = unquoted, 1 = inside quotes, 2 = just saw a quote while
     inside quotes (either the closing quote or the first of a doubled
     quote). *)
  let rec go i state =
    if i >= n then begin
      match state with
      | 1 ->
        if mode = Strict then
          raise (Parse_error { line = !quote_line; message = "unterminated quoted field" });
        issues :=
          Robust.Error.v ~severity:Robust.Error.Warning ~line:!quote_line
            Robust.Error.Ingest "unterminated quoted field closed at end of input"
          :: !issues;
        push_record ()
      | 0 | 2 | _ -> end_record ()
    end
    else begin
      let c = text.[i] in
      match state with
      | 0 ->
        if c = separator then begin push_field (); go (i + 1) 0 end
        else if c = '"' && Buffer.length buf = 0 then begin
          quote_line := !line;
          saw_quote := true;
          go (i + 1) 1
        end
        else if c = '\n' then begin
          incr line;
          end_record ();
          record_line := !line;
          go (i + 1) 0
        end
        else if c = '\r' then begin
          incr line;
          end_record ();
          record_line := !line;
          if i + 1 < n && text.[i + 1] = '\n' then go (i + 2) 0 else go (i + 1) 0
        end
        else begin Buffer.add_char buf c; go (i + 1) 0 end
      | 1 ->
        if c = '"' then go (i + 1) 2
        else begin
          (* count embedded record separators once, whether \n, \r\n or
             lone \r, so reported line numbers stay aligned *)
          if c = '\n' then incr line
          else if c = '\r' && not (i + 1 < n && text.[i + 1] = '\n') then incr line;
          Buffer.add_char buf c;
          go (i + 1) 1
        end
      | 2 | _ ->
        if c = '"' then begin Buffer.add_char buf '"'; go (i + 1) 1 end
        else go i 0
    end
  in
  go start 0;
  (List.rev !records, List.rev !issues)

let parse_string ?separator text =
  List.map snd (fst (parse_records ?separator ~mode:Strict text))

(* Bounded retry with exponential backoff around whole-file reads:
   transient IO errors (and injected File_read faults) are retried
   [retries] times before the last failure propagates. *)
let read_file ?(retries = 2) ?(backoff_ms = 10) path =
  let read () =
    Robust.Fault.check Robust.Fault.File_read ~key:path;
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let rec attempt k backoff =
    try read ()
    with (Sys_error _ | End_of_file | Robust.Fault.Injected _) as e ->
      if k >= retries then raise e
      else begin
        Obs.Metrics.incr "csv.read_retries";
        if backoff > 0 then Unix.sleepf (float_of_int backoff /. 1000.0);
        attempt (k + 1) (backoff * 2)
      end
  in
  Obs.Trace.with_span "csv.read" (fun () -> attempt 0 backoff_ms)

let parse_file ?separator path = parse_string ?separator (read_file path)

let needs_quoting separator field =
  String.exists (fun c -> c = separator || c = '"' || c = '\n' || c = '\r') field

let render_field separator field =
  if needs_quoting separator field then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let to_string ?(separator = ',') records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun record ->
      Buffer.add_string buf
        (String.concat (String.make 1 separator) (List.map (render_field separator) record));
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let write_file ?separator path records =
  let oc = open_out_bin path in
  output_string oc (to_string ?separator records);
  close_out oc

(* Plain decimal syntax only: int_of_string/float_of_string also accept
   hex/octal/binary literals, underscores, and nan/inf tokens (plus
   overflowing exponents like 1e999 turning into infinity), none of
   which should type a CSV column as numeric. *)
let is_digit c = c >= '0' && c <= '9'

let is_plain_int s =
  let n = String.length s in
  let start = if n > 0 && (s.[0] = '-' || s.[0] = '+') then 1 else 0 in
  let ok = ref (n > start) in
  for i = start to n - 1 do
    if not (is_digit s.[i]) then ok := false
  done;
  !ok

let is_plain_float s =
  let n = String.length s in
  let i = ref (if n > 0 && (s.[0] = '-' || s.[0] = '+') then 1 else 0) in
  let digits () =
    let from = !i in
    while !i < n && is_digit s.[!i] do incr i done;
    !i > from
  in
  let int_part = digits () in
  let frac_part =
    if !i < n && s.[!i] = '.' then begin incr i; digits () || int_part end
    else int_part
  in
  if not (int_part || frac_part) then false
  else if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
    incr i;
    if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
    digits () && !i = n
  end
  else !i = n

let parses_as_int s = is_plain_int s && int_of_string_opt s <> None

let parses_as_float s =
  is_plain_float s
  && (match float_of_string_opt s with Some f -> Float.is_finite f | None -> false)

let infer_column_type fields =
  let non_empty = List.filter (fun s -> String.trim s <> "") fields in
  if non_empty = [] then Value.Tstring
  else begin
    let all p = List.for_all p non_empty in
    if all (fun s -> parses_as_int (String.trim s)) then Value.Tint
    else if all (fun s -> parses_as_float (String.trim s)) then Value.Tfloat
    else if
      all (fun s ->
          match String.lowercase_ascii (String.trim s) with
          | "true" | "false" -> true
          | _ -> false)
    then Value.Tbool
    else Value.Tstring
  end

let empty_table name = Table.make (Schema.make name []) []

let table_of_csv_report ?separator ?(mode = Strict) ~name text =
  Obs.Trace.with_span "csv.table" @@ fun () ->
  let records, parse_issues = parse_records ?separator ~mode text in
  match records with
  | [] ->
    if mode = Strict then invalid_arg "Csv_io.table_of_csv: empty input";
    ( empty_table name,
      parse_issues
      @ [
          Robust.Error.v ~severity:Robust.Error.Fatal ~table:name Robust.Error.Ingest
            "empty input: no header record";
        ] )
  | (_, header) :: data ->
    let width = List.length header in
    let issues = ref [] in
    let quarantine ~line msg =
      issues :=
        Robust.Error.v ~severity:Robust.Error.Warning ~table:name ~line
          Robust.Error.Ingest msg
        :: !issues;
      None
    in
    (* Under Strict, any malformed row aborts with a line-numbered
       Parse_error; under Lenient it is quarantined with a diagnostic
       and the rest of the file still loads. *)
    let kept =
      List.filter_map
        (fun (line, record) ->
          match
            Robust.Fault.check Robust.Fault.Csv_parse
              ~key:(Printf.sprintf "%s:%d" name line)
          with
          | exception (Robust.Fault.Injected _ as e) ->
            if mode = Strict then raise e
            else quarantine ~line "injected parse fault; row quarantined"
          | () ->
            let len = List.length record in
            if len = width then Some record
            else begin
              let msg = Printf.sprintf "row has %d fields, expected %d" len width in
              if mode = Strict then raise (Parse_error { line; message = msg })
              else quarantine ~line (msg ^ "; row quarantined")
            end)
        data
    in
    if !Obs.Recorder.enabled then begin
      Obs.Metrics.add "csv.rows_read" (List.length data);
      Obs.Metrics.add "csv.rows_quarantined" (List.length data - List.length kept);
      Obs.Metrics.incr "csv.tables"
    end;
    let column i = List.map (fun record -> List.nth record i) kept in
    let types = List.init width (fun i -> infer_column_type (column i)) in
    let attrs = List.map2 Attribute.make header types in
    let schema = Schema.make name attrs in
    let rows =
      List.map
        (fun record ->
          Array.of_list (List.map2 (fun ty field -> Value.of_string_as ty field) types record))
        kept
    in
    (Table.make schema rows, parse_issues @ List.rev !issues)

let table_of_csv ?separator ?mode ~name text =
  fst (table_of_csv_report ?separator ?mode ~name text)

let table_of_file_report ?separator ?(mode = Strict) ?retries ?backoff_ms ~name path =
  match read_file ?retries ?backoff_ms path with
  | text -> table_of_csv_report ?separator ~mode ~name text
  | exception e ->
    if mode = Strict then raise e
    else
      ( empty_table name,
        [
          Robust.Error.v ~severity:Robust.Error.Fatal ~table:name Robust.Error.Ingest
            (Printf.sprintf "reading %s failed after retries: %s" path
               (Printexc.to_string e));
        ] )

let table_of_file ?separator ~name path =
  table_of_csv ?separator ~name (read_file path)

let table_to_csv ?separator table =
  let header = Schema.attribute_names (Table.schema table) in
  let rows =
    Array.to_list (Table.rows table)
    |> List.map (fun row -> Array.to_list (Array.map Value.to_string row))
  in
  to_string ?separator (header :: rows)
