(** Minimal RFC-4180 CSV reader/writer with type inference and
    fault-contained (lenient) ingestion.

    Used by the CLI to load user-supplied samples and by tests for
    round-tripping.  Handles quoted fields, embedded quotes (doubled),
    embedded separators and newlines inside quotes, LF / CRLF / lone-CR
    line endings, and a UTF-8 byte-order mark before the header.  Blank
    lines are skipped (they are not phantom single-field records).

    Two ingestion modes:
    - {!Strict} (the default): any malformed input — unterminated
      quote, a row whose field count differs from the header's — raises
      a line-numbered {!Parse_error}.
    - {!Lenient}: malformed rows are {e quarantined}: dropped from the
      table and reported as line-numbered {!Robust.Error.t} diagnostics
      by the [_report] variants, so one corrupt cell costs one row, not
      the run. *)

exception Parse_error of { line : int; message : string }

type mode = Strict | Lenient

val parse_string : ?separator:char -> string -> string list list
(** Raw records as string fields.  Raises {!Parse_error} on an unclosed
    quote (reporting the line the quote opened on). *)

val parse_file : ?separator:char -> string -> string list list

val read_file : ?retries:int -> ?backoff_ms:int -> string -> string
(** Whole-file read with bounded retry: transient failures are retried
    [retries] (default 2) more times with exponential backoff starting
    at [backoff_ms] (default 10) before the last failure propagates.
    Passes through the {!Robust.Fault.File_read} injection site. *)

val to_string : ?separator:char -> string list list -> string
(** Render records; fields containing the separator, quotes or newlines
    are quoted, quotes doubled. *)

val write_file : ?separator:char -> string -> string list list -> unit

val table_of_csv : ?separator:char -> ?mode:mode -> name:string -> string -> Table.t
(** Parse CSV text whose first record is the header; column types are
    inferred from the data (int if all non-empty fields parse as a
    plain decimal int, else float — plain decimal, finite — else bool,
    else string).  Empty fields become nulls.  [mode] defaults to
    {!Strict}; under {!Lenient} malformed rows are dropped silently —
    use {!table_of_csv_report} to capture the diagnostics. *)

val table_of_csv_report :
  ?separator:char ->
  ?mode:mode ->
  name:string ->
  string ->
  Table.t * Robust.Error.t list
(** As {!table_of_csv}, returning the quarantine diagnostics alongside
    the table.  Under {!Lenient}, empty input yields an empty
    zero-column table plus a [Fatal] issue instead of raising. *)

val table_of_file : ?separator:char -> name:string -> string -> Table.t

val table_of_file_report :
  ?separator:char ->
  ?mode:mode ->
  ?retries:int ->
  ?backoff_ms:int ->
  name:string ->
  string ->
  Table.t * Robust.Error.t list
(** {!table_of_csv_report} over {!read_file}.  Under {!Lenient}, a read
    that still fails after the retries yields an empty table plus a
    [Fatal] issue instead of raising. *)

val table_to_csv : ?separator:char -> Table.t -> string
(** Header + rows in display form. *)
