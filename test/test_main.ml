(* Aggregated test runner: one Alcotest suite per module. *)

let () =
  Alcotest.run "ctxmatch"
    [
      ("stats.rng", Test_rng.suite);
      ("stats.distribution", Test_distribution.suite);
      ("stats.descriptive", Test_descriptive.suite);
      ("stats.confusion", Test_confusion.suite);
      ("stats.fmeasure", Test_fmeasure.suite);
      ("stats.sampling", Test_sampling.suite);
      ("relational.value", Test_value.suite);
      ("relational.table", Test_table.suite);
      ("relational.condition", Test_condition.suite);
      ("relational.view", Test_view.suite);
      ("relational.categorical", Test_categorical.suite);
      ("relational.csv", Test_csv.suite);
      ("relational.database", Test_database.suite);
      ("textsim.tokenize", Test_tokenize.suite);
      ("textsim.simmetrics", Test_simmetrics.suite);
      ("textsim.profile", Test_profile.suite);
      ("learn", Test_learn.suite);
      ("matching", Test_matching.suite);
      ("ctxmatch.core", Test_ctxmatch.suite);
      ("ctxmatch.select", Test_select_matches.suite);
      ("runtime", Test_runtime.suite);
      ("runtime.parallel-equiv", Test_parallel_equiv.suite);
      ("ctxmatch.conjunctive", Test_conjunctive.suite);
      ("mapping", Test_mapping.suite);
      ("mapping.gen", Test_mapping_gen.suite);
      ("workload", Test_workload.suite);
      ("eval", Test_eval.suite);
      ("integration", Test_integration.suite);
      ("extensions", Test_extensions.suite);
      ("sql-and-parser", Test_sql_and_parser.suite);
      ("soundness", Test_soundness.suite);
      ("weight-fit", Test_weight_fit.suite);
      ("xmlbridge", Test_xmlbridge.suite);
      ("cli", Test_cli.suite);
    ]
