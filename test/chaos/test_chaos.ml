(* Kill-mid-flight chaos suite (DESIGN.md, "Failure semantics").

   The daemon runs as a real subprocess with I/O fault sites armed for
   its whole lifetime (--fault), flushing the store after every match
   (--flush-every 1) so torn writes land on disk mid-soak; then it is
   SIGKILLed — no drain, no shutdown flush — and warm-restarted over
   the damaged directory.  The gates are the tentpole claims:

   - zero corruption: after the kill every shard is old, new, or
     truncated (the END canary) — never parseable garbage;
   - recovery: the restarted daemon serves byte-identical matches to a
     one-shot oracle over the same inputs, and after its clean
     shutdown the store audits healthy (clean/quarantined only);
   - determinism: the I/O fault sites hash (seed, site, key), so a
     fault-degraded run is bit-identical at every jobs value. *)

let cli = "../../bin/ctxmatch_cli.exe"

let in_temp_dir f =
  let dir = Filename.temp_file "ctxchaos" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let retail_params =
  { Workload.Retail.default_params with rows = 100; target_rows = 50; seed = 42 }

let target_db = Workload.Retail.target retail_params Workload.Retail.Ryan_eyers
let source_db seed = Workload.Retail.source { retail_params with seed }

let csv_payload db =
  List.map
    (fun table -> (Relational.Table.name table, Relational.Csv_io.table_to_csv table))
    (Relational.Database.tables db)

let target_payload = csv_payload target_db

(* One-shot oracle over the same inputs the daemon serves (results are
   jobs-invariant, so jobs:1 here compares against any daemon). *)
let oracle_matches ?store ?faults ~seed () =
  let config =
    match faults with
    | None -> { Ctxmatch.Config.default with jobs = 1 }
    | Some faults -> { Ctxmatch.Config.default with jobs = 1; faults }
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target:target_db in
  let r =
    Ctxmatch.Context_match.run ~config ?store ~infer ~source:(source_db seed)
      ~target:target_db ()
  in
  List.map Matching.Schema_match.to_string r.Ctxmatch.Context_match.matches

(* --- jobs differential for the I/O fault sites -------------------------- *)

let fp_match (m : Matching.Schema_match.t) =
  Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
    m.tgt_attr
    (Relational.Condition.to_string m.condition)
    m.confidence

let fingerprint (r : Ctxmatch.Context_match.result) =
  String.concat "\n"
    (("matches:" :: List.map fp_match r.Ctxmatch.Context_match.matches)
    @ ("standard:" :: List.map fp_match r.Ctxmatch.Context_match.standard)
    @ ("issues:" :: List.map Robust.Error.to_string r.Ctxmatch.Context_match.issues))

(* Store read faults fire per shard *path*, never per schedule: a
   degraded warm run over a poisoned store is bit-identical — result
   AND issue list — at jobs 1 and jobs 4.  This is the same
   differential oracle the pipeline sites pass in test_faults, now
   holding for the I/O layer. *)
let test_io_fault_jobs_differential () =
  in_temp_dir @@ fun dir ->
  let store_dir = Filename.concat dir "store" in
  (* warm the store so the faulted runs have shards to read *)
  let warm = Store.open_dir store_dir in
  ignore (oracle_matches ~store:warm ~seed:42 ());
  Store.flush warm;
  let faults = [ { Robust.Fault.site = Robust.Fault.Store_shard_read; rate = 0.35; seed = 1 } ] in
  let run jobs =
    let config = { Ctxmatch.Config.default with jobs; faults } in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target:target_db in
    let store = Store.open_dir store_dir in
    Ctxmatch.Context_match.run ~config ~store ~infer ~source:(source_db 42)
      ~target:target_db ()
  in
  let sequential = run 1 in
  Alcotest.(check bool) "read faults actually fired" true
    (List.exists
       (fun (i : Robust.Error.t) ->
         let s = Robust.Error.to_string i in
         let rec contains j =
           j + 16 <= String.length s
           && (String.sub s j 16 = "store-shard-read" || contains (j + 1))
         in
         contains 0)
       sequential.Ctxmatch.Context_match.issues);
  let fp = fingerprint sequential in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d identical to sequential under I/O faults" jobs)
        fp
        (fingerprint (run jobs)))
    (List.sort_uniq compare [ 2; 4; Domain.recommended_domain_count () ])

(* --- the real daemon: SIGKILL, recover, replay -------------------------- *)

let run_capture cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let spawn_daemon ~log extra =
  Unix.create_process "sh"
    [| "sh"; "-c"; Printf.sprintf "exec %s serve %s > %s 2>&1" cli extra (Filename.quote log) |]
    Unix.stdin Unix.stdout Unix.stderr

let with_connected address f =
  let client = Serve.Client.connect ~retries:200 ~retry_delay_s:0.05 address in
  Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client)

let expect_ok reply =
  match Serve.Json.(to_bool (Option.value ~default:Null (member "ok" reply))) with
  | Some true -> ()
  | _ -> Alcotest.failf "reply not ok: %s" (Serve.Json.to_string reply)

let reply_matches reply =
  match Serve.Json.(to_list_opt (Option.value ~default:Null (member "matches" reply))) with
  | Some l -> List.filter_map Serve.Json.to_string_opt l
  | None -> Alcotest.failf "reply without matches: %s" (Serve.Json.to_string reply)

let soak_seeds = [ 42; 43; 44 ]

let test_sigkill_recovery () =
  in_temp_dir @@ fun dir ->
  let store_dir = Filename.concat dir "store" in
  let socket = Filename.concat dir "chaos.sock" in
  let address = Serve.Server.Unix_sock socket in
  let register client =
    expect_ok
      (Serve.Client.request client (Serve.Protocol.register_json ~name:"retail" target_payload))
  in
  let matching client seed =
    Serve.Client.request client
      (Serve.Protocol.match_json ~target:"retail" (csv_payload (source_db seed)))
  in
  (* phase 1: daemon with torn-write faults armed, flushing after every
     match so damage lands on disk mid-soak, then SIGKILL — the process
     dies with dirty state and no shutdown flush *)
  let pid =
    spawn_daemon
      ~log:(Filename.concat dir "phase1.log")
      (Printf.sprintf
         "--socket %s --store %s --flush-every 1 --fault store-shard-write:1.0:3:torn=0.5"
         (Filename.quote socket) (Filename.quote store_dir))
  in
  with_connected address (fun client ->
      register client;
      List.iter (fun seed -> expect_ok (matching client seed)) soak_seeds);
  Unix.kill pid Sys.sigkill;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "daemon died by SIGKILL" true (status = Unix.WSIGNALED Sys.sigkill);
  (* the crash-damage invariant: torn writes are truncations the END
     canary catches — NEVER parseable garbage *)
  let r = Store.verify store_dir in
  Alcotest.(check bool) "torn writes landed" true (r.Store.vr_truncated >= 1);
  Alcotest.(check int) "zero corruption" 0 r.Store.vr_corrupt;
  (* store-verify through the executable: damage means exit 6 *)
  let status, output =
    run_capture (Printf.sprintf "%s store-verify %s" cli (Filename.quote store_dir))
  in
  Alcotest.(check bool) "store-verify exits 6 on damage" true (status = Unix.WEXITED 6);
  Alcotest.(check bool) "audit names a truncated shard" true
    (let rec contains j =
       j + 9 <= String.length output
       && (String.sub output j 9 = "truncated" || contains (j + 1))
     in
     contains 0);
  (* phase 2: warm restart over the damaged directory, faults disarmed.
     The stale socket file (SIGKILL never cleaned up) must be
     reclaimed, the torn shards quarantined, and every served reply
     byte-identical to the one-shot oracle. *)
  let pid2 =
    spawn_daemon
      ~log:(Filename.concat dir "phase2.log")
      (Printf.sprintf "--socket %s --store %s --flush-every 1" (Filename.quote socket)
         (Filename.quote store_dir))
  in
  with_connected address (fun client ->
      register client;
      List.iter
        (fun seed ->
          let reply = matching client seed in
          expect_ok reply;
          Alcotest.(check (list string))
            (Printf.sprintf "post-restart replies byte-identical (seed %d)" seed)
            (oracle_matches ~seed ()) (reply_matches reply))
        soak_seeds;
      expect_ok (Serve.Client.request client Serve.Protocol.shutdown_json));
  let _, status2 = Unix.waitpid [] pid2 in
  Alcotest.(check bool) "recovered daemon drains cleanly" true (status2 = Unix.WEXITED 0);
  (* after recovery + clean shutdown the audit is healthy: every file
     clean or quarantined, index parseable *)
  let healed = Store.verify store_dir in
  Alcotest.(check bool) "healed store audits healthy" true (Store.verify_healthy healed);
  Alcotest.(check bool) "damage was set aside, not erased" true
    (healed.Store.vr_quarantined >= 1);
  List.iter
    (fun (e : Store.verify_entry) ->
      match e.Store.ve_status with
      | Store.Shard_clean | Store.Shard_quarantined -> ()
      | st ->
        Alcotest.failf "post-recovery shard %s is %s" e.Store.ve_file
          (Store.shard_status_name st))
    healed.Store.vr_entries;
  let status, _ =
    run_capture (Printf.sprintf "%s store-verify %s" cli (Filename.quote store_dir))
  in
  Alcotest.(check bool) "store-verify exits 0 after recovery" true (status = Unix.WEXITED 0)

(* --- store-verify exit codes, standalone -------------------------------- *)

let test_store_verify_exit_codes () =
  in_temp_dir @@ fun dir ->
  let store_dir = Filename.concat dir "store" in
  let s = Store.open_dir store_dir in
  let warm = oracle_matches ~store:s ~seed:42 () in
  ignore warm;
  Store.flush s;
  let verify () =
    run_capture (Printf.sprintf "%s store-verify %s" cli (Filename.quote store_dir))
  in
  let status, _ = verify () in
  Alcotest.(check bool) "clean store exits 0" true (status = Unix.WEXITED 0);
  (* hand-truncate one shard: exit 6 and a per-file report line *)
  let shard =
    Sys.readdir store_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dat")
    |> List.sort compare |> List.hd
  in
  let path = Filename.concat store_dir shard in
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub text 0 (String.length text / 2)));
  let status, output = verify () in
  Alcotest.(check bool) "damaged store exits 6" true (status = Unix.WEXITED 6);
  Alcotest.(check bool) "report names the file" true
    (let n = String.length shard in
     let rec contains j =
       j + n <= String.length output && (String.sub output j n = shard || contains (j + 1))
     in
     contains 0);
  (* a missing directory is a usage error, not an audit verdict *)
  let status, _ =
    run_capture
      (Printf.sprintf "%s store-verify %s" cli (Filename.quote (Filename.concat dir "nope")))
  in
  Alcotest.(check bool) "missing dir is a usage error" true (status = Unix.WEXITED 2)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "ctxmatch-chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "I/O faults: jobs differential" `Slow
            test_io_fault_jobs_differential;
          Alcotest.test_case "SIGKILL mid-soak, recover, replay" `Slow test_sigkill_recovery;
          Alcotest.test_case "store-verify exit codes" `Quick test_store_verify_exit_codes;
        ] );
    ]
