(* Differential oracle for the interned scoring kernel (DESIGN.md,
   "Scoring kernel").  Every fast path — int merge joins over interned
   profiles, batch scoring through the gram inverted index, top-k
   retrieval with upper-bound pruning, view profiles composed from
   condition-attribute partitions — must produce results *bit-identical*
   to the legacy string path: same grams, same counts, same float bits.
   Floats are compared via their IEEE bits (or %h fingerprints), so any
   accumulation-order drift fails loudly, not just drift above an
   epsilon. *)

open Relational

let check_bits what a b =
  Alcotest.(check string) what (Printf.sprintf "%h" a) (Printf.sprintf "%h" b)

(* A copy of [p] through the serialisation surface: same counts, no
   interned view, so scoring it takes the pure string path. *)
let fresh p = Textsim.Profile.of_counts ~q:(Textsim.Profile.q p) (Textsim.Profile.counts p)

let grams_of p = Array.to_list (Textsim.Profile.counts p) |> List.map fst

let corpus =
  [
    [ "Systems of Highway Engineering"; "Aerodynamics for Engineers"; "The Art of OCaml" ];
    [ "Greatest Hits Vol. 2"; "Live at the Fillmore"; "Symphony No. 9 in D minor" ];
    [ "aaa"; "aab"; "aba" ];
    [ "" ];
    [];
    [ "xyzzy" ];
  ]

(* --- interned merge joins ---------------------------------------------- *)

let test_interned_pairwise () =
  let profiles = List.map Textsim.Profile.of_strings corpus in
  List.iteri
    (fun i p1 ->
      List.iteri
        (fun j p2 ->
          let tag op = Printf.sprintf "%s %d~%d" op i j in
          let oracle_cos = Textsim.Profile.cosine (fresh p1) (fresh p2) in
          let oracle_jac = Textsim.Profile.jaccard (fresh p1) (fresh p2) in
          (* both sides interned against a shared dictionary *)
          let a = fresh p1 and b = fresh p2 in
          let dict = Textsim.Gram_dict.of_grams (grams_of a @ grams_of b) in
          Textsim.Profile.intern dict a;
          Textsim.Profile.intern dict b;
          check_bits (tag "cosine interned") oracle_cos (Textsim.Profile.cosine a b);
          check_bits (tag "jaccard interned") oracle_jac (Textsim.Profile.jaccard a b);
          (* one-sided: only [d] is interned (and complete — the dict is
             its own vocabulary); the dispatch interns [c] on the fly *)
          let c = fresh p1 and d = fresh p2 in
          let dict2 = Textsim.Gram_dict.of_grams (grams_of d) in
          Textsim.Profile.intern dict2 d;
          check_bits (tag "cosine one-sided") oracle_cos (Textsim.Profile.cosine c d);
          check_bits (tag "jaccard one-sided") oracle_jac (Textsim.Profile.jaccard c d))
        profiles)
    (List.map Textsim.Profile.of_strings corpus)

(* Two profiles interned against different dictionaries that are both
   incomplete for the other's grams must fall back to the string path,
   not silently drop shared out-of-vocabulary grams. *)
let test_incomplete_fallback () =
  let p1 = Textsim.Profile.of_strings [ "shared gram soup"; "alpha" ] in
  let p2 = Textsim.Profile.of_strings [ "shared gram soup"; "omega" ] in
  let oracle = Textsim.Profile.cosine (fresh p1) (fresh p2) in
  let a = fresh p1 and b = fresh p2 in
  (* dictionary built from an unrelated profile: both sides incomplete *)
  let dict = Textsim.Gram_dict.of_grams (grams_of (Textsim.Profile.of_strings [ "zzz" ])) in
  Textsim.Profile.intern dict a;
  Textsim.Profile.intern dict b;
  check_bits "incomplete dictionaries fall back" oracle (Textsim.Profile.cosine a b);
  Alcotest.(check bool) "oracle is non-trivial" true (oracle > 0.0)

(* --- inverted index ---------------------------------------------------- *)

let index_fixture () =
  let targets = List.map Textsim.Profile.of_strings corpus |> Array.of_list in
  let index = Textsim.Gram_index.build targets in
  let candidates =
    List.map Textsim.Profile.of_strings
      ([ "Highway Engineers of OCaml" ] :: [ "Qqq Www" ] :: [ "" ] :: corpus)
  in
  (targets, index, candidates)

let test_index_scores () =
  let targets, index, candidates = index_fixture () in
  List.iteri
    (fun ci cand ->
      let scores, touched = Textsim.Gram_index.scores index (fresh cand) in
      Alcotest.(check int) "one score per target" (Array.length targets) (Array.length scores);
      Alcotest.(check bool) "touched within range" true
        (touched >= 0 && touched <= Array.length targets);
      Array.iteri
        (fun s tgt ->
          check_bits
            (Printf.sprintf "cand %d vs target %d" ci s)
            (Textsim.Profile.cosine (fresh cand) (fresh tgt))
            scores.(s))
        targets)
    candidates;
  (* a candidate sharing no gram is never accumulated: all zeros, all
     pruned *)
  let scores, touched = Textsim.Gram_index.scores index (Textsim.Profile.of_strings [ "QQQ" ]) in
  Alcotest.(check int) "disjoint candidate touches nothing" 0 touched;
  Array.iter (fun s -> check_bits "disjoint scores are exact zeros" 0.0 s) scores

let test_top_k_equals_exhaustive () =
  let _, index, candidates = index_fixture () in
  List.iteri
    (fun ci cand ->
      let scores, _ = Textsim.Gram_index.scores index cand in
      List.iter
        (fun (k, tau) ->
          let oracle =
            Array.to_list (Array.mapi (fun i s -> (i, s)) scores)
            |> List.filter (fun (_, s) -> s >= tau)
            |> List.sort (fun (i, a) (j, b) ->
                   let c = Float.compare b a in
                   if c <> 0 then c else Int.compare i j)
            |> List.filteri (fun i _ -> i < k)
          in
          let got, stats = Textsim.Gram_index.top_k index cand ~k ~tau in
          Alcotest.(check int)
            (Printf.sprintf "cand %d k=%d tau=%.2f: size" ci k tau)
            (List.length oracle) (List.length got);
          List.iter2
            (fun (i, s) (i', s') ->
              Alcotest.(check int) "slot" i i';
              check_bits "score" s s')
            oracle got;
          Alcotest.(check bool) "stats account for every target"
            true
            (stats.Textsim.Gram_index.scored + stats.Textsim.Gram_index.pruned
            = Textsim.Gram_index.length index))
        [ (1, 0.0); (3, 0.0); (100, 0.0); (3, 0.2); (3, 0.99); (0, 0.0) ])
    candidates

(* --- partitioned view profiles ----------------------------------------- *)

let retail_table () =
  let params = { Workload.Retail.default_params with rows = 150; target_rows = 60 } in
  Database.table (Workload.Retail.source params) Workload.Retail.source_table_name

let columns_agree what legacy composed =
  Alcotest.(check bool)
    (what ^ ": profile counts identical")
    true
    (Textsim.Profile.counts (Matching.Column.profile legacy)
    = Textsim.Profile.counts (Matching.Column.profile composed));
  let probe = Textsim.Profile.of_strings [ "Probe of Engineering Hits 9" ] in
  check_bits
    (what ^ ": cosine vs probe bit-identical")
    (Textsim.Profile.cosine (fresh (Matching.Column.profile legacy)) probe)
    (Textsim.Profile.cosine (fresh (Matching.Column.profile composed)) probe);
  Alcotest.(check (list string))
    (what ^ ": distinct identical")
    (Matching.Column.distinct_strings legacy)
    (Matching.Column.distinct_strings composed);
  Alcotest.(check (list string))
    (what ^ ": words identical")
    (Matching.Column.words legacy)
    (Matching.Column.words composed)

let test_partition_compose () =
  let tbl = retail_table () in
  let item_type = Workload.Retail.item_type_attr in
  let families =
    View.partition_family tbl item_type
    :: View.partition_family tbl Workload.Retail.stock_status_attr
    :: [
         View.family_of_values tbl item_type
           [
             Workload.Retail.book_labels ~gamma:4;
             Workload.Retail.cd_labels ~gamma:4;
           ];
       ]
  in
  let composed_cache = Matching.Profile_cache.create () in
  Matching.Profile_cache.set_partitioning composed_cache true;
  let legacy_cache = Matching.Profile_cache.create () in
  List.iter
    (fun family ->
      List.iter
        (fun view ->
          List.iter
            (fun attr ->
              columns_agree
                (Printf.sprintf "%s / %s" (View.name view) attr)
                (Matching.Column.of_view ~cache:legacy_cache view attr)
                (Matching.Column.of_view ~cache:composed_cache view attr))
            [ "Title"; "Creator"; "Price"; "ItemID" ])
        family.View.views)
    families

(* Condition values that are equal under [Value.compare] but distinct
   constructors ([In (k, [1; 1.])]) select each row once; composition
   must not double-count the shared partition. *)
let test_partition_compose_mixed_numeric () =
  let schema =
    Schema.make "mixed" [ Attribute.int "k"; Attribute.string "txt" ]
  in
  let tbl =
    Table.make schema
      [
        [| Value.Int 1; Value.String "one one" |];
        [| Value.Int 2; Value.String "two" |];
        [| Value.Null; Value.String "null row" |];
        [| Value.Int 1; Value.String "uno" |];
      ]
  in
  let view = View.make tbl (Condition.In ("k", [ Value.Int 1; Value.Float 1.0 ])) in
  let composed_cache = Matching.Profile_cache.create () in
  Matching.Profile_cache.set_partitioning composed_cache true;
  let legacy_cache = Matching.Profile_cache.create () in
  Alcotest.(check int) "view selects the Int 1 rows" 2 (View.row_count view);
  columns_agree "mixed numeric In"
    (Matching.Column.of_view ~cache:legacy_cache view "txt")
    (Matching.Column.of_view ~cache:composed_cache view "txt")

(* --- end-to-end -------------------------------------------------------- *)

let fp_match (m : Matching.Schema_match.t) =
  Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
    m.tgt_attr
    (Condition.to_string m.condition)
    m.confidence

let fp_scored (sv : Ctxmatch.Select_matches.scored_view) =
  Printf.sprintf "%s|%s|[%s]" (View.name sv.view) sv.family_attr
    (String.concat ";" (List.map fp_match sv.view_matches))

let fingerprint (r : Ctxmatch.Context_match.result) =
  String.concat "\n"
    (("matches:" :: List.map fp_match r.matches)
    @ ("standard:" :: List.map fp_match r.standard)
    @ (Printf.sprintf "views:%d" r.candidate_view_count :: List.map fp_scored r.scored))

let retail_run ?store ~kernel ~jobs ~seed () =
  let params = { Workload.Retail.default_params with rows = 120; target_rows = 60; seed } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let config =
    Ctxmatch.Config.with_kernel
      (Ctxmatch.Config.with_jobs (Ctxmatch.Config.with_seed Ctxmatch.Config.default seed) jobs)
      kernel
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  Ctxmatch.Context_match.run ~config ?store ~infer ~source ~target ()

let test_end_to_end_identical () =
  List.iter
    (fun seed ->
      let oracle = fingerprint (retail_run ~kernel:false ~jobs:1 ~seed ()) in
      List.iter
        (fun (kernel, jobs) ->
          Alcotest.(check string)
            (Printf.sprintf "seed=%d kernel=%b jobs=%d = legacy sequential" seed kernel jobs)
            oracle
            (fingerprint (retail_run ~kernel ~jobs ~seed ())))
        [ (true, 1); (true, 4); (false, 4) ])
    [ 1; 7 ]

let in_temp_dir f =
  let dir = Filename.temp_file "ctxkernel" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* Stored artefacts serialise by gram string, never by interner id, so a
   store written by a kernel run warms a legacy run (and vice versa)
   with byte-identical results and zero recomputation. *)
let test_store_interner_independent () =
  in_temp_dir @@ fun dir ->
  let cold_store = Store.open_dir dir in
  let cold = retail_run ~store:cold_store ~kernel:true ~jobs:1 ~seed:3 () in
  Store.flush cold_store;
  List.iter
    (fun kernel ->
      let warm_store = Store.open_dir dir in
      let warm = retail_run ~store:warm_store ~kernel ~jobs:1 ~seed:3 () in
      Alcotest.(check string)
        (Printf.sprintf "warm kernel=%b identical to cold" kernel)
        (fingerprint cold) (fingerprint warm);
      Alcotest.(check int)
        (Printf.sprintf "warm kernel=%b recomputes nothing" kernel)
        0 warm.Ctxmatch.Context_match.profile_builds)
    [ true; false ]

(* --- model-level top-k ------------------------------------------------- *)

let test_model_top_k () =
  let params = { Workload.Retail.default_params with rows = 120; target_rows = 60 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let pruned = Matching.Standard_match.build ~kernel:true ~source ~target () in
  let exhaustive = Matching.Standard_match.build ~kernel:false ~source ~target () in
  Alcotest.(check bool) "kernel model holds an index" true
    (Matching.Standard_match.kernel_enabled pruned);
  Alcotest.(check bool) "legacy model holds none" false
    (Matching.Standard_match.kernel_enabled exhaustive);
  let fp l =
    String.concat ";" (List.map (fun ((t, a), s) -> Printf.sprintf "%s.%s=%h" t a s) l)
  in
  let src_tbl = Database.table source Workload.Retail.source_table_name in
  List.iter
    (fun src_attr ->
      List.iter
        (fun (k, tau) ->
          Alcotest.(check string)
            (Printf.sprintf "top-%d tau=%.2f of %s pruned = exhaustive" k tau src_attr)
            (fp
               (Matching.Standard_match.top_qgram_matches exhaustive
                  ~src_table:Workload.Retail.source_table_name ~src_attr ~k ~tau))
            (fp
               (Matching.Standard_match.top_qgram_matches pruned
                  ~src_table:Workload.Retail.source_table_name ~src_attr ~k ~tau)))
        [ (1, 0.0); (3, 0.0); (50, 0.0); (3, 0.3); (3, 0.95) ])
    (Schema.attribute_names (Table.schema src_tbl))

(* --- sharded TAAT ------------------------------------------------------ *)

(* Enough synthetic target columns that sharding splits the slot space
   into several block-aligned ranges.  Sequential and pool-sharded
   accumulation must agree bit for bit: each shard is a contiguous whole
   number of blocks filled independently and the merge is concatenation,
   so there is no accumulation-order drift for the comparison to
   forgive. *)
let synthetic_kernel n =
  let profile i =
    Textsim.Profile.of_strings
      [
        Printf.sprintf "target %d of the synthetic corpus" i;
        Printf.sprintf "column %d %s" (i mod 17) (String.make ((i mod 5) + 1) 'x');
      ]
  in
  Matching.Score_kernel.build
    (Array.init n (fun i -> (("t", Printf.sprintf "a%d" i), profile i)))

let test_sharded_bit_identity () =
  let kern = synthetic_kernel 600 in
  let fp_scores a =
    String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%h") a))
  in
  let fp_topk l =
    String.concat ";" (List.map (fun ((t, a), s) -> Printf.sprintf "%s.%s=%h" t a s) l)
  in
  let candidates =
    List.map Textsim.Profile.of_strings
      [
        [ "target 42 of the synthetic corpus" ];
        [ "column 3 xxxx"; "column 11 x" ];
        [ "no overlap whatsoever ZZZZ" ];
        [];
      ]
  in
  List.iter
    (fun jobs ->
      let pool = Runtime.Pool.get ~jobs in
      List.iteri
        (fun ci cand ->
          Alcotest.(check string)
            (Printf.sprintf "cand %d jobs=%d: sharded scores = sequential" ci jobs)
            (fp_scores (Matching.Score_kernel.scores kern cand))
            (fp_scores (Matching.Score_kernel.scores ~pool ~shard_min:1 kern cand));
          List.iter
            (fun (k, tau) ->
              Alcotest.(check string)
                (Printf.sprintf "cand %d jobs=%d k=%d tau=%.2f: sharded top-k = sequential" ci
                   jobs k tau)
                (fp_topk (Matching.Score_kernel.top_k kern cand ~k ~tau))
                (fp_topk (Matching.Score_kernel.top_k ~pool ~shard_min:1 kern cand ~k ~tau)))
            [ (1, 0.0); (10, 0.0); (650, 0.0); (10, 0.05); (10, 0.9) ])
        candidates)
    [ 2; 4 ]

(* --- block-max boundaries ---------------------------------------------- *)

(* 13 targets: a ragged final block at every block size that does not
   divide 13, single-posting blocks at block size 1, and postings that
   straddle block edges at 2 and 7.  The block size must never change a
   returned score — only which blocks the pruning pass may skip. *)
let block_targets =
  Array.init 13 (fun i ->
      Textsim.Profile.of_strings
        [
          Printf.sprintf "row %d common payload" i;
          String.concat " " (List.init ((i mod 4) + 1) (fun _ -> "dup dup dup"));
        ])

let block_candidates =
  List.map Textsim.Profile.of_strings
    [ [ "row 7 common payload" ]; [ "dup dup" ]; [ "unrelated" ] ]

let test_block_sizes_identical () =
  let reference = Textsim.Gram_index.build block_targets in
  List.iter
    (fun bs ->
      let index = Textsim.Gram_index.build ~block_size:bs block_targets in
      Alcotest.(check int)
        (Printf.sprintf "bs=%d block count" bs)
        ((13 + bs - 1) / bs)
        (Textsim.Gram_index.block_count index);
      List.iteri
        (fun ci cand ->
          let oracle, _ = Textsim.Gram_index.scores reference cand in
          let got, _ = Textsim.Gram_index.scores index cand in
          Array.iteri
            (fun i o -> check_bits (Printf.sprintf "bs=%d cand %d slot %d" bs ci i) o got.(i))
            oracle;
          (* at every tau, a pruned slice agrees with exhaustive scoring
             on every slot at or above the threshold — on either side,
             so a bound that wrongly skipped a survivor fails loudly *)
          List.iter
            (fun tau ->
              let sliced, stats =
                Textsim.Gram_index.scores_range index cand ~tau ~lo:0 ~hi:13
              in
              Alcotest.(check int) "slice covers the range" 13 (Array.length sliced);
              Alcotest.(check int) "every block accounted for"
                (Textsim.Gram_index.block_count index)
                stats.Textsim.Gram_index.r_blocks;
              Array.iteri
                (fun i s ->
                  if s >= tau || oracle.(i) >= tau then
                    check_bits
                      (Printf.sprintf "bs=%d cand %d tau=%.2f slot %d" bs ci tau i)
                      oracle.(i) s)
                sliced)
            [ 0.0; 0.05; 0.3; 0.99 ];
          (* a proper sub-range starting on an interior block boundary *)
          if bs < 13 then
            let sliced, _ = Textsim.Gram_index.scores_range index cand ~tau:0.0 ~lo:bs ~hi:13 in
            Array.iteri
              (fun i s ->
                check_bits (Printf.sprintf "bs=%d cand %d offset slot %d" bs ci i) oracle.(bs + i) s)
              sliced)
        block_candidates)
    [ 1; 2; 5; 7; 64 ]

(* Patching a slot down to the empty profile empties every posting row
   of its private grams; those rows must stay score-neutral and the
   patched index bit-identical to a cold build over the mutated targets
   — at every block size, since the patch path recomputes the segment
   maxima and per-block norms from scratch. *)
let test_patch_emptied_slots () =
  List.iter
    (fun bs ->
      let index = Textsim.Gram_index.build ~block_size:bs block_targets in
      let empty = Textsim.Profile.of_strings [] in
      let replacement = Textsim.Profile.of_strings [ "row 3 common payload" ] in
      let patches = [ (4, empty); (9, replacement) ] in
      match Textsim.Gram_index.patch index patches with
      | None -> Alcotest.fail (Printf.sprintf "bs=%d: patch unexpectedly fell back" bs)
      | Some patched ->
        let mutated = Array.copy block_targets in
        mutated.(4) <- empty;
        mutated.(9) <- replacement;
        let cold = Textsim.Gram_index.build ~block_size:bs mutated in
        List.iteri
          (fun ci cand ->
            check_bits
              (Printf.sprintf "bs=%d cand %d upper bound" bs ci)
              (Textsim.Gram_index.cosine_upper_bound cold cand)
              (Textsim.Gram_index.cosine_upper_bound patched cand);
            let want, _ = Textsim.Gram_index.scores cold cand in
            let got, _ = Textsim.Gram_index.scores patched cand in
            Array.iteri
              (fun i w ->
                check_bits (Printf.sprintf "bs=%d cand %d slot %d" bs ci i) w got.(i))
              want;
            List.iter
              (fun (k, tau) ->
                let fp (l, _) =
                  String.concat ";" (List.map (fun (i, s) -> Printf.sprintf "%d=%h" i s) l)
                in
                Alcotest.(check string)
                  (Printf.sprintf "bs=%d cand %d k=%d tau=%.2f top-k" bs ci k tau)
                  (fp (Textsim.Gram_index.top_k cold cand ~k ~tau))
                  (fp (Textsim.Gram_index.top_k patched cand ~k ~tau)))
              [ (3, 0.0); (3, 0.2); (20, 0.0) ])
          block_candidates)
    [ 1; 2; 7; 64 ]

(* --- upper-bound soundness under skew ----------------------------------- *)

(* Adversarial frequency skew: one target is a single hugely repeated
   gram (posting frequency ~1), another has a tiny norm, and the rest sit
   in between — the regime where a max-frequency x min-norm bound is at
   its coarsest.  Sound means >= every true cosine; the differential
   top-k check then confirms coarse never became wrong. *)
let test_bound_soundness () =
  let targets =
    [|
      Textsim.Profile.of_strings (List.init 40 (fun _ -> "aaaaaaaaaa"));
      Textsim.Profile.of_strings [ "zzzz" ];
      Textsim.Profile.of_strings [ "aaaa zzzz mixed" ];
      Textsim.Profile.of_strings [ "unrelated words here" ];
      Textsim.Profile.of_strings [ "aaa zzz aaa zzz" ];
    |]
  in
  let candidates =
    List.map Textsim.Profile.of_strings
      [
        [ "aaaa" ];
        [ "zzzz" ];
        (List.init 40 (fun _ -> "aaaaaaaaaa"));
        [ "aaaa zzzz mixed" ];
        [ "completely disjoint" ];
      ]
  in
  List.iter
    (fun bs ->
      let index = Textsim.Gram_index.build ~block_size:bs targets in
      List.iteri
        (fun ci cand ->
          let bound = Textsim.Gram_index.cosine_upper_bound index cand in
          let scores, _ = Textsim.Gram_index.scores index cand in
          Array.iteri
            (fun i s ->
              Alcotest.(check bool)
                (Printf.sprintf "bs=%d cand %d target %d: bound %.17g >= cosine %.17g" bs ci i
                   bound s)
                true (bound >= s))
            scores;
          List.iter
            (fun (k, tau) ->
              let oracle =
                Array.to_list (Array.mapi (fun i s -> (i, s)) scores)
                |> List.filter (fun (_, s) -> s >= tau)
                |> List.sort (fun (i, a) (j, b) ->
                       let c = Float.compare b a in
                       if c <> 0 then c else Int.compare i j)
                |> List.filteri (fun i _ -> i < k)
              in
              let got, _ = Textsim.Gram_index.top_k index cand ~k ~tau in
              Alcotest.(check int)
                (Printf.sprintf "bs=%d cand %d k=%d tau=%.2f size" bs ci k tau)
                (List.length oracle) (List.length got);
              List.iter2
                (fun (i, s) (i', s') ->
                  Alcotest.(check int) "slot" i i';
                  check_bits "score" s s')
                oracle got)
            [ (1, 0.0); (5, 0.3); (5, 0.7); (5, 0.95) ])
        candidates)
    [ 1; 2; 64 ]

(* --- qcheck properties -------------------------------------------------- *)

(* Small alphabet so grams collide heavily across random profiles. *)
let words_gen =
  QCheck.Gen.(
    list_size (0 -- 4) (string_size (1 -- 8) ~gen:(char_range 'a' 'e'))
    |> map (String.concat " "))

let qcheck_topk =
  let gen =
    QCheck.Gen.(
      quad
        (list_size (1 -- 30) (small_list words_gen))
        (small_list words_gen)
        (pair (1 -- 9) (0 -- 40))
        (0 -- 10))
  in
  QCheck.Test.make ~name:"top_k = exhaustive filter/sort/take" ~count:200 (QCheck.make gen)
    (fun (targets, cand, (bs, kk), tau10) ->
      let tau = float_of_int tau10 /. 10.0 in
      let index =
        Textsim.Gram_index.build ~block_size:bs
          (Array.of_list (List.map Textsim.Profile.of_strings targets))
      in
      let cand = Textsim.Profile.of_strings cand in
      let scores, _ = Textsim.Gram_index.scores index cand in
      let oracle =
        Array.to_list (Array.mapi (fun i s -> (i, s)) scores)
        |> List.filter (fun (_, s) -> s >= tau)
        |> List.sort (fun (i, a) (j, b) ->
               let c = Float.compare b a in
               if c <> 0 then c else Int.compare i j)
        |> List.filteri (fun i _ -> i < kk)
      in
      let got, _ = Textsim.Gram_index.top_k index cand ~k:kk ~tau in
      oracle = got)

(* CSR family composition round-trip: for random partitioned tables and
   random slot subsets, the arena-composed profile must carry the exact
   count bag of the boxed [Profile.sum] of the group profiles, and score
   bit-identically to a raw re-tokenisation of the selected rows. *)
let qcheck_compose =
  let gen =
    QCheck.Gen.(pair (list_size (1 -- 6) (list_size (0 -- 5) words_gen)) (1 -- 63))
  in
  QCheck.Test.make ~name:"CSR family composition = boxed sum = raw re-scan" ~count:100
    (QCheck.make gen)
    (fun (groups, mask) ->
      let rows =
        List.concat (List.mapi (fun g strs -> List.map (fun s -> (g, s)) strs) groups)
      in
      let schema = Schema.make "fam" [ Attribute.int "k"; Attribute.string "txt" ] in
      let tbl =
        Table.make schema
          (List.map (fun (g, s) -> [| Value.Int g; Value.String s |]) rows)
      in
      let sub_strings indices =
        let trows = Table.rows tbl in
        Array.to_list indices
        |> List.filter_map (fun i ->
               match trows.(i).(1) with
               | Value.String s -> Some s
               | v -> if Value.is_null v then None else Some (Value.to_string v))
      in
      let cache = Matching.Profile_cache.create () in
      Matching.Profile_cache.set_partitioning cache true;
      let fam =
        Matching.Profile_cache.family cache ~table:tbl ~cond_attr:"k" ~attr:"txt"
          ~profile_of:(fun indices -> Textsim.Profile.of_strings (sub_strings indices))
      in
      let n = Array.length fam.Matching.Profile_cache.fam_profiles in
      let slots = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
      match slots with
      | [] -> true
      | slots ->
        let part = Matching.Profile_cache.partition cache ~table:tbl ~cond_attr:"k" in
        let composed = Matching.Profile_cache.compose_profile fam slots in
        let boxed =
          Textsim.Profile.sum
            (List.map (fun s -> fam.Matching.Profile_cache.fam_profiles.(s)) slots)
        in
        let raw =
          Textsim.Profile.of_strings
            (List.concat_map
               (fun s -> sub_strings part.Matching.Profile_cache.part_indices.(s))
               slots)
        in
        let probe = Textsim.Profile.of_strings [ "abc ea bdbd" ] in
        Textsim.Profile.counts composed = Textsim.Profile.counts boxed
        && Textsim.Profile.counts composed = Textsim.Profile.counts raw
        && Printf.sprintf "%h" (Textsim.Profile.norm composed)
           = Printf.sprintf "%h" (Textsim.Profile.norm raw)
        && Printf.sprintf "%h" (Textsim.Profile.cosine (fresh composed) probe)
           = Printf.sprintf "%h" (Textsim.Profile.cosine (fresh raw) probe))

let () =
  Alcotest.run "perf_kernel"
    [
      ( "interned",
        [
          Alcotest.test_case "pairwise bit-identity" `Quick test_interned_pairwise;
          Alcotest.test_case "incomplete fallback" `Quick test_incomplete_fallback;
        ] );
      ( "index",
        [
          Alcotest.test_case "batch scores bit-identical" `Quick test_index_scores;
          Alcotest.test_case "top-k = exhaustive" `Quick test_top_k_equals_exhaustive;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "composed view artefacts" `Quick test_partition_compose;
          Alcotest.test_case "mixed numeric In" `Quick test_partition_compose_mixed_numeric;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "kernel x jobs identical" `Slow test_end_to_end_identical;
          Alcotest.test_case "store interner-independent" `Slow test_store_interner_independent;
        ] );
      ("top-k", [ Alcotest.test_case "model top-k pruned = exhaustive" `Quick test_model_top_k ]);
      ( "sharded",
        [ Alcotest.test_case "jobs 1 vs N bit-identity" `Quick test_sharded_bit_identity ] );
      ( "blocks",
        [
          Alcotest.test_case "block sizes score identically" `Quick test_block_sizes_identical;
          Alcotest.test_case "emptied-slot patch = cold rebuild" `Quick test_patch_emptied_slots;
        ] );
      ( "bounds",
        [ Alcotest.test_case "skewed-frequency bound soundness" `Quick test_bound_soundness ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_topk;
          QCheck_alcotest.to_alcotest qcheck_compose;
        ] );
    ]
