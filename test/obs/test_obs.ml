(* Tests for lib/obs, pinning the contracts DESIGN.md promises:

   - the disabled recorder is invisible — no events, no counters, and
     matcher output identical to an instrumented run;
   - spans nest across the pool's cross-domain fan-out (chunk spans
     parent to the span open on the submitting domain);
   - counters outside the scheduling-dependent set are identical at
     every --jobs value;
   - the exporters emit well-formed JSON with the documented fields. *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let with_recorder f =
  Obs.Recorder.disable ();
  Obs.Recorder.reset ();
  Obs.Metrics.reset ();
  Obs.Recorder.enable ();
  Fun.protect ~finally:Obs.Recorder.disable f

(* the differential workload: a small retail run, same shape as
   test_parallel_equiv *)
let retail_run ~jobs ~seed =
  let params =
    { Workload.Retail.default_params with rows = 120; target_rows = 60; seed }
  in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let config =
    Ctxmatch.Config.with_jobs (Ctxmatch.Config.with_seed Ctxmatch.Config.default seed) jobs
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  Ctxmatch.Context_match.run ~config ~infer ~source ~target ()

let fingerprint (r : Ctxmatch.Context_match.result) =
  String.concat "\n"
    (List.map
       (fun (m : Matching.Schema_match.t) ->
         Printf.sprintf "%s|%s|%s.%s|%s|%h" m.src_owner m.src_attr m.tgt_table
           m.tgt_attr
           (Relational.Condition.to_string m.condition)
           m.confidence)
       r.matches)

(* Minimal JSON recogniser — enough to reject anything malformed the
   hand-rolled emitter could produce (bad escaping, trailing commas,
   bare inf/nan).  Accepts exactly one value spanning the whole input. *)
module Json_check = struct
  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %C at %d" c !pos))
    in
    let string_lit () =
      expect '"';
      let rec go () =
        match peek () with
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some _ -> advance ()
          | None -> raise (Bad "dangling escape"));
          go ()
        | Some _ ->
          advance ();
          go ()
        | None -> raise (Bad "unterminated string")
      in
      go ()
    in
    let number () =
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      if not (match peek () with Some c -> num_char c | None -> false) then
        raise (Bad "number");
      while match peek () with Some c -> num_char c | None -> false do
        advance ()
      done
    in
    let lit w = String.iter expect w in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some 't' -> lit "true"
      | Some 'f' -> lit "false"
      | Some 'n' -> lit "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> raise (Bad (Printf.sprintf "unexpected input at %d" !pos))
    and obj () =
      expect '{';
      skip_ws ();
      match peek () with
      | Some '}' -> advance ()
      | _ ->
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> raise (Bad "object")
        in
        members ()
    and arr () =
      expect '[';
      skip_ws ();
      match peek () with
      | Some ']' -> advance ()
      | _ ->
        let rec elems () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ']' -> advance ()
          | _ -> raise (Bad "array")
        in
        elems ()
    in
    value ();
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing input at %d" !pos))

  let is_valid s = match parse s with () -> true | exception Bad _ -> false
end

(* --- the disabled recorder must be invisible --------------------------- *)

let test_disabled_invisible () =
  Obs.Recorder.disable ();
  Obs.Recorder.reset ();
  Obs.Metrics.reset ();
  let baseline = fingerprint (retail_run ~jobs:2 ~seed:7) in
  Alcotest.(check int) "no events recorded" 0 (Obs.Recorder.event_count ());
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length snap.Obs.Metrics.counters);
  Alcotest.(check int) "no histograms" 0 (List.length snap.Obs.Metrics.histograms);
  (* instrumentation must not perturb the matcher: the same run under
     the recorder yields the identical result *)
  let instrumented = with_recorder (fun () -> fingerprint (retail_run ~jobs:2 ~seed:7)) in
  Alcotest.(check string) "enabled run matches disabled run" baseline instrumented;
  Alcotest.(check bool) "events recorded when enabled" true (Obs.Recorder.event_count () > 0)

(* --- spans nest across the pool's cross-domain fan-out ----------------- *)

let test_span_nesting () =
  with_recorder @@ fun () ->
  let pool = Runtime.Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let input = Array.init 32 Fun.id in
  let results =
    Obs.Trace.with_span "batch" (fun () ->
        Runtime.Pool.map_array_results pool (fun x -> x * x) input)
  in
  Array.iteri
    (fun i -> function
      | Ok v -> Alcotest.(check int) "payload" (i * i) v
      | Error _ -> Alcotest.fail "unexpected Error slot")
    results;
  let events = Obs.Recorder.events () in
  let batch =
    match List.find_opt (fun e -> e.Obs.Recorder.path = "batch") events with
    | Some e -> e
    | None -> Alcotest.fail "no batch span recorded"
  in
  let chunks = List.filter (fun e -> e.Obs.Recorder.name = "pool.chunk") events in
  Alcotest.(check bool) "several chunk spans" true (List.length chunks > 1);
  List.iter
    (fun (e : Obs.Recorder.event) ->
      Alcotest.(check string) "chunk path extends batch path" "batch/pool.chunk" e.path;
      Alcotest.(check int) "chunk parents to the batch span" batch.Obs.Recorder.id e.parent)
    chunks;
  let ordinals =
    List.map (fun e -> e.Obs.Recorder.ordinal) chunks |> List.sort compare
  in
  Alcotest.(check (list int))
    "chunk ordinals are dense from 0"
    (List.init (List.length chunks) Fun.id)
    ordinals

(* --- counters do not depend on --jobs ---------------------------------- *)

(* pool.* reflects scheduling (chunk counts, busy time) and the
   hit/miss *split* of the shared caches can shift when two domains
   race a compute on the same key; everything else — including the
   lookup totals — must be identical at every jobs value. *)
let scheduling_dependent name =
  (String.length name >= 5 && String.sub name 0 5 = "pool.")
  || List.mem name
       [
         "memo.hits";
         "memo.misses";
         "cache.profile.hits";
         "cache.profile.misses";
         (* a build happens on a double miss, so the same races shift it *)
         "cache.profile.builds";
       ]

let counters_for ~jobs =
  with_recorder @@ fun () ->
  ignore (retail_run ~jobs ~seed:11);
  let snap = Obs.Metrics.snapshot () in
  List.filter (fun (name, _) -> not (scheduling_dependent name)) snap.Obs.Metrics.counters

let test_counters_jobs_invariant () =
  let show l = String.concat "\n" (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) l) in
  let seq = counters_for ~jobs:1 in
  Alcotest.(check bool) "lookups counted" true
    (List.assoc_opt "cache.profile.lookups" seq <> None);
  Alcotest.(check string) "counters independent of --jobs" (show seq)
    (show (counters_for ~jobs:4))

(* --- exporters --------------------------------------------------------- *)

let test_exporters_json () =
  with_recorder @@ fun () ->
  ignore (retail_run ~jobs:2 ~seed:3);
  let metrics = Obs.Export.metrics_json ~extra:[ ("degraded_issues", "0") ] () in
  Alcotest.(check bool) "metrics document parses" true (Json_check.is_valid metrics);
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true (contains field metrics))
    [
      "\"spans\"";
      "\"counters\"";
      "\"pool\"";
      "\"utilization\"";
      "cache.profile.lookups";
      "\"degraded_issues\"";
    ];
  let trace = Obs.Export.trace_jsonl () in
  let lines = String.split_on_char '\n' trace |> List.filter (fun l -> l <> "") in
  Alcotest.(check bool) "trace has lines" true (lines <> []);
  List.iter
    (fun line ->
      Alcotest.(check bool) "trace line parses" true (Json_check.is_valid line))
    lines;
  let tree = Obs.Export.span_tree () in
  Alcotest.(check bool) "span tree shows the pipeline root" true
    (contains "context_match" tree)

(* --- stats accessors --------------------------------------------------- *)

let test_memo_stats () =
  let m = Runtime.Memo.create () in
  ignore (Runtime.Memo.find_or_add m "a" (fun () -> 1));
  ignore (Runtime.Memo.find_or_add m "a" (fun () -> 2));
  ignore (Runtime.Memo.find_or_add m "b" (fun () -> 3));
  let s = Runtime.Memo.stats m in
  Alcotest.(check int) "hits" 1 s.Runtime.Memo.stat_hits;
  Alcotest.(check int) "misses" 2 s.Runtime.Memo.stat_misses;
  Alcotest.(check int) "entries" 2 s.Runtime.Memo.stat_entries;
  Runtime.Memo.clear m;
  let s = Runtime.Memo.stats m in
  Alcotest.(check int) "entries dropped by clear" 0 s.Runtime.Memo.stat_entries;
  Alcotest.(check int) "counters reset by clear" 0 (s.Runtime.Memo.stat_hits + s.Runtime.Memo.stat_misses)

let test_profile_cache_stats () =
  let c = Matching.Profile_cache.create () in
  let key = Matching.Profile_cache.key ~table:"t" ~attr:"a" ~indices:[| 0; 1; 2 |] in
  let profile () = Textsim.Profile.of_strings_array [| "x"; "y" |] in
  ignore (Runtime.Memo.find_or_add c.Matching.Profile_cache.profiles key profile);
  ignore (Runtime.Memo.find_or_add c.Matching.Profile_cache.profiles key profile);
  ignore
    (Runtime.Memo.find_or_add c.Matching.Profile_cache.distincts key (fun () -> [ "x" ]));
  let s = Matching.Profile_cache.stats c in
  Alcotest.(check int) "hits summed over tables" 1 s.Matching.Profile_cache.stat_hits;
  Alcotest.(check int) "misses summed over tables" 2 s.Matching.Profile_cache.stat_misses;
  Alcotest.(check int) "entries summed over tables" 2 s.Matching.Profile_cache.stat_entries

let () =
  Alcotest.run "ctxmatch-obs"
    [
      ( "obs",
        [
          Alcotest.test_case "disabled recorder is invisible" `Quick test_disabled_invisible;
          Alcotest.test_case "spans nest across pool fan-out" `Quick test_span_nesting;
          Alcotest.test_case "counters independent of jobs" `Slow test_counters_jobs_invariant;
          Alcotest.test_case "exporters emit valid JSON" `Quick test_exporters_json;
          Alcotest.test_case "memo stats accessor" `Quick test_memo_stats;
          Alcotest.test_case "profile-cache stats accessor" `Quick test_profile_cache_stats;
        ] );
    ]
