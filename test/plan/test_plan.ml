(* Match-plan suite.

   The plan engine's central claims (DESIGN.md, "Match plans") are
   (1) the default plan IS the legacy pipeline — not similar output,
   byte-identical matches, standard matches and confidences — and
   (2) a filter wide enough to keep every textual candidate degenerates
   to the default exactly, kernel on or off, store warm or cold, for
   every jobs value.  The differential tests here hold the engine to
   both.  The rest covers the pieces those guarantees ride on: spec
   parsing, rewrite-rule normal forms, cost-model monotonicity and
   calibration, the serve daemon's plan surface, and the scoring-path
   determinism regressions (exact top-k boundary ties, NaN containment
   at Matcher.score, Simmetrics on empty inputs). *)

open Relational

let in_temp_dir f =
  let dir = Filename.temp_file "ctxplan" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* --- spec parsing ------------------------------------------------------ *)

let expect_spec input want =
  match Plan.spec_of_string input with
  | Ok got -> Alcotest.(check bool) (Printf.sprintf "parse %S" input) true (got = want)
  | Error m -> Alcotest.failf "parse %S failed: %s" input m

let expect_spec_error input =
  match Plan.spec_of_string input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "parse %S must fail" input

let test_spec_parsing () =
  expect_spec "default" Plan.Default;
  expect_spec "legacy" Plan.Default;
  expect_spec "auto" Plan.Auto;
  expect_spec "Filter" (Plan.Filtered { k = Plan.default_k; tau = 0.0 });
  expect_spec "filter:8" (Plan.Filtered { k = 8; tau = 0.0 });
  expect_spec "filter:8,0.25" (Plan.Filtered { k = 8; tau = 0.25 });
  expect_spec " filter:3 , 0.5 " (Plan.Filtered { k = 3; tau = 0.5 });
  List.iter expect_spec_error
    [ ""; "nonsense"; "filter:0"; "filter:-2"; "filter:x"; "filter:4,1.5"; "filter:4,-0.1"; "filter:4,0.1,9" ];
  (* to_string round-trips through of_string *)
  List.iter
    (fun spec ->
      match Plan.spec_of_string (Plan.spec_to_string spec) with
      | Ok got -> Alcotest.(check bool) "roundtrip" true (got = spec)
      | Error m -> Alcotest.failf "roundtrip %s: %s" (Plan.spec_to_string spec) m)
    [ Plan.Default; Plan.Auto; Plan.Filtered { k = 7; tau = 0.0 }; Plan.Filtered { k = 5; tau = 0.3 } ]

(* --- rewrite rules ------------------------------------------------------ *)

let spec ?(cls = Plan.Op.Instance) ?(filterable = false) ?(applies = Plan.Op.All) name =
  {
    Plan.Op.m_name = name;
    m_weight = 1.0;
    m_kernel = false;
    m_filterable = filterable;
    m_class = cls;
    m_applies = applies;
  }

let profile_src = Plan.Op.Profile { side = `Source }
let profile_tgt = Plan.Op.Profile { side = `Target }
let a_filter = Plan.Op.Filter { k = 4; tau = 0.0 }

let test_rewrite_filter_before_score () =
  let score = Plan.Op.Score { matchers = [ spec "w" ] } in
  let ops = [ profile_src; profile_tgt; score; a_filter ] in
  (match Plan.Rewrite.filter_before_score.Plan.Rewrite.apply ops with
  | Some [ p1; p2; f; s ] ->
    Alcotest.(check bool) "profiles untouched" true (p1 = profile_src && p2 = profile_tgt);
    Alcotest.(check bool) "filter hoisted" true (f = a_filter);
    Alcotest.(check bool) "score after filter" true (s = score)
  | Some _ -> Alcotest.fail "unexpected shape after hoist"
  | None -> Alcotest.fail "rule must fire");
  (* already-normal plans are left alone: the rule declines *)
  Alcotest.(check bool) "normal form declines" true
    (Plan.Rewrite.filter_before_score.Plan.Rewrite.apply
       [ profile_src; profile_tgt; a_filter; score ]
    = None)

let test_rewrite_fuse_scores () =
  let s1 = Plan.Op.Score { matchers = [ spec "a" ] } in
  let s2 = Plan.Op.Score { matchers = [ spec "b"; spec "c" ] } in
  match Plan.Rewrite.fuse_scores.Plan.Rewrite.apply [ profile_src; s1; s2 ] with
  | Some [ _; Plan.Op.Score { matchers } ] ->
    Alcotest.(check (list string)) "concatenated in order" [ "a"; "b"; "c" ]
      (List.map (fun m -> m.Plan.Op.m_name) matchers)
  | _ -> Alcotest.fail "adjacent scores must fuse into one"

let test_rewrite_order_matchers () =
  let score =
    Plan.Op.Score
      {
        matchers =
          [
            spec ~cls:Plan.Op.Qgram "q";
            spec ~cls:Plan.Op.Trivial "t";
            spec ~cls:Plan.Op.Instance "i1";
            spec ~cls:Plan.Op.Cheap "c";
            spec ~cls:Plan.Op.Instance "i2";
          ];
      }
  in
  match Plan.Rewrite.order_matchers.Plan.Rewrite.apply [ score ] with
  | Some [ Plan.Op.Score { matchers } ] ->
    (* ascending class rank; the sort is stable so i1 stays before i2 *)
    Alcotest.(check (list string)) "cheap-first, stable" [ "t"; "c"; "i1"; "i2"; "q" ]
      (List.map (fun m -> m.Plan.Op.m_name) matchers)
  | _ -> Alcotest.fail "order_matchers must fire"

let test_rewrite_fixpoint_and_log () =
  let matchers = [ spec ~cls:Plan.Op.Qgram ~filterable:true "q"; spec ~cls:Plan.Op.Trivial "t" ] in
  let p = Plan.filtered ~k:4 ~matchers () in
  (* normal form: filter sits before the single fused score stage, and
     the log records the normalisation *)
  let fi = ref (-1) and si = ref (-1) in
  List.iteri
    (fun i op ->
      match op with
      | Plan.Op.Filter _ when !fi < 0 -> fi := i
      | Plan.Op.Score _ when !si < 0 -> si := i
      | _ -> ())
    p.Plan.ops;
  Alcotest.(check bool) "has filter and score" true (!fi >= 0 && !si >= 0);
  Alcotest.(check bool) "filter precedes score" true (!fi < !si);
  Alcotest.(check bool) "hoist logged" true (List.mem "filter-before-score" p.Plan.rewrites);
  Alcotest.(check bool) "ordering logged" true (List.mem "order-matchers" p.Plan.rewrites);
  (* a second normalisation pass is a no-op: already at fixpoint *)
  let again, fired = Plan.Rewrite.apply_fixpoint Plan.Rewrite.default_rules p.Plan.ops in
  Alcotest.(check bool) "fixpoint reached" true (again = p.Plan.ops && fired = []);
  (* the default plan is already in normal form *)
  let d = Plan.default ~matchers () in
  Alcotest.(check (list string)) "default rewrites empty" [] d.Plan.rewrites

let test_validate_rejects_mismatch () =
  let matchers = [ spec "a"; spec "b" ] in
  let p = Plan.default ~matchers () in
  (match Plan.validate ~matchers p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "own matcher set must validate: %s" m);
  match Plan.validate ~matchers:[ spec "a" ] p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "extra matcher must be rejected"

(* --- cost model --------------------------------------------------------- *)

let wide_shape =
  {
    Plan.Cost.src_attrs = 10;
    tgt_cols = 200;
    textual_src = 8;
    textual_tgt = 160;
    numeric_src = 2;
    numeric_tgt = 40;
  }

let costed_matchers =
  [
    spec ~cls:Plan.Op.Trivial "type";
    spec ~cls:Plan.Op.Instance ~filterable:true ~applies:Plan.Op.Textual "word";
    spec ~cls:Plan.Op.Qgram ~filterable:true ~applies:Plan.Op.Textual "qgram";
  ]

let test_cost_monotone_in_shape () =
  let total shape plan =
    Plan.Cost.total_ns (Plan.Cost.plan_cost Plan.Cost.default shape plan.Plan.ops)
  in
  let d = Plan.default ~matchers:costed_matchers () in
  let small = { wide_shape with tgt_cols = 20; textual_tgt = 16; numeric_tgt = 4 } in
  Alcotest.(check bool) "more columns cost more" true (total wide_shape d > total small d);
  (* a small-k filter must beat the cross product on a wide workload
     dominated by filterable instance matchers *)
  let f = Plan.filtered ~k:4 ~matchers:costed_matchers () in
  Alcotest.(check bool) "filtered cheaper at scale" true (total wide_shape f < total wide_shape d)

let test_cost_filter_caps_pairs () =
  let f = Plan.filtered ~k:4 ~matchers:costed_matchers () in
  let lines = Plan.Cost.plan_cost Plan.Cost.default wide_shape f.Plan.ops in
  let score_est =
    List.find_map
      (function
        | { Plan.Cost.op = Plan.Op.Score _; est_ns; _ } -> Some est_ns
        | _ -> None)
      lines
  in
  let d = Plan.default ~matchers:costed_matchers () in
  let d_score =
    List.find_map
      (function
        | { Plan.Cost.op = Plan.Op.Score _; est_ns; _ } -> Some est_ns
        | _ -> None)
      (Plan.Cost.plan_cost Plan.Cost.default wide_shape d.Plan.ops)
  in
  match (score_est, d_score) with
  | Some f_ns, Some d_ns ->
    Alcotest.(check bool) "capped score stage cheaper" true (f_ns < d_ns)
  | _ -> Alcotest.fail "both plans must carry a score stage"

let test_cost_calibration () =
  (* feed the recorder a synthetic qgram workload: 10 pairs, 50us *)
  Obs.Recorder.enable ();
  Obs.Metrics.reset ();
  Obs.Metrics.add "plan.score_pairs.qgram" 10;
  Obs.Metrics.observe_ns "plan.score_ns.qgram" 50_000L;
  let snap = Obs.Metrics.snapshot () in
  let m = Plan.Cost.of_snapshot snap in
  Obs.Metrics.reset ();
  Obs.Recorder.disable ();
  Alcotest.(check bool) "qgram rate measured" true
    (Float.abs (m.Plan.Cost.ns_qgram -. 5_000.0) < 1e-6);
  (* classes without observations keep the shipped defaults *)
  Alcotest.(check bool) "unseen classes keep defaults" true
    (m.Plan.Cost.ns_instance = Plan.Cost.default.Plan.Cost.ns_instance
    && m.Plan.Cost.ns_trivial = Plan.Cost.default.Plan.Cost.ns_trivial)

let test_auto_resolution () =
  let resolve ~kernel shape =
    Plan.resolve ~shape ~kernel ~matchers:costed_matchers Plan.Auto
  in
  (* wide workload, kernel on: the filter wins and the name says so *)
  let wide = resolve ~kernel:true wide_shape in
  Alcotest.(check bool) "auto picks filter at scale" true
    (Plan.filter_params wide <> None
    && String.length wide.Plan.plan_name > 5
    && String.sub wide.Plan.plan_name 0 5 = "auto:");
  (* no kernel: never pick a filter the executor would fall back on *)
  let no_kernel = resolve ~kernel:false wide_shape in
  Alcotest.(check bool) "auto without kernel stays default" true
    (Plan.filter_params no_kernel = None)

(* --- differential identity: plans vs legacy ---------------------------- *)

let fp_match (m : Matching.Schema_match.t) =
  Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
    m.tgt_attr
    (Condition.to_string m.condition)
    m.confidence

let fingerprint (r : Ctxmatch.Context_match.result) =
  String.concat "\n"
    (List.map fp_match r.Ctxmatch.Context_match.matches
    @ List.map fp_match r.Ctxmatch.Context_match.standard)

let retail_params =
  { Workload.Retail.default_params with rows = 120; target_rows = 60; seed = 42 }

let source_db = Workload.Retail.source retail_params
let target_db = Workload.Retail.target retail_params Workload.Retail.Ryan_eyers

let retail_run ?store ?(jobs = 1) ?(kernel = true) ?(plan = Plan.Default) () =
  let config = { Ctxmatch.Config.default with jobs; kernel; plan } in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target:target_db in
  Ctxmatch.Context_match.run ~config ?store ~infer ~source:source_db ~target:target_db ()

(* A filter wide enough to keep every textual target (and tau = 0,
   which the index treats inclusively: untouched targets score an
   exact 0.0 >= 0.0) keeps exactly the legacy candidate set, so the
   run must be byte-identical to the default plan — per jobs value,
   kernel on and off, store cold and warm. *)
let test_full_width_filter_is_default () =
  in_temp_dir @@ fun dir ->
  let want = fingerprint (retail_run ()) in
  let wide = Plan.Filtered { k = 1024; tau = 0.0 } in
  List.iter
    (fun kernel ->
      List.iter
        (fun jobs ->
          let r = retail_run ~jobs ~kernel ~plan:wide () in
          Alcotest.(check string)
            (Printf.sprintf "full-width filter jobs=%d kernel=%b" jobs kernel)
            want (fingerprint r);
          Alcotest.(check int)
            (Printf.sprintf "nothing pruned jobs=%d kernel=%b" jobs kernel)
            0 r.Ctxmatch.Context_match.pairs_pruned)
        [ 1; 4 ])
    [ true; false ];
  (* cold store run, then warm: same fingerprint again *)
  let store = Store.open_dir dir in
  let cold = retail_run ~store ~plan:wide () in
  Store.flush store;
  Alcotest.(check string) "cold store identical" want (fingerprint cold);
  let warm_store = Store.open_dir dir in
  let warm = retail_run ~store:warm_store ~plan:wide () in
  Alcotest.(check string) "warm store identical" want (fingerprint warm)

(* The executed plan and the pairs accounting surface coherently. *)
let test_plan_accounting () =
  let base = retail_run () in
  Alcotest.(check string) "default plan named" "default"
    base.Ctxmatch.Context_match.plan.Plan.plan_name;
  Alcotest.(check int) "default prunes nothing" 0 base.Ctxmatch.Context_match.pairs_pruned;
  Alcotest.(check bool) "default scores pairs" true
    (base.Ctxmatch.Context_match.pairs_scored > 0);
  let narrow = retail_run ~plan:(Plan.Filtered { k = 1; tau = 0.0 }) () in
  Alcotest.(check bool) "narrow filter prunes" true
    (narrow.Ctxmatch.Context_match.pairs_pruned > 0);
  Alcotest.(check bool) "narrow filter scores fewer pairs" true
    (narrow.Ctxmatch.Context_match.pairs_scored < base.Ctxmatch.Context_match.pairs_scored);
  Alcotest.(check bool) "filter stage present" true
    (Plan.filter_params narrow.Ctxmatch.Context_match.plan = Some (1, 0.0))

(* The kernel is an acceleration, never a semantics switch: a filtered
   run scores the same candidates through the kernel and through the
   exact pairwise fallback. *)
let test_filtered_kernel_invariance () =
  List.iter
    (fun k ->
      let plan = Plan.Filtered { k; tau = 0.0 } in
      let on = retail_run ~kernel:true ~plan () in
      let off = retail_run ~kernel:false ~plan () in
      Alcotest.(check string)
        (Printf.sprintf "k=%d kernel on/off identical" k)
        (fingerprint on) (fingerprint off);
      Alcotest.(check int)
        (Printf.sprintf "k=%d same pruning" k)
        on.Ctxmatch.Context_match.pairs_pruned off.Ctxmatch.Context_match.pairs_pruned)
    [ 1; 3 ]

(* Filtered runs are jobs-invariant too, pairs accounting included. *)
let test_filtered_jobs_invariance () =
  let plan = Plan.Filtered { k = 2; tau = 0.0 } in
  let base = retail_run ~jobs:1 ~plan () in
  List.iter
    (fun jobs ->
      let r = retail_run ~jobs ~plan () in
      Alcotest.(check string) (Printf.sprintf "jobs=%d identical" jobs) (fingerprint base)
        (fingerprint r);
      Alcotest.(check int) (Printf.sprintf "jobs=%d pairs_scored" jobs)
        base.Ctxmatch.Context_match.pairs_scored r.Ctxmatch.Context_match.pairs_scored;
      Alcotest.(check int) (Printf.sprintf "jobs=%d pairs_pruned" jobs)
        base.Ctxmatch.Context_match.pairs_pruned r.Ctxmatch.Context_match.pairs_pruned)
    [ 2; 4 ]

(* Passing the default plan explicitly is the same as not passing one:
   a single construction site, no drift. *)
let test_explicit_default_plan () =
  let matchers = Ctxmatch.Config.default.Ctxmatch.Config.matchers in
  let explicit =
    Plan.default ~gated:Ctxmatch.Config.default.Ctxmatch.Config.gated_confidence
      ~matchers:(Matching.Matchers.plan_specs matchers) ()
  in
  let build ?plan () =
    Matching.Standard_match.build ~matchers ~jobs:1 ~kernel:true ?plan ~source:source_db
      ~target:target_db ()
  in
  let implicit_m = build () in
  let explicit_m = build ~plan:explicit () in
  List.iter
    (fun tbl ->
      let src_table = Table.name tbl in
      let a = Matching.Standard_match.matches_from implicit_m ~src_table ~tau:0.5 in
      let b = Matching.Standard_match.matches_from explicit_m ~src_table ~tau:0.5 in
      Alcotest.(check (list string))
        (Printf.sprintf "explicit default identical (%s)" src_table)
        (List.map fp_match a) (List.map fp_match b))
    (Database.tables source_db);
  (* a plan whose matcher set disagrees with the model's is refused *)
  match
    build
      ~plan:(Plan.default ~matchers:[ spec "only-one" ] ())
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched plan must raise Invalid_argument"

(* --- determinism regressions (scoring path) ----------------------------- *)

(* Exact tie at the top-k boundary: identical profiles in every slot.
   The cut must fall deterministically — score descending, then slot
   ascending — not wherever the heap happened to leave things. *)
let test_topk_exact_tie () =
  let p () = Textsim.Profile.of_strings [ "alpha beta" ] in
  let idx = Textsim.Gram_index.build [| p (); p (); p () |] in
  let cand = p () in
  let hits, _stats = Textsim.Gram_index.top_k idx cand ~k:2 ~tau:0.0 in
  (match hits with
  | [ (s0, c0); (s1, c1) ] ->
    Alcotest.(check int) "first slot" 0 s0;
    Alcotest.(check int) "second slot" 1 s1;
    Alcotest.(check bool) "scores tied" true (c0 = c1)
  | _ -> Alcotest.fail "expected exactly k hits");
  (* the same tie through the interned kernel: column id order *)
  let col name =
    ( ("t", name),
      Textsim.Profile.of_strings [ "alpha beta" ] )
  in
  let kern = Matching.Score_kernel.build [| col "a"; col "b"; col "c" |] in
  match Matching.Score_kernel.top_k kern cand ~k:2 ~tau:0.0 with
  | [ ((_, n0), _); ((_, n1), _) ] ->
    Alcotest.(check string) "kernel first" "a" n0;
    Alcotest.(check string) "kernel second" "b" n1
  | _ -> Alcotest.fail "kernel: expected exactly k hits"

let mk_column ?(owner = "t") name ty values =
  Matching.Column.make ~owner (Attribute.make name ty) (Array.of_list values)

(* A matcher whose raw score is NaN (or out of range) must never leak
   past Matcher.score: NaN poisons the z-normalised combination of
   every other matcher on the pair.  OCaml's Float.min/max propagate
   NaN, so the clamp alone is not enough — this is the regression. *)
let test_matcher_nan_containment () =
  let col = mk_column "x" Value.Tstring [ Value.String "a" ] in
  let fixed v =
    Matching.Matcher.make ~name:"fixed" ~applicable:(fun _ _ -> true) (fun _ _ -> v)
  in
  Alcotest.(check (float 0.0)) "nan -> 0" 0.0 (Matching.Matcher.score (fixed Float.nan) col col);
  Alcotest.(check (float 0.0)) "overflow clamps" 1.0 (Matching.Matcher.score (fixed 2.0) col col);
  Alcotest.(check (float 0.0)) "underflow clamps" 0.0 (Matching.Matcher.score (fixed (-3.0)) col col);
  Alcotest.(check (float 0.0)) "neg-infinity clamps" 0.0
    (Matching.Matcher.score (fixed Float.neg_infinity) col col);
  Alcotest.(check (float 0.0)) "infinity clamps" 1.0
    (Matching.Matcher.score (fixed Float.infinity) col col)

(* Empty-input edge cases across the string-similarity kernels: every
   guard must return a finite score in [0, 1], never divide by an
   empty length. *)
let test_simmetrics_empty_inputs () =
  let finite01 name v =
    Alcotest.(check bool) (name ^ " finite and in [0,1]") true
      ((not (Float.is_nan v)) && v >= 0.0 && v <= 1.0)
  in
  finite01 "jaro \"\" \"\"" (Textsim.Simmetrics.jaro "" "");
  finite01 "jaro a \"\"" (Textsim.Simmetrics.jaro "a" "");
  finite01 "jaro_winkler \"\" \"\"" (Textsim.Simmetrics.jaro_winkler "" "");
  finite01 "levenshtein_similarity \"\" \"\"" (Textsim.Simmetrics.levenshtein_similarity "" "");
  finite01 "jaccard [] []" (Textsim.Simmetrics.jaccard [] []);
  finite01 "dice [] []" (Textsim.Simmetrics.dice [] []);
  finite01 "overlap [] []" (Textsim.Simmetrics.overlap [] []);
  finite01 "overlap [] [a]" (Textsim.Simmetrics.overlap [] [ "a" ]);
  finite01 "cosine_bags [] []" (Textsim.Simmetrics.cosine_bags [] []);
  finite01 "name_similarity \"\" \"\"" (Textsim.Simmetrics.name_similarity "" "")

(* --- serve surface ------------------------------------------------------ *)

let csv_payload db =
  List.map
    (fun table -> (Table.name table, Csv_io.table_to_csv table))
    (Database.tables db)

let with_server dir f =
  let address =
    Serve.Server.Unix_sock (Filename.concat dir (Printf.sprintf "p%d.sock" (Unix.getpid ())))
  in
  let server = Serve.Server.create (Serve.Server.default_config address) in
  let thread = Serve.Server.start server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Thread.join thread)
    (fun () ->
      let client = Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 address in
      Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client))

let expect_field json name =
  match Serve.Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "reply missing field %S: %s" name (Serve.Json.to_string json)

let str_field json name =
  match Serve.Json.to_string_opt (expect_field json name) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let int_field json name =
  match Serve.Json.to_int (expect_field json name) with
  | Some i -> i
  | None -> Alcotest.failf "field %S is not an int" name

(* The daemon's plan surface: registration stores a per-target default
   plan (echoed by register and list-targets), a match request can
   override it, and every match reply reports the plan it executed
   with its pairs accounting. *)
let test_serve_plan_surface () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun client ->
  let register = Serve.Protocol.register_json ~plan:"filter:2" ~name:"retail" (csv_payload target_db) in
  let reply = Serve.Client.request client register in
  Alcotest.(check string) "register echoes plan" "filter:2" (str_field reply "plan");
  (* list-targets shows the registered default *)
  let listing = Serve.Client.request client Serve.Protocol.list_targets_json in
  (match Serve.Json.to_list_opt (expect_field listing "targets") with
  | Some [ row ] -> Alcotest.(check string) "listed plan" "filter:2" (str_field row "plan")
  | _ -> Alcotest.failf "expected one target row: %s" (Serve.Json.to_string listing));
  (* a match with no plan field runs the target's default *)
  let m1 =
    Serve.Client.request client
      (Serve.Protocol.match_json ~target:"retail" (csv_payload source_db))
  in
  Alcotest.(check string) "target default executed" "filter:2" (str_field m1 "plan");
  Alcotest.(check bool) "pairs accounted" true (int_field m1 "pairs_scored" > 0);
  (* a per-request override wins, and default reports zero pruned *)
  let m2 =
    Serve.Client.request client
      (Serve.Protocol.match_json ~plan:"default" ~target:"retail" (csv_payload source_db))
  in
  Alcotest.(check string) "override executed" "default" (str_field m2 "plan");
  Alcotest.(check int) "default prunes nothing" 0 (int_field m2 "pairs_pruned");
  (* a bad plan spec is a structured bad-request, not a dead daemon *)
  let bad =
    Serve.Client.request client
      (Serve.Protocol.match_json ~plan:"filter:0" ~target:"retail" (csv_payload source_db))
  in
  (match Serve.Json.to_bool (expect_field bad "ok") with
  | Some false -> ()
  | _ -> Alcotest.failf "bad plan spec must be rejected: %s" (Serve.Json.to_string bad));
  Alcotest.(check string) "reject code" "bad-request" (str_field bad "code")

let () =
  Alcotest.run "plan"
    [
      ( "spec",
        [
          Alcotest.test_case "parsing and roundtrip" `Quick test_spec_parsing;
          Alcotest.test_case "validate rejects mismatch" `Quick test_validate_rejects_mismatch;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "filter hoisted before score" `Quick test_rewrite_filter_before_score;
          Alcotest.test_case "adjacent scores fuse" `Quick test_rewrite_fuse_scores;
          Alcotest.test_case "matchers ordered cheap-first" `Quick test_rewrite_order_matchers;
          Alcotest.test_case "fixpoint and rewrite log" `Quick test_rewrite_fixpoint_and_log;
        ] );
      ( "cost",
        [
          Alcotest.test_case "monotone in shape, filter wins at scale" `Quick
            test_cost_monotone_in_shape;
          Alcotest.test_case "filter caps score-stage pairs" `Quick test_cost_filter_caps_pairs;
          Alcotest.test_case "calibration from recorder snapshot" `Quick test_cost_calibration;
          Alcotest.test_case "auto resolution" `Quick test_auto_resolution;
        ] );
      ( "differential",
        [
          Alcotest.test_case "full-width filter = default (jobs x kernel x store)" `Quick
            test_full_width_filter_is_default;
          Alcotest.test_case "pairs accounting" `Quick test_plan_accounting;
          Alcotest.test_case "filtered kernel on/off invariance" `Quick
            test_filtered_kernel_invariance;
          Alcotest.test_case "filtered jobs invariance" `Quick test_filtered_jobs_invariance;
          Alcotest.test_case "explicit default plan identical" `Quick test_explicit_default_plan;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "exact top-k boundary ties" `Quick test_topk_exact_tie;
          Alcotest.test_case "NaN containment in Matcher.score" `Quick
            test_matcher_nan_containment;
          Alcotest.test_case "Simmetrics empty inputs" `Quick test_simmetrics_empty_inputs;
        ] );
      ( "serve",
        [ Alcotest.test_case "per-target plan surface" `Quick test_serve_plan_surface ] );
    ]
