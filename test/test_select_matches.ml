open Relational

let std ?(conf = 0.6) src_attr tgt_table tgt_attr =
  Matching.Schema_match.standard ~src_table:"S" ~src_attr ~tgt_table ~tgt_attr conf

let table =
  Table.make
    (Schema.make "S" [ Attribute.string "k"; Attribute.string "id"; Attribute.string "x" ])
    (List.init 12 (fun i ->
         [|
           Value.String (if i mod 2 = 0 then "a" else "b");
           Value.String (string_of_int (i / 2));
           Value.String (Printf.sprintf "x%d" i);
         |]))

let view cond = View.make table cond

let ctx ?(conf = 0.8) view_name cond src_attr tgt_table tgt_attr =
  Matching.Schema_match.contextual ~view_name ~src_base:"S" ~src_attr ~tgt_table ~tgt_attr
    ~condition:cond conf

let scored_view ?(family_attr = "k") cond view_matches =
  { Ctxmatch.Select_matches.view = view cond; family_attr; view_matches }

let test_multi_table_picks_best_per_attr () =
  let cond = Condition.Eq ("k", Value.String "a") in
  let standard = [ std ~conf:0.6 "x" "T" "t1"; std ~conf:0.9 "x" "T" "t2" ] in
  let scored = [ scored_view cond [ ctx ~conf:0.8 "v" cond "x" "T" "t1" ] ] in
  let selected = Ctxmatch.Select_matches.multi_table ~standard ~scored in
  Alcotest.(check int) "two target attrs" 2 (List.length selected);
  let t1 = List.find (fun (m : Matching.Schema_match.t) -> m.tgt_attr = "t1") selected in
  Alcotest.(check bool) "view won t1" true (Matching.Schema_match.is_contextual t1);
  let t2 = List.find (fun (m : Matching.Schema_match.t) -> m.tgt_attr = "t2") selected in
  Alcotest.(check bool) "base kept t2" false (Matching.Schema_match.is_contextual t2)

let test_qual_table_no_view_improvement () =
  let standard = [ std ~conf:0.9 "x" "T" "t1" ] in
  let cond = Condition.Eq ("k", Value.String "a") in
  let scored = [ scored_view cond [ ctx ~conf:0.91 "v" cond "x" "T" "t1" ] ] in
  let selected =
    Ctxmatch.Select_matches.qual_table ~omega:0.5 ~early_disjuncts:true ~standard ~scored
      ~target_tables:[ "T" ] ()
  in
  Alcotest.(check int) "base returned" 1 (List.length selected);
  Alcotest.(check bool) "standard" false
    (Matching.Schema_match.is_contextual (List.hd selected))

let test_qual_table_view_selected () =
  let standard = [ std ~conf:0.5 "x" "T" "t1" ] in
  let cond = Condition.Eq ("k", Value.String "a") in
  let scored = [ scored_view cond [ ctx ~conf:0.95 "v" cond "x" "T" "t1" ] ] in
  let selected =
    Ctxmatch.Select_matches.qual_table ~omega:0.3 ~early_disjuncts:true ~standard ~scored
      ~target_tables:[ "T" ] ()
  in
  Alcotest.(check int) "one match" 1 (List.length selected);
  Alcotest.(check bool) "contextual" true (Matching.Schema_match.is_contextual (List.hd selected))

let test_qual_table_early_picks_single_best () =
  let standard = [ std ~conf:0.3 "x" "T" "t1" ] in
  let ca = Condition.Eq ("k", Value.String "a") in
  let cb = Condition.Eq ("k", Value.String "b") in
  let scored =
    [
      scored_view ca [ ctx ~conf:0.8 "va" ca "x" "T" "t1" ];
      scored_view cb [ ctx ~conf:0.9 "vb" cb "x" "T" "t1" ];
    ]
  in
  let early =
    Ctxmatch.Select_matches.qual_table ~omega:0.2 ~early_disjuncts:true ~standard ~scored
      ~target_tables:[ "T" ] ()
  in
  Alcotest.(check int) "single view" 1 (List.length early);
  Alcotest.(check string) "best view" "vb"
    (List.hd early).Matching.Schema_match.src_owner;
  let late =
    Ctxmatch.Select_matches.qual_table ~omega:0.2 ~early_disjuncts:false ~standard ~scored
      ~target_tables:[ "T" ] ()
  in
  Alcotest.(check int) "late keeps both" 2 (List.length late)

let test_qual_table_strongest_source_wins () =
  let weak = Matching.Schema_match.standard ~src_table:"W" ~src_attr:"x" ~tgt_table:"T" ~tgt_attr:"t1" 0.4 in
  let strong1 = std ~conf:0.8 "x" "T" "t1" in
  let strong2 = std ~conf:0.8 "y" "T" "t2" in
  let selected =
    Ctxmatch.Select_matches.qual_table ~omega:0.5 ~early_disjuncts:true
      ~standard:[ weak; strong1; strong2 ] ~scored:[] ~target_tables:[ "T" ] ()
  in
  Alcotest.(check int) "only S matches" 2 (List.length selected);
  List.iter
    (fun (m : Matching.Schema_match.t) -> Alcotest.(check string) "from S" "S" m.src_base)
    selected

(* Boundary semantics: a view is accepted when its improvement is
   {e exactly} omega (>=, not >).  0.75 - 0.5 = 0.25 is exact in binary,
   so Float.succ gives the tightest possible "just above" probe. *)
let test_omega_boundary_exact () =
  let standard = [ std ~conf:0.5 "x" "T" "t1" ] in
  let cond = Condition.Eq ("k", Value.String "a") in
  let scored = [ scored_view cond [ ctx ~conf:0.75 "v" cond "x" "T" "t1" ] ] in
  let run omega =
    Ctxmatch.Select_matches.qual_table ~omega ~early_disjuncts:true ~standard ~scored
      ~target_tables:[ "T" ] ()
  in
  Alcotest.(check bool) "improvement = omega accepts the view" true
    (Matching.Schema_match.is_contextual (List.hd (run 0.25)));
  Alcotest.(check bool) "improvement just below omega keeps the base" false
    (Matching.Schema_match.is_contextual (List.hd (run (Float.succ 0.25))))

(* And StandardMatch accepts a pair whose confidence is exactly tau. *)
let test_tau_boundary_exact () =
  let mk name attrs rows = Table.make (Schema.make name attrs) rows in
  let words = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" |] in
  let source =
    Database.make "src"
      [
        mk "S"
          [ Attribute.string "name"; Attribute.string "code" ]
          (List.init 15 (fun i ->
               [|
                 Value.String (Printf.sprintf "%s item %d" words.(i mod 6) i);
                 Value.String (Printf.sprintf "Z%03d" i);
               |]));
      ]
  in
  let target =
    Database.make "tgt"
      [
        mk "T"
          [ Attribute.string "fullname"; Attribute.string "junk" ]
          (List.init 15 (fun i ->
               [|
                 Value.String (Printf.sprintf "%s item %d" words.((i + 1) mod 6) (i + 1));
                 Value.String (Printf.sprintf "qq-%d-qq" (i * 7));
               |]));
      ]
  in
  let model = Matching.Standard_match.build ~source ~target () in
  let best = List.hd (Matching.Standard_match.matches model ~tau:0.0) in
  let conf =
    Matching.Standard_match.confidence model ~src_table:best.src_base ~src_attr:best.src_attr
      ~tgt_table:best.tgt_table ~tgt_attr:best.tgt_attr
  in
  Alcotest.(check bool) "a real positive confidence" true (conf > 0.0);
  Alcotest.(check (float 0.0)) "matches carry the model confidence" conf best.confidence;
  let has tau =
    List.exists
      (fun (m : Matching.Schema_match.t) ->
        m.src_attr = best.src_attr && m.tgt_table = best.tgt_table
        && m.tgt_attr = best.tgt_attr)
      (Matching.Standard_match.matches_from model ~src_table:best.src_base ~tau)
  in
  Alcotest.(check bool) "tau = confidence includes the pair" true (has conf);
  Alcotest.(check bool) "tau just above excludes it" false (has (Float.succ conf))

(* Regression: best-source selection used the polymorphic (>) / (=) on
   float totals, so a tie's winner depended on hash-fold order and a nan
   total could poison the fold.  Both must now be deterministic at every
   jobs count and for every input order. *)
let test_source_tie_break_deterministic () =
  let a =
    Matching.Schema_match.standard ~src_table:"A" ~src_attr:"x" ~tgt_table:"T" ~tgt_attr:"t1" 0.5
  in
  let b =
    Matching.Schema_match.standard ~src_table:"B" ~src_attr:"x" ~tgt_table:"T" ~tgt_attr:"t1" 0.5
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun standard ->
          let sel =
            Ctxmatch.Select_matches.qual_table ~jobs ~omega:0.2 ~early_disjuncts:true ~standard
              ~scored:[] ~target_tables:[ "T" ] ()
          in
          Alcotest.(check int) "one match" 1 (List.length sel);
          Alcotest.(check string) "smaller source name wins the tie" "A"
            (List.hd sel).Matching.Schema_match.src_base)
        [ [ a; b ]; [ b; a ] ])
    [ 1; 4 ]

let test_nan_never_displaces_real () =
  let nan_m =
    Matching.Schema_match.standard ~src_table:"S" ~src_attr:"y" ~tgt_table:"T" ~tgt_attr:"t1"
      Float.nan
  in
  let real = std ~conf:0.4 "x" "T" "t1" in
  (* multi_table: with the old (>=) keep rule, [real; nan] let the nan
     replace the real match (nan compares false both ways) *)
  List.iter
    (fun standard ->
      let sel = Ctxmatch.Select_matches.multi_table ~standard ~scored:[] in
      Alcotest.(check int) "one match" 1 (List.length sel);
      Alcotest.(check string) "real match wins" "x" (List.hd sel).Matching.Schema_match.src_attr)
    [ [ nan_m; real ]; [ real; nan_m ] ];
  (* qual_table: a source whose total went nan loses to a real source *)
  let w =
    Matching.Schema_match.standard ~src_table:"W" ~src_attr:"x" ~tgt_table:"T" ~tgt_attr:"t1"
      Float.nan
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun standard ->
          let sel =
            Ctxmatch.Select_matches.qual_table ~jobs ~omega:0.2 ~early_disjuncts:true ~standard
              ~scored:[] ~target_tables:[ "T" ] ()
          in
          Alcotest.(check int) "one match" 1 (List.length sel);
          Alcotest.(check string) "real source selected" "S"
            (List.hd sel).Matching.Schema_match.src_base)
        [ [ w; real ]; [ real; w ] ])
    [ 1; 4 ]

let test_improvement_tie_order_independent () =
  let standard = [ std ~conf:0.3 "x" "T" "t1" ] in
  let ca = Condition.Eq ("k", Value.String "a") in
  let cb = Condition.Eq ("k", Value.String "b") in
  let sva = scored_view ca [ ctx ~conf:0.8 "va" ca "x" "T" "t1" ] in
  let svb = scored_view cb [ ctx ~conf:0.8 "vb" cb "x" "T" "t1" ] in
  let winner jobs scored =
    let sel =
      Ctxmatch.Select_matches.qual_table ~jobs ~omega:0.2 ~early_disjuncts:true ~standard ~scored
        ~target_tables:[ "T" ] ()
    in
    (List.hd sel).Matching.Schema_match.src_owner
  in
  List.iter
    (fun jobs ->
      Alcotest.(check string) "EarlyDisjuncts winner independent of candidate order"
        (winner jobs [ sva; svb ])
        (winner jobs [ svb; sva ]);
      Alcotest.(check string) "and of jobs" (winner 1 [ sva; svb ]) (winner jobs [ sva; svb ]))
    [ 1; 4 ]

let test_joinable_family_key_found () =
  (* id values repeat across both views (0..5 in each) and (id, k) is a
     key of the base: attribute-normalization shape *)
  let va = view (Condition.Eq ("k", Value.String "a")) in
  let vb = view (Condition.Eq ("k", Value.String "b")) in
  Alcotest.(check (option string)) "id is the join key" (Some "id")
    (Ctxmatch.Select_matches.joinable_family_key [ va; vb ])

let test_joinable_family_key_rejects_partition () =
  (* horizontally partitioned table: ids do not overlap between views *)
  let part =
    Table.make
      (Schema.make "S" [ Attribute.string "k"; Attribute.string "id" ])
      (List.init 12 (fun i ->
           [|
             Value.String (if i < 6 then "a" else "b");
             Value.String (string_of_int i);
           |]))
  in
  let va = View.make part (Condition.Eq ("k", Value.String "a")) in
  let vb = View.make part (Condition.Eq ("k", Value.String "b")) in
  Alcotest.(check (option string)) "no overlap, no join" None
    (Ctxmatch.Select_matches.joinable_family_key [ va; vb ])

let test_clio_qual_table_selects_group () =
  (* each view explains a different target attribute; individually
     neither beats the base, together they do *)
  let standard = [ std ~conf:0.55 "x" "T" "t1"; std ~conf:0.55 "x" "T" "t2" ] in
  let ca = Condition.Eq ("k", Value.String "a") in
  let cb = Condition.Eq ("k", Value.String "b") in
  let scored =
    [
      scored_view ca [ ctx ~conf:0.95 "va" ca "x" "T" "t1"; ctx ~conf:0.2 "va" ca "x" "T" "t2" ];
      scored_view cb [ ctx ~conf:0.2 "vb" cb "x" "T" "t1"; ctx ~conf:0.95 "vb" cb "x" "T" "t2" ];
    ]
  in
  let qual =
    Ctxmatch.Select_matches.qual_table ~omega:0.3 ~early_disjuncts:true ~standard ~scored
      ~target_tables:[ "T" ] ()
  in
  Alcotest.(check bool) "plain QualTable keeps base" true
    (List.for_all (fun m -> not (Matching.Schema_match.is_contextual m)) qual);
  let clio =
    Ctxmatch.Select_matches.clio_qual_table ~omega:0.3 ~early_disjuncts:true ~standard ~scored
      ~target_tables:[ "T" ] ()
  in
  Alcotest.(check int) "group matches" 2 (List.length clio);
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      Alcotest.(check bool) "contextual" true (Matching.Schema_match.is_contextual m))
    clio;
  let t1 = List.find (fun (m : Matching.Schema_match.t) -> m.tgt_attr = "t1") clio in
  Alcotest.(check string) "t1 from va" "va" t1.Matching.Schema_match.src_owner

let suite =
  [
    Alcotest.test_case "multi_table best per attr" `Quick test_multi_table_picks_best_per_attr;
    Alcotest.test_case "qual_table keeps base" `Quick test_qual_table_no_view_improvement;
    Alcotest.test_case "qual_table selects view" `Quick test_qual_table_view_selected;
    Alcotest.test_case "early single vs late all" `Quick test_qual_table_early_picks_single_best;
    Alcotest.test_case "strongest source wins" `Quick test_qual_table_strongest_source_wins;
    Alcotest.test_case "omega boundary is inclusive" `Quick test_omega_boundary_exact;
    Alcotest.test_case "tau boundary is inclusive" `Quick test_tau_boundary_exact;
    Alcotest.test_case "source tie-break deterministic" `Quick test_source_tie_break_deterministic;
    Alcotest.test_case "nan never displaces a real match" `Quick test_nan_never_displaces_real;
    Alcotest.test_case "improvement tie order-independent" `Quick
      test_improvement_tie_order_independent;
    Alcotest.test_case "joinable family key" `Quick test_joinable_family_key_found;
    Alcotest.test_case "joinable rejects partition" `Quick test_joinable_family_key_rejects_partition;
    Alcotest.test_case "clio_qual_table group" `Quick test_clio_qual_table_selects_group;
  ]
