(* Differential oracle for the parallel runtime: ContextMatch with
   jobs > 1 must produce results *identical* to the sequential path —
   same matches, same bit-for-bit confidences, same families, same
   scored views — for every workload, style and seed.  Floats are
   fingerprinted with %h (hex), so any drift in accumulation order
   shows up, not just drift above an epsilon. *)

let fp_match (m : Matching.Schema_match.t) =
  Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
    m.tgt_attr
    (Relational.Condition.to_string m.condition)
    m.confidence

let fp_view v =
  Printf.sprintf "%s?%s" (Relational.View.name v)
    (Relational.Condition.to_string (Relational.View.condition v))

let fp_family (f : Relational.View.family) =
  Printf.sprintf "%s|%s|%h|[%s]"
    (Relational.Table.name f.table)
    f.attribute f.quality
    (String.concat ";" (List.map fp_view f.views))

let fp_scored (sv : Ctxmatch.Select_matches.scored_view) =
  Printf.sprintf "%s|%s|[%s]" (fp_view sv.view) sv.family_attr
    (String.concat ";" (List.map fp_match sv.view_matches))

let fingerprint (r : Ctxmatch.Context_match.result) =
  String.concat "\n"
    (("matches:" :: List.map fp_match r.matches)
    @ ("standard:" :: List.map fp_match r.standard)
    @ ("families:" :: List.map fp_family r.families)
    @ (Printf.sprintf "views:%d" r.candidate_view_count :: List.map fp_scored r.scored))

(* jobs values exercised against the sequential oracle; recommended
   collapses to one of the fixed values on small hosts, sort_uniq keeps
   the run count stable. *)
let par_jobs =
  List.sort_uniq compare (2 :: 4 :: [ Domain.recommended_domain_count () ])
  |> List.filter (fun j -> j > 1)

let seeds = [ 1; 2; 3; 5; 8 ]

let check_equiv ~what ~run =
  let oracle = fingerprint (run ~jobs:1) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%s jobs=%d = sequential" what jobs)
        oracle
        (fingerprint (run ~jobs)))
    par_jobs

let retail_run ~style ~infer_kind ~seed ~jobs =
  let params = { Workload.Retail.default_params with rows = 120; target_rows = 60; seed } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params style in
  let config =
    Ctxmatch.Config.with_jobs (Ctxmatch.Config.with_seed Ctxmatch.Config.default seed) jobs
  in
  let infer = Ctxmatch.Context_match.infer_of infer_kind ~target in
  Ctxmatch.Context_match.run ~config ~infer ~source ~target ()

let grades_run ~seed ~jobs =
  let params = { Workload.Grades.default_params with students = 60; seed } in
  let source = Workload.Grades.narrow params in
  let target = Workload.Grades.wide params in
  let config =
    {
      (Ctxmatch.Config.with_seed Ctxmatch.Config.default seed) with
      tau = 0.4;
      omega = 0.05;
      early_disjuncts = false;
      select = Ctxmatch.Config.Clio_qual_table;
      jobs;
    }
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  Ctxmatch.Context_match.run ~config ~infer ~source ~target ()

let test_retail_equivalence style () =
  List.iter
    (fun seed ->
      check_equiv
        ~what:(Printf.sprintf "retail/%s seed=%d" (Workload.Retail.style_name style) seed)
        ~run:(fun ~jobs -> retail_run ~style ~infer_kind:`Src_class ~seed ~jobs))
    seeds

let test_retail_naive_equivalence () =
  (* NaiveInfer enumerates far more candidate views (the profile
     cache's best case) and drives the other select policy paths. *)
  List.iter
    (fun seed ->
      check_equiv
        ~what:(Printf.sprintf "retail/naive seed=%d" seed)
        ~run:(fun ~jobs -> retail_run ~style:Workload.Retail.Ryan_eyers ~infer_kind:`Naive ~seed ~jobs))
    [ 3; 11 ]

let test_grades_equivalence () =
  List.iter
    (fun seed -> check_equiv ~what:(Printf.sprintf "grades seed=%d" seed) ~run:(grades_run ~seed))
    seeds

(* Same configuration run twice must be structurally identical — on
   every jobs value, including the parallel ones where scheduling
   differs between the two runs. *)
let test_determinism_regression () =
  List.iter
    (fun jobs ->
      let a =
        fingerprint (retail_run ~style:Workload.Retail.Aaron_day ~infer_kind:`Src_class ~seed:42 ~jobs)
      in
      let b =
        fingerprint (retail_run ~style:Workload.Retail.Aaron_day ~infer_kind:`Src_class ~seed:42 ~jobs)
      in
      Alcotest.(check string) (Printf.sprintf "retail twice, jobs=%d" jobs) a b;
      let g1 = fingerprint (grades_run ~seed:42 ~jobs) in
      let g2 = fingerprint (grades_run ~seed:42 ~jobs) in
      Alcotest.(check string) (Printf.sprintf "grades twice, jobs=%d" jobs) g1 g2)
    (1 :: par_jobs)

let suite =
  List.map
    (fun style ->
      Alcotest.test_case
        (Printf.sprintf "retail %s par = seq" (Workload.Retail.style_name style))
        `Slow (test_retail_equivalence style))
    Workload.Retail.all_styles
  @ [
      Alcotest.test_case "retail naive par = seq" `Slow test_retail_naive_equivalence;
      Alcotest.test_case "grades par = seq" `Slow test_grades_equivalence;
      Alcotest.test_case "same run twice is identical" `Slow test_determinism_regression;
    ]
