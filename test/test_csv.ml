open Relational

let test_parse_simple () =
  Alcotest.(check (list (list string))) "basic"
    [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv_io.parse_string "a,b\n1,2\n")

let test_parse_no_trailing_newline () =
  Alcotest.(check (list (list string))) "no newline" [ [ "a"; "b" ] ] (Csv_io.parse_string "a,b")

let test_parse_quoted () =
  Alcotest.(check (list (list string))) "quoted comma"
    [ [ "a,b"; "c" ] ]
    (Csv_io.parse_string "\"a,b\",c\n");
  Alcotest.(check (list (list string))) "doubled quote"
    [ [ "say \"hi\"" ] ]
    (Csv_io.parse_string "\"say \"\"hi\"\"\"\n");
  Alcotest.(check (list (list string))) "embedded newline"
    [ [ "line1\nline2"; "x" ] ]
    (Csv_io.parse_string "\"line1\nline2\",x\n")

let test_parse_crlf () =
  Alcotest.(check (list (list string))) "crlf"
    [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv_io.parse_string "a,b\r\nc,d\r\n")

let test_parse_empty_fields () =
  Alcotest.(check (list (list string))) "empties" [ [ ""; "x"; "" ] ] (Csv_io.parse_string ",x,\n")

let test_parse_unterminated_quote () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Csv_io.parse_string "\"oops\n");
       false
     with Csv_io.Parse_error _ -> true)

let test_separator () =
  Alcotest.(check (list (list string))) "semicolon"
    [ [ "a"; "b" ] ]
    (Csv_io.parse_string ~separator:';' "a;b\n")

let test_roundtrip () =
  let records = [ [ "a,b"; "plain" ]; [ "with \"q\""; "nl\nline" ] ] in
  Alcotest.(check (list (list string))) "roundtrip" records
    (Csv_io.parse_string (Csv_io.to_string records))

let test_table_of_csv_types () =
  let t = Csv_io.table_of_csv ~name:"t" "id,price,name,flag\n1,2.5,ann,true\n2,3.0,bob,false\n" in
  let schema = Table.schema t in
  Alcotest.(check bool) "id int" true ((Schema.attribute schema "id").Attribute.ty = Value.Tint);
  Alcotest.(check bool) "price float" true
    ((Schema.attribute schema "price").Attribute.ty = Value.Tfloat);
  Alcotest.(check bool) "name string" true
    ((Schema.attribute schema "name").Attribute.ty = Value.Tstring);
  Alcotest.(check bool) "flag bool" true
    ((Schema.attribute schema "flag").Attribute.ty = Value.Tbool);
  Alcotest.(check bool) "cell" true (Value.equal (Table.cell t 1 "id") (Value.Int 2))

let test_table_of_csv_empty_as_null () =
  let t = Csv_io.table_of_csv ~name:"t" "a,b\n1,\n,2\n" in
  Alcotest.(check bool) "null" true (Value.is_null (Table.cell t 0 "b"));
  Alcotest.(check bool) "null 2" true (Value.is_null (Table.cell t 1 "a"))

let test_table_of_csv_ragged_rows () =
  let csv = "a,b,c\n1,2\n4,5,6\n1,2,3,4\n" in
  (* Strict: the first ragged row aborts ingestion with its line number *)
  Alcotest.(check bool) "strict raises at line 2" true
    (try
       ignore (Csv_io.table_of_csv ~name:"t" csv);
       false
     with Csv_io.Parse_error { line = 2; _ } -> true);
  (* Lenient: ragged rows are quarantined with diagnostics, the
     well-formed row survives *)
  let t, issues = Csv_io.table_of_csv_report ~mode:Csv_io.Lenient ~name:"t" csv in
  Alcotest.(check int) "arity kept" 3 (Table.arity t);
  Alcotest.(check int) "one surviving row" 1 (Array.length (Table.rows t));
  Alcotest.(check bool) "survivor intact" true (Value.equal (Table.cell t 0 "c") (Value.Int 6));
  Alcotest.(check int) "two quarantined rows" 2 (List.length issues);
  Alcotest.(check (list (option int))) "line numbers" [ Some 2; Some 4 ]
    (List.map (fun (i : Robust.Error.t) -> i.Robust.Error.line) issues)

let test_unterminated_quote_line_numbers () =
  (* the reported line is where the quote opened, and CRLF inside the
     quoted field counts as one line *)
  let check_line name input expected =
    Alcotest.(check int) name expected
      (try
         ignore (Csv_io.parse_string input);
         -1
       with Csv_io.Parse_error { line; _ } -> line)
  in
  check_line "opens line 1" "\"oops\n" 1;
  check_line "opens line 3" "a,b\nc,d\ne,\"oops\n" 3;
  check_line "crlf before quote" "a,b\r\nc,d\r\ne,\"oops" 3;
  check_line "crlf inside quote counts once" "a\r\n\"x\r\ny\r\nz" 2

let test_lone_cr_separators () =
  Alcotest.(check (list (list string))) "lone cr"
    [ [ "a"; "b" ]; [ "c"; "d" ]; [ "e"; "f" ] ]
    (Csv_io.parse_string "a,b\rc,d\re,f\r");
  Alcotest.(check (list (list string))) "cr inside quotes preserved"
    [ [ "x\ry" ] ]
    (Csv_io.parse_string "\"x\ry\"")

let test_bom_header () =
  let t = Csv_io.table_of_csv ~name:"t" "\xEF\xBB\xBFid,name\n1,ann\n" in
  let schema = Table.schema t in
  Alcotest.(check bool) "bom stripped from header" true
    ((Schema.attribute schema "id").Attribute.ty = Value.Tint);
  Alcotest.(check (list (list string))) "bom only before header"
    [ [ "a" ]; [ "b" ] ]
    (Csv_io.parse_string "\xEF\xBB\xBFa\nb\n")

let test_no_phantom_trailing_row () =
  Alcotest.(check (list (list string))) "trailing newline" [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv_io.parse_string "a,b\n1,2\n");
  Alcotest.(check (list (list string))) "trailing blank line" [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv_io.parse_string "a,b\n1,2\n\n");
  Alcotest.(check (list (list string))) "interior blank line" [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv_io.parse_string "a,b\n\n1,2\n");
  (* a quoted empty field is a real single-field record, not a blank line *)
  Alcotest.(check (list (list string))) "quoted empty is a record" [ [ "a" ]; [ "" ] ]
    (Csv_io.parse_string "a\n\"\"\n")

let test_numeric_inference_edge_cases () =
  let ty csv col =
    let t = Csv_io.table_of_csv ~name:"t" csv in
    (Schema.attribute (Table.schema t) col).Attribute.ty
  in
  (* nan / inf / overflow-to-inf literals parse via float_of_string but
     are not plain decimal data — they must stay strings *)
  Alcotest.(check bool) "nan is string" true (ty "x\nnan\n" "x" = Value.Tstring);
  Alcotest.(check bool) "inf is string" true (ty "x\ninf\n" "x" = Value.Tstring);
  Alcotest.(check bool) "1e999 is string" true (ty "x\n1e999\n" "x" = Value.Tstring);
  (* hex / underscore literals parse via int_of_string but are ids, not
     numbers *)
  Alcotest.(check bool) "0x1A is string" true (ty "x\n0x1A\n" "x" = Value.Tstring);
  Alcotest.(check bool) "1_000 is string" true (ty "x\n1_000\n" "x" = Value.Tstring);
  (* plain decimals still infer *)
  Alcotest.(check bool) "-12 is int" true (ty "x\n-12\n7\n" "x" = Value.Tint);
  Alcotest.(check bool) "2.5e3 is float" true (ty "x\n2.5e3\n.5\n" "x" = Value.Tfloat)

let test_table_roundtrip () =
  let csv = "id,name\n1,ann\n2,bob\n" in
  let t = Csv_io.table_of_csv ~name:"t" csv in
  Alcotest.(check string) "roundtrip" csv (Csv_io.table_to_csv t)

let test_file_roundtrip () =
  let path = Filename.temp_file "ctxmatch_test" ".csv" in
  let records = [ [ "x"; "y" ]; [ "1"; "2" ] ] in
  Csv_io.write_file path records;
  let back = Csv_io.parse_file path in
  Sys.remove path;
  Alcotest.(check (list (list string))) "file roundtrip" records back

(* Quoted-field corners audited for the persistent-store PR: the parser
   already handled all three, these pin the behaviour down. *)
let test_crlf_inside_quotes () =
  (* a CRLF inside quotes is field content (RFC 4180), preserved
     verbatim — not a record boundary, not normalized to \n *)
  Alcotest.(check (list (list string))) "crlf preserved in field"
    [ [ "a\r\nb"; "c" ]; [ "d"; "e" ] ]
    (Csv_io.parse_string "\"a\r\nb\",c\r\nd,e\r\n");
  (* and the line accounting stays aligned for errors after it *)
  Alcotest.(check bool) "later error on the right line" true
    (try
       ignore (Csv_io.parse_string "\"a\r\nb\",c\r\n\"oops\n");
       false
     with Csv_io.Parse_error { line = 3; _ } -> true)

let test_closing_quote_at_eof () =
  (* closing quote is the last byte of input: the record must flush *)
  Alcotest.(check (list (list string))) "quote at eof"
    [ [ "a"; "b" ] ]
    (Csv_io.parse_string "a,\"b\"");
  (* even when the quoted field is empty *)
  Alcotest.(check (list (list string))) "empty quoted field at eof"
    [ [ "a"; "" ] ]
    (Csv_io.parse_string "a,\"\"");
  (* a record that is just one empty quoted field still counts *)
  Alcotest.(check (list (list string))) "lone empty quoted field"
    [ [ "x" ]; [ "" ] ]
    (Csv_io.parse_string "x\n\"\"")

let test_empty_trailing_field () =
  (* separator immediately before the record end yields an empty last
     field, with \n, \r\n and at eof *)
  Alcotest.(check (list (list string))) "lf" [ [ "a"; "b"; "" ] ] (Csv_io.parse_string "a,b,\n");
  Alcotest.(check (list (list string))) "crlf"
    [ [ "a"; "b"; "" ] ]
    (Csv_io.parse_string "a,b,\r\n");
  Alcotest.(check (list (list string))) "eof" [ [ "a"; "b"; "" ] ] (Csv_io.parse_string "a,b,");
  (* lenient ingestion sees the same shape: no quarantines, the CRLF
     cell intact, the empty trailing field ingested as null *)
  let t, issues = Csv_io.table_of_csv_report ~mode:Csv_io.Lenient ~name:"t" "a,b\n\"x\r\ny\",\n" in
  Alcotest.(check int) "no issues" 0 (List.length issues);
  Alcotest.(check bool) "crlf cell intact" true
    (Value.equal (Table.cell t 0 "a") (Value.String "x\r\ny"));
  Alcotest.(check bool) "empty trailing field is null" true (Value.is_null (Table.cell t 0 "b"))

let qcheck_roundtrip =
  let field = QCheck.string_gen_of_size (QCheck.Gen.int_range 0 8) QCheck.Gen.printable in
  let record = QCheck.list_of_size (QCheck.Gen.int_range 1 5) field in
  let records = QCheck.list_of_size (QCheck.Gen.int_range 1 8) record in
  QCheck.Test.make ~name:"csv roundtrip arbitrary printable" ~count:200 records (fun rs ->
      (* the writer cannot represent a record that is a single empty
         field (it prints as an empty line, parsed as a record
         boundary); skip those *)
      let representable = List.for_all (fun r -> r <> [ "" ]) rs in
      QCheck.assume representable;
      Csv_io.parse_string (Csv_io.to_string rs) = rs)

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "no trailing newline" `Quick test_parse_no_trailing_newline;
    Alcotest.test_case "quoted fields" `Quick test_parse_quoted;
    Alcotest.test_case "crlf" `Quick test_parse_crlf;
    Alcotest.test_case "empty fields" `Quick test_parse_empty_fields;
    Alcotest.test_case "unterminated quote" `Quick test_parse_unterminated_quote;
    Alcotest.test_case "custom separator" `Quick test_separator;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "type inference" `Quick test_table_of_csv_types;
    Alcotest.test_case "empty as null" `Quick test_table_of_csv_empty_as_null;
    Alcotest.test_case "ragged rows" `Quick test_table_of_csv_ragged_rows;
    Alcotest.test_case "unterminated quote line numbers" `Quick
      test_unterminated_quote_line_numbers;
    Alcotest.test_case "lone cr separators" `Quick test_lone_cr_separators;
    Alcotest.test_case "bom header" `Quick test_bom_header;
    Alcotest.test_case "no phantom trailing row" `Quick test_no_phantom_trailing_row;
    Alcotest.test_case "numeric inference edge cases" `Quick
      test_numeric_inference_edge_cases;
    Alcotest.test_case "crlf inside quotes" `Quick test_crlf_inside_quotes;
    Alcotest.test_case "closing quote at eof" `Quick test_closing_quote_at_eof;
    Alcotest.test_case "empty trailing field" `Quick test_empty_trailing_field;
    Alcotest.test_case "table roundtrip" `Quick test_table_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
