(* Incremental-maintenance suite.

   The subsystem's central claim (DESIGN.md, "Incremental maintenance")
   is that delta-maintained state is indistinguishable — bit for bit —
   from throwing everything away and recomputing over the mutated
   table.  The tests hold every layer to it: the profile/multiset
   algebra against cold scans, the patched inverted index against cold
   builds, patched prepared targets against cold preparation through
   full ContextMatch runs (jobs x kernel x warm/cold store), and the
   serve daemon's update-target against re-registering from scratch.
   The rest covers what the maintenance layer additionally owes its
   callers: rebuild fallbacks that preserve the identity, persisted
   delta chains that survive flush/reopen and fold away under
   compaction, crash damage that quarantines without wrong answers,
   and injected faults that leave the previous generation intact. *)

open Relational

let in_temp_dir f =
  let dir = Filename.temp_file "ctxdelta" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let check_profile_eq msg a b =
  Alcotest.(check int) (msg ^ ": q") (Textsim.Profile.q a) (Textsim.Profile.q b);
  Alcotest.(check int) (msg ^ ": total") (Textsim.Profile.total a) (Textsim.Profile.total b);
  Alcotest.(check bool)
    (msg ^ ": counts identical")
    true
    (Textsim.Profile.counts a = Textsim.Profile.counts b)

(* --- the profile patch algebra ----------------------------------------- *)

(* Adding then removing strings lands, count bag for count bag, on the
   profile a cold scan of the surviving strings builds. *)
let test_profile_patch_inverts () =
  let p = Textsim.Profile.of_strings [ "alpha"; "beta"; "gamma delta" ] in
  Textsim.Profile.patch p ~add:[ "epsilon"; "beta" ] ~remove:[ "alpha" ];
  Textsim.Profile.patch p ~add:[] ~remove:[ "gamma delta" ];
  let cold = Textsim.Profile.of_strings [ "beta"; "epsilon"; "beta" ] in
  check_profile_eq "patched = cold" p cold;
  (* and the scores riding on the bag are bitwise equal *)
  let cand = Textsim.Profile.of_strings [ "beta epsilon" ] in
  Alcotest.(check bool) "cosine bit-identical" true
    (Textsim.Profile.cosine cand p = Textsim.Profile.cosine cand cold)

let test_profile_patch_absent_raises () =
  let p = Textsim.Profile.of_strings [ "alpha" ] in
  (match Textsim.Profile.patch p ~add:[] ~remove:[ "unseen" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "removing an absent string must raise");
  (* removing down to empty is fine and exact *)
  let p = Textsim.Profile.of_strings [ "alpha" ] in
  Textsim.Profile.patch p ~add:[] ~remove:[ "alpha" ];
  Alcotest.(check int) "emptied profile" 0 (Textsim.Profile.total p)

(* --- patched inverted index vs cold rebuild ----------------------------- *)

let index_strings = [| "alpha beta"; "beta gamma"; "delta alpha"; "epsilon" |]

let check_index_identity msg patched cold =
  let candidates =
    Array.to_list (Array.map (fun s -> Textsim.Profile.of_strings [ s ]) index_strings)
    @ [ Textsim.Profile.of_strings [ "alpha beta gamma" ]; Textsim.Profile.of_strings [] ]
  in
  List.iteri
    (fun i cand ->
      let sp, tp = Textsim.Gram_index.scores patched cand in
      let sc, tc = Textsim.Gram_index.scores cold cand in
      Alcotest.(check bool)
        (Printf.sprintf "%s: scores bitwise (cand %d)" msg i)
        true (sp = sc);
      Alcotest.(check int) (Printf.sprintf "%s: touched (cand %d)" msg i) tc tp;
      Alcotest.(check bool)
        (Printf.sprintf "%s: upper bound bitwise (cand %d)" msg i)
        true
        (Textsim.Gram_index.cosine_upper_bound patched cand
        = Textsim.Gram_index.cosine_upper_bound cold cand);
      List.iter
        (fun tau ->
          let rp, _ = Textsim.Gram_index.top_k patched cand ~k:3 ~tau in
          let rc, _ = Textsim.Gram_index.top_k cold cand ~k:3 ~tau in
          Alcotest.(check bool)
            (Printf.sprintf "%s: top_k bitwise (cand %d, tau %.2f)" msg i tau)
            true (rp = rc))
        [ 0.0; 0.3; 0.9 ])
    candidates

let test_index_patch_identity () =
  let targets = Array.map (fun s -> Textsim.Profile.of_strings [ s ]) index_strings in
  let idx = Textsim.Gram_index.build targets in
  let before = Textsim.Gram_index.scores idx (Textsim.Profile.of_strings [ "alpha beta" ]) in
  (* replacement grams drawn from existing strings: strictly in-vocab *)
  let repl1 = Textsim.Profile.of_strings [ "alpha beta"; "delta alpha" ] in
  let repl3 = Textsim.Profile.of_strings [ "beta gamma"; "beta gamma" ] in
  (match Textsim.Gram_index.patch idx [ (1, repl1); (3, repl3) ] with
  | None -> Alcotest.fail "in-vocab patch returned None"
  | Some patched ->
    let new_targets = Array.copy targets in
    new_targets.(1) <- Textsim.Profile.of_strings [ "alpha beta"; "delta alpha" ];
    new_targets.(3) <- Textsim.Profile.of_strings [ "beta gamma"; "beta gamma" ];
    let cold = Textsim.Gram_index.build new_targets in
    check_index_identity "mixed patch" patched cold);
  (* the original index is untouched by patching *)
  let after = Textsim.Gram_index.scores idx (Textsim.Profile.of_strings [ "alpha beta" ]) in
  Alcotest.(check bool) "original index untouched" true (before = after)

(* Delete-heavy: a slot emptied out leaves dangling dictionary grams
   whose postings are empty — they must stay score-neutral. *)
let test_index_patch_emptied_slot () =
  let targets = Array.map (fun s -> Textsim.Profile.of_strings [ s ]) index_strings in
  let idx = Textsim.Gram_index.build targets in
  match Textsim.Gram_index.patch idx [ (0, Textsim.Profile.of_strings []) ] with
  | None -> Alcotest.fail "emptying patch returned None"
  | Some patched ->
    let new_targets = Array.copy targets in
    new_targets.(0) <- Textsim.Profile.of_strings [] ;
    (* the cold build's dictionary is smaller (slot 0's unique grams are
       gone entirely) — scores must be bitwise equal regardless *)
    let cold = Textsim.Gram_index.build new_targets in
    check_index_identity "emptied slot" patched cold

let test_index_patch_out_of_vocab () =
  let targets = Array.map (fun s -> Textsim.Profile.of_strings [ s ]) index_strings in
  let idx = Textsim.Gram_index.build targets in
  Alcotest.(check bool) "unseen grams force a rebuild" true
    (Textsim.Gram_index.patch idx [ (0, Textsim.Profile.of_strings [ "zzqqxxjj" ]) ] = None)

(* --- the delta value itself --------------------------------------------- *)

let syn_schema =
  Schema.make "S"
    [
      Attribute.int "id";
      Attribute.string "name";
      Attribute.string "cat";
      Attribute.float "price";
    ]

let syn_row id name cat price =
  [|
    Value.Int id;
    (match name with Some s -> Value.String s | None -> Value.Null);
    (match cat with Some s -> Value.String s | None -> Value.Null);
    (match price with Some f -> Value.Float f | None -> Value.Null);
  |]

let syn_table () =
  Table.of_rows syn_schema
    [|
      syn_row 1 (Some "red apple") (Some "fruit") (Some 1.5);
      syn_row 2 (Some "green apple") (Some "fruit") (Some 2.0);
      syn_row 3 (Some "carrot") (Some "veg") (Some 0.5);
      syn_row 4 None (Some "veg") None;
      syn_row 5 (Some "red apple") (Some "fruit") (Some 1.5);
      syn_row 6 (Some "plum") None (Some 3.25);
    |]

let test_core_validate_apply () =
  let tbl = syn_table () in
  let ok = Delta.make ~table:"S" ~appends:[| syn_row 7 (Some "pear") (Some "fruit") (Some 1.0) |]
      ~deletes:[| 2; 0; 2 |]
  in
  (match Delta.validate ok tbl with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid delta rejected: %s" m);
  Alcotest.(check bool) "deletes deduplicated and sorted" true (Delta.deletes ok = [| 0; 2 |]);
  Alcotest.(check int) "size counts appends + deletes" 3 (Delta.size ok);
  let deleted = Delta.deleted_rows ok tbl in
  Alcotest.(check int) "deleted snapshot arity" 2 (Array.length deleted);
  Alcotest.(check bool) "deleted snapshot rows" true
    (deleted.(0) = (Table.rows tbl).(0) && deleted.(1) = (Table.rows tbl).(2));
  let applied = Delta.apply ok tbl in
  Alcotest.(check int) "row count" 5 (Table.row_count applied);
  Alcotest.(check bool) "survivors keep order, appends go last" true
    (Table.rows applied
    = [|
        (Table.rows tbl).(1);
        (Table.rows tbl).(3);
        (Table.rows tbl).(4);
        (Table.rows tbl).(5);
        syn_row 7 (Some "pear") (Some "fruit") (Some 1.0);
      |]);
  Alcotest.(check bool) "churn" true (abs_float (Delta.churn ok tbl -. 0.5) < 1e-9);
  (* arity mismatch *)
  (match Delta.validate (Delta.make ~table:"S" ~appends:[| [| Value.Int 1 |] |] ~deletes:[||]) tbl with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "arity mismatch accepted");
  (* out-of-bounds delete *)
  match Delta.validate (Delta.make ~table:"S" ~appends:[||] ~deletes:[| 6 |]) tbl with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-bounds delete accepted"

(* --- maintained per-table state vs cold scans ---------------------------- *)

let check_profiles_cold msg live cold_table =
  let cold = Delta.Profiles.create ~cond_attrs:[ "cat" ] cold_table in
  List.iter
    (fun attr ->
      (match (Delta.Profiles.profile live attr, Delta.Profiles.profile cold attr) with
      | Some a, Some b -> check_profile_eq (Printf.sprintf "%s: profile %s" msg attr) a b
      | None, None -> ()
      | _ -> Alcotest.failf "%s: profile presence differs for %s" msg attr);
      (match (Delta.Profiles.distinct live attr, Delta.Profiles.distinct cold attr) with
      | Some a, Some b ->
        Alcotest.(check (list string)) (Printf.sprintf "%s: distinct %s" msg attr) b a
      | None, None -> ()
      | _ -> Alcotest.failf "%s: distinct presence differs for %s" msg attr);
      (match (Delta.Profiles.words live attr, Delta.Profiles.words cold attr) with
      | Some a, Some b ->
        Alcotest.(check (list string)) (Printf.sprintf "%s: words %s" msg attr) b a
      | None, None -> ()
      | _ -> Alcotest.failf "%s: words presence differs for %s" msg attr);
      match (Delta.Profiles.summary live attr, Delta.Profiles.summary cold attr) with
      | Some a, Some b ->
        Alcotest.(check bool) (Printf.sprintf "%s: summary %s bit-identical" msg attr) true (a = b)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: summary presence differs for %s" msg attr)
    [ "id"; "name"; "cat"; "price" ];
  (* partition profiles, for every condition value in the cold table *)
  List.iter
    (fun v ->
      List.iter
        (fun attr ->
          match
            ( Delta.Profiles.partition_profile live ~cond_attr:"cat" ~value:v ~attr,
              Delta.Profiles.partition_profile cold ~cond_attr:"cat" ~value:v ~attr )
          with
          | Some a, Some b ->
            check_profile_eq
              (Printf.sprintf "%s: partition %s/%s" msg (Value.to_string v) attr)
              a b
          | None, None -> ()
          | Some a, None ->
            (* a value whose last live row died keeps an emptied
               maintained group; it must describe nothing *)
            Alcotest.(check int)
              (Printf.sprintf "%s: dead partition %s/%s emptied" msg (Value.to_string v) attr)
              0 (Textsim.Profile.total a)
          | None, Some _ ->
            Alcotest.failf "%s: cold has a partition the live state lost" msg)
        [ "name"; "cat" ])
    (Table.distinct_values cold_table "cat")

let test_profiles_match_cold () =
  let live = Delta.Profiles.create ~cond_attrs:[ "cat" ] (syn_table ()) in
  let d1 =
    Delta.make ~table:"S"
      ~appends:
        [|
          syn_row 7 (Some "yellow plum") (Some "fruit") (Some 3.25);
          syn_row 8 None None None;
        |]
      ~deletes:[| 0; 3 |]
  in
  Delta.Profiles.apply live d1;
  check_profiles_cold "after delta 1" live (Delta.Profiles.table live);
  (* a second, delete-heavy delta over the patched state *)
  let d2 = Delta.make ~table:"S" ~appends:[| syn_row 9 (Some "carrot") (Some "veg") (Some 0.5) |]
      ~deletes:[| 0; 1; 2; 4 |]
  in
  Delta.Profiles.apply live d2;
  check_profiles_cold "after delta 2" live (Delta.Profiles.table live);
  Alcotest.(check string) "digest tracks the current rows"
    (Store.table_digest (Delta.Profiles.table live))
    (Delta.Profiles.digest live)

(* A condition value whose every row is deleted: the maintained group
   survives (emptied), the cold partition has no such group, and cache
   seeding must skip it rather than seed a phantom subset. *)
let test_profiles_delete_only_value () =
  let live = Delta.Profiles.create ~cond_attrs:[ "cat" ] (syn_table ()) in
  (* rows 2 and 8 (post-d1 indexing) are the only "veg" rows *)
  let d = Delta.make ~table:"S" ~appends:[||] ~deletes:[| 2; 3 |] in
  Delta.Profiles.apply live d;
  (match Delta.Profiles.partition_profile live ~cond_attr:"cat" ~value:(Value.String "veg") ~attr:"name" with
  | Some p -> Alcotest.(check int) "emptied group total" 0 (Textsim.Profile.total p)
  | None -> ());
  let cache = Matching.Profile_cache.create () in
  Delta.Profiles.seed live cache;
  let part =
    Matching.Profile_cache.partition cache ~table:(Delta.Profiles.table live) ~cond_attr:"cat"
  in
  Alcotest.(check bool) "dead value has no cold partition group" true
    (Matching.Profile_cache.partition_indices part (Value.String "veg") = None);
  Alcotest.(check bool) "live values keep their groups" true
    (Matching.Profile_cache.partition_indices part (Value.String "fruit") <> None)

(* --- Profile_cache partition edge cases ---------------------------------- *)

let test_cache_partition_edges () =
  let cache = Matching.Profile_cache.create () in
  (* all-null condition column: no groups at all *)
  let nulls =
    Table.of_rows syn_schema
      (Array.init 10 (fun i -> syn_row i (Some (Printf.sprintf "v%d" i)) None (Some 1.0)))
  in
  let part = Matching.Profile_cache.partition cache ~table:nulls ~cond_attr:"cat" in
  Alcotest.(check int) "all-null condition: no groups" 0 (Array.length part.Matching.Profile_cache.part_values);
  Alcotest.(check bool) "all-null condition: lookups miss" true
    (Matching.Profile_cache.partition_indices part (Value.String "x") = None);
  (* empty table *)
  let empty = Table.of_rows (Schema.make "E" [ Attribute.string "a"; Attribute.string "b" ]) [||] in
  let part = Matching.Profile_cache.partition cache ~table:empty ~cond_attr:"a" in
  Alcotest.(check int) "empty table: no groups" 0 (Array.length part.Matching.Profile_cache.part_values);
  (* duplicate condition values straddling chunk boundaries: 257 rows
     cycling through 3 values, so every chunking cut lands inside some
     value's run.  A fresh table name — partitions memoize by
     (table, cond_attr). *)
  let n = 257 in
  let cats = [| "fruit"; "veg"; "dairy" |] in
  let big_schema =
    Schema.make "Big"
      [
        Attribute.int "id";
        Attribute.string "name";
        Attribute.string "cat";
        Attribute.float "price";
      ]
  in
  let big =
    Table.of_rows big_schema
      (Array.init n (fun i ->
           syn_row i (Some (Printf.sprintf "item %d" i)) (Some cats.(i mod 3)) (Some 1.0)))
  in
  let part = Matching.Profile_cache.partition cache ~table:big ~cond_attr:"cat" in
  Alcotest.(check int) "three groups" 3 (Array.length part.Matching.Profile_cache.part_values);
  Array.iteri
    (fun vi v ->
      match Matching.Profile_cache.partition_indices part v with
      | None -> Alcotest.failf "group %d missing" vi
      | Some indices ->
        let want =
          Array.of_list
            (List.filter (fun i -> Value.compare (Table.cell big i "cat") v = 0)
               (List.init n Fun.id))
        in
        Alcotest.(check bool)
          (Printf.sprintf "group %s complete and ascending" (Value.to_string v))
          true (indices = want))
    part.Matching.Profile_cache.part_values

(* --- end-to-end differential: patched prepared target vs cold ----------- *)

let retail_params =
  { Workload.Retail.default_params with rows = 120; target_rows = 60; seed = 42 }

let source_db = Workload.Retail.source retail_params
let target_db = Workload.Retail.target retail_params Workload.Retail.Ryan_eyers

let match_strings ?(jobs = 1) ?(kernel = true) ?store ?prepared ~target () =
  let config = { Ctxmatch.Config.default with jobs; kernel } in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let r = Ctxmatch.Context_match.run ~config ?store ?prepared ~infer ~source:source_db ~target () in
  ( List.map Matching.Schema_match.to_string r.Ctxmatch.Context_match.matches,
    List.map Robust.Error.to_string r.Ctxmatch.Context_match.issues )

(* Copies of existing rows keep every gram in the frozen vocabulary, so
   the delta stays on the patch path. *)
let copy_rows tbl indices = Array.map (fun i -> (Table.rows tbl).(i)) indices

let expect_patched m d =
  match Delta.Maintain.update m d with
  | Ok Delta.Maintain.Patched -> ()
  | Ok (Delta.Maintain.Rebuilt reason) -> Alcotest.failf "expected a patch, rebuilt: %s" reason
  | Error e -> Alcotest.failf "update failed: %s" e

let run_maintain_differential ~kernel ~store_dir () =
  let store = Option.map Store.open_dir store_dir in
  let prepared = Matching.Standard_match.prepare_target ?store ~kernel ~target:target_db () in
  (* churn limit above both deltas, so even the delete-heavy one takes
     the patch path under test *)
  let m = Delta.Maintain.create ?store ~kernel ~churn:0.5 ~target:target_db ~prepared () in
  let book = Database.table target_db "Book" in
  expect_patched m
    (Delta.make ~table:"Book" ~appends:(copy_rows book [| 0; 2 |]) ~deletes:[| 1; 3; 5 |]);
  let music = Database.table (Delta.Maintain.target m) "Music" in
  expect_patched m
    (Delta.make ~table:"Music"
       ~appends:(copy_rows music [| 4 |])
       ~deletes:(Array.init 18 (fun i -> i * 3)));
  Alcotest.(check int) "two generations" 2 (Delta.Maintain.generation m);
  let mutated = Delta.Maintain.target m in
  let pure_matches, pure_issues = match_strings ~kernel ~target:mutated () in
  Alcotest.(check bool) "oracle found matches" true (pure_matches <> []);
  List.iter
    (fun jobs ->
      let live_matches, live_issues =
        match_strings ~jobs ~kernel ?store ~prepared:(Delta.Maintain.prepared m) ~target:mutated ()
      in
      Alcotest.(check (list string))
        (Printf.sprintf "patched matches = cold (jobs %d)" jobs)
        pure_matches live_matches;
      Alcotest.(check (list string))
        (Printf.sprintf "patched issues = cold (jobs %d)" jobs)
        pure_issues live_issues)
    [ 1; 2 ];
  (* warm store: a fresh process over the written-through artefacts
     must land on the same bytes *)
  match store_dir with
  | None -> ()
  | Some dir ->
    Option.iter Store.flush store;
    let warm = Store.open_dir dir in
    let warm_matches, warm_issues = match_strings ~kernel ~store:warm ~target:mutated () in
    Alcotest.(check (list string)) "warm-store matches = cold" pure_matches warm_matches;
    Alcotest.(check (list string)) "warm-store issues = cold" pure_issues warm_issues

let test_maintain_differential_kernel () = run_maintain_differential ~kernel:true ~store_dir:None ()
let test_maintain_differential_nokernel () =
  run_maintain_differential ~kernel:false ~store_dir:None ()

let test_maintain_differential_store () =
  in_temp_dir @@ fun dir -> run_maintain_differential ~kernel:true ~store_dir:(Some dir) ()

let test_maintain_differential_store_nokernel () =
  in_temp_dir @@ fun dir -> run_maintain_differential ~kernel:false ~store_dir:(Some dir) ()

(* Rebuild fallbacks: a churny delta and an out-of-vocabulary delta
   both rebuild cold — and the identity must hold either way. *)
let test_maintain_rebuild_fallbacks () =
  let prepared = Matching.Standard_match.prepare_target ~target:target_db () in
  let m = Delta.Maintain.create ~churn:0.05 ~target:target_db ~prepared () in
  let book = Database.table target_db "Book" in
  (match
     Delta.Maintain.update m
       (Delta.make ~table:"Book" ~appends:(copy_rows book [| 0; 1; 2; 3 |]) ~deletes:[| 0; 1 |])
   with
  | Ok (Delta.Maintain.Rebuilt reason) ->
    Alcotest.(check bool) "reason names churn" true
      (String.length reason >= 5 && String.sub reason 0 5 = "churn")
  | Ok Delta.Maintain.Patched -> Alcotest.fail "churny delta took the patch path"
  | Error e -> Alcotest.failf "update failed: %s" e);
  (* out-of-vocabulary append on a permissive churn limit *)
  let m2 = Delta.Maintain.create ~churn:0.5 ~target:target_db ~prepared () in
  let oov_row =
    let r = Array.copy (Table.rows book).(0) in
    r.(1) <- Value.String "zzqqxxjj wwkkvvyy";
    r
  in
  (match Delta.Maintain.update m2 (Delta.make ~table:"Book" ~appends:[| oov_row |] ~deletes:[||]) with
  | Ok (Delta.Maintain.Rebuilt reason) ->
    Alcotest.(check string) "reason names the vocabulary" "out-of-vocabulary grams" reason
  | Ok Delta.Maintain.Patched -> Alcotest.fail "out-of-vocabulary delta took the patch path"
  | Error e -> Alcotest.failf "update failed: %s" e);
  List.iter
    (fun mm ->
      let mutated = Delta.Maintain.target mm in
      let want, want_issues = match_strings ~target:mutated () in
      let got, got_issues =
        match_strings ~prepared:(Delta.Maintain.prepared mm) ~target:mutated ()
      in
      Alcotest.(check (list string)) "rebuilt matches = cold" want got;
      Alcotest.(check (list string)) "rebuilt issues = cold" want_issues got_issues)
    [ m; m2 ];
  (* rejected deltas leave the state alone *)
  (match Delta.Maintain.update m (Delta.make ~table:"NoSuch" ~appends:[||] ~deletes:[| 0 |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown table accepted");
  match
    Delta.Maintain.update m (Delta.make ~table:"Book" ~appends:[||] ~deletes:[| 99999 |])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-bounds delete accepted"

(* An injected fault at the delta-apply site fires before any state is
   touched: the update raises, the previous generation keeps serving,
   and a retry with the fault disarmed succeeds. *)
let test_maintain_fault_containment () =
  let prepared = Matching.Standard_match.prepare_target ~target:target_db () in
  let m = Delta.Maintain.create ~target:target_db ~prepared () in
  let before, _ = match_strings ~prepared:(Delta.Maintain.prepared m) ~target:target_db () in
  let book = Database.table target_db "Book" in
  let d = Delta.make ~table:"Book" ~appends:(copy_rows book [| 0 |]) ~deletes:[| 1 |] in
  (Robust.Fault.with_armed
     [ { Robust.Fault.site = Robust.Fault.Delta_apply; rate = 1.0; seed = 0 } ]
     (fun () ->
       match Delta.Maintain.update m d with
       | exception Robust.Fault.Injected { site = Robust.Fault.Delta_apply; _ } -> ()
       | Ok _ -> Alcotest.fail "armed fault did not fire"
       | Error e -> Alcotest.failf "unexpected rejection: %s" e));
  Alcotest.(check int) "no generation consumed" 0 (Delta.Maintain.generation m);
  let after, _ = match_strings ~prepared:(Delta.Maintain.prepared m) ~target:target_db () in
  Alcotest.(check (list string)) "old generation still serves" before after;
  expect_patched m d;
  Alcotest.(check int) "retry succeeds" 1 (Delta.Maintain.generation m)

(* --- persisted delta chains --------------------------------------------- *)

let sample_record ~table ~from_ ~to_ =
  {
    Store.dr_table = table;
    dr_from = from_;
    dr_to = to_;
    dr_from_rows = 10;
    dr_appends =
      [|
        [| Value.Int 1; Value.String "weird \"x\"\nnewline|pipe"; Value.Float 2.5 |];
        [| Value.Null; Value.Bool true; Value.Float (-0.0) |];
      |];
    dr_deletes = [| 2; 7 |];
    dr_deleted_rows =
      [|
        [| Value.Int 9; Value.String ""; Value.Float 1e100 |];
        [| Value.Null; Value.String "plain"; Value.Int (-3) |];
      |];
  }

let test_store_delta_roundtrip () =
  in_temp_dir @@ fun dir ->
  let s = Store.open_dir dir in
  let r1 = sample_record ~table:"T" ~from_:"digA" ~to_:"digB" in
  let r2 = sample_record ~table:"T" ~from_:"digB" ~to_:"digC" in
  Store.add_delta s r1;
  Store.add_delta s r2;
  Store.flush s;
  (* the standalone audit counts the records without opening the store *)
  let report = Store.verify dir in
  Alcotest.(check int) "verify counts deltas" 2 report.Store.vr_deltas;
  Alcotest.(check bool) "store healthy" true (Store.verify_healthy report);
  let s2 = Store.open_dir dir in
  (match Store.find_delta s2 ~table:"T" ~data:"digB" with
  | None -> Alcotest.fail "delta record lost"
  | Some r -> Alcotest.(check bool) "record roundtrips bit for bit" true (r = r1));
  Alcotest.(check bool) "absent record misses" true
    (Store.find_delta s2 ~table:"T" ~data:"digZ" = None);
  (* chain walk: oldest first *)
  (match Store.delta_chain s2 ~table:"T" ~data:"digC" with
  | [ a; b ] ->
    Alcotest.(check bool) "chain ordered oldest-first" true (a = r1 && b = r2)
  | l -> Alcotest.failf "chain length %d" (List.length l));
  (* compaction folds the whole chain away, durably *)
  Alcotest.(check int) "compaction removes the chain" 2
    (Store.compact_deltas s2 ~table:"T" ~data:"digC");
  Store.flush s2;
  let s3 = Store.open_dir dir in
  Alcotest.(check bool) "chain gone after reopen" true
    (Store.delta_chain s3 ~table:"T" ~data:"digC" = []
    && Store.find_delta s3 ~table:"T" ~data:"digB" = None)

(* Delta then crash: a torn write truncates the shard holding the delta
   record; verify reports it, reopening quarantines it, and matching
   over the store still answers correctly (artefacts rebuild). *)
let test_store_delta_crash () =
  in_temp_dir @@ fun dir ->
  let store = Store.open_dir dir in
  let prepared = Matching.Standard_match.prepare_target ~store ~target:target_db () in
  let m = Delta.Maintain.create ~store ~target:target_db ~prepared () in
  let book = Database.table target_db "Book" in
  expect_patched m
    (Delta.make ~table:"Book" ~appends:(copy_rows book [| 0 |]) ~deletes:[| 1; 2 |]);
  Store.flush store;
  let mutated = Delta.Maintain.target m in
  let digest = Store.table_digest (Database.table mutated "Book") in
  Alcotest.(check bool) "delta record persisted" true
    (Store.find_delta store ~table:"Book" ~data:digest <> None);
  (* tear the shard that holds the delta record *)
  let shard =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dat")
    |> List.find_opt (fun f ->
           let text = In_channel.with_open_bin (Filename.concat dir f) In_channel.input_all in
           String.length text > 2
           && (String.length text >= 2 && String.index_opt text 'X' <> None)
           &&
           let lines = String.split_on_char '\n' text in
           List.exists (fun l -> String.length l > 2 && l.[0] = 'X' && l.[1] = ' ') lines)
  in
  (match shard with
  | None -> Alcotest.fail "no shard holds the delta record"
  | Some f ->
    let path = Filename.concat dir f in
    let text = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub text 0 (String.length text / 2))));
  let report = Store.verify dir in
  Alcotest.(check bool) "verify flags the torn shard" true (report.Store.vr_truncated >= 1);
  Alcotest.(check bool) "verify not healthy" true (not (Store.verify_healthy report));
  let s2 = Store.open_dir dir in
  ignore (Store.find_delta s2 ~table:"Book" ~data:digest);
  ignore (Store.find_profile s2 { Store.table = "probe"; attr = "a"; subset = ""; data = "" });
  (* matching over the damaged store still answers, identically to a
     storeless run *)
  let want, _ = match_strings ~target:mutated () in
  let got, _ = match_strings ~store:s2 ~target:mutated () in
  Alcotest.(check (list string)) "matches correct despite crash damage" want got

(* --- the serve daemon's update surface ----------------------------------- *)

let csv_payload db =
  List.map
    (fun table -> (Table.name table, Csv_io.table_to_csv table))
    (Database.tables db)

let target_payload = csv_payload target_db
let source_payload = csv_payload source_db

let fresh_socket dir = Filename.concat dir (Printf.sprintf "d%d.sock" (Random.int 1_000_000))

let with_server ?(configure = fun c -> c) dir f =
  let address = Serve.Server.Unix_sock (fresh_socket dir) in
  let config = configure (Serve.Server.default_config address) in
  let server = Serve.Server.create config in
  let thread = Serve.Server.start server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Thread.join thread)
    (fun () -> f server address)

let with_client address f =
  let client = Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 address in
  Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client)

let expect_field json name =
  match Serve.Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "reply missing field %S: %s" name (Serve.Json.to_string json)

let expect_ok json =
  match Serve.Json.to_bool (expect_field json "ok") with
  | Some true -> ()
  | _ -> Alcotest.failf "reply not ok: %s" (Serve.Json.to_string json)

let expect_reject ~code json =
  (match Serve.Json.to_bool (expect_field json "ok") with
  | Some false -> ()
  | _ -> Alcotest.failf "expected a reject, got: %s" (Serve.Json.to_string json));
  match Serve.Json.to_string_opt (expect_field json "code") with
  | Some c when c = code -> ()
  | _ -> Alcotest.failf "expected reject code %S, got: %s" code (Serve.Json.to_string json)

let int_field json name =
  match Serve.Json.to_int (expect_field json name) with
  | Some i -> i
  | None -> Alcotest.failf "field %S is not an int" name

let string_field json name =
  match Serve.Json.to_string_opt (expect_field json name) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let string_list json name =
  match Serve.Json.to_list_opt (expect_field json name) with
  | Some l ->
    List.map
      (fun v ->
        match Serve.Json.to_string_opt v with
        | Some s -> s
        | None -> Alcotest.failf "field %S holds a non-string" name)
      l
  | None -> Alcotest.failf "field %S is not a list" name

let value_to_json = function
  | Value.Null -> Serve.Json.Null
  | Value.Int n -> Serve.Json.Int n
  | Value.Float f -> Serve.Json.Float f
  | Value.Bool b -> Serve.Json.Bool b
  | Value.String s -> Serve.Json.String s

let json_rows tbl indices =
  Array.to_list
    (Array.map (fun i -> Array.to_list (Array.map value_to_json (Table.rows tbl).(i))) indices)

let send_update client ?(appends = []) ?(deletes = []) ~target ~table () =
  Serve.Client.request client (Serve.Protocol.update_json ~appends ~deletes ~target ~table ())

let registry_entry reply name =
  match Serve.Json.to_list_opt (expect_field reply "targets") with
  | None -> Alcotest.fail "targets is not a list"
  | Some l -> (
    match
      List.find_opt
        (fun e -> Serve.Json.to_string_opt (expect_field e "name") = Some name)
        l
    with
    | Some e -> e
    | None -> Alcotest.failf "target %S not listed" name)

let test_serve_update_and_list () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  expect_ok (Serve.Client.request client (Serve.Protocol.register_json ~name:"retail" target_payload));
  (* generation 0 in the registry listing *)
  let listing = Serve.Client.request client Serve.Protocol.list_targets_json in
  expect_ok listing;
  let entry = registry_entry listing "retail" in
  Alcotest.(check int) "fresh target at generation 0" 0 (int_field entry "generation");
  Alcotest.(check string) "breaker closed" "closed" (string_field entry "breaker");
  (* a small in-vocabulary delta patches *)
  let book = Database.table target_db "Book" in
  let d1 = Delta.make ~table:"Book" ~appends:(copy_rows book [| 4; 5 |]) ~deletes:[| 0; 2 |] in
  let reply =
    send_update client ~appends:(json_rows book [| 4; 5 |]) ~deletes:[ 0; 2 ] ~target:"retail"
      ~table:"Book" ()
  in
  expect_ok reply;
  Alcotest.(check string) "patched" "patched" (string_field reply "mode");
  Alcotest.(check int) "generation 1" 1 (int_field reply "generation");
  Alcotest.(check int) "row count tracks the delta" (Table.row_count book)
    (int_field reply "rows");
  (* the served match now scores the mutated target, byte-identically
     to a one-shot run over it *)
  let mutated = Database.replace_table target_db (Delta.apply d1 book) in
  let want, want_issues = match_strings ~target:mutated () in
  let match_reply =
    Serve.Client.request client (Serve.Protocol.match_json ~target:"retail" source_payload)
  in
  expect_ok match_reply;
  Alcotest.(check (list string)) "served matches = one-shot over mutated target" want
    (string_list match_reply "matches");
  Alcotest.(check (list string)) "served issues = one-shot" want_issues
    (string_list match_reply "issues");
  (* a churny delete-heavy delta falls back to a rebuild, same identity *)
  let book1 = Database.table mutated "Book" in
  let heavy_deletes = List.init 20 (fun i -> i * 2) in
  let d2 =
    Delta.make ~table:"Book" ~appends:[||] ~deletes:(Array.of_list heavy_deletes)
  in
  let reply = send_update client ~deletes:heavy_deletes ~target:"retail" ~table:"Book" () in
  expect_ok reply;
  Alcotest.(check string) "rebuilt" "rebuilt" (string_field reply "mode");
  Alcotest.(check int) "generation 2" 2 (int_field reply "generation");
  let mutated2 = Database.replace_table mutated (Delta.apply d2 book1) in
  let want2, _ = match_strings ~target:mutated2 () in
  let match_reply =
    Serve.Client.request client (Serve.Protocol.match_json ~target:"retail" source_payload)
  in
  expect_ok match_reply;
  Alcotest.(check (list string)) "served matches after rebuild" want2
    (string_list match_reply "matches");
  (* the registry reflects both updates *)
  let listing = Serve.Client.request client Serve.Protocol.list_targets_json in
  expect_ok listing;
  let entry = registry_entry listing "retail" in
  Alcotest.(check int) "listed generation 2" 2 (int_field entry "generation");
  Alcotest.(check string) "breaker still closed" "closed" (string_field entry "breaker");
  Alcotest.(check int) "no failures" 0 (int_field entry "failures")

let test_serve_update_rejects () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  expect_ok (Serve.Client.request client (Serve.Protocol.register_json ~name:"retail" target_payload));
  let book = Database.table target_db "Book" in
  (* unknown target / unknown table / bad rows — all structured rejects *)
  expect_reject ~code:"unknown-target"
    (send_update client ~deletes:[ 0 ] ~target:"nope" ~table:"Book" ());
  expect_reject ~code:"bad-request"
    (send_update client ~deletes:[ 0 ] ~target:"retail" ~table:"NoSuch" ());
  expect_reject ~code:"bad-request"
    (send_update client ~appends:[ [ Serve.Json.Int 1 ] ] ~target:"retail" ~table:"Book" ());
  expect_reject ~code:"bad-request"
    (send_update client
       ~appends:[ [ Serve.Json.String "x"; Serve.Json.Int 1; Serve.Json.Int 1;
                    Serve.Json.Int 1; Serve.Json.Int 1; Serve.Json.Int 1 ] ]
       ~target:"retail" ~table:"Book" ());
  expect_reject ~code:"bad-request"
    (send_update client ~deletes:[ 99999 ] ~target:"retail" ~table:"Book" ());
  expect_reject ~code:"bad-request" (send_update client ~target:"retail" ~table:"Book" ());
  (* none of that consumed a generation or touched the breaker *)
  let listing = Serve.Client.request client Serve.Protocol.list_targets_json in
  expect_ok listing;
  let entry = registry_entry listing "retail" in
  Alcotest.(check int) "generation still 0" 0 (int_field entry "generation");
  Alcotest.(check string) "breaker untouched by update failures" "closed"
    (string_field entry "breaker");
  Alcotest.(check int) "failure counter untouched" 0 (int_field entry "failures");
  (* and the target still matches *)
  let reply = send_update client ~appends:(json_rows book [| 0 |]) ~target:"retail" ~table:"Book" () in
  expect_ok reply;
  Alcotest.(check int) "clean update still works" 1 (int_field reply "generation")

let () =
  Alcotest.run "delta"
    [
      ( "profile-algebra",
        [
          Alcotest.test_case "patch inverts exactly" `Quick test_profile_patch_inverts;
          Alcotest.test_case "absent removal raises" `Quick test_profile_patch_absent_raises;
        ] );
      ( "index-patch",
        [
          Alcotest.test_case "patched = cold rebuild, bitwise" `Quick test_index_patch_identity;
          Alcotest.test_case "emptied slot stays neutral" `Quick test_index_patch_emptied_slot;
          Alcotest.test_case "out-of-vocab refuses" `Quick test_index_patch_out_of_vocab;
        ] );
      ( "delta-core",
        [ Alcotest.test_case "validate and apply" `Quick test_core_validate_apply ] );
      ( "profiles",
        [
          Alcotest.test_case "maintained = cold scan" `Quick test_profiles_match_cold;
          Alcotest.test_case "delete-only condition value" `Quick test_profiles_delete_only_value;
        ] );
      ( "cache-partitions",
        [ Alcotest.test_case "edge cases" `Quick test_cache_partition_edges ] );
      ( "maintain-differential",
        [
          Alcotest.test_case "kernel" `Quick test_maintain_differential_kernel;
          Alcotest.test_case "no kernel" `Quick test_maintain_differential_nokernel;
          Alcotest.test_case "store, kernel" `Quick test_maintain_differential_store;
          Alcotest.test_case "store, no kernel" `Quick test_maintain_differential_store_nokernel;
          Alcotest.test_case "rebuild fallbacks" `Quick test_maintain_rebuild_fallbacks;
          Alcotest.test_case "fault containment" `Quick test_maintain_fault_containment;
        ] );
      ( "store-deltas",
        [
          Alcotest.test_case "roundtrip, chain, compaction" `Quick test_store_delta_roundtrip;
          Alcotest.test_case "delta then crash" `Quick test_store_delta_crash;
        ] );
      ( "serve",
        [
          Alcotest.test_case "update-target and list-targets" `Quick test_serve_update_and_list;
          Alcotest.test_case "update rejects" `Quick test_serve_update_rejects;
        ] );
    ]
