(* End-to-end tests of the command-line interface: generate CSV/XML
   fixtures, invoke the built executable, check its output and the files
   it writes.  The exe is declared as a dune dependency of this test. *)

let cli = "../bin/ctxmatch_cli.exe"

let in_temp_dir f =
  let dir = Filename.temp_file "ctxmatch_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_capture cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

(* summary lines end with a wall-clock duration ("# ..., 0.01s"); strip
   it so byte-comparing two runs cannot flake on a rounding boundary *)
let strip_timing s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[0] = '#' && line.[n - 1] = 's' then
           match String.rindex_opt line ',' with
           | Some i -> String.sub line 0 i
           | None -> line
         else line)
  |> String.concat "\n"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* a grades-style fixture small enough to run fast but large enough for
   contextual matching to fire *)
let grades_fixture dir =
  let rng = Stats.Rng.create 4 in
  let narrow = Buffer.create 4096 in
  Buffer.add_string narrow "name,examNum,grade\n";
  for i = 1 to 80 do
    for e = 1 to 3 do
      Buffer.add_string narrow
        (Printf.sprintf "student %03d,%d,%.2f\n" i e
           (Stats.Rng.gaussian rng ~mu:(40.0 +. (10.0 *. float_of_int (e - 1))) ~sigma:6.0))
    done
  done;
  let wide = Buffer.create 4096 in
  Buffer.add_string wide "name,grade1,grade2,grade3\n";
  for i = 1 to 80 do
    Buffer.add_string wide
      (Printf.sprintf "other %03d,%.2f,%.2f,%.2f\n" i
         (Stats.Rng.gaussian rng ~mu:40.0 ~sigma:6.0)
         (Stats.Rng.gaussian rng ~mu:50.0 ~sigma:6.0)
         (Stats.Rng.gaussian rng ~mu:60.0 ~sigma:6.0))
  done;
  write (Filename.concat dir "narrow.csv") (Buffer.contents narrow);
  write (Filename.concat dir "wide.csv") (Buffer.contents wide)

let test_match_command () =
  in_temp_dir (fun dir ->
      grades_fixture dir;
      let status, output =
        run_capture
          (Printf.sprintf "%s match -s %s/narrow.csv -t %s/wide.csv --tau 0.4 --omega 0.05 --late --select clio"
             cli dir dir)
      in
      Alcotest.(check bool) "exit 0" true (status = Unix.WEXITED 0);
      Alcotest.(check bool) "prints contextual matches" true
        (contains output "[examNum = 1]" && contains output "grade1"))

let test_map_command_writes_outputs () =
  in_temp_dir (fun dir ->
      grades_fixture dir;
      let out = Filename.concat dir "out" in
      let status, output =
        run_capture
          (Printf.sprintf
             "%s map -s %s/narrow.csv -t %s/wide.csv --tau 0.4 --omega 0.05 --late --select clio -o %s"
             cli dir dir out)
      in
      Alcotest.(check bool) "exit 0" true (status = Unix.WEXITED 0);
      Alcotest.(check bool) "reports join1" true (contains output "join1");
      Alcotest.(check bool) "sql written" true
        (Sys.file_exists (Filename.concat out "mapping.sql"));
      Alcotest.(check bool) "csv written" true
        (Sys.file_exists (Filename.concat out "wide.csv"));
      (* the mapped wide table has one row per student + header *)
      let lines =
        Relational.Csv_io.parse_file (Filename.concat out "wide.csv") |> List.length
      in
      Alcotest.(check int) "80 rows + header" 81 lines)

let test_where_filter () =
  in_temp_dir (fun dir ->
      grades_fixture dir;
      let status, output =
        run_capture
          (Printf.sprintf
             "%s match -s %s/narrow.csv -t %s/wide.csv --tau 0.4 --where \"examNum = 1\""
             cli dir dir)
      in
      Alcotest.(check bool) "exit 0" true (status = Unix.WEXITED 0);
      (* with only exam 1 rows, grade aligns with grade1 unconditionally *)
      Alcotest.(check bool) "matches grade1" true (contains output "grade1"))

let test_demo_command () =
  let status, output = run_capture (cli ^ " demo grades") in
  Alcotest.(check bool) "exit 0" true (status = Unix.WEXITED 0);
  Alcotest.(check bool) "perfect demo accuracy" true (contains output "Accuracy 1.000")

let test_xml_input () =
  in_temp_dir (fun dir ->
      let xml = Buffer.create 4096 in
      Buffer.add_string xml "<inventory>\n";
      let rng = Stats.Rng.create 9 in
      for i = 1 to 120 do
        let is_book = i mod 2 = 0 in
        let title =
          if is_book then (Workload.Corpus.book rng).Workload.Corpus.book_title
          else (Workload.Corpus.album rng).Workload.Corpus.album_title
        in
        Buffer.add_string xml
          (Printf.sprintf "<item><kind>%s</kind><title>%s</title></item>\n"
             (if is_book then "book" else "cd")
             title)
      done;
      Buffer.add_string xml "</inventory>\n";
      write (Filename.concat dir "inv.xml") (Buffer.contents xml);
      let books = Buffer.create 2048 in
      Buffer.add_string books "booktitle\n";
      for _ = 1 to 60 do
        Buffer.add_string books ((Workload.Corpus.book rng).Workload.Corpus.book_title ^ "\n")
      done;
      write (Filename.concat dir "books.csv") (Buffer.contents books);
      let status, output =
        run_capture
          (Printf.sprintf "%s match -s %s/inv.xml -t %s/books.csv --tau 0.3" cli dir dir)
      in
      Alcotest.(check bool) "exit 0" true (status = Unix.WEXITED 0);
      Alcotest.(check bool) "shredded title column matched" true
        (contains output "title -> books.booktitle"))

let test_observability_flags () =
  in_temp_dir (fun dir ->
      grades_fixture dir;
      let base =
        Printf.sprintf "%s match -s %s/narrow.csv -t %s/wide.csv --tau 0.4 --omega 0.05 --late --select clio"
          cli dir dir
      in
      (* plain run is the oracle: the obs flags must not change matches *)
      let status, plain = run_capture base in
      Alcotest.(check bool) "plain exit 0" true (status = Unix.WEXITED 0);
      let metrics_file = Filename.concat dir "metrics.json" in
      let trace_file = Filename.concat dir "trace.jsonl" in
      let status, instrumented =
        run_capture (Printf.sprintf "%s --metrics %s --trace %s" base metrics_file trace_file)
      in
      Alcotest.(check bool) "instrumented exit 0" true (status = Unix.WEXITED 0);
      Alcotest.(check string) "output unchanged under instrumentation"
        (strip_timing plain) (strip_timing instrumented);
      (* the span tree goes to stderr; run it separately so interleaving
         with block-buffered stdout cannot perturb the byte comparison *)
      let status, profiled = run_capture (base ^ " --profile") in
      Alcotest.(check bool) "profile exit 0" true (status = Unix.WEXITED 0);
      Alcotest.(check bool) "profile tree printed" true (contains profiled "context_match");
      let slurp path =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let metrics = slurp metrics_file in
      List.iter
        (fun field ->
          Alcotest.(check bool) ("metrics has " ^ field) true (contains metrics field))
        [ "\"spans\""; "\"pool\""; "\"utilization\""; "cache.profile.lookups" ];
      Alcotest.(check bool) "trace written" true
        (contains (slurp trace_file) "\"path\""))

let test_bad_input_fails () =
  (* a nonexistent file is rejected by argument validation: usage (2) *)
  let status, _ = run_capture (cli ^ " match -s /nonexistent.csv -t /nonexistent.csv") in
  Alcotest.(check bool) "missing file: usage exit" true (status = Unix.WEXITED 2);
  in_temp_dir (fun dir ->
      write (Filename.concat dir "good.csv") "a,b\n1,2\n";
      write (Filename.concat dir "ragged.csv") "a,b\n1,2\n3\n";
      (* a malformed row is an ingestion error (3) under --strict ... *)
      let status, _ =
        run_capture (Printf.sprintf "%s match -s %s/ragged.csv -t %s/good.csv" cli dir dir)
      in
      Alcotest.(check bool) "ragged csv: ingestion exit" true (status = Unix.WEXITED 3);
      (* ... and a quarantined row (exit 0, diagnostic) under --lenient *)
      let status, output =
        run_capture
          (Printf.sprintf "%s match -s %s/ragged.csv -t %s/good.csv --lenient" cli dir dir)
      in
      Alcotest.(check bool) "lenient: degraded but successful" true
        (status = Unix.WEXITED 0);
      Alcotest.(check bool) "lenient: quarantine diagnostic" true
        (contains output "row quarantined");
      (* an unknown selection policy is a usage error (2) *)
      let status, _ =
        run_capture
          (Printf.sprintf "%s match -s %s/good.csv -t %s/good.csv --select bogus" cli dir dir)
      in
      Alcotest.(check bool) "bad policy: usage exit" true (status = Unix.WEXITED 2))

let suite =
  [
    Alcotest.test_case "match command" `Slow test_match_command;
    Alcotest.test_case "map writes csv + sql" `Slow test_map_command_writes_outputs;
    Alcotest.test_case "--where filter" `Slow test_where_filter;
    Alcotest.test_case "demo grades" `Slow test_demo_command;
    Alcotest.test_case "xml input" `Slow test_xml_input;
    Alcotest.test_case "observability flags" `Slow test_observability_flags;
    Alcotest.test_case "bad input fails" `Quick test_bad_input_fails;
  ]
