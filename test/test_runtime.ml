(* The parallel runtime: deterministic pool fan-out, the memo table,
   and the profile cache threaded through view scoring. *)
open Relational

(* --- Pool -------------------------------------------------------------- *)

let test_pool_matches_sequential () =
  List.iter
    (fun jobs ->
      let pool = Runtime.Pool.create ~jobs in
      List.iter
        (fun n ->
          let input = List.init n (fun i -> i) in
          let f x = (x * x) + 1 in
          Alcotest.(check (list int))
            (Printf.sprintf "map jobs=%d n=%d" jobs n)
            (List.map f input)
            (Runtime.Pool.map_list pool f input))
        [ 0; 1; 7; 100 ];
      Runtime.Pool.shutdown pool)
    [ 1; 2; 4 ]

let test_pool_mapi_and_concat () =
  let pool = Runtime.Pool.create ~jobs:4 in
  let input = List.init 50 (fun i -> Printf.sprintf "v%d" i) in
  Alcotest.(check (list string))
    "mapi passes the index"
    (List.mapi (fun i s -> Printf.sprintf "%d:%s" i s) input)
    (Runtime.Pool.mapi_list pool (fun i s -> Printf.sprintf "%d:%s" i s) input);
  let f x = [ x; x * 10 ] in
  let ints = List.init 31 (fun i -> i) in
  Alcotest.(check (list int))
    "concat_map preserves order"
    (List.concat_map f ints)
    (Runtime.Pool.concat_map_list pool f ints);
  Runtime.Pool.shutdown pool

let test_pool_deterministic_across_runs () =
  let pool = Runtime.Pool.create ~jobs:4 in
  let input = List.init 500 (fun i -> i) in
  let f x = Printf.sprintf "%d-%d" x (x mod 7) in
  let first = Runtime.Pool.map_list pool f input in
  for _ = 1 to 3 do
    Alcotest.(check (list string)) "same output every run" first
      (Runtime.Pool.map_list pool f input)
  done;
  Runtime.Pool.shutdown pool

let test_pool_propagates_exception () =
  let pool = Runtime.Pool.create ~jobs:2 in
  let blew_up =
    try
      ignore
        (Runtime.Pool.map_list pool
           (fun x -> if x = 57 then failwith "boom" else x)
           (List.init 100 (fun i -> i)));
      false
    with Failure msg -> msg = "boom"
  in
  Alcotest.(check bool) "exception re-raised" true blew_up;
  (* the batch drained: the pool is still usable *)
  Alcotest.(check (list int)) "pool survives" [ 2; 4 ]
    (Runtime.Pool.map_list pool (fun x -> 2 * x) [ 1; 2 ]);
  Runtime.Pool.shutdown pool

let test_pool_get_caches_and_resizes () =
  let p2 = Runtime.Pool.get ~jobs:2 in
  Alcotest.(check bool) "same pool returned" true (p2 == Runtime.Pool.get ~jobs:2);
  Alcotest.(check int) "jobs recorded" 2 (Runtime.Pool.jobs p2);
  let p3 = Runtime.Pool.get ~jobs:3 in
  Alcotest.(check int) "resized" 3 (Runtime.Pool.jobs p3);
  Alcotest.(check (list int)) "resized pool works" [ 1; 2; 3 ]
    (Runtime.Pool.map_list p3 (fun x -> x) [ 1; 2; 3 ])

(* --- Memo -------------------------------------------------------------- *)

let test_memo_hit_miss_accounting () =
  let memo = Runtime.Memo.create () in
  let calls = ref 0 in
  let compute k () =
    incr calls;
    String.length k
  in
  Alcotest.(check int) "computed" 3 (Runtime.Memo.find_or_add memo "abc" (compute "abc"));
  Alcotest.(check int) "cached" 3 (Runtime.Memo.find_or_add memo "abc" (compute "abc"));
  Alcotest.(check int) "one compute" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Runtime.Memo.hits memo);
  Alcotest.(check int) "one miss" 1 (Runtime.Memo.misses memo);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Runtime.Memo.hit_rate memo);
  Runtime.Memo.clear memo;
  Alcotest.(check int) "cleared" 0 (Runtime.Memo.length memo);
  Alcotest.(check int) "counters reset" 0 (Runtime.Memo.hits memo + Runtime.Memo.misses memo)

let test_memo_returns_first_insertion () =
  let memo = Runtime.Memo.create () in
  let a = Runtime.Memo.find_or_add memo 1 (fun () -> ref 10) in
  let b = Runtime.Memo.find_or_add memo 1 (fun () -> ref 99) in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check int) "first value kept" 10 !a

let test_memo_under_concurrency () =
  let memo = Runtime.Memo.create () in
  let pool = Runtime.Pool.create ~jobs:4 in
  let results =
    Runtime.Pool.map_list pool
      (fun i -> Runtime.Memo.find_or_add memo (i mod 10) (fun () -> (i mod 10) * 100))
      (List.init 200 (fun i -> i))
  in
  Runtime.Pool.shutdown pool;
  Alcotest.(check (list int))
    "every lookup consistent"
    (List.init 200 (fun i -> i mod 10 * 100))
    results;
  Alcotest.(check int) "all lookups accounted" 200
    (Runtime.Memo.hits memo + Runtime.Memo.misses memo);
  Alcotest.(check int) "only ten keys" 10 (Runtime.Memo.length memo)

(* --- Profile cache ----------------------------------------------------- *)

(* [flag] and [dup] always agree, so conditions on either attribute can
   select the same row subset through different conditions. *)
let cache_table =
  Table.make
    (Schema.make "S"
       [ Attribute.string "flag"; Attribute.string "dup"; Attribute.string "x" ])
    (List.init 20 (fun i ->
         let side = if i mod 2 = 0 then "a" else "b" in
         [|
           Value.String side;
           Value.String side;
           Value.String (Printf.sprintf "title %d of side %s" i side);
         |]))

let test_cache_hit_on_identical_subset () =
  let cache = Matching.Profile_cache.create () in
  let va = View.make cache_table (Condition.Eq ("flag", Value.String "a")) in
  let vb = View.make cache_table (Condition.Eq ("dup", Value.String "a")) in
  let ca = Matching.Column.of_view ~cache va "x" in
  let cb = Matching.Column.of_view ~cache vb "x" in
  let pa = Matching.Column.profile ca in
  let pb = Matching.Column.profile cb in
  Alcotest.(check bool) "same subset shares one profile" true (pa == pb);
  Alcotest.(check int) "second lookup hit" 1 (Runtime.Memo.hits cache.profiles);
  Alcotest.(check int) "first lookup missed" 1 (Runtime.Memo.misses cache.profiles)

let test_cache_miss_on_different_subset () =
  let cache = Matching.Profile_cache.create () in
  let va = View.make cache_table (Condition.Eq ("flag", Value.String "a")) in
  let vb = View.make cache_table (Condition.Eq ("flag", Value.String "b")) in
  ignore (Matching.Column.profile (Matching.Column.of_view ~cache va "x"));
  ignore (Matching.Column.profile (Matching.Column.of_view ~cache vb "x"));
  Alcotest.(check int) "no hits" 0 (Runtime.Memo.hits cache.profiles);
  Alcotest.(check int) "two computes" 2 (Runtime.Memo.misses cache.profiles);
  Alcotest.(check bool) "distinct digests" true
    (Matching.Profile_cache.subset_digest (View.row_indices va)
    <> Matching.Profile_cache.subset_digest (View.row_indices vb))

(* Source rows with embedded commas, quotes and newlines, round-tripped
   through the CSV layer: cached view scores must equal fresh ones on
   exactly the bytes users load. *)
let csv_roundtrip_db () =
  let header = [ "flag"; "dup"; "title" ] in
  let rows =
    List.init 16 (fun i ->
        let side = if i mod 2 = 0 then "a" else "b" in
        [
          side;
          side;
          Printf.sprintf "the \"secret, history\"\nvolume %d, side %s" i side;
        ])
  in
  let csv = Relational.Csv_io.to_string (header :: rows) in
  let table = Relational.Csv_io.table_of_csv ~name:"S" csv in
  (* round-trip once more to prove quoting is stable *)
  let table = Relational.Csv_io.table_of_csv ~name:"S" (Relational.Csv_io.table_to_csv table) in
  let tgt_csv =
    Relational.Csv_io.to_string
      ([ "booktitle" ]
      :: List.init 10 (fun i -> [ Printf.sprintf "a \"quoted, title\"\nnumber %d" i ]))
  in
  let target_table = Relational.Csv_io.table_of_csv ~name:"T" tgt_csv in
  (Database.make "src" [ table ], Database.make "tgt" [ target_table ])

let test_cached_view_score_equals_fresh () =
  let source, target = csv_roundtrip_db () in
  let table = Database.table source "S" in
  let score model view =
    Matching.Standard_match.score_view model view ~src_attr:"title" ~tgt_table:"T"
      ~tgt_attr:"booktitle"
  in
  (* warm model: scoring [va] populates the cache, [vb] (same subset,
     different condition) is answered from it *)
  let warm = Matching.Standard_match.build ~source ~target () in
  let va = View.make table (Condition.Eq ("flag", Value.String "a")) in
  let vb = View.make table (Condition.Eq ("dup", Value.String "a")) in
  let score_cold = score warm va in
  let hits_before = Matching.Profile_cache.hits (Matching.Standard_match.profile_cache warm) in
  let score_warm = score warm vb in
  let hits_after = Matching.Profile_cache.hits (Matching.Standard_match.profile_cache warm) in
  Alcotest.(check bool) "second view hit the cache" true (hits_after > hits_before);
  Alcotest.(check bool) "scores bit-identical" true (Float.equal score_cold score_warm);
  (* and a completely fresh model agrees *)
  let fresh = Matching.Standard_match.build ~source ~target () in
  Alcotest.(check bool) "fresh model agrees" true
    (Float.equal score_cold (score fresh (View.make table (Condition.Eq ("dup", Value.String "a")))));
  Alcotest.(check bool) "score is meaningful" true (score_cold > 0.0)

let suite =
  [
    Alcotest.test_case "pool = sequential map" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool mapi/concat" `Quick test_pool_mapi_and_concat;
    Alcotest.test_case "pool deterministic" `Quick test_pool_deterministic_across_runs;
    Alcotest.test_case "pool exception" `Quick test_pool_propagates_exception;
    Alcotest.test_case "pool get/resize" `Quick test_pool_get_caches_and_resizes;
    Alcotest.test_case "memo accounting" `Quick test_memo_hit_miss_accounting;
    Alcotest.test_case "memo first insertion wins" `Quick test_memo_returns_first_insertion;
    Alcotest.test_case "memo under concurrency" `Quick test_memo_under_concurrency;
    Alcotest.test_case "cache hit on equal subset" `Quick test_cache_hit_on_identical_subset;
    Alcotest.test_case "cache miss on new subset" `Quick test_cache_miss_on_different_subset;
    Alcotest.test_case "cached score = fresh score (csv)" `Quick
      test_cached_view_score_equals_fresh;
  ]
