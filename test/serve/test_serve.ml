(* Serve-daemon suite.

   The central claim the daemon makes (DESIGN.md, "Serving") is that a
   served match is the SAME computation as a one-shot run: a registered
   prepared target plus a request's source sample produce byte-identical
   matches and issue payloads to `ctxmatch match` over the same inputs.
   The differential tests here hold the daemon to that claim, across
   jobs values, kernel on/off, warm vs cold stores, lenient-ingest
   quarantine and injected faults.  The rest of the suite covers what a
   daemon additionally owes its callers: surviving malformed input,
   bounded queues under concurrency, per-request deadlines that include
   queue wait, and a drain-then-flush shutdown. *)

let cli = "../../bin/ctxmatch_cli.exe"

let in_temp_dir f =
  let dir = Filename.temp_file "ctxserve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* --- fixture: the retail workload, as CSV payloads --------------------- *)

let retail_params =
  { Workload.Retail.default_params with rows = 120; target_rows = 60; seed = 42 }

let source_db = Workload.Retail.source retail_params
let target_db = Workload.Retail.target retail_params Workload.Retail.Ryan_eyers

let csv_payload db =
  List.map
    (fun table -> (Relational.Table.name table, Relational.Csv_io.table_to_csv table))
    (Relational.Database.tables db)

let source_payload = csv_payload source_db
let target_payload = csv_payload target_db

(* The one-shot oracle the daemon must agree with, byte for byte.  Runs
   strictly sequentially with the daemon idle: Runtime.Pool accepts
   batches from one submitter at a time, and inside the daemon that
   submitter is its executor thread. *)
let oracle ?(jobs = 1) ?(kernel = true) ?(faults = []) ?timeout_ms () =
  let config = { Ctxmatch.Config.default with jobs; kernel; faults; timeout_ms } in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target:target_db in
  Ctxmatch.Context_match.run ~config ~infer ~source:source_db ~target:target_db ()

let oracle_strings (r : Ctxmatch.Context_match.result) =
  ( List.map Matching.Schema_match.to_string r.Ctxmatch.Context_match.matches,
    List.map Robust.Error.to_string r.Ctxmatch.Context_match.issues )

(* --- in-process server helpers ----------------------------------------- *)

let fresh_socket dir = Filename.concat dir (Printf.sprintf "d%d.sock" (Random.int 1_000_000))

let with_server ?(configure = fun c -> c) dir f =
  let address = Serve.Server.Unix_sock (fresh_socket dir) in
  let config = configure (Serve.Server.default_config address) in
  let server = Serve.Server.create config in
  let thread = Serve.Server.start server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Thread.join thread)
    (fun () -> f server address)

let connect address = Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 address

let with_client address f =
  let client = connect address in
  Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client)

let expect_field json name =
  match Serve.Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "reply missing field %S: %s" name (Serve.Json.to_string json)

let expect_ok json =
  match Serve.Json.to_bool (expect_field json "ok") with
  | Some true -> ()
  | _ -> Alcotest.failf "reply not ok: %s" (Serve.Json.to_string json)

let expect_reject ~code json =
  (match Serve.Json.to_bool (expect_field json "ok") with
  | Some false -> ()
  | _ -> Alcotest.failf "expected a reject, got: %s" (Serve.Json.to_string json));
  match Serve.Json.to_string_opt (expect_field json "code") with
  | Some c when c = code -> ()
  | _ -> Alcotest.failf "expected reject code %S, got: %s" code (Serve.Json.to_string json)

let string_list json name =
  match Serve.Json.to_list_opt (expect_field json name) with
  | Some l ->
    List.map
      (fun v ->
        match Serve.Json.to_string_opt v with
        | Some s -> s
        | None -> Alcotest.failf "field %S holds a non-string" name)
      l
  | None -> Alcotest.failf "field %S is not a list" name

let int_field json name =
  match Serve.Json.to_int (expect_field json name) with
  | Some i -> i
  | None -> Alcotest.failf "field %S is not an int" name

let register client ?kernel ?(name = "retail") ?(tables = target_payload) () =
  let reply = Serve.Client.request client (Serve.Protocol.register_json ?kernel ~name tables) in
  expect_ok reply;
  reply

let do_match client ?tau ?omega ?late ?select ?algorithm ?seed ?jobs ?timeout_ms ?kernel
    ?lenient ?faults ?(target = "retail") ?(tables = source_payload) () =
  Serve.Client.request client
    (Serve.Protocol.match_json ?tau ?omega ?late ?select ?algorithm ?seed ?jobs ?timeout_ms
       ?kernel ?lenient ?faults ~target tables)

(* --- differential identity --------------------------------------------- *)

(* Daemon vs one-shot across jobs x kernel: matches AND issues compare
   as the exact strings the one-shot CLI prints. *)
let test_differential_identity () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  List.iter
    (fun kernel ->
      let want_matches, want_issues = oracle_strings (oracle ~kernel ()) in
      Alcotest.(check bool) "oracle found matches" true (want_matches <> []);
      List.iter
        (fun jobs ->
          let reply = do_match client ~jobs ~kernel () in
          expect_ok reply;
          Alcotest.(check (list string))
            (Printf.sprintf "matches identical (jobs=%d kernel=%b)" jobs kernel)
            want_matches (string_list reply "matches");
          Alcotest.(check (list string))
            (Printf.sprintf "issues identical (jobs=%d kernel=%b)" jobs kernel)
            want_issues (string_list reply "issues"))
        [ 1; 2; Domain.recommended_domain_count () ])
    [ true; false ]

(* A shared prepared target must not leak state between requests with
   different knobs: flip tau up (fewer matches) and back, same client,
   same registration. *)
let test_knobs_do_not_stick () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  let base, _ = oracle_strings (oracle ()) in
  let strict_reply = do_match client ~tau:0.95 ~omega:0.9 () in
  expect_ok strict_reply;
  let reply = do_match client () in
  expect_ok reply;
  Alcotest.(check (list string)) "defaults unaffected by a prior strict request" base
    (string_list reply "matches")

(* Issue payloads: lenient ingest quarantine rides back on the reply
   exactly as Csv_io reports it, and injected faults degrade the served
   result identically to the one-shot run. *)
let test_issue_payload_identity () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  (* fault-injected differential *)
  let faults = [ { Robust.Fault.site = Robust.Fault.Matcher_score; rate = 0.35; seed = 1 } ] in
  let want_matches, want_issues = oracle_strings (oracle ~faults ()) in
  Alcotest.(check bool) "faults actually fired" true (want_issues <> []);
  let reply = do_match client ~faults () in
  expect_ok reply;
  Alcotest.(check (list string)) "degraded matches identical" want_matches
    (string_list reply "matches");
  Alcotest.(check (list string)) "fault issues identical" want_issues
    (string_list reply "issues");
  (* lenient-ingest differential: same quarantine lines as Csv_io *)
  let name, csv = List.hd source_payload in
  let mangled =
    (* corrupt one mid-file record into a field-count mismatch *)
    let lines = String.split_on_char '\n' csv in
    String.concat "\n"
      (List.mapi (fun i line -> if i = 3 then line ^ ",stray,fields" else line) lines)
  in
  let _, want_ingest =
    Relational.Csv_io.table_of_csv_report ~mode:Relational.Csv_io.Lenient ~name mangled
  in
  Alcotest.(check bool) "mangling quarantined something" true (want_ingest <> []);
  let reply = do_match client ~lenient:true ~tables:[ (name, mangled) ] () in
  expect_ok reply;
  Alcotest.(check (list string)) "ingest issue payloads identical"
    (List.map Robust.Error.to_string want_ingest)
    (string_list reply "ingest_issues");
  (* clean rate-0 arming is a perfect no-op *)
  let clean, _ = oracle_strings (oracle ()) in
  let reply =
    do_match client
      ~faults:[ { Robust.Fault.site = Robust.Fault.Matcher_score; rate = 0.0; seed = 1 } ]
      ()
  in
  expect_ok reply;
  Alcotest.(check (list string)) "rate 0.0 arming = unarmed" clean (string_list reply "matches")

(* Warm vs cold: daemon A populates a store and drains; daemon B over
   the same directory serves identical matches without rebuilding a
   single profile. *)
let test_warm_store_identity () =
  in_temp_dir @@ fun dir ->
  let store_dir = Filename.concat dir "store" in
  let serve_once f =
    with_server dir
      ~configure:(fun c -> { c with Serve.Server.store_dir = Some store_dir })
      (fun server address ->
        with_client address @@ fun client ->
        ignore (register client ());
        let reply = do_match client () in
        expect_ok reply;
        ignore server;
        f reply)
  in
  let want, _ = oracle_strings (oracle ()) in
  let cold_builds = serve_once (fun reply -> int_field reply "profile_builds") in
  Alcotest.(check bool) "cold daemon built profiles" true (cold_builds > 0);
  let warm_matches, warm_builds =
    serve_once (fun reply -> (string_list reply "matches", int_field reply "profile_builds"))
  in
  Alcotest.(check (list string)) "warm daemon matches identical" want warm_matches;
  Alcotest.(check int) "warm daemon rebuilt nothing" 0 warm_builds

(* --- protocol robustness ------------------------------------------------ *)

(* Every malformed request gets a structured reject on the same
   connection, and the daemon keeps serving afterwards. *)
let test_protocol_robustness () =
  in_temp_dir @@ fun dir ->
  with_server dir
    ~configure:(fun c -> { c with Serve.Server.max_request_bytes = 4096 })
  @@ fun server address ->
  with_client address @@ fun client ->
  let req line = Serve.Json.parse (Serve.Client.request_line client line) in
  expect_reject ~code:"invalid-json" (req "this is not json");
  expect_reject ~code:"invalid-json" (req "{\"cmd\":\"ping\"");
  expect_reject ~code:"bad-request" (req "[1,2,3]");
  expect_reject ~code:"bad-request" (req "{\"nocmd\":true}");
  expect_reject ~code:"bad-request" (req "{\"cmd\":\"match\"}");
  expect_reject ~code:"bad-request" (req "{\"cmd\":\"match\",\"target\":\"t\",\"tables\":[]}");
  expect_reject ~code:"bad-request"
    (req "{\"cmd\":\"match\",\"target\":\"t\",\"tables\":[{\"name\":\"a\",\"csv\":\"x\"}],\"tau\":\"high\"}");
  expect_reject ~code:"unknown-command" (req "{\"cmd\":\"frobnicate\"}");
  expect_reject ~code:"unknown-target"
    (req "{\"cmd\":\"match\",\"target\":\"nope\",\"tables\":[{\"name\":\"a\",\"csv\":\"h\\n1\"}]}");
  expect_reject ~code:"bad-request"
    (req
       "{\"cmd\":\"match\",\"target\":\"t\",\"tables\":[{\"name\":\"a\",\"csv\":\"h\\n1\"}],\"faults\":[{\"site\":\"warp-core\"}]}");
  (* strict-mode CSV failure is an ingest reject, not a dead daemon *)
  expect_reject ~code:"ingest"
    (req "{\"cmd\":\"register-target\",\"name\":\"bad\",\"tables\":[{\"name\":\"a\",\"csv\":\"h1,h2\\nonly-one\"}]}");
  (* oversized line: rejected, discarded, connection still usable *)
  let big = String.make 8192 'x' in
  expect_reject ~code:"oversized" (req ("{\"cmd\":\"ping\",\"pad\":\"" ^ big ^ "\"}"));
  (* a line split across writes reassembles into one request *)
  Serve.Client.send_raw client "{\"cmd\":";
  Thread.delay 0.05;
  Serve.Client.send_raw client "\"ping\"}\n";
  expect_ok (Serve.Json.parse (Serve.Client.read_reply client));
  (* after all that abuse: still alive and still serving (a tiny
     fixture — this server caps requests at 4 KiB; full-payload
     identity is the differential suite's job) *)
  let tiny = [ ("t", "a,b\n1,x\n2,y\n") ] in
  ignore (register client ~name:"tiny" ~tables:tiny ());
  let reply = do_match client ~target:"tiny" ~tables:tiny () in
  expect_ok reply;
  ignore (string_list reply "matches");
  let c = Serve.Server.counters server in
  Alcotest.(check bool) "protocol errors were counted" true
    (c.Serve.Server.c_protocol_errors >= 11)

(* A client that vanishes mid-request (truncated line, no newline, then
   hard close) must not wedge or kill the daemon. *)
let test_truncated_then_disconnect () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  let client = connect address in
  Serve.Client.send_raw client "{\"cmd\":\"ping\"";
  Serve.Client.close client;
  with_client address @@ fun client2 ->
  expect_ok (Serve.Client.request client2 Serve.Protocol.ping_json)

(* --- deadlines ---------------------------------------------------------- *)

let test_deadlines () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  (* an already-expired admission deadline: rejected before execution,
     queue wait counted against the budget *)
  expect_reject ~code:"timeout" (do_match client ~timeout_ms:0 ());
  (* a generous one: unaffected *)
  let want, _ = oracle_strings (oracle ()) in
  let reply = do_match client ~timeout_ms:600_000 () in
  expect_ok reply;
  Alcotest.(check (list string)) "matches under a generous deadline" want
    (string_list reply "matches")

(* --- admission control -------------------------------------------------- *)

(* queue_capacity 0 turns every admission into a deterministic "busy":
   the backpressure path without scheduling races. *)
let test_backpressure_rejects () =
  in_temp_dir @@ fun dir ->
  with_server dir ~configure:(fun c -> { c with Serve.Server.queue_capacity = 0 })
  @@ fun server address ->
  with_client address @@ fun client ->
  expect_reject ~code:"busy" (do_match client ());
  expect_ok (Serve.Client.request client Serve.Protocol.ping_json);
  let c = Serve.Server.counters server in
  Alcotest.(check int) "rejection counted" 1 c.Serve.Server.c_rejected;
  Alcotest.(check int) "nothing admitted" 0 c.Serve.Server.c_accepted

(* --- concurrency soak --------------------------------------------------- *)

(* N client threads x M requests with randomized pacing, jobs and knobs
   per request.  Every reply must be ok and byte-identical to its
   oracle; afterwards the daemon's books must balance exactly:
   accepted = completed (monotone completion, nothing lost, nothing
   executed twice), queue drained, nothing in flight. *)
let test_concurrency_soak () =
  in_temp_dir @@ fun dir ->
  with_server dir ~configure:(fun c -> { c with Serve.Server.queue_capacity = 256 })
  @@ fun server address ->
  (* oracles first, daemon idle: two knob profiles exercised by the soak *)
  let want_default, _ = oracle_strings (oracle ()) in
  let want_strict, _ = oracle_strings (oracle ()) in
  ignore want_strict;
  let want_tau95, _ =
    let config = { Ctxmatch.Config.default with tau = 0.95; omega = 0.9; jobs = 1 } in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target:target_db in
    let r = Ctxmatch.Context_match.run ~config ~infer ~source:source_db ~target:target_db () in
    oracle_strings r
  in
  with_client address (fun c -> ignore (register c ()));
  let clients = 6 and per_client = 4 in
  let failures = Queue.create () in
  let fm = Mutex.create () in
  let worker k =
    let rng = Stats.Rng.create (1000 + k) in
    with_client address @@ fun client ->
    for i = 1 to per_client do
      Thread.delay (Stats.Rng.float rng 0.01);
      let strict = Stats.Rng.float rng 1.0 < 0.3 in
      let jobs = if Stats.Rng.float rng 1.0 < 0.5 then 1 else 2 in
      let reply =
        if strict then do_match client ~tau:0.95 ~omega:0.9 ~jobs ()
        else do_match client ~jobs ()
      in
      let want = if strict then want_tau95 else want_default in
      let got = try Ok (string_list reply "matches") with e -> Error e in
      (match got with
      | Ok matches when matches = want -> ()
      | Ok matches ->
        Mutex.lock fm;
        Queue.add
          (Printf.sprintf "client %d req %d: %d matches, wanted %d" k i (List.length matches)
             (List.length want))
          failures;
        Mutex.unlock fm
      | Error e ->
        Mutex.lock fm;
        Queue.add
          (Printf.sprintf "client %d req %d: %s on %s" k i (Printexc.to_string e)
             (Serve.Json.to_string reply))
          failures;
        Mutex.unlock fm)
    done
  in
  let threads = List.init clients (fun k -> Thread.create worker k) in
  List.iter Thread.join threads;
  Alcotest.(check (list string)) "no soak failures" [] (List.of_seq (Queue.to_seq failures));
  let c = Serve.Server.counters server in
  Alcotest.(check int) "all requests admitted (register + soak)"
    ((clients * per_client) + 1)
    c.Serve.Server.c_accepted;
  Alcotest.(check int) "accepted = completed" c.Serve.Server.c_accepted
    c.Serve.Server.c_completed;
  Alcotest.(check int) "queue drained" 0 c.Serve.Server.c_queue_depth;
  Alcotest.(check int) "nothing in flight" 0 c.Serve.Server.c_inflight;
  Alcotest.(check int) "no rejects at capacity 256" 0 c.Serve.Server.c_rejected

(* --- stats & obs -------------------------------------------------------- *)

let test_stats_request () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  expect_ok (do_match client ());
  let reply = Serve.Client.request client Serve.Protocol.stats_json in
  expect_ok reply;
  let stats = expect_field reply "stats" in
  Alcotest.(check int) "completed" 2 (int_field stats "completed");
  Alcotest.(check int) "rejected" 0 (int_field stats "rejected");
  Alcotest.(check int) "targets" 1 (int_field stats "targets");
  Alcotest.(check (list string)) "target names" [ "retail" ] (string_list reply "targets")

(* Obs metrics: with the recorder on, the daemon's counters must be
   consistent with its own books — and, like every other recorder
   consumer, invariant across the jobs knob. *)
let test_obs_metrics () =
  in_temp_dir @@ fun dir ->
  let run_with ~jobs =
    Obs.Recorder.enable ();
    Fun.protect ~finally:Obs.Recorder.disable @@ fun () ->
    with_server dir @@ fun _server address ->
    with_client address @@ fun client ->
    ignore (register client ());
    expect_ok (do_match client ~jobs ());
    expect_reject ~code:"timeout" (do_match client ~timeout_ms:0 ());
    let snap = Obs.Metrics.snapshot () in
    Obs.Metrics.reset ();
    ( Obs.Metrics.counter_value snap "serve.requests",
      Obs.Metrics.counter_value snap "serve.accepted",
      Obs.Metrics.counter_value snap "serve.completed",
      Obs.Metrics.counter_value snap "serve.rejected" )
  in
  let at1 = run_with ~jobs:1 in
  let at4 = run_with ~jobs:4 in
  Alcotest.(check (list int)) "recorder counters (requests, accepted, completed, rejected)"
    [ 3; 3; 3; 1 ]
    (let a, b, c, d = at1 in
     [ a; b; c; d ]);
  Alcotest.(check bool) "obs counters jobs-invariant" true (at1 = at4)

(* --- supervision: health & the circuit breaker -------------------------- *)

let health client = Serve.Client.request client Serve.Protocol.health_json

let breaker_of reply target =
  match Serve.Json.to_list_opt (expect_field reply "breakers") with
  | None -> Alcotest.fail "breakers is not a list"
  | Some l -> (
    match
      List.find_opt
        (fun b ->
          Serve.Json.to_string_opt (expect_field b "target") = Some target)
        l
    with
    | Some b -> b
    | None -> Alcotest.failf "no breaker for target %S" target)

let health_status reply =
  match Serve.Json.to_string_opt (expect_field reply "status") with
  | Some s -> s
  | None -> Alcotest.fail "health status is not a string"

let breaker_state b =
  match Serve.Json.to_string_opt (expect_field b "state") with
  | Some s -> s
  | None -> Alcotest.fail "breaker state is not a string"

(* A fresh daemon with a registered target reports healthy with a
   closed breaker; the payload carries the supervision evidence. *)
let test_health_request () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  expect_ok (do_match client ());
  let reply = health client in
  expect_ok reply;
  Alcotest.(check string) "healthy" "healthy" (health_status reply);
  let b = breaker_of reply "retail" in
  Alcotest.(check string) "breaker closed" "closed" (breaker_state b);
  Alcotest.(check int) "no failures" 0 (int_field b "failures");
  Alcotest.(check int) "no trips" 0 (int_field b "trips");
  let store = expect_field reply "store" in
  Alcotest.(check int) "no quarantines" 0 (int_field store "quarantined");
  Alcotest.(check int) "no flush failures" 0 (int_field store "flush_failures");
  Alcotest.(check int) "completed counted" 2 (int_field reply "completed")

(* The full breaker lifecycle: repeated total scoring failures trip it
   (structured degraded rejects while open), the cooldown admits a
   half-open trial, a failing trial re-opens, a succeeding one closes —
   and after recovery the serve answers are byte-identical to the
   oracle again. *)
let test_breaker_lifecycle () =
  in_temp_dir @@ fun dir ->
  let cooldown_ms = 600 in
  with_server dir
    ~configure:(fun c ->
      { c with Serve.Server.breaker_threshold = 2; breaker_cooldown_ms = cooldown_ms })
  @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  (* every source attribute quarantined: an ok reply, but empty —
     that is the breaker's "total scoring failure" signal *)
  let wreck = [ { Robust.Fault.site = Robust.Fault.Matcher_score; rate = 1.0; seed = 0 } ] in
  let wrecked = do_match client ~faults:wreck () in
  expect_ok wrecked;
  Alcotest.(check (list string)) "wrecked run matches nothing" []
    (string_list wrecked "matches");
  Alcotest.(check bool) "wrecked run carries issues" true
    (string_list wrecked "issues" <> []);
  let h = health client in
  Alcotest.(check string) "one failure: still closed" "closed"
    (breaker_state (breaker_of h "retail"));
  expect_ok (do_match client ~faults:wreck ());
  (* threshold 2 reached: open — clean requests are rejected without
     being scored, and health says degraded *)
  expect_reject ~code:"degraded" (do_match client ());
  let h = health client in
  Alcotest.(check string) "degraded while open" "degraded" (health_status h);
  let b = breaker_of h "retail" in
  Alcotest.(check string) "breaker open" "open" (breaker_state b);
  Alcotest.(check int) "one trip" 1 (int_field b "trips");
  (* cooldown, then a FAILING half-open trial: straight back to open *)
  Thread.delay (float_of_int cooldown_ms /. 1000.0 +. 0.2);
  expect_ok (do_match client ~faults:wreck ());
  expect_reject ~code:"degraded" (do_match client ());
  Alcotest.(check int) "re-tripped" 2 (int_field (breaker_of (health client) "retail") "trips");
  (* cooldown, then a SUCCEEDING trial: closed, healthy, and the
     served answer is the oracle's again *)
  Thread.delay (float_of_int cooldown_ms /. 1000.0 +. 0.2);
  let want, _ = oracle_strings (oracle ()) in
  let reply = do_match client () in
  expect_ok reply;
  Alcotest.(check (list string)) "recovered answers identical" want
    (string_list reply "matches");
  let h = health client in
  Alcotest.(check string) "healthy after recovery" "healthy" (health_status h);
  let b = breaker_of h "retail" in
  Alcotest.(check string) "breaker closed again" "closed" (breaker_state b);
  Alcotest.(check int) "failures reset" 0 (int_field b "failures");
  Alcotest.(check int) "trips are history" 2 (int_field b "trips");
  (* deadline expiry must NOT count as a breaker failure *)
  expect_reject ~code:"timeout" (do_match client ~timeout_ms:0 ());
  Alcotest.(check string) "timeout leaves the breaker closed" "closed"
    (breaker_state (breaker_of (health client) "retail"))

(* Re-registering a target replaces its breaker: an operator's way to
   reset supervision state after fixing the underlying cause. *)
let test_reregister_resets_breaker () =
  in_temp_dir @@ fun dir ->
  with_server dir
    ~configure:(fun c ->
      { c with Serve.Server.breaker_threshold = 1; breaker_cooldown_ms = 3_600_000 })
  @@ fun _server address ->
  with_client address @@ fun client ->
  ignore (register client ());
  let wreck = [ { Robust.Fault.site = Robust.Fault.Matcher_score; rate = 1.0; seed = 0 } ] in
  expect_ok (do_match client ~faults:wreck ());
  expect_reject ~code:"degraded" (do_match client ());
  ignore (register client ());
  let reply = do_match client () in
  expect_ok reply;
  Alcotest.(check string) "fresh breaker closed" "closed"
    (breaker_state (breaker_of (health client) "retail"))

(* --- graceful shutdown -------------------------------------------------- *)

(* In-process: a shutdown request drains, the run thread returns, the
   socket file disappears, and the admission path refuses late work. *)
let test_shutdown_drains () =
  in_temp_dir @@ fun dir ->
  let path = fresh_socket dir in
  let address = Serve.Server.Unix_sock path in
  let server = Serve.Server.create (Serve.Server.default_config address) in
  let thread = Serve.Server.start server in
  with_client address (fun client ->
      ignore (register client ());
      expect_ok (do_match client ());
      let reply = Serve.Client.request client Serve.Protocol.shutdown_json in
      expect_ok reply);
  Thread.join thread;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
  let c = Serve.Server.counters server in
  Alcotest.(check int) "drained: accepted = completed" c.Serve.Server.c_accepted
    c.Serve.Server.c_completed

(* A second daemon on a LIVE socket must refuse to start; a STALE
   socket file (dead daemon) must be reclaimed. *)
let test_bind_conflict_and_stale_reclaim () =
  in_temp_dir @@ fun dir ->
  let path = fresh_socket dir in
  let address = Serve.Server.Unix_sock path in
  with_server dir ~configure:(fun c -> { c with Serve.Server.address }) (fun _server _address ->
      match Serve.Server.create (Serve.Server.default_config address) with
      | _ -> Alcotest.fail "second daemon bound a live socket"
      | exception Serve.Server.Bind_error _ -> ());
  (* leave a stale socket file behind, as a crashed daemon would *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  Alcotest.(check bool) "stale socket file exists" true (Sys.file_exists path);
  with_server dir ~configure:(fun c -> { c with Serve.Server.address }) (fun _server _address ->
      with_client address (fun client ->
          expect_ok (Serve.Client.request client Serve.Protocol.ping_json)))

(* --- the real executable: signals and exit codes ------------------------ *)

let run_capture cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* SIGTERM to the real `ctxmatch serve`: drains, prints its summary,
   exits 0.  SIGINT likewise. *)
let test_sigterm_drains () =
  List.iter
    (fun signal ->
      in_temp_dir @@ fun dir ->
      let path = Filename.concat dir "d.sock" in
      let log = Filename.concat dir "serve.log" in
      let pid =
        Unix.create_process "sh"
          [|
            "sh"; "-c"; Printf.sprintf "exec %s serve --socket %s > %s 2>&1" cli path log;
          |]
          Unix.stdin Unix.stdout Unix.stderr
      in
      let address = Serve.Server.Unix_sock path in
      with_client address (fun client ->
          expect_ok (Serve.Client.request client Serve.Protocol.ping_json));
      Unix.kill pid signal;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool)
        (Printf.sprintf "signal %d: clean exit" signal)
        true
        (status = Unix.WEXITED 0);
      let ic = open_in log in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Alcotest.(check bool) "drain summary printed" true (contains text "# drained:");
      Alcotest.(check bool) "socket removed" false (Sys.file_exists path))
    [ Sys.sigterm; Sys.sigint ]

(* Bind failure through the executable: exit code 5 with a one-line
   diagnostic, per the CLI's error-code taxonomy. *)
let test_bind_failure_exit_code () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  let path = match address with Serve.Server.Unix_sock p -> p | _ -> assert false in
  let status, output = run_capture (Printf.sprintf "%s serve --socket %s" cli path) in
  Alcotest.(check bool) "exit code 5" true (status = Unix.WEXITED 5);
  Alcotest.(check bool) "diagnostic mentions the address" true (contains output path)

(* Mutually-exclusive/missing address flags: usage error, exit 2. *)
let test_address_usage_errors () =
  let status, _ = run_capture (Printf.sprintf "%s serve" cli) in
  Alcotest.(check bool) "no address: exit 2" true (status = Unix.WEXITED 2);
  let status, _ = run_capture (Printf.sprintf "%s serve --socket /tmp/x --port 1234" cli) in
  Alcotest.(check bool) "both addresses: exit 2" true (status = Unix.WEXITED 2)

(* `ctxmatch client` one-off commands against a served daemon. *)
let test_cli_client_roundtrip () =
  in_temp_dir @@ fun dir ->
  with_server dir @@ fun _server address ->
  let path = match address with Serve.Server.Unix_sock p -> p | _ -> assert false in
  let status, output = run_capture (Printf.sprintf "%s client --socket %s ping" cli path) in
  Alcotest.(check bool) "client ping exits 0" true (status = Unix.WEXITED 0);
  Alcotest.(check bool) "pong" true (contains output "\"pong\":true");
  let status, output = run_capture (Printf.sprintf "%s client --socket %s stats" cli path) in
  Alcotest.(check bool) "client stats exits 0" true (status = Unix.WEXITED 0);
  Alcotest.(check bool) "stats payload" true (contains output "\"queue_capacity\"")

let () =
  (* a broken pipe from a disconnecting test client must not kill the
     test binary either *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "differential",
        [
          Alcotest.test_case "daemon = one-shot across jobs x kernel" `Slow
            test_differential_identity;
          Alcotest.test_case "knobs do not stick to the prepared target" `Quick
            test_knobs_do_not_stick;
          Alcotest.test_case "issue payloads identical (faults, lenient ingest)" `Slow
            test_issue_payload_identity;
          Alcotest.test_case "warm store: identical matches, zero rebuilds" `Slow
            test_warm_store_identity;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "malformed requests get structured rejects" `Quick
            test_protocol_robustness;
          Alcotest.test_case "truncated line + disconnect" `Quick test_truncated_then_disconnect;
          Alcotest.test_case "per-request deadlines include queue wait" `Quick test_deadlines;
          Alcotest.test_case "bounded queue rejects when full" `Quick test_backpressure_rejects;
          Alcotest.test_case "stats request" `Quick test_stats_request;
          Alcotest.test_case "obs counters consistent and jobs-invariant" `Slow test_obs_metrics;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "health request" `Quick test_health_request;
          Alcotest.test_case "breaker trips, rejects degraded, recovers" `Slow
            test_breaker_lifecycle;
          Alcotest.test_case "re-register resets the breaker" `Quick
            test_reregister_resets_breaker;
        ] );
      ( "soak",
        [ Alcotest.test_case "concurrent clients, randomized knobs" `Slow test_concurrency_soak ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown request drains and cleans up" `Quick test_shutdown_drains;
          Alcotest.test_case "live socket refused, stale socket reclaimed" `Quick
            test_bind_conflict_and_stale_reclaim;
          Alcotest.test_case "SIGTERM/SIGINT drain the real daemon" `Quick test_sigterm_drains;
          Alcotest.test_case "bind failure exits 5" `Quick test_bind_failure_exit_code;
          Alcotest.test_case "address flag usage errors exit 2" `Quick test_address_usage_errors;
          Alcotest.test_case "ctxmatch client one-off commands" `Quick test_cli_client_roundtrip;
        ] );
    ]
