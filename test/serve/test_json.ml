(* Serve.Json edge cases.

   The daemon trusts this codec with every byte a client sends, so the
   suite leans on the inputs that break hand-rolled JSON parsers:
   surrogate pairs (valid, lone, and inverted), deep nesting, numeric
   limits, escape handling, and a qcheck round-trip property over
   randomly generated values. *)

module Json = Serve.Json

let parses s = match Json.parse s with _ -> true | exception Json.Parse_error _ -> false

let check_rejects name inputs =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%s: %S rejected" name s) false (parses s))
    inputs

(* --- unicode escapes ---------------------------------------------------- *)

let test_unicode_escapes () =
  (* BMP code point: 2-byte UTF-8 *)
  Alcotest.(check bool) "latin-1 escape" true
    (Json.parse "\"\\u00e9\"" = Json.String "\xc3\xa9");
  (* 3-byte UTF-8 *)
  Alcotest.(check bool) "CJK escape" true
    (Json.parse "\"\\u4e2d\"" = Json.String "\xe4\xb8\xad");
  (* surrogate pair: one astral code point, 4-byte UTF-8 *)
  Alcotest.(check bool) "surrogate pair folds to U+1F600" true
    (Json.parse "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80");
  (* NUL escape round-trips as a real byte *)
  Alcotest.(check bool) "escaped NUL" true (Json.parse "\"\\u0000\"" = Json.String "\x00");
  check_rejects "surrogate abuse"
    [
      "\"\\ud83d\"" (* lone high surrogate *);
      "\"\\ud83d \"" (* high surrogate followed by a plain char *);
      "\"\\ud83d\\u0041\"" (* high surrogate + non-surrogate escape *);
      "\"\\ude00\"" (* lone low surrogate *);
      "\"\\ude00\\ud83d\"" (* inverted pair *);
      "\"\\ud83d\\ud83d\"" (* high + high *);
      "\"\\uD8\"" (* truncated escape *);
      "\"\\uzzzz\"" (* non-hex digits *);
    ]

let test_escape_handling () =
  Alcotest.(check bool) "standard escapes" true
    (Json.parse "\"a\\\"b\\\\c\\/d\\be\\ff\\ng\\rh\\ti\""
    = Json.String "a\"b\\c/d\be\012f\ng\rh\ti");
  check_rejects "bad escapes" [ "\"\\x41\""; "\"\\q\""; "\"abc" (* unterminated *) ];
  (* control characters must be escaped when printing, so a rendered
     value never breaks the line-delimited protocol *)
  let rendered = Json.to_string (Json.String "line1\nline2\x01") in
  Alcotest.(check bool) "no raw newline in rendering" true
    (not (String.contains rendered '\n'));
  Alcotest.(check bool) "rendering re-parses" true
    (Json.parse rendered = Json.String "line1\nline2\x01")

(* --- nesting ------------------------------------------------------------ *)

(* 1000 levels is far beyond any real request and must still parse —
   the daemon caps request size, not nesting, so the parser has to
   handle whatever fits in a line. *)
let test_deep_nesting () =
  let depth = 1000 in
  let deep_list =
    String.make depth '[' ^ "1" ^ String.make depth ']'
  in
  let rec unwrap v n =
    if n = 0 then v = Json.Int 1
    else match v with Json.List [ inner ] -> unwrap inner (n - 1) | _ -> false
  in
  Alcotest.(check bool) "1000-deep list parses" true (unwrap (Json.parse deep_list) depth);
  let deep_obj =
    String.concat "" (List.init depth (fun _ -> "{\"k\":")) ^ "null" ^ String.make depth '}'
  in
  Alcotest.(check bool) "1000-deep object parses" true
    (match Json.parse deep_obj with Json.Obj [ ("k", _) ] -> true | _ -> false);
  (* unbalanced nesting fails cleanly *)
  check_rejects "unbalanced" [ String.make 50 '['; "{\"k\":{\"k\":}}"; "[[1,2],]" ]

(* --- numbers ------------------------------------------------------------ *)

let test_numbers () =
  Alcotest.(check bool) "max_int" true (Json.parse (string_of_int max_int) = Json.Int max_int);
  Alcotest.(check bool) "min_int" true (Json.parse (string_of_int min_int) = Json.Int min_int);
  Alcotest.(check bool) "negative zero float" true
    (match Json.parse "-0.0" with Json.Float f -> 1.0 /. f = neg_infinity | _ -> false);
  Alcotest.(check bool) "exponent form" true
    (match Json.parse "1.5e3" with Json.Float f -> f = 1500.0 | _ -> false);
  (* non-finite floats render as null (JSON has no spelling for them) *)
  Alcotest.(check string) "nan renders null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf renders null" "null"
    (Json.to_string (Json.Float Float.infinity));
  check_rejects "number junk" [ "01"; "1."; ".5"; "+1"; "1e"; "--1"; "0x10" ]

let test_toplevel_junk () =
  check_rejects "top-level junk" [ ""; " "; "true false"; "{} []"; "1 2"; "{\"a\":1} trailing" ]

(* --- qcheck round-trip --------------------------------------------------- *)

(* Any value the generator can build must survive to_string/parse
   bit-for-bit.  Strings are printable-ASCII: the codec stores raw
   bytes, so non-UTF-8 inputs are the caller's business — the protocol
   only ever renders what it parsed or built itself. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) small_signed_int;
        (* floats from raw bits would include nan/inf, which
           deliberately do not round-trip; draw a finite range *)
        map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 0 8)) (value (depth - 1)))) );
        ]
  in
  value 3

let qcheck_roundtrip =
  QCheck.Test.make ~name:"to_string |> parse round-trips" ~count:1000 (QCheck.make json_gen)
    (fun v ->
      match Json.parse (Json.to_string v) with
      | parsed -> parsed = v
      | exception Json.Parse_error _ -> false)

let qcheck_rendering_single_line =
  QCheck.Test.make ~name:"rendering never emits a raw newline" ~count:1000
    (QCheck.make json_gen) (fun v -> not (String.contains (Json.to_string v) '\n'))

let () =
  Alcotest.run "ctxmatch-serve-json"
    [
      ( "json",
        [
          Alcotest.test_case "unicode escapes & surrogates" `Quick test_unicode_escapes;
          Alcotest.test_case "escape handling" `Quick test_escape_handling;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "number limits" `Quick test_numbers;
          Alcotest.test_case "top-level junk" `Quick test_toplevel_junk;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_rendering_single_line;
        ] );
    ]
