(* Differential fault-injection suite (DESIGN.md, "Failure semantics").

   Every test arms deterministic faults (Robust.Fault) somewhere in the
   pipeline and proves the two containment invariants:

   - an injected fault NEVER crashes a run: it quarantines one unit of
     work (a source attribute, a candidate view, a CSV row, a file) and
     surfaces as an issue in the partial result's report;
   - because fault decisions hash (seed, site, key) and never depend on
     scheduling, the surviving partial result AND the issue list are
     bit-identical at every jobs value — the same differential oracle
     test_parallel_equiv applies to clean runs;

   plus the converse: arming sites at rate 0.0 is byte-identical to not
   arming anything at all. *)

let fp_match (m : Matching.Schema_match.t) =
  Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
    m.tgt_attr
    (Relational.Condition.to_string m.condition)
    m.confidence

let fp_issue = Robust.Error.to_string

let fingerprint (r : Ctxmatch.Context_match.result) =
  String.concat "\n"
    (("matches:" :: List.map fp_match r.Ctxmatch.Context_match.matches)
    @ ("standard:" :: List.map fp_match r.Ctxmatch.Context_match.standard)
    @ (Printf.sprintf "views:%d" r.Ctxmatch.Context_match.candidate_view_count
      :: "issues:" :: List.map fp_issue r.Ctxmatch.Context_match.issues))

(* 1, a fixed parallel width, and whatever this host recommends *)
let all_jobs = List.sort_uniq compare [ 1; 2; Domain.recommended_domain_count () ]

let retail_run ?(faults = []) ?timeout_ms ~jobs () =
  let params = { Workload.Retail.default_params with rows = 120; target_rows = 60; seed = 42 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let config = { Ctxmatch.Config.default with jobs; faults; timeout_ms } in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  Ctxmatch.Context_match.run ~config ~infer ~source ~target ()

(* Shared skeleton: armed site -> partial result + non-empty identical
   issues at every jobs value, and never an escaped exception. *)
let check_site_differential site =
  let faults = [ { Robust.Fault.site; rate = 0.35; seed = 1 } ] in
  let name = Robust.Fault.site_name site in
  let oracle = retail_run ~faults ~jobs:1 () in
  Alcotest.(check bool)
    (name ^ ": faults actually fired")
    true
    (oracle.Ctxmatch.Context_match.issues <> []);
  let oracle_fp = fingerprint oracle in
  List.iter
    (fun jobs ->
      let r = retail_run ~faults ~jobs () in
      Alcotest.(check string)
        (Printf.sprintf "%s: jobs=%d identical to sequential (result + issues)" name jobs)
        oracle_fp (fingerprint r))
    all_jobs

let test_matcher_score_faults () = check_site_differential Robust.Fault.Matcher_score
let test_pool_task_faults () = check_site_differential Robust.Fault.Pool_task
let test_memo_faults () = check_site_differential Robust.Fault.Memo_lookup

(* Arming at rate 0.0 must be a perfect no-op: byte-identical result,
   empty issue list. *)
let test_rate_zero_is_clean () =
  let clean = retail_run ~jobs:2 () in
  Alcotest.(check bool) "clean run has no issues" true
    (clean.Ctxmatch.Context_match.issues = []);
  let armed_zero =
    retail_run
      ~faults:
        (List.map
           (fun site -> { Robust.Fault.site; rate = 0.0; seed = 1 })
           Robust.Fault.all_sites)
      ~jobs:2 ()
  in
  Alcotest.(check string) "rate 0.0 everywhere = unarmed" (fingerprint clean)
    (fingerprint armed_zero)

(* timeout_ms = Some 0: the deadline is expired before the first scoring
   unit starts, so EVERY unit is quarantined — the run completes with a
   (maximally) partial result and a full report, never an exception. *)
let test_timeout_zero_degrades () =
  List.iter
    (fun jobs ->
      let r = retail_run ~timeout_ms:0 ~jobs () in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: expiry reported" jobs)
        true
        (r.Ctxmatch.Context_match.issues <> []);
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d: no units survive an expired deadline" jobs)
        []
        (List.map fp_match r.Ctxmatch.Context_match.matches))
    all_jobs

(* --- CSV ingestion sites ---------------------------------------------- *)

let retail_csv () =
  let params = { Workload.Retail.default_params with rows = 80; seed = 42 } in
  let table =
    Relational.Database.table (Workload.Retail.source params)
      Workload.Retail.source_table_name
  in
  (Relational.Csv_io.table_to_csv table, Relational.Table.row_count table)

let test_csv_parse_faults () =
  let csv, total = retail_csv () in
  let armings = [ { Robust.Fault.site = Robust.Fault.Csv_parse; rate = 0.3; seed = 7 } ] in
  let lenient () =
    Robust.Fault.with_armed armings @@ fun () ->
    Relational.Csv_io.table_of_csv_report ~mode:Relational.Csv_io.Lenient ~name:"inv" csv
  in
  let table, issues = lenient () in
  let kept = Relational.Table.row_count table in
  Alcotest.(check bool) "some rows quarantined" true (issues <> []);
  Alcotest.(check int) "every row accounted for" total (kept + List.length issues);
  List.iter
    (fun (i : Robust.Error.t) ->
      Alcotest.(check bool) "issue carries its line number" true (i.Robust.Error.line <> None))
    issues;
  (* seed-determinism: the same faults fire on a second pass *)
  let table', issues' = lenient () in
  Alcotest.(check string) "lenient re-ingestion is deterministic"
    (Relational.Csv_io.table_to_csv table)
    (Relational.Csv_io.table_to_csv table');
  Alcotest.(check (list string)) "same issues" (List.map fp_issue issues)
    (List.map fp_issue issues');
  (* strict mode propagates the injected fault instead of quarantining *)
  Alcotest.(check bool) "strict re-raises" true
    (try
       Robust.Fault.with_armed armings (fun () ->
           ignore (Relational.Csv_io.table_of_csv ~name:"inv" csv));
       false
     with Robust.Fault.Injected _ -> true)

let test_file_read_faults () =
  let csv, _ = retail_csv () in
  let path = Filename.temp_file "ctxmatch_fault" ".csv" in
  let oc = open_out path in
  output_string oc csv;
  close_out oc;
  let armings = [ { Robust.Fault.site = Robust.Fault.File_read; rate = 1.0; seed = 0 } ] in
  (* rate 1.0: every attempt fails, the retries are exhausted *)
  Alcotest.(check bool) "strict read raises after retries" true
    (try
       Robust.Fault.with_armed armings (fun () ->
           ignore (Relational.Csv_io.table_of_file ~name:"inv" path));
       false
     with Robust.Fault.Injected _ -> true);
  let table, issues =
    Robust.Fault.with_armed armings (fun () ->
        Relational.Csv_io.table_of_file_report ~mode:Relational.Csv_io.Lenient ~name:"inv"
          path)
  in
  Sys.remove path;
  Alcotest.(check int) "lenient: empty table" 0 (Relational.Table.row_count table);
  Alcotest.(check bool) "lenient: one fatal issue" true
    (match issues with
    | [ i ] -> i.Robust.Error.severity = Robust.Error.Fatal
    | _ -> false);
  (* a fault-free read retries its way past nothing and succeeds *)
  let path2 = Filename.temp_file "ctxmatch_fault" ".csv" in
  let oc = open_out path2 in
  output_string oc csv;
  close_out oc;
  let clean = Relational.Csv_io.table_of_file ~name:"inv" path2 in
  Sys.remove path2;
  Alcotest.(check bool) "clean read loads" true (Relational.Table.row_count clean > 0)

(* --- pool-level unit tests -------------------------------------------- *)

let test_pool_results_containment () =
  List.iter
    (fun jobs ->
      let pool = Runtime.Pool.create ~jobs in
      let r =
        Runtime.Pool.parallel_init_results pool 23 (fun i ->
            if i mod 3 = 0 then failwith "boom" else i * i)
      in
      Array.iteri
        (fun i slot ->
          match slot with
          | Ok v ->
            Alcotest.(check bool) "ok slot" true (i mod 3 <> 0 && v = i * i)
          | Error (Failure m) when m = "boom" ->
            Alcotest.(check bool) "error slot" true (i mod 3 = 0)
          | Error e -> Alcotest.failf "unexpected error %s" (Printexc.to_string e))
        r;
      let l =
        Runtime.Pool.map_list_results pool
          (fun s -> if s = "bad" then raise Exit else String.length s)
          [ "a"; "bad"; "ccc" ]
      in
      Alcotest.(check bool) "list slots" true
        (match l with [ Ok 1; Error Exit; Ok 3 ] -> true | _ -> false);
      Runtime.Pool.shutdown pool)
    all_jobs

let test_pool_deadline () =
  let pool = Runtime.Pool.create ~jobs:2 in
  let deadline = Robust.Deadline.after_ms 0 in
  let r = Runtime.Pool.parallel_init_results pool ~deadline 8 (fun i -> i) in
  Array.iter
    (fun slot ->
      Alcotest.(check bool) "expired slot" true
        (match slot with Error (Robust.Deadline.Expired _) -> true | _ -> false))
    r;
  Runtime.Pool.shutdown pool

(* the per-key decision must be a pure function of (seed, site, key) *)
let test_fault_decisions_are_stable () =
  let keys = List.init 100 string_of_int in
  let fired () =
    Robust.Fault.with_armed
      [ { Robust.Fault.site = Robust.Fault.Pool_task; rate = 0.5; seed = 3 } ]
      (fun () ->
        List.filter
          (fun key ->
            match Robust.Fault.check Robust.Fault.Pool_task ~key with
            | () -> false
            | exception Robust.Fault.Injected _ -> true)
          keys)
  in
  let a = fired () in
  Alcotest.(check bool) "rate 0.5 fires some, spares some" true
    (a <> [] && List.length a < List.length keys);
  Alcotest.(check (list string)) "same decisions on re-arm" a (fired ());
  Alcotest.(check bool) "disarmed after with_armed" false
    (Robust.Fault.armed Robust.Fault.Pool_task)

(* --- armed-set concurrency --------------------------------------------- *)

(* The armed set is one Atomic.t mutated through a CAS retry loop:
   domains arming/disarming *different* sites concurrently must never
   lose each other's updates (a plain read-modify-write would). *)
let test_concurrent_arming_loses_nothing () =
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  let sites = Array.of_list Robust.Fault.all_sites in
  let n = Array.length sites in
  let domains =
    Array.mapi
      (fun i site ->
        Domain.spawn (fun () ->
            (* churn: repeatedly arm and disarm my own site... *)
            for round = 1 to 200 do
              Robust.Fault.arm ~rate:0.5 ~seed:round site;
              Robust.Fault.disarm site
            done;
            (* ...and leave it armed with a recognisable seed *)
            Robust.Fault.arm ~rate:1.0 ~seed:(1000 + i) site))
      sites
  in
  Array.iter Domain.join domains;
  Array.iter
    (fun site ->
      Alcotest.(check bool)
        (Robust.Fault.site_name site ^ " survived concurrent churn")
        true (Robust.Fault.armed site))
    sites;
  (* and with_armed restores only its own overlay *)
  Robust.Fault.with_armed
    [ { Robust.Fault.site = sites.(0); rate = 0.1; seed = 9 } ]
    (fun () -> ());
  Alcotest.(check int) "every site still armed after with_armed" n
    (Array.fold_left
       (fun acc site -> if Robust.Fault.armed site then acc + 1 else acc)
       0 sites)

(* --- behaviours & --fault spec parsing ---------------------------------- *)

let test_behaviours () =
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  (* latency: check burns the delay and returns instead of raising *)
  Robust.Fault.arm ~rate:1.0 ~seed:0 ~behaviour:(Robust.Fault.Latency_ms 1)
    Robust.Fault.Memo_lookup;
  Alcotest.(check unit) "latency behaviour never raises" ()
    (Robust.Fault.check Robust.Fault.Memo_lookup ~key:"k");
  (* torn write at a non-write site degrades to a raise *)
  Robust.Fault.arm ~rate:1.0 ~seed:0 ~behaviour:(Robust.Fault.Torn_write 0.5)
    Robust.Fault.Pool_task;
  Alcotest.(check bool) "torn at a non-write site raises" true
    (try
       Robust.Fault.check Robust.Fault.Pool_task ~key:"k";
       false
     with Robust.Fault.Injected _ -> true);
  (* fire exposes the decision without acting on it *)
  Alcotest.(check bool) "fire reports the armed behaviour" true
    (match Robust.Fault.fire Robust.Fault.Pool_task ~key:"k" with
    | Some (Robust.Fault.Torn_write f) -> f = 0.5
    | _ -> false);
  Alcotest.(check bool) "unarmed site never fires" true
    (Robust.Fault.fire Robust.Fault.Csv_parse ~key:"k" = None)

let test_spec_parsing () =
  let ok s = match Robust.Fault.spec_of_string s with Ok v -> v | Error e -> Alcotest.fail e in
  let site, rate, seed, behaviour = ok "store-shard-write:0.25:7:torn=0.5" in
  Alcotest.(check string) "site" "store-shard-write" (Robust.Fault.site_name site);
  Alcotest.(check (float 0.0)) "rate" 0.25 rate;
  Alcotest.(check int) "seed" 7 seed;
  Alcotest.(check string) "behaviour" "torn=0.5" (Robust.Fault.behaviour_name behaviour);
  let _, rate, seed, behaviour = ok "socket-read" in
  Alcotest.(check (float 0.0)) "default rate" 1.0 rate;
  Alcotest.(check int) "default seed" 0 seed;
  Alcotest.(check string) "default behaviour" "raise" (Robust.Fault.behaviour_name behaviour);
  let _, _, _, behaviour = ok "memo-lookup:0.1:3:latency=25" in
  Alcotest.(check string) "latency behaviour" "latency=25"
    (Robust.Fault.behaviour_name behaviour);
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true
        (match Robust.Fault.spec_of_string bad with Error _ -> true | Ok _ -> false))
    [ "no-such-site"; "csv-parse:nope"; "csv-parse:2.0"; "csv-parse:0.5:x"; "csv-parse:0.5:1:sideways"; "csv-parse:0.5:1:torn=2.0"; "" ];
  (* arm_spec arms exactly what it parsed *)
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  (match Robust.Fault.arm_spec "file-read:1.0:4" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "arm_spec armed the site" true
    (Robust.Fault.armed Robust.Fault.File_read)

(* The new I/O sites obey the same stable-decision contract as the
   pipeline sites: pure function of (seed, site, key), site-distinct. *)
let test_io_site_decisions_stable () =
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  let keys = List.init 200 (fun i -> Printf.sprintf "shard-%04d.dat" i) in
  let fired site =
    Robust.Fault.disarm_all ();
    Robust.Fault.arm ~rate:0.4 ~seed:11 site;
    List.filter
      (fun key ->
        match Robust.Fault.fire site ~key with Some _ -> true | None -> false)
      keys
  in
  let w = fired Robust.Fault.Store_shard_write in
  let r = fired Robust.Fault.Store_shard_read in
  Alcotest.(check bool) "partial firing" true
    (w <> [] && List.length w < List.length keys);
  Alcotest.(check (list string)) "write decisions replay" w
    (fired Robust.Fault.Store_shard_write);
  Alcotest.(check bool) "sites decide independently" true (w <> r)

let () =
  Alcotest.run "ctxmatch-faults"
    [
      ( "faults",
        [
          Alcotest.test_case "pool results containment" `Quick test_pool_results_containment;
          Alcotest.test_case "pool deadline" `Quick test_pool_deadline;
          Alcotest.test_case "fault decisions stable" `Quick test_fault_decisions_are_stable;
          Alcotest.test_case "concurrent arming loses nothing" `Quick
            test_concurrent_arming_loses_nothing;
          Alcotest.test_case "behaviours" `Quick test_behaviours;
          Alcotest.test_case "--fault spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "I/O site decisions stable" `Quick test_io_site_decisions_stable;
          Alcotest.test_case "csv-parse faults" `Quick test_csv_parse_faults;
          Alcotest.test_case "file-read faults" `Quick test_file_read_faults;
          Alcotest.test_case "rate 0.0 = clean" `Slow test_rate_zero_is_clean;
          Alcotest.test_case "timeout 0 degrades" `Slow test_timeout_zero_degrades;
          Alcotest.test_case "matcher-score differential" `Slow test_matcher_score_faults;
          Alcotest.test_case "pool-task differential" `Slow test_pool_task_faults;
          Alcotest.test_case "memo-lookup differential" `Slow test_memo_faults;
        ] );
    ]
