(* Persistent profile store: serialisation roundtrips, crash safety
   (truncated shards, stale format versions, data-digest mismatches all
   quarantine-and-rebuild, never raise), and the end-to-end warm-start
   guarantee — a second run over unchanged inputs recomputes nothing
   and produces byte-identical matches. *)

open Relational

let in_temp_dir f =
  let dir = Filename.temp_file "ctxstore" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let key ~table ~attr =
  { Store.table; attr; subset = "sub"; data = "data" }

let sample_profile () =
  Textsim.Profile.of_strings_array [| "alpha"; "beta"; "gamma, delta" |]

let sample_summary () =
  Stats.Descriptive.summarize [| 1.5; 2.25; -3.0; 1e100; 0.1 |]

(* --- roundtrip --------------------------------------------------------- *)

let test_roundtrip () =
  in_temp_dir @@ fun dir ->
  let s = Store.open_dir dir in
  let p = sample_profile () in
  let sm = sample_summary () in
  let d = [ "a"; "weird \"value\"\nwith newline"; "z" ] in
  Store.add_profile s (key ~table:"T" ~attr:"a") p;
  Store.add_summary s (key ~table:"T" ~attr:"b") sm;
  Store.add_distinct s (key ~table:"T" ~attr:"c") d;
  Store.flush s;
  let s2 = Store.open_dir dir in
  (match Store.find_profile s2 (key ~table:"T" ~attr:"a") with
  | None -> Alcotest.fail "profile lost"
  | Some p2 ->
    Alcotest.(check int) "q" (Textsim.Profile.q p) (Textsim.Profile.q p2);
    Alcotest.(check int) "total" (Textsim.Profile.total p) (Textsim.Profile.total p2);
    Alcotest.(check bool) "counts identical" true
      (Textsim.Profile.counts p = Textsim.Profile.counts p2);
    (* the warm-start guarantee hinges on this: bit-identical scores *)
    Alcotest.(check bool) "cosine bit-identical" true
      (Textsim.Profile.cosine p p = Textsim.Profile.cosine p2 p2));
  (match Store.find_summary s2 (key ~table:"T" ~attr:"b") with
  | None -> Alcotest.fail "summary lost"
  | Some sm2 -> Alcotest.(check bool) "summary bit-identical" true (sm = sm2));
  (match Store.find_distinct s2 (key ~table:"T" ~attr:"c") with
  | None -> Alcotest.fail "distinct lost"
  | Some d2 -> Alcotest.(check (list string)) "distinct values" d d2);
  Alcotest.(check bool) "misses on an absent key" true
    (Store.find_profile s2 (key ~table:"T" ~attr:"zzz") = None);
  let st = Store.stats s2 in
  Alcotest.(check int) "no quarantines" 0 st.Store.st_quarantined

let test_nonfinite_summary_roundtrip () =
  in_temp_dir @@ fun dir ->
  let s = Store.open_dir dir in
  (* empty summary carries nan min/max; %h must round-trip them *)
  Store.add_summary s (key ~table:"T" ~attr:"e") Stats.Descriptive.empty_summary;
  Store.flush s;
  let s2 = Store.open_dir dir in
  match Store.find_summary s2 (key ~table:"T" ~attr:"e") with
  | None -> Alcotest.fail "summary lost"
  | Some sm ->
    Alcotest.(check int) "n" 0 sm.Stats.Descriptive.n;
    Alcotest.(check bool) "nan min survives" true (Float.is_nan sm.Stats.Descriptive.min);
    Alcotest.(check bool) "nan max survives" true (Float.is_nan sm.Stats.Descriptive.max)

(* --- crash safety ------------------------------------------------------ *)

let shard_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".dat")
  |> List.sort compare

let populate dir =
  let s = Store.open_dir dir in
  for i = 0 to 19 do
    Store.add_profile s (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)) (sample_profile ())
  done;
  Store.flush s

let truncate_file path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub text 0 (String.length text / 2)))

let check_quarantined ~expect_issue dir f =
  populate dir;
  let before = shard_files dir in
  Alcotest.(check bool) "some shards written" true (before <> []);
  f (Filename.concat dir (List.hd before));
  let report = Robust.Report.create () in
  let s = Store.open_dir ~report dir in
  (* force every shard to load *)
  let found = ref 0 in
  for i = 0 to 19 do
    match Store.find_profile s (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)) with
    | Some _ -> incr found
    | None -> ()
  done;
  let st = Store.stats s in
  Alcotest.(check bool) "damaged shard quarantined" true (st.Store.st_quarantined >= 1);
  Alcotest.(check bool) "other shards still serve" true (!found > 0 && !found < 20);
  Alcotest.(check bool) "quarantined file set aside" true
    (Sys.readdir dir |> Array.exists (fun x -> Filename.check_suffix x ".quarantined"));
  if expect_issue then begin
    match Store.issues s with
    | [] -> Alcotest.fail "no issue recorded"
    | issue :: _ ->
      Alcotest.(check string) "store stage" "store" (Robust.Error.stage_name issue.Robust.Error.stage);
      Alcotest.(check bool) "warning severity" true
        (issue.Robust.Error.severity = Robust.Error.Warning);
      Alcotest.(check int) "mirrored into the report" (List.length (Store.issues s))
        (Robust.Report.count report)
  end;
  (* rebuild: recompute, flush, reopen clean *)
  for i = 0 to 19 do
    let k = key ~table:"T" ~attr:(Printf.sprintf "a%d" i) in
    if Store.find_profile s k = None then Store.add_profile s k (sample_profile ())
  done;
  Store.flush s;
  let s2 = Store.open_dir dir in
  let all = ref true in
  for i = 0 to 19 do
    if Store.find_profile s2 (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)) = None then
      all := false
  done;
  Alcotest.(check bool) "rebuilt store serves everything" true !all;
  Alcotest.(check int) "rebuilt store is clean" 0 (Store.stats s2).Store.st_quarantined

let test_truncated_shard () =
  in_temp_dir @@ fun dir -> check_quarantined ~expect_issue:true dir truncate_file

let test_garbage_shard () =
  in_temp_dir @@ fun dir ->
  check_quarantined ~expect_issue:true dir (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not a shard at all\n"))

let test_stale_format_version () =
  in_temp_dir @@ fun dir ->
  check_quarantined ~expect_issue:true dir (fun path ->
      let text = In_channel.with_open_bin path In_channel.input_all in
      let nl = String.index text '\n' in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Printf.sprintf "ctxstore %d shard 0/8" (Store.format_version + 1));
          Out_channel.output_string oc
            (String.sub text nl (String.length text - nl))))

let test_stale_index_quarantines_all () =
  in_temp_dir @@ fun dir ->
  populate dir;
  let shards = shard_files dir in
  Out_channel.with_open_bin (Filename.concat dir "store.index") (fun oc ->
      Out_channel.output_string oc
        (Printf.sprintf "ctxstore-index %d shards 8\n" (Store.format_version + 1)));
  let s = Store.open_dir dir in
  Alcotest.(check bool) "index quarantined" true ((Store.stats s).Store.st_quarantined >= 1);
  Alcotest.(check (list string)) "every shard set aside" []
    (shard_files dir |> List.filter (fun f -> List.mem f shards));
  for i = 0 to 19 do
    Alcotest.(check bool) "store restarts empty" true
      (Store.find_profile s (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)) = None)
  done

let test_readonly_never_writes () =
  in_temp_dir @@ fun parent ->
  let dir = Filename.concat parent "ro" in
  let s = Store.open_dir ~readonly:true dir in
  Store.add_profile s (key ~table:"T" ~attr:"a") (sample_profile ());
  Store.flush s;
  Alcotest.(check bool) "directory not even created" false (Sys.file_exists dir);
  (* corrupt file under readonly: quarantined in memory, left on disk *)
  let dir2 = Filename.concat parent "ro2" in
  populate dir2;
  let shards = shard_files dir2 in
  truncate_file (Filename.concat dir2 (List.hd shards));
  let before = Sys.readdir dir2 |> Array.to_list |> List.sort compare in
  let s2 = Store.open_dir ~readonly:true dir2 in
  for i = 0 to 19 do
    ignore (Store.find_profile s2 (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)))
  done;
  Alcotest.(check bool) "quarantine counted" true ((Store.stats s2).Store.st_quarantined >= 1);
  Alcotest.(check (list string)) "files untouched" before
    (Sys.readdir dir2 |> Array.to_list |> List.sort compare)

(* --- table digest ------------------------------------------------------ *)

let mk_table name rows =
  Table.make
    (Schema.make name [ Attribute.string "x"; Attribute.float "y" ])
    (List.map (fun (s, f) -> [| Value.String s; Value.Float f |]) rows)

let test_table_digest_sensitivity () =
  let t1 = mk_table "T" [ ("a", 1.0); ("b", 2.0) ] in
  let same = mk_table "T" [ ("a", 1.0); ("b", 2.0) ] in
  let cell = mk_table "T" [ ("a", 1.0); ("b", 2.5) ] in
  let order = mk_table "T" [ ("b", 2.0); ("a", 1.0) ] in
  let named = mk_table "U" [ ("a", 1.0); ("b", 2.0) ] in
  Alcotest.(check string) "equal content, equal digest" (Store.table_digest t1)
    (Store.table_digest same);
  Alcotest.(check bool) "one cell changes it" true
    (Store.table_digest t1 <> Store.table_digest cell);
  Alcotest.(check bool) "row order changes it" true
    (Store.table_digest t1 <> Store.table_digest order);
  Alcotest.(check bool) "name changes it" true
    (Store.table_digest t1 <> Store.table_digest named)

let test_data_digest_mismatch_misses () =
  in_temp_dir @@ fun dir ->
  let s = Store.open_dir dir in
  let t1 = mk_table "T" [ ("a", 1.0); ("b", 2.0) ] in
  let k1 = { Store.table = "T"; attr = "x"; subset = "sub"; data = Store.table_digest t1 } in
  Store.add_profile s k1 (sample_profile ());
  Store.flush s;
  let s2 = Store.open_dir dir in
  let edited = mk_table "T" [ ("a", 1.0); ("b", 99.0) ] in
  let k2 = { k1 with Store.data = Store.table_digest edited } in
  Alcotest.(check bool) "edited data misses (no stale hit)" true
    (Store.find_profile s2 k2 = None);
  Alcotest.(check bool) "original key still hits" true (Store.find_profile s2 k1 <> None);
  Alcotest.(check int) "a miss is not a quarantine" 0 (Store.stats s2).Store.st_quarantined

(* --- injected I/O faults & recovery audit ------------------------------ *)

let slurp path = In_channel.with_open_bin path In_channel.input_all
let all_keys n = List.init n (fun i -> key ~table:"T" ~attr:(Printf.sprintf "a%d" i))

let probe_all s n =
  List.fold_left (fun acc k -> if Store.find_profile s k <> None then acc + 1 else acc) 0
    (all_keys n)

let test_verify_classifications () =
  in_temp_dir @@ fun dir ->
  let empty = Store.verify (Filename.concat dir "nonexistent") in
  Alcotest.(check bool) "missing dir audits healthy-empty" true
    (Store.verify_healthy empty && empty.Store.vr_entries = []);
  populate dir;
  let r = Store.verify dir in
  Alcotest.(check bool) "fresh store verifies healthy" true (Store.verify_healthy r);
  Alcotest.(check bool) "clean shards counted" true (r.Store.vr_clean > 0);
  Alcotest.(check int) "nothing damaged yet" 0
    (r.Store.vr_truncated + r.Store.vr_corrupt + r.Store.vr_quarantined + r.Store.vr_tmp);
  (* pick the two fattest shards so both certainly carry entries *)
  let by_size =
    shard_files dir
    |> List.map (fun f -> (String.length (slurp (Filename.concat dir f)), f))
    |> List.sort (fun a b -> compare b a)
    |> List.map snd
  in
  match by_size with
  | torn :: wreck :: _ ->
    (* torn: lose the tail (and with it the END footer) *)
    truncate_file (Filename.concat dir torn);
    (* wreck: keep the END footer but damage an entry line *)
    let wreck_path = Filename.concat dir wreck in
    let damaged =
      String.split_on_char '\n' (slurp wreck_path)
      |> List.mapi (fun i l -> if i = 1 then "WRECKED" else l)
      |> String.concat "\n"
    in
    Out_channel.with_open_bin wreck_path (fun oc -> Out_channel.output_string oc damaged);
    Out_channel.with_open_bin (Filename.concat dir "shard-0042.dat.tmp") (fun oc ->
        Out_channel.output_string oc "interrupted atomic write");
    Out_channel.with_open_bin (Filename.concat dir "shard-0042.dat.quarantined") (fun oc ->
        Out_channel.output_string oc "set aside long ago");
    let r2 = Store.verify dir in
    let status f =
      match List.find_opt (fun e -> e.Store.ve_file = f) r2.Store.vr_entries with
      | Some e -> Store.shard_status_name e.Store.ve_status
      | None -> "missing"
    in
    Alcotest.(check string) "lost tail classified truncated" "truncated" (status torn);
    Alcotest.(check string) "END intact but unparseable classified corrupt" "corrupt"
      (status wreck);
    Alcotest.(check int) "one truncated" 1 r2.Store.vr_truncated;
    Alcotest.(check int) "one corrupt" 1 r2.Store.vr_corrupt;
    Alcotest.(check int) "quarantined counted" 1 r2.Store.vr_quarantined;
    Alcotest.(check int) "tmp counted" 1 r2.Store.vr_tmp;
    Alcotest.(check bool) "index still ok" true r2.Store.vr_index_ok;
    Alcotest.(check bool) "damage makes the audit unhealthy" false (Store.verify_healthy r2);
    (* verify is a pure audit: re-running it mutates nothing *)
    let before = Sys.readdir dir |> Array.to_list |> List.sort compare in
    let r3 = Store.verify dir in
    Alcotest.(check int) "audit is stable" (List.length r2.Store.vr_entries)
      (List.length r3.Store.vr_entries);
    Alcotest.(check (list string)) "audit never mutates the directory" before
      (Sys.readdir dir |> Array.to_list |> List.sort compare)
  | _ -> Alcotest.fail "expected at least two shards"

(* Satellite: the END-count canary under an *injected* short write —
   the no-fsync crash model where the rename survives but the bytes
   behind it do not.  The audit must call it truncated (never silently
   garbage), recovery must quarantine-and-rebuild to a healthy store. *)
let test_torn_write_end_canary () =
  in_temp_dir @@ fun dir ->
  populate dir;
  let s = Store.open_dir dir in
  for i = 20 to 39 do
    Store.add_profile s (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)) (sample_profile ())
  done;
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  Robust.Fault.arm ~rate:1.0 ~seed:7 ~behaviour:(Robust.Fault.Torn_write 0.5)
    Robust.Fault.Store_shard_write;
  Alcotest.(check bool) "torn flush surfaces as Injected" true
    (try
       Store.flush s;
       false
     with Robust.Fault.Injected { site = Robust.Fault.Store_shard_write; _ } -> true);
  Robust.Fault.disarm_all ();
  let r = Store.verify dir in
  Alcotest.(check int) "the canary flags exactly the torn shard" 1 r.Store.vr_truncated;
  Alcotest.(check int) "torn is never misread as parseable garbage" 0 r.Store.vr_corrupt;
  Alcotest.(check bool) "audit flags the store" false (Store.verify_healthy r);
  (* recovery: reopening quarantines the torn shard and serves the rest *)
  let s2 = Store.open_dir dir in
  let found = probe_all s2 40 in
  Alcotest.(check bool) "partial service after the crash" true (found > 0 && found < 40);
  Alcotest.(check bool) "torn shard quarantined on load" true
    ((Store.stats s2).Store.st_quarantined >= 1);
  List.iter
    (fun k -> if Store.find_profile s2 k = None then Store.add_profile s2 k (sample_profile ()))
    (all_keys 40);
  Store.flush s2;
  let healed = Store.verify dir in
  Alcotest.(check bool) "healed store audits healthy" true (Store.verify_healthy healed);
  Alcotest.(check bool) "quarantined file kept for forensics" true
    (healed.Store.vr_quarantined >= 1);
  let s3 = Store.open_dir dir in
  Alcotest.(check int) "everything served after recovery" 40 (probe_all s3 40)

(* Raise at the write site fails before anything reaches the shard
   path: every old byte survives untouched, and a disarmed retry of the
   same flush completes (nothing was lost in memory either). *)
let test_write_raise_preserves_old () =
  in_temp_dir @@ fun dir ->
  populate dir;
  let baseline = shard_files dir |> List.map (fun f -> (f, slurp (Filename.concat dir f))) in
  let s = Store.open_dir dir in
  for i = 20 to 39 do
    Store.add_profile s (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)) (sample_profile ())
  done;
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  Robust.Fault.arm ~rate:1.0 ~seed:3 Robust.Fault.Store_shard_write;
  Alcotest.(check bool) "write fault surfaces as Injected" true
    (try
       Store.flush s;
       false
     with Robust.Fault.Injected { site = Robust.Fault.Store_shard_write; _ } -> true);
  Robust.Fault.disarm_all ();
  List.iter
    (fun (f, text) ->
      Alcotest.(check string) (f ^ ": old bytes survive") text (slurp (Filename.concat dir f)))
    baseline;
  Alcotest.(check bool) "old store audits healthy" true
    (Store.verify_healthy (Store.verify dir));
  Store.flush s;
  let s2 = Store.open_dir dir in
  Alcotest.(check int) "retried flush persists everything" 40 (probe_all s2 40)

(* Failure at the rename: old contents survive, the complete new
   contents sit in a *removed* temp file — no litter, no torn state. *)
let test_rename_fault_preserves_old () =
  in_temp_dir @@ fun dir ->
  populate dir;
  let baseline = shard_files dir |> List.map (fun f -> (f, slurp (Filename.concat dir f))) in
  let s = Store.open_dir dir in
  for i = 20 to 39 do
    Store.add_profile s (key ~table:"T" ~attr:(Printf.sprintf "a%d" i)) (sample_profile ())
  done;
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  Robust.Fault.arm ~rate:1.0 ~seed:5 Robust.Fault.Store_flush_rename;
  Alcotest.(check bool) "rename fault surfaces as Injected" true
    (try
       Store.flush s;
       false
     with Robust.Fault.Injected { site = Robust.Fault.Store_flush_rename; _ } -> true);
  Robust.Fault.disarm_all ();
  List.iter
    (fun (f, text) ->
      Alcotest.(check string) (f ^ ": old bytes survive") text (slurp (Filename.concat dir f)))
    baseline;
  let r = Store.verify dir in
  Alcotest.(check int) "tmp removed on the way out" 0 r.Store.vr_tmp;
  Alcotest.(check bool) "old store audits healthy" true (Store.verify_healthy r);
  Store.flush s;
  let s2 = Store.open_dir dir in
  Alcotest.(check int) "retried flush persists everything" 40 (probe_all s2 40)

(* A read fault is a transient I/O error, not data damage: it
   propagates to the caller, the shard stays unloaded, and the same
   probe retried without the fault serves — healthy data must never be
   quarantined for a failed read attempt. *)
let test_read_fault_is_transient () =
  in_temp_dir @@ fun dir ->
  populate dir;
  let s = Store.open_dir dir in
  let k = key ~table:"T" ~attr:"a0" in
  Fun.protect ~finally:Robust.Fault.disarm_all @@ fun () ->
  Robust.Fault.arm ~rate:1.0 ~seed:1 Robust.Fault.Store_shard_read;
  Alcotest.(check bool) "read fault propagates" true
    (try
       ignore (Store.find_profile s k);
       false
     with Robust.Fault.Injected { site = Robust.Fault.Store_shard_read; _ } -> true);
  Robust.Fault.disarm_all ();
  Alcotest.(check bool) "disarmed retry serves" true (Store.find_profile s k <> None);
  Alcotest.(check int) "healthy data never quarantined" 0
    (Store.stats s).Store.st_quarantined;
  Alcotest.(check bool) "no file set aside" false
    (Sys.readdir dir |> Array.exists (fun f -> Filename.check_suffix f ".quarantined"))

(* --- end-to-end warm start --------------------------------------------- *)

let fp_match (m : Matching.Schema_match.t) =
  Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
    m.tgt_attr
    (Condition.to_string m.condition)
    m.confidence

let fingerprint (r : Ctxmatch.Context_match.result) =
  String.concat "\n"
    (List.map fp_match r.Ctxmatch.Context_match.matches
    @ List.map fp_match r.Ctxmatch.Context_match.standard)

let retail_run ?store ~jobs () =
  let params = { Workload.Retail.default_params with rows = 120; target_rows = 60; seed = 42 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let config = { Ctxmatch.Config.default with jobs } in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  Ctxmatch.Context_match.run ~config ?store ~infer ~source ~target ()

let test_warm_identical_to_cold () =
  in_temp_dir @@ fun dir ->
  let no_store = retail_run ~jobs:1 () in
  let cold_store = Store.open_dir dir in
  let cold = retail_run ~store:cold_store ~jobs:1 () in
  Store.flush cold_store;
  Alcotest.(check bool) "cold run computed something" true
    (cold.Ctxmatch.Context_match.profile_builds > 0);
  Alcotest.(check string) "store run identical to storeless run" (fingerprint no_store)
    (fingerprint cold);
  List.iter
    (fun jobs ->
      let warm_store = Store.open_dir dir in
      let warm = retail_run ~store:warm_store ~jobs () in
      Alcotest.(check string)
        (Printf.sprintf "warm jobs=%d byte-identical to cold" jobs)
        (fingerprint cold) (fingerprint warm);
      Alcotest.(check int)
        (Printf.sprintf "warm jobs=%d recomputes nothing" jobs)
        0 warm.Ctxmatch.Context_match.profile_builds;
      Alcotest.(check bool)
        (Printf.sprintf "warm jobs=%d served from the store" jobs)
        true
        ((Store.stats warm_store).Store.st_hits > 0))
    [ 1; 4 ]

let test_warm_after_quarantine_identical () =
  in_temp_dir @@ fun dir ->
  let cold_store = Store.open_dir dir in
  let cold = retail_run ~store:cold_store ~jobs:1 () in
  Store.flush cold_store;
  (* damage one shard: the run must degrade to recomputing exactly the
     quarantined entries, with identical output *)
  (match shard_files dir with
  | [] -> Alcotest.fail "no shards written"
  | f :: _ -> truncate_file (Filename.concat dir f));
  let hurt_store = Store.open_dir dir in
  let hurt = retail_run ~store:hurt_store ~jobs:1 () in
  Store.flush hurt_store;
  Alcotest.(check string) "degraded warm run identical" (fingerprint cold) (fingerprint hurt);
  Alcotest.(check bool) "quarantine surfaced as an issue" true
    (List.exists
       (fun (i : Robust.Error.t) -> Robust.Error.stage_name i.Robust.Error.stage = "store")
       hurt.Ctxmatch.Context_match.issues);
  (* the flush healed the store: next run is fully warm again *)
  let healed_store = Store.open_dir dir in
  let healed = retail_run ~store:healed_store ~jobs:1 () in
  Alcotest.(check string) "healed run identical" (fingerprint cold) (fingerprint healed);
  Alcotest.(check int) "healed run recomputes nothing" 0
    healed.Ctxmatch.Context_match.profile_builds

let () =
  Alcotest.run "ctxmatch-store"
    [
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "non-finite summary roundtrip" `Quick
            test_nonfinite_summary_roundtrip;
          Alcotest.test_case "truncated shard quarantined" `Quick test_truncated_shard;
          Alcotest.test_case "garbage shard quarantined" `Quick test_garbage_shard;
          Alcotest.test_case "stale format version quarantined" `Quick
            test_stale_format_version;
          Alcotest.test_case "stale index quarantines all" `Quick
            test_stale_index_quarantines_all;
          Alcotest.test_case "readonly never writes" `Quick test_readonly_never_writes;
          Alcotest.test_case "table digest sensitivity" `Quick test_table_digest_sensitivity;
          Alcotest.test_case "data digest mismatch misses" `Quick
            test_data_digest_mismatch_misses;
          Alcotest.test_case "verify classifications" `Quick test_verify_classifications;
          Alcotest.test_case "torn write END canary" `Quick test_torn_write_end_canary;
          Alcotest.test_case "write raise preserves old" `Quick test_write_raise_preserves_old;
          Alcotest.test_case "rename fault preserves old" `Quick
            test_rename_fault_preserves_old;
          Alcotest.test_case "read fault is transient" `Quick test_read_fault_is_transient;
          Alcotest.test_case "warm identical to cold" `Slow test_warm_identical_to_cold;
          Alcotest.test_case "warm after quarantine identical" `Slow
            test_warm_after_quarantine_identical;
        ] );
    ]
