(* Naive Bayes, Gaussian classifier, unified classifier, evaluation. *)

let trigrams = Textsim.Tokenize.trigrams

let test_nb_untrained () =
  let nb = Learn.Naive_bayes.create () in
  Alcotest.(check bool) "none before training" true (Learn.Naive_bayes.classify nb [ "x" ] = None);
  Alcotest.(check (list string)) "no labels" [] (Learn.Naive_bayes.labels nb)

let test_nb_separable () =
  let nb = Learn.Naive_bayes.create () in
  List.iter (fun d -> Learn.Naive_bayes.train nb ~label:"book" (trigrams d))
    [ "the secret history"; "a shadow of empire"; "the forgotten kingdom" ];
  List.iter (fun d -> Learn.Naive_bayes.train nb ~label:"music" (trigrams d))
    [ "dance baby tonight"; "midnight groove"; "funky rhythm fever" ];
  Alcotest.(check (option string)) "bookish" (Some "book")
    (Learn.Naive_bayes.classify nb (trigrams "the secret kingdom"));
  Alcotest.(check (option string)) "musicish" (Some "music")
    (Learn.Naive_bayes.classify nb (trigrams "funky dance groove"))

let test_nb_prior_dominates_on_empty_features () =
  let nb = Learn.Naive_bayes.create () in
  for _ = 1 to 9 do Learn.Naive_bayes.train nb ~label:"common" [ "aa" ] done;
  Learn.Naive_bayes.train nb ~label:"rare" [ "zz" ];
  Alcotest.(check (option string)) "prior wins with no evidence" (Some "common")
    (Learn.Naive_bayes.classify nb [])

let test_nb_margin () =
  let nb = Learn.Naive_bayes.create () in
  Learn.Naive_bayes.train nb ~label:"only" [ "x" ];
  match Learn.Naive_bayes.classify_with_margin nb [ "x" ] with
  | Some (l, m) ->
    Alcotest.(check string) "label" "only" l;
    Alcotest.(check bool) "infinite margin" true (m = Float.infinity)
  | None -> Alcotest.fail "expected a label"

let test_nb_deterministic_ties () =
  let nb = Learn.Naive_bayes.create () in
  Learn.Naive_bayes.train nb ~label:"b" [ "t" ];
  Learn.Naive_bayes.train nb ~label:"a" [ "t" ];
  (* same likelihoods, same priors: lexicographic tie-break *)
  Alcotest.(check (option string)) "tie to lexicographic" (Some "a")
    (Learn.Naive_bayes.classify nb [ "t" ])

let test_gnb_separable () =
  let g = Learn.Gaussian_nb.create () in
  let rng = Stats.Rng.create 9 in
  for _ = 1 to 200 do
    Learn.Gaussian_nb.train g ~label:"low" (Stats.Rng.gaussian rng ~mu:10.0 ~sigma:2.0);
    Learn.Gaussian_nb.train g ~label:"high" (Stats.Rng.gaussian rng ~mu:30.0 ~sigma:2.0)
  done;
  Alcotest.(check (option string)) "low" (Some "low") (Learn.Gaussian_nb.classify g 11.0);
  Alcotest.(check (option string)) "high" (Some "high") (Learn.Gaussian_nb.classify g 29.0);
  Alcotest.(check (option string)) "clearly low side" (Some "low")
    (Learn.Gaussian_nb.classify g 15.0)

let test_gnb_class_stats () =
  let g = Learn.Gaussian_nb.create () in
  List.iter (Learn.Gaussian_nb.train g ~label:"x") [ 1.0; 2.0; 3.0 ];
  match Learn.Gaussian_nb.class_stats g "x" with
  | Some (n, mean, _) ->
    Alcotest.(check int) "n" 3 n;
    Alcotest.(check (float 1e-9)) "mean" 2.0 mean
  | None -> Alcotest.fail "expected stats"

let test_gnb_degenerate_sigma () =
  let g = Learn.Gaussian_nb.create () in
  for _ = 1 to 5 do Learn.Gaussian_nb.train g ~label:"const" 7.0 done;
  for _ = 1 to 5 do Learn.Gaussian_nb.train g ~label:"other" 100.0 done;
  (* constant class must still classify its own value *)
  Alcotest.(check (option string)) "spike class" (Some "const") (Learn.Gaussian_nb.classify g 7.0)

let test_gnb_untrained () =
  let g = Learn.Gaussian_nb.create () in
  Alcotest.(check bool) "none" true (Learn.Gaussian_nb.classify g 1.0 = None)

let test_classifier_dispatch () =
  let c = Learn.Classifier.create () in
  Learn.Classifier.train c ~label:"text" (Learn.Classifier.Text "hello world");
  Learn.Classifier.train c ~label:"num" (Learn.Classifier.Number 5.0);
  Alcotest.(check bool) "trained" true (Learn.Classifier.trained c);
  Alcotest.(check (option string)) "text goes to nb" (Some "text")
    (Learn.Classifier.classify c (Learn.Classifier.Text "hello"));
  Alcotest.(check (option string)) "number goes to gaussian" (Some "num")
    (Learn.Classifier.classify c (Learn.Classifier.Number 5.1));
  Alcotest.(check bool) "missing is none" true
    (Learn.Classifier.classify c Learn.Classifier.Missing = None)

let test_classifier_missing_ignored_in_training () =
  let c = Learn.Classifier.create () in
  Learn.Classifier.train c ~label:"x" Learn.Classifier.Missing;
  Alcotest.(check bool) "still untrained" false (Learn.Classifier.trained c)

let test_classifier_numeric_text_fallback () =
  (* trained only on numbers; a numeric string should be read as one *)
  let c = Learn.Classifier.create () in
  Learn.Classifier.train c ~label:"low" (Learn.Classifier.Number 1.0);
  Learn.Classifier.train c ~label:"high" (Learn.Classifier.Number 100.0);
  Alcotest.(check (option string)) "parsed" (Some "high")
    (Learn.Classifier.classify c (Learn.Classifier.Text "99"));
  Alcotest.(check bool) "unparsable none" true
    (Learn.Classifier.classify c (Learn.Classifier.Text "abc") = None)

let test_classifier_external () =
  let c = Learn.Classifier.of_fun (fun _ -> Some "fixed") in
  Alcotest.(check (option string)) "external" (Some "fixed")
    (Learn.Classifier.classify c (Learn.Classifier.Text "x"));
  Alcotest.(check bool) "training rejected" true
    (try
       Learn.Classifier.train c ~label:"x" (Learn.Classifier.Text "y");
       false
     with Invalid_argument _ -> true)

let test_majority_prior () =
  Alcotest.(check (float 1e-9)) "prior" 0.6
    (Learn.Evaluation.majority_prior [| "a"; "a"; "a"; "b"; "c" |]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Learn.Evaluation.majority_prior [||])

let test_evaluation_significant () =
  (* a perfect classifier on a balanced 2-label problem is significant *)
  let items = Array.init 60 (fun i -> if i mod 2 = 0 then ("x", "x") else ("y", "y")) in
  let outcome =
    Learn.Evaluation.test
      ~classify:(fun (f, _) -> Some f)
      ~label_of:snd ~majority_prior:0.5 items
  in
  Alcotest.(check bool) "significant" true outcome.Learn.Evaluation.significant;
  Alcotest.(check (float 1e-9)) "quality 1" 1.0 outcome.Learn.Evaluation.quality

let test_evaluation_insignificant_random () =
  (* predicting the majority label performs exactly as the null *)
  let items = Array.init 60 (fun i -> (i, if i mod 2 = 0 then "x" else "y")) in
  let outcome =
    Learn.Evaluation.test ~classify:(fun _ -> Some "x") ~label_of:snd ~majority_prior:0.5 items
  in
  Alcotest.(check bool) "not significant" false outcome.Learn.Evaluation.significant

let test_evaluation_abstention_counts_as_error () =
  let items = [| ((), "x") |] in
  let outcome =
    Learn.Evaluation.test ~classify:(fun _ -> None) ~label_of:snd ~majority_prior:0.9 items
  in
  Alcotest.(check (float 1e-9)) "zero quality" 0.0 outcome.Learn.Evaluation.quality

let qcheck_gnb_picks_closer_mean =
  QCheck.Test.make ~name:"gaussian picks the closer of two far classes" ~count:100
    (QCheck.float_range 0.0 10.0)
    (fun x ->
      let g = Learn.Gaussian_nb.create () in
      let rng = Stats.Rng.create 3 in
      for _ = 1 to 100 do
        Learn.Gaussian_nb.train g ~label:"near0" (Stats.Rng.gaussian rng ~mu:0.0 ~sigma:1.0);
        Learn.Gaussian_nb.train g ~label:"near100" (Stats.Rng.gaussian rng ~mu:100.0 ~sigma:1.0)
      done;
      Learn.Gaussian_nb.classify g x = Some "near0")

let suite =
  [
    Alcotest.test_case "nb untrained" `Quick test_nb_untrained;
    Alcotest.test_case "nb separable vocab" `Quick test_nb_separable;
    Alcotest.test_case "nb prior on no evidence" `Quick test_nb_prior_dominates_on_empty_features;
    Alcotest.test_case "nb margin" `Quick test_nb_margin;
    Alcotest.test_case "nb deterministic ties" `Quick test_nb_deterministic_ties;
    Alcotest.test_case "gaussian separable" `Quick test_gnb_separable;
    Alcotest.test_case "gaussian class stats" `Quick test_gnb_class_stats;
    Alcotest.test_case "gaussian degenerate sigma" `Quick test_gnb_degenerate_sigma;
    Alcotest.test_case "gaussian untrained" `Quick test_gnb_untrained;
    Alcotest.test_case "classifier dispatch" `Quick test_classifier_dispatch;
    Alcotest.test_case "classifier ignores missing" `Quick test_classifier_missing_ignored_in_training;
    Alcotest.test_case "classifier numeric-text fallback" `Quick test_classifier_numeric_text_fallback;
    Alcotest.test_case "classifier external" `Quick test_classifier_external;
    Alcotest.test_case "majority prior" `Quick test_majority_prior;
    Alcotest.test_case "evaluation significant" `Quick test_evaluation_significant;
    Alcotest.test_case "evaluation insignificant" `Quick test_evaluation_insignificant_random;
    Alcotest.test_case "evaluation abstention" `Quick test_evaluation_abstention_counts_as_error;
    QCheck_alcotest.to_alcotest qcheck_gnb_picks_closer_mean;
  ]
