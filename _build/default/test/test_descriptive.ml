let close ?(eps = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "expected %.6f got %.6f" expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let test_summarize_basic () =
  let s = Stats.Descriptive.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "n" 8 s.Stats.Descriptive.n;
  close 5.0 s.Stats.Descriptive.mean;
  close 4.0 s.Stats.Descriptive.variance;
  close 2.0 s.Stats.Descriptive.stddev;
  close 2.0 s.Stats.Descriptive.min;
  close 9.0 s.Stats.Descriptive.max

let test_summarize_empty () =
  let s = Stats.Descriptive.summarize [||] in
  Alcotest.(check int) "n" 0 s.Stats.Descriptive.n;
  close 0.0 s.Stats.Descriptive.mean

let test_summarize_single () =
  let s = Stats.Descriptive.summarize [| 42.0 |] in
  close 42.0 s.Stats.Descriptive.mean;
  close 0.0 s.Stats.Descriptive.variance

let test_summarize_list_matches_array () =
  let xs = [ 1.0; 2.0; 3.5; -1.0 ] in
  let a = Stats.Descriptive.summarize (Array.of_list xs) in
  let l = Stats.Descriptive.summarize_list xs in
  close a.Stats.Descriptive.mean l.Stats.Descriptive.mean;
  close a.Stats.Descriptive.variance l.Stats.Descriptive.variance

let test_welford_stability () =
  (* Large offset: the naive sum-of-squares formula would lose all
     precision; Welford must not. *)
  let offset = 1e9 in
  let xs = Array.init 1000 (fun i -> offset +. float_of_int (i mod 10)) in
  let s = Stats.Descriptive.summarize xs in
  close ~eps:1e-3 (offset +. 4.5) s.Stats.Descriptive.mean;
  close ~eps:1e-3 8.25 s.Stats.Descriptive.variance

let test_median_odd () = close 3.0 (Stats.Descriptive.median [| 5.0; 1.0; 3.0 |])
let test_median_even () = close 2.5 (Stats.Descriptive.median [| 4.0; 1.0; 2.0; 3.0 |])
let test_median_empty () = close 0.0 (Stats.Descriptive.median [||])

let test_median_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.Descriptive.median xs);
  Alcotest.(check bool) "unchanged" true (xs = [| 3.0; 1.0; 2.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  close 1.0 (Stats.Descriptive.percentile xs 0.0);
  close 5.0 (Stats.Descriptive.percentile xs 100.0);
  close 3.0 (Stats.Descriptive.percentile xs 50.0);
  close 2.0 (Stats.Descriptive.percentile xs 25.0)

let test_kahan_sum () =
  close 1.0 (Stats.Descriptive.sum [| 1.0 |]);
  close 0.0 (Stats.Descriptive.sum [||]);
  (* many tiny values around a large one: plain summation drifts *)
  let xs = Array.make 10_000_001 1e-9 in
  xs.(0) <- 1e9;
  close ~eps:1e-4 (1e9 +. 0.01) (Stats.Descriptive.sum xs)

let test_stddev_short () =
  close 0.0 (Stats.Descriptive.stddev [| 5.0 |]);
  close 0.0 (Stats.Descriptive.stddev [||])

let qcheck_variance_nonneg =
  QCheck.Test.make ~name:"variance non-negative" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.0) 1000.0))
    (fun xs -> (Stats.Descriptive.summarize (Array.of_list xs)).Stats.Descriptive.variance >= 0.0)

let qcheck_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = Stats.Descriptive.summarize (Array.of_list xs) in
      s.Stats.Descriptive.mean >= s.Stats.Descriptive.min -. 1e-9
      && s.Stats.Descriptive.mean <= s.Stats.Descriptive.max +. 1e-9)

let suite =
  [
    Alcotest.test_case "summarize basic" `Quick test_summarize_basic;
    Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "summarize single" `Quick test_summarize_single;
    Alcotest.test_case "list matches array" `Quick test_summarize_list_matches_array;
    Alcotest.test_case "welford stability" `Quick test_welford_stability;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "median empty" `Quick test_median_empty;
    Alcotest.test_case "median does not mutate" `Quick test_median_does_not_mutate;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "kahan sum" `Slow test_kahan_sum;
    Alcotest.test_case "stddev short input" `Quick test_stddev_short;
    QCheck_alcotest.to_alcotest qcheck_variance_nonneg;
    QCheck_alcotest.to_alcotest qcheck_mean_between_min_max;
  ]
