let test_split_indices_partition () =
  let rng = Stats.Rng.create 1 in
  let train, test = Stats.Sampling.split_indices rng ~n:10 ~train_fraction:0.7 in
  Alcotest.(check int) "total" 10 (Array.length train + Array.length test);
  let all = Array.to_list train @ Array.to_list test |> List.sort compare in
  Alcotest.(check (list int)) "covers 0..9" (List.init 10 (fun i -> i)) all

let test_split_indices_nonempty_sides () =
  let rng = Stats.Rng.create 2 in
  let train, test = Stats.Sampling.split_indices rng ~n:2 ~train_fraction:0.99 in
  Alcotest.(check bool) "both non-empty" true (Array.length train = 1 && Array.length test = 1)

let test_split_invalid_fraction () =
  let rng = Stats.Rng.create 3 in
  Alcotest.check_raises "fraction 0"
    (Invalid_argument "Sampling.split_indices: train_fraction outside (0,1)") (fun () ->
      ignore (Stats.Sampling.split_indices rng ~n:10 ~train_fraction:0.0))

let test_split_items () =
  let rng = Stats.Rng.create 4 in
  let items = Array.init 9 (fun i -> Printf.sprintf "item%d" i) in
  let train, test = Stats.Sampling.split rng ~train_fraction:(2.0 /. 3.0) items in
  Alcotest.(check int) "train" 6 (Array.length train);
  Alcotest.(check int) "test" 3 (Array.length test)

let test_sample_without_replacement () =
  let rng = Stats.Rng.create 5 in
  let items = Array.init 20 (fun i -> i) in
  let sample = Stats.Sampling.sample_without_replacement rng ~k:7 items in
  Alcotest.(check int) "size" 7 (Array.length sample);
  let sorted = Array.to_list sample |> List.sort_uniq compare in
  Alcotest.(check int) "distinct" 7 (List.length sorted);
  (* k >= n returns everything *)
  let all = Stats.Sampling.sample_without_replacement rng ~k:100 items in
  Alcotest.(check int) "everything" 20 (Array.length all)

let test_bootstrap () =
  let rng = Stats.Rng.create 6 in
  let items = [| 1; 2; 3 |] in
  let sample = Stats.Sampling.bootstrap rng ~k:50 items in
  Alcotest.(check int) "size" 50 (Array.length sample);
  Array.iter (fun v -> Alcotest.(check bool) "from input" true (v >= 1 && v <= 3)) sample

let test_bootstrap_empty () =
  let rng = Stats.Rng.create 6 in
  Alcotest.check_raises "empty" (Invalid_argument "Sampling.bootstrap: empty input") (fun () ->
      ignore (Stats.Sampling.bootstrap rng ~k:1 [||]))

let test_stratified_split_coverage () =
  let rng = Stats.Rng.create 7 in
  let items =
    Array.init 60 (fun i -> (i, if i mod 3 = 0 then "x" else if i mod 3 = 1 then "y" else "z"))
  in
  let train, test = Stats.Sampling.stratified_split rng ~label:snd ~train_fraction:0.5 items in
  Alcotest.(check int) "partition" 60 (Array.length train + Array.length test);
  List.iter
    (fun l ->
      let has arr = Array.exists (fun (_, l') -> l = l') arr in
      Alcotest.(check bool) (l ^ " in train") true (has train);
      Alcotest.(check bool) (l ^ " in test") true (has test))
    [ "x"; "y"; "z" ]

let test_stratified_singleton_label_to_train () =
  let rng = Stats.Rng.create 8 in
  let items = [| (1, "rare"); (2, "common"); (3, "common"); (4, "common") |] in
  let train, test = Stats.Sampling.stratified_split rng ~label:snd ~train_fraction:0.5 items in
  Alcotest.(check bool) "rare in train" true (Array.exists (fun (_, l) -> l = "rare") train);
  Alcotest.(check bool) "rare not in test" false (Array.exists (fun (_, l) -> l = "rare") test)

let qcheck_stratified_partition =
  QCheck.Test.make ~name:"stratified split partitions input" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(2 -- 50) (int_range 0 4)))
    (fun (seed, labels) ->
      let rng = Stats.Rng.create seed in
      let items = Array.of_list (List.mapi (fun i l -> (i, string_of_int l)) labels) in
      let train, test = Stats.Sampling.stratified_split rng ~label:snd ~train_fraction:0.6 items in
      Array.length train + Array.length test = Array.length items)

let suite =
  [
    Alcotest.test_case "split indices partition" `Quick test_split_indices_partition;
    Alcotest.test_case "split both sides non-empty" `Quick test_split_indices_nonempty_sides;
    Alcotest.test_case "split invalid fraction" `Quick test_split_invalid_fraction;
    Alcotest.test_case "split items" `Quick test_split_items;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "bootstrap" `Quick test_bootstrap;
    Alcotest.test_case "bootstrap empty" `Quick test_bootstrap_empty;
    Alcotest.test_case "stratified coverage" `Quick test_stratified_split_coverage;
    Alcotest.test_case "stratified singleton" `Quick test_stratified_singleton_label_to_train;
    QCheck_alcotest.to_alcotest qcheck_stratified_partition;
  ]
