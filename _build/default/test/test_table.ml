open Relational

let schema =
  Schema.make "people"
    [ Attribute.int "id"; Attribute.string "name"; Attribute.float "score" ]

let rows =
  [
    [| Value.Int 1; Value.String "ann"; Value.Float 3.5 |];
    [| Value.Int 2; Value.String "bob"; Value.Float 1.0 |];
    [| Value.Int 3; Value.String "ann"; Value.Null |];
  ]

let table = Table.make schema rows

let test_schema_duplicate_attr () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate attribute x") (fun () ->
      ignore (Schema.make "t" [ Attribute.int "x"; Attribute.string "x" ]))

let test_schema_lookup () =
  Alcotest.(check int) "index" 1 (Schema.index_of schema "name");
  Alcotest.(check bool) "mem" true (Schema.mem schema "score");
  Alcotest.(check bool) "not mem" false (Schema.mem schema "missing");
  Alcotest.(check (list string)) "names" [ "id"; "name"; "score" ]
    (Schema.attribute_names schema)

let test_schema_project () =
  let p = Schema.project schema [ "score"; "id" ] in
  Alcotest.(check (list string)) "projected order" [ "score"; "id" ] (Schema.attribute_names p)

let test_schema_add_attribute () =
  let s = Schema.add_attribute schema (Attribute.bool "active") in
  Alcotest.(check int) "arity" 4 (Schema.arity s);
  Alcotest.(check bool) "original untouched" true (Schema.arity schema = 3)

let test_table_arity_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Table.make schema [ [| Value.Int 1 |] ]);
       false
     with Invalid_argument _ -> true)

let test_cell_and_column () =
  Alcotest.(check bool) "cell" true (Value.equal (Table.cell table 1 "name") (Value.String "bob"));
  let col = Table.column table "id" in
  Alcotest.(check int) "column len" 3 (Array.length col);
  Alcotest.(check bool) "column values" true
    (col = [| Value.Int 1; Value.Int 2; Value.Int 3 |])

let test_non_null_column () =
  Alcotest.(check int) "nulls dropped" 2 (Array.length (Table.non_null_column table "score"))

let test_distinct_and_counts () =
  Alcotest.(check int) "distinct names" 2 (List.length (Table.distinct_values table "name"));
  match Table.value_counts table "name" with
  | (v, n) :: _ ->
    Alcotest.(check bool) "most common first" true (Value.equal v (Value.String "ann"));
    Alcotest.(check int) "count" 2 n
  | [] -> Alcotest.fail "expected counts"

let test_filter () =
  let f = Table.filter table (fun row -> Value.compare row.(0) (Value.Int 1) > 0) in
  Alcotest.(check int) "filtered" 2 (Table.row_count f)

let test_project_rows () =
  let p = Table.project table [ "name" ] in
  Alcotest.(check int) "arity" 1 (Table.arity p);
  Alcotest.(check bool) "value" true (Value.equal (Table.cell p 0 "name") (Value.String "ann"))

let test_append_column () =
  let t =
    Table.append_column table (Attribute.int "double_id") (fun row ->
        match row.(0) with Value.Int i -> Value.Int (2 * i) | _ -> Value.Null)
  in
  Alcotest.(check bool) "derived" true (Value.equal (Table.cell t 2 "double_id") (Value.Int 6))

let test_take_and_sub () =
  Alcotest.(check int) "take" 2 (Table.row_count (Table.take table 2));
  Alcotest.(check int) "take beyond" 3 (Table.row_count (Table.take table 99));
  let sub = Table.sub_by_indices table [| 2; 0 |] in
  Alcotest.(check bool) "order preserved" true
    (Value.equal (Table.cell sub 0 "id") (Value.Int 3))

let test_concat_rows () =
  let both = Table.concat_rows table table in
  Alcotest.(check int) "rows doubled" 6 (Table.row_count both)

let test_concat_schema_mismatch () =
  let other = Table.make (Schema.make "other" [ Attribute.int "id" ]) [] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.concat_rows: schemas differ")
    (fun () -> ignore (Table.concat_rows table other))

let test_is_unique () =
  Alcotest.(check bool) "id unique" true (Table.is_unique table [ "id" ]);
  Alcotest.(check bool) "name not unique" false (Table.is_unique table [ "name" ]);
  Alcotest.(check bool) "pair unique" true (Table.is_unique table [ "name"; "id" ])

let test_rename () =
  Alcotest.(check string) "renamed" "p2" (Table.name (Table.rename table "p2"));
  Alcotest.(check string) "original" "people" (Table.name table)

let suite =
  [
    Alcotest.test_case "schema duplicate attribute" `Quick test_schema_duplicate_attr;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "schema project" `Quick test_schema_project;
    Alcotest.test_case "schema add attribute" `Quick test_schema_add_attribute;
    Alcotest.test_case "table arity mismatch" `Quick test_table_arity_mismatch;
    Alcotest.test_case "cell and column" `Quick test_cell_and_column;
    Alcotest.test_case "non-null column" `Quick test_non_null_column;
    Alcotest.test_case "distinct and counts" `Quick test_distinct_and_counts;
    Alcotest.test_case "filter" `Quick test_filter;
    Alcotest.test_case "project rows" `Quick test_project_rows;
    Alcotest.test_case "append column" `Quick test_append_column;
    Alcotest.test_case "take and sub" `Quick test_take_and_sub;
    Alcotest.test_case "concat rows" `Quick test_concat_rows;
    Alcotest.test_case "concat schema mismatch" `Quick test_concat_schema_mismatch;
    Alcotest.test_case "is_unique" `Quick test_is_unique;
    Alcotest.test_case "rename" `Quick test_rename;
  ]
