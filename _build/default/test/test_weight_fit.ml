
(* A labeled retail scenario: the correct standard-match pairings are the
   informative attribute pairs of both target tables. *)
let labeled_retail seed =
  let params = { Workload.Retail.default_params with rows = 250; target_rows = 120; seed } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let correct =
    List.map
      (fun (src_attr, tgt_table, tgt_attr, _) ->
        (Workload.Retail.source_table_name, src_attr, tgt_table, tgt_attr))
      (Workload.Retail.expected_pairs Workload.Retail.Ryan_eyers)
  in
  { Matching.Weight_fit.lab_source = source; lab_target = target; correct }

let test_fmeasure_range () =
  let f =
    Matching.Weight_fit.fmeasure ~matchers:Matching.Matchers.default_suite ~tau:0.5
      (labeled_retail 42)
  in
  Alcotest.(check bool) "within [0,1]" true (f >= 0.0 && f <= 1.0);
  Alcotest.(check bool) "defaults do decently" true (f >= 0.5)

let test_reweight () =
  let reweighted =
    Matching.Weight_fit.reweight Matching.Matchers.default_suite [ ("name", 0.0); ("qgram", 3.0) ]
  in
  let weight name =
    (List.find (fun (m : Matching.Matcher.t) -> m.name = name) reweighted).Matching.Matcher.weight
  in
  Alcotest.(check (float 1e-9)) "name zeroed" 0.0 (weight "name");
  Alcotest.(check (float 1e-9)) "qgram set" 3.0 (weight "qgram");
  Alcotest.(check (float 1e-9)) "word untouched" 1.0 (weight "word")

let test_fit_does_not_regress () =
  let scenarios = [ labeled_retail 42; labeled_retail 43 ] in
  let before =
    List.fold_left
      (fun acc s ->
        acc +. Matching.Weight_fit.fmeasure ~matchers:Matching.Matchers.default_suite ~tau:0.5 s)
      0.0 scenarios
    /. 2.0
  in
  let assignment =
    Matching.Weight_fit.fit ~rounds:1 ~matchers:Matching.Matchers.default_suite scenarios
  in
  let fitted = Matching.Weight_fit.reweight Matching.Matchers.default_suite assignment in
  let after =
    List.fold_left
      (fun acc s -> acc +. Matching.Weight_fit.fmeasure ~matchers:fitted ~tau:0.5 s)
      0.0 scenarios
    /. 2.0
  in
  Alcotest.(check bool) "coordinate ascent never regresses on its own objective" true
    (after >= before -. 1e-9);
  Alcotest.(check int) "assignment covers the suite"
    (List.length Matching.Matchers.default_suite)
    (List.length assignment)

let test_fit_downweights_misleading_matcher () =
  (* a sabotage matcher that scores unrelated pairs high: fitting should
     push its weight to (near) zero *)
  let sabotage =
    Matching.Matcher.make ~name:"sabotage" ~weight:2.0
      ~applicable:(fun _ _ -> true)
      (fun src tgt ->
        (* high iff the pair is NOT a same-name pair: actively harmful *)
        if
          Textsim.Simmetrics.name_similarity (Matching.Column.name src)
            (Matching.Column.name tgt)
          > 0.7
        then 0.0
        else 0.9)
  in
  let suite = sabotage :: Matching.Matchers.default_suite in
  let assignment = Matching.Weight_fit.fit ~rounds:2 ~matchers:suite [ labeled_retail 42 ] in
  let sabotage_weight = List.assoc "sabotage" assignment in
  Alcotest.(check bool)
    (Printf.sprintf "sabotage weight reduced (got %g)" sabotage_weight)
    true (sabotage_weight < 2.0)

let suite =
  [
    Alcotest.test_case "fmeasure range" `Slow test_fmeasure_range;
    Alcotest.test_case "reweight" `Quick test_reweight;
    Alcotest.test_case "fit does not regress" `Slow test_fit_does_not_regress;
    Alcotest.test_case "fit downweights sabotage" `Slow test_fit_downweights_misleading_matcher;
  ]
