test/test_ctxmatch.ml: Alcotest Array Attribute Condition Ctxmatch Learn List Matching Printf Relational Schema Stats String Table Value View Workload
