test/test_cli.ml: Alcotest Buffer Filename Fun List Printf Relational Stats String Sys Unix Workload
