test/test_integration.ml: Alcotest Array Attribute Condition Ctxmatch Database Evalharness List Mapping Matching Printf Relational Schema Stats Table Value View Workload
