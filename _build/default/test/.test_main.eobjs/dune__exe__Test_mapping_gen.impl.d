test/test_mapping_gen.ml: Alcotest Attribute Condition Ctxmatch Database List Mapping Matching Relational Schema String Table Value Workload
