test/test_tokenize.ml: Alcotest Gen List QCheck QCheck_alcotest String Textsim
