test/test_soundness.ml: Array Association Attribute Condition Constraints Executor List Mapping Mining Printf Propagation QCheck QCheck_alcotest Relation Relational Schema Table Value View
