test/test_select_matches.ml: Alcotest Attribute Condition Ctxmatch List Matching Printf Relational Schema Table Value View
