test/test_descriptive.ml: Alcotest Array Float Gen Printf QCheck QCheck_alcotest Stats
