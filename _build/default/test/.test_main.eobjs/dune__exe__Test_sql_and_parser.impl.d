test/test_sql_and_parser.ml: Alcotest Attribute Condition Condition_parser Ctxmatch List Mapping Printf Relational Schema String Table Value View Workload
