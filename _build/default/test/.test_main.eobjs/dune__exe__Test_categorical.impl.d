test/test_categorical.ml: Alcotest Attribute Categorical List Printf Relational Schema Table Value
