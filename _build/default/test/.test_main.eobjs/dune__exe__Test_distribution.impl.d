test/test_distribution.ml: Alcotest Float List Printf QCheck QCheck_alcotest Stats
