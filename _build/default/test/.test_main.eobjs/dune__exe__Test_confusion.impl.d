test/test_confusion.ml: Alcotest Float Gen List Printf QCheck QCheck_alcotest Stats
