test/test_conjunctive.ml: Alcotest Array Attribute Condition Ctxmatch Database Evalharness List Matching Printf Relational Schema Stats String Table Value View Workload
