test/test_table.ml: Alcotest Array Attribute List Relational Schema Table Value
