test/test_eval.ml: Alcotest Condition Evalharness List Matching Relational Stats Value Workload
