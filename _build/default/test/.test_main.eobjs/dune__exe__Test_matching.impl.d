test/test_matching.ml: Alcotest Array Attribute Condition Database Float List Matching Printf Relational Schema Table Value View Workload
