test/test_sampling.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Stats
