test/test_simmetrics.ml: Alcotest Float Printf QCheck QCheck_alcotest Textsim
