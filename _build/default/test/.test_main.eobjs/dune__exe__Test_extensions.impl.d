test/test_extensions.ml: Alcotest Array Condition Ctxmatch Database Evalharness Float List Mapping Matching Relational Schema Stats Table Value Workload
