test/test_condition.ml: Alcotest Attribute Condition List QCheck QCheck_alcotest Relational Schema Value
