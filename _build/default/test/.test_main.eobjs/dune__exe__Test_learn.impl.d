test/test_learn.ml: Alcotest Array Float Learn List QCheck QCheck_alcotest Stats Textsim
