test/test_fmeasure.ml: Alcotest Float Int Printf QCheck QCheck_alcotest Stats
