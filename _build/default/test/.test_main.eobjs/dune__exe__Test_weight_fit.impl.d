test/test_weight_fit.ml: Alcotest List Matching Printf Textsim Workload
