test/test_view.ml: Alcotest Array Attribute Condition List Relational Schema Table Value View
