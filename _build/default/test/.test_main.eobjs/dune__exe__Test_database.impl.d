test/test_database.ml: Alcotest Attribute Database List Relational Schema Table Value
