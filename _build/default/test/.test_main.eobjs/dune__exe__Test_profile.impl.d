test/test_profile.ml: Alcotest Float Gen List Printf QCheck QCheck_alcotest Stats Textsim Workload
