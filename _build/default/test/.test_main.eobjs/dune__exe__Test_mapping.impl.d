test/test_mapping.ml: Alcotest Association Attribute Condition Constraints Executor List Mapping Mapping_gen Mining Printf Propagation Relation Relational Schema Sp_query Table Value
