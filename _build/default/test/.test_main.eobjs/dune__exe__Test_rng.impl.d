test/test_rng.ml: Alcotest Array Float QCheck QCheck_alcotest Stats
