test/test_csv.ml: Alcotest Attribute Csv_io Filename List QCheck QCheck_alcotest Relational Schema Sys Table Value
