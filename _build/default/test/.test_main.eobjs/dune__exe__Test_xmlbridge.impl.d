test/test_xmlbridge.ml: Alcotest Attribute Ctxmatch Evalharness List Printf QCheck QCheck_alcotest Relational Schema String Table Value Workload Xmlbridge
