test/test_workload.ml: Alcotest Array Categorical Database Float List Relational Schema Stats String Table Value Workload
