open Relational

let test_type_of () =
  Alcotest.(check bool) "null has no type" true (Value.type_of Value.Null = None);
  Alcotest.(check bool) "int" true (Value.type_of (Value.Int 1) = Some Value.Tint);
  Alcotest.(check bool) "string" true (Value.type_of (Value.String "x") = Some Value.Tstring)

let test_compare_numeric_cross_type () =
  Alcotest.(check int) "int = float" 0 (Value.compare (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "int < float" true (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  Alcotest.(check bool) "float > int" true (Value.compare (Value.Float 3.5) (Value.Int 3) > 0)

let test_compare_rank_order () =
  Alcotest.(check bool) "null < bool" true (Value.compare Value.Null (Value.Bool false) < 0);
  Alcotest.(check bool) "bool < int" true (Value.compare (Value.Bool true) (Value.Int 0) < 0);
  Alcotest.(check bool) "num < string" true (Value.compare (Value.Int 99) (Value.String "a") < 0)

let test_equal_hash_consistent () =
  let a = Value.Int 2 and b = Value.Float 2.0 in
  Alcotest.(check bool) "equal" true (Value.equal a b);
  Alcotest.(check int) "hash agrees" (Value.hash a) (Value.hash b)

let test_to_string () =
  Alcotest.(check string) "null empty" "" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "float integer-valued" "2.0" (Value.to_string (Value.Float 2.0));
  Alcotest.(check string) "string" "hi" (Value.to_string (Value.String "hi"));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true))

let test_to_float () =
  Alcotest.(check bool) "int" true (Value.to_float (Value.Int 3) = Some 3.0);
  Alcotest.(check bool) "bool" true (Value.to_float (Value.Bool true) = Some 1.0);
  Alcotest.(check bool) "string none" true (Value.to_float (Value.String "3") = None);
  Alcotest.(check bool) "null none" true (Value.to_float Value.Null = None)

let test_of_string_as () =
  Alcotest.(check bool) "int parse" true (Value.of_string_as Value.Tint "41" = Value.Int 41);
  Alcotest.(check bool) "int trim" true (Value.of_string_as Value.Tint " 41 " = Value.Int 41);
  Alcotest.(check bool) "bad int -> null" true (Value.of_string_as Value.Tint "x" = Value.Null);
  Alcotest.(check bool) "empty -> null" true (Value.of_string_as Value.Tstring "" = Value.Null);
  Alcotest.(check bool) "bool yes" true (Value.of_string_as Value.Tbool "yes" = Value.Bool true);
  Alcotest.(check bool) "float" true (Value.of_string_as Value.Tfloat "2.5" = Value.Float 2.5)

let test_infer () =
  Alcotest.(check bool) "int" true (Value.infer "12" = Value.Int 12);
  Alcotest.(check bool) "float" true (Value.infer "1.5" = Value.Float 1.5);
  Alcotest.(check bool) "bool" true (Value.infer "true" = Value.Bool true);
  Alcotest.(check bool) "string" true (Value.infer "12a" = Value.String "12a");
  Alcotest.(check bool) "empty null" true (Value.infer "" = Value.Null)

let test_ty_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) "roundtrip" true
        (Value.ty_of_string (Value.ty_to_string ty) = Some ty))
    [ Value.Tint; Value.Tfloat; Value.Tstring; Value.Tbool ];
  Alcotest.(check bool) "real -> float" true (Value.ty_of_string "real" = Some Value.Tfloat);
  Alcotest.(check bool) "unknown" true (Value.ty_of_string "blob" = None)

let qcheck_compare_antisymmetric =
  let gen =
    QCheck.oneof
      [
        QCheck.always Value.Null;
        QCheck.map (fun i -> Value.Int i) QCheck.small_int;
        QCheck.map (fun f -> Value.Float f) (QCheck.float_range (-100.0) 100.0);
        QCheck.map (fun s -> Value.String s) (QCheck.string_of_size (QCheck.Gen.return 3));
        QCheck.map (fun b -> Value.Bool b) QCheck.bool;
      ]
  in
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500 (QCheck.pair gen gen)
    (fun (a, b) -> compare (Value.compare a b) 0 = compare 0 (Value.compare b a))

let suite =
  [
    Alcotest.test_case "type_of" `Quick test_type_of;
    Alcotest.test_case "numeric cross-type compare" `Quick test_compare_numeric_cross_type;
    Alcotest.test_case "rank order" `Quick test_compare_rank_order;
    Alcotest.test_case "equal/hash consistent" `Quick test_equal_hash_consistent;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "to_float" `Quick test_to_float;
    Alcotest.test_case "of_string_as" `Quick test_of_string_as;
    Alcotest.test_case "infer" `Quick test_infer;
    Alcotest.test_case "ty roundtrip" `Quick test_ty_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_compare_antisymmetric;
  ]
