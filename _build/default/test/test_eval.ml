open Relational

let retail_params = Workload.Retail.default_params
let truth = Evalharness.Ground_truth.retail retail_params Workload.Retail.Ryan_eyers

let book_match ?(cond = Condition.Eq ("ItemType", Value.String "Book1")) () =
  Matching.Schema_match.contextual ~view_name:"v" ~src_base:"Inventory" ~src_attr:"Title"
    ~tgt_table:"Book" ~tgt_attr:"BookTitle" ~condition:cond 0.9

let test_correct_simple_condition () =
  Alcotest.(check bool) "Book1 condition correct" true
    (Evalharness.Ground_truth.correct truth (book_match ()))

let test_correct_disjunctive_subset () =
  let cond = Condition.In ("ItemType", [ Value.String "Book1"; Value.String "Book2" ]) in
  Alcotest.(check bool) "full book set correct" true
    (Evalharness.Ground_truth.correct truth (book_match ~cond ()))

let test_incorrect_mixed_condition () =
  let cond = Condition.In ("ItemType", [ Value.String "Book1"; Value.String "CD1" ]) in
  Alcotest.(check bool) "mixed labels wrong" false
    (Evalharness.Ground_truth.correct truth (book_match ~cond ()))

let test_incorrect_wrong_attribute_condition () =
  let cond = Condition.Eq ("StockStatus", Value.String "Low") in
  Alcotest.(check bool) "wrong context attribute" false
    (Evalharness.Ground_truth.correct truth (book_match ~cond ()))

let test_incorrect_wrong_side () =
  let cond = Condition.Eq ("ItemType", Value.String "CD1") in
  Alcotest.(check bool) "cd condition on book target" false
    (Evalharness.Ground_truth.correct truth (book_match ~cond ()))

let test_standard_matches_ignored () =
  let std =
    Matching.Schema_match.standard ~src_table:"Inventory" ~src_attr:"Title" ~tgt_table:"Book"
      ~tgt_attr:"BookTitle" 0.9
  in
  Alcotest.(check bool) "standard never correct" false
    (Evalharness.Ground_truth.correct truth std);
  (* nor counted as found *)
  let c = Evalharness.Ground_truth.evaluate truth [ std ] in
  Alcotest.(check int) "found 0" 0 c.Stats.Fmeasure.found

let test_accuracy_precision () =
  let good = book_match () in
  let bad =
    Matching.Schema_match.contextual ~view_name:"v" ~src_base:"Inventory" ~src_attr:"Quantity"
      ~tgt_table:"Book" ~tgt_attr:"BookTitle"
      ~condition:(Condition.Eq ("ItemType", Value.String "Book1"))
      0.7
  in
  let matches = [ good; bad ] in
  Alcotest.(check (float 1e-9)) "precision half" 0.5
    (Evalharness.Ground_truth.precision truth matches);
  Alcotest.(check (float 1e-9)) "accuracy 1/12" (1.0 /. 12.0)
    (Evalharness.Ground_truth.accuracy truth matches)

let test_duplicate_matches_counted_once () =
  let matches = [ book_match (); book_match () ] in
  let c = Evalharness.Ground_truth.evaluate truth matches in
  Alcotest.(check int) "deduped" 1 c.Stats.Fmeasure.found

let test_multiple_correct_conditions_one_expectation () =
  (* LateDisjuncts with gamma = 4 returns Book1 and Book2 views for the
     same edge: both correct, expectation covered once, precision 1. *)
  let m1 = book_match () in
  let m2 = book_match ~cond:(Condition.Eq ("ItemType", Value.String "Book2")) () in
  Alcotest.(check (float 1e-9)) "precision 1" 1.0
    (Evalharness.Ground_truth.precision truth [ m1; m2 ]);
  let c = Evalharness.Ground_truth.evaluate truth [ m1; m2 ] in
  Alcotest.(check int) "covered once" 1 c.Stats.Fmeasure.true_positives

let test_grades_truth () =
  let gt = Evalharness.Ground_truth.grades Workload.Grades.default_params in
  Alcotest.(check int) "name + 5 grades" 6 (List.length gt.Evalharness.Ground_truth.expectations);
  let good =
    Matching.Schema_match.contextual ~view_name:"v" ~src_base:"grades_narrow" ~src_attr:"grade"
      ~tgt_table:"grades_wide" ~tgt_attr:"grade2"
      ~condition:(Condition.Eq ("examNum", Value.Int 2))
      0.9
  in
  Alcotest.(check bool) "aligned exam correct" true (Evalharness.Ground_truth.correct gt good);
  let misaligned =
    Matching.Schema_match.contextual ~view_name:"v" ~src_base:"grades_narrow" ~src_attr:"grade"
      ~tgt_table:"grades_wide" ~tgt_attr:"grade2"
      ~condition:(Condition.Eq ("examNum", Value.Int 3))
      0.9
  in
  Alcotest.(check bool) "misaligned exam wrong" false
    (Evalharness.Ground_truth.correct gt misaligned)

let test_experiment_average () =
  let m1 =
    { Evalharness.Experiment.fmeasure = 1.0; accuracy = 1.0; precision = 1.0; seconds = 2.0; candidate_views = 4.0 }
  in
  let m2 =
    { Evalharness.Experiment.fmeasure = 0.0; accuracy = 0.5; precision = 0.0; seconds = 4.0; candidate_views = 6.0 }
  in
  let avg = Evalharness.Experiment.average [ m1; m2 ] in
  Alcotest.(check (float 1e-9)) "f" 0.5 avg.Evalharness.Experiment.fmeasure;
  Alcotest.(check (float 1e-9)) "acc" 0.75 avg.Evalharness.Experiment.accuracy;
  Alcotest.(check (float 1e-9)) "sec" 3.0 avg.Evalharness.Experiment.seconds;
  Alcotest.(check bool) "empty is zero" true
    (Evalharness.Experiment.average [] = Evalharness.Experiment.zero)

let test_experiment_repeat_varies_seed () =
  let seeds = ref [] in
  let _ =
    Evalharness.Experiment.repeat ~reps:3 ~base_seed:10 (fun ~seed ->
        seeds := seed :: !seeds;
        Evalharness.Experiment.zero)
  in
  Alcotest.(check (list int)) "seeds" [ 12; 11; 10 ] !seeds

let test_timed () =
  let v, t = Evalharness.Experiment.timed (fun () -> 42) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check bool) "non-negative" true (t >= 0.0)

let suite =
  [
    Alcotest.test_case "correct simple condition" `Quick test_correct_simple_condition;
    Alcotest.test_case "correct disjunctive subset" `Quick test_correct_disjunctive_subset;
    Alcotest.test_case "incorrect mixed condition" `Quick test_incorrect_mixed_condition;
    Alcotest.test_case "incorrect context attribute" `Quick test_incorrect_wrong_attribute_condition;
    Alcotest.test_case "incorrect side" `Quick test_incorrect_wrong_side;
    Alcotest.test_case "standard matches ignored" `Quick test_standard_matches_ignored;
    Alcotest.test_case "accuracy and precision" `Quick test_accuracy_precision;
    Alcotest.test_case "duplicates counted once" `Quick test_duplicate_matches_counted_once;
    Alcotest.test_case "multiple correct conditions" `Quick test_multiple_correct_conditions_one_expectation;
    Alcotest.test_case "grades ground truth" `Quick test_grades_truth;
    Alcotest.test_case "experiment average" `Quick test_experiment_average;
    Alcotest.test_case "experiment repeat seeds" `Quick test_experiment_repeat_varies_seed;
    Alcotest.test_case "timed" `Quick test_timed;
  ]
