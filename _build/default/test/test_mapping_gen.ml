(* Mapping_gen plan structure and execution semantics. *)
open Relational

let retail_setup () =
  let params = { Workload.Retail.default_params with rows = 300; target_rows = 150 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let r = Ctxmatch.Context_match.run ~config:Ctxmatch.Config.default ~infer ~source ~target () in
  let plan = Mapping.Mapping_gen.plan ~source ~target ~matches:r.Ctxmatch.Context_match.matches () in
  (params, source, target, r, plan)

let test_plan_relations () =
  let _, _, _, r, plan = retail_setup () in
  (* one base relation per source table + one view per distinct contextual source *)
  let views = List.filter Mapping.Relation.is_view plan.Mapping.Mapping_gen.relations in
  let distinct_view_names =
    Ctxmatch.Context_match.contextual_matches r
    |> List.map (fun (m : Matching.Schema_match.t) -> m.src_owner)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check int) "one relation per distinct view" (List.length distinct_view_names)
    (List.length views);
  Alcotest.(check bool) "base table present" true
    (List.exists
       (fun rel -> Mapping.Relation.name rel = Workload.Retail.source_table_name)
       plan.Mapping.Mapping_gen.relations)

let test_plan_mappings_cover_targets () =
  let _, _, target, _, plan = retail_setup () in
  Alcotest.(check (list string)) "one mapping per target table"
    (Database.table_names target)
    (List.map (fun m -> m.Mapping.Mapping_gen.target_table) plan.Mapping.Mapping_gen.mappings)

let test_retail_execution_shapes () =
  let _, source, _, r, plan = retail_setup () in
  let mapped = Mapping.Mapping_gen.execute_all plan in
  let book = Database.table mapped "Book" in
  let music = Database.table mapped "Music" in
  (* horizontal partitioning: book rows + music rows = selected source rows *)
  let inv = Database.table source Workload.Retail.source_table_name in
  Alcotest.(check bool) "book rows from the book views only" true
    (Table.row_count book > 0 && Table.row_count book < Table.row_count inv);
  Alcotest.(check bool) "music rows too" true (Table.row_count music > 0);
  (* if both sides' views were selected, the partition is complete *)
  let contextual = Ctxmatch.Context_match.contextual_matches r in
  let sides =
    contextual
    |> List.map (fun (m : Matching.Schema_match.t) -> m.tgt_table)
    |> List.sort_uniq String.compare
  in
  if List.length sides = 2 then
    Alcotest.(check int) "partition complete" (Table.row_count inv)
      (Table.row_count book + Table.row_count music)

let test_executed_values_from_source () =
  let _, source, _, _, plan = retail_setup () in
  let mapped = Mapping.Mapping_gen.execute_all plan in
  let book = Database.table mapped "Book" in
  if Table.row_count book > 0 then begin
    let title = Table.cell book 0 "BookTitle" in
    let inv = Database.table source Workload.Retail.source_table_name in
    let titles = Table.distinct_values inv "Title" in
    Alcotest.(check bool) "title came from the source sample" true
      (List.exists (Value.equal title) titles)
  end

let test_skolem_fills_unmapped_string_attrs () =
  (* a target attribute with no correspondence gets a deterministic
     non-null Skolem value *)
  let src_schema = Schema.make "s" [ Attribute.string "k"; Attribute.string "v" ] in
  let src =
    Table.make src_schema
      [ [| Value.String "a"; Value.String "x" |]; [| Value.String "b"; Value.String "y" |] ]
  in
  let tgt_schema =
    Schema.make "t"
      [ Attribute.string "k"; Attribute.string "v"; Attribute.string "unmapped" ]
  in
  let target = Database.make "tdb" [ Table.make tgt_schema [] ] in
  let source = Database.make "sdb" [ src ] in
  let matches =
    [
      Matching.Schema_match.contextual ~view_name:"s where k = a" ~src_base:"s" ~src_attr:"k"
        ~tgt_table:"t" ~tgt_attr:"k"
        ~condition:(Condition.Eq ("k", Value.String "a"))
        0.9;
      Matching.Schema_match.contextual ~view_name:"s where k = a" ~src_base:"s" ~src_attr:"v"
        ~tgt_table:"t" ~tgt_attr:"v"
        ~condition:(Condition.Eq ("k", Value.String "a"))
        0.9;
    ]
  in
  let plan = Mapping.Mapping_gen.plan ~source ~target ~matches () in
  let mapped = Mapping.Mapping_gen.execute_all plan in
  let t = Database.table mapped "t" in
  Alcotest.(check int) "one row (k = a)" 1 (Table.row_count t);
  let unmapped = Table.cell t 0 "unmapped" in
  Alcotest.(check bool) "skolemised, not null" false (Value.is_null unmapped);
  Alcotest.(check bool) "skolem marker" true
    (String.length (Value.to_string unmapped) >= 3
    && String.sub (Value.to_string unmapped) 0 3 = "sk_")

let test_empty_matches_empty_outputs () =
  let src = Table.make (Schema.make "s" [ Attribute.int "a" ]) [ [| Value.Int 1 |] ] in
  let tgt = Table.make (Schema.make "t" [ Attribute.int "b" ]) [] in
  let plan =
    Mapping.Mapping_gen.plan
      ~source:(Database.make "sdb" [ src ])
      ~target:(Database.make "tdb" [ tgt ])
      ~matches:[] ()
  in
  let mapped = Mapping.Mapping_gen.execute_all plan in
  Alcotest.(check int) "no rows" 0 (Table.row_count (Database.table mapped "t"))

let test_declared_constraints_respected () =
  (* declared constraints flow into propagation even when mining would
     not find them (here: a declared key on an empty-ish instance) *)
  let src =
    Table.make
      (Schema.make "s" [ Attribute.string "k"; Attribute.string "l" ])
      [ [| Value.String "a"; Value.String "x" |]; [| Value.String "a"; Value.String "y" |] ]
  in
  let tgt = Table.make (Schema.make "t" [ Attribute.string "k" ]) [] in
  let matches =
    [
      Matching.Schema_match.contextual ~view_name:"s where l = x" ~src_base:"s" ~src_attr:"k"
        ~tgt_table:"t" ~tgt_attr:"k"
        ~condition:(Condition.Eq ("l", Value.String "x"))
        0.9;
    ]
  in
  let declared = [ Mapping.Constraints.key "s" [ "k"; "l" ] ] in
  let plan =
    Mapping.Mapping_gen.plan ~declared
      ~source:(Database.make "sdb" [ src ])
      ~target:(Database.make "tdb" [ tgt ])
      ~matches ()
  in
  Alcotest.(check bool) "contextual propagation fired from the declared key" true
    (List.exists
       (fun (d : Mapping.Propagation.derived) ->
         d.rule = "contextual-propagation"
         && d.constr = Mapping.Constraints.key "s where l = x" [ "k" ])
       plan.Mapping.Mapping_gen.derived)

let suite =
  [
    Alcotest.test_case "plan relations" `Slow test_plan_relations;
    Alcotest.test_case "plan covers targets" `Slow test_plan_mappings_cover_targets;
    Alcotest.test_case "retail execution shapes" `Slow test_retail_execution_shapes;
    Alcotest.test_case "executed values from source" `Slow test_executed_values_from_source;
    Alcotest.test_case "skolem fills unmapped attrs" `Quick test_skolem_fills_unmapped_string_attrs;
    Alcotest.test_case "empty matches, empty outputs" `Quick test_empty_matches_empty_outputs;
    Alcotest.test_case "declared constraints respected" `Quick test_declared_constraints_respected;
  ]
