let close ?(eps = 1e-6) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "expected %.6f got %.6f" expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let test_levenshtein () =
  Alcotest.(check int) "kitten/sitting" 3 (Textsim.Simmetrics.levenshtein "kitten" "sitting");
  Alcotest.(check int) "identical" 0 (Textsim.Simmetrics.levenshtein "abc" "abc");
  Alcotest.(check int) "to empty" 3 (Textsim.Simmetrics.levenshtein "abc" "");
  Alcotest.(check int) "from empty" 4 (Textsim.Simmetrics.levenshtein "" "abcd")

let test_levenshtein_similarity () =
  close 1.0 (Textsim.Simmetrics.levenshtein_similarity "" "");
  close 1.0 (Textsim.Simmetrics.levenshtein_similarity "x" "x");
  close 0.0 (Textsim.Simmetrics.levenshtein_similarity "ab" "xy");
  close (1.0 -. (3.0 /. 7.0)) (Textsim.Simmetrics.levenshtein_similarity "kitten" "sitting")

let test_jaro () =
  close 1.0 (Textsim.Simmetrics.jaro "abc" "abc");
  close 0.0 (Textsim.Simmetrics.jaro "abc" "");
  close 1.0 (Textsim.Simmetrics.jaro "" "");
  (* classic example *)
  close ~eps:1e-3 0.944 (Textsim.Simmetrics.jaro "martha" "marhta")

let test_jaro_winkler () =
  close ~eps:1e-3 0.961 (Textsim.Simmetrics.jaro_winkler "martha" "marhta");
  (* prefix boost only helps *)
  Alcotest.(check bool) "boost" true
    (Textsim.Simmetrics.jaro_winkler "prefix" "prefax" >= Textsim.Simmetrics.jaro "prefix" "prefax")

let test_jaccard_dice_overlap () =
  close 1.0 (Textsim.Simmetrics.jaccard [] []);
  close (1.0 /. 3.0) (Textsim.Simmetrics.jaccard [ "a"; "b" ] [ "b"; "c" ]);
  close (2.0 /. 4.0) (Textsim.Simmetrics.dice [ "a"; "b" ] [ "b"; "c" ]);
  close 1.0 (Textsim.Simmetrics.overlap [ "a" ] [ "a"; "b"; "c" ]);
  close 0.0 (Textsim.Simmetrics.overlap [ "x" ] [ "a" ]);
  close 1.0 (Textsim.Simmetrics.overlap [] [])

let test_cosine_bags () =
  close 1.0 (Textsim.Simmetrics.cosine_bags [ ("a", 1.0) ] [ ("a", 5.0) ]);
  close 0.0 (Textsim.Simmetrics.cosine_bags [ ("a", 1.0) ] [ ("b", 1.0) ]);
  close 0.0 (Textsim.Simmetrics.cosine_bags [] [ ("a", 1.0) ]);
  (* duplicate keys accumulate *)
  let c = Textsim.Simmetrics.cosine_bags [ ("a", 1.0); ("a", 1.0); ("b", 2.0) ] [ ("a", 1.0); ("b", 1.0) ] in
  close (4.0 /. (sqrt 8.0 *. sqrt 2.0)) c

let test_name_similarity () =
  close 1.0 (Textsim.Simmetrics.name_similarity "ItemType" "item_type");
  Alcotest.(check bool) "related names score well" true
    (Textsim.Simmetrics.name_similarity "BookTitle" "title" > 0.6);
  Alcotest.(check bool) "unrelated names score low" true
    (Textsim.Simmetrics.name_similarity "quantity" "author" < 0.6)

let qcheck_jaro_symmetric =
  let word = QCheck.string_gen_of_size QCheck.Gen.(0 -- 10) QCheck.Gen.(char_range 'a' 'e') in
  QCheck.Test.make ~name:"jaro symmetric" ~count:500 (QCheck.pair word word) (fun (a, b) ->
      Float.abs (Textsim.Simmetrics.jaro a b -. Textsim.Simmetrics.jaro b a) < 1e-9)

let qcheck_levenshtein_triangle =
  let word = QCheck.string_gen_of_size QCheck.Gen.(0 -- 8) QCheck.Gen.(char_range 'a' 'c') in
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:300
    (QCheck.triple word word word) (fun (a, b, c) ->
      Textsim.Simmetrics.levenshtein a c
      <= Textsim.Simmetrics.levenshtein a b + Textsim.Simmetrics.levenshtein b c)

let qcheck_similarity_range =
  let word = QCheck.string_gen_of_size QCheck.Gen.(0 -- 10) QCheck.Gen.printable in
  QCheck.Test.make ~name:"similarities within [0,1]" ~count:300 (QCheck.pair word word)
    (fun (a, b) ->
      let in01 x = x >= 0.0 && x <= 1.0 +. 1e-9 in
      in01 (Textsim.Simmetrics.levenshtein_similarity a b)
      && in01 (Textsim.Simmetrics.jaro a b)
      && in01 (Textsim.Simmetrics.jaro_winkler a b)
      && in01 (Textsim.Simmetrics.name_similarity a b))

let suite =
  [
    Alcotest.test_case "levenshtein" `Quick test_levenshtein;
    Alcotest.test_case "levenshtein similarity" `Quick test_levenshtein_similarity;
    Alcotest.test_case "jaro" `Quick test_jaro;
    Alcotest.test_case "jaro-winkler" `Quick test_jaro_winkler;
    Alcotest.test_case "jaccard/dice/overlap" `Quick test_jaccard_dice_overlap;
    Alcotest.test_case "cosine bags" `Quick test_cosine_bags;
    Alcotest.test_case "name similarity" `Quick test_name_similarity;
    QCheck_alcotest.to_alcotest qcheck_jaro_symmetric;
    QCheck_alcotest.to_alcotest qcheck_levenshtein_triangle;
    QCheck_alcotest.to_alcotest qcheck_similarity_range;
  ]
