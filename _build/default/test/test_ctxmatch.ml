(* ClusteredViewGen, the three InferCandidateViews implementations,
   disjunct merging, SelectContextualMatches, ContextMatch. *)
open Relational

let config = Ctxmatch.Config.default

(* A small table where `kind` is perfectly predicted by `text`
   (book/music vocabulary) and `noise` predicts nothing. *)
let clustered_table ?(rows = 120) ?(labels = [| "b"; "m" |]) () =
  let rng = Stats.Rng.create 17 in
  let schema =
    Schema.make "src"
      [ Attribute.string "kind"; Attribute.string "text"; Attribute.string "noise" ]
  in
  let row _ =
    let label = Stats.Rng.pick rng labels in
    let text =
      if String.length label > 0 && label.[0] = 'b' then
        (Workload.Corpus.book rng).Workload.Corpus.book_title
      else (Workload.Corpus.album rng).Workload.Corpus.album_title
    in
    [| Value.String label; Value.String text; Value.String (Workload.Corpus.random_noise_text rng) |]
  in
  Table.of_rows schema (Array.init rows row)

let test_feature_of () =
  let schema = Schema.make "t" [ Attribute.int "n"; Attribute.string "s" ] in
  let table = Table.make schema [ [| Value.Int 3; Value.Null |] ] in
  let row = (Table.rows table).(0) in
  Alcotest.(check bool) "int is number" true
    (Ctxmatch.Clustered_view_gen.feature_of table ~h:"n" row = Learn.Classifier.Number 3.0);
  Alcotest.(check bool) "null is missing" true
    (Ctxmatch.Clustered_view_gen.feature_of table ~h:"s" row = Learn.Classifier.Missing)

let test_evaluate_significant_pair () =
  let table = clustered_table () in
  let rng = Stats.Rng.create 3 in
  match
    Ctxmatch.Clustered_view_gen.evaluate rng config Ctxmatch.Src_class_infer.teacher table
      ~h:"text" ~l:"kind" ~label_map:Value.to_string
  with
  | Some v ->
    Alcotest.(check bool) "significant" true v.Ctxmatch.Clustered_view_gen.significant;
    Alcotest.(check bool) "good quality" true (v.Ctxmatch.Clustered_view_gen.quality > 0.8)
  | None -> Alcotest.fail "expected a verdict"

let test_evaluate_insignificant_pair () =
  let table = clustered_table () in
  let rng = Stats.Rng.create 3 in
  match
    Ctxmatch.Clustered_view_gen.evaluate rng config Ctxmatch.Src_class_infer.teacher table
      ~h:"noise" ~l:"kind" ~label_map:Value.to_string
  with
  | Some v -> Alcotest.(check bool) "not significant" false v.Ctxmatch.Clustered_view_gen.significant
  | None -> Alcotest.fail "expected a verdict"

let test_evaluate_degenerate_single_label () =
  let table = clustered_table ~labels:[| "b" |] () in
  let rng = Stats.Rng.create 3 in
  Alcotest.(check bool) "single label -> none" true
    (Ctxmatch.Clustered_view_gen.evaluate rng config Ctxmatch.Src_class_infer.teacher table
       ~h:"text" ~l:"kind" ~label_map:Value.to_string
    = None)

let test_best_verdict_picks_informative_h () =
  let table = clustered_table () in
  let rng = Stats.Rng.create 5 in
  match
    Ctxmatch.Clustered_view_gen.best_verdict rng config Ctxmatch.Src_class_infer.teacher table
      ~l:"kind"
  with
  | Some v -> Alcotest.(check string) "text chosen" "text" v.Ctxmatch.Clustered_view_gen.h_attr
  | None -> Alcotest.fail "expected a verdict"

let test_generate_family_on_kind () =
  let table = clustered_table () in
  let rng = Stats.Rng.create 7 in
  let families =
    Ctxmatch.Clustered_view_gen.generate rng config Ctxmatch.Src_class_infer.teacher table
  in
  Alcotest.(check bool) "at least one family" true (families <> []);
  Alcotest.(check bool) "family on kind" true
    (List.for_all (fun f -> f.View.attribute = "kind") families)

let test_merged_families_group_same_type_labels () =
  (* 4 labels, b1/b2 both carry book text and m1/m2 music text: merging
     should group them into {b1,b2} and {m1,m2} *)
  let table = clustered_table ~rows:240 ~labels:[| "b1"; "b2"; "m1"; "m2" |] () in
  let rng = Stats.Rng.create 11 in
  let families =
    Ctxmatch.Clustered_view_gen.merged_families rng config Ctxmatch.Src_class_infer.teacher table
      ~l:"kind" ~h:"text"
  in
  Alcotest.(check bool) "merged families exist" true (families <> []);
  let groups_ok =
    List.exists
      (fun f ->
        List.exists
          (fun v ->
            match Condition.selected_values (View.condition v) with
            | Some ("kind", vs) ->
              let names = List.map Value.to_string vs in
              names = [ "b1"; "b2" ] || names = [ "m1"; "m2" ]
            | _ -> false)
          f.View.views)
      families
  in
  Alcotest.(check bool) "same-type labels merged" true groups_ok

let test_naive_partitions () =
  let parts = Ctxmatch.Naive_infer.partitions [ 1; 2; 3 ] ~limit:100 in
  Alcotest.(check int) "bell(3) = 5" 5 (List.length parts);
  List.iter
    (fun blocks ->
      let flattened = List.concat blocks |> List.sort compare in
      Alcotest.(check (list int)) "partition covers" [ 1; 2; 3 ] flattened)
    parts

let test_naive_partitions_limit () =
  let parts = Ctxmatch.Naive_infer.partitions [ 1; 2; 3; 4; 5 ] ~limit:10 in
  Alcotest.(check int) "truncated" 10 (List.length parts)

let test_bell_numbers () =
  List.iteri
    (fun i expected -> Alcotest.(check int) (Printf.sprintf "bell %d" i) expected (Ctxmatch.Naive_infer.bell_number i))
    [ 1; 1; 2; 5; 15; 52; 203 ]

let test_naive_infer_empty_matches () =
  let table = clustered_table () in
  let rng = Stats.Rng.create 1 in
  Alcotest.(check int) "no matches -> no views" 0
    (List.length (Ctxmatch.Naive_infer.infer.Ctxmatch.Infer.infer rng config ~source_table:table ~matches:[]))

let test_naive_infer_views_per_value () =
  let table = clustered_table () in
  let rng = Stats.Rng.create 1 in
  let fake_match =
    Matching.Schema_match.standard ~src_table:"src" ~src_attr:"text" ~tgt_table:"t"
      ~tgt_attr:"a" 0.9
  in
  let late = { config with Ctxmatch.Config.early_disjuncts = false } in
  let families =
    Ctxmatch.Naive_infer.infer.Ctxmatch.Infer.infer rng late ~source_table:table
      ~matches:[ fake_match ]
  in
  (* kind and possibly noise-derived categoricals; kind family has 2 views *)
  let kind_family = List.find (fun f -> f.View.attribute = "kind") families in
  Alcotest.(check int) "one view per value" 2 (List.length kind_family.View.views)

let test_infer_views_of_families_dedup () =
  let table = clustered_table () in
  let f1 = View.partition_family table "kind" in
  let f2 = View.partition_family table "kind" in
  Alcotest.(check int) "duplicates removed" 2
    (List.length (Ctxmatch.Infer.views_of_families [ f1; f2 ]))

let test_tgt_tagger () =
  let params = { Workload.Retail.default_params with target_rows = 150 } in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let tagger = Ctxmatch.Tgt_class_infer.make_tagger target in
  let rng = Stats.Rng.create 23 in
  let book = Workload.Corpus.book rng in
  (match Ctxmatch.Tgt_class_infer.tag tagger (Learn.Classifier.Text book.Workload.Corpus.book_title) with
  | Some tag -> Alcotest.(check string) "book title tagged" "Book.BookTitle" tag
  | None -> Alcotest.fail "expected tag");
  match Ctxmatch.Tgt_class_infer.tag tagger Learn.Classifier.Missing with
  | None -> ()
  | Some t -> Alcotest.failf "missing should not tag, got %s" t

let suite =
  [
    Alcotest.test_case "feature_of" `Quick test_feature_of;
    Alcotest.test_case "evaluate significant pair" `Quick test_evaluate_significant_pair;
    Alcotest.test_case "evaluate insignificant pair" `Quick test_evaluate_insignificant_pair;
    Alcotest.test_case "evaluate single label" `Quick test_evaluate_degenerate_single_label;
    Alcotest.test_case "best verdict picks informative h" `Quick test_best_verdict_picks_informative_h;
    Alcotest.test_case "generate family on kind" `Quick test_generate_family_on_kind;
    Alcotest.test_case "merged families group labels" `Quick test_merged_families_group_same_type_labels;
    Alcotest.test_case "naive partitions" `Quick test_naive_partitions;
    Alcotest.test_case "naive partitions limit" `Quick test_naive_partitions_limit;
    Alcotest.test_case "bell numbers" `Quick test_bell_numbers;
    Alcotest.test_case "naive infer empty matches" `Quick test_naive_infer_empty_matches;
    Alcotest.test_case "naive infer views per value" `Quick test_naive_infer_views_per_value;
    Alcotest.test_case "views_of_families dedup" `Quick test_infer_views_of_families_dedup;
    Alcotest.test_case "target tagger" `Quick test_tgt_tagger;
  ]
