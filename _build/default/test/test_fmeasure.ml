let close ?(eps = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "expected %.6f got %.6f" expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let counts = Stats.Fmeasure.counts ~equal:Int.equal

let test_perfect () =
  let c = counts ~expected:[ 1; 2; 3 ] ~found:[ 3; 2; 1 ] in
  close 1.0 (Stats.Fmeasure.precision c);
  close 1.0 (Stats.Fmeasure.recall c);
  close 1.0 (Stats.Fmeasure.f1 c)

let test_partial () =
  let c = counts ~expected:[ 1; 2; 3; 4 ] ~found:[ 1; 2; 9 ] in
  close (2.0 /. 3.0) (Stats.Fmeasure.precision c);
  close 0.5 (Stats.Fmeasure.recall c);
  close (2.0 *. (2.0 /. 3.0) *. 0.5 /. ((2.0 /. 3.0) +. 0.5)) (Stats.Fmeasure.f1 c)

let test_nothing_found () =
  let c = counts ~expected:[ 1 ] ~found:[] in
  close 0.0 (Stats.Fmeasure.precision c);
  close 0.0 (Stats.Fmeasure.recall c);
  close 0.0 (Stats.Fmeasure.f1 c)

let test_nothing_expected () =
  let c = counts ~expected:[] ~found:[] in
  close 1.0 (Stats.Fmeasure.precision c);
  close 1.0 (Stats.Fmeasure.recall c)

let test_duplicates_deduped () =
  let c = counts ~expected:[ 1; 1; 2 ] ~found:[ 1; 1; 1 ] in
  Alcotest.(check int) "found deduped" 1 c.Stats.Fmeasure.found;
  Alcotest.(check int) "expected deduped" 2 c.Stats.Fmeasure.expected;
  Alcotest.(check int) "tp" 1 c.Stats.Fmeasure.true_positives

let test_f_beta_weighting () =
  let c = counts ~expected:[ 1; 2; 3; 4 ] ~found:[ 1; 9 ] in
  (* precision 0.5, recall 0.25 *)
  let f_half = Stats.Fmeasure.f_beta ~beta:0.5 c in
  let f_two = Stats.Fmeasure.f_beta ~beta:2.0 c in
  Alcotest.(check bool) "beta<1 favours precision" true (f_half > Stats.Fmeasure.f1 c);
  Alcotest.(check bool) "beta>1 favours recall" true (f_two < Stats.Fmeasure.f1 c)

let test_of_rates () =
  close 0.0 (Stats.Fmeasure.of_rates ~precision:0.0 ~recall:0.0);
  close 1.0 (Stats.Fmeasure.of_rates ~precision:1.0 ~recall:1.0);
  close (2.0 *. 0.5 *. 1.0 /. 1.5) (Stats.Fmeasure.of_rates ~precision:0.5 ~recall:1.0)

let qcheck_f1_bounded_by_pr =
  QCheck.Test.make ~name:"F1 between min and max of P,R" ~count:300
    QCheck.(pair (float_range 0.01 1.0) (float_range 0.01 1.0))
    (fun (p, r) ->
      let f = Stats.Fmeasure.of_rates ~precision:p ~recall:r in
      f >= Float.min p r -. 1e-9 && f <= Float.max p r +. 1e-9)

let suite =
  [
    Alcotest.test_case "perfect" `Quick test_perfect;
    Alcotest.test_case "partial" `Quick test_partial;
    Alcotest.test_case "nothing found" `Quick test_nothing_found;
    Alcotest.test_case "nothing expected" `Quick test_nothing_expected;
    Alcotest.test_case "duplicates deduped" `Quick test_duplicates_deduped;
    Alcotest.test_case "f-beta weighting" `Quick test_f_beta_weighting;
    Alcotest.test_case "of_rates" `Quick test_of_rates;
    QCheck_alcotest.to_alcotest qcheck_f1_bounded_by_pr;
  ]
