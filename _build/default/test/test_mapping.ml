(* SP queries, constraints, mining, propagation, association, executor. *)
open Relational
open Mapping

(* The student/project schema of Examples 4.1-4.5. *)
let project_table =
  let schema =
    Schema.make "project"
      [
        Attribute.string "name";
        Attribute.int "assign";
        Attribute.string "grade";
        Attribute.string "instructor";
      ]
  in
  let rows =
    List.concat_map
      (fun name ->
        List.init 3 (fun a ->
            [|
              Value.String name;
              Value.Int a;
              Value.String (Printf.sprintf "g%d" a);
              Value.String "prof";
            |]))
      [ "ann"; "bob"; "cat"; "dan" ]
  in
  Table.make schema rows

let student_table =
  let schema =
    Schema.make "student"
      [ Attribute.string "name"; Attribute.string "email"; Attribute.string "address" ]
  in
  Table.make schema
    (List.map
       (fun n -> [| Value.String n; Value.String (n ^ "@u.edu"); Value.String "addr" |])
       [ "ann"; "bob"; "cat"; "dan" ])

let v_assign i =
  Relation.of_query
    ~name:(Printf.sprintf "V%d" i)
    (Sp_query.select_all "project" (Condition.Eq ("assign", Value.Int i)))
    project_table

let test_sp_query_eval () =
  let q = Sp_query.select_some [ "name"; "grade" ] "project" (Condition.Eq ("assign", Value.Int 1)) in
  let result = Sp_query.eval q project_table in
  Alcotest.(check int) "4 students" 4 (Table.row_count result);
  Alcotest.(check int) "2 columns" 2 (Table.arity result)

let test_sp_query_wrong_table () =
  let q = Sp_query.select_all "other" Condition.True in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sp_query.eval q project_table);
       false
     with Invalid_argument _ -> true)

let test_sp_query_to_string () =
  Alcotest.(check string) "rendering" "select name from project where assign = 1"
    (Sp_query.to_string (Sp_query.select_some [ "name" ] "project" (Condition.Eq ("assign", Value.Int 1))));
  Alcotest.(check string) "no condition" "select * from project"
    (Sp_query.to_string (Sp_query.select_all "project" Condition.True))

let test_relation_lineage () =
  let v = v_assign 1 in
  Alcotest.(check bool) "is view" true (Relation.is_view v);
  Alcotest.(check string) "base" "project" (Relation.base_name v);
  Alcotest.(check int) "4 rows" 4 (Table.row_count (Relation.table v));
  let b = Relation.base project_table in
  Alcotest.(check bool) "base not view" false (Relation.is_view b);
  Alcotest.(check bool) "base condition true" true
    (Relation.selection_condition b = Condition.True)

let test_key_check () =
  Alcotest.(check bool) "(name, assign) key" true
    (Constraints.holds_key project_table { Constraints.rel = "project"; key_attrs = [ "name"; "assign" ] });
  Alcotest.(check bool) "name alone not key" false
    (Constraints.holds_key project_table { Constraints.rel = "project"; key_attrs = [ "name" ] })

let test_fk_check () =
  let fk =
    { Constraints.fk_rel = "project"; fk_attrs = [ "name" ]; ref_rel = "student"; ref_attrs = [ "name" ] }
  in
  Alcotest.(check bool) "project.name -> student.name" true
    (Constraints.holds_fk project_table student_table fk);
  let bad =
    { Constraints.fk_rel = "student"; fk_attrs = [ "email" ]; ref_rel = "project"; ref_attrs = [ "name" ] }
  in
  Alcotest.(check bool) "emails not in names" false
    (Constraints.holds_fk student_table project_table bad)

let test_cfk_check () =
  let v1 = v_assign 1 in
  let cfk =
    {
      Constraints.cfk_rel = "V1";
      cfk_attrs = [ "name" ];
      ctx_attr = "assign";
      ctx_value = Value.Int 1;
      cfk_ref_rel = "project";
      cfk_ref_attrs = [ "name" ];
      ref_ctx_attr = "assign";
    }
  in
  Alcotest.(check bool) "cfk holds" true
    (Constraints.holds_cfk (Relation.table v1) project_table cfk);
  let wrong = { cfk with ctx_value = Value.Int 2 } in
  (* V1's names also appear with assign = 2 in this dataset, so this
     still holds; check a value outside the domain instead *)
  let impossible = { cfk with ctx_value = Value.Int 99 } in
  Alcotest.(check bool) "impossible context fails" false
    (Constraints.holds_cfk (Relation.table v1) project_table impossible);
  ignore wrong

let test_mine_keys () =
  let keys = Mining.mine_keys (Relation.base student_table) in
  let has attrs = List.exists (fun (k : Constraints.key) -> k.key_attrs = attrs) keys in
  Alcotest.(check bool) "name" true (has [ "name" ]);
  Alcotest.(check bool) "email" true (has [ "email" ]);
  (* address is constant, never a key; and no pair containing a
     single-attribute key is reported *)
  Alcotest.(check bool) "no [name; email] pair" false (has [ "name"; "email" ]);
  let pkeys = Mining.mine_keys (Relation.base project_table) in
  Alcotest.(check bool) "(name, assign)" true
    (List.exists (fun (k : Constraints.key) -> k.Constraints.key_attrs = [ "name"; "assign" ]) pkeys)

let test_mine_foreign_keys () =
  let fks = Mining.mine_foreign_keys [ Relation.base project_table; Relation.base student_table ] in
  Alcotest.(check bool) "project.name subset student.name" true
    (List.exists
       (fun (f : Constraints.foreign_key) ->
         f.fk_rel = "project" && f.fk_attrs = [ "name" ] && f.ref_rel = "student"
         && f.ref_attrs = [ "name" ])
       fks)

let test_mine_contextual_fks () =
  let rels = [ Relation.base project_table; v_assign 1 ] in
  let cfks = Mining.mine_contextual_fks rels in
  Alcotest.(check bool) "V1[name, assign=1] into project" true
    (List.exists
       (fun (c : Constraints.contextual_fk) ->
         c.cfk_rel = "V1" && c.cfk_attrs = [ "name" ]
         && Value.equal c.ctx_value (Value.Int 1))
       cfks)

let propagation_setup () =
  let rels = [ Relation.base project_table; Relation.base student_table; v_assign 1; v_assign 2 ] in
  let base =
    [
      Constraints.key "project" [ "name"; "assign" ];
      Constraints.key "student" [ "name" ];
      Constraints.fk "project" [ "name" ] "student" [ "name" ];
    ]
  in
  (rels, base, Propagation.derive ~relations:rels ~base)

let test_propagation_contextual_key () =
  let _, _, derived = propagation_setup () in
  Alcotest.(check bool) "V1[name] is a key (contextual propagation)" true
    (List.exists
       (fun (d : Propagation.derived) ->
         d.rule = "contextual-propagation"
         && d.constr = Constraints.key "V1" [ "name" ])
       derived)

let test_propagation_contextual_constraint () =
  let _, _, derived = propagation_setup () in
  Alcotest.(check bool) "V1[name, assign=1] ⊆ project[name, assign]" true
    (List.exists
       (fun (d : Propagation.derived) ->
         d.rule = "contextual-constraint"
         &&
         match d.constr with
         | Constraints.Cfk c ->
           c.cfk_rel = "V1" && c.cfk_attrs = [ "name" ]
           && Value.equal c.ctx_value (Value.Int 1)
           && c.cfk_ref_rel = "project"
         | Constraints.Key _ | Constraints.Fk _ -> false)
       derived)

let test_propagation_fk () =
  let _, _, derived = propagation_setup () in
  Alcotest.(check bool) "V1[name] ⊆ student[name] (Example 4.2)" true
    (List.exists
       (fun (d : Propagation.derived) ->
         d.rule = "fk-propagation" && d.constr = Constraints.fk "V1" [ "name" ] "student" [ "name" ])
       derived)

let test_propagation_selection () =
  let _, _, derived = propagation_setup () in
  Alcotest.(check bool) "full key survives selection" true
    (List.exists
       (fun (d : Propagation.derived) ->
         d.rule = "selection-propagation"
         && d.constr = Constraints.key "V1" [ "name"; "assign" ])
       derived)

let test_propagation_view_referencing () =
  (* a view family covering the whole domain of assign: each gets the
     base-references-view fk only if its selection covers the domain *)
  let all = Relation.of_query ~name:"Vall"
      (Sp_query.select_all "project" (Condition.In ("assign", [ Value.Int 0; Value.Int 1; Value.Int 2 ])))
      project_table
  in
  let rels = [ Relation.base project_table; all ] in
  let base = [ Constraints.key "project" [ "name"; "assign" ] ] in
  let derived = Propagation.derive ~relations:rels ~base in
  Alcotest.(check bool) "view-referencing fires" true
    (List.exists (fun (d : Propagation.derived) -> d.rule = "view-referencing") derived)

let test_association_join1 () =
  let rels, base, derived = propagation_setup () in
  let joins = Association.joins ~relations:rels ~constraints:base ~derived in
  Alcotest.(check bool) "join1 between V1 and V2 on name" true
    (List.exists
       (fun (j : Association.join) ->
         j.rule = "join1" && j.on = [ ("name", "name") ]
         && ((j.left = "V1" && j.right = "V2") || (j.left = "V2" && j.right = "V1")))
       joins)

let test_association_join2 () =
  (* same condition, different projected attributes *)
  let vg = Relation.of_query ~name:"VG"
      (Sp_query.select_some [ "name"; "grade" ] "project" (Condition.Eq ("assign", Value.Int 1)))
      project_table
  in
  let vi = Relation.of_query ~name:"VI"
      (Sp_query.select_some [ "name"; "instructor" ] "project" (Condition.Eq ("assign", Value.Int 1)))
      project_table
  in
  let rels = [ Relation.base project_table; vg; vi ] in
  let base = [ Constraints.key "project" [ "name"; "assign" ] ] in
  let derived = Propagation.derive ~relations:rels ~base in
  let joins = Association.joins ~relations:rels ~constraints:base ~derived in
  Alcotest.(check bool) "join2 fires for same condition" true
    (List.exists (fun (j : Association.join) -> j.rule = "join2") joins)

let test_association_join2_blocks_different_conditions () =
  (* Example 4.5: V_i and U_j with i <> j must NOT be joined by join2 *)
  let vg = Relation.of_query ~name:"VG"
      (Sp_query.select_some [ "name"; "grade" ] "project" (Condition.Eq ("assign", Value.Int 1)))
      project_table
  in
  let ui = Relation.of_query ~name:"UI"
      (Sp_query.select_some [ "name"; "instructor" ] "project" (Condition.Eq ("assign", Value.Int 2)))
      project_table
  in
  let rels = [ Relation.base project_table; vg; ui ] in
  let base = [ Constraints.key "project" [ "name"; "assign" ] ] in
  let derived = Propagation.derive ~relations:rels ~base in
  let joins = Association.joins ~relations:rels ~constraints:base ~derived in
  Alcotest.(check bool) "no join2 across conditions" false
    (List.exists (fun (j : Association.join) -> j.rule = "join2") joins)

let test_association_join3 () =
  let rels, base, derived = propagation_setup () in
  let joins = Association.joins ~relations:rels ~constraints:base ~derived in
  Alcotest.(check bool) "join3 from V1 to project with assign = 1 restriction" true
    (List.exists
       (fun (j : Association.join) ->
         j.rule = "join3" && j.left = "V1" && j.right = "project"
         && j.right_restrict = [ ("assign", Value.Int 1) ])
       joins)

let test_executor_qualify () =
  let q = Executor.qualify (v_assign 1) in
  Alcotest.(check bool) "qualified names" true
    (Schema.mem (Table.schema q) "V1.name" && Schema.mem (Table.schema q) "V1.grade")

let test_executor_full_outer_join () =
  let mk name rows =
    Table.make (Schema.make name [ Attribute.string (name ^ ".k"); Attribute.int (name ^ ".v") ]) rows
  in
  let left = mk "L" [ [| Value.String "a"; Value.Int 1 |]; [| Value.String "b"; Value.Int 2 |] ] in
  let right = mk "R" [ [| Value.String "b"; Value.Int 20 |]; [| Value.String "c"; Value.Int 30 |] ] in
  let j =
    Executor.join left right ~on:[ ("L.k", "R.k") ] ~right_restrict:[] ~kind:Association.Full_outer
  in
  Alcotest.(check int) "3 rows: a, b, c" 3 (Table.row_count j);
  let j_left =
    Executor.join left right ~on:[ ("L.k", "R.k") ] ~right_restrict:[] ~kind:Association.Left_outer
  in
  Alcotest.(check int) "left outer: a, b" 2 (Table.row_count j_left)

let test_executor_null_keys_never_match () =
  let mk name rows =
    Table.make (Schema.make name [ Attribute.string (name ^ ".k") ]) rows
  in
  let left = mk "L" [ [| Value.Null |] ] in
  let right = mk "R" [ [| Value.Null |] ] in
  let j = Executor.join left right ~on:[ ("L.k", "R.k") ] ~right_restrict:[] ~kind:Association.Full_outer in
  (* null row on each side, no match: left padded + right padded *)
  Alcotest.(check int) "two unmatched rows" 2 (Table.row_count j)

let test_executor_right_restrict () =
  let mk name rows =
    Table.make (Schema.make name [ Attribute.string (name ^ ".k"); Attribute.int (name ^ ".v") ]) rows
  in
  let left = mk "L" [ [| Value.String "a"; Value.Int 1 |] ] in
  let right = mk "R" [ [| Value.String "a"; Value.Int 1 |]; [| Value.String "a"; Value.Int 2 |] ] in
  let j =
    Executor.join left right ~on:[ ("L.k", "R.k") ] ~right_restrict:[ ("R.v", Value.Int 2) ]
      ~kind:Association.Left_outer
  in
  Alcotest.(check int) "restricted to one right row" 1 (Table.row_count j)

let test_join_component_chains () =
  let rels = [ v_assign 0; v_assign 1; v_assign 2 ] in
  let join_on a b =
    {
      Association.left = a;
      right = b;
      on = [ ("name", "name") ];
      right_restrict = [];
      kind = Association.Full_outer;
      rule = "join1";
    }
  in
  let joined, used = Executor.join_component rels [ join_on "V0" "V1"; join_on "V1" "V2" ] ~start:"V0" in
  Alcotest.(check int) "all three used" 3 (List.length used);
  Alcotest.(check int) "4 students" 4 (Table.row_count joined);
  Alcotest.(check bool) "columns from all views" true
    (Schema.mem (Table.schema joined) "V0.grade"
    && Schema.mem (Table.schema joined) "V1.grade"
    && Schema.mem (Table.schema joined) "V2.grade")

let test_skolem_deterministic () =
  let a = Mapping_gen.skolem "email" [ Value.String "ann" ] in
  let b = Mapping_gen.skolem "email" [ Value.String "ann" ] in
  let c = Mapping_gen.skolem "email" [ Value.String "bob" ] in
  Alcotest.(check bool) "same inputs same value" true (Value.equal a b);
  Alcotest.(check bool) "different inputs differ" false (Value.equal a c);
  Alcotest.(check bool) "non-null" false (Value.is_null a)

let suite =
  [
    Alcotest.test_case "sp query eval" `Quick test_sp_query_eval;
    Alcotest.test_case "sp query wrong table" `Quick test_sp_query_wrong_table;
    Alcotest.test_case "sp query rendering" `Quick test_sp_query_to_string;
    Alcotest.test_case "relation lineage" `Quick test_relation_lineage;
    Alcotest.test_case "key check" `Quick test_key_check;
    Alcotest.test_case "fk check" `Quick test_fk_check;
    Alcotest.test_case "cfk check" `Quick test_cfk_check;
    Alcotest.test_case "mine keys" `Quick test_mine_keys;
    Alcotest.test_case "mine foreign keys" `Quick test_mine_foreign_keys;
    Alcotest.test_case "mine contextual fks" `Quick test_mine_contextual_fks;
    Alcotest.test_case "propagation: contextual key" `Quick test_propagation_contextual_key;
    Alcotest.test_case "propagation: contextual constraint" `Quick test_propagation_contextual_constraint;
    Alcotest.test_case "propagation: fk" `Quick test_propagation_fk;
    Alcotest.test_case "propagation: selection" `Quick test_propagation_selection;
    Alcotest.test_case "propagation: view-referencing" `Quick test_propagation_view_referencing;
    Alcotest.test_case "association join1" `Quick test_association_join1;
    Alcotest.test_case "association join2" `Quick test_association_join2;
    Alcotest.test_case "association join2 blocked" `Quick test_association_join2_blocks_different_conditions;
    Alcotest.test_case "association join3" `Quick test_association_join3;
    Alcotest.test_case "executor qualify" `Quick test_executor_qualify;
    Alcotest.test_case "executor full outer join" `Quick test_executor_full_outer_join;
    Alcotest.test_case "executor null keys" `Quick test_executor_null_keys_never_match;
    Alcotest.test_case "executor right restrict" `Quick test_executor_right_restrict;
    Alcotest.test_case "join_component chains" `Quick test_join_component_chains;
    Alcotest.test_case "skolem deterministic" `Quick test_skolem_deterministic;
  ]
