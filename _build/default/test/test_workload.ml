open Relational

let test_corpus_deterministic () =
  let a = Workload.Corpus.books (Stats.Rng.create 3) 5 in
  let b = Workload.Corpus.books (Stats.Rng.create 3) 5 in
  Alcotest.(check bool) "same seed same corpus" true (a = b)

let test_corpus_book_fields () =
  let b = Workload.Corpus.book (Stats.Rng.create 1) in
  Alcotest.(check bool) "title non-empty" true (String.length b.Workload.Corpus.book_title > 0);
  Alcotest.(check bool) "price range" true
    (b.Workload.Corpus.book_price >= 5.0 && b.Workload.Corpus.book_price <= 40.0);
  Alcotest.(check bool) "pages range" true
    (b.Workload.Corpus.pages >= 120 && b.Workload.Corpus.pages < 820)

let test_corpus_album_fields () =
  let a = Workload.Corpus.album (Stats.Rng.create 2) in
  Alcotest.(check bool) "tracks range" true
    (a.Workload.Corpus.tracks >= 8 && a.Workload.Corpus.tracks <= 20);
  Alcotest.(check bool) "price range" true
    (a.Workload.Corpus.album_price >= 8.0 && a.Workload.Corpus.album_price <= 25.0)

let test_retail_labels () =
  Alcotest.(check int) "gamma 2: one book label" 1
    (List.length (Workload.Retail.book_labels ~gamma:2));
  Alcotest.(check int) "gamma 6: three cd labels" 3
    (List.length (Workload.Retail.cd_labels ~gamma:6));
  Alcotest.(check bool) "gamma 2 plain names" true
    (Workload.Retail.book_labels ~gamma:2 = [ Value.String "Book" ]);
  Alcotest.(check bool) "odd gamma rejected" true
    (try
       ignore (Workload.Retail.book_labels ~gamma:3);
       false
     with Invalid_argument _ -> true)

let test_retail_source_shape () =
  let params = { Workload.Retail.default_params with rows = 200 } in
  let db = Workload.Retail.source params in
  let inv = Database.table db Workload.Retail.source_table_name in
  Alcotest.(check int) "rows" 200 (Table.row_count inv);
  let types = Table.distinct_values inv Workload.Retail.item_type_attr in
  Alcotest.(check int) "gamma labels present" params.Workload.Retail.gamma (List.length types);
  Alcotest.(check bool) "ItemType categorical" true
    (Categorical.is_categorical inv Workload.Retail.item_type_attr);
  Alcotest.(check bool) "StockStatus categorical" true
    (Categorical.is_categorical inv Workload.Retail.stock_status_attr);
  Alcotest.(check bool) "Publisher not categorical" false
    (Categorical.is_categorical inv "Publisher");
  Alcotest.(check bool) "Title not categorical" false (Categorical.is_categorical inv "Title")

let test_retail_targets () =
  let params = { Workload.Retail.default_params with target_rows = 50 } in
  List.iter
    (fun style ->
      let db = Workload.Retail.target params style in
      Alcotest.(check int) "two tables" 2 (List.length (Database.tables db));
      List.iter
        (fun t ->
          Alcotest.(check int) "rows" 50 (Table.row_count t);
          Alcotest.(check int) "six attrs" 6 (Table.arity t))
        (Database.tables db))
    Workload.Retail.all_styles

let test_retail_expected_pairs () =
  List.iter
    (fun style ->
      let pairs = Workload.Retail.expected_pairs style in
      Alcotest.(check int) "12 expectations" 12 (List.length pairs);
      let books = List.filter (fun (_, _, _, b) -> b) pairs in
      Alcotest.(check int) "6 book side" 6 (List.length books))
    Workload.Retail.all_styles

let test_retail_source_target_disjoint () =
  let params = { Workload.Retail.default_params with rows = 100; target_rows = 100 } in
  let src = Database.table (Workload.Retail.source params) Workload.Retail.source_table_name in
  let tgt =
    Database.table (Workload.Retail.target params Workload.Retail.Ryan_eyers) "Book"
  in
  let src_titles =
    Table.distinct_values src "Title" |> List.map Value.to_string
  in
  let tgt_titles = Table.distinct_values tgt "BookTitle" |> List.map Value.to_string in
  let overlap = List.filter (fun t -> List.mem t tgt_titles) src_titles in
  (* independent streams: collisions are possible but must be rare *)
  Alcotest.(check bool) "mostly disjoint records" true
    (List.length overlap * 5 < List.length src_titles)

let test_grades_narrow_shape () =
  let p = { Workload.Grades.default_params with students = 20; exams = 4 } in
  let db = Workload.Grades.narrow p in
  let t = Database.table db Workload.Grades.narrow_table_name in
  Alcotest.(check int) "rows = students x exams" 80 (Table.row_count t);
  Alcotest.(check bool) "(name, examNum) key" true (Table.is_unique t [ "name"; "examNum" ]);
  Alcotest.(check bool) "examNum categorical" true
    (Categorical.is_categorical t Workload.Grades.exam_attr);
  Alcotest.(check int) "exam values" 4
    (List.length (Table.distinct_values t Workload.Grades.exam_attr))

let test_grades_wide_shape () =
  let p = { Workload.Grades.default_params with students = 20; exams = 4 } in
  let db = Workload.Grades.wide p in
  let t = Database.table db Workload.Grades.wide_table_name in
  Alcotest.(check int) "rows" 20 (Table.row_count t);
  Alcotest.(check int) "1 + exams columns" 5 (Table.arity t);
  Alcotest.(check bool) "name key" true (Table.is_unique t [ "name" ])

let test_grades_means () =
  Alcotest.(check (float 1e-9)) "exam 1" 40.0 (Workload.Grades.mean_of_exam 1);
  Alcotest.(check (float 1e-9)) "exam 5" 80.0 (Workload.Grades.mean_of_exam 5);
  let p = { Workload.Grades.default_params with students = 400; sigma = 5.0 } in
  let t = Database.table (Workload.Grades.narrow p) Workload.Grades.narrow_table_name in
  let exam3 =
    Table.rows t |> Array.to_list
    |> List.filter_map (fun row ->
           if Value.equal row.(1) (Value.Int 3) then Value.to_float row.(2) else None)
    |> Array.of_list
  in
  let s = Stats.Descriptive.summarize exam3 in
  Alcotest.(check bool) "mean near 60" true (Float.abs (s.Stats.Descriptive.mean -. 60.0) < 1.5);
  Alcotest.(check bool) "sigma near 5" true (Float.abs (s.Stats.Descriptive.stddev -. 5.0) < 1.0)

let test_grades_clamped () =
  let p = { Workload.Grades.default_params with sigma = 60.0; students = 100 } in
  let t = Database.table (Workload.Grades.narrow p) Workload.Grades.narrow_table_name in
  Array.iter
    (fun row ->
      match Value.to_float row.(2) with
      | Some g -> Alcotest.(check bool) "clamped" true (g >= 0.0 && g <= 100.0)
      | None -> Alcotest.fail "grade missing")
    (Table.rows t)

let test_augment_correlated () =
  let params = { Workload.Retail.default_params with rows = 400 } in
  let db = Workload.Retail.source params in
  let perfect =
    Workload.Augment.add_correlated ~seed:1 ~count:2 ~rho:1.0
      ~table:Workload.Retail.source_table_name ~reference:Workload.Retail.item_type_attr db
  in
  let inv = Database.table perfect Workload.Retail.source_table_name in
  Alcotest.(check bool) "Corr1 exists" true (Schema.mem (Table.schema inv) "Corr1");
  let type_idx = Schema.index_of (Table.schema inv) Workload.Retail.item_type_attr in
  let corr_idx = Schema.index_of (Table.schema inv) "Corr1" in
  Array.iter
    (fun row ->
      Alcotest.(check bool) "rho=1 copies" true (Value.equal row.(type_idx) row.(corr_idx)))
    (Table.rows inv);
  (* rho = 0: agreement should be near 1/gamma *)
  let random =
    Workload.Augment.add_correlated ~seed:1 ~count:1 ~rho:0.0
      ~table:Workload.Retail.source_table_name ~reference:Workload.Retail.item_type_attr db
  in
  let inv0 = Database.table random Workload.Retail.source_table_name in
  let c_idx = Schema.index_of (Table.schema inv0) "Corr1" in
  let agree =
    Array.fold_left
      (fun acc row -> if Value.equal row.(type_idx) row.(c_idx) then acc + 1 else acc)
      0 (Table.rows inv0)
  in
  let rate = float_of_int agree /. 400.0 in
  Alcotest.(check bool) "rho=0 agreement near 1/gamma" true (rate > 0.1 && rate < 0.45)

let test_augment_widen () =
  let params = { Workload.Retail.default_params with rows = 100 } in
  let db = Workload.Retail.source params in
  let widened =
    Workload.Augment.widen ~seed:2 ~noise_attrs:3 ~categorical_noise:2
      ~categorical_reference:(Some Workload.Retail.item_type_attr) db
  in
  let inv = Database.table widened Workload.Retail.source_table_name in
  Alcotest.(check bool) "noise attrs" true
    (Schema.mem (Table.schema inv) "Noise1" && Schema.mem (Table.schema inv) "Noise3");
  Alcotest.(check bool) "categorical noise" true
    (Schema.mem (Table.schema inv) "CatNoise1" && Schema.mem (Table.schema inv) "CatNoise2");
  (* categorical noise draws from the ItemType domain *)
  let domain = Table.distinct_values inv Workload.Retail.item_type_attr in
  List.iter
    (fun v -> Alcotest.(check bool) "from domain" true (List.exists (Value.equal v) domain))
    (Table.distinct_values inv "CatNoise1");
  (* no categorical reference: only noise attrs *)
  let plain = Workload.Augment.widen ~seed:2 ~noise_attrs:1 ~categorical_noise:2 ~categorical_reference:None db in
  let inv2 = Database.table plain Workload.Retail.source_table_name in
  Alcotest.(check bool) "no cat noise" false (Schema.mem (Table.schema inv2) "CatNoise1")

let suite =
  [
    Alcotest.test_case "corpus deterministic" `Quick test_corpus_deterministic;
    Alcotest.test_case "corpus book fields" `Quick test_corpus_book_fields;
    Alcotest.test_case "corpus album fields" `Quick test_corpus_album_fields;
    Alcotest.test_case "retail labels" `Quick test_retail_labels;
    Alcotest.test_case "retail source shape" `Quick test_retail_source_shape;
    Alcotest.test_case "retail targets" `Quick test_retail_targets;
    Alcotest.test_case "retail expected pairs" `Quick test_retail_expected_pairs;
    Alcotest.test_case "source/target disjoint" `Quick test_retail_source_target_disjoint;
    Alcotest.test_case "grades narrow shape" `Quick test_grades_narrow_shape;
    Alcotest.test_case "grades wide shape" `Quick test_grades_wide_shape;
    Alcotest.test_case "grades means" `Quick test_grades_means;
    Alcotest.test_case "grades clamped" `Quick test_grades_clamped;
    Alcotest.test_case "augment correlated" `Quick test_augment_correlated;
    Alcotest.test_case "augment widen" `Quick test_augment_widen;
  ]
