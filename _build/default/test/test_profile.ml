let close ?(eps = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "expected %.6f got %.6f" expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let test_counts () =
  let p = Textsim.Profile.of_strings [ "ab" ] in
  (* trigrams of "ab": ##a #ab ab# b## *)
  Alcotest.(check int) "grams" 4 (Textsim.Profile.gram_count p);
  Alcotest.(check int) "total" 4 (Textsim.Profile.total p)

let test_accumulation () =
  let p = Textsim.Profile.of_strings [ "ab"; "ab" ] in
  Alcotest.(check int) "distinct unchanged" 4 (Textsim.Profile.gram_count p);
  Alcotest.(check int) "occurrences doubled" 8 (Textsim.Profile.total p)

let test_weighted_bag_sums_to_one () =
  let p = Textsim.Profile.of_strings [ "hello"; "world" ] in
  let bag = Textsim.Profile.to_weighted_bag p in
  let sum = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 bag in
  close 1.0 sum

let test_cosine_identical () =
  let a = Textsim.Profile.of_strings [ "hello world" ] in
  let b = Textsim.Profile.of_strings [ "hello world" ] in
  close 1.0 (Textsim.Profile.cosine a b)

let test_cosine_disjoint () =
  let a = Textsim.Profile.of_strings [ "aaa" ] in
  let b = Textsim.Profile.of_strings [ "zzz" ] in
  close 0.0 (Textsim.Profile.cosine a b)

let test_cosine_empty () =
  let a = Textsim.Profile.of_strings [] in
  let b = Textsim.Profile.of_strings [ "x" ] in
  close 0.0 (Textsim.Profile.cosine a b)

let test_cosine_symmetric () =
  let a = Textsim.Profile.of_strings [ "the shadow of the wind"; "ancient history" ] in
  let b = Textsim.Profile.of_strings [ "dance baby dance"; "midnight groove" ] in
  close (Textsim.Profile.cosine a b) (Textsim.Profile.cosine b a)

let test_jaccard () =
  let a = Textsim.Profile.of_strings [ "ab" ] in
  let b = Textsim.Profile.of_strings [ "ab" ] in
  close 1.0 (Textsim.Profile.jaccard a b);
  let c = Textsim.Profile.of_strings [] in
  close 1.0 (Textsim.Profile.jaccard c (Textsim.Profile.of_strings []));
  close 0.0 (Textsim.Profile.jaccard a c)

let test_distinguishes_vocabularies () =
  (* the property the instance matcher relies on: same-domain text is
     closer than cross-domain text *)
  let rng = Stats.Rng.create 5 in
  let books1 = List.map (fun b -> b.Workload.Corpus.book_title) (Workload.Corpus.books rng 50) in
  let books2 = List.map (fun b -> b.Workload.Corpus.book_title) (Workload.Corpus.books rng 50) in
  let albums = List.map (fun a -> a.Workload.Corpus.album_title) (Workload.Corpus.albums rng 50) in
  let pb1 = Textsim.Profile.of_strings books1 in
  let pb2 = Textsim.Profile.of_strings books2 in
  let pa = Textsim.Profile.of_strings albums in
  Alcotest.(check bool) "book-book > book-album" true
    (Textsim.Profile.cosine pb1 pb2 > Textsim.Profile.cosine pb1 pa)

let qcheck_cosine_range =
  let docs = QCheck.(list_of_size Gen.(0 -- 10) (string_gen_of_size Gen.(0 -- 10) Gen.printable)) in
  QCheck.Test.make ~name:"cosine within [0,1]" ~count:200 (QCheck.pair docs docs)
    (fun (d1, d2) ->
      let c = Textsim.Profile.cosine (Textsim.Profile.of_strings d1) (Textsim.Profile.of_strings d2) in
      c >= 0.0 && c <= 1.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "accumulation" `Quick test_accumulation;
    Alcotest.test_case "weighted bag sums to 1" `Quick test_weighted_bag_sums_to_one;
    Alcotest.test_case "cosine identical" `Quick test_cosine_identical;
    Alcotest.test_case "cosine disjoint" `Quick test_cosine_disjoint;
    Alcotest.test_case "cosine empty" `Quick test_cosine_empty;
    Alcotest.test_case "cosine symmetric" `Quick test_cosine_symmetric;
    Alcotest.test_case "jaccard" `Quick test_jaccard;
    Alcotest.test_case "distinguishes vocabularies" `Quick test_distinguishes_vocabularies;
    QCheck_alcotest.to_alcotest qcheck_cosine_range;
  ]
