open Relational

let schema = Schema.make "inv" [ Attribute.string "type"; Attribute.int "n" ]

let table =
  Table.make schema
    [
      [| Value.String "book"; Value.Int 1 |];
      [| Value.String "cd"; Value.Int 2 |];
      [| Value.String "book"; Value.Int 3 |];
      [| Value.String "cd"; Value.Int 4 |];
      [| Value.String "book"; Value.Int 5 |];
    ]

let books = View.make table (Condition.Eq ("type", Value.String "book"))

let test_row_selection () =
  Alcotest.(check int) "3 books" 3 (View.row_count books);
  Alcotest.(check bool) "indices" true (View.row_indices books = [| 0; 2; 4 |])

let test_column () =
  let col = View.column books "n" in
  Alcotest.(check bool) "filtered column" true (col = [| Value.Int 1; Value.Int 3; Value.Int 5 |])

let test_materialize () =
  let m = View.materialize books in
  Alcotest.(check int) "rows" 3 (Table.row_count m);
  Alcotest.(check string) "named after view" (View.name books) (Table.name m)

let test_selectivity () =
  Alcotest.(check (float 1e-9)) "3/5" 0.6 (View.selectivity books)

let test_default_name () =
  Alcotest.(check string) "name" "inv where type = book" (View.name books)

let test_custom_name () =
  let v = View.make ~name:"b" table Condition.True in
  Alcotest.(check string) "custom" "b" (View.name v);
  Alcotest.(check int) "all rows" 5 (View.row_count v)

let test_empty_view () =
  let v = View.make table (Condition.Eq ("type", Value.String "vinyl")) in
  Alcotest.(check int) "no rows" 0 (View.row_count v);
  Alcotest.(check (float 1e-9)) "selectivity 0" 0.0 (View.selectivity v)

let test_family_of_values () =
  let fam =
    View.family_of_values table "type"
      [ [ Value.String "book" ]; [ Value.String "cd"; Value.String "vinyl" ] ]
  in
  Alcotest.(check int) "two views" 2 (List.length fam.View.views);
  match fam.View.views with
  | [ v1; v2 ] ->
    Alcotest.(check bool) "simple first" true (Condition.is_simple (View.condition v1));
    Alcotest.(check bool) "disjunctive second" true
      (Condition.is_simple_disjunctive (View.condition v2))
  | _ -> Alcotest.fail "expected 2 views"

let test_family_skips_empty_groups () =
  let fam = View.family_of_values table "type" [ []; [ Value.String "book" ] ] in
  Alcotest.(check int) "one view" 1 (List.length fam.View.views)

let test_partition_family () =
  let fam = View.partition_family table "type" in
  Alcotest.(check int) "one view per value" 2 (List.length fam.View.views);
  let total = List.fold_left (fun acc v -> acc + View.row_count v) 0 fam.View.views in
  Alcotest.(check int) "partition covers table" 5 total

let test_partition_family_disjoint () =
  let fam = View.partition_family table "type" in
  match fam.View.views with
  | [ v1; v2 ] ->
    let s1 = View.row_indices v1 and s2 = View.row_indices v2 in
    Array.iter
      (fun i -> Alcotest.(check bool) "disjoint" false (Array.mem i s2))
      s1
  | _ -> Alcotest.fail "expected 2 views"

let suite =
  [
    Alcotest.test_case "row selection" `Quick test_row_selection;
    Alcotest.test_case "column" `Quick test_column;
    Alcotest.test_case "materialize" `Quick test_materialize;
    Alcotest.test_case "selectivity" `Quick test_selectivity;
    Alcotest.test_case "default name" `Quick test_default_name;
    Alcotest.test_case "custom name / true condition" `Quick test_custom_name;
    Alcotest.test_case "empty view" `Quick test_empty_view;
    Alcotest.test_case "family of values" `Quick test_family_of_values;
    Alcotest.test_case "family skips empty groups" `Quick test_family_skips_empty_groups;
    Alcotest.test_case "partition family" `Quick test_partition_family;
    Alcotest.test_case "partition family disjoint" `Quick test_partition_family_disjoint;
  ]
