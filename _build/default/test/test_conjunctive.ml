(* Unit-level behaviour of the iterated conjunctive search (§3.5). *)
open Relational

(* A hand-made nested dataset where text classifies a 2-level context:
   kind (x/y) splits the vocabulary coarsely; within kind = x, sub (0/1)
   splits it again. *)
let nested_table rows =
  let rng = Stats.Rng.create 7 in
  let schema =
    Schema.make "src"
      [
        Attribute.string "kind"; Attribute.int "sub"; Attribute.string "text";
        Attribute.string "creator";
      ]
  in
  let row _ =
    let is_x = Stats.Rng.bool rng in
    let sub = if is_x && Stats.Rng.bool rng then 1 else 0 in
    let text =
      if not is_x then (Workload.Corpus.album rng).Workload.Corpus.album_title
      else if sub = 1 then (Workload.Corpus.book rng).Workload.Corpus.book_title
      else (Workload.Corpus.nonfiction_book rng).Workload.Corpus.book_title
    in
    let creator =
      if is_x then (Workload.Corpus.book rng).Workload.Corpus.author
      else (Workload.Corpus.album rng).Workload.Corpus.artist
    in
    [|
      Value.String (if is_x then "x" else "y"); Value.Int sub; Value.String text;
      Value.String creator;
    |]
  in
  Table.of_rows schema (Array.init rows row)

let target_db rows =
  let rng = Stats.Rng.create 11 in
  let mk name gen creators =
    Table.of_rows
      (Schema.make name
         [ Attribute.int "id"; Attribute.string "title"; Attribute.string "creator" ])
      (Array.init rows (fun i ->
           [| Value.Int (i + 1); Value.String (gen rng); Value.String (creators rng) |]))
  in
  let author rng = (Workload.Corpus.book rng).Workload.Corpus.author in
  let artist rng = (Workload.Corpus.album rng).Workload.Corpus.artist in
  Database.make "tgt"
    [
      mk "fictionish" (fun rng -> (Workload.Corpus.book rng).Workload.Corpus.book_title) author;
      mk "referencish"
        (fun rng -> (Workload.Corpus.nonfiction_book rng).Workload.Corpus.book_title)
        author;
      mk "musicish" (fun rng -> (Workload.Corpus.album rng).Workload.Corpus.album_title) artist;
    ]

let conj_config = Ctxmatch.Config.with_tau Ctxmatch.Config.default 0.45

let run_conjunctive () =
  Ctxmatch.Conjunctive.run ~config:conj_config ~stages:2 ~algorithm:`Src_class
    ~source:(Database.make "src-db" [ nested_table 400 ])
    ~target:(target_db 150) ()

let test_stage_count_and_order () =
  let stages, _ = run_conjunctive () in
  let indices = List.map (fun (s : Ctxmatch.Conjunctive.stage) -> s.stage_index) stages in
  Alcotest.(check (list int)) "stages in order" [ 1; 2 ] indices

let test_stage2_never_repartitions_fixed_attr () =
  (* stage-2 source tables are materialised views named
     "src where <attr> = <v>"; no stage-2 family may partition on the
     attribute the view already fixes *)
  let fixed_attr_of table_name =
    let marker = " where " in
    let rec find i =
      if i + String.length marker > String.length table_name then None
      else if String.sub table_name i (String.length marker) = marker then
        Some (i + String.length marker)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start -> (
      let rest = String.sub table_name start (String.length table_name - start) in
      match String.index_opt rest ' ' with
      | Some stop -> Some (String.sub rest 0 stop)
      | None -> None)
  in
  let stages, _ = run_conjunctive () in
  List.iter
    (fun (s : Ctxmatch.Conjunctive.stage) ->
      if s.stage_index = 2 then
        List.iter
          (fun (f : View.family) ->
            match fixed_attr_of (Table.name f.View.table) with
            | Some fixed ->
              Alcotest.(check bool)
                (Printf.sprintf "family on %s of a view fixing %s" f.View.attribute fixed)
                false
                (String.equal f.View.attribute fixed)
            | None -> ())
          s.result.Ctxmatch.Context_match.families)
    stages

let test_final_conditions_have_bounded_arity () =
  let _, final = run_conjunctive () in
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      Alcotest.(check bool) "arity <= 2" true (Condition.arity m.condition <= 2))
    final

let test_final_keeps_best_confidence_per_edge () =
  let stages, final = run_conjunctive () in
  let stage1 = (List.hd stages).Ctxmatch.Conjunctive.result.Ctxmatch.Context_match.matches in
  List.iter
    (fun (m1 : Matching.Schema_match.t) ->
      match
        List.find_opt
          (fun (mf : Matching.Schema_match.t) -> Matching.Schema_match.same_edge m1 mf)
          final
      with
      | Some mf ->
        Alcotest.(check bool) "final never below stage 1" true
          (mf.confidence >= m1.confidence -. 1e-9)
      | None -> Alcotest.fail "stage-1 edge lost in final")
    stage1

let test_conjunction_found_for_nested_target () =
  (* at least one final match into fictionish/referencish must pin both
     kind and sub *)
  let _, final = run_conjunctive () in
  Alcotest.(check bool) "a 2-condition reaches the nested targets" true
    (List.exists
       (fun (m : Matching.Schema_match.t) ->
         (m.tgt_table = "fictionish" || m.tgt_table = "referencish")
         && Condition.arity m.condition = 2)
       final)

let test_single_stage_equals_context_match () =
  let source = Database.make "src-db" [ nested_table 300 ] in
  let target = target_db 120 in
  let stages, final =
    Ctxmatch.Conjunctive.run ~config:conj_config ~stages:1 ~algorithm:`Src_class ~source
      ~target ()
  in
  Alcotest.(check int) "one stage" 1 (List.length stages);
  let direct =
    Ctxmatch.Context_match.run ~config:conj_config
      ~infer:(Ctxmatch.Context_match.infer_of `Src_class ~target)
      ~source ~target ()
  in
  Alcotest.(check int) "same match count as a direct run"
    (List.length direct.Ctxmatch.Context_match.matches)
    (List.length final)

let test_reporting_smoke () =
  (* Reporting prints to stdout; just make sure nothing raises. *)
  Evalharness.Reporting.section "smoke";
  Evalharness.Reporting.note "a note";
  Evalharness.Reporting.series ~x_label:"x" ~columns:[ "a"; "b" ]
    ~rows:[ (1.0, [ 0.5; 0.25 ]); (2.0, [ 1.0; 0.75 ]) ]

let suite =
  [
    Alcotest.test_case "stage count and order" `Slow test_stage_count_and_order;
    Alcotest.test_case "stage 2 respects fixed attrs" `Slow test_stage2_never_repartitions_fixed_attr;
    Alcotest.test_case "final condition arity bounded" `Slow test_final_conditions_have_bounded_arity;
    Alcotest.test_case "final keeps best per edge" `Slow test_final_keeps_best_confidence_per_edge;
    Alcotest.test_case "conjunction found" `Slow test_conjunction_found_for_nested_target;
    Alcotest.test_case "single stage = direct run" `Slow test_single_stage_equals_context_match;
    Alcotest.test_case "reporting smoke" `Quick test_reporting_smoke;
  ]
