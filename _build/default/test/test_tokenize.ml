let check_strings = Alcotest.(check (list string))

let test_normalize () =
  Alcotest.(check string) "lowercase + collapse" "hello world"
    (Textsim.Tokenize.normalize "  Hello,   WORLD!! ");
  Alcotest.(check string) "empty" "" (Textsim.Tokenize.normalize "!!!");
  Alcotest.(check string) "digits kept" "a1b2" (Textsim.Tokenize.normalize "a1b2")

let test_words () =
  check_strings "words" [ "the"; "quick"; "fox" ] (Textsim.Tokenize.words "The quick--fox!");
  check_strings "empty" [] (Textsim.Tokenize.words "   ")

let test_qgrams_padding () =
  check_strings "trigrams of ab" [ "##a"; "#ab"; "ab#"; "b##" ] (Textsim.Tokenize.trigrams "ab");
  check_strings "empty string" [] (Textsim.Tokenize.trigrams "");
  check_strings "unigrams" [ "a"; "b" ] (Textsim.Tokenize.qgrams 1 "ab")

let test_qgrams_count () =
  (* padded string has length n + 2(q-1); gram count = n + q - 1 *)
  let grams = Textsim.Tokenize.qgrams 3 "abcdef" in
  Alcotest.(check int) "count" 8 (List.length grams)

let test_qgrams_invalid () =
  Alcotest.check_raises "q = 0" (Invalid_argument "Tokenize.qgrams: q must be positive")
    (fun () -> ignore (Textsim.Tokenize.qgrams 0 "abc"))

let test_name_tokens_underscore () =
  check_strings "underscores" [ "item"; "type" ] (Textsim.Tokenize.name_tokens "item_type")

let test_name_tokens_camel () =
  check_strings "camelCase" [ "item"; "type" ] (Textsim.Tokenize.name_tokens "ItemType");
  check_strings "acronym run" [ "http"; "server" ] (Textsim.Tokenize.name_tokens "HTTPServer");
  check_strings "mixed" [ "album"; "id" ] (Textsim.Tokenize.name_tokens "AlbumID")

let test_name_tokens_separators () =
  check_strings "dots and dashes" [ "a"; "b"; "c" ] (Textsim.Tokenize.name_tokens "a.b-c")

let qcheck_qgrams_nonempty =
  QCheck.Test.make ~name:"non-empty normalised strings yield grams" ~count:300
    QCheck.(string_gen_of_size Gen.(1 -- 20) Gen.(char_range 'a' 'z'))
    (fun s -> Textsim.Tokenize.trigrams s <> [])

let qcheck_qgrams_width =
  QCheck.Test.make ~name:"every gram has width q" ~count:300
    QCheck.(pair (int_range 1 5) (string_gen_of_size Gen.(0 -- 20) Gen.printable))
    (fun (q, s) -> List.for_all (fun g -> String.length g = q) (Textsim.Tokenize.qgrams q s))

let suite =
  [
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "words" `Quick test_words;
    Alcotest.test_case "qgrams padding" `Quick test_qgrams_padding;
    Alcotest.test_case "qgrams count" `Quick test_qgrams_count;
    Alcotest.test_case "qgrams invalid q" `Quick test_qgrams_invalid;
    Alcotest.test_case "name tokens underscore" `Quick test_name_tokens_underscore;
    Alcotest.test_case "name tokens camelCase" `Quick test_name_tokens_camel;
    Alcotest.test_case "name tokens separators" `Quick test_name_tokens_separators;
    QCheck_alcotest.to_alcotest qcheck_qgrams_nonempty;
    QCheck_alcotest.to_alcotest qcheck_qgrams_width;
  ]
