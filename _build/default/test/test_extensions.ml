(* Extensions beyond the core reproduction: ClusterInfer (the paper's
   omitted third technique), target-side matching, and the additional
   scenarios (nested/conjunctive retail, Example 1.2 pricing,
   real-estate). *)
open Relational

let test_kmeans_basic () =
  let rng = Stats.Rng.create 3 in
  let xs = Array.concat [ Array.make 50 1.0; Array.make 50 10.0; Array.make 50 20.0 ] in
  let centres = Ctxmatch.Cluster_infer.kmeans_1d rng ~k:3 xs in
  Alcotest.(check int) "three centres" 3 (Array.length centres);
  Alcotest.(check bool) "sorted near the modes" true
    (Float.abs (centres.(0) -. 1.0) < 0.5
    && Float.abs (centres.(1) -. 10.0) < 0.5
    && Float.abs (centres.(2) -. 20.0) < 0.5)

let test_kmeans_fewer_distinct () =
  let rng = Stats.Rng.create 3 in
  let centres = Ctxmatch.Cluster_infer.kmeans_1d rng ~k:5 [| 1.0; 1.0; 2.0 |] in
  Alcotest.(check bool) "at most distinct-count centres" true (Array.length centres = 2)

let test_kmeans_empty () =
  let rng = Stats.Rng.create 3 in
  Alcotest.(check int) "empty" 0 (Array.length (Ctxmatch.Cluster_infer.kmeans_1d rng ~k:3 [||]))

let test_nearest () =
  Alcotest.(check int) "nearest" 1 (Ctxmatch.Cluster_infer.nearest [| 0.0; 10.0; 20.0 |] 12.0)

let test_cluster_infer_retail () =
  let params = { Workload.Retail.default_params with rows = 400; target_rows = 200 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let truth = Evalharness.Ground_truth.retail params Workload.Retail.Ryan_eyers in
  let infer = Ctxmatch.Context_match.infer_of `Cluster ~target in
  let r = Ctxmatch.Context_match.run ~config:Ctxmatch.Config.default ~infer ~source ~target () in
  Alcotest.(check bool) "cluster-infer accuracy similar to src-class (paper §3.2.2)" true
    (Evalharness.Ground_truth.accuracy truth r.Ctxmatch.Context_match.matches >= 0.75)

let test_target_context_retail () =
  (* swap the retail schemas: the combined Inventory file is now the
     *target*, so the conditions land on the target table *)
  let params = { Workload.Retail.default_params with rows = 400; target_rows = 400 } in
  let source = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let target = Workload.Retail.source params in
  let matches, _raw =
    Ctxmatch.Target_context.run ~config:Ctxmatch.Config.default ~algorithm:`Src_class ~source
      ~target ()
  in
  let contextual =
    List.filter (fun (m : Ctxmatch.Target_context.t) -> m.condition <> Condition.True) matches
  in
  Alcotest.(check bool) "target-side contextual matches found" true (contextual <> []);
  List.iter
    (fun (m : Ctxmatch.Target_context.t) ->
      Alcotest.(check string) "condition on the combined target table" "Inventory" m.tgt_base;
      match Condition.selected_values m.condition with
      | Some (attr, _) -> Alcotest.(check string) "conditions on ItemType" "ItemType" attr
      | None -> Alcotest.fail "unexpected condition shape")
    contextual;
  (* a book-side pairing must exist: Book.BookTitle -> Inventory.Title
     under a book-only context *)
  let books = Workload.Retail.book_labels ~gamma:params.Workload.Retail.gamma in
  Alcotest.(check bool) "book title edge with book-only condition" true
    (List.exists
       (fun (m : Ctxmatch.Target_context.t) ->
         m.src_table = "Book" && m.src_attr = "BookTitle" && m.tgt_attr = "Title"
         &&
         match Condition.selected_values m.condition with
         | Some ("ItemType", vs) ->
           vs <> [] && List.for_all (fun v -> List.exists (Value.equal v) books) vs
         | Some _ | None -> false)
       contextual)

let nested_expected_title =
  List.find
    (fun e -> e.Workload.Nested_retail.tgt_table = "ReferenceBooks" && e.src_attr = "Title")
    Workload.Nested_retail.expected_matches

let test_nested_condition_ok () =
  let book = Value.String "Book" in
  let ok c = Workload.Nested_retail.condition_ok nested_expected_title c in
  Alcotest.(check bool) "conjunction correct" true
    (ok (Condition.And (Condition.Eq ("ItemType", book), Condition.Eq ("Fiction", Value.Int 0))));
  Alcotest.(check bool) "order irrelevant" true
    (ok (Condition.And (Condition.Eq ("Fiction", Value.Int 0), Condition.Eq ("ItemType", book))));
  Alcotest.(check bool) "1-condition insufficient" false (ok (Condition.Eq ("ItemType", book)));
  Alcotest.(check bool) "Fiction=0 alone wrong (includes CDs)" false
    (ok (Condition.Eq ("Fiction", Value.Int 0)));
  Alcotest.(check bool) "wrong value" false
    (ok (Condition.And (Condition.Eq ("ItemType", book), Condition.Eq ("Fiction", Value.Int 1))))

let test_nested_fiction_accepts_flag_alone () =
  let e =
    List.find
      (fun e -> e.Workload.Nested_retail.tgt_table = "FictionBooks" && e.src_attr = "Title")
      Workload.Nested_retail.expected_matches
  in
  Alcotest.(check bool) "Fiction=1 alone accepted" true
    (Workload.Nested_retail.condition_ok e (Condition.Eq ("Fiction", Value.Int 1)))

let test_nested_source_shape () =
  let db = Workload.Nested_retail.source { Workload.Nested_retail.default_params with rows = 200 } in
  let inv = Database.table db "Inventory" in
  Alcotest.(check int) "rows" 200 (Table.row_count inv);
  (* CDs never fiction *)
  let schema = Table.schema inv in
  Array.iter
    (fun row ->
      if Value.equal row.(Schema.index_of schema "ItemType") (Value.String "CD") then
        Alcotest.(check bool) "cd not fiction" true
          (Value.equal row.(Schema.index_of schema "Fiction") (Value.Int 0)))
    (Table.rows inv)

let test_nested_conjunctive_end_to_end () =
  let np = Workload.Nested_retail.default_params in
  let source = Workload.Nested_retail.source np in
  let target = Workload.Nested_retail.target np in
  let _stages, final =
    Ctxmatch.Conjunctive.run ~config:Ctxmatch.Config.default ~stages:2 ~algorithm:`Src_class
      ~source ~target ()
  in
  Alcotest.(check bool) "conjunctive accuracy >= 0.6" true
    (Workload.Nested_retail.accuracy final >= 0.6);
  (* the 2-condition for ReferenceBooks.title must be among the matches *)
  Alcotest.(check bool) "reference title has a 2-condition" true
    (List.exists
       (fun (m : Matching.Schema_match.t) ->
         m.tgt_table = "ReferenceBooks" && m.tgt_attr = "title"
         && Condition.arity m.condition = 2)
       final)

let test_pricing_example_1_2 () =
  let pp = Workload.Pricing.default_params in
  let source = Workload.Pricing.source pp in
  let target = Workload.Pricing.target pp in
  (* the price -> sale edge is tenuous (the paper's Example 1.2 notes a
     standard matcher misses it); a low tau avoids the false negative *)
  let config =
    {
      Ctxmatch.Config.default with
      tau = 0.15;
      omega = 0.05;
      early_disjuncts = false;
      select = Ctxmatch.Config.Clio_qual_table;
    }
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let r = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
  Alcotest.(check (float 1e-9)) "both price contexts found" 1.0
    (Workload.Pricing.accuracy r.Ctxmatch.Context_match.matches)

let test_pricing_mapping_executes () =
  let pp = { Workload.Pricing.default_params with items = 120 } in
  let source = Workload.Pricing.source pp in
  let target = Workload.Pricing.target pp in
  let config =
    {
      Ctxmatch.Config.default with
      tau = 0.15;
      omega = 0.05;
      early_disjuncts = false;
      select = Ctxmatch.Config.Clio_qual_table;
    }
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let r = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
  let plan =
    Mapping.Mapping_gen.plan ~source ~target ~matches:r.Ctxmatch.Context_match.matches ()
  in
  let mapped = Mapping.Mapping_gen.execute_all plan in
  let catalog = Database.table mapped "Catalog" in
  Alcotest.(check int) "one row per item" pp.Workload.Pricing.items (Table.row_count catalog);
  (* the reg and sale columns must both be populated *)
  let schema = Table.schema catalog in
  Array.iter
    (fun row ->
      Alcotest.(check bool) "price filled" false
        (Value.is_null row.(Schema.index_of schema "price"));
      Alcotest.(check bool) "sale filled" false
        (Value.is_null row.(Schema.index_of schema "sale")))
    (Table.rows catalog)

let test_real_estate_scenario () =
  let rp = Workload.Real_estate.default_params in
  let source = Workload.Real_estate.source rp in
  let target = Workload.Real_estate.target rp in
  let truth = Evalharness.Ground_truth.real_estate () in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let r = Ctxmatch.Context_match.run ~config:Ctxmatch.Config.default ~infer ~source ~target () in
  Alcotest.(check bool) "partition found on at least one side" true
    (Evalharness.Ground_truth.accuracy truth r.Ctxmatch.Context_match.matches >= 0.4);
  Alcotest.(check bool) "precision decent" true
    (Evalharness.Ground_truth.precision truth r.Ctxmatch.Context_match.matches >= 0.6);
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      match Condition.selected_values m.condition with
      | Some (attr, _) -> Alcotest.(check string) "on PropertyType" "PropertyType" attr
      | None -> Alcotest.fail "condition shape")
    (Ctxmatch.Context_match.contextual_matches r)

let suite =
  [
    Alcotest.test_case "kmeans basic" `Quick test_kmeans_basic;
    Alcotest.test_case "kmeans fewer distinct" `Quick test_kmeans_fewer_distinct;
    Alcotest.test_case "kmeans empty" `Quick test_kmeans_empty;
    Alcotest.test_case "nearest" `Quick test_nearest;
    Alcotest.test_case "cluster-infer retail" `Slow test_cluster_infer_retail;
    Alcotest.test_case "target-side matching" `Slow test_target_context_retail;
    Alcotest.test_case "nested condition_ok" `Quick test_nested_condition_ok;
    Alcotest.test_case "nested fiction flag alone" `Quick test_nested_fiction_accepts_flag_alone;
    Alcotest.test_case "nested source shape" `Quick test_nested_source_shape;
    Alcotest.test_case "nested conjunctive e2e" `Slow test_nested_conjunctive_end_to_end;
    Alcotest.test_case "pricing Example 1.2" `Slow test_pricing_example_1_2;
    Alcotest.test_case "pricing mapping executes" `Slow test_pricing_mapping_executes;
    Alcotest.test_case "real estate scenario" `Slow test_real_estate_scenario;
  ]
