open Relational

let schema =
  Schema.make "t" [ Attribute.string "kind"; Attribute.int "n"; Attribute.string "other" ]

let row kind n other = [| Value.String kind; Value.Int n; Value.String other |]

let eval c r = Condition.eval c schema r

let test_true () = Alcotest.(check bool) "true" true (eval Condition.True (row "a" 1 "x"))

let test_eq () =
  let c = Condition.Eq ("kind", Value.String "a") in
  Alcotest.(check bool) "match" true (eval c (row "a" 1 "x"));
  Alcotest.(check bool) "no match" false (eval c (row "b" 1 "x"))

let test_eq_null_cell () =
  let c = Condition.Eq ("kind", Value.String "a") in
  Alcotest.(check bool) "null never matches" false
    (eval c [| Value.Null; Value.Int 1; Value.String "x" |])

let test_in () =
  let c = Condition.In ("n", [ Value.Int 1; Value.Int 3 ]) in
  Alcotest.(check bool) "in" true (eval c (row "a" 3 "x"));
  Alcotest.(check bool) "not in" false (eval c (row "a" 2 "x"))

let test_boolean_combinators () =
  let a = Condition.Eq ("kind", Value.String "a") in
  let n1 = Condition.Eq ("n", Value.Int 1) in
  Alcotest.(check bool) "and" true (eval (Condition.And (a, n1)) (row "a" 1 "x"));
  Alcotest.(check bool) "and fail" false (eval (Condition.And (a, n1)) (row "a" 2 "x"));
  Alcotest.(check bool) "or" true (eval (Condition.Or (a, n1)) (row "b" 1 "x"));
  Alcotest.(check bool) "not" true (eval (Condition.Not a) (row "b" 1 "x"))

let test_unknown_attribute () =
  Alcotest.(check bool) "raises Not_found" true
    (try
       ignore (eval (Condition.Eq ("missing", Value.Int 1)) (row "a" 1 "x"));
       false
     with Not_found -> true)

let test_attributes_and_arity () =
  let c =
    Condition.And
      (Condition.Eq ("kind", Value.String "a"), Condition.Or
         (Condition.Eq ("n", Value.Int 1), Condition.Eq ("kind", Value.String "b")))
  in
  Alcotest.(check (list string)) "attrs" [ "kind"; "n" ] (Condition.attributes c);
  Alcotest.(check int) "arity 2" 2 (Condition.arity c);
  Alcotest.(check int) "true arity" 0 (Condition.arity Condition.True)

let test_simple_classification () =
  Alcotest.(check bool) "eq simple" true (Condition.is_simple (Condition.Eq ("n", Value.Int 1)));
  Alcotest.(check bool) "in not simple" false
    (Condition.is_simple (Condition.In ("n", [ Value.Int 1 ])));
  Alcotest.(check bool) "in simple-disjunctive" true
    (Condition.is_simple_disjunctive (Condition.In ("n", [ Value.Int 1; Value.Int 2 ])));
  Alcotest.(check bool) "or same attr" true
    (Condition.is_simple_disjunctive
       (Condition.Or (Condition.Eq ("n", Value.Int 1), Condition.Eq ("n", Value.Int 2))));
  Alcotest.(check bool) "or across attrs not" false
    (Condition.is_simple_disjunctive
       (Condition.Or (Condition.Eq ("n", Value.Int 1), Condition.Eq ("kind", Value.String "a"))))

let test_conjoin_simplification () =
  let a = Condition.Eq ("n", Value.Int 1) in
  Alcotest.(check bool) "true right" true (Condition.conjoin a Condition.True = a);
  Alcotest.(check bool) "true left" true (Condition.conjoin Condition.True a = a)

let test_disjoin_values () =
  Alcotest.(check bool) "singleton to eq" true
    (Condition.disjoin_values "n" [ Value.Int 1 ] = Condition.Eq ("n", Value.Int 1));
  Alcotest.(check bool) "dedup + sort" true
    (Condition.disjoin_values "n" [ Value.Int 2; Value.Int 1; Value.Int 2 ]
    = Condition.In ("n", [ Value.Int 1; Value.Int 2 ]))

let test_selected_values () =
  let c = Condition.Or (Condition.Eq ("n", Value.Int 2), Condition.Eq ("n", Value.Int 1)) in
  (match Condition.selected_values c with
  | Some (attr, vs) ->
    Alcotest.(check string) "attr" "n" attr;
    Alcotest.(check int) "two values" 2 (List.length vs)
  | None -> Alcotest.fail "expected selected values");
  Alcotest.(check bool) "conjunction has none" true
    (Condition.selected_values
       (Condition.And (Condition.Eq ("n", Value.Int 1), Condition.Eq ("kind", Value.String "a")))
    = None)

let test_normalize_flattens_or () =
  let c = Condition.Or (Condition.Eq ("n", Value.Int 2), Condition.Eq ("n", Value.Int 1)) in
  Alcotest.(check bool) "flattened" true
    (Condition.normalize c = Condition.In ("n", [ Value.Int 1; Value.Int 2 ]))

let test_equal_mod_normalization () =
  let a = Condition.Or (Condition.Eq ("n", Value.Int 1), Condition.Eq ("n", Value.Int 2)) in
  let b = Condition.In ("n", [ Value.Int 2; Value.Int 1 ]) in
  Alcotest.(check bool) "equal" true (Condition.equal a b)

let test_to_string () =
  Alcotest.(check string) "eq" "kind = a"
    (Condition.to_string (Condition.Eq ("kind", Value.String "a")));
  Alcotest.(check string) "in" "n IN (1, 2)"
    (Condition.to_string (Condition.In ("n", [ Value.Int 1; Value.Int 2 ])))

let qcheck_normalize_preserves_semantics =
  let value_gen = QCheck.Gen.map (fun i -> Value.Int i) (QCheck.Gen.int_range 0 3) in
  let rec cond_gen depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [
          return Condition.True;
          map (fun v -> Condition.Eq ("n", v)) value_gen;
          map (fun vs -> Condition.In ("n", vs)) (list_size (1 -- 3) value_gen);
        ]
    else
      oneof
        [
          map2 (fun a b -> Condition.And (a, b)) (cond_gen (depth - 1)) (cond_gen (depth - 1));
          map2 (fun a b -> Condition.Or (a, b)) (cond_gen (depth - 1)) (cond_gen (depth - 1));
          map (fun a -> Condition.Not a) (cond_gen (depth - 1));
          cond_gen 0;
        ]
  in
  let arbitrary = QCheck.make (cond_gen 3) in
  QCheck.Test.make ~name:"normalize preserves evaluation" ~count:300
    (QCheck.pair arbitrary (QCheck.int_range 0 3))
    (fun (c, n) ->
      let r = row "a" n "x" in
      eval c r = eval (Condition.normalize c) r)

let suite =
  [
    Alcotest.test_case "true" `Quick test_true;
    Alcotest.test_case "eq" `Quick test_eq;
    Alcotest.test_case "eq null cell" `Quick test_eq_null_cell;
    Alcotest.test_case "in" `Quick test_in;
    Alcotest.test_case "boolean combinators" `Quick test_boolean_combinators;
    Alcotest.test_case "unknown attribute" `Quick test_unknown_attribute;
    Alcotest.test_case "attributes and arity" `Quick test_attributes_and_arity;
    Alcotest.test_case "simple classification" `Quick test_simple_classification;
    Alcotest.test_case "conjoin simplification" `Quick test_conjoin_simplification;
    Alcotest.test_case "disjoin values" `Quick test_disjoin_values;
    Alcotest.test_case "selected values" `Quick test_selected_values;
    Alcotest.test_case "normalize flattens or" `Quick test_normalize_flattens_or;
    Alcotest.test_case "equality mod normalization" `Quick test_equal_mod_normalization;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest qcheck_normalize_preserves_semantics;
  ]
