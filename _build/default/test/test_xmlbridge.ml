(* XML parsing, shredding, and inter-model contextual matching (the §7
   future-work direction). *)
open Relational

let parse = Xmlbridge.Xml_doc.parse

let test_parse_basic () =
  let doc = parse "<a x=\"1\"><b>hi</b><c/></a>" in
  Alcotest.(check string) "root" "a" (Xmlbridge.Xml_doc.name doc);
  Alcotest.(check (option string)) "attr" (Some "1") (Xmlbridge.Xml_doc.attr doc "x");
  Alcotest.(check int) "two children" 2 (List.length (Xmlbridge.Xml_doc.elements doc));
  Alcotest.(check string) "text" "hi" (Xmlbridge.Xml_doc.text_content doc)

let test_parse_entities () =
  let doc = parse "<t>a &amp; b &lt;c&gt; &#65;</t>" in
  Alcotest.(check string) "decoded" "a & b <c> A" (Xmlbridge.Xml_doc.text_content doc)

let test_parse_cdata_and_comments () =
  let doc = parse "<t><!-- note --><![CDATA[x < y & z]]></t>" in
  Alcotest.(check string) "cdata raw" "x < y & z" (Xmlbridge.Xml_doc.text_content doc)

let test_parse_prolog () =
  let doc = parse "<?xml version=\"1.0\"?><!DOCTYPE t><t/>" in
  Alcotest.(check string) "root after prolog" "t" (Xmlbridge.Xml_doc.name doc)

let test_parse_errors () =
  let bad input =
    Alcotest.(check bool) (Printf.sprintf "reject %s" input) true
      (Xmlbridge.Xml_doc.parse_opt input = None)
  in
  bad "";
  bad "<a>";
  bad "<a></b>";
  bad "<a><b></a></b>";
  bad "<a/><b/>";
  bad "<a x=1/>"

let test_roundtrip () =
  let doc = parse "<r a=\"v&quot;\"><x>1 &amp; 2</x><y/></r>" in
  let doc2 = parse (Xmlbridge.Xml_doc.to_string doc) in
  Alcotest.(check bool) "print/parse fixpoint" true (doc = doc2)

let inventory_xml =
  {|<inventory>
      <item sku="1"><type>book</type><title>the secret history</title><price>12.5</price></item>
      <item sku="2"><type>cd</type><title>midnight groove</title><price>9.9</price></item>
      <item sku="3"><type>book</type><title>a shadow of empire</title></item>
    </inventory>|}

let test_record_name () =
  Alcotest.(check (option string)) "item" (Some "item")
    (Xmlbridge.Shred.record_name (parse inventory_xml));
  Alcotest.(check (option string)) "no repetition" None
    (Xmlbridge.Shred.record_name (parse "<r><a/><b/></r>"))

let test_shred_columns_and_types () =
  let t = Xmlbridge.Shred.table_of_string inventory_xml in
  Alcotest.(check string) "table named after record tag" "item" (Table.name t);
  Alcotest.(check (list string)) "columns in appearance order"
    [ "sku"; "type"; "title"; "price" ]
    (Schema.attribute_names (Table.schema t));
  Alcotest.(check int) "rows" 3 (Table.row_count t);
  Alcotest.(check bool) "sku int" true
    ((Schema.attribute (Table.schema t) "sku").Attribute.ty = Value.Tint);
  Alcotest.(check bool) "price float" true
    ((Schema.attribute (Table.schema t) "price").Attribute.ty = Value.Tfloat);
  Alcotest.(check bool) "missing price is null" true (Value.is_null (Table.cell t 2 "price"))

let test_shred_rejects_flat_documents () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Xmlbridge.Shred.table_of_string "<a><b>1</b></a>");
       false
     with Invalid_argument _ -> true)

let test_document_of_table_roundtrip () =
  let t = Xmlbridge.Shred.table_of_string inventory_xml in
  let doc = Xmlbridge.Shred.document_of_table t in
  let t2 = Xmlbridge.Shred.table_of_document ~name:"item" doc in
  Alcotest.(check int) "rows survive" (Table.row_count t) (Table.row_count t2);
  Alcotest.(check bool) "a value survives" true
    (Value.equal (Table.cell t 0 "title") (Table.cell t2 0 "title"))

let test_inter_model_contextual_matching () =
  (* the retail source rendered as an XML document, shredded back, and
     contextually matched against the relational Book/Music target *)
  let params = { Workload.Retail.default_params with rows = 300; target_rows = 150 } in
  let relational_source =
    Relational.Database.table (Workload.Retail.source params) Workload.Retail.source_table_name
  in
  let xml = Xmlbridge.Xml_doc.to_string (Xmlbridge.Shred.document_of_table relational_source) in
  let shredded = Xmlbridge.Shred.table_of_string ~name:"Inventory" xml in
  Alcotest.(check int) "all rows shredded" (Table.row_count relational_source)
    (Table.row_count shredded);
  let source = Relational.Database.make "xml-source" [ shredded ] in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let truth = Evalharness.Ground_truth.retail params Workload.Retail.Ryan_eyers in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let r = Ctxmatch.Context_match.run ~config:Ctxmatch.Config.default ~infer ~source ~target () in
  Alcotest.(check bool) "inter-model contextual matching works" true
    (Evalharness.Ground_truth.accuracy truth r.Ctxmatch.Context_match.matches >= 0.75)

let qcheck_entity_roundtrip =
  let text = QCheck.string_gen_of_size QCheck.Gen.(1 -- 30) QCheck.Gen.printable in
  QCheck.Test.make ~name:"escape/parse roundtrip for text content" ~count:200 text (fun s ->
      (* newline-only text collapses to empty via trimming; skip *)
      QCheck.assume (String.trim s <> "");
      let doc =
        Xmlbridge.Xml_doc.Element
          { name = "t"; attrs = []; children = [ Xmlbridge.Xml_doc.Text s ] }
      in
      let back = parse (Xmlbridge.Xml_doc.to_string doc) in
      Xmlbridge.Xml_doc.text_content back = String.trim s)

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse entities" `Quick test_parse_entities;
    Alcotest.test_case "parse cdata/comments" `Quick test_parse_cdata_and_comments;
    Alcotest.test_case "parse prolog" `Quick test_parse_prolog;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "record name" `Quick test_record_name;
    Alcotest.test_case "shred columns/types" `Quick test_shred_columns_and_types;
    Alcotest.test_case "shred rejects flat docs" `Quick test_shred_rejects_flat_documents;
    Alcotest.test_case "document_of_table roundtrip" `Quick test_document_of_table_roundtrip;
    Alcotest.test_case "inter-model matching" `Slow test_inter_model_contextual_matching;
    QCheck_alcotest.to_alcotest qcheck_entity_roundtrip;
  ]
