(* SQL rendering of mapping plans and the condition parser. *)
open Relational

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_quote_ident () =
  Alcotest.(check string) "plain" "\"name\"" (Mapping.Sql_render.quote_ident "name");
  Alcotest.(check string) "embedded quote" "\"a\"\"b\"" (Mapping.Sql_render.quote_ident "a\"b")

let test_literal () =
  Alcotest.(check string) "null" "NULL" (Mapping.Sql_render.literal Value.Null);
  Alcotest.(check string) "int" "42" (Mapping.Sql_render.literal (Value.Int 42));
  Alcotest.(check string) "bool" "TRUE" (Mapping.Sql_render.literal (Value.Bool true));
  Alcotest.(check string) "string escaped" "'o''brien'"
    (Mapping.Sql_render.literal (Value.String "o'brien"))

let test_condition_sql () =
  Alcotest.(check string) "eq" "\"type\" = 'a'"
    (Mapping.Sql_render.condition (Condition.Eq ("type", Value.String "a")));
  Alcotest.(check string) "in" "\"n\" IN (1, 2)"
    (Mapping.Sql_render.condition (Condition.In ("n", [ Value.Int 1; Value.Int 2 ])))

let test_view_definition () =
  let base =
    Table.make (Schema.make "t" [ Attribute.string "k" ]) [ [| Value.String "a" |] ]
  in
  let rel = Mapping.Relation.of_view ~name:"v" (View.make base (Condition.Eq ("k", Value.String "a"))) in
  (match Mapping.Sql_render.view_definition rel with
  | Some sql ->
    Alcotest.(check string) "create view" "CREATE VIEW \"v\" AS SELECT * FROM \"t\" WHERE \"k\" = 'a';" sql
  | None -> Alcotest.fail "expected view definition");
  Alcotest.(check bool) "base has none" true
    (Mapping.Sql_render.view_definition (Mapping.Relation.base base) = None)

let grades_plan () =
  let params = { Workload.Grades.default_params with students = 60 } in
  let source = Workload.Grades.narrow params in
  let target = Workload.Grades.wide params in
  let config =
    {
      Ctxmatch.Config.default with
      tau = 0.4;
      omega = 0.05;
      early_disjuncts = false;
      select = Ctxmatch.Config.Clio_qual_table;
    }
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let r = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
  Mapping.Mapping_gen.plan ~source ~target ~matches:r.Ctxmatch.Context_match.matches ()

let test_script_structure () =
  let plan = grades_plan () in
  let sql = Mapping.Sql_render.script plan in
  Alcotest.(check bool) "has view definitions" true
    (String.length sql > 0
    && contains sql "CREATE VIEW"
    && contains sql "INSERT INTO \"grades_wide\"");
  Alcotest.(check bool) "mentions full outer join" true
    (contains sql "FULL OUTER JOIN")

let test_parse_eq () =
  Alcotest.(check bool) "string value" true
    (Condition_parser.parse "type = 'book'" = Condition.Eq ("type", Value.String "book"));
  Alcotest.(check bool) "int value" true
    (Condition_parser.parse "n = 3" = Condition.Eq ("n", Value.Int 3));
  Alcotest.(check bool) "bare word is a string" true
    (Condition_parser.parse "kind = book" = Condition.Eq ("kind", Value.String "book"))

let test_parse_in () =
  Alcotest.(check bool) "in list" true
    (Condition_parser.parse "n IN (1, 2, 3)"
    = Condition.In ("n", [ Value.Int 1; Value.Int 2; Value.Int 3 ]))

let test_parse_boolean_structure () =
  let c = Condition_parser.parse "NOT (a = 1 OR b = 2) AND c = 3" in
  match c with
  | Condition.And (Condition.Not (Condition.Or _), Condition.Eq ("c", Value.Int 3)) -> ()
  | _ -> Alcotest.fail "unexpected parse structure"

let test_parse_quoted () =
  Alcotest.(check bool) "quoted ident" true
    (Condition_parser.parse "\"Item Type\" = 'a'"
    = Condition.Eq ("Item Type", Value.String "a"));
  Alcotest.(check bool) "escaped string" true
    (Condition_parser.parse "a = 'o''brien'" = Condition.Eq ("a", Value.String "o'brien"))

let test_parse_case_insensitive_keywords () =
  Alcotest.(check bool) "lowercase and" true
    (Condition_parser.parse "a = 1 and b = 2"
    = Condition.And (Condition.Eq ("a", Value.Int 1), Condition.Eq ("b", Value.Int 2)))

let test_parse_true () =
  Alcotest.(check bool) "TRUE" true (Condition_parser.parse "TRUE" = Condition.True)

let test_parse_errors () =
  let fails input =
    Alcotest.(check bool) (Printf.sprintf "reject %S" input) true
      (Condition_parser.parse_opt input = None)
  in
  fails "";
  fails "a =";
  fails "a = 1 extra";
  fails "a IN (1,";
  fails "(a = 1";
  fails "'unclosed"

let test_parse_roundtrip () =
  (* printed form of conditions parses back to an equal condition *)
  List.iter
    (fun c ->
      let back = Condition_parser.parse (Condition.to_string c) in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Condition.to_string c))
        true (Condition.equal back c))
    [
      Condition.Eq ("type", Value.String "book");
      Condition.In ("n", [ Value.Int 1; Value.Int 2 ]);
      Condition.And (Condition.Eq ("a", Value.Int 1), Condition.Eq ("b", Value.Int 2));
      Condition.Or (Condition.Eq ("a", Value.Int 1), Condition.Eq ("a", Value.Int 2));
      Condition.Not (Condition.Eq ("a", Value.Int 1));
    ]

let suite =
  [
    Alcotest.test_case "quote ident" `Quick test_quote_ident;
    Alcotest.test_case "literal" `Quick test_literal;
    Alcotest.test_case "condition sql" `Quick test_condition_sql;
    Alcotest.test_case "view definition" `Quick test_view_definition;
    Alcotest.test_case "script structure" `Slow test_script_structure;
    Alcotest.test_case "parse eq" `Quick test_parse_eq;
    Alcotest.test_case "parse in" `Quick test_parse_in;
    Alcotest.test_case "parse boolean structure" `Quick test_parse_boolean_structure;
    Alcotest.test_case "parse quoted" `Quick test_parse_quoted;
    Alcotest.test_case "parse keywords case" `Quick test_parse_case_insensitive_keywords;
    Alcotest.test_case "parse TRUE" `Quick test_parse_true;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
  ]
