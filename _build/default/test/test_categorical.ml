open Relational

let table_of_column name values =
  let schema = Schema.make "t" [ Attribute.string name ] in
  Table.make schema (List.map (fun v -> [| v |]) values)

let strings n f = List.init n (fun i -> Value.String (f i))

let test_low_cardinality_is_categorical () =
  let t = table_of_column "kind" (strings 100 (fun i -> if i mod 2 = 0 then "a" else "b")) in
  Alcotest.(check bool) "categorical" true (Categorical.is_categorical t "kind")

let test_unique_not_categorical () =
  let t = table_of_column "id" (strings 100 (fun i -> string_of_int i)) in
  Alcotest.(check bool) "unique column" false (Categorical.is_categorical t "id")

let test_constant_not_categorical () =
  let t = table_of_column "c" (strings 100 (fun _ -> "same")) in
  Alcotest.(check bool) "single value" false (Categorical.is_categorical t "c")

let test_empty_table () =
  let t = table_of_column "c" [] in
  Alcotest.(check bool) "empty" false (Categorical.is_categorical t "c")

let test_small_sample_rule () =
  (* two values, two tuples each: the small-sample rule accepts *)
  let t = table_of_column "k" (strings 4 (fun i -> if i < 2 then "x" else "y")) in
  Alcotest.(check bool) "small sample" true (Categorical.is_categorical t "k")

let test_small_sample_singletons_rejected () =
  let t = table_of_column "k" (strings 4 (fun i -> Printf.sprintf "v%d" i)) in
  Alcotest.(check bool) "all singleton values" false (Categorical.is_categorical t "k")

let test_heavy_fraction_rule () =
  (* 2 heavy values (100 rows each) + 98 singleton values:
     heavy/distinct = 2/100 = 2% < 10% -> not categorical *)
  let values =
    strings 100 (fun i -> if i mod 2 = 0 then "a" else "b")
    @ strings 98 (fun i -> Printf.sprintf "rare%d" i)
  in
  let t = table_of_column "k" values in
  Alcotest.(check bool) "mostly-unique column" false (Categorical.is_categorical t "k")

let test_max_cardinality_guard () =
  (* 60 values x 10 rows each: all heavy, but cardinality 60 > default 50 *)
  let values = List.concat (List.init 60 (fun v -> strings 10 (fun _ -> Printf.sprintf "v%d" v))) in
  let t = table_of_column "k" values in
  Alcotest.(check bool) "over max cardinality" false (Categorical.is_categorical t "k");
  let params = { Categorical.default_params with max_cardinality = 100 } in
  Alcotest.(check bool) "with higher cap" true (Categorical.is_categorical ~params t "k")

let test_nulls_ignored () =
  let values = strings 50 (fun i -> if i mod 2 = 0 then "a" else "b") @ [ Value.Null; Value.Null ] in
  let t = table_of_column "k" values in
  Alcotest.(check bool) "categorical despite nulls" true (Categorical.is_categorical t "k")

let test_categorical_attributes_order () =
  let schema =
    Schema.make "t" [ Attribute.string "id"; Attribute.string "kind"; Attribute.string "status" ]
  in
  let rows =
    List.init 100 (fun i ->
        [|
          Value.String (string_of_int i);
          Value.String (if i mod 2 = 0 then "a" else "b");
          Value.String (match i mod 3 with 0 -> "lo" | 1 -> "mid" | _ -> "hi");
        |])
  in
  let t = Table.make schema rows in
  Alcotest.(check (list string)) "schema order" [ "kind"; "status" ]
    (Categorical.categorical_attributes t)

let suite =
  [
    Alcotest.test_case "low cardinality" `Quick test_low_cardinality_is_categorical;
    Alcotest.test_case "unique column" `Quick test_unique_not_categorical;
    Alcotest.test_case "constant column" `Quick test_constant_not_categorical;
    Alcotest.test_case "empty table" `Quick test_empty_table;
    Alcotest.test_case "small-sample rule" `Quick test_small_sample_rule;
    Alcotest.test_case "small-sample singletons" `Quick test_small_sample_singletons_rejected;
    Alcotest.test_case "heavy-fraction rule" `Quick test_heavy_fraction_rule;
    Alcotest.test_case "max cardinality guard" `Quick test_max_cardinality_guard;
    Alcotest.test_case "nulls ignored" `Quick test_nulls_ignored;
    Alcotest.test_case "attributes in schema order" `Quick test_categorical_attributes_order;
  ]
