(* Property tests of the §4.2 soundness claim: every constraint the
   propagation rules derive must actually hold on the materialised
   instances, for arbitrary instances and view conditions.

   Also: structural invariants of the executor's outer joins. *)
open Relational
open Mapping

(* Random instances of a small fixed schema R(k, l, v):
   k quasi-key-ish ints, l low-cardinality labels, v values. *)
let table_gen =
  let open QCheck.Gen in
  let row =
    triple (int_range 0 30) (int_range 0 3) (int_range 0 5) >|= fun (k, l, v) ->
    [| Value.Int k; Value.String (Printf.sprintf "l%d" l); Value.Int v |]
  in
  list_size (int_range 1 25) row >|= fun rows ->
  let schema =
    Schema.make "R" [ Attribute.int "k"; Attribute.string "l"; Attribute.int "v" ]
  in
  Table.make schema rows

let condition_gen =
  QCheck.Gen.(
    oneof
      [
        (int_range 0 3 >|= fun l -> Condition.Eq ("l", Value.String (Printf.sprintf "l%d" l)));
        (int_range 0 5 >|= fun v -> Condition.Eq ("v", Value.Int v));
        ( pair (int_range 0 3) (int_range 0 3) >|= fun (a, b) ->
          Condition.In
            ("l", [ Value.String (Printf.sprintf "l%d" a); Value.String (Printf.sprintf "l%d" b) ]) );
      ])

let setup_gen = QCheck.Gen.pair table_gen condition_gen

let arbitrary_setup = QCheck.make setup_gen

let relations_of (table, condition) =
  let base = Relation.base table in
  let view = Relation.of_view ~name:"V" (View.make ~name:"V" table condition) in
  (base, view)

let qcheck_derived_constraints_hold =
  QCheck.Test.make ~name:"every derived constraint holds on the instance" ~count:300
    arbitrary_setup (fun setup ->
      let table, _ = setup in
      let base, view = relations_of setup in
      let relations = [ base; view ] in
      (* base constraints are *mined*, so they hold on the sample by
         construction; the derived ones must then hold too (soundness) *)
      let base_constraints = Mining.mine [ base ] in
      let derived = Propagation.derive ~relations ~base:base_constraints in
      List.for_all
        (fun (d : Propagation.derived) ->
          match d.constr with
          | Constraints.Key k ->
            let instance =
              if k.Constraints.rel = "V" then Relation.table view else table
            in
            Constraints.holds_key instance k
          | Constraints.Fk f ->
            let instance_of name = if name = "V" then Relation.table view else table in
            Constraints.holds_fk (instance_of f.Constraints.fk_rel)
              (instance_of f.Constraints.ref_rel) f
          | Constraints.Cfk c ->
            let instance_of name = if name = "V" then Relation.table view else table in
            Constraints.holds_cfk (instance_of c.Constraints.cfk_rel)
              (instance_of c.Constraints.cfk_ref_rel) c)
        derived)

let qcheck_mined_constraints_hold =
  QCheck.Test.make ~name:"mined constraints hold by construction" ~count:300 arbitrary_setup
    (fun setup ->
      let _, view = relations_of setup in
      let base, _ = relations_of setup in
      let relations = [ base; view ] in
      List.for_all
        (fun c ->
          let instance_of name = if name = "V" then Relation.table view else Relation.table base in
          match c with
          | Constraints.Key k -> Constraints.holds_key (instance_of k.Constraints.rel) k
          | Constraints.Fk f ->
            Constraints.holds_fk (instance_of f.Constraints.fk_rel)
              (instance_of f.Constraints.ref_rel) f
          | Constraints.Cfk cf ->
            Constraints.holds_cfk (instance_of cf.Constraints.cfk_rel)
              (instance_of cf.Constraints.cfk_ref_rel) cf)
        (Mining.mine relations))

let qcheck_view_rows_subset =
  QCheck.Test.make ~name:"view rows are a subset of base rows" ~count:300 arbitrary_setup
    (fun (table, condition) ->
      let view = View.make table condition in
      let base_rows = Array.to_list (Table.rows table) in
      Array.for_all
        (fun row -> List.memq row base_rows)
        (Table.rows (View.materialize view)))

(* Executor join bounds: |left outer| >= |left|, and every left row key
   appears; full outer additionally covers unmatched right rows. *)
let join_setup_gen =
  let open QCheck.Gen in
  let mk_table name rows =
    Table.make
      (Schema.make name
         [ Attribute.string (name ^ ".k"); Attribute.int (name ^ ".x") ])
      rows
  in
  let row = pair (int_range 0 6) (int_range 0 100) >|= fun (k, x) ->
    [| Value.String (Printf.sprintf "k%d" k); Value.Int x |]
  in
  pair (list_size (int_range 0 15) row) (list_size (int_range 0 15) row)
  >|= fun (l, r) -> (mk_table "L" l, mk_table "R" r)

let arbitrary_join_setup = QCheck.make join_setup_gen

let qcheck_left_outer_keeps_left_rows =
  QCheck.Test.make ~name:"left outer join keeps every left row" ~count:300
    arbitrary_join_setup (fun (left, right) ->
      let j =
        Executor.join left right ~on:[ ("L.k", "R.k") ] ~right_restrict:[]
          ~kind:Association.Left_outer
      in
      Table.row_count j >= Table.row_count left)

let qcheck_full_outer_covers_both =
  (* every left row appears at least once, and every (non-null-keyed)
     right row is either matched or padded, so the output has at least
     max(|L|, |R|) rows *)
  QCheck.Test.make ~name:"full outer join covers both sides" ~count:300
    arbitrary_join_setup (fun (left, right) ->
      let j =
        Executor.join left right ~on:[ ("L.k", "R.k") ] ~right_restrict:[]
          ~kind:Association.Full_outer
      in
      Table.row_count j >= max (Table.row_count left) (Table.row_count right))

let qcheck_full_outer_at_least_left_outer =
  QCheck.Test.make ~name:"full outer >= left outer row count" ~count:300 arbitrary_join_setup
    (fun (left, right) ->
      let run kind =
        Table.row_count
          (Executor.join left right ~on:[ ("L.k", "R.k") ] ~right_restrict:[] ~kind)
      in
      run Association.Full_outer >= run Association.Left_outer)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_derived_constraints_hold;
    QCheck_alcotest.to_alcotest qcheck_mined_constraints_hold;
    QCheck_alcotest.to_alcotest qcheck_view_rows_subset;
    QCheck_alcotest.to_alcotest qcheck_left_outer_keeps_left_rows;
    QCheck_alcotest.to_alcotest qcheck_full_outer_covers_both;
    QCheck_alcotest.to_alcotest qcheck_full_outer_at_least_left_outer;
  ]
