(* Column, matchers, normalisation, StandardMatch / ScoreMatch. *)
open Relational

let close ?(eps = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "expected %.6f got %.6f" expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let mk_column ?(owner = "t") name ty values =
  Matching.Column.make ~owner (Attribute.make name ty) (Array.of_list values)

let test_column_basics () =
  let c =
    mk_column "x" Value.Tstring [ Value.String "a"; Value.Null; Value.String "b" ]
  in
  Alcotest.(check int) "size incl nulls" 3 (Matching.Column.size c);
  Alcotest.(check int) "non-null" 2 (Matching.Column.non_null_count c);
  Alcotest.(check bool) "strings" true (Matching.Column.strings c = [| "a"; "b" |]);
  Alcotest.(check (list string)) "distinct" [ "a"; "b" ] (Matching.Column.distinct_strings c)

let test_column_floats () =
  let c = mk_column "x" Value.Tint [ Value.Int 1; Value.Bool true; Value.String "no" ] in
  Alcotest.(check bool) "numeric views" true (Matching.Column.floats c = [| 1.0; 1.0 |])

let test_column_of_view () =
  let schema = Schema.make "t" [ Attribute.string "k"; Attribute.int "n" ] in
  let table =
    Table.make schema
      [ [| Value.String "a"; Value.Int 1 |]; [| Value.String "b"; Value.Int 2 |] ]
  in
  let v = View.make table (Condition.Eq ("k", Value.String "a")) in
  let c = Matching.Column.of_view v "n" in
  Alcotest.(check bool) "restricted" true (Matching.Column.values c = [| Value.Int 1 |])

let test_name_matcher () =
  let a = mk_column "BookTitle" Value.Tstring [] in
  let b = mk_column "book_title" Value.Tstring [] in
  close ~eps:1e-6 1.0 (Matching.Matcher.score Matching.Matchers.name_matcher a b)

let test_qgram_matcher_applicability () =
  let s = mk_column "a" Value.Tstring [] in
  let n = mk_column "b" Value.Tint [] in
  Alcotest.(check bool) "string/string" true
    (Matching.Matcher.applicable_pair Matching.Matchers.qgram_matcher s s);
  Alcotest.(check bool) "string/int" false
    (Matching.Matcher.applicable_pair Matching.Matchers.qgram_matcher s n)

let test_numeric_matcher_orders_distances () =
  let col mu = mk_column "x" Value.Tfloat (List.init 50 (fun i -> Value.Float (mu +. float_of_int (i mod 10)))) in
  let base = col 0.0 in
  let near = col 2.0 in
  let far = col 50.0 in
  let score = Matching.Matcher.score Matching.Matchers.numeric_matcher in
  Alcotest.(check bool) "identical best" true (score base base > score base near);
  Alcotest.(check bool) "near beats far" true (score base near > score base far)

let test_value_overlap_matcher () =
  let a = mk_column "x" Value.Tint [ Value.Int 1; Value.Int 2 ] in
  let b = mk_column "y" Value.Tint [ Value.Int 2; Value.Int 3 ] in
  close (1.0 /. 3.0) (Matching.Matcher.score Matching.Matchers.value_overlap_matcher a b);
  let f = mk_column "z" Value.Tfloat [] in
  Alcotest.(check bool) "float not applicable" false
    (Matching.Matcher.applicable_pair Matching.Matchers.value_overlap_matcher a f)

let test_type_matcher () =
  let i = mk_column "a" Value.Tint [] in
  let f = mk_column "b" Value.Tfloat [] in
  let s = mk_column "c" Value.Tstring [] in
  let score = Matching.Matcher.score Matching.Matchers.type_matcher in
  close 1.0 (score i i);
  close 0.5 (score i f);
  close 0.0 (score i s)

let test_score_clamped () =
  let m =
    Matching.Matcher.make ~name:"wild" ~applicable:(fun _ _ -> true) (fun _ _ -> 7.5)
  in
  let c = mk_column "x" Value.Tstring [] in
  close 1.0 (Matching.Matcher.score m c c)

let test_normalize_confidence () =
  let st = Matching.Normalize.of_scores [| 0.1; 0.2; 0.3; 0.4; 0.5 |] in
  close ~eps:1e-6 0.5 (Matching.Normalize.confidence st 0.3);
  Alcotest.(check bool) "above mean > 0.5" true (Matching.Normalize.confidence st 0.5 > 0.8);
  Alcotest.(check bool) "below mean < 0.5" true (Matching.Normalize.confidence st 0.1 < 0.2)

let test_normalize_degenerate () =
  let st = Matching.Normalize.of_scores [| 0.4; 0.4; 0.4 |] in
  close 0.5 (Matching.Normalize.confidence st 0.4);
  close 0.5 (Matching.Normalize.confidence st 0.9)

let test_gated_confidence () =
  let st = Matching.Normalize.of_scores [| 0.0; 0.01; 0.02; 0.04 |] in
  (* standing out in a terrible field is still a terrible match *)
  Alcotest.(check bool) "gated low" true (Matching.Normalize.gated_confidence st 0.04 < 0.25);
  let st2 = Matching.Normalize.of_scores [| 0.1; 0.5; 0.9 |] in
  Alcotest.(check bool) "gated strong stays strong" true
    (Matching.Normalize.gated_confidence st2 0.9 > 0.7)

let test_combine () =
  close 0.0 (Matching.Normalize.combine []);
  close 0.5 (Matching.Normalize.combine [ (1.0, 0.5) ]);
  close 0.25 (Matching.Normalize.combine [ (1.0, 0.5); (3.0, 1.0 /. 6.0) ]);
  close 0.0 (Matching.Normalize.combine [ (0.0, 0.9) ])

let retail_model () =
  let params = { Workload.Retail.default_params with rows = 300; target_rows = 150 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  (params, source, target, Matching.Standard_match.build ~source ~target ())

let test_standard_match_finds_informative_pairs () =
  let _, _, _, model = retail_model () in
  let matches = Matching.Standard_match.matches model ~tau:0.5 in
  let has src tgt_table tgt =
    List.exists
      (fun (m : Matching.Schema_match.t) ->
        m.src_attr = src && m.tgt_table = tgt_table && m.tgt_attr = tgt)
      matches
  in
  Alcotest.(check bool) "title->BookTitle" true (has "Title" "Book" "BookTitle");
  Alcotest.(check bool) "title->AlbumTitle" true (has "Title" "Music" "AlbumTitle");
  Alcotest.(check bool) "creator->Author" true (has "Creator" "Book" "Author");
  Alcotest.(check bool) "price->BookPrice" true (has "Price" "Book" "BookPrice")

let test_standard_match_sorted_and_thresholded () =
  let _, _, _, model = retail_model () in
  let matches = Matching.Standard_match.matches model ~tau:0.6 in
  Alcotest.(check bool) "all above tau" true
    (List.for_all (fun (m : Matching.Schema_match.t) -> m.confidence >= 0.6) matches);
  let rec sorted = function
    | (a : Matching.Schema_match.t) :: (b :: _ as rest) ->
      a.confidence >= b.confidence && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted matches)

let test_standard_match_tau_monotone () =
  let _, _, _, model = retail_model () in
  let n tau = List.length (Matching.Standard_match.matches model ~tau) in
  Alcotest.(check bool) "monotone" true (n 0.3 >= n 0.5 && n 0.5 >= n 0.7)

let test_score_view_improves_true_match () =
  let params, source, target, model = retail_model () in
  let inv = Database.table source Workload.Retail.source_table_name in
  let books = Workload.Retail.book_labels ~gamma:params.Workload.Retail.gamma in
  let view =
    View.make inv (Condition.In (Workload.Retail.item_type_attr, books))
  in
  let base =
    Matching.Standard_match.confidence model ~src_table:"Inventory" ~src_attr:"Title"
      ~tgt_table:"Book" ~tgt_attr:"BookTitle"
  in
  let restricted =
    Matching.Standard_match.score_view model view ~src_attr:"Title" ~tgt_table:"Book"
      ~tgt_attr:"BookTitle"
  in
  Alcotest.(check bool) "book view improves title match" true (restricted > base);
  let wrong =
    Matching.Standard_match.score_view model view ~src_attr:"Title" ~tgt_table:"Music"
      ~tgt_attr:"AlbumTitle"
  in
  Alcotest.(check bool) "book view degrades music match" true (wrong < base +. 0.2);
  ignore target

let test_score_view_empty_view () =
  let _, source, _, model = retail_model () in
  let inv = Database.table source Workload.Retail.source_table_name in
  let view = View.make inv (Condition.Eq ("ItemType", Value.String "Vinyl")) in
  close 0.0
    (Matching.Standard_match.score_view model view ~src_attr:"Title" ~tgt_table:"Book"
       ~tgt_attr:"BookTitle")

let test_view_matches_annotates_condition () =
  let params, source, _, model = retail_model () in
  let inv = Database.table source Workload.Retail.source_table_name in
  let books = Workload.Retail.book_labels ~gamma:params.Workload.Retail.gamma in
  let cond = Condition.In (Workload.Retail.item_type_attr, books) in
  let view = View.make inv cond in
  let base = Matching.Standard_match.matches_from model ~src_table:"Inventory" ~tau:0.5 in
  let vm = Matching.Standard_match.view_matches model view ~base_matches:base in
  Alcotest.(check bool) "non-empty" true (vm <> []);
  Alcotest.(check int) "one per base match" (List.length base) (List.length vm);
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      Alcotest.(check bool) "contextual" true (Matching.Schema_match.is_contextual m);
      Alcotest.(check bool) "condition kept" true (Condition.equal m.condition cond);
      Alcotest.(check string) "base recorded" "Inventory" m.src_base)
    vm

let test_schema_match_accessors () =
  let m =
    Matching.Schema_match.standard ~src_table:"s" ~src_attr:"a" ~tgt_table:"t" ~tgt_attr:"b" 0.7
  in
  Alcotest.(check bool) "standard not contextual" false (Matching.Schema_match.is_contextual m);
  let m2 = Matching.Schema_match.with_confidence m 0.9 in
  close 0.9 m2.Matching.Schema_match.confidence;
  let ctx =
    Matching.Schema_match.contextual ~view_name:"v" ~src_base:"s" ~src_attr:"a" ~tgt_table:"t"
      ~tgt_attr:"b" ~condition:(Condition.Eq ("k", Value.Int 1)) 0.8
  in
  Alcotest.(check bool) "same edge" true (Matching.Schema_match.same_edge m ctx);
  Alcotest.(check bool) "contextual" true (Matching.Schema_match.is_contextual ctx)

let suite =
  [
    Alcotest.test_case "column basics" `Quick test_column_basics;
    Alcotest.test_case "column floats" `Quick test_column_floats;
    Alcotest.test_case "column of view" `Quick test_column_of_view;
    Alcotest.test_case "name matcher" `Quick test_name_matcher;
    Alcotest.test_case "qgram applicability" `Quick test_qgram_matcher_applicability;
    Alcotest.test_case "numeric matcher ordering" `Quick test_numeric_matcher_orders_distances;
    Alcotest.test_case "value overlap matcher" `Quick test_value_overlap_matcher;
    Alcotest.test_case "type matcher" `Quick test_type_matcher;
    Alcotest.test_case "score clamped" `Quick test_score_clamped;
    Alcotest.test_case "normalize confidence" `Quick test_normalize_confidence;
    Alcotest.test_case "normalize degenerate" `Quick test_normalize_degenerate;
    Alcotest.test_case "gated confidence" `Quick test_gated_confidence;
    Alcotest.test_case "combine" `Quick test_combine;
    Alcotest.test_case "standard match informative pairs" `Quick
      test_standard_match_finds_informative_pairs;
    Alcotest.test_case "sorted and thresholded" `Quick test_standard_match_sorted_and_thresholded;
    Alcotest.test_case "tau monotone" `Quick test_standard_match_tau_monotone;
    Alcotest.test_case "score_view improves true match" `Quick test_score_view_improves_true_match;
    Alcotest.test_case "score_view empty view" `Quick test_score_view_empty_view;
    Alcotest.test_case "view_matches annotates condition" `Quick
      test_view_matches_annotates_condition;
    Alcotest.test_case "schema match accessors" `Quick test_schema_match_accessors;
  ]
