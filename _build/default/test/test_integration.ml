(* End-to-end: the paper's two headline scenarios.

   These assert the qualitative results of §5 — horizontal partitioning
   (retail) and attribute normalization (grades) are discovered with
   high accuracy — on reduced sample sizes to keep the suite fast. *)
open Relational

let retail_params = { Workload.Retail.default_params with rows = 400; target_rows = 200 }

let run_retail ?(config = Ctxmatch.Config.default) algorithm style =
  let source = Workload.Retail.source retail_params in
  let target = Workload.Retail.target retail_params style in
  let infer = Ctxmatch.Context_match.infer_of algorithm ~target in
  let result = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
  let truth = Evalharness.Ground_truth.retail retail_params style in
  (result, truth)

let test_retail_src_class_early () =
  let result, truth = run_retail `Src_class Workload.Retail.Ryan_eyers in
  Alcotest.(check bool) "finds the partition (accuracy >= 0.75)" true
    (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches >= 0.75);
  Alcotest.(check bool) "precision >= 0.5" true
    (Evalharness.Ground_truth.precision truth result.Ctxmatch.Context_match.matches >= 0.5)

let test_retail_tgt_class_early () =
  let result, truth = run_retail `Tgt_class Workload.Retail.Ryan_eyers in
  Alcotest.(check bool) "tgt-class accuracy" true
    (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches >= 0.75)

let test_retail_conditions_are_pure () =
  (* every selected contextual match must condition on ItemType with
     single-type labels only *)
  let result, truth = run_retail `Src_class Workload.Retail.Ryan_eyers in
  let contextual = Ctxmatch.Context_match.contextual_matches result in
  Alcotest.(check bool) "contextual matches exist" true (contextual <> []);
  List.iter
    (fun (m : Matching.Schema_match.t) ->
      match Condition.selected_values m.condition with
      | Some (attr, _) -> Alcotest.(check string) "on ItemType" "ItemType" attr
      | None -> Alcotest.fail "condition not simple-disjunctive")
    contextual;
  ignore truth

let test_retail_all_targets () =
  List.iter
    (fun style ->
      let result, truth = run_retail `Src_class style in
      Alcotest.(check bool)
        (Printf.sprintf "accuracy on %s" (Workload.Retail.style_name style))
        true
        (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches >= 0.5))
    Workload.Retail.all_styles

let test_retail_late_disjuncts () =
  (* Late's omega plateau is narrower (§5.1): at this sample size it
     needs a lower threshold than Early's default *)
  let config = Ctxmatch.Config.late (Ctxmatch.Config.with_omega Ctxmatch.Config.default 0.1) in
  let result, truth = run_retail ~config `Src_class Workload.Retail.Ryan_eyers in
  Alcotest.(check bool) "late disjuncts works in its plateau" true
    (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches >= 0.75)

let test_retail_families_on_item_type () =
  let result, _ = run_retail `Src_class Workload.Retail.Ryan_eyers in
  Alcotest.(check bool) "families found" true (result.Ctxmatch.Context_match.families <> []);
  List.iter
    (fun f ->
      Alcotest.(check string) "family conditions on ItemType" "ItemType" f.View.attribute)
    result.Ctxmatch.Context_match.families

let test_multi_table_worse_than_qual_table () =
  (* Fig. 11: MultiTable selects per-attribute winners from anywhere and
     loses coherence.  The effect is statistical, so compare averages
     over a few seeds with a small tolerance. *)
  let truth = Evalharness.Ground_truth.retail retail_params Workload.Retail.Ryan_eyers in
  let avg config =
    List.fold_left
      (fun acc seed ->
        let result, _ =
          run_retail ~config:(Ctxmatch.Config.with_seed config seed) `Naive
            Workload.Retail.Ryan_eyers
        in
        acc +. Evalharness.Ground_truth.fmeasure truth result.Ctxmatch.Context_match.matches)
      0.0 [ 42; 43; 44 ]
    /. 3.0
  in
  let qual = avg Ctxmatch.Config.default in
  let multi = avg { Ctxmatch.Config.default with select = Ctxmatch.Config.Multi_table } in
  Alcotest.(check bool) "MultiTable does not beat QualTable" true (multi <= qual +. 0.15)

(* Grades matches are tenuous (S5.8): run inside our scale's tau plateau. *)
let grades_config =
  {
    Ctxmatch.Config.default with
    tau = 0.4;
    omega = 0.1;
    early_disjuncts = false;
    select = Ctxmatch.Config.Clio_qual_table;
  }

let run_grades ?(params = { Workload.Grades.default_params with students = 120 }) algorithm =
  let source = Workload.Grades.narrow params in
  let target = Workload.Grades.wide params in
  let infer = Ctxmatch.Context_match.infer_of algorithm ~target in
  let result = Ctxmatch.Context_match.run ~config:grades_config ~infer ~source ~target () in
  (params, source, target, result)

let test_grades_normalization_low_sigma () =
  let params, _, _, result = run_grades `Src_class in
  let truth = Evalharness.Ground_truth.grades params in
  Alcotest.(check (float 1e-9)) "perfect alignment at sigma 8" 1.0
    (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches)

let test_grades_high_sigma_degrades () =
  let params = { Workload.Grades.default_params with students = 120; sigma = 40.0 } in
  let _, _, _, result = run_grades ~params `Src_class in
  let truth = Evalharness.Ground_truth.grades params in
  let low = Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches in
  let params8 = { params with sigma = 6.0 } in
  let _, _, _, result8 = run_grades ~params:params8 `Src_class in
  let truth8 = Evalharness.Ground_truth.grades params8 in
  let high = Evalharness.Ground_truth.accuracy truth8 result8.Ctxmatch.Context_match.matches in
  Alcotest.(check bool) "sigma hurts accuracy" true (low <= high)

let test_grades_mapping_executes () =
  let params, source, target, result = run_grades `Src_class in
  let plan =
    Mapping.Mapping_gen.plan ~source ~target ~matches:result.Ctxmatch.Context_match.matches ()
  in
  (* join rule 1 must fire between the exam views *)
  Alcotest.(check bool) "join1 present" true
    (List.exists (fun (j : Mapping.Association.join) -> j.rule = "join1") plan.Mapping.Mapping_gen.joins);
  let mapped = Mapping.Mapping_gen.execute_all plan in
  let wide = Database.table mapped Workload.Grades.wide_table_name in
  Alcotest.(check int) "one row per student" params.Workload.Grades.students
    (Table.row_count wide);
  (* no nulls: every student has every exam *)
  Array.iter
    (fun row ->
      Array.iter
        (fun v -> Alcotest.(check bool) "cell filled" false (Value.is_null v))
        row)
    (Table.rows wide)

let test_grades_mapping_values_faithful () =
  (* executed mapping must carry the actual source grades: check one
     student's grade1 against the narrow table *)
  let _, source, target, result = run_grades `Src_class in
  let plan =
    Mapping.Mapping_gen.plan ~source ~target ~matches:result.Ctxmatch.Context_match.matches ()
  in
  let mapped = Mapping.Mapping_gen.execute_all plan in
  let wide = Database.table mapped Workload.Grades.wide_table_name in
  let narrow = Database.table source Workload.Grades.narrow_table_name in
  let wide_schema = Table.schema wide in
  let name_idx = Schema.index_of wide_schema "name" in
  let g1_idx = Schema.index_of wide_schema "grade1" in
  let row0 = (Table.rows wide).(0) in
  let name = row0.(name_idx) and g1 = row0.(g1_idx) in
  let expected =
    Table.rows narrow |> Array.to_list
    |> List.find (fun r -> Value.equal r.(0) name && Value.equal r.(1) (Value.Int 1))
  in
  Alcotest.(check bool) "grade value preserved" true (Value.equal g1 expected.(2))

let test_conjunctive_stages_run () =
  (* nested context: type partitions and within books a fiction flag *)
  let rng = Stats.Rng.create 99 in
  let schema =
    Schema.make "inv"
      [ Attribute.string "type"; Attribute.string "fiction"; Attribute.string "text" ]
  in
  let row _ =
    let is_book = Stats.Rng.bool rng in
    let fiction = if is_book && Stats.Rng.bool rng then "1" else "0" in
    let text =
      if is_book then
        if fiction = "1" then (Workload.Corpus.book rng).Workload.Corpus.book_title
        else (Workload.Corpus.book rng).Workload.Corpus.book_title ^ " handbook edition"
      else (Workload.Corpus.album rng).Workload.Corpus.album_title
    in
    [| Value.String (if is_book then "book" else "cd"); Value.String fiction; Value.String text |]
  in
  let source = Database.make "nested" [ Table.of_rows schema (Array.init 240 row) ] in
  let params = { Workload.Retail.default_params with target_rows = 120 } in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let stages, final =
    Ctxmatch.Conjunctive.run ~config:Ctxmatch.Config.default ~stages:2 ~algorithm:`Src_class
      ~source ~target ()
  in
  Alcotest.(check bool) "at least one stage" true (stages <> []);
  Alcotest.(check bool) "final matches non-empty" true (final <> [])

let suite =
  [
    Alcotest.test_case "retail src-class early" `Slow test_retail_src_class_early;
    Alcotest.test_case "retail tgt-class early" `Slow test_retail_tgt_class_early;
    Alcotest.test_case "retail conditions pure" `Slow test_retail_conditions_are_pure;
    Alcotest.test_case "retail all targets" `Slow test_retail_all_targets;
    Alcotest.test_case "retail late disjuncts" `Slow test_retail_late_disjuncts;
    Alcotest.test_case "retail families on ItemType" `Slow test_retail_families_on_item_type;
    Alcotest.test_case "MultiTable worse than QualTable" `Slow test_multi_table_worse_than_qual_table;
    Alcotest.test_case "grades normalization" `Slow test_grades_normalization_low_sigma;
    Alcotest.test_case "grades sigma degrades" `Slow test_grades_high_sigma_degrades;
    Alcotest.test_case "grades mapping executes" `Slow test_grades_mapping_executes;
    Alcotest.test_case "grades mapping faithful" `Slow test_grades_mapping_values_faithful;
    Alcotest.test_case "conjunctive stages" `Slow test_conjunctive_stages_run;
  ]
