let close ?(eps = 1e-6) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "expected %.8f got %.8f" expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let test_erf_known () =
  close ~eps:2e-7 0.0 (Stats.Distribution.erf 0.0);
  close ~eps:2e-7 0.8427008 (Stats.Distribution.erf 1.0);
  close ~eps:2e-7 (-0.8427008) (Stats.Distribution.erf (-1.0));
  close ~eps:2e-7 0.9953223 (Stats.Distribution.erf 2.0)

let test_erfc_complement () =
  List.iter
    (fun x -> close (1.0 -. Stats.Distribution.erf x) (Stats.Distribution.erfc x))
    [ -2.0; -0.5; 0.0; 0.3; 1.7 ]

let test_phi_known () =
  close ~eps:1e-6 0.5 (Stats.Distribution.phi 0.0);
  close ~eps:1e-6 0.8413447 (Stats.Distribution.phi 1.0);
  close ~eps:1e-6 0.1586553 (Stats.Distribution.phi (-1.0));
  close ~eps:1e-6 0.9772499 (Stats.Distribution.phi 2.0);
  close ~eps:1e-5 0.9986501 (Stats.Distribution.phi 3.0)

let test_phi_monotone () =
  let prev = ref (-1.0) in
  for i = -40 to 40 do
    let p = Stats.Distribution.phi (float_of_int i /. 10.0) in
    Alcotest.(check bool) "monotone" true (p > !prev);
    prev := p
  done

let test_normal_cdf_shift_scale () =
  close
    (Stats.Distribution.phi 1.5)
    (Stats.Distribution.normal_cdf ~mu:10.0 ~sigma:2.0 13.0)

let test_normal_cdf_invalid_sigma () =
  Alcotest.check_raises "sigma <= 0"
    (Invalid_argument "Distribution.normal_cdf: sigma <= 0") (fun () ->
      ignore (Stats.Distribution.normal_cdf ~mu:0.0 ~sigma:0.0 1.0))

let test_phi_inv_roundtrip () =
  List.iter
    (fun p -> close ~eps:1e-6 p (Stats.Distribution.phi (Stats.Distribution.phi_inv p)))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999 ]

let test_phi_inv_invalid () =
  Alcotest.check_raises "p = 0" (Invalid_argument "Distribution.phi_inv: p outside (0,1)")
    (fun () -> ignore (Stats.Distribution.phi_inv 0.0))

let test_normal_pdf () =
  close ~eps:1e-7 0.39894228 (Stats.Distribution.normal_pdf 0.0);
  close ~eps:1e-7 0.24197072 (Stats.Distribution.normal_pdf 1.0);
  (* scaled pdf integrates location/scale correctly *)
  close ~eps:1e-7
    (0.39894228 /. 2.0)
    (Stats.Distribution.normal_pdf ~mu:3.0 ~sigma:2.0 3.0)

let test_binomial_moments () =
  close 50.0 (Stats.Distribution.binomial_mean ~n:100 ~p:0.5);
  close 5.0 (Stats.Distribution.binomial_stddev ~n:100 ~p:0.5)

let test_binomial_tail () =
  (* P(X >= 50) for Binomial(100, 0.5) is ~0.54 with continuity correction *)
  let p = Stats.Distribution.binomial_tail_normal ~n:100 ~p:0.5 ~successes:50 in
  Alcotest.(check bool) "around half" true (p > 0.5 && p < 0.6);
  (* far tail is tiny *)
  let tail = Stats.Distribution.binomial_tail_normal ~n:100 ~p:0.5 ~successes:80 in
  Alcotest.(check bool) "far tail small" true (tail < 1e-6);
  (* everything is above 0 successes *)
  close ~eps:1e-9 1.0 (Stats.Distribution.binomial_tail_normal ~n:100 ~p:0.5 ~successes:0)

let test_binomial_tail_degenerate () =
  close 1.0 (Stats.Distribution.binomial_tail_normal ~n:10 ~p:0.0 ~successes:0);
  close 0.0 (Stats.Distribution.binomial_tail_normal ~n:10 ~p:0.0 ~successes:1);
  close 1.0 (Stats.Distribution.binomial_tail_normal ~n:10 ~p:1.0 ~successes:10)

let test_z_score () =
  close 2.0 (Stats.Distribution.z_score ~mu:1.0 ~sigma:0.5 2.0);
  close 0.0 (Stats.Distribution.z_score ~mu:1.0 ~sigma:0.0 42.0)

let qcheck_phi_range =
  QCheck.Test.make ~name:"phi in (0,1)" ~count:1000
    QCheck.(float_range (-30.0) 30.0)
    (fun x ->
      let p = Stats.Distribution.phi x in
      p >= 0.0 && p <= 1.0)

let qcheck_phi_symmetry =
  QCheck.Test.make ~name:"phi(-x) = 1 - phi(x)" ~count:500
    QCheck.(float_range (-6.0) 6.0)
    (fun x ->
      Float.abs (Stats.Distribution.phi (-.x) -. (1.0 -. Stats.Distribution.phi x)) < 1e-6)

let suite =
  [
    Alcotest.test_case "erf known values" `Quick test_erf_known;
    Alcotest.test_case "erfc complement" `Quick test_erfc_complement;
    Alcotest.test_case "phi known values" `Quick test_phi_known;
    Alcotest.test_case "phi monotone" `Quick test_phi_monotone;
    Alcotest.test_case "normal cdf shift/scale" `Quick test_normal_cdf_shift_scale;
    Alcotest.test_case "normal cdf invalid sigma" `Quick test_normal_cdf_invalid_sigma;
    Alcotest.test_case "phi_inv roundtrip" `Quick test_phi_inv_roundtrip;
    Alcotest.test_case "phi_inv invalid" `Quick test_phi_inv_invalid;
    Alcotest.test_case "normal pdf" `Quick test_normal_pdf;
    Alcotest.test_case "binomial moments" `Quick test_binomial_moments;
    Alcotest.test_case "binomial tail" `Quick test_binomial_tail;
    Alcotest.test_case "binomial tail degenerate" `Quick test_binomial_tail_degenerate;
    Alcotest.test_case "z-score" `Quick test_z_score;
    QCheck_alcotest.to_alcotest qcheck_phi_range;
    QCheck_alcotest.to_alcotest qcheck_phi_symmetry;
  ]
