let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Stats.Rng.create 7 and b = Stats.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Stats.Rng.create 1 and b = Stats.Rng.create 2 in
  Alcotest.(check bool) "different output" false (Stats.Rng.bits64 a = Stats.Rng.bits64 b)

let test_int_bounds () =
  let rng = Stats.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.int rng 17 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let rng = Stats.Rng.create 11 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Stats.Rng.int rng 0))

let test_float_bounds () =
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_int_uniformity () =
  let rng = Stats.Rng.create 5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Stats.Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (freq > 0.08 && freq < 0.12))
    counts

let test_gaussian_moments () =
  let rng = Stats.Rng.create 13 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Stats.Rng.gaussian rng ~mu:10.0 ~sigma:3.0) in
  let s = Stats.Descriptive.summarize xs in
  check_float "mean" 10.0 (Float.round (s.Stats.Descriptive.mean *. 10.0) /. 10.0);
  Alcotest.(check bool) "stddev close" true (Float.abs (s.Stats.Descriptive.stddev -. 3.0) < 0.1)

let test_copy_independent () =
  let a = Stats.Rng.create 21 in
  ignore (Stats.Rng.bits64 a);
  let b = Stats.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)

let test_split_differs () =
  let a = Stats.Rng.create 31 in
  let b = Stats.Rng.split a in
  Alcotest.(check bool) "split stream differs" false (Stats.Rng.bits64 a = Stats.Rng.bits64 b)

let test_shuffle_permutation () =
  let rng = Stats.Rng.create 41 in
  let original = Array.init 50 (fun i -> i) in
  let shuffled = Stats.Rng.shuffle rng original in
  Alcotest.(check bool) "input untouched" true (original = Array.init 50 (fun i -> i));
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = original)

let test_pick_singleton () =
  let rng = Stats.Rng.create 51 in
  Alcotest.(check string) "only element" "x" (Stats.Rng.pick rng [| "x" |])

let test_pick_empty () =
  let rng = Stats.Rng.create 51 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Stats.Rng.pick rng [||]))

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"rng int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Stats.Rng.create seed in
      let v = Stats.Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
    Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split differs" `Quick test_split_differs;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick singleton" `Quick test_pick_singleton;
    Alcotest.test_case "pick empty" `Quick test_pick_empty;
    QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
  ]
