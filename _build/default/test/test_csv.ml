open Relational

let test_parse_simple () =
  Alcotest.(check (list (list string))) "basic"
    [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv_io.parse_string "a,b\n1,2\n")

let test_parse_no_trailing_newline () =
  Alcotest.(check (list (list string))) "no newline" [ [ "a"; "b" ] ] (Csv_io.parse_string "a,b")

let test_parse_quoted () =
  Alcotest.(check (list (list string))) "quoted comma"
    [ [ "a,b"; "c" ] ]
    (Csv_io.parse_string "\"a,b\",c\n");
  Alcotest.(check (list (list string))) "doubled quote"
    [ [ "say \"hi\"" ] ]
    (Csv_io.parse_string "\"say \"\"hi\"\"\"\n");
  Alcotest.(check (list (list string))) "embedded newline"
    [ [ "line1\nline2"; "x" ] ]
    (Csv_io.parse_string "\"line1\nline2\",x\n")

let test_parse_crlf () =
  Alcotest.(check (list (list string))) "crlf"
    [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv_io.parse_string "a,b\r\nc,d\r\n")

let test_parse_empty_fields () =
  Alcotest.(check (list (list string))) "empties" [ [ ""; "x"; "" ] ] (Csv_io.parse_string ",x,\n")

let test_parse_unterminated_quote () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Csv_io.parse_string "\"oops\n");
       false
     with Csv_io.Parse_error _ -> true)

let test_separator () =
  Alcotest.(check (list (list string))) "semicolon"
    [ [ "a"; "b" ] ]
    (Csv_io.parse_string ~separator:';' "a;b\n")

let test_roundtrip () =
  let records = [ [ "a,b"; "plain" ]; [ "with \"q\""; "nl\nline" ] ] in
  Alcotest.(check (list (list string))) "roundtrip" records
    (Csv_io.parse_string (Csv_io.to_string records))

let test_table_of_csv_types () =
  let t = Csv_io.table_of_csv ~name:"t" "id,price,name,flag\n1,2.5,ann,true\n2,3.0,bob,false\n" in
  let schema = Table.schema t in
  Alcotest.(check bool) "id int" true ((Schema.attribute schema "id").Attribute.ty = Value.Tint);
  Alcotest.(check bool) "price float" true
    ((Schema.attribute schema "price").Attribute.ty = Value.Tfloat);
  Alcotest.(check bool) "name string" true
    ((Schema.attribute schema "name").Attribute.ty = Value.Tstring);
  Alcotest.(check bool) "flag bool" true
    ((Schema.attribute schema "flag").Attribute.ty = Value.Tbool);
  Alcotest.(check bool) "cell" true (Value.equal (Table.cell t 1 "id") (Value.Int 2))

let test_table_of_csv_empty_as_null () =
  let t = Csv_io.table_of_csv ~name:"t" "a,b\n1,\n,2\n" in
  Alcotest.(check bool) "null" true (Value.is_null (Table.cell t 0 "b"));
  Alcotest.(check bool) "null 2" true (Value.is_null (Table.cell t 1 "a"))

let test_table_of_csv_ragged_rows () =
  let t = Csv_io.table_of_csv ~name:"t" "a,b,c\n1,2\n1,2,3,4\n" in
  Alcotest.(check int) "arity kept" 3 (Table.arity t);
  Alcotest.(check bool) "short row padded" true (Value.is_null (Table.cell t 0 "c"))

let test_table_roundtrip () =
  let csv = "id,name\n1,ann\n2,bob\n" in
  let t = Csv_io.table_of_csv ~name:"t" csv in
  Alcotest.(check string) "roundtrip" csv (Csv_io.table_to_csv t)

let test_file_roundtrip () =
  let path = Filename.temp_file "ctxmatch_test" ".csv" in
  let records = [ [ "x"; "y" ]; [ "1"; "2" ] ] in
  Csv_io.write_file path records;
  let back = Csv_io.parse_file path in
  Sys.remove path;
  Alcotest.(check (list (list string))) "file roundtrip" records back

let qcheck_roundtrip =
  let field = QCheck.string_gen_of_size (QCheck.Gen.int_range 0 8) QCheck.Gen.printable in
  let record = QCheck.list_of_size (QCheck.Gen.int_range 1 5) field in
  let records = QCheck.list_of_size (QCheck.Gen.int_range 1 8) record in
  QCheck.Test.make ~name:"csv roundtrip arbitrary printable" ~count:200 records (fun rs ->
      (* the writer cannot represent a record that is a single empty
         field (it prints as an empty line, parsed as a record
         boundary); skip those *)
      let representable = List.for_all (fun r -> r <> [ "" ]) rs in
      QCheck.assume representable;
      Csv_io.parse_string (Csv_io.to_string rs) = rs)

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "no trailing newline" `Quick test_parse_no_trailing_newline;
    Alcotest.test_case "quoted fields" `Quick test_parse_quoted;
    Alcotest.test_case "crlf" `Quick test_parse_crlf;
    Alcotest.test_case "empty fields" `Quick test_parse_empty_fields;
    Alcotest.test_case "unterminated quote" `Quick test_parse_unterminated_quote;
    Alcotest.test_case "custom separator" `Quick test_separator;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "type inference" `Quick test_table_of_csv_types;
    Alcotest.test_case "empty as null" `Quick test_table_of_csv_empty_as_null;
    Alcotest.test_case "ragged rows" `Quick test_table_of_csv_ragged_rows;
    Alcotest.test_case "table roundtrip" `Quick test_table_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
