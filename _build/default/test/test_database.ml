open Relational

let table name =
  Table.make (Schema.make name [ Attribute.int "id"; Attribute.string "v" ])
    [ [| Value.Int 1; Value.String "a" |]; [| Value.Int 2; Value.String "b" |] ]

let db = Database.make "d" [ table "t1"; table "t2" ]

let test_lookup () =
  Alcotest.(check string) "found" "t1" (Table.name (Database.table db "t1"));
  Alcotest.(check bool) "mem" true (Database.mem db "t2");
  Alcotest.(check bool) "not mem" false (Database.mem db "t3");
  Alcotest.(check bool) "opt none" true (Database.table_opt db "t3" = None)

let test_duplicate_rejected () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Database.make: duplicate table t1")
    (fun () -> ignore (Database.make "d" [ table "t1"; table "t1" ]))

let test_add_table () =
  let d = Database.add_table db (table "t3") in
  Alcotest.(check (list string)) "names" [ "t1"; "t2"; "t3" ] (Database.table_names d)

let test_replace_table () =
  let bigger =
    Table.make (Schema.make "t1" [ Attribute.int "id" ]) [ [| Value.Int 9 |] ]
  in
  let d = Database.replace_table db bigger in
  Alcotest.(check int) "replaced arity" 1 (Table.arity (Database.table d "t1"));
  Alcotest.(check int) "same table count" 2 (List.length (Database.tables d));
  (* replacing an absent table adds it *)
  let d2 = Database.replace_table db (table "t9") in
  Alcotest.(check bool) "added" true (Database.mem d2 "t9")

let test_map_tables () =
  let d = Database.map_tables (fun t -> Table.take t 1) db in
  Alcotest.(check int) "rows halved" 2 (Database.total_rows d)

let test_totals () =
  Alcotest.(check int) "rows" 4 (Database.total_rows db);
  Alcotest.(check int) "attrs" 4 (Database.total_attributes db)

let suite =
  [
    Alcotest.test_case "lookup" `Quick test_lookup;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "add table" `Quick test_add_table;
    Alcotest.test_case "replace table" `Quick test_replace_table;
    Alcotest.test_case "map tables" `Quick test_map_tables;
    Alcotest.test_case "totals" `Quick test_totals;
  ]
