let close ?(eps = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "expected %.6f got %.6f" expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let mk observations =
  let c = Stats.Confusion.create () in
  List.iter (fun (truth, predicted) -> Stats.Confusion.observe c ~truth ~predicted) observations;
  c

let test_counts () =
  let c = mk [ ("a", "a"); ("a", "b"); ("b", "b"); ("b", "b") ] in
  Alcotest.(check int) "total" 4 (Stats.Confusion.total c);
  Alcotest.(check int) "correct" 3 (Stats.Confusion.correct c);
  close 0.75 (Stats.Confusion.accuracy c);
  Alcotest.(check int) "cell a->b" 1 (Stats.Confusion.count c ~truth:"a" ~predicted:"b");
  Alcotest.(check int) "cell b->a" 0 (Stats.Confusion.count c ~truth:"b" ~predicted:"a")

let test_empty () =
  let c = Stats.Confusion.create () in
  close 0.0 (Stats.Confusion.accuracy c);
  Alcotest.(check (list string)) "no labels" [] (Stats.Confusion.labels c);
  close 0.0 (Stats.Confusion.micro_f c)

let test_labels_sorted () =
  let c = mk [ ("z", "a"); ("m", "m") ] in
  Alcotest.(check (list string)) "sorted union" [ "a"; "m"; "z" ] (Stats.Confusion.labels c)

let test_per_class () =
  let c = mk [ ("a", "a"); ("a", "a"); ("a", "b"); ("b", "b") ] in
  close (2.0 /. 3.0) (Stats.Confusion.per_class_recall c "a");
  close 1.0 (Stats.Confusion.per_class_precision c "a");
  close 0.5 (Stats.Confusion.per_class_precision c "b");
  close 1.0 (Stats.Confusion.per_class_recall c "b");
  close 0.0 (Stats.Confusion.per_class_precision c "never-predicted")

let test_micro_f_equals_accuracy () =
  let c = mk [ ("a", "a"); ("a", "b"); ("b", "c"); ("c", "c"); ("c", "c") ] in
  close (Stats.Confusion.accuracy c) (Stats.Confusion.micro_f c);
  close (Stats.Confusion.accuracy c) (Stats.Confusion.micro_f ~beta:2.0 c)

let test_macro_f () =
  (* perfect classifier: macro F1 = 1 *)
  let c = mk [ ("a", "a"); ("b", "b") ] in
  close 1.0 (Stats.Confusion.macro_f c)

let test_error_pairs_merged () =
  let c = mk [ ("a", "b"); ("b", "a"); ("b", "a"); ("a", "a"); ("c", "a") ] in
  match Stats.Confusion.error_pairs c with
  | ((v1, v2), n) :: rest ->
    Alcotest.(check string) "first pair lo" "a" v1;
    Alcotest.(check string) "first pair hi" "b" v2;
    Alcotest.(check int) "merged count" 3 n;
    Alcotest.(check int) "one more pair" 1 (List.length rest)
  | [] -> Alcotest.fail "expected error pairs"

let test_error_pairs_no_diagonal () =
  let c = mk [ ("a", "a"); ("b", "b") ] in
  Alcotest.(check int) "no errors" 0 (List.length (Stats.Confusion.error_pairs c))

let test_normalized_error_pairs () =
  (* (a,b) errors: 2 out of freq(a)+freq(b) = 4 -> 0.5
     (a,c) errors: 1 out of freq(a)+freq(c) = 12 -> small *)
  let c =
    mk
      ([ ("a", "b"); ("a", "b"); ("a", "c") ]
      @ List.init 9 (fun _ -> ("c", "c"))
      @ [ ("b", "b") ])
  in
  match Stats.Confusion.normalized_error_pairs c with
  | ((v1, v2), w) :: _ ->
    Alcotest.(check string) "top pair is a-b" "a" v1;
    Alcotest.(check string) "top pair is a-b" "b" v2;
    close 0.5 w
  | [] -> Alcotest.fail "expected pairs"

let qcheck_accuracy_range =
  let obs = QCheck.(list_of_size Gen.(1 -- 40) (pair (string_of_size Gen.(1 -- 3)) (string_of_size Gen.(1 -- 3)))) in
  QCheck.Test.make ~name:"accuracy within [0,1]" ~count:300 obs (fun observations ->
      let c = mk observations in
      let a = Stats.Confusion.accuracy c in
      a >= 0.0 && a <= 1.0)

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "labels sorted" `Quick test_labels_sorted;
    Alcotest.test_case "per-class P/R" `Quick test_per_class;
    Alcotest.test_case "micro F = accuracy" `Quick test_micro_f_equals_accuracy;
    Alcotest.test_case "macro F perfect" `Quick test_macro_f;
    Alcotest.test_case "error pairs merged" `Quick test_error_pairs_merged;
    Alcotest.test_case "no diagonal errors" `Quick test_error_pairs_no_diagonal;
    Alcotest.test_case "normalized error pairs" `Quick test_normalized_error_pairs;
    QCheck_alcotest.to_alcotest qcheck_accuracy_range;
  ]
