(** Raw-score → confidence normalisation (paper §2.3).

    For one matcher and one source attribute, the raw scores against all
    target attributes are treated as samples of a normal distribution;
    the confidence of a particular score is its CDF position,
    Φ((s − μ)/σ).  A score well above the field of alternatives thus
    gets confidence near 1 regardless of the matcher's raw scale. *)

type t = { mean : float; stddev : float }

val of_scores : float array -> t
(** μ and (population) σ of the raw scores. *)

val confidence : t -> float -> float
(** Φ((s − μ)/σ); when σ = 0 (all raw scores equal) every score is as
    good as any other and the confidence is 0.5. *)

val gated_confidence : t -> float -> float
(** [Φ(z) * sqrt s]: the relative confidence damped by the absolute raw
    score, so that "best of a uniformly terrible field" does not earn a
    high confidence.  A matcher seeing essentially no signal (raw scores
    all near 0) then contributes near-0 confidence instead of 0.5+,
    which keeps the standard matcher's accepted set clean at tau = 0.5. *)

val combine : (float * float) list -> float
(** [combine [(weight, confidence); ...]] — weighted mean; 0.0 when the
    list is empty or all weights are 0. *)
