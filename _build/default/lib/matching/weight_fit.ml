open Relational

type labeled = {
  lab_source : Database.t;
  lab_target : Database.t;
  correct : (string * string * string * string) list;
}

let fmeasure ?(gated = true) ~matchers ~tau labeled =
  let model =
    Standard_match.build ~gated ~matchers ~source:labeled.lab_source
      ~target:labeled.lab_target ()
  in
  let found =
    Standard_match.matches model ~tau
    |> List.map (fun (m : Schema_match.t) ->
           (m.src_base, m.src_attr, m.tgt_table, m.tgt_attr))
  in
  let counts =
    Stats.Fmeasure.counts ~equal:( = ) ~expected:labeled.correct ~found
  in
  Stats.Fmeasure.f1 counts

let reweight matchers assignment =
  List.map
    (fun (m : Matcher.t) ->
      match List.assoc_opt m.name assignment with
      | Some weight -> { m with weight }
      | None -> m)
    matchers

let average_f ~gated ~tau matchers scenarios =
  match scenarios with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc s -> acc +. fmeasure ~gated ~matchers ~tau s) 0.0 scenarios
    /. float_of_int (List.length scenarios)

let fit ?(rounds = 2) ?(grid = [ 0.0; 0.25; 0.5; 1.0; 2.0; 4.0 ]) ?(tau = 0.5) ~matchers
    scenarios =
  let current = ref matchers in
  for _ = 1 to rounds do
    List.iter
      (fun (m : Matcher.t) ->
        let base_weight =
          (List.find (fun (c : Matcher.t) -> c.name = m.name) !current).weight
        in
        let candidates =
          List.sort_uniq Float.compare (List.map (fun g -> g *. Float.max base_weight 0.25) grid)
        in
        let best =
          List.fold_left
            (fun (best_w, best_f) w ->
              let trial = reweight !current [ (m.name, w) ] in
              let f = average_f ~gated:true ~tau trial scenarios in
              (* strict improvement keeps the search deterministic and
                 biased toward the hand-set defaults *)
              if f > best_f +. 1e-9 then (w, f) else (best_w, best_f))
            (base_weight, average_f ~gated:true ~tau !current scenarios)
            candidates
        in
        current := reweight !current [ (m.name, fst best) ])
      matchers
  done;
  List.map (fun (m : Matcher.t) -> (m.name, m.weight)) !current
