(** Data-driven calibration of the matcher weights.

    §2.3 weights the individual matchers before combination, citing the
    multi-learner systems (LSD / iMAP / COMA) that *train* this
    combination on schemas with known correct matches.  This module
    implements that step: given labeled scenarios (schema pairs with
    their correct attribute pairings), coordinate ascent over a grid of
    per-matcher weights maximises the average F-measure of
    StandardMatch's accepted set. *)

open Relational

type labeled = {
  lab_source : Database.t;
  lab_target : Database.t;
  correct : (string * string * string * string) list;
      (** (src table, src attr, tgt table, tgt attr) pairs that a
          perfect standard matcher would accept *)
}

val fmeasure : ?gated:bool -> matchers:Matcher.t list -> tau:float -> labeled -> float
(** F1 of StandardMatch's accepted matches against the labels. *)

val reweight : Matcher.t list -> (string * float) list -> Matcher.t list
(** Replace the weights of the named matchers (unnamed ones keep
    theirs). *)

val fit :
  ?rounds:int ->
  ?grid:float list ->
  ?tau:float ->
  matchers:Matcher.t list ->
  labeled list ->
  (string * float) list
(** [fit ~matchers scenarios] — coordinate ascent: [rounds] passes
    (default 2) over the matchers; for each, every multiplier in [grid]
    (default [0; 0.25; 0.5; 1; 2; 4] x the current weight, deduplicated)
    is tried and the best average F across scenarios is kept.  Returns
    the final (matcher name, weight) assignment. *)
